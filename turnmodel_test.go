package turnmodel_test

import (
	"strings"
	"testing"

	"turnmodel"
)

// These tests exercise the public facade end to end: everything a
// downstream user would touch must work through the root package alone.

func TestFacadeTopologies(t *testing.T) {
	mesh := turnmodel.NewMesh2D(4, 4)
	if mesh.Nodes() != 16 || mesh.Dims() != 2 {
		t.Error("mesh basics wrong")
	}
	mesh3 := turnmodel.NewMesh(2, 3, 4)
	if mesh3.Nodes() != 24 {
		t.Error("3D mesh wrong")
	}
	torus := turnmodel.NewKaryNCube(4, 2)
	if torus.Nodes() != 16 {
		t.Error("torus wrong")
	}
	if turnmodel.NewTorus(3, 5).Nodes() != 15 {
		t.Error("mixed-radix torus wrong")
	}
	cube := turnmodel.NewHypercube(5)
	if cube.Nodes() != 32 {
		t.Error("hypercube wrong")
	}
	if turnmodel.West.Opposite() != turnmodel.East || turnmodel.South.Dim() != 1 {
		t.Error("direction constants wrong")
	}
	if turnmodel.North.Dim() != 1 || !turnmodel.North.Positive() {
		t.Error("north wrong")
	}
}

func TestFacadeRoutingRegistry(t *testing.T) {
	names := turnmodel.RoutingNames()
	if len(names) < 10 {
		t.Fatalf("registry too small: %v", names)
	}
	mesh := turnmodel.NewMesh2D(4, 4)
	alg, err := turnmodel.NewRouting("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	if alg.Name() != "negative-first" {
		t.Errorf("Name = %q", alg.Name())
	}
	if _, err := turnmodel.NewRouting("bogus", mesh); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestFacadeTurnModelAnalysis(t *testing.T) {
	if got := len(turnmodel.AbstractCycles(3)); got != 6 {
		t.Errorf("AbstractCycles(3) = %d, want 6", got)
	}
	if got := len(turnmodel.AllTurns90(3)); got != 24 {
		t.Errorf("AllTurns90(3) = %d, want 24", got)
	}
	if turnmodel.MinimumProhibitedTurns(4) != 12 {
		t.Error("Theorem 1 bound wrong")
	}
	combos := turnmodel.Census2D(3, 3)
	free := 0
	for _, c := range combos {
		if c.DeadlockFree {
			free++
		}
	}
	if free != 12 {
		t.Errorf("census: %d of 16 deadlock free, want 12", free)
	}
	if got := len(turnmodel.SymmetryClasses(combos)); got != 3 {
		t.Errorf("symmetry classes = %d, want 3", got)
	}
}

func TestFacadeVerification(t *testing.T) {
	mesh := turnmodel.NewMesh2D(5, 5)
	for _, name := range []string{"xy", "west-first", "north-last", "negative-first"} {
		alg, err := turnmodel.NewRouting(name, mesh)
		if err != nil {
			t.Fatal(err)
		}
		if cyc := turnmodel.VerifyDeadlockFree(alg); cyc != nil {
			t.Errorf("%s: unexpected cycle %v", name, cyc)
		}
	}
	unsafe, _ := turnmodel.NewRouting("fully-adaptive", mesh)
	if turnmodel.VerifyDeadlockFree(unsafe) == nil {
		t.Error("fully adaptive verified as deadlock free")
	}
	g := turnmodel.DependencyGraph(unsafe)
	if g.Vertices() == 0 || g.Edges() == 0 {
		t.Error("dependency graph empty")
	}
}

func TestFacadeNumberings(t *testing.T) {
	mesh := turnmodel.NewMesh2D(5, 4)
	wf, _ := turnmodel.NewRouting("west-first", mesh)
	nl, _ := turnmodel.NewRouting("north-last", mesh)
	nf, _ := turnmodel.NewRouting("negative-first", mesh)
	if err := turnmodel.ValidateNumbering(turnmodel.WestFirstNumbering(mesh), wf); err != nil {
		t.Error(err)
	}
	if err := turnmodel.ValidateNumbering(turnmodel.NorthLastNumbering(mesh), nl); err != nil {
		t.Error(err)
	}
	if err := turnmodel.ValidateNumbering(turnmodel.NegativeFirstNumbering(mesh), nf); err != nil {
		t.Error(err)
	}
	// Cross-validation must fail: the west-first numbering does not
	// certify north-last.
	if err := turnmodel.ValidateNumbering(turnmodel.WestFirstNumbering(mesh), nl); err == nil {
		t.Error("west-first numbering wrongly certified north-last")
	}
}

func TestFacadeTraffic(t *testing.T) {
	mesh := turnmodel.NewMesh2D(16, 16)
	cube := turnmodel.NewHypercube(8)
	if got := turnmodel.AveragePathLength(turnmodel.TransposeTraffic(mesh), mesh); got < 11.3 || got > 11.4 {
		t.Errorf("transpose path length %.3f", got)
	}
	if got := turnmodel.AveragePathLength(turnmodel.ReverseFlipTraffic(cube), cube); got < 4.26 || got > 4.28 {
		t.Errorf("reverse-flip path length %.3f", got)
	}
	if turnmodel.UniformTraffic(mesh).Name() != "uniform" {
		t.Error("uniform name wrong")
	}
	if turnmodel.BitComplementTraffic(mesh) == nil || turnmodel.HotspotTraffic(mesh, 0, 0.1) == nil {
		t.Error("extra patterns missing")
	}
	if turnmodel.HypercubeTransposeTraffic(cube) == nil {
		t.Error("hypercube transpose missing")
	}
}

func TestFacadeSimulation(t *testing.T) {
	mesh := turnmodel.NewMesh2D(8, 8)
	alg, _ := turnmodel.NewRouting("west-first", mesh)
	res := turnmodel.Simulate(turnmodel.SimConfig{
		Routing: alg,
		RunParams: turnmodel.SimRunParams{
			Pattern:       turnmodel.UniformTraffic(mesh),
			InjectionRate: 0.05,
			WarmupCycles:  3000,
			MeasureCycles: 20000,
			Seed:          5,
		},
	})
	if !res.Sustainable || res.Packets == 0 {
		t.Errorf("simulation failed: %+v", res)
	}
	rs := turnmodel.SweepRates(turnmodel.SimConfig{
		Routing: alg,
		RunParams: turnmodel.SimRunParams{
			Pattern:      turnmodel.UniformTraffic(mesh),
			WarmupCycles: 1000, MeasureCycles: 2000,
		},
	}, []float64{0.01, 0.02})
	if len(rs) != 2 {
		t.Fatalf("sweep returned %d results", len(rs))
	}
}

func TestFacadeManualNetwork(t *testing.T) {
	mesh := turnmodel.NewMesh2D(4, 4)
	alg, _ := turnmodel.NewRouting("xy", mesh)
	net := turnmodel.NewNetwork(turnmodel.NetworkConfig{Routing: alg})
	p := net.Enqueue(0, 15, 10)
	for i := 0; i < 1000 && net.InFlight() > 0; i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Latency() != 6+10-1 {
		t.Errorf("latency %d, want 15", p.Latency())
	}
	if turnmodel.FlitsPerMicrosecond != 20 {
		t.Error("bandwidth constant wrong")
	}
}

func TestFacadeFigures(t *testing.T) {
	if len(turnmodel.Figures()) != 5 {
		t.Error("figures catalog wrong")
	}
	spec, ok := turnmodel.FigureByID("figure16")
	if !ok {
		t.Fatal("figure16 missing")
	}
	spec.Rates = []float64{0.05}
	fr, err := turnmodel.RunFigure(spec, 300, 600, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(fr.Table(), "figure16") {
		t.Error("figure table malformed")
	}

	// The parallel runner agrees with the serial path and reports timings.
	frs, report, err := turnmodel.RunSweepPlan(turnmodel.SweepPlan{
		Specs: []turnmodel.FigureSpec{spec}, WarmupCycles: 300, MeasureCycles: 600, Seed: 1, Jobs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 1 || frs[0].Table() != fr.Table() {
		t.Error("RunSweepPlan diverges from RunFigure")
	}
	if report.Totals.JobsRun != len(spec.Algorithms) {
		t.Errorf("report counted %d jobs", report.Totals.JobsRun)
	}
	spec.Algorithms = []string{"bogus"}
	if _, err := turnmodel.RunFigure(spec, 300, 600, 1); err == nil {
		t.Error("bad algorithm not reported")
	}
}

func TestFacadeAdaptiveness(t *testing.T) {
	cube := turnmodel.NewHypercube(6)
	pc, _ := turnmodel.NewRouting("p-cube", cube)
	src, dst := uint(0b101010), uint(0b010101)
	if got := turnmodel.PCubeShortestPaths(src, dst); got != 36 {
		t.Errorf("PCubeShortestPaths = %d, want 36", got)
	}
	if got := turnmodel.CountShortestPaths(pc, turnmodel.NodeID(src), turnmodel.NodeID(dst)); got != 36 {
		t.Errorf("CountShortestPaths = %d, want 36", got)
	}
	minimal, extra := turnmodel.PCubeChoices(src, dst, 6)
	if minimal != 3 || extra != 0 {
		t.Errorf("PCubeChoices = %d,%d", minimal, extra)
	}
	mesh := turnmodel.NewMesh2D(6, 6)
	wf, _ := turnmodel.NewRouting("west-first", mesh)
	if r := turnmodel.AverageAdaptivenessRatio(wf); r <= 0.5 {
		t.Errorf("adaptiveness ratio %.3f <= 1/2", r)
	}
}

func TestFacadeVirtualChannels(t *testing.T) {
	mesh := turnmodel.NewMesh2D(4, 4)
	torus := turnmodel.NewKaryNCube(4, 2)
	dy, err := turnmodel.NewVCRouting("double-y", mesh)
	if err != nil {
		t.Fatal(err)
	}
	if cyc := turnmodel.VerifyVCDeadlockFree(dy); cyc != nil {
		t.Errorf("double-y not deadlock free: %v", cyc)
	}
	naive, err := turnmodel.NewVCRouting("naive-torus-dor", torus)
	if err != nil {
		t.Fatal(err)
	}
	if turnmodel.VerifyVCDeadlockFree(naive) == nil {
		t.Error("naive torus DOR verified deadlock free")
	}
	// Lifted physical algorithm.
	if _, err := turnmodel.NewVCRouting("west-first", mesh); err != nil {
		t.Error(err)
	}
	// Manual VC network drive.
	net := turnmodel.NewVCNetwork(turnmodel.VCNetworkConfig{Routing: dy})
	p := net.Enqueue(0, 15, 5)
	for i := 0; i < 1000 && net.InFlight() > 0; i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Latency() != 6+5-1 {
		t.Errorf("VC zero-load latency %d, want 10", p.Latency())
	}
	// One VC simulation run.
	res := turnmodel.SimulateVC(turnmodel.VCSimConfig{
		Routing: dy,
		RunParams: turnmodel.SimRunParams{
			Pattern:       turnmodel.UniformTraffic(mesh),
			InjectionRate: 0.04,
			WarmupCycles:  1000,
			MeasureCycles: 4000,
			Seed:          3,
		},
	})
	if res.Packets == 0 || res.Deadlocked {
		t.Errorf("VC simulation failed: %+v", res)
	}
}

func TestFacadeFaults(t *testing.T) {
	mesh := turnmodel.NewMesh2D(4, 4)
	alg, _ := turnmodel.NewRouting("west-first", mesh)
	fault := turnmodel.Channel{
		From: mesh.ID(turnmodel.Coord{1, 0}),
		To:   mesh.ID(turnmodel.Coord{2, 0}),
		Dir:  turnmodel.East,
	}
	net := turnmodel.NewNetwork(turnmodel.NetworkConfig{
		Routing: alg,
		Faults:  []turnmodel.Channel{fault},
	})
	p := net.Enqueue(mesh.ID(turnmodel.Coord{0, 0}), mesh.ID(turnmodel.Coord{3, 1}), 5)
	for i := 0; i < 5000 && net.InFlight() > 0; i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Arrived < 0 {
		t.Error("adaptive routing did not deliver around the fault")
	}
}

func TestFacadePolicies(t *testing.T) {
	if turnmodel.LowestDimensionOutput().Name() != "xy" {
		t.Error("lowest-dimension policy wrong")
	}
	if turnmodel.RandomOutput().Name() != "random" {
		t.Error("random policy wrong")
	}
	if turnmodel.StraightFirstOutput().Name() != "straight-first" {
		t.Error("straight-first policy wrong")
	}
	if turnmodel.LocalFCFSInput().Name() != "local-fcfs" {
		t.Error("fcfs policy wrong")
	}
	if turnmodel.OldestFirstInput().Name() != "oldest-first" {
		t.Error("oldest policy wrong")
	}
}

func TestFacadePhasedRouting(t *testing.T) {
	// Build a custom discipline through the public API: "south-first".
	mesh := turnmodel.NewMesh2D(5, 5)
	alg := turnmodel.NewPhasedRouting(mesh, "south-first",
		[]turnmodel.Direction{turnmodel.South},
		[]turnmodel.Direction{turnmodel.West, turnmodel.East, turnmodel.North},
	)
	if alg.Name() != "south-first" {
		t.Errorf("Name = %q", alg.Name())
	}
	if cyc := turnmodel.VerifyDeadlockFree(alg); cyc != nil {
		t.Errorf("south-first not deadlock free: %v", cyc)
	}
	// Southbound hops must come first when both south and east are needed.
	src := mesh.ID(turnmodel.Coord{1, 3})
	cands := alg.Candidates(src, mesh.ID(turnmodel.Coord{3, 1}), turnmodel.Direction(-1), false)
	if len(cands) != 1 || cands[0] != turnmodel.South {
		t.Errorf("candidates = %v, want [south]", cands)
	}
}

func TestFacadeCCC(t *testing.T) {
	c := turnmodel.NewCCC(3)
	if c.Nodes() != 24 {
		t.Fatalf("Nodes = %d", c.Nodes())
	}
	asc, err := turnmodel.NewVCRouting("ccc-ascending", c)
	if err != nil {
		t.Fatal(err)
	}
	if cyc := turnmodel.VerifyVCDeadlockFree(asc); cyc != nil {
		t.Errorf("ccc-ascending not deadlock free: %v", cyc)
	}
	naive, err := turnmodel.NewVCRouting("ccc-naive", c)
	if err != nil {
		t.Fatal(err)
	}
	if turnmodel.VerifyVCDeadlockFree(naive) == nil {
		t.Error("ccc-naive verified deadlock free")
	}
	// Deliver a packet end to end on the VC simulator.
	net := turnmodel.NewVCNetwork(turnmodel.VCNetworkConfig{Routing: asc})
	p := net.Enqueue(0, 23, 5)
	for i := 0; i < 5000 && net.InFlight() > 0; i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if p.Arrived < 0 {
		t.Error("CCC packet not delivered")
	}
}

func TestFacadeFaultRouting(t *testing.T) {
	mesh := turnmodel.NewMesh2D(6, 6)
	alg, err := turnmodel.NewRouting("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	plan := turnmodel.FaultPlan{Static: []turnmodel.Channel{
		{From: 7, Dir: turnmodel.East},
		{From: 14, Dir: turnmodel.North},
	}}
	pol := turnmodel.FaultRoutingPolicy{
		Visibility:    turnmodel.FaultVisibilityKHop,
		MisrouteLimit: 4,
	}
	cyc, err := turnmodel.VerifyDeadlockFreeFaulted(alg, plan, pol)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != nil {
		t.Errorf("faulted negative-first not deadlock free: %v", cyc)
	}
	// The unsafe baseline stays cyclic under the same faults.
	fa, err := turnmodel.NewRouting("fully-adaptive", mesh)
	if err != nil {
		t.Fatal(err)
	}
	cyc, err = turnmodel.VerifyDeadlockFreeFaulted(fa, plan, turnmodel.FaultRoutingPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if cyc == nil {
		t.Error("fully-adaptive verified deadlock free under faults")
	}
	// An invalid plan surfaces as an error, not a panic.
	if _, err := turnmodel.VerifyDeadlockFreeFaulted(alg, turnmodel.FaultPlan{Rate: 2}, pol); err == nil {
		t.Error("invalid plan accepted")
	}
	// Simulate with the policy on: masking accounting lands in the result.
	res := turnmodel.Simulate(turnmodel.SimConfig{
		Routing: alg,
		RunParams: turnmodel.SimRunParams{
			Pattern:       turnmodel.UniformTraffic(mesh),
			InjectionRate: 0.03,
			WarmupCycles:  500,
			MeasureCycles: 2000,
			Seed:          3,
			FaultPlan:     plan,
			Recovery:      turnmodel.FaultRecovery{Enabled: true},
			FaultRouting:  pol,
		},
	})
	if res.MaskedFaults == 0 {
		t.Error("no masked decisions with two static faults and an adaptive algorithm")
	}
	// The mode comparison is exported and consistent with RunResilience.
	if len(turnmodel.ResilienceModes()) != 3 {
		t.Errorf("ResilienceModes = %d, want 3", len(turnmodel.ResilienceModes()))
	}
}
