// Package turnmodel is a Go implementation of the turn model for adaptive
// routing (Glass & Ni, ISCA 1992; retrospective ISCA 1998) together with
// everything needed to reproduce the paper's evaluation: the partially
// adaptive routing algorithms the model derives (west-first, north-last,
// negative-first, ABONF, ABOPL, p-cube), the nonadaptive baselines (xy,
// e-cube), mesh / k-ary n-cube / hypercube topologies, a cycle-accurate
// flit-level wormhole network simulator, the paper's traffic patterns,
// deadlock-freedom verification via channel dependency graphs and channel
// numberings, and adaptiveness analysis.
//
// # Quick start
//
//	mesh := turnmodel.NewMesh2D(16, 16)
//	alg, _ := turnmodel.NewRouting("west-first", mesh)
//	res := turnmodel.Simulate(turnmodel.SimConfig{
//		Routing: alg,
//		RunParams: turnmodel.SimRunParams{
//			Pattern:       turnmodel.UniformTraffic(mesh),
//			InjectionRate: 0.05,
//		},
//	})
//	fmt.Println(res)
//
// # Layout
//
// The facade re-exports the library's stable surface; the implementation
// lives in internal packages, one per subsystem:
//
//   - internal/topology: meshes, tori, hypercubes, and the Section 7
//     future-work topologies (hexagonal, octagonal, cube-connected
//     cycles)
//   - internal/turnmodel: turns, abstract cycles, channel dependency
//     graphs, channel numberings (the paper's core)
//   - internal/routing: all routing algorithms
//   - internal/network: the wormhole simulator, with fault injection and
//     a configurable routing-decision delay
//   - internal/vc: virtual-channel routing (dateline torus DOR, double-y
//     fully adaptive, CCC) and its dependency-graph verifier
//   - internal/vcnet: the per-flit virtual-channel simulator
//   - internal/traffic: workloads
//   - internal/sim: the experiment harness, the paper's figures, and the
//     extension experiments
//   - internal/adaptiveness: shortest-path counting and Section 3.4/5
//     closed forms
//
// The cmd directory holds the command-line tools (turnsim, turnsweep,
// turncheck, adaptivestats) and examples holds runnable programs built on
// this facade.
package turnmodel
