package metrics

import (
	"fmt"
	"sort"
	"strings"

	"turnmodel/internal/topology"
)

// heatShades maps utilization in [0,1] to a character ramp.
var heatShades = []byte(" .:-=+*#%@")

func shade(u float64) byte {
	i := int(u * float64(len(heatShades)))
	if i >= len(heatShades) {
		i = len(heatShades) - 1
	}
	if i < 0 {
		i = 0
	}
	return heatShades[i]
}

// Summary renders the scalar metrics as a short human-readable block.
func (s *Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "window: %d cycles, %d packets in / %d out\n",
		s.WindowCycles, s.PacketsInjected, s.PacketsDelivered)
	fmt.Fprintf(&b, "latency: p50 %.2f us, p95 %.2f us, p99 %.2f us\n",
		s.LatencyP50Us, s.LatencyP95Us, s.LatencyP99Us)
	fmt.Fprintf(&b, "delay split: queueing %.2f us, in-network %.2f us\n",
		s.AvgQueueDelayUs, s.AvgNetDelayUs)
	fmt.Fprintf(&b, "blocked header-cycles: %d\n", s.BlockedCycles)
	fmt.Fprintf(&b, "channel utilization: mean %.3f, max %.3f\n",
		s.MeanChannelUtil, s.MaxChannelUtil)
	return b.String()
}

// nodeMaxUtil is the highest utilization among the node's output channels.
func (s *Snapshot) nodeMaxUtil(node int) float64 {
	max := 0.0
	for d := 0; d < s.Dirs; d++ {
		if u := s.ChannelUtil[node*s.Dirs+d]; u > max {
			max = u
		}
	}
	return max
}

// UtilizationHeatmap renders per-node peak output-channel utilization. For
// two-dimensional topologies it draws a MeshWidth x MeshHeight grid of
// shade characters (top row = highest y, matching the paper's mesh
// figures), with the shade legend underneath. For other topologies it
// falls back to HottestChannels.
func (s *Snapshot) UtilizationHeatmap() string {
	if s.MeshWidth*s.MeshHeight != s.Nodes || s.Nodes == 0 {
		return s.HottestChannels(10)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "per-node peak channel utilization (%dx%d):\n", s.MeshWidth, s.MeshHeight)
	for y := s.MeshHeight - 1; y >= 0; y-- {
		fmt.Fprintf(&b, "%3d ", y)
		for x := 0; x < s.MeshWidth; x++ {
			b.WriteByte(shade(s.nodeMaxUtil(y*s.MeshWidth + x)))
		}
		b.WriteByte('\n')
	}
	b.WriteString("    ")
	for x := 0; x < s.MeshWidth; x++ {
		b.WriteByte("0123456789"[x%10])
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "legend: '%s' = 0..1\n", heatShades)
	return b.String()
}

// HottestChannels lists the n busiest channels with their utilization and
// blocked-cycle counts at their source node.
func (s *Snapshot) HottestChannels(n int) string {
	type ch struct {
		idx  int
		util float64
	}
	chans := make([]ch, 0, len(s.ChannelUtil))
	for i, u := range s.ChannelUtil {
		if u > 0 {
			chans = append(chans, ch{i, u})
		}
	}
	sort.Slice(chans, func(i, j int) bool {
		if chans[i].util != chans[j].util {
			return chans[i].util > chans[j].util
		}
		return chans[i].idx < chans[j].idx
	})
	if n > len(chans) {
		n = len(chans)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "hottest channels (of %d loaded):\n", len(chans))
	for _, c := range chans[:n] {
		node := c.idx / s.Dirs
		dir := topology.Direction(c.idx % s.Dirs)
		fmt.Fprintf(&b, "  node %4d %-10s util %.3f (blocked %d cycles at node)\n",
			node, dir, c.util, s.NodeBlocked[node])
	}
	return b.String()
}
