package metrics

import (
	"math"
	"math/bits"
)

// Histogram bucketing: values below histExact get one exact bucket each;
// larger values fall into octaves split into histSub sub-buckets, so the
// relative quantization error is bounded by 1/histSub (12.5%) while the
// bucket count stays logarithmic in the value range — the usual
// HDR/log-linear scheme. A 60000-cycle run needs ~110 buckets.
const (
	histSubBits = 3
	histSub     = 1 << histSubBits // sub-buckets per octave
	histExact   = 2 * histSub      // values < histExact are exact
)

// Histogram is a log-bucketed histogram of non-negative int64 samples
// (latencies in cycles). The zero value is ready to use. Observe never
// allocates once the bucket slice has grown to cover the largest sample.
type Histogram struct {
	counts   []int64
	count    int64
	sum      int64
	min, max int64
}

// Observe records one sample. Negative samples are clamped to zero.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
	b := bucketOf(v)
	for len(h.counts) <= b {
		h.counts = append(h.counts, 0)
	}
	h.counts[b]++
}

// Count is the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum is the exact sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Mean is the exact mean of recorded samples, 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max are the exact extremes of recorded samples, 0 when empty.
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Reset forgets all samples but keeps the bucket storage.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.count, h.sum, h.min, h.max = 0, 0, 0, 0
}

// Quantile returns the q-th percentile (q in [0,100]) by nearest rank over
// the buckets: the midpoint of the bucket containing the rank, clamped to
// the observed [Min, Max] so the estimate never leaves the sample range.
// Exact for values below histExact; otherwise within 1/histSub relative
// error. Returns 0 when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank > h.count {
		rank = h.count
	}
	var cum int64
	for b, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketMid(b)
			if v < float64(h.min) {
				v = float64(h.min)
			}
			if v > float64(h.max) {
				v = float64(h.max)
			}
			return v
		}
	}
	return float64(h.max)
}

// bucketOf maps a non-negative value to its bucket index.
func bucketOf(v int64) int {
	if v < histExact {
		return int(v)
	}
	k := bits.Len64(uint64(v)) // 2^(k-1) <= v < 2^k, k >= histSubBits+2
	sub := int(v>>(k-1-histSubBits)) & (histSub - 1)
	return histExact + (k-histSubBits-2)<<histSubBits + sub
}

// bucketMid is the midpoint of the bucket's value range.
func bucketMid(b int) float64 {
	if b < histExact {
		return float64(b)
	}
	o := (b - histExact) >> histSubBits
	sub := int64(b-histExact) & (histSub - 1)
	k := o + histSubBits + 2
	low := int64(1)<<(k-1) + sub<<(k-1-histSubBits)
	width := int64(1) << (k - 1 - histSubBits)
	return float64(low) + float64(width)/2
}
