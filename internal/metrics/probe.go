// Package metrics is the in-simulator observability layer: a Probe
// interface the flit-level simulators (internal/network, internal/vcnet)
// emit events into, and stdlib-only collectors that turn those events into
// per-channel utilization, blocked-cycle counters, log-bucketed latency
// histograms and a warmup occupancy trace.
//
// The layer is zero-cost when off: every emission site in the simulators is
// nil-guarded, so a nil probe adds one predictable branch and no
// allocations to the hot loops (enforced by BenchmarkNetworkStep's
// allocs/op gate in CI).
package metrics

import "turnmodel/internal/topology"

// Probe receives simulation events. Implementations must be cheap: the
// simulators call these methods from their innermost loops, once per event,
// with no batching beyond what the event semantics already imply.
// Implementations must not retain references to mutable simulator state
// (the arguments are all values).
//
// Event semantics, shared by both simulators:
//
//   - Inject: a packet's header flit entered the network (left the source
//     queue for the injection buffer).
//   - Blocked: a header flit requested an output channel this cycle and was
//     not allocated one — either every permitted candidate was busy or
//     faulted, or arbitration gave the channel to a competing header. One
//     event per blocked header per cycle.
//   - FlitMove: flits crossed the channel leaving `from` in direction
//     `dir`. internal/network accounts at tail release (the whole packet's
//     `flits` at once, when the last flit finishes crossing);
//     internal/vcnet accounts per flit per cycle (`flits` is always 1).
//     Ejection into the destination processor is not a FlitMove.
//   - Deliver: a packet's tail flit was consumed at the destination.
//     queueDelay is the time from generation to injection (source
//     queueing), netDelay from injection to tail consumption; both are in
//     cycles and sum to the packet's end-to-end latency.
//   - Fault: the channel leaving `from` in direction `dir` broke
//     (failed=true) or was repaired (failed=false). Emitted by the
//     fault-injection layer as the fault plan advances.
//   - Abort: deadlock recovery yanked a blocked worm out of the network:
//     its flits were drained and its buffers and channels released.
//     attempt counts the packet's aborts so far (1 on the first). The
//     packet either retries (a later Retry then Inject) or is dropped (a
//     Drop follows in the same cycle), so in-flight accounting derived
//     from Inject/Deliver must subtract aborted injections.
//   - Retry: an aborted packet was requeued at its source, to reinject
//     after `delay` cycles of backoff.
//   - Drop: a packet was abandoned: its destination became unreachable
//     under the current fault set, or its retry budget ran out.
//   - Tick: the simulator finished one Step. cycle is the cycle that just
//     completed; Tick(c) is emitted after every event of cycle c.
type Probe interface {
	Inject(cycle int64, src, dst topology.NodeID, length int)
	Blocked(cycle int64, node topology.NodeID)
	FlitMove(cycle int64, from topology.NodeID, dir topology.Direction, flits int)
	Deliver(cycle int64, src, dst topology.NodeID, length, hops int, queueDelay, netDelay int64)
	Fault(cycle int64, from topology.NodeID, dir topology.Direction, failed bool)
	Abort(cycle int64, src, dst topology.NodeID, length, attempt int)
	Retry(cycle int64, src, dst topology.NodeID, attempt int, delay int64)
	Drop(cycle int64, src, dst topology.NodeID, length int, reason DropReason)
	Tick(cycle int64)
}

// NopProbe implements Probe with empty methods. Embed it to implement
// only the events a probe cares about (a tick counter, say) without
// spelling out the full interface.
type NopProbe struct{}

func (NopProbe) Inject(int64, topology.NodeID, topology.NodeID, int)                     {}
func (NopProbe) Blocked(int64, topology.NodeID)                                          {}
func (NopProbe) FlitMove(int64, topology.NodeID, topology.Direction, int)                {}
func (NopProbe) Deliver(int64, topology.NodeID, topology.NodeID, int, int, int64, int64) {}
func (NopProbe) Fault(int64, topology.NodeID, topology.Direction, bool)                  {}
func (NopProbe) Abort(int64, topology.NodeID, topology.NodeID, int, int)                 {}
func (NopProbe) Retry(int64, topology.NodeID, topology.NodeID, int, int64)               {}
func (NopProbe) Drop(int64, topology.NodeID, topology.NodeID, int, DropReason)           {}
func (NopProbe) Tick(int64)                                                              {}

// DropReason says why a packet was dropped rather than delivered.
type DropReason int

const (
	// DropUnreachable: no fault-free path permitted by the routing
	// algorithm leads from the packet's position to its destination.
	DropUnreachable DropReason = iota
	// DropRetriesExhausted: the packet was aborted more times than the
	// recovery policy's retry budget allows.
	DropRetriesExhausted
)

func (r DropReason) String() string {
	switch r {
	case DropUnreachable:
		return "unreachable"
	case DropRetriesExhausted:
		return "retries-exhausted"
	}
	return "unknown"
}

// Tee fans every event out to both probes, a first, in order. Either may be
// nil, in which case the other is returned directly.
func Tee(a, b Probe) Probe {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return &tee{a, b}
}

type tee struct{ a, b Probe }

func (t *tee) Inject(cycle int64, src, dst topology.NodeID, length int) {
	t.a.Inject(cycle, src, dst, length)
	t.b.Inject(cycle, src, dst, length)
}

func (t *tee) Blocked(cycle int64, node topology.NodeID) {
	t.a.Blocked(cycle, node)
	t.b.Blocked(cycle, node)
}

func (t *tee) FlitMove(cycle int64, from topology.NodeID, dir topology.Direction, flits int) {
	t.a.FlitMove(cycle, from, dir, flits)
	t.b.FlitMove(cycle, from, dir, flits)
}

func (t *tee) Deliver(cycle int64, src, dst topology.NodeID, length, hops int, queueDelay, netDelay int64) {
	t.a.Deliver(cycle, src, dst, length, hops, queueDelay, netDelay)
	t.b.Deliver(cycle, src, dst, length, hops, queueDelay, netDelay)
}

func (t *tee) Fault(cycle int64, from topology.NodeID, dir topology.Direction, failed bool) {
	t.a.Fault(cycle, from, dir, failed)
	t.b.Fault(cycle, from, dir, failed)
}

func (t *tee) Abort(cycle int64, src, dst topology.NodeID, length, attempt int) {
	t.a.Abort(cycle, src, dst, length, attempt)
	t.b.Abort(cycle, src, dst, length, attempt)
}

func (t *tee) Retry(cycle int64, src, dst topology.NodeID, attempt int, delay int64) {
	t.a.Retry(cycle, src, dst, attempt, delay)
	t.b.Retry(cycle, src, dst, attempt, delay)
}

func (t *tee) Drop(cycle int64, src, dst topology.NodeID, length int, reason DropReason) {
	t.a.Drop(cycle, src, dst, length, reason)
	t.b.Drop(cycle, src, dst, length, reason)
}

func (t *tee) Tick(cycle int64) {
	t.a.Tick(cycle)
	t.b.Tick(cycle)
}
