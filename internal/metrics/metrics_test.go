package metrics

import (
	"math"
	"strings"
	"testing"

	"turnmodel/internal/topology"
)

func TestHistogramExactBelow16(t *testing.T) {
	var h Histogram
	for v := int64(0); v < histExact; v++ {
		h.Observe(v)
	}
	if h.Count() != histExact || h.Min() != 0 || h.Max() != histExact-1 {
		t.Fatalf("count=%d min=%d max=%d", h.Count(), h.Min(), h.Max())
	}
	if h.Sum() != histExact*(histExact-1)/2 {
		t.Errorf("sum = %d", h.Sum())
	}
	// With one sample per exact bucket, the q-th percentile is the
	// nearest-rank sample itself.
	for q, want := range map[float64]float64{50: 7, 100: 15} {
		if got := h.Quantile(q); got != want {
			t.Errorf("Quantile(%v) = %v, want %v", q, got, want)
		}
	}
}

func TestHistogramBucketing(t *testing.T) {
	prev := -1
	for v := int64(0); v < 1<<20; v = v*5/4 + 1 {
		b := bucketOf(v)
		if b < prev {
			t.Fatalf("bucketOf not monotonic at %d: %d < %d", v, b, prev)
		}
		prev = b
		mid := bucketMid(b)
		if err := math.Abs(mid - float64(v)); err > float64(v)/8+0.5 {
			t.Errorf("bucketMid(%d)=%v for value %d: error %v exceeds 12.5%%", b, mid, v, err)
		}
	}
}

func TestHistogramQuantileAndReset(t *testing.T) {
	var h Histogram
	h.Observe(-5) // clamps to 0
	if h.Min() != 0 || h.Count() != 1 {
		t.Fatalf("negative sample not clamped: min=%d count=%d", h.Min(), h.Count())
	}
	h.Reset()
	if h.Count() != 0 || h.Quantile(50) != 0 || h.Mean() != 0 {
		t.Fatal("reset histogram not empty")
	}
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	for _, tc := range []struct{ q, want float64 }{{50, 500}, {95, 950}, {99, 990}} {
		got := h.Quantile(tc.q)
		if math.Abs(got-tc.want) > tc.want/8 {
			t.Errorf("Quantile(%v) = %v, want %v within 12.5%%", tc.q, got, tc.want)
		}
	}
	if p0 := h.Quantile(0); p0 != 1 {
		t.Errorf("p0 = %v, want exact min 1", p0)
	}
	if p100 := h.Quantile(100); p100 > 1000 || p100 < 1000-1000.0/8 {
		t.Errorf("p100 = %v, want within bucketing error below max 1000", p100)
	}
	if h.Mean() != 500.5 {
		t.Errorf("mean = %v", h.Mean())
	}
}

func TestCollectorWindowAndUtilization(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	c := NewCollector(mesh, Options{})
	// Channel 5->East carries one flit per cycle for 10 cycles; node 3
	// blocks twice; one packet flows end to end.
	c.Inject(0, 5, 6, 10)
	for cy := int64(0); cy < 10; cy++ {
		c.FlitMove(cy, 5, topology.East, 1)
		c.Tick(cy)
	}
	c.Blocked(3, 3)
	c.Blocked(4, 3)
	c.Deliver(9, 5, 6, 10, 1, 2, 8)
	if u := c.ChannelUtil(5, topology.East); u != 1 {
		t.Errorf("saturated channel utilization = %v", u)
	}
	snap := c.Snapshot()
	if snap.WindowCycles != 10 || snap.PacketsInjected != 1 || snap.PacketsDelivered != 1 {
		t.Errorf("window=%d in=%d out=%d", snap.WindowCycles, snap.PacketsInjected, snap.PacketsDelivered)
	}
	if snap.BlockedCycles != 2 || snap.NodeBlocked[3] != 2 {
		t.Errorf("blocked: total=%d node3=%d", snap.BlockedCycles, snap.NodeBlocked[3])
	}
	// queue 2 + net 8 cycles = 10 cycles = 0.5 us at 20 flits/us.
	if snap.LatencyP50Us != 0.5 || snap.AvgQueueDelayUs != 0.1 || snap.AvgNetDelayUs != 0.4 {
		t.Errorf("latency p50=%v queue=%v net=%v", snap.LatencyP50Us, snap.AvgQueueDelayUs, snap.AvgNetDelayUs)
	}
	if snap.MaxChannelUtil != 1 {
		t.Errorf("max util = %v", snap.MaxChannelUtil)
	}
	// 4x4 mesh has 2*4*3 = 24 directed channels per axis, 48 total.
	if want := 1.0 / 48; math.Abs(snap.MeanChannelUtil-round4(want)) > 1e-9 {
		t.Errorf("mean util = %v, want %v", snap.MeanChannelUtil, round4(want))
	}
	if snap.MeshWidth != 4 || snap.MeshHeight != 4 {
		t.Errorf("mesh dims %dx%d", snap.MeshWidth, snap.MeshHeight)
	}

	// Reopening the window clears window counters but not the occupancy
	// trace or in-flight accounting.
	c.Inject(10, 0, 15, 4)
	c.BeginMeasurement(11)
	if u := c.ChannelUtil(5, topology.East); u != 0 {
		t.Errorf("utilization %v survived BeginMeasurement", u)
	}
	snap2 := c.Snapshot()
	if snap2.PacketsInjected != 0 || snap2.BlockedCycles != 0 || snap2.LatencyP50Us != 0 {
		t.Errorf("window counters survived BeginMeasurement: %+v", snap2)
	}
	if len(snap2.OccupancyFlits) == 0 {
		t.Error("occupancy trace lost at BeginMeasurement")
	}
	c.Tick(512) // next occupancy sample point at the default period
	if got := c.Snapshot().OccupancyFlits; got[len(got)-1] != 4 {
		t.Errorf("in-flight flits = %d after window reopen, want 4", got[len(got)-1])
	}
}

func TestCollectorSkipsMissingChannels(t *testing.T) {
	mesh := topology.NewMesh2D(3, 3)
	c := NewCollector(mesh, Options{})
	// Corner node 0 has no West or South channel.
	if c.exists[0*c.dirs+int(topology.West)] || c.exists[0*c.dirs+int(topology.South)] {
		t.Error("corner boundary channels marked existing")
	}
	// 3x3 mesh: 2 directed channels per edge, 12 edges.
	if c.channels != 24 {
		t.Errorf("channel count = %d, want 24", c.channels)
	}
}

func TestCollectorOccupancyDecimation(t *testing.T) {
	mesh := topology.NewMesh2D(2, 2)
	c := NewCollector(mesh, Options{OccupancyEvery: 1, OccupancyCap: 8})
	c.Inject(0, 0, 3, 1) // one flit in flight throughout
	for cy := int64(0); cy < 1000; cy++ {
		c.Tick(cy)
	}
	snap := c.Snapshot()
	if len(snap.OccupancyFlits) > 8 {
		t.Fatalf("trace length %d exceeds cap", len(snap.OccupancyFlits))
	}
	if snap.OccupancyEvery <= 1 {
		t.Errorf("period %d never doubled over 1000 samples at cap 8", snap.OccupancyEvery)
	}
	// The trace must still span the run: last sample within one period of
	// the end.
	if covered := int64(len(snap.OccupancyFlits)) * snap.OccupancyEvery; covered < 1000-snap.OccupancyEvery {
		t.Errorf("trace covers %d of 1000 cycles at period %d", covered, snap.OccupancyEvery)
	}
	for i, v := range snap.OccupancyFlits {
		if v != 1 {
			t.Fatalf("sample %d = %d, want 1", i, v)
		}
	}
}

func TestTee(t *testing.T) {
	mesh := topology.NewMesh2D(2, 2)
	a := NewCollector(mesh, Options{})
	b := NewCollector(mesh, Options{})
	if Tee(nil, a) != a || Tee(a, nil) != a || Tee(nil, nil) != nil {
		t.Fatal("nil-tolerance broken")
	}
	p := Tee(a, b)
	p.Inject(0, 0, 3, 5)
	p.Blocked(1, 2)
	p.FlitMove(1, 0, topology.East, 1)
	p.Deliver(4, 0, 3, 5, 2, 1, 3)
	p.Tick(4)
	sa, sb := a.Snapshot(), b.Snapshot()
	if sa.PacketsInjected != 1 || sb.PacketsInjected != 1 ||
		sa.BlockedCycles != 1 || sb.BlockedCycles != 1 ||
		sa.PacketsDelivered != 1 || sb.PacketsDelivered != 1 {
		t.Errorf("tee did not fan out: a=%+v b=%+v", sa, sb)
	}
	if sa.ChannelUtil[0*sa.Dirs+int(topology.East)] != sb.ChannelUtil[0*sb.Dirs+int(topology.East)] {
		t.Error("tee halves diverge on channel flits")
	}
}

func TestRenderers(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	c := NewCollector(mesh, Options{})
	c.Inject(0, 5, 6, 10)
	for cy := int64(0); cy < 10; cy++ {
		c.FlitMove(cy, 5, topology.East, 1)
		c.Tick(cy)
	}
	c.Deliver(9, 5, 6, 10, 1, 2, 8)
	snap := c.Snapshot()

	sum := snap.Summary()
	for _, want := range []string{"window:", "latency:", "delay split:", "blocked", "channel utilization:"} {
		if !strings.Contains(sum, want) {
			t.Errorf("Summary missing %q:\n%s", want, sum)
		}
	}
	hm := snap.UtilizationHeatmap()
	if lines := strings.Count(hm, "\n"); lines != 4+3 {
		t.Errorf("heatmap has %d lines, want 7:\n%s", lines, hm)
	}
	if !strings.Contains(hm, "legend:") || !strings.Contains(hm, "@") {
		t.Errorf("heatmap lacks legend or saturated shade:\n%s", hm)
	}
	hot := snap.HottestChannels(3)
	if !strings.Contains(hot, "node    5 east(+x)   util 1.000") {
		t.Errorf("hottest channels wrong:\n%s", hot)
	}

	// Non-mesh geometry falls back to the hottest-channel list.
	snap.MeshWidth = 0
	if out := snap.UtilizationHeatmap(); !strings.Contains(out, "hottest channels") {
		t.Errorf("fallback missing:\n%s", out)
	}
}
