package metrics

import (
	"math"

	"turnmodel/internal/topology"
)

// Options tunes a Collector. The zero value selects all defaults.
type Options struct {
	// OccupancyEvery is the occupancy-trace sampling period in cycles.
	// 0 selects 512.
	OccupancyEvery int64
	// OccupancyCap bounds the trace length. When the trace fills, every
	// other sample is dropped and the period doubles, so the trace always
	// spans the whole run at bounded memory. 0 selects 2048.
	OccupancyCap int
	// FlitsPerUs converts cycles to microseconds in Snapshot fields.
	// 0 selects 20, the paper's channel bandwidth (network.FlitsPerMicrosecond).
	FlitsPerUs float64
}

func (o Options) withDefaults() Options {
	if o.OccupancyEvery <= 0 {
		o.OccupancyEvery = 512
	}
	if o.OccupancyCap <= 0 {
		o.OccupancyCap = 2048
	}
	if o.FlitsPerUs <= 0 {
		o.FlitsPerUs = 20
	}
	return o
}

// Collector is the standard Probe implementation: it accumulates
// per-channel flit counts, per-node blocked-cycle counts, a log-bucketed
// latency histogram with a queueing/in-network delay split, and an
// occupancy trace of in-network flits over the whole run.
//
// Counters other than the occupancy trace describe the current measurement
// window, which opens at construction and can be reopened with
// BeginMeasurement (the harness calls it at the warmup boundary). The
// occupancy trace is never reset — observing the warmup transient is its
// purpose.
//
// A Collector is not safe for concurrent use; attach one per simulator.
type Collector struct {
	topo  topology.Topology
	nodes int
	dirs  int
	opts  Options

	// exists marks node*dirs+dir slots that are real channels (mesh
	// boundary nodes lack some), so utilization averages skip the holes.
	exists   []bool
	channels int

	windowStart int64
	lastCycle   int64

	channelFlits []int64
	nodeBlocked  []int64
	blockedTotal int64

	packetsIn  int64
	packetsOut int64
	queueDelay int64
	netDelay   int64
	hist       Histogram

	faultEvents    int64
	packetsAborted int64
	packetsRetried int64
	packetsDropped int64

	// inFlightFlits tracks flits committed to the network (injected packet
	// lengths minus delivered packet lengths); the occupancy trace samples
	// it. Spans the whole run, not the window.
	inFlightFlits int64
	occupancy     []int64
	occEvery      int64
	nextSample    int64
}

// NewCollector builds a collector for a simulator over the given topology.
func NewCollector(topo topology.Topology, opts Options) *Collector {
	opts = opts.withDefaults()
	c := &Collector{
		topo:  topo,
		nodes: topo.Nodes(),
		dirs:  2 * topo.Dims(),
		opts:  opts,
	}
	c.exists = make([]bool, c.nodes*c.dirs)
	for node := 0; node < c.nodes; node++ {
		for d := 0; d < c.dirs; d++ {
			if _, ok := topo.Neighbor(topology.NodeID(node), topology.Direction(d)); ok {
				c.exists[node*c.dirs+d] = true
				c.channels++
			}
		}
	}
	c.channelFlits = make([]int64, c.nodes*c.dirs)
	c.nodeBlocked = make([]int64, c.nodes)
	c.occEvery = opts.OccupancyEvery
	c.occupancy = make([]int64, 0, opts.OccupancyCap)
	return c
}

// BeginMeasurement reopens the measurement window at the given cycle:
// latency, delay, blocked and channel counters restart, while the
// occupancy trace and in-flight accounting continue across the boundary.
func (c *Collector) BeginMeasurement(cycle int64) {
	c.windowStart = cycle
	c.lastCycle = cycle - 1
	for i := range c.channelFlits {
		c.channelFlits[i] = 0
	}
	for i := range c.nodeBlocked {
		c.nodeBlocked[i] = 0
	}
	c.blockedTotal = 0
	c.packetsIn, c.packetsOut = 0, 0
	c.queueDelay, c.netDelay = 0, 0
	c.faultEvents, c.packetsAborted, c.packetsRetried, c.packetsDropped = 0, 0, 0, 0
	c.hist.Reset()
}

// Inject implements Probe.
func (c *Collector) Inject(cycle int64, src, dst topology.NodeID, length int) {
	c.packetsIn++
	c.inFlightFlits += int64(length)
}

// Blocked implements Probe.
func (c *Collector) Blocked(cycle int64, node topology.NodeID) {
	c.nodeBlocked[node]++
	c.blockedTotal++
}

// FlitMove implements Probe.
func (c *Collector) FlitMove(cycle int64, from topology.NodeID, dir topology.Direction, flits int) {
	c.channelFlits[int(from)*c.dirs+int(dir)] += int64(flits)
}

// Deliver implements Probe.
func (c *Collector) Deliver(cycle int64, src, dst topology.NodeID, length, hops int, queueDelay, netDelay int64) {
	c.packetsOut++
	c.inFlightFlits -= int64(length)
	c.queueDelay += queueDelay
	c.netDelay += netDelay
	c.hist.Observe(queueDelay + netDelay)
}

// Fault implements Probe. Only channel-break events are counted; repairs
// tick the same channel back into service without a counter of their own.
func (c *Collector) Fault(cycle int64, from topology.NodeID, dir topology.Direction, failed bool) {
	if failed {
		c.faultEvents++
	}
}

// Abort implements Probe. The aborted worm's flits leave the network, so
// the occupancy accounting gives them back.
func (c *Collector) Abort(cycle int64, src, dst topology.NodeID, length, attempt int) {
	c.packetsAborted++
	c.inFlightFlits -= int64(length)
}

// Retry implements Probe.
func (c *Collector) Retry(cycle int64, src, dst topology.NodeID, attempt int, delay int64) {
	c.packetsRetried++
}

// Drop implements Probe.
func (c *Collector) Drop(cycle int64, src, dst topology.NodeID, length int, reason DropReason) {
	c.packetsDropped++
}

// Tick implements Probe.
func (c *Collector) Tick(cycle int64) {
	c.lastCycle = cycle
	if cycle < c.nextSample {
		return
	}
	if len(c.occupancy) == c.opts.OccupancyCap {
		// Decimate: keep every other sample and double the period, so the
		// trace keeps spanning the run at bounded memory.
		kept := c.occupancy[:0]
		for i := 0; i < len(c.occupancy); i += 2 {
			kept = append(kept, c.occupancy[i])
		}
		c.occupancy = kept
		c.occEvery *= 2
		c.nextSample = int64(len(c.occupancy)) * c.occEvery
		if cycle < c.nextSample {
			return
		}
	}
	c.occupancy = append(c.occupancy, c.inFlightFlits)
	c.nextSample += c.occEvery
}

// ChannelUtil reports the utilization of the channel leaving node in
// direction d over the current window: flits carried divided by elapsed
// cycles, clamped to 1. (internal/network tallies a packet's flits when its
// tail releases the channel, so a traversal straddling the window start can
// nudge the raw ratio past 1.)
func (c *Collector) ChannelUtil(node topology.NodeID, d topology.Direction) float64 {
	elapsed := c.lastCycle - c.windowStart + 1
	if elapsed <= 0 {
		return 0
	}
	u := float64(c.channelFlits[int(node)*c.dirs+int(d)]) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// round4 keeps JSON output readable: utilizations and microsecond values
// carry no information past four decimals.
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// Snapshot summarizes the collector's current state. The receiver keeps
// collecting; the snapshot is an independent copy.
func (c *Collector) Snapshot() *Snapshot {
	elapsed := c.lastCycle - c.windowStart + 1
	if elapsed < 0 {
		elapsed = 0
	}
	us := func(cycles float64) float64 { return round4(cycles / c.opts.FlitsPerUs) }

	s := &Snapshot{
		Nodes:            c.nodes,
		Dirs:             c.dirs,
		WindowCycles:     elapsed,
		PacketsInjected:  c.packetsIn,
		PacketsDelivered: c.packetsOut,
		FaultEvents:      c.faultEvents,
		PacketsAborted:   c.packetsAborted,
		PacketsRetried:   c.packetsRetried,
		PacketsDropped:   c.packetsDropped,
		BlockedCycles:    c.blockedTotal,
		NodeBlocked:      append([]int64(nil), c.nodeBlocked...),
		ChannelUtil:      make([]float64, len(c.channelFlits)),
		OccupancyEvery:   c.occEvery,
		OccupancyFlits:   append([]int64(nil), c.occupancy...),
	}
	if c.topo.Dims() == 2 {
		s.MeshWidth, s.MeshHeight = c.topo.Size(0), c.topo.Size(1)
	}
	if n := c.hist.Count(); n > 0 {
		s.LatencyP50Us = us(c.hist.Quantile(50))
		s.LatencyP95Us = us(c.hist.Quantile(95))
		s.LatencyP99Us = us(c.hist.Quantile(99))
		s.AvgQueueDelayUs = us(float64(c.queueDelay) / float64(n))
		s.AvgNetDelayUs = us(float64(c.netDelay) / float64(n))
	}
	var sum, max float64
	for i := range c.channelFlits {
		if !c.exists[i] {
			continue
		}
		u := c.ChannelUtil(topology.NodeID(i/c.dirs), topology.Direction(i%c.dirs))
		s.ChannelUtil[i] = round4(u)
		sum += u
		if u > max {
			max = u
		}
	}
	if c.channels > 0 {
		s.MeanChannelUtil = round4(sum / float64(c.channels))
	}
	s.MaxChannelUtil = round4(max)
	return s
}

// Snapshot is the JSON-ready summary of one measurement window. It is what
// sim.Result carries when metrics collection is on; the field names are
// part of the schema-v2 sweep report (docs/metrics.md).
type Snapshot struct {
	// Nodes and Dirs give the channel-index geometry: ChannelUtil and
	// NodeBlocked are indexed node*Dirs+dir and node respectively.
	Nodes int `json:"nodes"`
	Dirs  int `json:"dirs"`
	// MeshWidth and MeshHeight are set for two-dimensional topologies
	// (node id = y*MeshWidth + x) and 0 otherwise.
	MeshWidth  int `json:"mesh_width,omitempty"`
	MeshHeight int `json:"mesh_height,omitempty"`
	// WindowCycles is the length of the measurement window.
	WindowCycles int64 `json:"window_cycles"`
	// PacketsInjected and PacketsDelivered count packets entering the
	// network and reaching their destination inside the window.
	PacketsInjected  int64 `json:"packets_injected"`
	PacketsDelivered int64 `json:"packets_delivered"`
	// Fault and recovery accounting inside the window (schema v3): channel
	// breaks, worms aborted by deadlock recovery, source retries of aborted
	// packets, and packets dropped (unreachable or retry budget exhausted).
	// All zero — and omitted from JSON — when no faults are configured.
	FaultEvents    int64 `json:"fault_events,omitempty"`
	PacketsAborted int64 `json:"packets_aborted,omitempty"`
	PacketsRetried int64 `json:"packets_retried,omitempty"`
	PacketsDropped int64 `json:"packets_dropped,omitempty"`
	// Latency percentiles over packets delivered in the window, from the
	// log-bucketed histogram (≤12.5% relative bucketing error), in
	// microseconds at the configured channel bandwidth.
	LatencyP50Us float64 `json:"latency_p50_us"`
	LatencyP95Us float64 `json:"latency_p95_us"`
	LatencyP99Us float64 `json:"latency_p99_us"`
	// The latency split: time spent queueing at the source versus time in
	// the network, averaged over delivered packets, in microseconds.
	AvgQueueDelayUs float64 `json:"avg_queue_delay_us"`
	AvgNetDelayUs   float64 `json:"avg_net_delay_us"`
	// BlockedCycles counts header-blocked router cycles in the window,
	// summed over nodes; NodeBlocked is the per-node breakdown.
	BlockedCycles int64   `json:"blocked_cycles"`
	NodeBlocked   []int64 `json:"node_blocked"`
	// Channel utilization over the window: fraction of cycles each channel
	// carried a flit, indexed node*Dirs+dir (0 for channels the topology
	// does not have). Mean is over existing channels only.
	MeanChannelUtil float64   `json:"mean_channel_util"`
	MaxChannelUtil  float64   `json:"max_channel_util"`
	ChannelUtil     []float64 `json:"channel_util"`
	// OccupancyFlits samples the in-network flit count every
	// OccupancyEvery cycles from cycle 0 — the warmup transient is visible
	// at the front of the trace.
	OccupancyEvery int64   `json:"occupancy_every"`
	OccupancyFlits []int64 `json:"occupancy_flits"`
}
