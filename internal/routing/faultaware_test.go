package routing

import (
	"math/rand"
	"sort"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/topology"
	"turnmodel/internal/turnmodel"
)

// newHealthState builds a fault state from the plan plus the health view a
// wrapper needs, without going through a simulator.
func newHealthState(t *testing.T, topo topology.Topology, plan fault.Plan, pol fault.RoutingPolicy) (*fault.State, *fault.Health) {
	t.Helper()
	if err := fault.Validate(topo, plan); err != nil {
		t.Fatalf("bad plan: %v", err)
	}
	state := fault.MustNew(plan, topo)
	return state, fault.NewHealth(topo, state, pol)
}

// TestFaultedCDGDeadlockFreeRandomFaults is the headline safety property:
// for every registered algorithm whose fault-free dependency graph is
// acyclic, the graph of the faulted configuration under the fault-aware
// masking/misroute relation stays acyclic — at several fault densities,
// under both visibility models, with and without the misroute budget. The
// fault sets are random but seeded, so a failure reproduces exactly.
func TestFaultedCDGDeadlockFreeRandomFaults(t *testing.T) {
	topos := []topology.Topology{
		topology.NewMesh2D(5, 5),
		topology.NewTorus(4, 4),
		topology.NewHypercube(4),
	}
	policies := []fault.RoutingPolicy{
		{Visibility: fault.VisibilityLocal},
		{Visibility: fault.VisibilityKHop, MisrouteLimit: 4},
		{Visibility: fault.VisibilityKHop, Radius: 3, MisrouteLimit: 1},
	}
	densities := []int{1, 3, 7} // broken channels per trial
	rng := rand.New(rand.NewSource(20260806))
	for _, topo := range topos {
		var algs []Algorithm
		for _, name := range Names() {
			alg, err := New(name, topo)
			if err != nil || alg.Name() == "fully-adaptive" {
				continue
			}
			// Only algorithms that are deadlock free on this topology to
			// begin with carry a safety claim to preserve (plain mesh xy
			// constructed on a torus, say, is already cyclic fault free).
			if turnmodel.FromRouting(topo, Relation(alg)).FindCycle() != nil {
				continue
			}
			algs = append(algs, alg)
		}
		if len(algs) < 5 {
			t.Fatalf("%s: only %d verifiable algorithms", topo.Name(), len(algs))
		}
		dims2 := 2 * topo.Dims()
		for _, density := range densities {
			for trial := 0; trial < 3; trial++ {
				plan := randomFaultPlan(rng, topo, density)
				for _, pol := range policies {
					state := fault.MustNew(plan, topo)
					faulted := func(from topology.NodeID, dir topology.Direction) bool {
						return state.Faulted[int(from)*dims2+int(dir)]
					}
					for _, alg := range algs {
						health := fault.NewHealth(topo, state, pol)
						fa := NewFaultAware(alg, health, pol)
						g := turnmodel.FromRoutingFaulted(topo, FaultRelation(fa), faulted)
						if cyc := g.FindCycle(); cyc != nil {
							t.Errorf("%s on %s, faults %+v, policy %s: dependency cycle %v",
								alg.Name(), topo.Name(), plan, pol.WithDefaults(), cyc)
						}
					}
				}
			}
		}
	}
}

// randomFaultPlan draws a static plan with the given number of distinct
// broken channels, plus occasionally a failed node.
func randomFaultPlan(rng *rand.Rand, topo topology.Topology, channels int) fault.Plan {
	var plan fault.Plan
	seen := make(map[int]bool)
	for len(plan.Static) < channels {
		from := topology.NodeID(rng.Intn(topo.Nodes()))
		dir := topology.Direction(rng.Intn(2 * topo.Dims()))
		if _, ok := topo.Neighbor(from, dir); !ok {
			continue
		}
		key := int(from)*2*topo.Dims() + int(dir)
		if seen[key] {
			continue
		}
		seen[key] = true
		plan.Static = append(plan.Static, topology.Channel{From: from, Dir: dir})
	}
	if rng.Intn(3) == 0 {
		plan.Nodes = []topology.NodeID{topology.NodeID(rng.Intn(topo.Nodes()))}
	}
	return plan
}

// TestFaultAwarePassthroughWhenHealthy pins the fast path: with no active
// fault the wrapper returns the base algorithm's candidate slice untouched
// and counts nothing.
func TestFaultAwarePassthroughWhenHealthy(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg, err := New("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
	// A rate-only plan: the state exists but no fault is active yet.
	_, health := newHealthState(t, mesh, fault.Plan{Rate: 1e-9, Seed: 1}, pol)
	fa := NewFaultAware(alg, health, pol)
	for src := 0; src < mesh.Nodes(); src++ {
		for dst := 0; dst < mesh.Nodes(); dst++ {
			if src == dst {
				continue
			}
			want := alg.Candidates(topology.NodeID(src), topology.NodeID(dst), topology.Invalid, false)
			got, mis := fa.FaultCandidates(topology.NodeID(src), topology.NodeID(dst), topology.Invalid, false, 0)
			if mis {
				t.Fatalf("%d->%d: misroute set on a healthy network", src, dst)
			}
			if len(got) != len(want) {
				t.Fatalf("%d->%d: got %v, want %v", src, dst, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%d->%d: got %v, want %v", src, dst, got, want)
				}
			}
		}
	}
	if fa.MaskedDecisions() != 0 || fa.MisrouteDecisions() != 0 {
		t.Errorf("healthy network counted masked=%d misroutes=%d", fa.MaskedDecisions(), fa.MisrouteDecisions())
	}
}

// TestFaultAwareFiltersDeadCandidate checks case 2 of the ladder: when one
// of two productive directions is broken, only the live one survives.
func TestFaultAwareFiltersDeadCandidate(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg, err := New("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	// Node 5 = (1,1) to node 0 = (0,0): productive west and south, both
	// phase 0. Break 5:west.
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityLocal}
	plan := fault.Plan{Static: []topology.Channel{{From: 5, Dir: topology.West}}}
	_, health := newHealthState(t, mesh, plan, pol)
	fa := NewFaultAware(alg, health, pol)
	got, mis := fa.FaultCandidates(5, 0, topology.Invalid, false, 0)
	if mis {
		t.Fatal("filtered decision flagged as misroute")
	}
	if len(got) != 1 || got[0] != topology.South {
		t.Fatalf("candidates = %v, want [south]", got)
	}
	if fa.MaskedDecisions() != 1 {
		t.Errorf("MaskedDecisions = %d, want 1", fa.MaskedDecisions())
	}
}

// TestFaultAwareNeverEmptiesWithoutAlternative checks case 4: a packet
// whose only candidate is dead and whose algorithm cannot misroute gets
// the unfiltered base set back, never an empty one.
func TestFaultAwareNeverEmptiesWithoutAlternative(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg, err := New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
	plan := fault.Plan{Static: []topology.Channel{{From: 5, Dir: topology.East}}}
	_, health := newHealthState(t, mesh, plan, pol)
	fa := NewFaultAware(alg, health, pol)
	// 5 -> 7 under xy: the only candidate is east, which is dead, and xy's
	// opposite-paired phases leave no safe detour.
	got, mis := fa.FaultCandidates(5, 7, topology.Invalid, false, 0)
	if mis {
		t.Fatal("xy produced a misroute set")
	}
	if len(got) != 1 || got[0] != topology.East {
		t.Fatalf("candidates = %v, want the unfiltered [east]", got)
	}
}

// TestFaultAwareMisrouteFallback checks case 3 and the budget: an adaptive
// algorithm whose every productive direction is dead detours along a
// permitted direction while budget remains, and reverts to the stalled
// base set when the budget is spent.
func TestFaultAwareMisrouteFallback(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg, err := New("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityLocal, MisrouteLimit: 2}
	// At node 5 = (1,1) toward 4 = (0,1) the only productive direction is
	// west; break it. The negative phase still holds the non-productive
	// south detour, whose opposite (north) sits in the later phase.
	plan := fault.Plan{Static: []topology.Channel{{From: 5, Dir: topology.West}}}
	_, health := newHealthState(t, mesh, plan, pol)
	fa := NewFaultAware(alg, health, pol)
	got, mis := fa.FaultCandidates(5, 4, topology.Invalid, false, 0)
	if !mis {
		t.Fatalf("expected a misroute set, got %v", got)
	}
	if len(got) != 1 || got[0] != topology.South {
		t.Fatalf("misroute set = %v, want [south]", got)
	}
	if fa.MisrouteDecisions() != 1 {
		t.Errorf("MisrouteDecisions = %d, want 1", fa.MisrouteDecisions())
	}
	// Budget exhausted: back to the stalled base set.
	got, mis = fa.FaultCandidates(5, 4, topology.Invalid, false, pol.MisrouteLimit)
	if mis {
		t.Fatal("misroute set granted beyond the budget")
	}
	if len(got) != 1 || got[0] != topology.West {
		t.Fatalf("exhausted budget returned %v, want the dead productive [west]", got)
	}
}

// TestMisrouteDetoursStayInPhaseWithLaterOpposite pins the safety rule of
// misrouteInPhase directly: every detour the phased algorithms offer lies
// in the packet's current phase and its opposite lies in a strictly later
// phase, so the correction hop is a permitted turn that can never return.
func TestMisrouteDetoursStayInPhaseWithLaterOpposite(t *testing.T) {
	topos := []topology.Topology{topology.NewMesh2D(5, 5), topology.NewHypercube(4)}
	rng := rand.New(rand.NewSource(7))
	for _, topo := range topos {
		for _, name := range []string{"negative-first", "west-first", "north-last", "p-cube"} {
			alg, err := New(name, topo)
			if err != nil {
				continue // p-cube needs a hypercube; west-first a 2D mesh
			}
			p, ok := alg.(*phased)
			if !ok {
				t.Fatalf("%s is not phased", name)
			}
			for trial := 0; trial < 200; trial++ {
				cur := topology.NodeID(rng.Intn(topo.Nodes()))
				dst := topology.NodeID(rng.Intn(topo.Nodes()))
				if cur == dst {
					continue
				}
				in := topology.Invalid
				if rng.Intn(2) == 0 {
					in = topology.Direction(rng.Intn(2 * topo.Dims()))
				}
				productive := topo.MinimalDirections(cur, dst)
				best := p.phaseOf[productive[0]]
				for _, d := range productive[1:] {
					if ph := p.phaseOf[d]; ph < best {
						best = ph
					}
				}
				for _, d := range p.MisrouteCandidates(cur, dst, in, false) {
					if p.phaseOf[d] != best {
						t.Fatalf("%s on %s at %d->%d: detour %v outside current phase", name, topo.Name(), cur, dst, d)
					}
					if p.phaseOf[d.Opposite()] <= best {
						t.Fatalf("%s on %s at %d->%d: detour %v has its opposite in phase %d <= %d",
							name, topo.Name(), cur, dst, d, p.phaseOf[d.Opposite()], best)
					}
					if in != topology.Invalid && d == in.Opposite() {
						t.Fatalf("%s on %s at %d->%d: detour %v is the arrival U-turn", name, topo.Name(), cur, dst, d)
					}
				}
			}
		}
	}
}

// TestDimensionOrderCannotMisroute: disciplines that pair every direction
// with its opposite in the same phase have no safe detour — the paper's
// observation that a single-path algorithm cannot route around faults.
func TestDimensionOrderCannotMisroute(t *testing.T) {
	mesh := topology.NewMesh2D(5, 5)
	for _, name := range []string{"xy", "dimension-order"} {
		alg, err := New(name, mesh)
		if err != nil {
			t.Fatal(err)
		}
		m, ok := alg.(Misrouter)
		if !ok {
			t.Fatalf("%s does not implement Misrouter", name)
		}
		for src := 0; src < mesh.Nodes(); src++ {
			for dst := 0; dst < mesh.Nodes(); dst++ {
				if src == dst {
					continue
				}
				if alt := m.MisrouteCandidates(topology.NodeID(src), topology.NodeID(dst), topology.Invalid, false); len(alt) != 0 {
					t.Fatalf("%s offered detours %v for %d->%d", name, alt, src, dst)
				}
			}
		}
	}
}

// TestNamesSortedAndStable: the registry listing is sorted and identical
// across calls, so -ftroute sweep tables and reports keyed by it are
// deterministic.
func TestNamesSortedAndStable(t *testing.T) {
	a, b := Names(), Names()
	if !sort.StringsAreSorted(a) {
		t.Fatalf("Names() not sorted: %v", a)
	}
	if len(a) != len(b) {
		t.Fatalf("Names() length varies: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Names() differs across calls at %d: %q vs %q", i, a[i], b[i])
		}
	}
	// Mutating one call's result must not leak into the registry.
	a[0] = "mutated"
	if c := Names(); c[0] == "mutated" {
		t.Fatal("Names() exposes shared backing storage")
	}
}
