package routing_test

import (
	"reflect"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// minimalByName lists the algorithms that are minimal with respect to
// their topology's Distance metric: every candidate hop lands strictly
// closer to the destination. Excluded on purpose: p-cube-nonminimal and
// negative-first-torus (strictly nonminimal by design), and the first-hop
// wrap family (plain-coordinate mesh discipline, not modular-minimal).
var minimalByName = map[string]bool{
	"dimension-order": true,
	"west-first":      true,
	"north-last":      true,
	"negative-first":  true,
	"abonf":           true,
	"abopl":           true,
	"odd-even":        true,
	"fully-adaptive":  true,
	"p-cube":          true,
}

// fuzzTopology decodes a bounded random topology: 2D/3D meshes and tori
// and hypercubes up to 64 nodes.
func fuzzTopology(kind, a, b uint8) topology.Topology {
	s1 := 2 + int(a)%6 // 2..7
	s2 := 2 + int(b)%6
	switch kind % 5 {
	case 0:
		return topology.NewMesh(s1, s2)
	case 1:
		return topology.NewMesh(2+int(a)%3, 2+int(b)%3, 3)
	case 2:
		return topology.NewTorus(2+int(a)%5, 2+int(b)%5)
	case 3:
		return topology.NewTorus(2+int(a)%3, 2+int(b)%3, 3)
	default:
		return topology.NewHypercube(1 + int(a)%6)
	}
}

// FuzzRouteCandidates drives every registered algorithm from a random
// source toward a random destination, choosing a random permitted hop at
// every intermediate router, and checks the routing-relation invariants
// the simulators rely on:
//
//   - the candidate set at a non-destination router is never empty (a
//     packet always has a legal move; deadlock freedom is separately
//     certified by the CDG, but an empty set would strand it);
//   - every candidate is an incident output channel of the current router,
//     with no duplicates;
//   - minimal algorithms only offer hops that land strictly closer to the
//     destination;
//   - Candidates is deterministic, and AppendCandidates (the engines'
//     allocation-free fast path) returns the identical list in the
//     identical order;
//   - following any sequence of candidates reaches the destination in
//     bounded hops (livelock freedom, including the nonminimal
//     algorithms' strictly-decreasing-offset arguments).
func FuzzRouteCandidates(f *testing.F) {
	names := routing.Names()
	f.Add(uint8(0), uint8(4), uint8(4), uint8(0), uint16(0), uint16(35), uint16(1))
	f.Add(uint8(2), uint8(3), uint8(3), uint8(3), uint16(7), uint16(12), uint16(9))
	f.Add(uint8(4), uint8(5), uint8(0), uint8(7), uint16(1), uint16(62), uint16(5))
	f.Add(uint8(3), uint8(1), uint8(2), uint8(11), uint16(20), uint16(3), uint16(2))
	f.Fuzz(func(t *testing.T, kind, a, b, algSeed uint8, srcSeed, dstSeed, pick uint16) {
		topo := fuzzTopology(kind, a, b)
		name := names[int(algSeed)%len(names)]
		alg, err := routing.New(name, topo)
		if err != nil {
			t.Skip() // algorithm/topology mismatch (e.g. west-first on a torus)
		}
		topo = alg.Topology() // hypercube aliases may rebind to the embedded mesh
		nodes := topo.Nodes()
		src := topology.NodeID(int(srcSeed) % nodes)
		dst := topology.NodeID(int(dstSeed) % nodes)
		if src == dst {
			t.Skip()
		}
		appender, _ := alg.(routing.CandidateAppender)
		var scratch []topology.Direction

		cur, in, inWrap := src, topology.Invalid, false
		limit := 4*nodes + 16
		hop := 0
		for ; hop < limit && cur != dst; hop++ {
			cands := alg.Candidates(cur, dst, in, inWrap)
			if len(cands) == 0 {
				t.Fatalf("%s on %s: empty candidate set at node %d (dst %d, in %v, wrap %v) after %d hops",
					alg.Name(), topo.Name(), cur, dst, in, inWrap, hop)
			}
			if again := alg.Candidates(cur, dst, in, inWrap); !reflect.DeepEqual(cands, again) {
				t.Fatalf("%s on %s: Candidates not deterministic at node %d: %v then %v",
					alg.Name(), topo.Name(), cur, cands, again)
			}
			if appender != nil {
				scratch = appender.AppendCandidates(scratch[:0], cur, dst, in, inWrap)
				if len(scratch) != len(cands) || !reflect.DeepEqual(cands, append([]topology.Direction(nil), scratch...)) {
					t.Fatalf("%s on %s: AppendCandidates diverges from Candidates at node %d: %v vs %v",
						alg.Name(), topo.Name(), cur, scratch, cands)
				}
			}
			seen := make(map[topology.Direction]bool, len(cands))
			for _, d := range cands {
				if seen[d] {
					t.Fatalf("%s on %s: duplicate candidate %v at node %d: %v", alg.Name(), topo.Name(), d, cur, cands)
				}
				seen[d] = true
				nb, ok := topo.Neighbor(cur, d)
				if !ok {
					t.Fatalf("%s on %s: candidate %v at node %d has no channel", alg.Name(), topo.Name(), d, cur)
				}
				if minimalByName[alg.Name()] {
					if got, want := topo.Distance(nb, dst), topo.Distance(cur, dst)-1; got != want {
						t.Fatalf("%s on %s: non-minimal hop %v at node %d toward %d: distance %d -> %d",
							alg.Name(), topo.Name(), d, cur, dst, topo.Distance(cur, dst), got)
					}
				}
			}
			d := cands[(int(pick)+hop)%len(cands)]
			inWrap = topo.Wraparound(cur, d)
			cur, _ = topo.Neighbor(cur, d)
			in = d
		}
		if cur != dst {
			t.Fatalf("%s on %s: no arrival from %d to %d within %d hops (livelock?)",
				alg.Name(), topo.Name(), src, dst, limit)
		}
	})
}
