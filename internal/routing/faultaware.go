// Fault-aware routing: a wrapper that lets any algorithm's surviving
// adaptivity mask broken channels, instead of leaving every fault to the
// abort/retry recovery path. See docs/fault-routing.md for the safety
// argument; turnmodel.FromRoutingFaulted checks it mechanically.
package routing

import (
	"turnmodel/internal/fault"
	"turnmodel/internal/topology"
	"turnmodel/internal/turnmodel"
)

// Misrouter is implemented by algorithms that can offer nonminimal detour
// directions without growing their allowed-turn set. Every returned
// direction must be reachable from the packet's arrival direction by a
// turn the algorithm already permits, and must leave the packet in a state
// from which the algorithm's own relation continues using permitted turns
// only — so adding misroute hops adds channel dependencies but never a
// dependency the algorithm's deadlock-freedom argument does not already
// cover. Returned directions never include the arrival U-turn and never
// use wraparound channels.
//
// The phase-ordered algorithms implement it by detouring within the
// packet's current phase, and only along directions whose opposite lies in
// a strictly later phase (so the correction hop is a permitted turn into a
// later phase and the detour can never be retaken — see misrouteInPhase
// for why the strictness matters). On the hypercube this reproduces
// exactly the Section 5 nonminimal p-cube relation; algorithms without a
// safe detour rule (the classified-direction torus variant, the
// deliberately unsafe fully adaptive baseline) simply do not implement
// the interface and never misroute, and disciplines whose phases pair
// opposite directions (dimension-order) implement it vacuously.
type Misrouter interface {
	MisrouteCandidates(current, dest topology.NodeID, in topology.Direction, inWrap bool) []topology.Direction
}

// FaultAware wraps a routing Algorithm so that candidates on channels the
// current router knows to be broken are filtered out of the candidate set,
// with an optional bounded misroute fallback when every minimal candidate
// is known dead. Filtering only ever removes dependencies from the
// algorithm's channel dependency graph, and misrouting only uses turns the
// algorithm already permits (see Misrouter), so the wrapper preserves
// deadlock freedom — a claim turnmodel.FromRoutingFaulted verifies per
// fault set rather than assumes.
//
// When no fault is active the wrapper delegates to the base algorithm
// untouched (one counter load), so fault-aware routing costs nothing while
// the network is healthy. A FaultAware is bound to one simulator instance
// through its Health and is not safe for concurrent use across engines.
type FaultAware struct {
	base   Algorithm
	topo   topology.Topology
	health *fault.Health
	pol    fault.RoutingPolicy
	mis    Misrouter // nil: base cannot misroute safely, or limit is 0

	masked    int64
	misroutes int64
}

// NewFaultAware builds the fault-aware wrapper for a base algorithm over
// the given health view. The policy must be enabled.
func NewFaultAware(base Algorithm, health *fault.Health, pol fault.RoutingPolicy) *FaultAware {
	pol = pol.WithDefaults()
	if !pol.Enabled() {
		panic("routing: NewFaultAware requires an enabled policy")
	}
	f := &FaultAware{base: base, topo: base.Topology(), health: health, pol: pol}
	if m, ok := base.(Misrouter); ok && pol.MisrouteLimit > 0 {
		f.mis = m
	}
	return f
}

// Name implements Algorithm; the wrapper keeps the base algorithm's name
// so sweep tables stay comparable across fault-routing modes.
func (f *FaultAware) Name() string { return f.base.Name() }

// Topology implements Algorithm.
func (f *FaultAware) Topology() topology.Topology { return f.topo }

// Base returns the wrapped algorithm.
func (f *FaultAware) Base() Algorithm { return f.base }

// Policy returns the policy in effect (with defaults applied).
func (f *FaultAware) Policy() fault.RoutingPolicy { return f.pol }

// MaskedDecisions counts routing decisions whose candidate set was
// narrowed (or replaced by a misroute set) because of known faults.
func (f *FaultAware) MaskedDecisions() int64 { return f.masked }

// MisrouteDecisions counts decisions that fell back to a misroute set.
func (f *FaultAware) MisrouteDecisions() int64 { return f.misroutes }

// Candidates implements Algorithm: the relation with the misroute budget
// treated as always available. The simulators instead call FaultCandidates
// with the packet's actual misroute count; this form over-approximates it
// (a superset of every budgeted relation), which is exactly what CDG
// construction wants.
func (f *FaultAware) Candidates(current, dest topology.NodeID, in topology.Direction, inWrap bool) []topology.Direction {
	cands, _ := f.FaultCandidates(current, dest, in, inWrap, 0)
	return cands
}

// FaultCandidates lists the permitted outputs for a packet that has
// already taken `misrouted` nonminimal hops:
//
//  1. With no active fault, the base algorithm's candidates, untouched.
//  2. Otherwise, the base candidates minus those the current router knows
//     are dead — directly broken incident channels, and under k-hop
//     visibility channels leading into a region whose every continuation
//     is known dead within the dissemination horizon.
//  3. If that filter would empty the set and misroute budget remains, the
//     base algorithm's safe detour directions (minus broken ones).
//  4. If no alternative survives, the unfiltered base set: the packet
//     waits on the dead channel and recovery eventually aborts it, the
//     exact pre-wrapper behavior. The candidate set is therefore never
//     emptied by masking.
//
// The second result reports case 3: every returned direction is then a
// nonminimal detour, and a hop taken from the set counts against the
// packet's misroute budget.
func (f *FaultAware) FaultCandidates(current, dest topology.NodeID, in topology.Direction, inWrap bool, misrouted int) ([]topology.Direction, bool) {
	base := f.base.Candidates(current, dest, in, inWrap)
	if len(base) == 0 || f.health.Active() == 0 {
		return base, false
	}
	// Filter in place: Algorithm.Candidates returns a fresh slice per
	// call, and nothing is overwritten unless it survives the filter, so
	// the unfiltered set stays intact whenever we fall through.
	keep := base[:0]
	khop := f.health.Visibility() == fault.VisibilityKHop
	for _, d := range base {
		if f.health.Faulted(current, d) {
			continue
		}
		if khop && f.deadWithin(current, dest, current, d, f.health.Radius()) {
			continue
		}
		keep = append(keep, d)
	}
	if len(keep) > 0 {
		if len(keep) < len(base) {
			f.masked++
		}
		return keep, false
	}
	if f.mis != nil && misrouted < f.pol.MisrouteLimit {
		if alt := f.misrouteSet(current, dest, in, inWrap); len(alt) > 0 {
			f.masked++
			f.misroutes++
			return alt, true
		}
	}
	return base, false
}

// deadWithin reports whether hopping from node along d leads into a region
// router `origin` knows to be dead: within the remaining lookahead depth,
// every continuation the base relation offers hits a channel origin knows
// is broken. depth bounds both the recursion and — because knowledge of a
// channel requires its source within the dissemination radius — the
// knowledge the check relies on.
func (f *FaultAware) deadWithin(origin, dest, node topology.NodeID, d topology.Direction, depth int) bool {
	if depth <= 0 {
		return false
	}
	nb, ok := f.topo.Neighbor(node, d)
	if !ok || nb == dest {
		return false
	}
	cands := f.base.Candidates(nb, dest, d, f.topo.Wraparound(node, d))
	if len(cands) == 0 {
		return false
	}
	for _, nd := range cands {
		if f.health.Known(origin, nb, nd) {
			continue // known broken; try the next continuation
		}
		if !f.deadWithin(origin, dest, nb, nd, depth-1) {
			return false
		}
	}
	return true
}

// misrouteSet is the base algorithm's safe detour set minus directly
// broken channels.
func (f *FaultAware) misrouteSet(current, dest topology.NodeID, in topology.Direction, inWrap bool) []topology.Direction {
	alt := f.mis.MisrouteCandidates(current, dest, in, inWrap)
	keep := alt[:0]
	for _, d := range alt {
		if f.health.Faulted(current, d) {
			continue
		}
		keep = append(keep, d)
	}
	return keep
}

// FaultRelation adapts a FaultAware wrapper to the turnmodel.CandidateFunc
// used to build the dependency graph of the faulted configuration: the
// channels a packet at (current, in) may wait for, with the misroute
// budget treated as always available — a conservative over-approximation
// of every per-packet bound, so acyclicity of this relation's graph
// implies deadlock freedom of the budgeted behavior.
func FaultRelation(f *FaultAware) turnmodel.CandidateFunc {
	return Relation(f)
}

// misrouteInPhase is the shared detour rule of the phase-ordered
// algorithms: detour only within the packet's current phase (the lowest
// phase with a productive direction), and only along directions whose
// opposite lies in a STRICTLY later phase. The second constraint is what
// keeps the faulted dependency graph acyclic: every correction hop
// (taking d.Opposite() after a detour along d) is then a turn into a
// later phase, which the discipline permits, and no route can ever
// return from that later phase to retake d. Equivalently, dependencies
// only ever point from a channel's phase to the same or a later phase,
// and within one phase no direction coexists with its opposite — the
// layering that makes reversal ping-pong cycles impossible. Allowing
// detours whose opposite shares the phase (east within xy's {west,east},
// say) builds exactly such a cycle: detour east, correct west, and the
// east/west channel chains of one row wait on each other in a ring.
//
// U-turns and wraparound channels are excluded; productive directions
// are not detours. On the hypercube under negative-first phases — where
// phase 0 holds every negative direction and all their opposites sit in
// phase 1 — this is exactly the Section 5 nonminimal p-cube relation.
// Disciplines that pair a direction with its opposite in every phase
// (dimension-order, e-cube) get an empty detour set: they cannot
// misroute safely, matching the paper's observation that routing with
// no alternative paths cannot route around faults.
func misrouteInPhase(topo topology.Topology, phaseOf []int, productive []topology.Direction, current topology.NodeID, in topology.Direction) []topology.Direction {
	if len(productive) == 0 {
		return nil
	}
	best := phaseOf[productive[0]]
	for _, d := range productive[1:] {
		if ph := phaseOf[d]; ph < best {
			best = ph
		}
	}
	var out []topology.Direction
	for dim2 := 0; dim2 < 2*topo.Dims(); dim2++ {
		d := topology.Direction(dim2)
		if phaseOf[d] != best || phaseOf[d.Opposite()] <= best {
			continue
		}
		if in != topology.Invalid && d == in.Opposite() {
			continue
		}
		skip := false
		for _, p := range productive {
			if p == d {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		if _, ok := topo.Neighbor(current, d); !ok {
			continue
		}
		if topo.Wraparound(current, d) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// MisrouteCandidates implements Misrouter for every phase-ordered
// algorithm (see misrouteInPhase).
func (p *phased) MisrouteCandidates(current, dest topology.NodeID, in topology.Direction, _ bool) []topology.Direction {
	return misrouteInPhase(p.topo, p.phaseOf, p.topo.MinimalDirections(current, dest), current, in)
}
