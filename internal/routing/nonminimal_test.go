package routing

import (
	"math/bits"
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
)

func TestNonminimalPCubeTerminates(t *testing.T) {
	h := topology.NewHypercube(6)
	a := NonminimalPCube(h)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(rng.Intn(64))
		dst := topology.NodeID(rng.Intn(64))
		if src == dst {
			continue
		}
		// Worst case: clear every 1 bit of C, then set every 1 bit of D.
		limit := bits.OnesCount(uint(src)) + bits.OnesCount(uint(dst))
		hops := walk(t, a, src, dst, randomChooser(rng), limit)
		if hops < h.Distance(src, dst) {
			t.Fatalf("route shorter than the Hamming distance: %d < %d", hops, h.Distance(src, dst))
		}
	}
}

func TestNonminimalPCubePhaseOneChoices(t *testing.T) {
	// Figure 12 / Section 5 table: in phase one the candidates are every
	// set bit of C — the minimal ones (c_i=1, d_i=0) plus the extras
	// (c_i=1, d_i=1).
	h := topology.NewHypercube(8)
	a := NonminimalPCube(h)
	for c := uint(0); c < 256; c += 3 {
		for d := uint(0); d < 256; d += 7 {
			if c == d {
				continue
			}
			cands := a.Candidates(h.NodeFromBits(c), h.NodeFromBits(d), topology.Invalid, false)
			r := c &^ d
			if r != 0 {
				if len(cands) != bits.OnesCount(uint(c)) {
					t.Fatalf("C=%08b D=%08b: %d phase-1 candidates, want %d", c, d, len(cands), bits.OnesCount(uint(c)))
				}
				for _, dir := range cands {
					if dir.Positive() {
						t.Fatalf("phase-1 candidate %v is positive", dir)
					}
				}
			} else {
				if len(cands) != bits.OnesCount(uint(^c&d)) {
					t.Fatalf("C=%08b D=%08b: %d phase-2 candidates, want %d", c, d, len(cands), bits.OnesCount(uint(^c&d)))
				}
				for _, dir := range cands {
					if !dir.Positive() {
						t.Fatalf("phase-2 candidate %v is negative", dir)
					}
				}
			}
		}
	}
}

func TestNonminimalPCubeMoreAdaptiveThanMinimal(t *testing.T) {
	// The nonminimal variant must offer at least as many choices as the
	// minimal one at every state.
	h := topology.NewHypercube(6)
	nm := NonminimalPCube(h)
	pm := PCube(h)
	for c := topology.NodeID(0); c < 64; c++ {
		for d := topology.NodeID(0); d < 64; d++ {
			if c == d {
				continue
			}
			nmc := nm.Candidates(c, d, topology.Invalid, false)
			pmc := pm.Candidates(c, d, topology.Invalid, false)
			if len(nmc) < len(pmc) {
				t.Fatalf("C=%d D=%d: nonminimal offers fewer choices (%d < %d)", c, d, len(nmc), len(pmc))
			}
		}
	}
}

func TestNonminimalPCubeRegistry(t *testing.T) {
	h := topology.NewHypercube(4)
	a, err := New("p-cube-nonminimal", h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "p-cube-nonminimal" {
		t.Errorf("Name = %q", a.Name())
	}
	if _, err := New("p-cube-nonminimal", topology.NewMesh2D(4, 4)); err == nil {
		t.Error("nonminimal p-cube on a mesh accepted")
	}
}
