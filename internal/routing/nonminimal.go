package routing

import (
	"math/bits"

	"turnmodel/internal/topology"
)

// NonminimalPCube is the Figure 12 variant of p-cube routing: in phase one
// a packet may route not only along the dimensions with c_i=1 and d_i=0
// but also along any dimension with c_i=1 and d_i=1 — a misroute that
// buys extra adaptiveness and fault tolerance at the cost of path length.
// Phase two remains minimal.
//
// The algorithm is livelock free without any extra mechanism: every phase
// one hop clears a 1 bit of the current address and phase one never sets
// bits, so phase one takes at most |C| hops; phase two then takes exactly
// the remaining Hamming distance. It is deadlock free for the same reason
// negative-first is: phase one uses only negative channels, phase two only
// positive ones, and positive-to-negative turns never occur.
func NonminimalPCube(h *topology.Hypercube) Algorithm {
	return nonminPCube{h}
}

type nonminPCube struct{ h *topology.Hypercube }

func (a nonminPCube) Name() string                { return "p-cube-nonminimal" }
func (a nonminPCube) Topology() topology.Topology { return a.h }

func (a nonminPCube) Candidates(current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	c := a.h.Bits(current)
	d := a.h.Bits(dest)
	n := a.h.Dims()
	if c == d {
		return nil
	}
	r := c &^ d
	if r != 0 {
		// Phase one: any set bit of C may be cleared (negative moves),
		// productive or not.
		out := make([]topology.Direction, 0, bits.OnesCount(uint(c)))
		for dim := 0; dim < n; dim++ {
			if c&(1<<uint(dim)) != 0 {
				out = append(out, topology.Dir(dim, false))
			}
		}
		return out
	}
	// Phase two: minimal, set the bits where D has a 1 and C a 0.
	var out []topology.Direction
	for dim := 0; dim < n; dim++ {
		if ^c&d&(1<<uint(dim)) != 0 {
			out = append(out, topology.Dir(dim, true))
		}
	}
	return out
}

// AppendCandidates implements CandidateAppender (same phases, appended).
func (a nonminPCube) AppendCandidates(dst []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	c := a.h.Bits(current)
	d := a.h.Bits(dest)
	n := a.h.Dims()
	if c == d {
		return dst
	}
	if c&^d != 0 {
		for dim := 0; dim < n; dim++ {
			if c&(1<<uint(dim)) != 0 {
				dst = append(dst, topology.Dir(dim, false))
			}
		}
		return dst
	}
	for dim := 0; dim < n; dim++ {
		if ^c&d&(1<<uint(dim)) != 0 {
			dst = append(dst, topology.Dir(dim, true))
		}
	}
	return dst
}
