package routing

import (
	"turnmodel/internal/topology"
)

// The constructors below apply the turn model to the "other topologies"
// Section 7 proposes as future work: hexagonal and octagonal networks,
// where the turns are not 90 degrees and the abstract cycles are not
// four-turn squares. The same phase discipline carries over: group the
// directions so that no phase's direction vectors can close a cycle and
// prohibit turns from later phases back to earlier ones.

// NegativeFirstHex routes first adaptively along the three negative hex
// directions (west, southwest, northwest) and then along the three
// positive ones (east, northeast, southeast). No subset of either triple
// sums to zero, so each phase is cycle free on its own, and the prohibited
// positive-to-negative turns break every mixed cycle.
func NegativeFirstHex(h *topology.Hex) Algorithm {
	return newPhased(h, "negative-first-hex", negatives(3), positives(3))
}

// DimensionOrderHex is nonadaptive axis-order routing on a hexagonal mesh:
// correct axis 0, then axis 1, then the diagonal axis 2.
func DimensionOrderHex(h *topology.Hex) Algorithm {
	phases := make([][]topology.Direction, 3)
	for i := range phases {
		phases[i] = []topology.Direction{topology.Dir(i, false), topology.Dir(i, true)}
	}
	return newPhased(h, "dimension-order-hex", phases...)
}

// NegativeFirstOctagonal routes first adaptively along the four
// "negative" octagonal directions (west, south, southwest, southeast —
// the closed lower half-plane plus west) and then along the four positive
// ones. As in the hex case neither quadruple can close a cycle by itself.
func NegativeFirstOctagonal(o *topology.Octagonal) Algorithm {
	return newPhased(o, "negative-first-octagonal", negatives(4), positives(4))
}

// DimensionOrderOctagonal is nonadaptive axis-order routing on an
// octagonal mesh: straight axes first, then the diagonals.
func DimensionOrderOctagonal(o *topology.Octagonal) Algorithm {
	phases := make([][]topology.Direction, 4)
	for i := range phases {
		phases[i] = []topology.Direction{topology.Dir(i, false), topology.Dir(i, true)}
	}
	return newPhased(o, "dimension-order-octagonal", phases...)
}
