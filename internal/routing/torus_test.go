package routing

import (
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
)

func TestNegativeFirstTorusTerminates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, tr := range []*topology.Torus{
		topology.NewKaryNCube(4, 2),
		topology.NewKaryNCube(8, 2),
		topology.NewKaryNCube(5, 3),
	} {
		a := NegativeFirstTorus(tr)
		// The Section 4.2 algorithms are strictly nonminimal; bound
		// routes by the worst mesh path plus one wrap per dimension.
		limit := 0
		for d := 0; d < tr.Dims(); d++ {
			limit += 2 * tr.Size(d)
		}
		for trial := 0; trial < 300; trial++ {
			src := topology.NodeID(rng.Intn(tr.Nodes()))
			dst := topology.NodeID(rng.Intn(tr.Nodes()))
			if src == dst {
				continue
			}
			walk(t, a, src, dst, randomChooser(rng), limit)
		}
	}
}

func TestNegativeFirstTorusUsesWraparounds(t *testing.T) {
	// From coordinate 0 to coordinate k-1 the positive-classified
	// wraparound (physical west) reaches the destination in one hop.
	tr := topology.NewKaryNCube(8, 1)
	a := NegativeFirstTorus(tr)
	cands := a.Candidates(0, 7, topology.Invalid, false)
	found := false
	for _, d := range cands {
		if d == topology.West {
			found = true
		}
		if d == topology.East && 7 > 0 {
			// Mesh +1 is also acceptable (no overshoot, improves).
			continue
		}
	}
	if !found {
		t.Errorf("candidates 0->7 = %v, want to include the west wraparound", cands)
	}
	// From k-1 to 0 the negative-classified wraparound (physical east)
	// reaches in one hop.
	cands = a.Candidates(7, 0, topology.Invalid, false)
	found = false
	for _, d := range cands {
		if d == topology.East {
			found = true
		}
	}
	if !found {
		t.Errorf("candidates 7->0 = %v, want to include the east wraparound", cands)
	}
}

func TestNegativeFirstTorusNoOvershootInPositivePhase(t *testing.T) {
	tr := topology.NewKaryNCube(8, 1)
	a := NegativeFirstTorus(tr)
	// 0 -> 1: the west wraparound would land at 7, overshooting; only the
	// mesh +1 channel is permitted.
	cands := a.Candidates(0, 1, topology.Invalid, false)
	if len(cands) != 1 || cands[0] != topology.East {
		t.Errorf("candidates 0->1 = %v, want [east]", cands)
	}
}

func TestNegativeFirstTorusEveryHopImproves(t *testing.T) {
	tr := topology.NewKaryNCube(6, 2)
	a := NegativeFirstTorus(tr)
	for src := topology.NodeID(0); int(src) < tr.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < tr.Nodes(); dst++ {
			if src == dst {
				continue
			}
			cands := a.Candidates(src, dst, topology.Invalid, false)
			if len(cands) == 0 {
				t.Fatalf("no candidates %d->%d", src, dst)
			}
			cc, dc := tr.Coord(src), tr.Coord(dst)
			offset := 0
			for i := range cc {
				offset += abs(dc[i] - cc[i])
			}
			for _, d := range cands {
				nb, _ := tr.Neighbor(src, d)
				nc := tr.Coord(nb)
				no := 0
				for i := range nc {
					no += abs(dc[i] - nc[i])
				}
				if no >= offset {
					t.Fatalf("hop %v at %d->%d does not improve offset (%d -> %d)", d, src, dst, offset, no)
				}
			}
		}
	}
}

func TestFirstHopWrapOnlyAtInjection(t *testing.T) {
	tr := topology.NewKaryNCube(8, 2)
	a := WestFirstWrap(tr)
	src := tr.ID(topology.Coord{7, 3})
	dst := tr.ID(topology.Coord{0, 3})
	// At injection the east wraparound (7 -> 0) is one hop and offered.
	cands := a.Candidates(src, dst, topology.Invalid, false)
	hasWrap := false
	for _, d := range cands {
		if d == topology.East {
			hasWrap = true
		}
	}
	if !hasWrap {
		t.Errorf("injection candidates %v missing east wraparound", cands)
	}
	// After a hop the wrap is no longer offered: only the mesh west path.
	cands = a.Candidates(src, dst, topology.North, false)
	for _, d := range cands {
		if d == topology.East {
			t.Errorf("non-injection candidates %v include a wraparound", cands)
		}
	}
}

func TestFirstHopWrapRoutesTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	tr := topology.NewKaryNCube(6, 2)
	for _, a := range []Algorithm{WestFirstWrap(tr), NorthLastWrap(tr), NegativeFirstWrap(tr), DimensionOrderWrap(tr)} {
		for trial := 0; trial < 300; trial++ {
			src := topology.NodeID(rng.Intn(tr.Nodes()))
			dst := topology.NodeID(rng.Intn(tr.Nodes()))
			if src == dst {
				continue
			}
			// One wrap hop then a mesh-minimal route: bounded by the
			// mesh diameter plus one.
			walk(t, a, src, dst, randomChooser(rng), 6+6+1)
		}
	}
}

func TestFirstHopWrapShortensEdgeRoutes(t *testing.T) {
	// Corner to corner in an 8x8 torus: the mesh route is 14 hops, but
	// two wraps are not available (only one first hop), so the best
	// wrap-assisted route is 1 wrap + 7 mesh hops = 8.
	tr := topology.NewKaryNCube(8, 2)
	a := DimensionOrderWrap(tr)
	src := tr.ID(topology.Coord{0, 0})
	dst := tr.ID(topology.Coord{7, 7})
	best := 1 << 30
	// Breadth-limited search over all candidate choices.
	var explore func(cur topology.NodeID, in topology.Direction, inWrap bool, hops int)
	explore = func(cur topology.NodeID, in topology.Direction, inWrap bool, hops int) {
		if hops >= best {
			return
		}
		if cur == dst {
			best = hops
			return
		}
		for _, d := range a.Candidates(cur, dst, in, inWrap) {
			nb, _ := tr.Neighbor(cur, d)
			explore(nb, d, tr.Wraparound(cur, d), hops+1)
		}
	}
	explore(src, topology.Invalid, false, 0)
	if best != 8 {
		t.Errorf("best wrap-assisted route = %d hops, want 8", best)
	}
}

func TestRegistryConstructsEverything(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	h := topology.NewHypercube(3)
	tr := topology.NewKaryNCube(4, 2)
	cases := []struct {
		name string
		topo topology.Topology
		want string
	}{
		{"xy", m, "xy"},
		{"dor", m, "xy"},
		{"west-first", m, "west-first"},
		{"wf", m, "west-first"},
		{"north-last", m, "north-last"},
		{"negative-first", m, "negative-first"},
		{"abonf", m, "abonf"},
		{"abopl", m, "abopl"},
		{"fully-adaptive", m, "fully-adaptive"},
		{"e-cube", h, "e-cube"},
		{"p-cube", h, "p-cube"},
		{"negative-first", tr, "negative-first-torus"},
		{"west-first+wrap", tr, "west-first+wrap"},
		{"north-last+wrap", tr, "north-last+wrap"},
		{"negative-first+wrap", tr, "negative-first+wrap"},
		{"dimension-order+wrap", tr, "dimension-order+wrap"},
	}
	for _, c := range cases {
		a, err := New(c.name, c.topo)
		if err != nil {
			t.Errorf("New(%q, %s): %v", c.name, c.topo.Name(), err)
			continue
		}
		if a.Name() != c.want {
			t.Errorf("New(%q).Name() = %q, want %q", c.name, a.Name(), c.want)
		}
		if a.Topology() != c.topo {
			t.Errorf("New(%q) bound to wrong topology", c.name)
		}
	}
}

func TestRegistryRejectsMismatches(t *testing.T) {
	m3 := topology.NewMesh(3, 3, 3)
	h := topology.NewHypercube(3)
	bad := []struct {
		name string
		topo topology.Topology
	}{
		{"west-first", m3},
		{"north-last", m3},
		{"p-cube", m3},
		{"abonf", h}, // hypercube is a mesh, so this one must succeed instead
	}
	if _, err := New(bad[0].name, bad[0].topo); err == nil {
		t.Error("west-first on 3D mesh accepted")
	}
	if _, err := New(bad[1].name, bad[1].topo); err == nil {
		t.Error("north-last on 3D mesh accepted")
	}
	if _, err := New(bad[2].name, bad[2].topo); err == nil {
		t.Error("p-cube on 3D mesh accepted")
	}
	if _, err := New("abonf", h); err != nil {
		t.Errorf("abonf on hypercube rejected: %v", err)
	}
	if _, err := New("no-such-algorithm", m3); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := New("west-first+wrap", m3); err == nil {
		t.Error("west-first+wrap on mesh accepted")
	}
}

func TestNamesSortedAndNonEmpty(t *testing.T) {
	names := Names()
	if len(names) < 10 {
		t.Fatalf("too few names: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %q before %q", names[i-1], names[i])
		}
	}
	m := topology.NewMesh2D(4, 4)
	tr := topology.NewKaryNCube(4, 2)
	h := topology.NewHypercube(3)
	for _, name := range names {
		ok := false
		for _, topo := range []topology.Topology{m, tr, h} {
			if _, err := New(name, topo); err == nil {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("name %q constructible on no topology", name)
		}
	}
}

func TestWrapConstructorsPanicOnWrongDims(t *testing.T) {
	tr3 := topology.NewKaryNCube(3, 3)
	for name, f := range map[string]func(){
		"west-first+wrap 3D": func() { WestFirstWrap(tr3) },
		"north-last+wrap 3D": func() { NorthLastWrap(tr3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRelationRecoversWrapFlag(t *testing.T) {
	// Relation adapts Candidates(in, inWrap) to the CandidateFunc used by
	// the verifier; the wrap flag must be derived from the arrival
	// channel. For a first-hop-wrap algorithm the distinction matters:
	// candidates at injection include wraps, candidates in transit do not.
	tr := topology.NewKaryNCube(8, 2)
	a := WestFirstWrap(tr)
	rel := Relation(a)
	src := tr.ID(topology.Coord{7, 3})
	dst := tr.ID(topology.Coord{0, 3})
	atInjection := rel(src, dst, topology.Invalid)
	hasWrap := false
	for _, d := range atInjection {
		if d == topology.East {
			hasWrap = true
		}
	}
	if !hasWrap {
		t.Error("Relation lost the injection wrap candidates")
	}
	// In transit (arrived travelling north over a normal channel) the
	// wrap is no longer offered.
	inTransit := rel(src, dst, topology.North)
	for _, d := range inTransit {
		if d == topology.East {
			t.Error("Relation offered a wrap in transit")
		}
	}
}

func TestPhasedExportedAndTurnCharacterized(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	a := Phased(m, "east-first",
		[]topology.Direction{topology.East},
		[]topology.Direction{topology.West, topology.South, topology.North},
	)
	if a.Name() != "east-first" {
		t.Errorf("Name = %q", a.Name())
	}
	tc, ok := a.(TurnCharacterized)
	if !ok {
		t.Fatal("phased algorithm not TurnCharacterized")
	}
	prohibited := tc.ProhibitedTurns()
	// The two 90-degree turns into east are prohibited.
	if prohibited.Len() != 2 {
		t.Errorf("prohibits %d turns, want 2: %v", prohibited.Len(), prohibited.Turns())
	}
	for _, tr := range prohibited.Turns() {
		if tr.To != topology.East {
			t.Errorf("unexpected prohibited turn %v", tr)
		}
	}
}
