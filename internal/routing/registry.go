package routing

import (
	"fmt"
	"sort"

	"turnmodel/internal/topology"
)

// New constructs the named algorithm on the given topology. Recognized
// names are those reported by Names; aliases "xy" and "e-cube" resolve to
// dimension-order routing on the matching topology.
func New(name string, topo topology.Topology) (Algorithm, error) {
	mesh, isMesh := topo.(*topology.Mesh)
	hyper, isHyper := topo.(*topology.Hypercube)
	torus, isTorus := topo.(*topology.Torus)
	hex, isHex := topo.(*topology.Hex)
	oct, isOct := topo.(*topology.Octagonal)
	if isHyper {
		mesh, isMesh = &hyper.Mesh, true
	}
	need := func(cond bool, what string) error {
		if cond {
			return nil
		}
		return fmt.Errorf("routing: %q requires %s; have %s", name, what, topo.Name())
	}
	switch name {
	case "xy", "e-cube", "dimension-order", "dor":
		return DimensionOrder(topo), nil
	case "west-first", "wf":
		if err := need(isMesh && mesh.Dims() == 2, "a 2D mesh"); err != nil {
			return nil, err
		}
		return WestFirst(mesh), nil
	case "north-last", "nl":
		if err := need(isMesh && mesh.Dims() == 2, "a 2D mesh"); err != nil {
			return nil, err
		}
		return NorthLast(mesh), nil
	case "negative-first", "nf":
		if isTorus {
			return NegativeFirstTorus(torus), nil
		}
		if isHex {
			return NegativeFirstHex(hex), nil
		}
		if isOct {
			return NegativeFirstOctagonal(oct), nil
		}
		if err := need(isMesh, "a mesh"); err != nil {
			return nil, err
		}
		return NegativeFirst(mesh), nil
	case "abonf":
		if err := need(isMesh, "a mesh"); err != nil {
			return nil, err
		}
		return ABONF(mesh), nil
	case "abopl":
		if err := need(isMesh, "a mesh"); err != nil {
			return nil, err
		}
		return ABOPL(mesh), nil
	case "p-cube", "pcube":
		if err := need(isHyper, "a hypercube"); err != nil {
			return nil, err
		}
		return PCube(hyper), nil
	case "p-cube-nonminimal":
		if err := need(isHyper, "a hypercube"); err != nil {
			return nil, err
		}
		return NonminimalPCube(hyper), nil
	case "odd-even":
		if err := need(isMesh && mesh.Dims() == 2 && !isHyper, "a 2D mesh"); err != nil {
			return nil, err
		}
		return OddEven(mesh), nil
	case "fully-adaptive":
		return FullyAdaptive(topo), nil
	case "west-first+wrap":
		if err := need(isTorus && torus.Dims() == 2, "a 2D torus"); err != nil {
			return nil, err
		}
		return WestFirstWrap(torus), nil
	case "north-last+wrap":
		if err := need(isTorus && torus.Dims() == 2, "a 2D torus"); err != nil {
			return nil, err
		}
		return NorthLastWrap(torus), nil
	case "negative-first+wrap":
		if err := need(isTorus, "a torus"); err != nil {
			return nil, err
		}
		return NegativeFirstWrap(torus), nil
	case "dimension-order+wrap":
		if err := need(isTorus, "a torus"); err != nil {
			return nil, err
		}
		return DimensionOrderWrap(torus), nil
	}
	return nil, fmt.Errorf("routing: unknown algorithm %q (known: %v)", name, Names())
}

// Names lists the canonical algorithm names New accepts, sorted.
func Names() []string {
	names := []string{
		"dimension-order", "xy", "e-cube",
		"west-first", "north-last", "negative-first",
		"abonf", "abopl", "p-cube", "p-cube-nonminimal", "odd-even",
		"fully-adaptive",
		"west-first+wrap", "north-last+wrap", "negative-first+wrap", "dimension-order+wrap",
	}
	sort.Strings(names)
	return names
}
