package routing

import (
	"turnmodel/internal/topology"
)

// DimensionOrder is the nonadaptive dimension-ordered algorithm: a packet
// corrects dimension 0 first, then dimension 1, and so on. On a 2D mesh it
// is the xy algorithm; on a hypercube it is e-cube. It prohibits every
// turn from a higher dimension to a lower one — half of all turns, twice
// the minimum the turn model needs — which is why it admits no
// adaptiveness.
func DimensionOrder(topo topology.Topology) Algorithm {
	name := "dimension-order"
	switch topo.(type) {
	case *topology.Hypercube:
		name = "e-cube"
	default:
		if topo.Dims() == 2 {
			name = "xy"
		}
	}
	phases := make([][]topology.Direction, topo.Dims())
	for i := range phases {
		phases[i] = []topology.Direction{topology.Dir(i, false), topology.Dir(i, true)}
	}
	return newPhased(topo, name, phases...)
}

// XY is dimension-order routing on a 2D mesh (Section 1).
func XY(m *topology.Mesh) Algorithm { return DimensionOrder(m) }

// ECube is dimension-order routing on a hypercube (Section 1).
func ECube(h *topology.Hypercube) Algorithm { return DimensionOrder(h) }

// WestFirst is the Section 3.1 algorithm for 2D meshes: route a packet
// first west, if necessary, and then adaptively south, east, and north.
// The prohibited turns are the two turns to the west (Figure 5a).
func WestFirst(m *topology.Mesh) Algorithm {
	mustBe2D(m, "west-first")
	return newPhased(m, "west-first",
		[]topology.Direction{topology.West},
		[]topology.Direction{topology.East, topology.South, topology.North},
	)
}

// NorthLast is the Section 3.2 algorithm for 2D meshes: route a packet
// first adaptively west, south, and east, and then north. The prohibited
// turns are the two turns made when travelling north (Figure 9a).
func NorthLast(m *topology.Mesh) Algorithm {
	mustBe2D(m, "north-last")
	return newPhased(m, "north-last",
		[]topology.Direction{topology.West, topology.South, topology.East},
		[]topology.Direction{topology.North},
	)
}

// NegativeFirst is the Section 3.3 / Section 4.1 algorithm for
// n-dimensional meshes: route a packet first adaptively in the negative
// directions, then adaptively in the positive directions. The prohibited
// turns are those from a positive direction to a negative direction —
// exactly n(n-1) of them, the Theorem 1 minimum.
func NegativeFirst(m *topology.Mesh) Algorithm {
	return newPhased(m, "negative-first", negatives(m.Dims()), positives(m.Dims()))
}

// ABONF is the all-but-one-negative-first algorithm of Section 4.1, the
// n-dimensional analog of west-first: route first adaptively in the
// negative directions of all dimensions but the last, then adaptively in
// the other directions.
func ABONF(m *topology.Mesh) Algorithm {
	n := m.Dims()
	var phase1, phase2 []topology.Direction
	for i := 0; i < n-1; i++ {
		phase1 = append(phase1, topology.Dir(i, false))
	}
	phase2 = append(phase2, topology.Dir(n-1, false))
	phase2 = append(phase2, positives(n)...)
	return newPhased(m, "abonf", phase1, phase2)
}

// ABOPL is the all-but-one-positive-last algorithm of Section 4.1, the
// n-dimensional analog of north-last: route first adaptively in the
// negative directions and the positive direction of dimension 0, then
// adaptively in the remaining positive directions.
func ABOPL(m *topology.Mesh) Algorithm {
	n := m.Dims()
	phase1 := append(negatives(n), topology.Dir(0, true))
	var phase2 []topology.Direction
	for i := 1; i < n; i++ {
		phase2 = append(phase2, topology.Dir(i, true))
	}
	return newPhased(m, "abopl", phase1, phase2)
}

// PCube is the Section 5 p-cube algorithm for hypercubes, the hypercube
// special case of negative-first: phase one clears the dimensions where
// the current address has a 1 and the destination a 0; phase two sets the
// dimensions where the current address has a 0 and the destination a 1.
func PCube(h *topology.Hypercube) Algorithm {
	p := newPhased(h, "p-cube", negatives(h.Dims()), positives(h.Dims()))
	return p
}

// FullyAdaptive is the minimal fully adaptive relation: every productive
// direction is always permitted. Without extra channels this is NOT
// deadlock free (its channel dependency graph is cyclic); it exists as the
// cautionary baseline for tests and the deadlock demonstration.
func FullyAdaptive(topo topology.Topology) Algorithm {
	ma, _ := topo.(topology.MinimalAppender)
	return fullyAdaptive{topo, ma}
}

type fullyAdaptive struct {
	topo topology.Topology
	ma   topology.MinimalAppender // nil when the topology cannot append
}

func (f fullyAdaptive) Name() string                { return "fully-adaptive" }
func (f fullyAdaptive) Topology() topology.Topology { return f.topo }

func (f fullyAdaptive) Candidates(current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	return f.topo.MinimalDirections(current, dest)
}

// AppendCandidates implements CandidateAppender.
func (f fullyAdaptive) AppendCandidates(dst []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	if f.ma != nil {
		return f.ma.AppendMinimalDirections(dst, current, dest)
	}
	return append(dst, f.topo.MinimalDirections(current, dest)...)
}

func mustBe2D(m *topology.Mesh, name string) {
	if m.Dims() != 2 {
		panic("routing: " + name + " requires a 2D mesh")
	}
}
