package routing

import (
	"fmt"

	"turnmodel/internal/topology"
	"turnmodel/internal/turnmodel"
)

// TurnRule is a location-dependent turn permission: it reports whether a
// packet arriving at node `at` travelling `turn.From` may leave travelling
// `turn.To`. Successors of the turn model — most prominently the odd-even
// model — prohibit different turns at different nodes, which uniform
// prohibited-turn sets cannot express.
type TurnRule func(at topology.NodeID, turn turnmodel.Turn) bool

// FromTurnRules builds a minimal adaptive routing algorithm from a
// location-dependent turn rule. At every hop the algorithm offers the
// productive directions that (a) the rule permits as a turn from the
// arrival direction and (b) keep the destination reachable under the rule
// — so a header is never routed into a state from which every further
// minimal move would need a prohibited turn.
//
// Reachability is closed over the (node, arrival-direction) state graph,
// precomputed per destination at construction. The resulting relation is
// exactly what the channel-dependency-graph verifier consumes, so
// deadlock freedom of a rule is checked mechanically rather than assumed.
func FromTurnRules(topo topology.Topology, name string, rule TurnRule) Algorithm {
	a := &turnRuled{topo: topo, name: name, rule: rule, dims2: 2 * topo.Dims()}
	a.build()
	return a
}

type turnRuled struct {
	topo  topology.Topology
	name  string
	rule  TurnRule
	dims2 int
	// reach[dst][node*dims2+inDir] reports whether a packet at node that
	// arrived travelling inDir can still reach dst along productive,
	// rule-permitted moves. Arrival state "injection" is handled by
	// checking any first move directly.
	reach [][]bool
}

func (a *turnRuled) Name() string                { return a.name }
func (a *turnRuled) Topology() topology.Topology { return a.topo }

func (a *turnRuled) stateKey(node topology.NodeID, in topology.Direction) int {
	return int(node)*a.dims2 + int(in)
}

// build computes the per-destination reachability closure by backward
// search from the destination over the minimal-move state graph.
func (a *turnRuled) build() {
	n := a.topo.Nodes()
	a.reach = make([][]bool, n)
	for dst := topology.NodeID(0); int(dst) < n; dst++ {
		table := make([]bool, n*a.dims2)
		// Relax to fixpoint: state (node, in) can reach dst if some
		// productive, rule-permitted direction leads to dst or to a
		// state already marked reachable. The state count (nodes x 2n)
		// is small and minimal moves strictly reduce distance, so the
		// scan converges in at most diameter passes.
		for changed := true; changed; {
			changed = false
			for node := topology.NodeID(0); int(node) < n; node++ {
				if node == dst {
					continue
				}
				for _, in := range topology.Directions(a.topo.Dims()) {
					key := a.stateKey(node, in)
					if table[key] {
						continue
					}
					if a.stateCanProgress(table, node, dst, in) {
						table[key] = true
						changed = true
					}
				}
			}
		}
		a.reach[dst] = table
	}
}

// stateCanProgress reports whether a packet at node (arrived travelling
// in) has at least one rule-permitted productive move that reaches dst or
// a state marked reachable.
func (a *turnRuled) stateCanProgress(table []bool, node, dst topology.NodeID, in topology.Direction) bool {
	for _, d := range a.topo.MinimalDirections(node, dst) {
		if in != topology.Invalid && in != d && !a.rule(node, turnmodel.Turn{From: in, To: d}) {
			continue
		}
		next, ok := a.topo.Neighbor(node, d)
		if !ok {
			continue
		}
		if next == dst || table[a.stateKey(next, d)] {
			return true
		}
	}
	return false
}

// Candidates implements Algorithm.
func (a *turnRuled) Candidates(current, dest topology.NodeID, in topology.Direction, _ bool) []topology.Direction {
	if current == dest {
		return nil
	}
	table := a.reach[dest]
	var out []topology.Direction
	for _, d := range a.topo.MinimalDirections(current, dest) {
		if in != topology.Invalid && in != d && !a.rule(current, turnmodel.Turn{From: in, To: d}) {
			continue
		}
		next, ok := a.topo.Neighbor(current, d)
		if !ok {
			continue
		}
		if next != dest && !table[a.stateKey(next, d)] {
			continue
		}
		out = append(out, d)
	}
	if len(out) == 0 {
		panic(fmt.Sprintf("routing: %s has no safe move at node %d (in %v) toward %d — the rule does not connect this pair",
			a.name, current, in, dest))
	}
	return out
}

// OddEven is the odd-even turn model (Chiu, 2000), the best-known
// successor of Glass & Ni's model: instead of prohibiting the same turns
// everywhere, prohibitions alternate with column parity, which spreads the
// permitted turns evenly across the mesh —
//
//   - east-to-north and east-to-south turns are prohibited in even
//     columns,
//   - north-to-west and south-to-west turns are prohibited in odd
//     columns.
//
// Like the paper's algorithms it needs no virtual channels; unlike them,
// its degree of adaptiveness is distributed evenly rather than
// concentrated in one half of the direction space. Deadlock freedom is
// verified mechanically via the channel dependency graph rather than
// assumed.
func OddEven(m *topology.Mesh) Algorithm {
	if m.Dims() != 2 {
		panic("routing: odd-even requires a 2D mesh")
	}
	rule := func(at topology.NodeID, t turnmodel.Turn) bool {
		even := m.Coord(at)[0]%2 == 0
		w, e, s, n := topology.West, topology.East, topology.South, topology.North
		switch {
		case even && t.From == e && (t.To == n || t.To == s):
			return false
		case !even && (t.From == n || t.From == s) && t.To == w:
			return false
		}
		// 180-degree turns never occur under minimal routing; reject
		// them anyway for nonminimal callers.
		return t.Kind() != turnmodel.Turn180
	}
	return FromTurnRules(m, "odd-even", rule)
}
