// Package routing implements the routing algorithms studied in the paper:
// the nonadaptive dimension-order algorithms (xy for meshes, e-cube for
// hypercubes) and the partially adaptive algorithms the turn model derives
// (west-first, north-last, negative-first, all-but-one-negative-first,
// all-but-one-positive-last, p-cube), plus the Section 4.2 extensions to
// k-ary n-cubes and a deliberately unsafe fully adaptive baseline used to
// demonstrate deadlock.
//
// All algorithms used in the simulations are minimal, as in Section 6 of
// the paper: a router only ever forwards a packet along channels that lie
// on some shortest path that the algorithm permits.
package routing

import (
	"fmt"

	"turnmodel/internal/topology"
	"turnmodel/internal/turnmodel"
)

// Algorithm decides which output channels a header flit may take. An
// Algorithm is bound to a topology at construction time and must be
// stateless and safe for concurrent use.
type Algorithm interface {
	// Name is a short identifier such as "west-first".
	Name() string
	// Topology returns the network the algorithm is bound to.
	Topology() topology.Topology
	// Candidates lists the permitted output directions for a packet at
	// node current destined for dest. The packet arrived travelling in
	// direction in (topology.Invalid when it sits at the injection
	// port); inWrap reports whether it arrived over a torus wraparound
	// channel. The result is ordered by increasing dimension, which is
	// the order the paper's "xy" output selection policy prefers. An
	// empty result means current == dest.
	Candidates(current, dest topology.NodeID, in topology.Direction, inWrap bool) []topology.Direction
}

// CandidateAppender is the optional allocation-free form of Candidates.
// The contract is exact: AppendCandidates(dst, args...) appends the same
// directions in the same order Candidates(args...) returns, reusing dst's
// storage (typically per-worm scratch owned by a simulator). Algorithms
// whose candidate computation would otherwise allocate per hop implement
// it; callers must fall back to Candidates when the assertion fails.
type CandidateAppender interface {
	AppendCandidates(dst []topology.Direction, current, dest topology.NodeID, in topology.Direction, inWrap bool) []topology.Direction
}

// Relation adapts an Algorithm to the turnmodel.CandidateFunc used for
// channel dependency graph construction and numbering validation.
func Relation(a Algorithm) turnmodel.CandidateFunc {
	topo := a.Topology()
	return func(current, dest topology.NodeID, in topology.Direction) []topology.Direction {
		inWrap := false
		if in != topology.Invalid {
			// Recover the wrap flag of the arrival channel: the packet
			// entered current travelling in, so it came from the
			// neighbor in the opposite direction, over that neighbor's
			// channel in direction in.
			from, ok := topo.Neighbor(current, in.Opposite())
			if ok {
				inWrap = topo.Wraparound(from, in)
			}
		}
		return a.Candidates(current, dest, in, inWrap)
	}
}

// Phased builds a custom phase-ordered routing discipline: directions are
// grouped into ordered phases and turns from a later phase back to an
// earlier one are prohibited, so a minimal route exhausts the productive
// directions of each phase before moving on, routing fully adaptively
// within a phase. Every named turn-model algorithm in this package is an
// instance; exporting the constructor lets callers explore the whole
// design space the model opens up (any partition with at least two phases
// is deadlock free on a mesh — a cycle would need both signs of two axes
// inside a single phase).
//
// Every direction of the topology must appear in exactly one phase.
func Phased(topo topology.Topology, name string, phases ...[]topology.Direction) Algorithm {
	return newPhased(topo, name, phases...)
}

// phased is the shared engine behind every turn-model algorithm in the
// paper. Directions are grouped into ordered phases; turns from a later
// phase back to an earlier phase are prohibited, so a minimal route must
// exhaust the productive directions of each phase before moving to the
// next. Within a phase, routing is fully adaptive among the productive
// directions.
type phased struct {
	topo    topology.Topology
	name    string
	phaseOf []int // indexed by Direction
	// ma caches the topology's MinimalAppender (nil when unsupported) so
	// AppendCandidates skips the type assertion per hop.
	ma topology.MinimalAppender
}

func newPhased(topo topology.Topology, name string, phases ...[]topology.Direction) *phased {
	p := &phased{topo: topo, name: name, phaseOf: make([]int, 2*topo.Dims())}
	p.ma, _ = topo.(topology.MinimalAppender)
	for i := range p.phaseOf {
		p.phaseOf[i] = -1
	}
	for idx, ph := range phases {
		for _, d := range ph {
			if !d.Valid(topo.Dims()) {
				panic(fmt.Sprintf("routing: invalid direction %v for %s", d, topo.Name()))
			}
			if p.phaseOf[d] != -1 {
				panic(fmt.Sprintf("routing: direction %v in two phases", d))
			}
			p.phaseOf[d] = idx
		}
	}
	for d, ph := range p.phaseOf {
		if ph == -1 {
			panic(fmt.Sprintf("routing: direction %v not assigned a phase", topology.Direction(d)))
		}
	}
	return p
}

func (p *phased) Name() string                { return p.name }
func (p *phased) Topology() topology.Topology { return p.topo }

func (p *phased) Candidates(current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	productive := p.topo.MinimalDirections(current, dest)
	if len(productive) == 0 {
		return nil
	}
	best := -1
	for _, d := range productive {
		if ph := p.phaseOf[d]; best == -1 || ph < best {
			best = ph
		}
	}
	out := productive[:0]
	for _, d := range productive {
		if p.phaseOf[d] == best {
			out = append(out, d)
		}
	}
	return out
}

// AppendCandidates implements CandidateAppender: the same lowest-phase
// filter as Candidates, over minimal directions appended into dst.
func (p *phased) AppendCandidates(dst []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	base := len(dst)
	if p.ma != nil {
		dst = p.ma.AppendMinimalDirections(dst, current, dest)
	} else {
		dst = append(dst, p.topo.MinimalDirections(current, dest)...)
	}
	productive := dst[base:]
	if len(productive) == 0 {
		return dst[:base]
	}
	best := p.phaseOf[productive[0]]
	for _, d := range productive[1:] {
		if ph := p.phaseOf[d]; ph < best {
			best = ph
		}
	}
	k := base
	for _, d := range productive {
		if p.phaseOf[d] == best {
			dst[k] = d
			k++
		}
	}
	return dst[:k]
}

// ProhibitedTurns lists the 90-degree turns the phase discipline forbids:
// every turn from a direction of a later phase to one of an earlier phase.
func (p *phased) ProhibitedTurns() *turnmodel.Set {
	s := turnmodel.NewSet()
	for _, t := range turnmodel.AllTurns90(p.topo.Dims()) {
		if p.phaseOf[t.From] > p.phaseOf[t.To] {
			s.Add(t)
		}
	}
	return s
}

// TurnCharacterized is implemented by algorithms whose behavior is fully
// described by a prohibited turn set, enabling turn-based verification.
type TurnCharacterized interface {
	ProhibitedTurns() *turnmodel.Set
}

func negatives(n int) []topology.Direction {
	out := make([]topology.Direction, n)
	for i := range out {
		out[i] = topology.Dir(i, false)
	}
	return out
}

func positives(n int) []topology.Direction {
	out := make([]topology.Direction, n)
	for i := range out {
		out[i] = topology.Dir(i, true)
	}
	return out
}
