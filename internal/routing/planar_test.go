package routing

import (
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
)

func TestHexAlgorithmsAreMinimal(t *testing.T) {
	h := topology.NewHex(6, 6)
	rng := rand.New(rand.NewSource(21))
	for _, a := range []Algorithm{NegativeFirstHex(h), DimensionOrderHex(h), FullyAdaptive(h)} {
		for trial := 0; trial < 300; trial++ {
			src := topology.NodeID(rng.Intn(h.Nodes()))
			dst := topology.NodeID(rng.Intn(h.Nodes()))
			if src == dst {
				continue
			}
			want := h.Distance(src, dst)
			if got := walk(t, a, src, dst, randomChooser(rng), want+1); got != want {
				t.Fatalf("%s: %d->%d took %d hops, want %d", a.Name(), src, dst, got, want)
			}
		}
	}
}

func TestOctagonalAlgorithmsAreMinimal(t *testing.T) {
	o := topology.NewOctagonal(6, 6)
	rng := rand.New(rand.NewSource(22))
	for _, a := range []Algorithm{NegativeFirstOctagonal(o), DimensionOrderOctagonal(o), FullyAdaptive(o)} {
		for trial := 0; trial < 300; trial++ {
			src := topology.NodeID(rng.Intn(o.Nodes()))
			dst := topology.NodeID(rng.Intn(o.Nodes()))
			if src == dst {
				continue
			}
			want := o.Distance(src, dst)
			if got := walk(t, a, src, dst, randomChooser(rng), want+1); got != want {
				t.Fatalf("%s: %d->%d took %d hops, want %d", a.Name(), src, dst, got, want)
			}
		}
	}
}

func TestNegativeFirstHexPhases(t *testing.T) {
	h := topology.NewHex(6, 6)
	a := NegativeFirstHex(h)
	// Same-sign negative offsets: adaptive between west and southwest.
	src := h.ID(topology.Coord{3, 3, -6})
	cands := a.Candidates(src, h.ID(topology.Coord{1, 1, -2}), topology.Invalid, false)
	if len(cands) != 2 || cands[0] != topology.Dir(0, false) || cands[1] != topology.Dir(1, false) {
		t.Errorf("negative-phase candidates = %v, want [west southwest]", cands)
	}
	// Mixed offsets with a negative component: the negative direction
	// must come first.
	cands = a.Candidates(src, h.ID(topology.Coord{4, 1, -5}), topology.Invalid, false)
	for _, d := range cands {
		if d.Positive() {
			t.Errorf("positive candidate %v offered while negative hops remain", d)
		}
	}
}

func TestPlanarRegistry(t *testing.T) {
	h := topology.NewHex(4, 4)
	o := topology.NewOctagonal(4, 4)
	for _, c := range []struct {
		name string
		topo topology.Topology
		want string
	}{
		{"negative-first", h, "negative-first-hex"},
		{"negative-first", o, "negative-first-octagonal"},
		{"dimension-order", h, "dimension-order"},
		{"dimension-order", o, "dimension-order"},
		{"fully-adaptive", h, "fully-adaptive"},
	} {
		a, err := New(c.name, c.topo)
		if err != nil {
			t.Errorf("New(%q, %s): %v", c.name, c.topo.Name(), err)
			continue
		}
		if a.Name() != c.want {
			t.Errorf("New(%q, %s).Name() = %q, want %q", c.name, c.topo.Name(), a.Name(), c.want)
		}
	}
	// Mesh-only algorithms must reject planar topologies.
	if _, err := New("west-first", h); err == nil {
		t.Error("west-first on hex accepted")
	}
	if _, err := New("p-cube", o); err == nil {
		t.Error("p-cube on octagonal accepted")
	}
}
