package routing

import (
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
)

// walk follows the algorithm from src to dst, picking candidates with the
// given chooser, and returns the hop count. It fails the test if the route
// does not terminate within limit hops.
func walk(t *testing.T, a Algorithm, src, dst topology.NodeID, choose func([]topology.Direction) topology.Direction, limit int) int {
	t.Helper()
	topo := a.Topology()
	cur := src
	in := topology.Invalid
	inWrap := false
	hops := 0
	for cur != dst {
		cands := a.Candidates(cur, dst, in, inWrap)
		if len(cands) == 0 {
			t.Fatalf("%s: stuck at %d en route %d->%d after %d hops", a.Name(), cur, src, dst, hops)
		}
		d := choose(cands)
		next, ok := topo.Neighbor(cur, d)
		if !ok {
			t.Fatalf("%s: candidate %v at node %d has no channel", a.Name(), d, cur)
		}
		inWrap = topo.Wraparound(cur, d)
		cur, in = next, d
		hops++
		if hops > limit {
			t.Fatalf("%s: route %d->%d exceeded %d hops", a.Name(), src, dst, limit)
		}
	}
	return hops
}

func randomChooser(rng *rand.Rand) func([]topology.Direction) topology.Direction {
	return func(c []topology.Direction) topology.Direction { return c[rng.Intn(len(c))] }
}

func TestMinimalAlgorithmsTakeShortestPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := topology.NewMesh2D(6, 6)
	h := topology.NewHypercube(5)
	m3 := topology.NewMesh(3, 4, 3)
	algs := []Algorithm{
		XY(m), WestFirst(m), NorthLast(m), NegativeFirst(m), FullyAdaptive(m),
		ECube(h), PCube(h),
		DimensionOrder(m3), NegativeFirst(m3), ABONF(m3), ABOPL(m3),
	}
	for _, a := range algs {
		topo := a.Topology()
		for trial := 0; trial < 200; trial++ {
			src := topology.NodeID(rng.Intn(topo.Nodes()))
			dst := topology.NodeID(rng.Intn(topo.Nodes()))
			if src == dst {
				continue
			}
			want := topo.Distance(src, dst)
			if got := walk(t, a, src, dst, randomChooser(rng), want+1); got != want {
				t.Fatalf("%s: route %d->%d took %d hops, want %d", a.Name(), src, dst, got, want)
			}
		}
	}
}

func TestCandidatesAreProductive(t *testing.T) {
	// Every candidate of a minimal algorithm must be a productive
	// direction (lie on some shortest path).
	m := topology.NewMesh2D(5, 5)
	for _, a := range []Algorithm{XY(m), WestFirst(m), NorthLast(m), NegativeFirst(m)} {
		for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
			for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
				cands := a.Candidates(src, dst, topology.Invalid, false)
				if src == dst {
					if len(cands) != 0 {
						t.Fatalf("%s: candidates at destination: %v", a.Name(), cands)
					}
					continue
				}
				if len(cands) == 0 {
					t.Fatalf("%s: no candidates %d->%d", a.Name(), src, dst)
				}
				productive := m.MinimalDirections(src, dst)
				for _, c := range cands {
					found := false
					for _, p := range productive {
						if c == p {
							found = true
						}
					}
					if !found {
						t.Fatalf("%s: candidate %v at %d->%d not productive", a.Name(), c, src, dst)
					}
				}
			}
		}
	}
}

func TestXYIsDeterministicDimensionOrder(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	a := XY(m)
	if a.Name() != "xy" {
		t.Errorf("Name() = %q", a.Name())
	}
	src := m.ID(topology.Coord{2, 2})
	// Needs east and north: xy must offer only east until x is corrected.
	dst := m.ID(topology.Coord{5, 6})
	cands := a.Candidates(src, dst, topology.Invalid, false)
	if len(cands) != 1 || cands[0] != topology.East {
		t.Errorf("xy candidates = %v, want [east]", cands)
	}
	// With x corrected, only north remains.
	mid := m.ID(topology.Coord{5, 2})
	cands = a.Candidates(mid, dst, topology.East, false)
	if len(cands) != 1 || cands[0] != topology.North {
		t.Errorf("xy candidates = %v, want [north]", cands)
	}
}

func TestWestFirstPhaseDiscipline(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	a := WestFirst(m)
	src := m.ID(topology.Coord{4, 4})
	// Needs west and north: west must come first, alone.
	cands := a.Candidates(src, m.ID(topology.Coord{1, 6}), topology.Invalid, false)
	if len(cands) != 1 || cands[0] != topology.West {
		t.Errorf("west-first candidates = %v, want [west]", cands)
	}
	// Needs east and north: fully adaptive between them.
	cands = a.Candidates(src, m.ID(topology.Coord{6, 6}), topology.Invalid, false)
	if len(cands) != 2 || cands[0] != topology.East || cands[1] != topology.North {
		t.Errorf("west-first candidates = %v, want [east north]", cands)
	}
}

func TestNorthLastPhaseDiscipline(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	a := NorthLast(m)
	src := m.ID(topology.Coord{4, 4})
	// Needs east and north: east first (north is last).
	cands := a.Candidates(src, m.ID(topology.Coord{6, 6}), topology.Invalid, false)
	if len(cands) != 1 || cands[0] != topology.East {
		t.Errorf("north-last candidates = %v, want [east]", cands)
	}
	// Needs west and south: adaptive between them.
	cands = a.Candidates(src, m.ID(topology.Coord{2, 2}), topology.Invalid, false)
	if len(cands) != 2 || cands[0] != topology.West || cands[1] != topology.South {
		t.Errorf("north-last candidates = %v, want [west south]", cands)
	}
}

func TestNegativeFirstPhaseDiscipline(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	a := NegativeFirst(m)
	src := m.ID(topology.Coord{4, 4})
	// Needs west (negative) and north (positive): west strictly first.
	cands := a.Candidates(src, m.ID(topology.Coord{1, 6}), topology.Invalid, false)
	if len(cands) != 1 || cands[0] != topology.West {
		t.Errorf("negative-first candidates = %v, want [west]", cands)
	}
	// Needs west and south: adaptive (both negative).
	cands = a.Candidates(src, m.ID(topology.Coord{2, 2}), topology.Invalid, false)
	if len(cands) != 2 || cands[0] != topology.West || cands[1] != topology.South {
		t.Errorf("negative-first candidates = %v, want [west south]", cands)
	}
	// Needs east and north: adaptive (both positive).
	cands = a.Candidates(src, m.ID(topology.Coord{6, 6}), topology.Invalid, false)
	if len(cands) != 2 || cands[0] != topology.East || cands[1] != topology.North {
		t.Errorf("negative-first candidates = %v, want [east north]", cands)
	}
}

func TestPCubeMatchesBitwiseDefinition(t *testing.T) {
	// Figure 11: phase one routes along dimensions with c_i=1, d_i=0
	// (R = C AND NOT D); when R is zero, phase two routes along
	// dimensions with c_i=0, d_i=1 (R = NOT C AND D).
	h := topology.NewHypercube(6)
	a := PCube(h)
	for c := uint(0); c < 64; c++ {
		for d := uint(0); d < 64; d++ {
			r := c &^ d
			phase2 := false
			if r == 0 {
				r = ^c & d & 63
				phase2 = true
			}
			var want []topology.Direction
			for i := 0; i < 6; i++ {
				if r&(1<<uint(i)) != 0 {
					want = append(want, topology.Dir(i, phase2))
				}
			}
			got := a.Candidates(h.NodeFromBits(c), h.NodeFromBits(d), topology.Invalid, false)
			if len(got) != len(want) {
				t.Fatalf("p-cube C=%06b D=%06b: got %v, want %v", c, d, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("p-cube C=%06b D=%06b: got %v, want %v", c, d, got, want)
				}
			}
		}
	}
}

func TestECubeAscendingDimensions(t *testing.T) {
	h := topology.NewHypercube(4)
	a := ECube(h)
	if a.Name() != "e-cube" {
		t.Errorf("Name() = %q", a.Name())
	}
	// From 0b1111 to 0b0000 e-cube must fix dimension 0 first.
	cands := a.Candidates(h.NodeFromBits(0b1111), h.NodeFromBits(0), topology.Invalid, false)
	if len(cands) != 1 || cands[0] != topology.Dir(0, false) {
		t.Errorf("e-cube candidates = %v, want [-0]", cands)
	}
}

func TestABONFAndABOPLSpecializeTo2D(t *testing.T) {
	// In two dimensions ABONF must behave exactly like west-first and
	// ABOPL like north-last (they are the n-dimensional analogs).
	m := topology.NewMesh2D(6, 6)
	abonf, wf := ABONF(m), WestFirst(m)
	abopl, nl := ABOPL(m), NorthLast(m)
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
			if !sameDirs(abonf.Candidates(src, dst, topology.Invalid, false), wf.Candidates(src, dst, topology.Invalid, false)) {
				t.Fatalf("ABONF != west-first at %d->%d", src, dst)
			}
			if !sameDirs(abopl.Candidates(src, dst, topology.Invalid, false), nl.Candidates(src, dst, topology.Invalid, false)) {
				t.Fatalf("ABOPL != north-last at %d->%d", src, dst)
			}
		}
	}
}

func sameDirs(a, b []topology.Direction) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestPhasedPanics(t *testing.T) {
	m := topology.NewMesh(3, 3, 3)
	for name, f := range map[string]func(){
		"west-first 3D": func() { WestFirst(m) },
		"north-last 3D": func() { NorthLast(m) },
		"missing phase": func() { newPhased(m, "bad", negatives(3)) },
		"dup direction": func() { newPhased(m, "bad", negatives(3), negatives(3), positives(3)) },
		"bad direction": func() { newPhased(m, "bad", []topology.Direction{topology.Direction(99)}, negatives(3), positives(3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
