package routing

import (
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
	"turnmodel/internal/turnmodel"
)

func TestOddEvenRoutesAreMinimalAndSafe(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	a := OddEven(m)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 500; trial++ {
		src := topology.NodeID(rng.Intn(64))
		dst := topology.NodeID(rng.Intn(64))
		if src == dst {
			continue
		}
		want := m.Distance(src, dst)
		if got := walk(t, a, src, dst, randomChooser(rng), want+1); got != want {
			t.Fatalf("odd-even %d->%d took %d hops, want %d", src, dst, got, want)
		}
	}
}

func TestOddEvenNeverDeadEnds(t *testing.T) {
	// The reachability closure guarantees every offered move keeps the
	// destination reachable: exhaustively explore all choice sequences
	// for all pairs on a small mesh.
	m := topology.NewMesh2D(5, 5)
	a := OddEven(m)
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			var explore func(cur topology.NodeID, in topology.Direction)
			explore = func(cur topology.NodeID, in topology.Direction) {
				if cur == dst {
					return
				}
				cands := a.Candidates(cur, dst, in, false)
				if len(cands) == 0 {
					t.Fatalf("dead end at %d (in %v) for %d->%d", cur, in, src, dst)
				}
				for _, d := range cands {
					nb, _ := m.Neighbor(cur, d)
					explore(nb, d)
				}
			}
			explore(src, topology.Invalid)
		}
	}
}

func TestOddEvenRespectsParityRules(t *testing.T) {
	// Explore every state the router can actually reach, for every pair,
	// and verify no offered turn violates the parity rules.
	m := topology.NewMesh2D(6, 6)
	a := OddEven(m)
	w, e, s, n := topology.West, topology.East, topology.South, topology.North
	type state struct {
		node topology.NodeID
		in   topology.Direction
	}
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			seen := map[state]bool{}
			stack := []state{{src, topology.Invalid}}
			for len(stack) > 0 {
				st := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if st.node == dst || seen[st] {
					continue
				}
				seen[st] = true
				even := m.Coord(st.node)[0]%2 == 0
				for _, d := range a.Candidates(st.node, dst, st.in, false) {
					if st.in != topology.Invalid && st.in != d {
						if even && st.in == e && (d == n || d == s) {
							t.Fatalf("EN/ES turn at even column: node %d in %v out %v", st.node, st.in, d)
						}
						if !even && (st.in == n || st.in == s) && d == w {
							t.Fatalf("NW/SW turn at odd column: node %d in %v out %v", st.node, st.in, d)
						}
					}
					nb, _ := m.Neighbor(st.node, d)
					stack = append(stack, state{nb, d})
				}
			}
		}
	}
}

func TestOddEvenDeadlockFree(t *testing.T) {
	// The whole point of the exercise: Chiu's parity rules leave the
	// channel dependency graph acyclic, exactly like the paper's uniform
	// prohibitions — verified on the exact routing relation.
	for _, size := range [][2]int{{4, 4}, {8, 8}, {5, 7}} {
		m := topology.NewMesh2D(size[0], size[1])
		g := turnmodel.FromRouting(m, Relation(OddEven(m)))
		if cyc := g.FindCycle(); cyc != nil {
			t.Errorf("odd-even on %s: dependency cycle %v", m.Name(), cyc)
		}
	}
}

func TestOddEvenWorstCaseTurnGraph(t *testing.T) {
	// Stronger: even a nonminimal router using every turn the parity
	// rules allow (no 180s) has an acyclic location-dependent turn graph.
	m := topology.NewMesh2D(6, 6)
	w, e, s, n := topology.West, topology.East, topology.South, topology.North
	g := turnmodel.FromTurnsAt(m, func(at topology.NodeID, t turnmodel.Turn) bool {
		if t.Kind() != turnmodel.Turn90 {
			return false
		}
		even := m.Coord(at)[0]%2 == 0
		if even && t.From == e && (t.To == n || t.To == s) {
			return false
		}
		if !even && (t.From == n || t.From == s) && t.To == w {
			return false
		}
		return true
	})
	if cyc := g.FindCycle(); cyc != nil {
		t.Errorf("odd-even worst-case turn graph has cycle %v", cyc)
	}
}

func TestOddEvenMoreEvenlyAdaptiveThanWestFirst(t *testing.T) {
	// The odd-even model's selling point: its adaptiveness is spread
	// evenly instead of being full for half the pairs and zero for the
	// rest. Its single-path fraction is therefore much lower than
	// west-first's (which is pinned at >= 1/2).
	m := topology.NewMesh2D(8, 8)
	oe := OddEven(m)
	wf := WestFirst(m)
	oeSingle := fractionSinglePaths(t, oe)
	wfSingle := fractionSinglePaths(t, wf)
	if oeSingle >= wfSingle {
		t.Errorf("odd-even single-path fraction %.3f not below west-first's %.3f", oeSingle, wfSingle)
	}
}

// fractionSinglePaths counts pairs with exactly one permitted shortest
// path, via DP over the candidates relation.
func fractionSinglePaths(t *testing.T, a Algorithm) float64 {
	t.Helper()
	topo := a.Topology()
	single, pairs := 0, 0
	for src := topology.NodeID(0); int(src) < topo.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < topo.Nodes(); dst++ {
			if src == dst {
				continue
			}
			if countPathsWithState(a, src, dst) == 1 {
				single++
			}
			pairs++
		}
	}
	return float64(single) / float64(pairs)
}

// countPathsWithState counts permitted shortest paths for algorithms whose
// candidates depend on the arrival direction (odd-even does).
func countPathsWithState(a Algorithm, src, dst topology.NodeID) int64 {
	topo := a.Topology()
	type state struct {
		node topology.NodeID
		in   topology.Direction
	}
	memo := make(map[state]int64)
	var count func(s state) int64
	count = func(s state) int64 {
		if s.node == dst {
			return 1
		}
		if v, ok := memo[s]; ok {
			return v
		}
		var total int64
		for _, d := range a.Candidates(s.node, dst, s.in, false) {
			next, ok := topo.Neighbor(s.node, d)
			if !ok {
				continue
			}
			total += count(state{next, d})
		}
		memo[s] = total
		return total
	}
	return count(state{src, topology.Invalid})
}

func TestFromTurnRulesPanicsOnDisconnectedRule(t *testing.T) {
	// A rule that forbids every turn disconnects multi-bend pairs; the
	// reachability closure leaves Candidates empty for them and the
	// algorithm reports the misconfiguration loudly.
	m := topology.NewMesh2D(4, 4)
	a := FromTurnRules(m, "no-turns", func(topology.NodeID, turnmodel.Turn) bool { return false })
	// Straight-line pairs still work.
	if got := a.Candidates(0, 3, topology.Invalid, false); len(got) != 1 {
		t.Errorf("straight-line pair broken: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic for an unroutable pair")
		}
	}()
	a.Candidates(m.ID(topology.Coord{0, 0}), m.ID(topology.Coord{3, 3}), topology.Invalid, false)
}

func TestOddEvenPanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	OddEven(topology.NewMesh(3, 3, 3))
}
