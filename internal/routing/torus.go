package routing

import (
	"turnmodel/internal/topology"
)

// NegativeFirstTorus extends negative-first to k-ary n-cubes the second way
// Section 4.2 describes: classify each wraparound channel according to the
// direction in which it routes packets — the wrap entering coordinate 0
// moves a packet to a lower coordinate and so is a negative channel even
// though it leaves the node in the physical positive direction — and then
// apply the negative-first discipline to the classified directions.
//
// The algorithm is strictly nonminimal in general, as the paper notes, but
// every hop strictly reduces the remaining coordinate offset, so routes
// terminate. In the positive phase overshooting is forbidden (it would
// require a prohibited positive-to-negative turn to recover).
func NegativeFirstTorus(t *topology.Torus) Algorithm {
	return nfTorus{t}
}

type nfTorus struct{ t *topology.Torus }

func (a nfTorus) Name() string                { return "negative-first-torus" }
func (a nfTorus) Topology() topology.Topology { return a.t }

func (a nfTorus) Candidates(current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	cc := a.t.Coord(current)
	dc := a.t.Coord(dest)
	negPhase := false
	for i := range cc {
		if dc[i] < cc[i] {
			negPhase = true
			break
		}
	}
	var out []topology.Direction
	for dim := range cc {
		k := a.t.Size(dim)
		cur, want := cc[dim], dc[dim]
		if cur == want {
			continue
		}
		for _, d := range []topology.Direction{topology.Dir(dim, false), topology.Dir(dim, true)} {
			// Coordinate after the hop, accounting for wraparound.
			next := cur + d.Delta()
			switch {
			case next < 0:
				next = k - 1
			case next >= k:
				next = 0
			}
			classifiedPositive := next > cur
			if negPhase == classifiedPositive {
				continue
			}
			if abs(want-next) >= abs(want-cur) {
				continue // not strictly closer
			}
			if !negPhase && next > want {
				continue // overshoot would need a prohibited recovery turn
			}
			out = append(out, d)
		}
	}
	return out
}

// AppendCandidates implements CandidateAppender: the classified-direction
// negative-first rule of Candidates, computed per coordinate without
// allocating the Coord vectors.
func (a nfTorus) AppendCandidates(dst []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ bool) []topology.Direction {
	dims := a.t.Dims()
	negPhase := false
	for dim := 0; dim < dims; dim++ {
		if a.t.CoordAt(dest, dim) < a.t.CoordAt(current, dim) {
			negPhase = true
			break
		}
	}
	for dim := 0; dim < dims; dim++ {
		k := a.t.Size(dim)
		cur, want := a.t.CoordAt(current, dim), a.t.CoordAt(dest, dim)
		if cur == want {
			continue
		}
		for _, d := range [2]topology.Direction{topology.Dir(dim, false), topology.Dir(dim, true)} {
			next := cur + d.Delta()
			switch {
			case next < 0:
				next = k - 1
			case next >= k:
				next = 0
			}
			classifiedPositive := next > cur
			if negPhase == classifiedPositive {
				continue
			}
			if abs(want-next) >= abs(want-cur) {
				continue
			}
			if !negPhase && next > want {
				continue
			}
			dst = append(dst, d)
		}
	}
	return dst
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// FirstHopWrap extends a mesh-discipline algorithm to a k-ary n-cube the
// first way Section 4.2 describes: a packet may use a wraparound channel
// only on its first hop. Wraparound channels are numbered above every mesh
// channel, so any turn off a wrap is safe, and after the first hop the
// packet follows the base mesh discipline on the mesh channels alone.
//
// The base discipline is named by the same phase structure used for the
// mesh algorithms; use WestFirstWrap, NorthLastWrap, NegativeFirstWrap or
// DimensionOrderWrap to construct the concrete variants.
type firstHopWrap struct {
	t    *topology.Torus
	name string
	*phased
}

func newFirstHopWrap(t *topology.Torus, name string, phases ...[]topology.Direction) Algorithm {
	return firstHopWrap{t: t, name: name, phased: newPhased(t, name, phases...)}
}

func (a firstHopWrap) Name() string                { return a.name }
func (a firstHopWrap) Topology() topology.Topology { return a.t }

func (a firstHopWrap) Candidates(current, dest topology.NodeID, in topology.Direction, _ bool) []topology.Direction {
	cc := a.t.Coord(current)
	dc := a.t.Coord(dest)
	// Mesh-productive directions under the phase discipline: the torus
	// MinimalDirections is modular, so recompute by plain comparison.
	var productive []topology.Direction
	for dim := range cc {
		switch {
		case dc[dim] < cc[dim]:
			productive = append(productive, topology.Dir(dim, false))
		case dc[dim] > cc[dim]:
			productive = append(productive, topology.Dir(dim, true))
		}
	}
	best := -1
	for _, d := range productive {
		if ph := a.phaseOf[d]; best == -1 || ph < best {
			best = ph
		}
	}
	var out []topology.Direction
	for _, d := range productive {
		if a.phaseOf[d] == best {
			out = append(out, d)
		}
	}
	if in != topology.Invalid {
		return out
	}
	// First hop: offer every wraparound channel that lands strictly
	// closer to the destination in its dimension.
	for dim := range cc {
		k := a.t.Size(dim)
		switch cc[dim] {
		case 0:
			if abs(dc[dim]-(k-1)) < abs(dc[dim]) {
				out = append(out, topology.Dir(dim, false))
			}
		case k - 1:
			if abs(dc[dim]) < abs(dc[dim]-(k-1)) {
				out = append(out, topology.Dir(dim, true))
			}
		}
	}
	return out
}

// AppendCandidates implements CandidateAppender. It must shadow the
// promoted phased rule — which filters the torus's modular minimal
// directions — because the first-hop-wrap discipline routes by plain
// coordinate comparison plus first-hop wraps, exactly as Candidates does.
func (a firstHopWrap) AppendCandidates(dst []topology.Direction, current, dest topology.NodeID, in topology.Direction, _ bool) []topology.Direction {
	base := len(dst)
	dims := a.t.Dims()
	for dim := 0; dim < dims; dim++ {
		cc, dc := a.t.CoordAt(current, dim), a.t.CoordAt(dest, dim)
		switch {
		case dc < cc:
			dst = append(dst, topology.Dir(dim, false))
		case dc > cc:
			dst = append(dst, topology.Dir(dim, true))
		}
	}
	productive := dst[base:]
	k := base
	if len(productive) > 0 {
		best := a.phaseOf[productive[0]]
		for _, d := range productive[1:] {
			if ph := a.phaseOf[d]; ph < best {
				best = ph
			}
		}
		for _, d := range productive {
			if a.phaseOf[d] == best {
				dst[k] = d
				k++
			}
		}
	}
	dst = dst[:k]
	if in != topology.Invalid {
		return dst
	}
	// First hop: offer every wraparound channel that lands strictly
	// closer to the destination in its dimension.
	for dim := 0; dim < dims; dim++ {
		kk := a.t.Size(dim)
		cc, dc := a.t.CoordAt(current, dim), a.t.CoordAt(dest, dim)
		switch cc {
		case 0:
			if abs(dc-(kk-1)) < abs(dc) {
				dst = append(dst, topology.Dir(dim, false))
			}
		case kk - 1:
			if abs(dc) < abs(dc-(kk-1)) {
				dst = append(dst, topology.Dir(dim, true))
			}
		}
	}
	return dst
}

// MisrouteCandidates implements Misrouter. It overrides the promoted
// phased rule because the first-hop-wrap discipline routes by plain
// coordinate comparison, not the torus's modular minimal directions, and
// its safety numbering admits wraparound channels on the first hop only —
// a detour must therefore stay on mesh channels of the mesh-productive
// phase (misrouteInPhase's wraparound exclusion enforces the latter at
// boundary nodes).
func (a firstHopWrap) MisrouteCandidates(current, dest topology.NodeID, in topology.Direction, _ bool) []topology.Direction {
	cc := a.t.Coord(current)
	dc := a.t.Coord(dest)
	var productive []topology.Direction
	for dim := range cc {
		switch {
		case dc[dim] < cc[dim]:
			productive = append(productive, topology.Dir(dim, false))
		case dc[dim] > cc[dim]:
			productive = append(productive, topology.Dir(dim, true))
		}
	}
	return misrouteInPhase(a.t, a.phaseOf, productive, current, in)
}

// WestFirstWrap is west-first on a 2D torus with first-hop wraparounds.
func WestFirstWrap(t *topology.Torus) Algorithm {
	if t.Dims() != 2 {
		panic("routing: west-first+wrap requires a 2D torus")
	}
	return newFirstHopWrap(t, "west-first+wrap",
		[]topology.Direction{topology.West},
		[]topology.Direction{topology.East, topology.South, topology.North},
	)
}

// NorthLastWrap is north-last on a 2D torus with first-hop wraparounds.
func NorthLastWrap(t *topology.Torus) Algorithm {
	if t.Dims() != 2 {
		panic("routing: north-last+wrap requires a 2D torus")
	}
	return newFirstHopWrap(t, "north-last+wrap",
		[]topology.Direction{topology.West, topology.South, topology.East},
		[]topology.Direction{topology.North},
	)
}

// NegativeFirstWrap is n-dimensional negative-first on a torus with
// first-hop wraparounds.
func NegativeFirstWrap(t *topology.Torus) Algorithm {
	return newFirstHopWrap(t, "negative-first+wrap", negatives(t.Dims()), positives(t.Dims()))
}

// DimensionOrderWrap is dimension-order routing on a torus with first-hop
// wraparounds.
func DimensionOrderWrap(t *topology.Torus) Algorithm {
	phases := make([][]topology.Direction, t.Dims())
	for i := range phases {
		phases[i] = []topology.Direction{topology.Dir(i, false), topology.Dir(i, true)}
	}
	return newFirstHopWrap(t, "dimension-order+wrap", phases...)
}
