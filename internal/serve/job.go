package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"turnmodel/internal/sim"
)

// State is a job's lifecycle stage.
type State string

const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Job is one submitted sweep: its spec, its position in the lifecycle, the
// points streamed so far (kept for replay, so a subscriber attaching late
// still sees the full stream), and — once done — the archived report and
// tables.
type Job struct {
	id      string
	key     string
	spec    JobSpec
	created time.Time
	done    chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc

	mu           sync.Mutex
	state        State
	err          error
	total        int
	cachedPoints int
	fromCache    bool
	points       []sim.PointEvent
	subs         map[chan struct{}]struct{}
	art          *artifact
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content address.
func (j *Job) Key() string { return j.key }

// Spec returns the spec the job was submitted with.
func (j *Job) Spec() JobSpec { return j.spec }

// State returns the job's current lifecycle stage.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: queued jobs never run, running jobs stop at the
// next point boundary (in-flight points drain). Terminal jobs ignore it.
func (j *Job) Cancel() { j.cancel() }

// Report returns the archived schema-v4 report bytes — exactly the bytes
// WriteJSON produced when the job (or the earlier job this one was served
// from) finished. ok is false until the job is done, or always for jobs
// with no figure sweeps.
func (j *Job) Report() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.art == nil || len(j.art.Report) == 0 {
		return nil, false
	}
	return j.art.Report, true
}

// Tables returns the rendered result tables once the job is done.
func (j *Job) Tables() ([]string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.art == nil {
		return nil, false
	}
	return j.art.Tables, true
}

// Status is the job's wire-visible state.
type Status struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	Error string `json:"error,omitempty"`
	// Done/Total count completed points; for archived jobs Done == Total
	// immediately.
	Done  int `json:"done"`
	Total int `json:"total"`
	// CachedPoints counts points the runner served from the point cache;
	// FromCache marks the whole job as answered from the report archive
	// without running at all.
	CachedPoints int       `json:"cached_points"`
	FromCache    bool      `json:"from_cache,omitempty"`
	HasReport    bool      `json:"has_report"`
	Created      time.Time `json:"created"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:           j.id,
		Key:          j.key,
		State:        j.state,
		Done:         len(j.points),
		Total:        j.total,
		CachedPoints: j.cachedPoints,
		FromCache:    j.fromCache,
		HasReport:    j.state == StateDone && j.art != nil && len(j.art.Report) > 0,
		Created:      j.created,
	}
	if j.fromCache {
		st.Done = j.total
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// setRunning records the point count and moves the job to running.
func (j *Job) setRunning(total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.total = total
}

// publish appends a point to the replay log and pokes every subscriber.
// It runs serialized inside the runner's own emission lock, so points land
// in Done order. Subscribers re-read the log rather than receive events, so
// a stalled consumer can never block the simulation.
func (j *Job) publish(ev sim.PointEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.points = append(j.points, ev)
	if ev.Cached {
		j.cachedPoints++
	}
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // a pending wakeup already covers this point
		}
	}
}

// subscribe registers a wakeup channel: a receive means the replay log may
// have grown (read it with pointsSince). Close with unsubscribe.
func (j *Job) subscribe() chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan struct{}, 1)
	if j.subs != nil {
		j.subs[ch] = struct{}{}
	}
	return ch
}

func (j *Job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// pointsSince returns the points emitted after the first n.
func (j *Job) pointsSince(n int) []sim.PointEvent {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n >= len(j.points) {
		return nil
	}
	return append([]sim.PointEvent(nil), j.points[n:]...)
}

// finish moves the job to a terminal state, records the artifact, detaches
// the subscribers and closes Done.
func (j *Job) finish(state State, err error, art *artifact) {
	j.mu.Lock()
	j.state = state
	j.err = err
	j.art = art
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
}

// completeFromArchive materializes a job as already done from an archived
// artifact: no points stream (the report carries the results), Done and
// Total jump straight to the archived point count.
func (j *Job) completeFromArchive(art artifact) {
	j.mu.Lock()
	j.state = StateDone
	j.fromCache = true
	j.total = art.Points
	j.art = &art
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
}

// MarshalJSON renders the job as its Status, so handlers can encode jobs
// directly.
func (j *Job) MarshalJSON() ([]byte, error) {
	return json.Marshal(j.Status())
}
