package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"turnmodel/internal/jobstore"
	"turnmodel/internal/sim"
)

// State is a job's lifecycle stage.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	// StateRetrying is a job whose last attempt failed transiently,
	// waiting out its backoff before re-entering the queue.
	StateRetrying State = "retrying"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted sweep: its spec, its position in the lifecycle, the
// points streamed so far (kept for replay, so a subscriber attaching late
// still sees the full stream), and — once done — the archived report and
// tables.
type Job struct {
	id      string
	key     string
	client  string
	spec    JobSpec
	created time.Time
	done    chan struct{}
	ctx     context.Context
	cancel  context.CancelFunc
	// replica is the executing replica's identity (empty without a job
	// store).
	replica string

	mu           sync.Mutex
	state        State
	err          error
	errClass     ErrorClass
	attempts     int
	gen          int // bumped per attempt; stale publishes are dropped
	total        int
	cachedPoints int
	fromCache    bool
	recovered    bool // adopted from a journal after a crash or restart
	points       []sim.PointEvent
	subs         map[chan struct{}]struct{}
	art          *artifact
	// lease is the job's execution lease in the shared store; fenceLost
	// records that a renewal discovered a peer took the job, so this
	// replica's terminal record must be suppressed.
	lease     *jobstore.Lease
	fenceLost bool
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Key returns the job's content address.
func (j *Job) Key() string { return j.key }

// Client returns the client key the job was submitted under.
func (j *Job) Client() string { return j.client }

// Spec returns the spec the job was submitted with.
func (j *Job) Spec() JobSpec { return j.spec }

// State returns the job's current lifecycle stage.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Attempts returns how many execution attempts have started.
func (j *Job) Attempts() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempts
}

// Err returns the job's terminal error and class, if any.
func (j *Job) Err() (error, ErrorClass) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err, j.errClass
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Cancel aborts the job: queued jobs never run, running jobs stop at the
// next point boundary (in-flight points drain), retrying jobs skip their
// backoff and cancel. Terminal jobs ignore it.
func (j *Job) Cancel() { j.cancel() }

// Report returns the archived schema-v4 report bytes — exactly the bytes
// WriteJSON produced when the job (or the earlier job this one was served
// from) finished. ok is false until the job is done, or always for jobs
// with no figure sweeps.
func (j *Job) Report() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.art == nil || len(j.art.Report) == 0 {
		return nil, false
	}
	return j.art.Report, true
}

// Tables returns the rendered result tables once the job is done.
func (j *Job) Tables() ([]string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateDone || j.art == nil {
		return nil, false
	}
	return j.art.Tables, true
}

// Status is the job's wire-visible state.
type Status struct {
	ID    string `json:"id"`
	Key   string `json:"key"`
	State State  `json:"state"`
	// Error and ErrorClass describe the last failure; for retrying jobs
	// the failure the retry is recovering from, for terminal jobs why
	// the job ended.
	Error      string     `json:"error,omitempty"`
	ErrorClass ErrorClass `json:"error_class,omitempty"`
	// Attempts counts execution attempts started (retries included).
	Attempts int `json:"attempts,omitempty"`
	// Done/Total count completed points; for archived jobs Done == Total
	// immediately.
	Done  int `json:"done"`
	Total int `json:"total"`
	// CachedPoints counts points the runner served from the point cache;
	// FromCache marks the whole job as answered from the report archive
	// without running at all.
	CachedPoints int       `json:"cached_points"`
	FromCache    bool      `json:"from_cache,omitempty"`
	HasReport    bool      `json:"has_report"`
	Created      time.Time `json:"created"`
	// Replica names the replica executing (or last known to execute) the
	// job; empty when the server runs without a shared job store.
	Replica string `json:"replica,omitempty"`
	// Recovered marks a job requeued from the durable journal after its
	// original owner crashed or restarted.
	Recovered bool `json:"recovered,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:           j.id,
		Key:          j.key,
		State:        j.state,
		Attempts:     j.attempts,
		Done:         len(j.points),
		Total:        j.total,
		CachedPoints: j.cachedPoints,
		FromCache:    j.fromCache,
		HasReport:    j.state == StateDone && j.art != nil && len(j.art.Report) > 0,
		Created:      j.created,
		Replica:      j.replica,
		Recovered:    j.recovered,
	}
	if j.fromCache {
		st.Done = j.total
	}
	if j.err != nil {
		st.Error = j.err.Error()
		st.ErrorClass = j.errClass
	}
	return st
}

// beginAttempt starts a new execution attempt: the attempt counter and
// generation advance, the replay log of any previous attempt is discarded
// (subscribers observe the generation change and replay from scratch),
// and the job moves to running. Returns the new generation.
func (j *Job) beginAttempt() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts++
	j.gen++
	j.points = nil
	j.cachedPoints = 0
	j.state = StateRunning
	j.notifyLocked()
	return j.gen
}

// setTotal records the planned point count once the runner is built.
func (j *Job) setTotal(total int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total = total
}

// setRetrying parks the job between a transient failure and its
// re-dispatch, keeping the failure visible in the status.
func (j *Job) setRetrying(cause error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.state = StateRetrying
	j.err = cause
	j.errClass = ClassTransient
	j.notifyLocked()
}

// publish appends a point to the replay log and pokes every subscriber.
// It runs serialized inside the runner's own emission lock, so points land
// in Done order. Subscribers re-read the log rather than receive events, so
// a stalled consumer can never block the simulation. Publishes from a
// superseded attempt (gen mismatch: the attempt timed out and was
// abandoned, then retried) or after the job finished are dropped — the
// abandoned runner drains harmlessly. The return reports whether the
// point was accepted (callers journal accepted points only).
func (j *Job) publish(gen int, ev sim.PointEvent) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if gen != j.gen || j.state.Terminal() {
		return false
	}
	j.points = append(j.points, ev)
	if ev.Cached {
		j.cachedPoints++
	}
	j.notifyLocked()
	return true
}

// notifyLocked pokes every subscriber. Caller holds j.mu.
func (j *Job) notifyLocked() {
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default: // a pending wakeup already covers this change
		}
	}
}

// subscribe registers a wakeup channel: a receive means the replay log may
// have grown or the job changed state (read it with pointsSince). Close
// with unsubscribe.
func (j *Job) subscribe() chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan struct{}, 1)
	if j.subs != nil {
		j.subs[ch] = struct{}{}
	}
	return ch
}

func (j *Job) unsubscribe(ch chan struct{}) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// subscriberCount reports the live subscriber channels — how tests assert
// dead SSE clients were reaped.
func (j *Job) subscriberCount() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.subs)
}

// pointsSince returns the points emitted after the first n of the current
// attempt, plus that attempt's generation. A generation different from
// the caller's last means the job was retried: the replay log restarted
// and the caller should reset its cursor.
func (j *Job) pointsSince(n int) ([]sim.PointEvent, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n >= len(j.points) {
		return nil, j.gen
	}
	return append([]sim.PointEvent(nil), j.points[n:]...), j.gen
}

// finish moves the job to a terminal state, records the artifact, detaches
// the subscribers and closes Done. Only the first call wins — the return
// reports whether this call was it — so a late finish from an abandoned
// attempt is dropped and the journal sees one terminal record.
func (j *Job) finish(state State, err error, art *artifact) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.err = err
	j.errClass = classify(err)
	j.art = art
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
	return true
}

// finishSpec is finish for spec-level failures, which carry ClassSpec
// rather than whatever classify would guess.
func (j *Job) finishSpec(err error) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = StateFailed
	j.err = err
	j.errClass = ClassSpec
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
	return true
}

// completeFromArchive materializes a job as already done from an archived
// artifact: no points stream (the report carries the results), Done and
// Total jump straight to the archived point count.
func (j *Job) completeFromArchive(art artifact) {
	j.mu.Lock()
	j.state = StateDone
	j.fromCache = true
	j.total = art.Points
	j.art = &art
	j.subs = nil
	j.mu.Unlock()
	close(j.done)
}

// adoptInfo restores a journaled job's history onto this Job: attempts
// survive the crash, and the latest attempt's points are reloaded so SSE
// replay is reconstructed from the journal after a restart. Called before
// the job is queued (no concurrent access yet).
func (j *Job) adoptInfo(info jobstore.JobInfo) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.attempts = info.Attempts
	j.recovered = true
	for _, raw := range info.Points {
		var ev sim.PointEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			continue
		}
		j.points = append(j.points, ev)
		if ev.Cached {
			j.cachedPoints++
		}
		if ev.Total > j.total {
			j.total = ev.Total
		}
	}
}

// leaseRef returns the job's lease, nil when the server runs storeless.
func (j *Job) leaseRef() *jobstore.Lease {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.lease
}

// takeLease detaches and returns the lease (nil if none or already taken),
// so exactly one finisher releases it.
func (j *Job) takeLease() *jobstore.Lease {
	j.mu.Lock()
	defer j.mu.Unlock()
	l := j.lease
	j.lease = nil
	return l
}

// markFenceLost records that a renewal found the lease claimed by a peer.
func (j *Job) markFenceLost() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.fenceLost = true
}

func (j *Job) fenceWasLost() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.fenceLost
}

// MarshalJSON renders the job as its Status, so handlers can encode jobs
// directly.
func (j *Job) MarshalJSON() ([]byte, error) {
	return json.Marshal(j.Status())
}
