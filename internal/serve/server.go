package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"turnmodel/internal/metrics"
	"turnmodel/internal/sim"
	"turnmodel/internal/simcache"
)

// Config sizes one Server. The zero value is usable: one simulation worker
// per core, a small bounded queue, and an in-memory result cache.
type Config struct {
	// Workers is the default per-job worker count when a spec leaves Jobs
	// unset; <= 0 selects all CPUs (the sim default).
	Workers int
	// QueueDepth bounds the number of jobs waiting behind the running
	// one; submissions beyond it are refused with 503 rather than
	// accepted into an unbounded backlog. <= 0 selects 8.
	QueueDepth int
	// Cache backs both tiers of result reuse: the runner's per-point
	// cache and the server's whole-report archive. Nil selects a fresh
	// in-memory simcache.Store; pass a disk-backed store to persist
	// results across restarts.
	Cache sim.Cache
	// Probe is attached to every simulated point (tests use it to assert
	// cache hits run zero engine steps).
	Probe metrics.Probe
	// Clock stamps job creation times; nil selects time.Now.
	Clock func() time.Time
}

// Server executes sweep jobs one at a time off a bounded queue, streams
// their points to any number of subscribers, and archives finished reports
// in the content-addressed cache so an identical spec — resubmitted to
// this process or to a later one sharing the cache directory — is answered
// byte-identically without simulating.
type Server struct {
	cfg   Config
	cache sim.Cache
	clock func() time.Time

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[string]*Job // by ID
	byKey  map[string]*Job // most recent job per content address
	order  []string        // IDs in submission order
	queue  chan *Job
	nextID int
	closed bool

	wg sync.WaitGroup // the runner goroutine
}

// NewServer starts the job runner goroutine; callers must Shutdown.
func NewServer(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simcache.NewStore(simcache.Options{})
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		cache:      cache,
		clock:      clock,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		queue:      make(chan *Job, cfg.QueueDepth),
	}
	s.wg.Add(1)
	go s.runLoop()
	return s
}

// Shutdown stops accepting jobs and drains the queue: the running job and
// every queued one finish normally. If ctx expires first, the in-flight
// work is cancelled and ctx's error returned.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// ErrQueueFull reports that the bounded job queue refused a submission.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown reports a submission after Shutdown began.
var ErrShuttingDown = errors.New("serve: server shutting down")

// Submit registers a job for the spec. Reuse comes in two tiers before
// anything is queued: an active or completed job with the same content
// address is returned as-is (created = false), and a report archived in
// the cache — by this process or an earlier one — materializes as an
// instantly-completed job. Otherwise the job is queued, or refused with
// ErrQueueFull / ErrShuttingDown.
func (s *Server) Submit(spec JobSpec) (job *Job, created bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	key, err := spec.Key()
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrShuttingDown
	}
	if j, ok := s.byKey[key]; ok && j.State() != StateFailed && j.State() != StateCanceled {
		return j, false, nil
	}
	j := s.newJobLocked(spec, key)
	if raw, ok := s.cache.Get(key); ok {
		var art artifact
		if err := json.Unmarshal(raw, &art); err == nil {
			j.completeFromArchive(art)
			s.registerLocked(j)
			return j, true, nil
		}
		// A corrupt archive entry falls through to a fresh run.
	}
	select {
	case s.queue <- j:
	default:
		return nil, false, ErrQueueFull
	}
	s.registerLocked(j)
	return j, true, nil
}

func (s *Server) newJobLocked(spec JobSpec, key string) *Job {
	s.nextID++
	ctx, cancel := context.WithCancel(s.baseCtx)
	return &Job{
		id:      fmt.Sprintf("job-%d", s.nextID),
		key:     key,
		spec:    spec,
		state:   StateQueued,
		created: s.clock(),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
		subs:    make(map[chan struct{}]struct{}),
	}
}

func (s *Server) registerLocked(j *Job) {
	s.jobs[j.id] = j
	s.byKey[j.key] = j
	s.order = append(s.order, j.id)
}

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueLen reports how many jobs are waiting behind the running one.
func (s *Server) QueueLen() int { return len(s.queue) }

// CacheStats exposes the underlying store's counters when the cache has
// them (the default store does).
func (s *Server) CacheStats() (simcache.Stats, bool) {
	if st, ok := s.cache.(interface{ Stats() simcache.Stats }); ok {
		return st.Stats(), true
	}
	return simcache.Stats{}, false
}

// runLoop executes queued jobs one at a time; simulation parallelism lives
// inside each job (Options.Jobs x Options.Shards), not across jobs, so a
// lone job still saturates the machine.
func (s *Server) runLoop() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

func (s *Server) runJob(j *Job) {
	defer j.cancel()
	if j.ctx.Err() != nil { // cancelled while queued
		j.finish(StateCanceled, context.Canceled, nil)
		return
	}
	opts, err := j.spec.Options()
	if err != nil {
		j.finish(StateFailed, err, nil)
		return
	}
	if opts.Jobs == 0 {
		opts.Jobs = s.cfg.Workers
	}
	opts.Cache = s.cache
	opts.Probe = s.cfg.Probe
	opts.OnPoint = j.publish
	rn, err := sim.NewRunner(opts)
	if err != nil {
		j.finish(StateFailed, err, nil)
		return
	}
	j.setRunning(rn.Total())
	out, err := rn.Run(j.ctx)
	switch {
	case errors.Is(err, context.Canceled):
		j.finish(StateCanceled, err, nil)
	case err != nil:
		j.finish(StateFailed, err, nil)
	default:
		art, aerr := buildArtifact(out)
		if aerr != nil {
			j.finish(StateFailed, aerr, nil)
			return
		}
		art.Points = rn.Total()
		j.finish(StateDone, nil, art)
		if raw, merr := json.Marshal(art); merr == nil {
			// Best-effort archive; a full disk must not fail the job.
			_ = s.cache.Put(j.key, raw)
		}
	}
}

// artifact is the archived form of a finished job: the schema-v4 report
// exactly as WriteJSON rendered it, plus the rendered tables. Report is
// []byte (base64 on disk), NOT json.RawMessage: Marshal compacts embedded
// raw JSON, and a resubmission must serve the original bytes unchanged.
type artifact struct {
	Report []byte   `json:"report,omitempty"`
	Tables []string `json:"tables,omitempty"`
	Points int      `json:"points"`
	Cached int      `json:"cached_points"`
}

func buildArtifact(out *sim.Outcome) (*artifact, error) {
	art := &artifact{Cached: out.CachedPoints}
	if out.Report != nil {
		var buf bytes.Buffer
		if err := out.Report.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("encoding report: %w", err)
		}
		art.Report = buf.Bytes()
	}
	for _, fr := range out.Figures {
		art.Tables = append(art.Tables, fr.Table())
	}
	for _, rr := range out.Resilience {
		art.Tables = append(art.Tables, rr.Table())
	}
	for _, rc := range out.Compares {
		art.Tables = append(art.Tables, rc.Table())
	}
	return art, nil
}
