package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"turnmodel/internal/jobstore"
	"turnmodel/internal/metrics"
	"turnmodel/internal/sim"
	"turnmodel/internal/simcache"
)

// Config sizes one Server. The zero value is usable: one job at a time
// with all CPUs inside it, a small bounded queue, no rate limits, and an
// in-memory result cache.
type Config struct {
	// Workers is the default per-job worker count when a spec leaves Jobs
	// unset; <= 0 selects all CPUs (the sim default).
	Workers int
	// JobWorkers is how many jobs execute concurrently. <= 0 derives
	// max(1, NumCPU/Workers): the machine is divided between intra-job
	// parallelism and cross-job concurrency, so the default Workers
	// (all CPUs per job) keeps one job at a time — exactly the pre-
	// scheduler behavior — while narrower per-job budgets buy job
	// concurrency.
	JobWorkers int
	// QueueDepth bounds the number of jobs waiting behind the running
	// ones; submissions beyond it are refused with ErrQueueFull rather
	// than accepted into an unbounded backlog. <= 0 selects 8.
	QueueDepth int
	// Cache backs both tiers of result reuse: the runner's per-point
	// cache and the server's whole-report archive. Nil selects a fresh
	// in-memory simcache.Store; pass a disk-backed store to persist
	// results across restarts.
	Cache sim.Cache
	// Probe is attached to every simulated point (tests use it to assert
	// cache hits run zero engine steps).
	Probe metrics.Probe
	// Clock stamps job creation times and drives the rate limiters; nil
	// selects time.Now.
	Clock func() time.Time

	// JobTimeout is the per-job deadline: the default when a spec leaves
	// timeout_s unset and the cap when it sets one (a client may ask for
	// less time than the server allows, never more). 0 disables
	// deadlines.
	JobTimeout time.Duration
	// StallGrace is how long after a job's deadline the scheduler waits
	// for the runner's point-granular drain before abandoning the
	// attempt and freeing the worker (the abandoned attempt's late
	// output is dropped by generation). 0 selects 10s.
	StallGrace time.Duration
	// MaxRetries bounds how many times a transiently-failed job (see
	// Transient) is re-queued with exponential backoff before failing
	// for good. 0 selects 2; negative disables retries.
	MaxRetries int
	// RetryBase and RetryMax shape the backoff: attempt n waits
	// RetryBase*2^(n-1) capped at RetryMax, halved-plus-jitter so
	// synchronized failures spread out. Zero selects 200ms / 5s.
	RetryBase time.Duration
	RetryMax  time.Duration
	// RetrySeed seeds the deterministic jitter stream; 0 selects 1.
	RetrySeed int64

	// SubmitRate and SubmitBurst rate-limit job submissions per client
	// key (tokens/second and bucket size). Rate 0 disables limiting.
	SubmitRate  float64
	SubmitBurst int
	// StreamRate and StreamBurst rate-limit SSE stream attaches the same
	// way.
	StreamRate  float64
	StreamBurst int

	// SSEHeartbeat is the idle interval after which the event stream
	// emits a comment frame, so dead connections surface as write
	// failures instead of idling forever. 0 selects 15s.
	SSEHeartbeat time.Duration
	// SSEWriteTimeout is the per-write deadline on event streams: a
	// client that stops reading is disconnected once its buffers fill
	// and a write blocks this long. 0 selects 10s.
	SSEWriteTimeout time.Duration

	// RunHook, when non-nil, runs at the start of every execution
	// attempt, before any simulation. A non-nil return fails the
	// attempt with that error (retryable when marked Transient); a
	// panic exercises the scheduler's panic isolation. It is the
	// chaos-test fault point and has no production use.
	RunHook func(j *Job, attempt int) error

	// Store is the durable job store shared by every replica of one
	// cache directory: accepted jobs are journaled, execution is guarded
	// by leases with generation fencing, and jobs whose owner crashes are
	// requeued by a peer or by the restarted process. Nil keeps all job
	// state in memory (the pre-durability behavior).
	Store *jobstore.Store
	// ReplicaID is this process's identity in the shared store — the
	// lease owner name and the job-ID prefix. Empty derives
	// "<hostname>-<pid>". It must be unique among live replicas sharing
	// a store; reusing a crashed replica's ID is fine (that is what a
	// restart is).
	ReplicaID string
	// LeaseTTL is how long a replica may go without renewing a job's
	// lease before peers may steal the job. It trades failover latency
	// against tolerance for stalls; 0 selects 10s. Renewal runs every
	// LeaseTTL/3.
	LeaseTTL time.Duration
	// SweepInterval is how often the orphan sweep scans the store for
	// expired-lease jobs to requeue; 0 selects LeaseTTL.
	SweepInterval time.Duration
	// NoRecover disables the startup recovery scan (the -recover=false
	// flag); the periodic sweep still runs, so orphans are adopted — just
	// not synchronously at boot.
	NoRecover bool
}

const (
	defaultStallGrace   = 10 * time.Second
	defaultMaxRetries   = 2
	defaultRetryBase    = 200 * time.Millisecond
	defaultRetryMax     = 5 * time.Second
	defaultHeartbeat    = 15 * time.Second
	defaultWriteTimeout = 10 * time.Second
	defaultLeaseTTL     = 10 * time.Second
	limiterPruneEvery   = time.Minute
	limiterMaxIdle      = 10 * time.Minute
)

// Server executes sweep jobs on a pool of workers fed by a per-client
// fair queue, streams their points to any number of subscribers, and
// archives finished reports in the content-addressed cache so an
// identical spec — resubmitted to this process or to a later one sharing
// the cache directory — is answered byte-identically without simulating.
//
// Failure is isolated per job: panics are recovered into structured
// errors, deadlines bound each job's runtime, and transient
// infrastructure failures retry with backoff — the process and the other
// jobs are never taken down by one bad job.
type Server struct {
	cfg        Config
	jobWorkers int
	maxRetries int
	cache      sim.Cache
	clock      func() time.Time

	submitLim *limiter
	streamLim *limiter

	// Durability (nil store disables all of it; see durable.go).
	store         *jobstore.Store
	replicaID     string
	leaseTTL      time.Duration
	sweepInterval time.Duration

	baseCtx    context.Context
	baseCancel context.CancelFunc
	drainNow   chan struct{} // closed at Shutdown: backoff waits end early

	rngMu sync.Mutex
	rng   *rand.Rand

	mu           sync.Mutex
	cond         *sync.Cond
	fq           fairQueue
	jobs         map[string]*Job // by ID
	byKey        map[string]*Job // most recent job per content address
	order        []string        // IDs in submission order
	nextID       int
	closed       bool
	running      int
	retryPending int
	durs         [32]time.Duration // recent attempt durations, ring
	durN         int

	rejectedFull atomic.Int64
	rejectedRate atomic.Int64
	retriesRun   atomic.Int64
	panicsSeen   atomic.Int64
	sseActive    atomic.Int64

	// Durability counters (see durable.go and /v1/stats).
	archiveCorrupt  atomic.Int64 // archived reports discarded as corrupt
	recoveredJobs   atomic.Int64 // own journals re-adopted after restart
	requeuedJobs    atomic.Int64 // peers' journals adopted off expired leases
	leasesStolen    atomic.Int64 // leases taken over from another owner
	fencingRejected atomic.Int64 // terminal records suppressed by fencing

	wg     sync.WaitGroup // worker goroutines
	bgWg   sync.WaitGroup // limiter pruner
	bgStop chan struct{}
}

// NewServer starts the worker pool; callers must Shutdown.
func NewServer(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	cache := cfg.Cache
	if cache == nil {
		cache = simcache.NewStore(simcache.Options{})
	}
	clock := cfg.Clock
	if clock == nil {
		clock = time.Now
	}
	jobWorkers := cfg.JobWorkers
	if jobWorkers <= 0 {
		per := cfg.Workers
		if per <= 0 {
			per = runtime.NumCPU()
		}
		jobWorkers = runtime.NumCPU() / per
		if jobWorkers < 1 {
			jobWorkers = 1
		}
	}
	maxRetries := cfg.MaxRetries
	if maxRetries == 0 {
		maxRetries = defaultMaxRetries
	} else if maxRetries < 0 {
		maxRetries = 0
	}
	seed := cfg.RetrySeed
	if seed == 0 {
		seed = 1
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		jobWorkers: jobWorkers,
		maxRetries: maxRetries,
		cache:      cache,
		clock:      clock,
		submitLim:  newLimiter(cfg.SubmitRate, cfg.SubmitBurst, clock),
		streamLim:  newLimiter(cfg.StreamRate, cfg.StreamBurst, clock),
		baseCtx:    ctx,
		baseCancel: cancel,
		drainNow:   make(chan struct{}),
		rng:        rand.New(rand.NewSource(seed)),
		fq:         newFairQueue(),
		jobs:       make(map[string]*Job),
		byKey:      make(map[string]*Job),
		bgStop:     make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	if cfg.Store != nil {
		s.store = cfg.Store
		s.replicaID = sanitizeReplicaID(cfg.ReplicaID)
		s.leaseTTL = cfg.LeaseTTL
		if s.leaseTTL <= 0 {
			s.leaseTTL = defaultLeaseTTL
		}
		s.sweepInterval = cfg.SweepInterval
		if s.sweepInterval <= 0 {
			s.sweepInterval = s.leaseTTL
		}
	}
	for w := 0; w < jobWorkers; w++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.submitLim != nil || s.streamLim != nil {
		s.bgWg.Add(1)
		go s.pruneLoop()
	}
	if s.store != nil {
		if !cfg.NoRecover {
			// Synchronous, so a restarted replica's orphans are requeued
			// before the first request lands.
			s.recoverJobs()
		}
		s.bgWg.Add(1)
		go s.leaseLoop()
	}
	return s
}

// sanitizeReplicaID defaults an empty replica identity to "<hostname>-<pid>"
// and restricts it to characters safe in job IDs, URLs, and lease files.
func sanitizeReplicaID(id string) string {
	if id == "" {
		host, err := os.Hostname()
		if err != nil || host == "" {
			host = "replica"
		}
		id = fmt.Sprintf("%s-%d", host, os.Getpid())
	}
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '.' || r == '_' || r == '-':
			return r
		}
		return '-'
	}, id)
}

// pruneLoop periodically drops idle rate-limiter buckets. Its ticker is
// stopped by Shutdown before the server's stores are closed.
func (s *Server) pruneLoop() {
	defer s.bgWg.Done()
	t := time.NewTicker(limiterPruneEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.submitLim.prune(limiterMaxIdle)
			s.streamLim.prune(limiterMaxIdle)
		case <-s.bgStop:
			return
		}
	}
}

// Shutdown stops accepting jobs and drains the queue: running, queued and
// retry-pending jobs all finish (backoff waits are skipped so retries
// drain promptly). If ctx expires first, the in-flight work is cancelled
// and ctx's error returned. The rate-limiter ticker is stopped either
// way, so a post-Shutdown server holds no goroutines.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.drainNow)
		s.cond.Broadcast()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		err = ctx.Err()
	}
	// Stop the limiter pruner after the workers: nothing else references
	// it, and stopping it last keeps Shutdown idempotent.
	s.mu.Lock()
	select {
	case <-s.bgStop:
	default:
		close(s.bgStop)
	}
	s.mu.Unlock()
	s.bgWg.Wait()
	return err
}

// Submit registers a job for the spec under the given client key (the
// fairness and rate-limit identity; empty is a valid shared key). Reuse
// comes in two tiers before anything is queued: an active or completed
// job with the same content address is returned as-is (created = false),
// and a report archived in the cache — by this process or an earlier one —
// materializes as an instantly-completed job. Otherwise the job is
// queued, or refused with ErrQueueFull / ErrShuttingDown.
func (s *Server) Submit(spec JobSpec, client string) (job *Job, created bool, err error) {
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	key, err := spec.Key()
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false, ErrShuttingDown
	}
	if j, ok := s.byKey[key]; ok && j.State() != StateFailed && j.State() != StateCanceled {
		return j, false, nil
	}
	j := s.newJobLocked(spec, key, client)
	if raw, ok := s.cache.Get(key); ok {
		var art artifact
		if err := json.Unmarshal(raw, &art); err == nil {
			j.completeFromArchive(art)
			s.registerLocked(j)
			// Crash-after-archive: a non-terminal journal for an archived
			// result just needs its terminal record written.
			s.reconcileArchiveLocked(j)
			return j, true, nil
		}
		// A corrupt archive entry is discarded — visibly — and the job
		// re-runs; the deterministic engine rebuilds the same report.
		s.archiveCorrupt.Add(1)
		log.Printf("serve: discarding corrupt archive entry for key %s (re-running job)", key)
	}
	if s.fq.len() >= s.cfg.QueueDepth {
		s.rejectedFull.Add(1)
		j.cancel()
		return nil, false, ErrQueueFull
	}
	if s.store != nil {
		if err := s.persistSubmitLocked(j); err != nil {
			j.cancel()
			return nil, false, err
		}
	}
	s.fq.push(j)
	s.registerLocked(j)
	s.cond.Broadcast()
	return j, true, nil
}

func (s *Server) newJobLocked(spec JobSpec, key, client string) *Job {
	s.nextID++
	// Durable IDs carry the replica identity so IDs from different
	// replicas sharing one store never collide.
	id := fmt.Sprintf("job-%d", s.nextID)
	if s.store != nil {
		id = fmt.Sprintf("job-%s-%d", s.replicaID, s.nextID)
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	return &Job{
		id:      id,
		key:     key,
		client:  client,
		spec:    spec,
		state:   StateQueued,
		created: s.clock(),
		done:    make(chan struct{}),
		ctx:     ctx,
		cancel:  cancel,
		replica: s.replicaID,
		subs:    make(map[chan struct{}]struct{}),
	}
}

func (s *Server) registerLocked(j *Job) {
	s.jobs[j.id] = j
	s.byKey[j.key] = j
	s.order = append(s.order, j.id)
}

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs returns every job in submission order.
func (s *Server) Jobs() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id])
	}
	return out
}

// QueueLen reports how many jobs are waiting behind the running ones.
func (s *Server) QueueLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fq.len()
}

// ClientQueueLen reports one client's pending jobs (fairness tests).
func (s *Server) ClientQueueLen(client string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fq.clientLen(client)
}

// CacheStats exposes the underlying store's counters when the cache has
// them (the default store does).
func (s *Server) CacheStats() (simcache.Stats, bool) {
	if st, ok := s.cache.(interface{ Stats() simcache.Stats }); ok {
		return st.Stats(), true
	}
	return simcache.Stats{}, false
}

// SchedulerStats is the scheduler's wire-visible state, served by
// /v1/stats.
type SchedulerStats struct {
	Workers      int   `json:"workers"`
	Queued       int   `json:"queued"`
	Running      int   `json:"running"`
	RetryPending int   `json:"retry_pending"`
	Retries      int64 `json:"retries"`
	Panics       int64 `json:"panics"`
	RejectedFull int64 `json:"rejected_queue_full"`
	RejectedRate int64 `json:"rejected_rate_limited"`
	SSEActive    int64 `json:"sse_active"`
	Clients      int   `json:"rate_limited_clients"`
	// Durability: the replica's identity and recovery counters; Replica
	// is empty (and the counters always zero) without a job store.
	Replica         string `json:"replica,omitempty"`
	Durable         bool   `json:"durable,omitempty"`
	ArchiveCorrupt  int64  `json:"archive_corrupt"`
	Recovered       int64  `json:"recovered_jobs"`
	Requeued        int64  `json:"requeued_jobs"`
	LeasesStolen    int64  `json:"leases_stolen"`
	FencingRejected int64  `json:"fencing_rejected"`
}

// Stats snapshots the scheduler.
func (s *Server) Stats() SchedulerStats {
	s.mu.Lock()
	queued, running, pending := s.fq.len(), s.running, s.retryPending
	s.mu.Unlock()
	return SchedulerStats{
		Workers:         s.jobWorkers,
		Queued:          queued,
		Running:         running,
		RetryPending:    pending,
		Retries:         s.retriesRun.Load(),
		Panics:          s.panicsSeen.Load(),
		RejectedFull:    s.rejectedFull.Load(),
		RejectedRate:    s.rejectedRate.Load(),
		SSEActive:       s.sseActive.Load(),
		Clients:         s.submitLim.size() + s.streamLim.size(),
		Replica:         s.replicaID,
		Durable:         s.store != nil,
		ArchiveCorrupt:  s.archiveCorrupt.Load(),
		Recovered:       s.recoveredJobs.Load(),
		Requeued:        s.requeuedJobs.Load(),
		LeasesStolen:    s.leasesStolen.Load(),
		FencingRejected: s.fencingRejected.Load(),
	}
}

// RetryAfterQueueFull estimates when queue space will exist: the mean
// recent job duration times the jobs ahead, clamped to [1s, 60s]. With no
// history it answers 1s.
func (s *Server) RetryAfterQueueFull() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.durN
	if n > len(s.durs) {
		n = len(s.durs)
	}
	if n == 0 {
		return time.Second
	}
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += s.durs[i]
	}
	mean := sum / time.Duration(n)
	est := mean * time.Duration(s.fq.len()+1) / time.Duration(s.jobWorkers)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

func (s *Server) observeDuration(d time.Duration) {
	s.mu.Lock()
	s.durs[s.durN%len(s.durs)] = d
	s.durN++
	s.mu.Unlock()
}

// worker pulls jobs off the fair queue until the server drains.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		j := s.next()
		if j == nil {
			return
		}
		s.runJob(j)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// next blocks until a job is available or the drain completes: a nil
// return means the queue is empty, no retries are pending, and the server
// is closed.
func (s *Server) next() *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if j := s.fq.pop(); j != nil {
			s.running++
			return j
		}
		if s.closed && s.retryPending == 0 {
			return nil
		}
		s.cond.Wait()
	}
}

// runJob executes one attempt of the job and settles the outcome:
// success, cancellation, terminal failure, or a scheduled retry.
func (s *Server) runJob(j *Job) {
	if j.ctx.Err() != nil { // cancelled while queued or waiting out backoff
		s.settle(j, StateCanceled, context.Canceled, nil)
		return
	}
	attempt := j.Attempts() + 1
	start := time.Now()
	err := s.runAttempt(j, attempt)
	s.observeDuration(time.Since(start))
	if err == nil {
		return // finished inside runAttempt
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		s.panicsSeen.Add(1)
	}
	switch {
	case errors.Is(err, context.Canceled):
		s.settle(j, StateCanceled, err, nil)
	case IsTransient(err) && attempt <= s.maxRetries && j.ctx.Err() == nil:
		s.scheduleRetry(j, attempt, err)
	default:
		s.settle(j, StateFailed, err, nil)
	}
}

// runAttempt runs the simulation under the per-job deadline with panic
// isolation. On success the job is finished and archived here and nil
// returned; otherwise the error comes back for runJob to settle.
func (s *Server) runAttempt(j *Job, attempt int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	gen := j.beginAttempt()
	s.journalStarted(j, attempt)
	if s.cfg.RunHook != nil {
		if err := s.cfg.RunHook(j, attempt); err != nil {
			return err
		}
	}
	opts, err := j.spec.Options()
	if err != nil {
		s.settleSpec(j, err)
		return nil
	}
	if opts.Jobs == 0 {
		opts.Jobs = s.cfg.Workers
	}
	opts.Cache = s.cache
	opts.Probe = s.cfg.Probe
	opts.OnPoint = func(ev sim.PointEvent) {
		if j.publish(gen, ev) {
			s.journalPoint(j, ev)
		}
	}
	rn, err := sim.NewRunner(opts)
	if err != nil {
		s.settleSpec(j, err)
		return nil
	}
	j.setTotal(rn.Total())

	actx := j.ctx
	cancel := context.CancelFunc(func() {})
	if d := j.spec.deadline(s.cfg.JobTimeout); d > 0 {
		actx, cancel = context.WithTimeout(j.ctx, d)
	}
	defer cancel()

	type attemptResult struct {
		out *sim.Outcome
		err error
	}
	ch := make(chan attemptResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- attemptResult{nil, &PanicError{Value: r, Stack: debug.Stack()}}
			}
		}()
		out, rerr := rn.Run(actx)
		ch <- attemptResult{out, rerr}
	}()

	var res attemptResult
	select {
	case res = <-ch:
	case <-actx.Done():
		// The runner drains at point granularity; give it the grace
		// window, then abandon the attempt so one stuck point cannot
		// pin a worker forever. The abandoned goroutine's late output
		// is dropped by the generation check in publish.
		grace := s.cfg.StallGrace
		if grace <= 0 {
			grace = defaultStallGrace
		}
		select {
		case res = <-ch:
		case <-time.After(grace):
			return fmt.Errorf("attempt abandoned %v after deadline: %w", grace, actx.Err())
		}
	}
	if res.err != nil {
		if errors.Is(res.err, context.Canceled) && j.ctx.Err() == nil && actx.Err() == context.DeadlineExceeded {
			// The deadline fired between point dispatch and the runner's
			// error mapping; report it as the timeout it is.
			return context.DeadlineExceeded
		}
		return res.err
	}
	art, aerr := buildArtifact(res.out)
	if aerr != nil {
		return aerr
	}
	art.Points = rn.Total()
	if raw, merr := json.Marshal(art); merr == nil {
		// Best-effort archive; a full or degraded disk must not fail
		// the job (the store accounts the failure). Archiving before the
		// terminal journal record means a crash between the two leaves a
		// recoverable crash-after-archive journal, never a terminal
		// record without its result.
		_ = s.cache.Put(j.key, raw)
	}
	s.settle(j, StateDone, nil, art)
	return nil
}

// scheduleRetry parks the job in retrying and re-queues it after an
// exponential, jittered backoff. Shutdown and cancellation cut the wait
// short, so draining never waits out a backoff.
func (s *Server) scheduleRetry(j *Job, attempt int, cause error) {
	j.setRetrying(cause)
	s.journalRetrying(j, attempt, cause)
	s.retriesRun.Add(1)
	delay := s.backoff(attempt)
	s.mu.Lock()
	s.retryPending++
	s.mu.Unlock()
	timer := time.NewTimer(delay)
	go func() {
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-s.drainNow:
		case <-j.ctx.Done():
		}
		s.mu.Lock()
		s.retryPending--
		s.fq.push(j)
		s.cond.Broadcast()
		s.mu.Unlock()
	}()
}

// backoff is RetryBase*2^(attempt-1) capped at RetryMax, then halved plus
// deterministic jitter, so synchronized transient failures de-correlate.
func (s *Server) backoff(attempt int) time.Duration {
	base := s.cfg.RetryBase
	if base <= 0 {
		base = defaultRetryBase
	}
	maxd := s.cfg.RetryMax
	if maxd <= 0 {
		maxd = defaultRetryMax
	}
	d := float64(base) * math.Pow(2, float64(attempt-1))
	if d > float64(maxd) {
		d = float64(maxd)
	}
	s.rngMu.Lock()
	jit := s.rng.Float64()
	s.rngMu.Unlock()
	return time.Duration(d/2 + jit*d/2)
}

// artifact is the archived form of a finished job: the schema-v4 report
// exactly as WriteJSON rendered it, plus the rendered tables. Report is
// []byte (base64 on disk), NOT json.RawMessage: Marshal compacts embedded
// raw JSON, and a resubmission must serve the original bytes unchanged.
type artifact struct {
	Report []byte   `json:"report,omitempty"`
	Tables []string `json:"tables,omitempty"`
	Points int      `json:"points"`
	Cached int      `json:"cached_points"`
}

func buildArtifact(out *sim.Outcome) (*artifact, error) {
	art := &artifact{Cached: out.CachedPoints}
	if out.Report != nil {
		var buf bytes.Buffer
		if err := out.Report.WriteJSON(&buf); err != nil {
			return nil, fmt.Errorf("encoding report: %w", err)
		}
		art.Report = buf.Bytes()
	}
	for _, fr := range out.Figures {
		art.Tables = append(art.Tables, fr.Table())
	}
	for _, rr := range out.Resilience {
		art.Tables = append(art.Tables, rr.Table())
	}
	for _, rc := range out.Compares {
		art.Tables = append(art.Tables, rc.Table())
	}
	return art, nil
}
