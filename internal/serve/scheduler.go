package serve

// fairQueue is the scheduler's run queue: one FIFO per client key, served
// round-robin across clients. A client that floods the queue only ever
// delays its own jobs — every other client still gets one dispatch per
// round — which is the service-level analogue of the turn model's
// starvation argument: bound what any one requester may hold, and
// everyone else keeps making progress.
//
// Not safe for concurrent use; the Server guards it with its mutex.
type fairQueue struct {
	clients map[string]*clientQ
	ring    []*clientQ // clients with pending jobs, round-robin order
	next    int        // ring index served next
	total   int
}

// clientQ is one client's pending-job FIFO.
type clientQ struct {
	key    string
	jobs   []*Job
	inRing bool
}

func newFairQueue() fairQueue {
	return fairQueue{clients: make(map[string]*clientQ)}
}

// push appends the job to its client's FIFO, entering the client into the
// round-robin ring if it had nothing pending.
func (q *fairQueue) push(j *Job) {
	c := q.clients[j.client]
	if c == nil {
		c = &clientQ{key: j.client}
		q.clients[j.client] = c
	}
	c.jobs = append(c.jobs, j)
	if !c.inRing {
		c.inRing = true
		q.ring = append(q.ring, c)
	}
	q.total++
}

// pop removes and returns the head job of the next client in round-robin
// order, or nil when nothing is pending. A drained client leaves the ring
// (and re-enters at the tail on its next push), so rotation only ever
// visits clients with work.
func (q *fairQueue) pop() *Job {
	if q.total == 0 {
		return nil
	}
	if q.next >= len(q.ring) {
		q.next = 0
	}
	c := q.ring[q.next]
	j := c.jobs[0]
	copy(c.jobs, c.jobs[1:])
	c.jobs[len(c.jobs)-1] = nil
	c.jobs = c.jobs[:len(c.jobs)-1]
	q.total--
	if len(c.jobs) == 0 {
		c.inRing = false
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// q.next now indexes the following client; leave it.
	} else {
		q.next++
	}
	return j
}

// len reports the total number of pending jobs across all clients.
func (q *fairQueue) len() int { return q.total }

// clientLen reports one client's pending-job count.
func (q *fairQueue) clientLen(key string) int {
	if c := q.clients[key]; c != nil {
		return len(c.jobs)
	}
	return 0
}
