package serve

// Durability edge coverage beyond the restart matrix: the periodic orphan
// sweep, spec failures reaching the journal, and the fencing gate standing
// a replica down after its lease is lost mid-run.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"turnmodel/internal/jobstore"
)

// startDurableServer runs a server over HTTP with cleanup registered.
func startDurableServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

// TestSweepAdoptsOrphan covers the periodic recovery path: a job journaled
// by a dead owner AFTER this replica already started (so the startup scan
// never saw it) must be picked up by the lease sweep, not wait for a
// restart.
func TestSweepAdoptsOrphan(t *testing.T) {
	e := newDurableEnv(t)
	cfg := e.config(t, "b")
	cfg.LeaseTTL = 200 * time.Millisecond
	cfg.SweepInterval = 25 * time.Millisecond
	s, ts := startDurableServer(t, cfg)

	// The orphan appears only now: submitted by a peer that died instantly,
	// its lease already expired.
	st := e.openStore(t)
	rec := jobstore.Record{
		Kind: jobstore.RecordSubmitted, Time: time.Now(),
		ID: "job-dead-9", Client: "cli", Spec: mustMarshal(t, e.spec),
	}
	if err := st.Create(e.key, rec); err != nil {
		t.Fatal(err)
	}
	if _, _, err := st.Claim(e.key, "dead", time.Millisecond); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok := s.Job("job-dead-9"); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never adopted the orphan")
		}
		time.Sleep(10 * time.Millisecond)
	}
	j := waitDone(t, s, "job-dead-9")
	if got := j.Status(); got.State != StateDone || !got.Recovered {
		t.Errorf("adopted job status = %+v, want done and recovered", got)
	}
	stats := s.Stats()
	if stats.Requeued != 1 || stats.LeasesStolen != 1 {
		t.Errorf("requeued/stolen = %d/%d, want 1/1", stats.Requeued, stats.LeasesStolen)
	}
	assertJournalInvariants(t, e.openStore(t), e.key, "done")

	// The adopted job serves over HTTP like any local one — status and
	// report straight from the replica that rescued it.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-dead-9")
	if err != nil {
		t.Fatal(err)
	}
	var got Status
	err = json.NewDecoder(resp.Body).Decode(&got)
	resp.Body.Close()
	if err != nil || got.State != StateDone {
		t.Errorf("status over HTTP: err=%v state=%q, want done", err, got.State)
	}
	if _, code := getReport(t, ts, "job-dead-9"); code != http.StatusOK {
		t.Errorf("report = %d", code)
	}
}

// TestSpecFailureJournaled submits a spec that passes admission but cannot
// build a runner (an unknown algorithm is only caught at plan time): the
// failure must be terminal with ClassSpec — never retried — and the
// journal must carry the same verdict so no replica ever requeues it.
func TestSpecFailureJournaled(t *testing.T) {
	e := newDurableEnv(t)
	s, _ := startDurableServer(t, e.config(t, "b"))

	spec := e.spec
	spec.Algorithms = []string{"no-such-algorithm"}
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := s.Submit(spec, "cli")
	if err != nil {
		t.Fatal(err)
	}
	jj := waitDone(t, s, j.ID())
	st := jj.Status()
	if st.State != StateFailed || st.ErrorClass != ClassSpec {
		t.Fatalf("status = %+v, want failed with spec class", st)
	}
	if st.Attempts != 1 {
		t.Errorf("attempts = %d, want 1 (spec failures never retry)", st.Attempts)
	}
	assertJournalInvariants(t, e.openStore(t), key, "failed")
	recs := journalRecords(t, e.openStore(t), key)
	last := recs[len(recs)-1]
	if last.Kind != jobstore.RecordTerminal || last.Class != string(ClassSpec) {
		t.Errorf("terminal record = %+v, want spec-class failure", last)
	}
}

// TestSanitizeReplicaID pins the identity rules: empty defaults to
// hostname-pid, and anything unsafe for job IDs, URLs or lease filenames
// is mapped to '-'.
func TestSanitizeReplicaID(t *testing.T) {
	if got := sanitizeReplicaID(""); got == "" {
		t.Error("empty replica id not defaulted")
	}
	if got := sanitizeReplicaID("node 3/rack:7"); got != "node-3-rack-7" {
		t.Errorf("sanitized id = %q, want node-3-rack-7", got)
	}
	if got := sanitizeReplicaID("ok-id_9.z"); got != "ok-id_9.z" {
		t.Errorf("safe id mangled to %q", got)
	}
}

// TestFenceLostSuppressesTerminal arms the fencing gate: a replica whose
// lease vanishes mid-run (it stalled past the TTL and the fleet moved on)
// must NOT write a terminal record — the new owner's verdict is the only
// one — and must count the rejection. The local client still gets its
// result; durability only decides who writes history.
func TestFenceLostSuppressesTerminal(t *testing.T) {
	e := newDurableEnv(t)
	gate := newGateProbe()
	cfg := e.config(t, "b")
	cfg.LeaseTTL = 30 * time.Millisecond
	cfg.SweepInterval = time.Hour // isolate renewal; no sweep interference
	cfg.Probe = gate
	s, _ := startDurableServer(t, cfg)

	j, _, err := s.Submit(e.spec, "cli")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-gate.started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}

	// Simulate losing the lease while stalled: the lease file disappears
	// (a peer's takeover ends with Release) and renewal comes back ErrLost.
	if err := os.Remove(filepath.Join(e.jobsDir, e.key+".lease")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for !j.fenceWasLost() {
		if time.Now().After(deadline) {
			t.Fatal("renewal never noticed the lost lease")
		}
		time.Sleep(5 * time.Millisecond)
	}

	close(gate.release)
	jj := waitDone(t, s, j.ID())
	if st := jj.Status(); st.State != StateDone {
		t.Errorf("local job state = %q, want done (the client still gets its result)", st.State)
	}
	if got := s.Stats().FencingRejected; got != 1 {
		t.Errorf("fencing_rejected = %d, want 1", got)
	}
	for _, rec := range journalRecords(t, e.openStore(t), e.key) {
		if rec.Kind == jobstore.RecordTerminal {
			t.Fatalf("fenced-out replica wrote a terminal record: %+v", rec)
		}
	}
}
