package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"turnmodel/internal/metrics"
	"turnmodel/internal/sim"
	"turnmodel/internal/simcache"
)

// quickSpec is a 4-point figure job (2 algorithms x 2 rates on figure13's
// 16x16 mesh) small enough to simulate in a test.
func quickSpec() JobSpec {
	return JobSpec{
		Figures:       []string{"figure13"},
		Rates:         []float64{0.01, 0.05},
		Algorithms:    []string{"xy", "west-first"},
		WarmupCycles:  300,
		MeasureCycles: 800,
		Seed:          2,
		Jobs:          2,
	}
}

// tickCounter counts engine cycles; zero ticks across a job proves no
// simulation ran.
type tickCounter struct {
	metrics.NopProbe
	ticks atomic.Int64
}

func (p *tickCounter) Tick(int64) { p.ticks.Add(1) }

// gateProbe blocks the first simulated cycle until released, pinning a job
// in the running state so tests can observe queue behavior.
type gateProbe struct {
	metrics.NopProbe
	start   sync.Once
	started chan struct{}
	release chan struct{}
}

func newGateProbe() *gateProbe {
	return &gateProbe{started: make(chan struct{}), release: make(chan struct{})}
}

func (p *gateProbe) Tick(int64) {
	p.start.Do(func() { close(p.started) })
	<-p.release
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return s, ts
}

func submit(t *testing.T, ts *httptest.Server, spec JobSpec) (Status, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return Status{}, resp.StatusCode
	}
	var st Status
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("decoding status %q: %v", raw, err)
	}
	return st, resp.StatusCode
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE consumes the events stream until the "done" event (or EOF).
func readSSE(t *testing.T, ts *httptest.Server, id string) []sseEvent {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "done" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	return events
}

func getReport(t *testing.T, ts *httptest.Server, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	return raw, resp.StatusCode
}

func waitDone(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s did not finish", id)
	}
	return j
}

// TestSubmitStreamReport drives the whole happy path over HTTP: submit,
// stream every point over SSE, then fetch a report that round-trips
// through sim.ReadReport.
func TestSubmitStreamReport(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d, want 201", code)
	}
	events := readSSE(t, ts, st.ID)
	waitDone(t, s, st.ID)

	var points []sim.PointEvent
	for _, ev := range events {
		if ev.name != "point" {
			continue
		}
		var p sim.PointEvent
		if err := json.Unmarshal([]byte(ev.data), &p); err != nil {
			t.Fatalf("decoding point %q: %v", ev.data, err)
		}
		points = append(points, p)
	}
	if len(points) != 4 {
		t.Fatalf("streamed %d points, want 4", len(points))
	}
	for i, p := range points {
		if p.Done != i+1 || p.Total != 4 {
			t.Errorf("point %d: done/total = %d/%d, want %d/4", i, p.Done, p.Total, i+1)
		}
		if p.Result.Packets == 0 {
			t.Errorf("point %d has empty result", i)
		}
	}
	last := events[len(events)-1]
	if last.name != "done" {
		t.Fatalf("last event = %q, want done", last.name)
	}
	var final Status
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Done != 4 {
		t.Fatalf("final status = %+v", final)
	}

	raw, code := getReport(t, ts, st.ID)
	if code != http.StatusOK {
		t.Fatalf("report status = %d: %s", code, raw)
	}
	rep, err := sim.ReadReport(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("served report does not round-trip: %v", err)
	}
	if len(rep.Figures) != 1 || rep.Figures[0].ID != "figure13" {
		t.Fatalf("report figures = %+v", rep.Figures)
	}
	if got := len(rep.Figures[0].Series); got != 2 {
		t.Fatalf("report series = %d, want 2", got)
	}

	// A late subscriber replays the complete stream.
	replay := readSSE(t, ts, st.ID)
	if len(replay) != len(events) {
		t.Fatalf("replayed %d events, want %d", len(replay), len(events))
	}
}

// TestResubmitServedFromArchive is the issue's acceptance check: an
// identical spec resubmitted — here to a second server sharing the cache,
// as after a restart — is answered from the archive with zero engine
// cycles and a byte-identical schema-v4 report. Jobs/Shards differences
// must not break the match.
func TestResubmitServedFromArchive(t *testing.T) {
	store := simcache.NewStore(simcache.Options{Dir: t.TempDir()})

	probe1 := &tickCounter{}
	s1, ts1 := newTestServer(t, Config{Workers: 2, Cache: store, Probe: probe1})
	st, code := submit(t, ts1, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	waitDone(t, s1, st.ID)
	first, code := getReport(t, ts1, st.ID)
	if code != http.StatusOK {
		t.Fatalf("report status = %d", code)
	}
	if probe1.ticks.Load() == 0 {
		t.Fatal("first run simulated nothing")
	}

	// Same server, same spec: deduplicated onto the existing job.
	st2, code := submit(t, ts1, quickSpec())
	if code != http.StatusOK || st2.ID != st.ID {
		t.Fatalf("resubmit = %d %q, want 200 onto %q", code, st2.ID, st.ID)
	}

	// Fresh server, shared cache: served from the archive, no simulation.
	probe2 := &tickCounter{}
	s2, ts2 := newTestServer(t, Config{Workers: 2, Cache: store, Probe: probe2})
	spec := quickSpec()
	spec.Jobs = 7 // execution-only; must still hit
	spec.Shards = 2
	st3, code := submit(t, ts2, spec)
	if code != http.StatusCreated {
		t.Fatalf("archived submit status = %d", code)
	}
	if !st3.FromCache || st3.State != StateDone || st3.Done != 4 {
		t.Fatalf("archived status = %+v, want instantly done from cache", st3)
	}
	waitDone(t, s2, st3.ID)
	second, code := getReport(t, ts2, st3.ID)
	if code != http.StatusOK {
		t.Fatalf("archived report status = %d", code)
	}
	if ticks := probe2.ticks.Load(); ticks != 0 {
		t.Fatalf("archived job ran %d engine cycles, want 0", ticks)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("archived report differs from original:\n%s\n---\n%s", first, second)
	}
	// The archived job's event stream is just the terminal event.
	events := readSSE(t, ts2, st3.ID)
	if len(events) != 1 || events[0].name != "done" {
		t.Fatalf("archived events = %+v, want a lone done", events)
	}
}

// TestResilienceTables runs a resilience job (no report — tables only) and
// checks the rendered tables arrive.
func TestResilienceTables(t *testing.T) {
	if testing.Short() {
		t.Skip("resilience sweep is slow")
	}
	s, ts := newTestServer(t, Config{Workers: 2})
	spec := JobSpec{
		Resilience:    []string{"resilience-mesh"},
		WarmupCycles:  200,
		MeasureCycles: 400,
		Seed:          3,
	}
	st, code := submit(t, ts, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit status = %d", code)
	}
	waitDone(t, s, st.ID)
	if _, code := getReport(t, ts, st.ID); code != http.StatusNotFound {
		t.Fatalf("report status = %d, want 404 for a figure-less job", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/tables")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tables status = %d: %s", resp.StatusCode, raw)
	}
	for _, want := range []string{"west-first", "delivered"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("tables missing %q:\n%s", want, raw)
		}
	}
}

// TestBackpressure pins a job in the running state and checks the bounded
// queue refuses overflow with 503 instead of accepting unbounded work.
func TestBackpressure(t *testing.T) {
	gate := newGateProbe()
	_, ts := newTestServer(t, Config{Workers: 1, JobWorkers: 1, QueueDepth: 1, Probe: gate})
	defer close(gate.release)

	running := quickSpec()
	if _, code := submit(t, ts, running); code != http.StatusCreated {
		t.Fatalf("first submit = %d", code)
	}
	<-gate.started

	queued := quickSpec()
	queued.Seed = 100 // distinct content address
	if _, code := submit(t, ts, queued); code != http.StatusCreated {
		t.Fatalf("second submit = %d", code)
	}

	over := quickSpec()
	over.Seed = 200
	if _, code := submit(t, ts, over); code != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", code)
	}
}

// TestCancel cancels a running job over HTTP and checks it lands in the
// canceled state with the report gone.
func TestCancel(t *testing.T) {
	gate := newGateProbe()
	s, ts := newTestServer(t, Config{Workers: 1, Probe: gate})
	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	<-gate.started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status = %d", resp.StatusCode)
	}
	close(gate.release)
	j := waitDone(t, s, st.ID)
	if j.State() != StateCanceled {
		t.Fatalf("state after cancel = %q", j.State())
	}
	if _, code := getReport(t, ts, st.ID); code != http.StatusGone {
		t.Fatalf("report after cancel = %d, want 410", code)
	}
}

// TestShutdownDrains submits work and checks Shutdown lets it finish, then
// refuses new submissions.
func TestShutdownDrains(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	spec := quickSpec()
	j, created, err := s.Submit(spec, "test")
	if err != nil || !created {
		t.Fatalf("submit: %v created=%v", err, created)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if j.State() != StateDone {
		t.Fatalf("state after drain = %q, want done", j.State())
	}
	if _, _, err := s.Submit(spec, "test"); err != ErrShuttingDown {
		t.Fatalf("submit after shutdown = %v, want ErrShuttingDown", err)
	}
}

// TestBadSpecs checks each malformed submission is rejected with 400
// before any simulation.
func TestBadSpecs(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, body string
	}{
		{"empty spec", `{}`},
		{"unknown figure", `{"figures":["figure99"]}`},
		{"unknown resilience", `{"resilience":["nope"]}`},
		{"unknown field", `{"figuers":["figure13"]}`},
		{"trailing garbage", `{"figures":["figure13"]}{}`},
		{"bad seed mode", `{"figures":["figure13"],"seed_mode":"random"}`},
		{"compare without resilience", `{"figures":["figure13"],"compare":true}`},
		{"negative rate", `{"figures":["figure13"],"rates":[-0.1]}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestKeyIgnoresExecutionFields pins the job content address to result
// identity: execution knobs don't move it, result-changing fields do.
func TestKeyIgnoresExecutionFields(t *testing.T) {
	base := quickSpec()
	baseKey, err := base.Key()
	if err != nil {
		t.Fatal(err)
	}
	same := base
	same.Jobs = 16
	same.Shards = 4
	same.TimeoutS = 30
	if k, _ := same.Key(); k != baseKey {
		t.Fatalf("Jobs/Shards/TimeoutS changed the key: %s vs %s", k, baseKey)
	}
	for name, mutate := range map[string]func(*JobSpec){
		"seed":    func(s *JobSpec) { s.Seed++ },
		"rates":   func(s *JobSpec) { s.Rates = []float64{0.02} },
		"algs":    func(s *JobSpec) { s.Algorithms = []string{"xy"} },
		"warmup":  func(s *JobSpec) { s.WarmupCycles++ },
		"mode":    func(s *JobSpec) { s.SeedMode = "hash" },
		"metrics": func(s *JobSpec) { s.Metrics = true },
		"faults":  func(s *JobSpec) { s.FaultRate = 1e-6 },
	} {
		changed := base
		mutate(&changed)
		if k, _ := changed.Key(); k == baseKey {
			t.Errorf("%s change did not move the key", name)
		}
	}
}

// TestStats smoke-checks the stats and health endpoints.
func TestStats(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/stats", "/v1/healthz", "/healthz", "/readyz", "/v1/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s status = %d", path, resp.StatusCode)
		}
		if !json.Valid(raw) {
			t.Errorf("%s returned invalid JSON: %s", path, raw)
		}
	}
}

// BenchmarkServeCachedPoint measures the full HTTP round trip of a job
// answered from the report archive — submit plus report fetch. The
// benchgate absolute ceiling keeps this pinned at cache speed: if serving
// a warm spec ever falls back to simulation (tens of milliseconds per
// point), the gate trips.
func BenchmarkServeCachedPoint(b *testing.B) {
	store := simcache.NewStore(simcache.Options{})
	s := NewServer(Config{Workers: 2, Cache: store})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := quickSpec()
	body, _ := json.Marshal(spec)
	warm, _, err := s.Submit(spec, "bench")
	if err != nil {
		b.Fatal(err)
	}
	<-warm.Done()
	if warm.State() != StateDone {
		b.Fatalf("warmup job state = %q", warm.State())
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
			b.Fatalf("submit status = %d", resp.StatusCode)
		}
		rep, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/report", ts.URL, st.ID))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, rep.Body); err != nil {
			b.Fatal(err)
		}
		rep.Body.Close()
		if rep.StatusCode != http.StatusOK {
			b.Fatalf("report status = %d", rep.StatusCode)
		}
	}
}
