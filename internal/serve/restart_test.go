package serve

// Restart and replication coverage: servers sharing one cache directory —
// sequentially (a restart) or concurrently (replicas) — must agree on job
// identity, execute every accepted job exactly once, and serve archived
// reports byte-identically, whatever the previous process was doing when
// it stopped.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"turnmodel/internal/jobstore"
	"turnmodel/internal/sim"
	"turnmodel/internal/simcache"
)

// durableEnv is one shared cache directory: the result cache and the job
// store a fleet of servers would mount together.
type durableEnv struct {
	cacheDir string
	jobsDir  string
	spec     JobSpec
	key      string

	// Set by scenario prepare steps for the check step.
	report []byte
	jobID  string
}

func newDurableEnv(t *testing.T) *durableEnv {
	t.Helper()
	dir := t.TempDir()
	spec := quickSpec()
	key, err := spec.Key()
	if err != nil {
		t.Fatal(err)
	}
	return &durableEnv{
		cacheDir: filepath.Join(dir, "cache"),
		jobsDir:  filepath.Join(dir, "jobs"),
		spec:     spec,
		key:      key,
	}
}

func (e *durableEnv) openStore(t *testing.T) *jobstore.Store {
	t.Helper()
	st, err := jobstore.Open(e.jobsDir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// config builds a durable server config with fresh cache and store handles,
// as a new process mounting the shared directory would.
func (e *durableEnv) config(t *testing.T, replica string) Config {
	t.Helper()
	return Config{
		Workers:    2,
		JobWorkers: 1,
		Cache:      simcache.NewStore(simcache.Options{Dir: e.cacheDir}),
		Store:      e.openStore(t),
		ReplicaID:  replica,
		LeaseTTL:   2 * time.Second,
	}
}

// runServer runs fn against a live server and shuts it down before
// returning — the "previous process" of a restart scenario.
func (e *durableEnv) runServer(t *testing.T, cfg Config, fn func(s *Server, ts *httptest.Server)) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	fn(s, ts)
}

// mustMarshal is a test-local json.Marshal that cannot fail silently.
func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	raw, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// journalRecords fetches a journal's raw record list.
func journalRecords(t *testing.T, st *jobstore.Store, key string) []jobstore.Record {
	t.Helper()
	recs, ok, err := st.Records(key)
	if err != nil || !ok {
		t.Fatalf("reading journal for %s: ok=%v err=%v", key, ok, err)
	}
	return recs
}

// assertJournalInvariants checks the exactly-once shape every finished
// journal must have: exactly one terminal record, and strictly increasing
// fencing tokens across started records (each new executor out-fences the
// last).
func assertJournalInvariants(t *testing.T, st *jobstore.Store, key, wantState string) {
	t.Helper()
	recs := journalRecords(t, st, key)
	terminals := 0
	var lastFence uint64
	for _, rec := range recs {
		switch rec.Kind {
		case jobstore.RecordTerminal:
			terminals++
			if rec.State != wantState {
				t.Errorf("terminal state = %q, want %q", rec.State, wantState)
			}
		case jobstore.RecordStarted:
			if rec.Fence <= lastFence {
				t.Errorf("started fence %d not greater than previous %d", rec.Fence, lastFence)
			}
			lastFence = rec.Fence
		}
	}
	if terminals != 1 {
		t.Errorf("journal has %d terminal records, want exactly 1", terminals)
	}
}

// TestRestartRecovery drives the recovery matrix from docs/service.md: what
// a restarted (or surviving) replica does with a journal left behind at
// each phase of a job's life.
func TestRestartRecovery(t *testing.T) {
	cases := []struct {
		name    string
		prepare func(t *testing.T, e *durableEnv)
		check   func(t *testing.T, e *durableEnv, s *Server, ts *httptest.Server)
	}{
		{
			// A finished job's report must come back byte-identical from the
			// next process, without re-running; the pre-restart job URL must
			// keep resolving.
			name: "archived-report-survives-restart",
			prepare: func(t *testing.T, e *durableEnv) {
				e.runServer(t, e.config(t, "a"), func(s *Server, ts *httptest.Server) {
					st, code := submit(t, ts, e.spec)
					if code != http.StatusCreated {
						t.Fatalf("submit = %d", code)
					}
					e.jobID = st.ID
					waitDone(t, s, st.ID)
					raw, code := getReport(t, ts, st.ID)
					if code != http.StatusOK {
						t.Fatalf("report = %d", code)
					}
					e.report = raw
				})
			},
			check: func(t *testing.T, e *durableEnv, s *Server, ts *httptest.Server) {
				st, code := submit(t, ts, e.spec)
				if code != http.StatusCreated {
					t.Fatalf("resubmit = %d", code)
				}
				if !st.FromCache {
					t.Error("resubmission after restart not served from archive")
				}
				raw, code := getReport(t, ts, st.ID)
				if code != http.StatusOK {
					t.Fatalf("report after restart = %d", code)
				}
				if string(raw) != string(e.report) {
					t.Error("archived report bytes changed across restart")
				}
				// The old process's job URL still answers, via the journal.
				resp, err := http.Get(ts.URL + "/v1/jobs/" + e.jobID)
				if err != nil {
					t.Fatal(err)
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("pre-restart job URL = %d", resp.StatusCode)
				}
				var old Status
				if err := json.NewDecoder(resp.Body).Decode(&old); err != nil {
					t.Fatal(err)
				}
				if old.State != StateDone || !old.HasReport {
					t.Errorf("pre-restart job status = %+v, want done with report", old)
				}
			},
		},
		{
			// Crash before the first attempt: only a submitted record exists.
			// The restarted replica must find it, run it, and finish it.
			name: "recover-unstarted-job",
			prepare: func(t *testing.T, e *durableEnv) {
				st := e.openStore(t)
				rec := jobstore.Record{
					Kind: jobstore.RecordSubmitted, Time: time.Now(),
					ID: "job-dead-1", Client: "cli", Spec: mustMarshal(t, e.spec),
				}
				if err := st.Create(e.key, rec); err != nil {
					t.Fatal(err)
				}
			},
			check: func(t *testing.T, e *durableEnv, s *Server, ts *httptest.Server) {
				j := waitDone(t, s, "job-dead-1")
				if st := j.Status(); st.State != StateDone || !st.Recovered {
					t.Errorf("recovered job status = %+v, want done and recovered", st)
				}
				if got := s.Stats().Recovered; got != 1 {
					t.Errorf("recovered counter = %d, want 1", got)
				}
				if _, code := getReport(t, ts, "job-dead-1"); code != http.StatusOK {
					t.Errorf("recovered job report = %d", code)
				}
				assertJournalInvariants(t, e.openStore(t), e.key, "done")
			},
		},
		{
			// Crash mid-run: the journal has a started record and points from
			// the dead owner, whose lease has expired. The survivor steals
			// the lease, re-runs with a higher fence, and preserves the
			// attempt history.
			name: "requeue-midrun-job-from-dead-peer",
			prepare: func(t *testing.T, e *durableEnv) {
				st := e.openStore(t)
				sub := jobstore.Record{
					Kind: jobstore.RecordSubmitted, Time: time.Now(),
					ID: "job-dead-2", Client: "cli", Spec: mustMarshal(t, e.spec),
				}
				if err := st.Create(e.key, sub); err != nil {
					t.Fatal(err)
				}
				lease, _, err := st.Claim(e.key, "dead", 10*time.Millisecond)
				if err != nil {
					t.Fatal(err)
				}
				started := jobstore.Record{
					Kind: jobstore.RecordStarted, Time: time.Now(),
					Owner: "dead", Fence: lease.Gen, Attempt: 1,
				}
				if err := st.Append(e.key, started, true); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 2; i++ {
					pt := jobstore.Record{
						Kind: jobstore.RecordPoint, Time: time.Now(),
						Point: mustMarshal(t, sim.PointEvent{Done: i + 1, Total: 4}),
					}
					if err := st.Append(e.key, pt, false); err != nil {
						t.Fatal(err)
					}
				}
				// Let the dead owner's lease expire so it is stealable.
				time.Sleep(20 * time.Millisecond)
			},
			check: func(t *testing.T, e *durableEnv, s *Server, ts *httptest.Server) {
				j := waitDone(t, s, "job-dead-2")
				st := j.Status()
				if st.State != StateDone || !st.Recovered {
					t.Errorf("requeued job status = %+v, want done and recovered", st)
				}
				if st.Attempts < 2 {
					t.Errorf("attempts = %d, want >= 2 (history preserved plus the re-run)", st.Attempts)
				}
				stats := s.Stats()
				if stats.Requeued != 1 || stats.LeasesStolen != 1 {
					t.Errorf("requeued/stolen = %d/%d, want 1/1", stats.Requeued, stats.LeasesStolen)
				}
				assertJournalInvariants(t, e.openStore(t), e.key, "done")
			},
		},
		{
			// Crash after the archive write but before the terminal record:
			// the result exists, so recovery must close the journal from the
			// archive without burning a re-simulation.
			name: "recover-after-archive-without-rerun",
			prepare: func(t *testing.T, e *durableEnv) {
				// Populate the archive with a storeless server run.
				cfg := Config{
					Workers: 2, JobWorkers: 1,
					Cache: simcache.NewStore(simcache.Options{Dir: e.cacheDir}),
				}
				e.runServer(t, cfg, func(s *Server, ts *httptest.Server) {
					st, _ := submit(t, ts, e.spec)
					waitDone(t, s, st.ID)
					e.report, _ = getReport(t, ts, st.ID)
				})
				// Journal as a dead owner that crashed mid-terminal-write.
				st := e.openStore(t)
				sub := jobstore.Record{
					Kind: jobstore.RecordSubmitted, Time: time.Now(),
					ID: "job-dead-3", Client: "cli", Spec: mustMarshal(t, e.spec),
				}
				if err := st.Create(e.key, sub); err != nil {
					t.Fatal(err)
				}
				lease, _, err := st.Claim(e.key, "dead", 10*time.Millisecond)
				if err != nil {
					t.Fatal(err)
				}
				started := jobstore.Record{
					Kind: jobstore.RecordStarted, Time: time.Now(),
					Owner: "dead", Fence: lease.Gen, Attempt: 1,
				}
				if err := st.Append(e.key, started, true); err != nil {
					t.Fatal(err)
				}
				time.Sleep(20 * time.Millisecond)
			},
			check: func(t *testing.T, e *durableEnv, s *Server, ts *httptest.Server) {
				j := waitDone(t, s, "job-dead-3")
				st := j.Status()
				if st.State != StateDone || !st.FromCache {
					t.Errorf("status = %+v, want done straight from the archive", st)
				}
				raw, code := getReport(t, ts, "job-dead-3")
				if code != http.StatusOK || string(raw) != string(e.report) {
					t.Errorf("report code=%d identical=%v", code, string(raw) == string(e.report))
				}
				if probe, ok := s.cfg.Probe.(*tickCounter); ok && probe.ticks.Load() != 0 {
					t.Errorf("recovery re-simulated: %d engine ticks, want 0", probe.ticks.Load())
				}
				info, ok, err := s.cfg.Store.Job(e.key, false)
				if err != nil || !ok || info.State != "done" {
					t.Errorf("journal after recovery: ok=%v err=%v state=%q, want done", ok, err, info.State)
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newDurableEnv(t)
			tc.prepare(t, e)
			cfg := e.config(t, "b")
			cfg.Probe = &tickCounter{}
			s := NewServer(cfg)
			ts := httptest.NewServer(s.Handler())
			t.Cleanup(func() {
				ts.Close()
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				defer cancel()
				if err := s.Shutdown(ctx); err != nil {
					t.Errorf("shutdown: %v", err)
				}
			})
			tc.check(t, e, s, ts)
		})
	}
}

// TestTwoReplicasSharedStore runs two live servers against one directory:
// a duplicate submission lands on the replica already running the job, the
// peer's job is visible fleet-wide, and after completion either replica
// serves the report and the replayed stream.
func TestTwoReplicasSharedStore(t *testing.T) {
	e := newDurableEnv(t)
	gate := newGateProbe()
	cfgA := e.config(t, "a")
	cfgA.Probe = gate
	a := NewServer(cfgA)
	tsA := httptest.NewServer(a.Handler())
	t.Cleanup(func() {
		tsA.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := a.Shutdown(ctx); err != nil {
			t.Errorf("shutdown a: %v", err)
		}
	})

	stA, code := submit(t, tsA, e.spec)
	if code != http.StatusCreated {
		t.Fatalf("submit to a = %d", code)
	}
	select {
	case <-gate.started:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started on a")
	}

	// Replica b joins while a is mid-job; its startup recovery must leave
	// a's live-leased job alone.
	b := NewServer(e.config(t, "b"))
	tsB := httptest.NewServer(b.Handler())
	t.Cleanup(func() {
		tsB.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := b.Shutdown(ctx); err != nil {
			t.Errorf("shutdown b: %v", err)
		}
	})
	if _, local := b.Job(stA.ID); local {
		t.Fatal("replica b adopted a job whose owner is alive")
	}

	// Duplicate submission on b: no second execution, just a's job back.
	stB, code := submit(t, tsB, e.spec)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit to b = %d, want 200 (peer owns it)", code)
	}
	if stB.ID != stA.ID {
		t.Errorf("peer submission id = %q, want a's %q", stB.ID, stA.ID)
	}
	if stB.Replica != "a" {
		t.Errorf("peer submission replica = %q, want \"a\"", stB.Replica)
	}
	// The API surface behind that 200: Submit returns *RemoteOwnedError
	// naming the owner, and the job renders as its status JSON.
	if _, _, err := b.Submit(e.spec, "cli"); err == nil {
		t.Error("direct submit on non-owner did not error")
	} else {
		var remote *RemoteOwnedError
		if !errors.As(err, &remote) || remote.Owner != "a" || remote.Error() == "" {
			t.Errorf("submit error = %v, want RemoteOwnedError owned by a", err)
		}
	}
	if jA, ok := a.Job(stA.ID); !ok || jA.Key() != e.key {
		t.Errorf("job key = %q, want %q", jA.Key(), e.key)
	} else if raw, err := json.Marshal(jA); err != nil || !bytes.Contains(raw, []byte(stA.ID)) {
		t.Errorf("job JSON = %s (err %v), want status carrying its id", raw, err)
	}

	// Fleet-wide listing on b includes a's job exactly once.
	resp, err := http.Get(tsB.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var listed []Status
	if err := json.NewDecoder(resp.Body).Decode(&listed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	seen := 0
	for _, st := range listed {
		if st.Key == e.key {
			seen++
		}
	}
	if seen != 1 {
		t.Errorf("b lists a's job %d times, want 1", seen)
	}

	// Only the owning replica may cancel or stream a live job.
	req, _ := http.NewRequest(http.MethodDelete, tsB.URL+"/v1/jobs/"+stA.ID, nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("cancel on non-owner = %d, want 409", resp.StatusCode)
		}
	}
	if resp, err := http.Get(tsB.URL + "/v1/jobs/" + stA.ID + "/events"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Errorf("live stream on non-owner = %d, want 409", resp.StatusCode)
		}
	}
	// No artifact exists yet, so the non-owner can only point at the owner.
	for _, path := range []string{"/report", "/tables"} {
		if resp, err := http.Get(tsB.URL + "/v1/jobs/" + stA.ID + path); err != nil {
			t.Fatal(err)
		} else {
			resp.Body.Close()
			if resp.StatusCode != http.StatusConflict {
				t.Errorf("%s of running job on non-owner = %d, want 409", path, resp.StatusCode)
			}
		}
	}

	close(gate.release)
	waitDone(t, a, stA.ID)

	rawA, code := getReport(t, tsA, stA.ID)
	if code != http.StatusOK {
		t.Fatalf("report from a = %d", code)
	}
	rawB, code := getReport(t, tsB, stA.ID)
	if code != http.StatusOK {
		t.Fatalf("report from b = %d", code)
	}
	if string(rawA) != string(rawB) {
		t.Error("replicas disagree on the report bytes")
	}
	// Once archived, the non-owner serves the tables too.
	if resp, err := http.Get(tsB.URL + "/v1/jobs/" + stA.ID + "/tables"); err != nil {
		t.Fatal(err)
	} else {
		tables, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || len(tables) == 0 {
			t.Errorf("tables from non-owner = %d (%d bytes), want 200 with content", resp.StatusCode, len(tables))
		}
	}

	// The journal replay on b reconstructs the finished stream: every
	// point, then a done event — how a client that lost its SSE connection
	// to a crashed replica catches up from a survivor.
	resp, err = http.Get(tsB.URL + "/v1/jobs/" + stA.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("terminal stream on b = %d", resp.StatusCode)
	}
	points := bytes.Count(body, []byte("event: point"))
	if points != 4 {
		t.Errorf("replayed stream has %d points, want 4", points)
	}
	if !bytes.Contains(body, []byte("event: done")) {
		t.Error("replayed stream missing done event")
	}

	assertJournalInvariants(t, e.openStore(t), e.key, "done")
	if stolen := a.Stats().LeasesStolen + b.Stats().LeasesStolen; stolen != 0 {
		t.Errorf("leases stolen = %d, want 0 (nobody died)", stolen)
	}
}
