// Package serve is the simulation-as-a-service layer behind cmd/turnserved:
// sweep jobs are submitted as JSON specs over HTTP, executed on the
// sim.Runner streaming entry point, broadcast point by point over
// server-sent events, and archived — whole finished reports — in the same
// content-addressed cache the runner uses for individual points. Submitting
// a spec the server has already finished returns the archived report
// byte-identically without simulating anything.
package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"turnmodel/internal/fault"
	"turnmodel/internal/sim"
	"turnmodel/internal/simcache"
)

// JobSpec is the wire form of one sweep job. The zero value of every field
// selects the same default the turnsweep CLI uses, so a spec naming only
// figure IDs reproduces the archived tables.
//
// Jobs and Shards steer execution (worker pool width, spatial sharding)
// and are excluded from the job's content address: results are
// bit-identical at every value, so two specs differing only there denote
// the same report.
type JobSpec struct {
	// Figures are figure sweep IDs ("figure13", "extension-hex", ...).
	Figures []string `json:"figures,omitempty"`
	// Resilience are resilience sweep IDs ("resilience-mesh", ...).
	Resilience []string `json:"resilience,omitempty"`
	// Compare runs the resilience sweeps once per fault-handling mode
	// (recovery / masking / recovery+masking).
	Compare bool `json:"compare,omitempty"`
	// Rates and Algorithms, when set, override every figure spec's sweep
	// axes (resilience specs keep their own).
	Rates      []float64 `json:"rates,omitempty"`
	Algorithms []string  `json:"algorithms,omitempty"`
	// WarmupCycles and MeasureCycles bound each point's run; zero selects
	// the sim defaults (20000/40000).
	WarmupCycles  int64 `json:"warmup_cycles,omitempty"`
	MeasureCycles int64 `json:"measure_cycles,omitempty"`
	// Seed is the base seed; SeedMode is "paired" (default; common random
	// numbers, matches the archived tables) or "hash" (independent
	// streams per point).
	Seed     int64  `json:"seed,omitempty"`
	SeedMode string `json:"seed_mode,omitempty"`
	// Metrics attaches collector snapshots to every point.
	Metrics bool `json:"metrics,omitempty"`
	// FaultRate/FaultRepair/Recovery configure the figure points' fault
	// workload (resilience cells derive their own fault plans).
	FaultRate   float64 `json:"fault_rate,omitempty"`
	FaultRepair int64   `json:"fault_repair,omitempty"`
	Recovery    bool    `json:"recovery,omitempty"`
	// Jobs and Shards steer execution only; see the type comment.
	Jobs   int `json:"jobs,omitempty"`
	Shards int `json:"shards,omitempty"`
	// TimeoutS is the client's per-job deadline in seconds, capped by the
	// server's configured job timeout (a client may ask for less time than
	// the server allows, never more). Execution-only: excluded from the
	// content address like Jobs and Shards.
	TimeoutS float64 `json:"timeout_s,omitempty"`
}

// ParseSpec decodes a JobSpec from JSON, rejecting unknown fields (a typo
// like "figuers" must not silently run the default job) and trailing data.
func ParseSpec(r io.Reader) (JobSpec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec JobSpec
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("decoding job spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return JobSpec{}, fmt.Errorf("trailing data after job spec")
	}
	return spec, nil
}

// Validate resolves every referenced ID and rejects empty or inconsistent
// specs before any simulation runs.
func (s JobSpec) Validate() error {
	if len(s.Figures) == 0 && len(s.Resilience) == 0 {
		return fmt.Errorf("job spec names no figures and no resilience sweeps")
	}
	for _, id := range s.Figures {
		if _, ok := sim.FigureByID(id); !ok {
			return fmt.Errorf("unknown figure %q", id)
		}
	}
	for _, id := range s.Resilience {
		if _, ok := sim.ResilienceByID(id); !ok {
			return fmt.Errorf("unknown resilience figure %q", id)
		}
	}
	switch s.SeedMode {
	case "", "paired", "hash":
	default:
		return fmt.Errorf("unknown seed_mode %q (want paired or hash)", s.SeedMode)
	}
	if s.Compare && len(s.Resilience) == 0 {
		return fmt.Errorf("compare requires resilience sweeps")
	}
	for _, r := range s.Rates {
		if r <= 0 {
			return fmt.Errorf("rate %g out of range", r)
		}
	}
	if s.WarmupCycles < 0 || s.MeasureCycles < 0 || s.FaultRate < 0 || s.FaultRepair < 0 {
		return fmt.Errorf("negative cycle count or fault rate")
	}
	if s.TimeoutS < 0 {
		return fmt.Errorf("negative timeout_s")
	}
	return nil
}

// deadline resolves the job's effective deadline against the server cap:
// the spec's timeout_s when set (clamped to the cap), else the cap itself.
// Zero means no deadline.
func (s JobSpec) deadline(cap time.Duration) time.Duration {
	want := time.Duration(s.TimeoutS * float64(time.Second))
	if want <= 0 {
		return cap
	}
	if cap > 0 && want > cap {
		return cap
	}
	return want
}

// Key is the job's content address: the canonical-JSON hash of the spec
// with the execution-only fields cleared, bound to the engine and report
// schema versions. Two specs with equal keys always denote byte-identical
// reports, which is what lets the server hand back an archived report for
// a resubmitted job without running anything.
func (s JobSpec) Key() (string, error) {
	id := s
	id.Jobs, id.Shards, id.TimeoutS = 0, 0, 0
	return simcache.Key(map[string]any{
		"kind":   "turnserved-job",
		"engine": sim.EngineVersion,
		"schema": sim.ReportSchemaVersion,
		"spec":   id,
	})
}

// Options lowers the spec onto the runner. The caller wires in the
// streaming callback, cache and probe.
func (s JobSpec) Options() (sim.Options, error) {
	if err := s.Validate(); err != nil {
		return sim.Options{}, err
	}
	opts := sim.Options{
		CompareModes:  s.Compare,
		WarmupCycles:  s.WarmupCycles,
		MeasureCycles: s.MeasureCycles,
		Seed:          s.Seed,
		Jobs:          s.Jobs,
		Shards:        s.Shards,
		Metrics:       s.Metrics,
		FaultPlan:     fault.Plan{Rate: s.FaultRate, Repair: s.FaultRepair},
		Recovery:      fault.Recovery{Enabled: s.Recovery},
	}
	if s.SeedMode == "hash" {
		opts.SeedFn = sim.HashSeed
	}
	for _, id := range s.Figures {
		spec, _ := sim.FigureByID(id)
		if len(s.Rates) > 0 {
			spec.Rates = append([]float64(nil), s.Rates...)
		}
		if len(s.Algorithms) > 0 {
			spec.Algorithms = append([]string(nil), s.Algorithms...)
		}
		opts.Specs = append(opts.Specs, spec)
	}
	for _, id := range s.Resilience {
		spec, _ := sim.ResilienceByID(id)
		opts.Resilience = append(opts.Resilience, spec)
	}
	return opts, nil
}
