package serve

import (
	"sync"
	"time"
)

// limiter is a per-client token-bucket admission controller. Each client
// key owns a bucket refilled at rate tokens/second up to burst; an
// operation spends one token. Buckets are created on first sight and
// pruned once full and idle, so a scan of client keys cannot grow the
// map without bound.
type limiter struct {
	rate  float64 // tokens per second
	burst float64
	clock func() time.Time

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// newLimiter returns nil when rate is non-positive (limiting disabled).
func newLimiter(rate float64, burst int, clock func() time.Time) *limiter {
	if rate <= 0 {
		return nil
	}
	if burst <= 0 {
		burst = 1
	}
	return &limiter{
		rate:    rate,
		burst:   float64(burst),
		clock:   clock,
		buckets: make(map[string]*bucket),
	}
}

// allow spends one token from key's bucket. When refused, retryAfter is
// how long until a token will be available.
func (l *limiter) allow(key string) (ok bool, retryAfter time.Duration) {
	if l == nil {
		return true, 0
	}
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / l.rate
	return false, time.Duration(need * float64(time.Second))
}

// prune drops buckets that have refilled to burst and sat idle past
// maxIdle — they are indistinguishable from never-seen clients.
func (l *limiter) prune(maxIdle time.Duration) {
	if l == nil {
		return
	}
	now := l.clock()
	l.mu.Lock()
	defer l.mu.Unlock()
	for key, b := range l.buckets {
		idle := now.Sub(b.last)
		if idle >= maxIdle && b.tokens+idle.Seconds()*l.rate >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// size reports the tracked-client count (tests and stats).
func (l *limiter) size() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
