package chaostest

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"io/fs"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"turnmodel/internal/serve"
	"turnmodel/internal/simcache"
)

const (
	soakSeed     = 1
	soakSpecs    = 20
	soakClients  = 6
	maxDiskBytes = 16 << 10
)

// soakSpec is one tiny single-point figure job; seed n gives it a
// distinct content address.
func soakSpec(n int) serve.JobSpec {
	return serve.JobSpec{
		Figures:       []string{"figure13"},
		Rates:         []float64{0.02},
		Algorithms:    []string{"xy"},
		WarmupCycles:  100,
		MeasureCycles: 300,
		Seed:          int64(n + 1),
		Jobs:          1,
	}
}

// controlReports runs every spec on an unfaulted server and returns the
// reference report bytes per content address.
func controlReports(t *testing.T, specs []serve.JobSpec) map[string][]byte {
	t.Helper()
	control := serve.NewServer(serve.Config{Workers: 1})
	defer func() {
		if err := control.Shutdown(context.Background()); err != nil {
			t.Errorf("control shutdown: %v", err)
		}
	}()
	out := make(map[string][]byte)
	for _, spec := range specs {
		j, _, err := control.Submit(spec, "control")
		if err != nil {
			t.Fatalf("control submit: %v", err)
		}
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("control job %s stuck", j.ID())
		}
		if j.State() != serve.StateDone {
			err, class := j.Err()
			t.Fatalf("control job %s = %s (%s: %v)", j.ID(), j.State(), class, err)
		}
		raw, ok := j.Report()
		if !ok {
			t.Fatalf("control job %s has no report", j.ID())
		}
		out[j.Key()] = raw
	}
	return out
}

// submitUntilAccepted POSTs the spec as the client, backing off on 429
// (rate limited) and 503 (queue full) as a well-behaved client would,
// and returns the accepted job ID.
func submitUntilAccepted(t *testing.T, url string, client string, spec serve.JobSpec) string {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		req, _ := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("X-Client-Id", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: submit: %v", client, err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch resp.StatusCode {
		case http.StatusOK, http.StatusCreated:
			var st serve.Status
			if err := json.Unmarshal(raw, &st); err != nil {
				t.Fatalf("%s: status body %q: %v", client, raw, err)
			}
			return st.ID
		case http.StatusTooManyRequests, http.StatusServiceUnavailable:
			if resp.Header.Get("Retry-After") == "" {
				t.Errorf("%s: %d response without Retry-After", client, resp.StatusCode)
			}
			time.Sleep(20 * time.Millisecond)
		default:
			t.Fatalf("%s: submit status %d: %s", client, resp.StatusCode, raw)
		}
	}
	t.Fatalf("%s: submission never accepted", client)
	return ""
}

// drainSSE consumes the job's event stream until the done event,
// counting retry restarts.
func drainSSE(t *testing.T, url, id string, retries *int) {
	resp, err := http.Get(url + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Errorf("events %s: %v", id, err)
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if line == "event: retry" {
			*retries++
		}
		if line == "event: done" {
			return
		}
	}
}

// stripWall zeroes the wall_ms/cpu_ms timings, the only report fields
// that vary between runs of the same spec.
func stripWall(report []byte) []byte {
	return wallRe.ReplaceAll(report, []byte(`"${1}": 0`))
}

var wallRe = regexp.MustCompile(`"(wall_ms|cpu_ms)": [0-9.eE+-]+`)

// diskFootprint sums the cache's on-disk entry bytes.
func diskFootprint(t *testing.T, dir string) int64 {
	t.Helper()
	var total int64
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".bin") {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		return nil
	})
	if err != nil {
		t.Fatalf("walking cache dir: %v", err)
	}
	return total
}

// TestServeChaosSoak is the harness's main soak: concurrent clients
// submit overlapping specs into a server with every fault point armed —
// disk I/O failures and a tight disk bound underneath, transient
// failures, panics and slowdowns in execution, a skewed clock behind
// admission control, stalled and vanishing event streams on top — and
// then every hardening invariant is checked.
func TestServeChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is a long test")
	}
	plan := NewPlan(soakSeed, 0.15, 0.2)
	specs := make([]serve.JobSpec, soakSpecs)
	keys := make([]string, soakSpecs)
	for i := range specs {
		specs[i] = soakSpec(i)
		k, err := specs[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	// The behavior mix is deterministic in (seed, spec set); the soak is
	// only a soak if every class is represented.
	byBehavior := map[Behavior]int{}
	for _, k := range keys {
		byBehavior[plan.JobBehavior(k)]++
	}
	for _, b := range []Behavior{BehaviorClean, BehaviorSlow, BehaviorTransient1, BehaviorTransient2, BehaviorPanic} {
		if byBehavior[b] == 0 {
			t.Fatalf("behavior mix %v covers no %d; adjust soakSeed/soakSpecs", byBehavior, b)
		}
	}
	control := controlReports(t, specs)

	dir := t.TempDir()
	store := simcache.NewStore(simcache.Options{
		Dir:            dir,
		MaxDiskBytes:   maxDiskBytes,
		MaxDiskEntries: 24,
		DegradeAfter:   3,
		FaultHook:      plan.CacheHook,
	})
	store.StartJanitor(5 * time.Millisecond)
	defer store.Close()

	s := serve.NewServer(serve.Config{
		Workers:         1,
		JobWorkers:      4,
		QueueDepth:      6, // small enough that the soak hits ErrQueueFull
		Cache:           store,
		Clock:           plan.Clock(),
		MaxRetries:      2,
		RetryBase:       time.Millisecond,
		RetryMax:        10 * time.Millisecond,
		RetrySeed:       soakSeed,
		SubmitRate:      200,
		SubmitBurst:     4,
		SSEHeartbeat:    5 * time.Millisecond,
		SSEWriteTimeout: 250 * time.Millisecond,
		RunHook:         plan.RunHook,
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Every client submits every spec, offset so concurrent submissions
	// collide on the same keys (dedup) as often as they diverge.
	var wg sync.WaitGroup
	var mu sync.Mutex
	accepted := make(map[string]struct{})
	sseRetries := make([]int, soakClients)
	for c := 0; c < soakClients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := fmt.Sprintf("client-%d", c)
			for i := 0; i < soakSpecs; i++ {
				spec := specs[(i+c*3)%soakSpecs]
				id := submitUntilAccepted(t, ts.URL, client, spec)
				mu.Lock()
				accepted[id] = struct{}{}
				mu.Unlock()
				// Each client follows a few of its jobs over SSE.
				if i%5 == c%5 {
					drainSSE(t, ts.URL, id, &sseRetries[c])
				}
			}
		}(c)
	}

	// Two stalled subscribers: attach, never read, vanish at the end.
	// They must not block any simulation or leak a subscription.
	var stalled []*http.Response
	stallSpec := specs[0]
	stallID := submitUntilAccepted(t, ts.URL, "staller", stallSpec)
	for i := 0; i < 2; i++ {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + stallID + "/events")
		if err != nil {
			t.Fatal(err)
		}
		stalled = append(stalled, resp)
	}
	mu.Lock()
	accepted[stallID] = struct{}{}
	mu.Unlock()

	wg.Wait()

	// Cancel one job mid-soak shape: it may already be done (then the
	// cancel is a no-op) — either way it must settle terminally.
	if j, ok := s.Job(stallID); ok {
		j.Cancel()
	}

	// Invariant: no lost or stuck jobs — every accepted job reaches a
	// terminal state.
	for id := range accepted {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("accepted job %s vanished", id)
		}
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			err, class := j.Err()
			t.Fatalf("job %s stuck in %s (attempts=%d, %s: %v)", id, j.State(), j.Attempts(), class, err)
		}
	}

	for _, resp := range stalled {
		resp.Body.Close()
	}
	// Invariant: no leaked event streams once clients are gone.
	deadline := time.Now().Add(10 * time.Second)
	for s.Stats().SSEActive != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sse_active = %d after all clients vanished", s.Stats().SSEActive)
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}

	// Invariant: terminal-state conservation. Every job the server ever
	// tracked is done, failed, or canceled — nothing in between.
	var done, failed, canceled int
	jobs := s.Jobs()
	for _, j := range jobs {
		switch j.State() {
		case serve.StateDone:
			done++
		case serve.StateFailed:
			failed++
		case serve.StateCanceled:
			canceled++
		default:
			t.Errorf("job %s ended in non-terminal state %s", j.ID(), j.State())
		}
	}
	if done+failed+canceled != len(jobs) {
		t.Fatalf("state conservation: %d done + %d failed + %d canceled != %d jobs",
			done, failed, canceled, len(jobs))
	}
	if done == 0 {
		t.Fatal("soak completed no jobs")
	}

	// Invariant: failures are exactly the injected panics (transients
	// complete within the retry budget; nothing else may fail).
	for _, j := range jobs {
		if j.State() != serve.StateFailed {
			continue
		}
		err, class := j.Err()
		if class != serve.ClassPanic || plan.JobBehavior(j.Key()) != BehaviorPanic {
			t.Errorf("job %s failed outside the plan: %s class=%s err=%v behavior=%d",
				j.ID(), j.State(), class, err, plan.JobBehavior(j.Key()))
		}
	}

	// Invariant: completed results are unaffected by the faults. Two
	// layers: any two completed jobs with the same content address have
	// byte-identical reports (the archive contract), and every report
	// matches the unfaulted control run exactly, modulo the embedded
	// wall_ms timings (the one field that legitimately varies between
	// runs).
	byKey := make(map[string][]byte)
	for _, j := range jobs {
		if j.State() != serve.StateDone {
			continue
		}
		got, ok := j.Report()
		if !ok {
			t.Errorf("done job %s has no report", j.ID())
			continue
		}
		if prev, seen := byKey[j.Key()]; seen {
			if !bytes.Equal(got, prev) {
				t.Errorf("job %s report differs from an earlier job with the same key", j.ID())
			}
		} else {
			byKey[j.Key()] = got
		}
		want, ok := control[j.Key()]
		if !ok {
			t.Errorf("done job %s has no control reference", j.ID())
			continue
		}
		if !bytes.Equal(stripWall(got), stripWall(want)) {
			t.Errorf("job %s results differ from control run", j.ID())
		}
	}

	// Invariant: the disk tier respected its byte bound (walked from the
	// filesystem, not the store's own accounting).
	if got := diskFootprint(t, dir); got > maxDiskBytes {
		t.Errorf("cache dir holds %d bytes, bound %d", got, maxDiskBytes)
	}
	cs := store.Stats()
	if cs.DiskBytes > maxDiskBytes {
		t.Errorf("store accounts %d disk bytes, bound %d", cs.DiskBytes, maxDiskBytes)
	}

	// The soak only proves anything if the faults actually fired.
	stats := s.Stats()
	if plan.Transients.Load() == 0 || stats.Retries == 0 {
		t.Errorf("no transient faults exercised (plan=%d retries=%d)", plan.Transients.Load(), stats.Retries)
	}
	if plan.Panics.Load() == 0 || stats.Panics == 0 {
		t.Errorf("no panics exercised (plan=%d stats=%d)", plan.Panics.Load(), stats.Panics)
	}
	if plan.ReadFaults.Load()+plan.WriteFaults.Load() == 0 {
		t.Error("no disk faults exercised")
	}
	if cs.Failures == 0 {
		t.Error("store absorbed no failures")
	}
	t.Logf("soak: %d jobs (%d done, %d failed, %d canceled), %d retries, %d panics, "+
		"disk faults r=%d w=%d, store failures=%d, degraded=%v, disk=%dB",
		len(jobs), done, failed, canceled, stats.Retries, stats.Panics,
		plan.ReadFaults.Load(), plan.WriteFaults.Load(), cs.Failures, cs.DiskDegraded, cs.DiskBytes)
}
