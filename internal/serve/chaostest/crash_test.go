package chaostest

// Crash chaos: real turnserved replica subprocesses sharing one cache
// directory get SIGKILLed mid-job and mid-SSE-stream, and the harness
// asserts the durability contract — a surviving or restarted replica
// finishes every accepted job exactly once (one terminal record, strictly
// monotone fencing tokens), terminal states are conserved, reports come
// back byte-identical to an uncrashed in-process control run, and no lease
// is left held when the fleet goes quiet.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"turnmodel/internal/jobstore"
	"turnmodel/internal/serve"
)

const (
	crashSpecs    = 5
	crashLeaseTTL = 400 * time.Millisecond
)

// crashSpec is a 4-point job sized so each point simulates for tens of
// milliseconds: a SIGKILL fired after the first streamed point reliably
// lands mid-job, with the rest of the fleet still queued behind the
// single worker.
func crashSpec(n int) serve.JobSpec {
	return serve.JobSpec{
		Figures:       []string{"figure13"},
		Rates:         []float64{0.01, 0.02, 0.03, 0.04},
		Algorithms:    []string{"xy"},
		WarmupCycles:  1000,
		MeasureCycles: 30000,
		Seed:          int64(n + 1),
		Jobs:          1,
	}
}

var (
	crashBinOnce sync.Once
	crashBinPath string
	crashBinErr  error
)

// turnservedBinary builds the real daemon once per test run: crash
// tolerance is only proven against a process the kernel can SIGKILL, not
// an in-process server.
func turnservedBinary(t *testing.T) string {
	t.Helper()
	crashBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "turnserved-crash-")
		if err != nil {
			crashBinErr = err
			return
		}
		crashBinPath = filepath.Join(dir, "turnserved")
		cmd := exec.Command("go", "build", "-o", crashBinPath, "turnmodel/cmd/turnserved")
		if out, err := cmd.CombinedOutput(); err != nil {
			crashBinErr = fmt.Errorf("building turnserved: %v\n%s", err, out)
		}
	})
	if crashBinErr != nil {
		t.Fatal(crashBinErr)
	}
	return crashBinPath
}

// replica is one turnserved subprocess.
type replica struct {
	id      string
	url     string
	cmd     *exec.Cmd
	done    chan struct{} // closed once Wait returns
	exitErr error
}

// startReplica launches a replica against the shared cache directory and
// waits for its listen address. The lease TTL is short so takeover after a
// kill happens within the test's patience.
func startReplica(t *testing.T, bin, cacheDir, id string) *replica {
	t.Helper()
	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-cachedir", cacheDir,
		"-replica-id", id,
		"-lease-ttl", crashLeaseTTL.String(),
		"-jobs", "1",
		"-workers", "1",
		"-janitor", "100ms",
		"-drain", "10s",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	r := &replica{id: id, cmd: cmd, done: make(chan struct{})}
	go func() { r.exitErr = cmd.Wait(); close(r.done) }()
	t.Cleanup(func() { r.stop(t) })

	urlc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				urlc <- strings.TrimSpace(line[i+len("listening on "):])
			}
		}
	}()
	select {
	case r.url = <-urlc:
	case <-r.done:
		t.Fatalf("replica %s exited before listening: %v", id, r.exitErr)
	case <-time.After(30 * time.Second):
		t.Fatalf("replica %s never reported its address", id)
	}
	return r
}

// kill SIGKILLs the replica — no drain, no cleanup, the crash under test.
func (r *replica) kill(t *testing.T) {
	t.Helper()
	if err := r.cmd.Process.Kill(); err != nil {
		t.Fatalf("killing replica %s: %v", r.id, err)
	}
	<-r.done
}

// stop is the polite end-of-test teardown for replicas still running.
func (r *replica) stop(t *testing.T) {
	select {
	case <-r.done:
		return // already gone (killed, or stopped earlier)
	default:
	}
	_ = r.cmd.Process.Signal(syscall.SIGTERM)
	select {
	case <-r.done:
	case <-time.After(30 * time.Second):
		_ = r.cmd.Process.Kill()
		<-r.done
		t.Errorf("replica %s did not drain on SIGTERM", r.id)
	}
}

// firstPoint attaches to the job's SSE stream and returns once the first
// point event arrives, keeping the connection open — the stream the kill
// then severs.
func firstPoint(t *testing.T, url, id string) *http.Response {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: point") {
			return resp
		}
	}
	t.Fatalf("stream for %s ended before the first point", id)
	return nil
}

// waitTerminal polls the shared journal until every key is terminal, and
// fails if any settles in a state other than want.
func waitTerminal(t *testing.T, js *jobstore.Store, keys []string, want string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, key := range keys {
			info, ok, err := js.Job(key, false)
			if err != nil {
				t.Fatalf("journal for %s: %v", key, err)
			}
			if !ok || !info.Terminal() {
				pending++
				continue
			}
			if info.State != want {
				t.Fatalf("job %s settled as %q (%s), want %q", key, info.State, info.Error, want)
			}
		}
		if pending == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d jobs still non-terminal after %v", pending, timeout)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// assertCrashInvariants checks the post-crash journal contract for one
// job: exactly one terminal record, strictly increasing fencing tokens
// across started records (never two owners writing under the same fence),
// and no lease left held.
func assertCrashInvariants(t *testing.T, js *jobstore.Store, key string) {
	t.Helper()
	recs, ok, err := js.Records(key)
	if err != nil || !ok {
		t.Fatalf("records for %s: ok=%v err=%v", key, ok, err)
	}
	terminals := 0
	var lastFence uint64
	owners := map[uint64]string{}
	for _, rec := range recs {
		switch rec.Kind {
		case jobstore.RecordTerminal:
			terminals++
		case jobstore.RecordStarted:
			if rec.Fence <= lastFence {
				t.Errorf("%s: started fence %d not above previous %d", key, rec.Fence, lastFence)
			}
			if prev, seen := owners[rec.Fence]; seen && prev != rec.Owner {
				t.Errorf("%s: fence %d used by both %q and %q", key, rec.Fence, prev, rec.Owner)
			}
			owners[rec.Fence] = rec.Owner
			lastFence = rec.Fence
		}
	}
	if terminals != 1 {
		t.Errorf("%s: %d terminal records, want exactly 1", key, terminals)
	}
	if holder, held, _ := js.Holder(key); held {
		t.Errorf("%s: lease still held by %q after completion", key, holder.Owner)
	}
}

// nonTerminal counts jobs the dead replica left unfinished. Called right
// after a kill (the journal is frozen until a survivor's lease sweep
// fires), it pins down exactly how many jobs the recovery machinery must
// adopt — timing decides how far the victim got, the journal records it.
func nonTerminal(t *testing.T, js *jobstore.Store, keys []string) int64 {
	t.Helper()
	var n int64
	for _, key := range keys {
		info, ok, err := js.Job(key, false)
		if err != nil {
			t.Fatalf("journal for %s: %v", key, err)
		}
		if !ok || !info.Terminal() {
			n++
		}
	}
	return n
}

// fetchReport GETs a job's report from a replica.
func fetchReport(t *testing.T, url, id string) []byte {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report %s = %d: %s", id, resp.StatusCode, raw)
	}
	return raw
}

// crashFixture prepares the shared directory, the specs, their control
// reports (from an uncrashed in-process run) and the journal handle.
type crashFixture struct {
	cacheDir string
	js       *jobstore.Store
	specs    []serve.JobSpec
	keys     []string
	control  map[string][]byte
}

func newCrashFixture(t *testing.T) *crashFixture {
	t.Helper()
	f := &crashFixture{cacheDir: t.TempDir()}
	f.specs = make([]serve.JobSpec, crashSpecs)
	f.keys = make([]string, crashSpecs)
	for i := range f.specs {
		f.specs[i] = crashSpec(i)
		k, err := f.specs[i].Key()
		if err != nil {
			t.Fatal(err)
		}
		f.keys[i] = k
	}
	f.control = controlReports(t, f.specs)
	js, err := jobstore.Open(filepath.Join(f.cacheDir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	f.js = js
	return f
}

// submitAll queues every spec on one replica and returns the job IDs.
func (f *crashFixture) submitAll(t *testing.T, url string) []string {
	t.Helper()
	ids := make([]string, len(f.specs))
	for i, spec := range f.specs {
		ids[i] = submitUntilAccepted(t, url, "crash-client", spec)
	}
	return ids
}

// checkAll verifies every job's journal invariants and that the report a
// replica serves is byte-identical to the uncrashed control (modulo the
// embedded wall-clock timings).
func (f *crashFixture) checkAll(t *testing.T, url string) {
	t.Helper()
	for i, key := range f.keys {
		assertCrashInvariants(t, f.js, key)
		info, ok, err := f.js.Job(key, false)
		if err != nil || !ok {
			t.Fatalf("journal for %s: ok=%v err=%v", key, ok, err)
		}
		got := fetchReport(t, url, info.ID)
		if !bytes.Equal(stripWall(got), stripWall(f.control[key])) {
			t.Errorf("job %d report differs from uncrashed control", i)
		}
	}
}

// replicaStats fetches a replica's scheduler stats.
func replicaStats(t *testing.T, url string) serve.SchedulerStats {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Scheduler serve.SchedulerStats `json:"scheduler"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Scheduler
}

// TestCrashPeerTakeover SIGKILLs replica A mid-job and mid-SSE-stream
// while replica B shares its cache directory: B must steal the expired
// leases, finish every accepted job exactly once, and serve both the
// replayed stream and control-identical reports for jobs it never
// accepted itself.
func TestCrashPeerTakeover(t *testing.T) {
	if testing.Short() {
		t.Skip("crash chaos is a long test")
	}
	bin := turnservedBinary(t)
	f := newCrashFixture(t)

	a := startReplica(t, bin, f.cacheDir, "rep-a")
	b := startReplica(t, bin, f.cacheDir, "rep-b")

	ids := f.submitAll(t, a.url)
	// Attach a stream and crash A strictly mid-job, mid-stream: after the
	// first point of the first job, with the rest still queued behind the
	// single worker.
	stream := firstPoint(t, a.url, ids[0])
	a.kill(t)
	io.Copy(io.Discard, stream.Body) // the severed stream just ends
	stream.Body.Close()
	orphans := nonTerminal(t, f.js, f.keys)
	if orphans == 0 {
		t.Fatal("replica A finished everything before the kill; the crash proved nothing")
	}

	// B's sweep adopts each orphan once A's leases expire.
	waitTerminal(t, f.js, f.keys, "done", 60*time.Second)
	f.checkAll(t, b.url)

	// The client that lost its stream catches up from the survivor: the
	// full point replay and a done event, under the same job ID.
	resp, err := http.Get(b.url + "/v1/jobs/" + ids[0] + "/events")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replay stream = %d", resp.StatusCode)
	}
	if got := bytes.Count(body, []byte("event: point")); got != 4 {
		t.Errorf("replayed stream has %d points, want 4", got)
	}
	if !bytes.Contains(body, []byte("event: done")) {
		t.Error("replayed stream missing done event")
	}

	stats := replicaStats(t, b.url)
	if stats.Replica != "rep-b" || !stats.Durable {
		t.Errorf("stats identity = %q durable=%v", stats.Replica, stats.Durable)
	}
	if stats.Requeued != orphans || stats.LeasesStolen != orphans {
		t.Errorf("requeued/stolen = %d/%d, want %d/%d (jobs left unfinished by the kill)",
			stats.Requeued, stats.LeasesStolen, orphans, orphans)
	}
}

// TestCrashRestartRecovery SIGKILLs a lone replica mid-job and restarts it
// under the same identity: the startup recovery scan must requeue and
// finish everything the dead process had accepted.
func TestCrashRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("crash chaos is a long test")
	}
	bin := turnservedBinary(t)
	f := newCrashFixture(t)

	a := startReplica(t, bin, f.cacheDir, "rep-a")
	ids := f.submitAll(t, a.url)
	stream := firstPoint(t, a.url, ids[0])
	a.kill(t)
	io.Copy(io.Discard, stream.Body)
	stream.Body.Close()
	orphans := nonTerminal(t, f.js, f.keys)
	if orphans == 0 {
		t.Fatal("replica finished everything before the kill; the crash proved nothing")
	}

	a2 := startReplica(t, bin, f.cacheDir, "rep-a")
	waitTerminal(t, f.js, f.keys, "done", 60*time.Second)
	f.checkAll(t, a2.url)

	stats := replicaStats(t, a2.url)
	if stats.Recovered != orphans {
		t.Errorf("recovered = %d, want %d (jobs left unfinished by the kill)", stats.Recovered, orphans)
	}
	if stats.LeasesStolen != 0 {
		t.Errorf("leases stolen = %d, want 0 (own leases are recovered, not stolen)", stats.LeasesStolen)
	}

	// The pre-crash job IDs keep resolving on the restarted process.
	for _, id := range ids {
		resp, err := http.Get(a2.url + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st serve.Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil || st.State != serve.StateDone {
			t.Errorf("pre-crash job %s = %v state=%q, want done", id, err, st.State)
		}
	}
}
