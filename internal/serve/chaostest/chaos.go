// Package chaostest is the fault-injection harness for the serve stack:
// a seeded Plan drives every built-in fault point — disk read/write/probe
// failures in the simcache store, transient failures, panics and
// slowdowns in the scheduler's execution hook, a forward-skewing clock
// for the admission controller — while the soak test hammers a server
// with concurrent clients, stalled event streams and cancellations, then
// asserts the invariants production hardening promises: no job is lost
// or stuck, terminal states are conserved, completed reports stay
// byte-identical to an unfaulted control run, and the disk cache stays
// inside its byte bound.
//
// The package exports only test infrastructure; nothing here runs in
// production builds.
package chaostest

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"turnmodel/internal/serve"
)

// Behavior is the per-job fault assignment, derived deterministically
// from the job's content address so a spec misbehaves the same way no
// matter which client submits it or when.
type Behavior int

const (
	// BehaviorClean runs normally.
	BehaviorClean Behavior = iota
	// BehaviorSlow sleeps briefly before running, widening the windows
	// the scheduler's races could hide in.
	BehaviorSlow
	// BehaviorTransient1 fails its first attempt with a retryable error.
	BehaviorTransient1
	// BehaviorTransient2 fails its first two attempts; with the default
	// retry budget it still completes on the third.
	BehaviorTransient2
	// BehaviorPanic panics on every attempt: the job must fail with a
	// recovered, classified error and the process must survive.
	BehaviorPanic
)

// Plan is one seeded chaos schedule. The seed pins the random stream, so
// a failing soak reproduces with the same -chaos.seed; fault ordering
// still varies with goroutine interleaving, which is the point of
// running it under -race.
type Plan struct {
	seed   int64
	pRead  float64
	pWrite float64

	mu  sync.Mutex
	rng *rand.Rand

	clockMu   sync.Mutex
	clockSkew time.Duration
	clockN    int

	// Counters prove each fault class actually fired during a soak.
	ReadFaults  atomic.Int64
	WriteFaults atomic.Int64
	Transients  atomic.Int64
	Panics      atomic.Int64
	Slowdowns   atomic.Int64
}

// NewPlan seeds a schedule: disk reads fail with probability pRead and
// writes (including eviction unlinks and health probes) with pWrite.
func NewPlan(seed int64, pRead, pWrite float64) *Plan {
	return &Plan{
		seed:   seed,
		pRead:  pRead,
		pWrite: pWrite,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// roll draws one uniform variate from the seeded stream.
func (p *Plan) roll() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rng.Float64()
}

// CacheHook is the simcache fault point: wire it as Options.FaultHook.
// Read and write paths fail probabilistically; enough consecutive write
// failures push the store into memory-only degradation, and the janitor's
// probe failures keep it there — both paths the soak exercises.
func (p *Plan) CacheHook(op, key string) error {
	switch op {
	case "read":
		if p.roll() < p.pRead {
			p.ReadFaults.Add(1)
			return errors.New("chaos: injected disk read failure")
		}
	case "write", "evict", "probe":
		if p.roll() < p.pWrite {
			p.WriteFaults.Add(1)
			return errors.New("chaos: injected disk write failure")
		}
	}
	return nil
}

// JobBehavior assigns the job key its deterministic misbehavior.
func (p *Plan) JobBehavior(key string) Behavior {
	h := fnv.New64a()
	h.Write([]byte(key))
	var seedBytes [8]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(p.seed >> (8 * i))
	}
	h.Write(seedBytes[:])
	switch h.Sum64() % 8 {
	case 0:
		return BehaviorSlow
	case 1:
		return BehaviorTransient1
	case 2:
		return BehaviorTransient2
	case 3:
		return BehaviorPanic
	default:
		return BehaviorClean
	}
}

// RunHook is the scheduler fault point: wire it as Config.RunHook.
func (p *Plan) RunHook(j *serve.Job, attempt int) error {
	switch p.JobBehavior(j.Key()) {
	case BehaviorSlow:
		p.Slowdowns.Add(1)
		time.Sleep(2 * time.Millisecond)
	case BehaviorTransient1:
		if attempt <= 1 {
			p.Transients.Add(1)
			return serve.Transient(errors.New("chaos: transient infrastructure failure"))
		}
	case BehaviorTransient2:
		if attempt <= 2 {
			p.Transients.Add(1)
			return serve.Transient(errors.New("chaos: transient infrastructure failure"))
		}
	case BehaviorPanic:
		p.Panics.Add(1)
		panic("chaos: injected job panic")
	}
	return nil
}

// Clock returns a forward-skewing clock for Config.Clock: every few
// reads it jumps ahead by up to half a second, so the token buckets and
// job timestamps see the kind of clock trouble retries meet in
// production. It never runs backwards.
func (p *Plan) Clock() func() time.Time {
	return func() time.Time {
		p.clockMu.Lock()
		defer p.clockMu.Unlock()
		p.clockN++
		if p.clockN%7 == 0 {
			p.mu.Lock()
			skew := time.Duration(p.rng.Int63n(int64(500 * time.Millisecond)))
			p.mu.Unlock()
			p.clockSkew += skew
		}
		return time.Now().Add(p.clockSkew)
	}
}
