package serve

import (
	"context"
	"errors"
	"fmt"
)

// ErrQueueFull reports that the bounded job queue refused a submission.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrShuttingDown reports a submission after Shutdown began.
var ErrShuttingDown = errors.New("serve: server shutting down")

// ErrRateLimited reports a submission or stream attach refused by the
// per-client admission controller.
var ErrRateLimited = errors.New("serve: rate limit exceeded")

// ErrorClass labels why a job reached a non-done terminal state, so
// clients and operators can tell a bad spec from exhausted retries from a
// timed-out or crashed run without parsing error strings.
type ErrorClass string

const (
	// ClassSpec is a rejected or unrunnable spec — never retried, the
	// same spec will always fail.
	ClassSpec ErrorClass = "spec"
	// ClassTimeout is a job that exceeded its per-job deadline.
	ClassTimeout ErrorClass = "timeout"
	// ClassCanceled is a job canceled by the client or by shutdown.
	ClassCanceled ErrorClass = "canceled"
	// ClassPanic is a job whose execution panicked; the panic was
	// recovered and isolated to the job.
	ClassPanic ErrorClass = "panic"
	// ClassTransient is an infrastructure failure (cache I/O, pool
	// exhaustion, an injected chaos fault) that exhausted its retries.
	ClassTransient ErrorClass = "transient"
	// ClassInternal is anything else — a bug.
	ClassInternal ErrorClass = "internal"
)

// transientError marks an error as infrastructure-caused: the spec is
// fine and a retry may succeed.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// Transient wraps err as retryable. Only infrastructure failures — cache
// I/O, worker-pool exhaustion, injected chaos faults — may be marked
// transient; spec errors must never be, or the scheduler would burn
// retries on a job that can only fail.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err}
}

// IsTransient reports whether err (or anything it wraps) was marked
// retryable with Transient.
func IsTransient(err error) bool {
	var t *transientError
	return errors.As(err, &t)
}

// PanicError is a recovered job panic: the job fails with this structured
// error while the process, the other jobs, and the scheduler all survive.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v", e.Value)
}

// classify maps a terminal job error onto its ErrorClass. Call sites that
// know better (spec validation failures) set the class directly.
func classify(err error) ErrorClass {
	var p *PanicError
	switch {
	case err == nil:
		return ""
	case errors.As(err, &p):
		return ClassPanic
	case IsTransient(err):
		return ClassTransient
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	default:
		return ClassInternal
	}
}
