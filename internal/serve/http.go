package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"

	"turnmodel/internal/jobstore"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec; 201 on new work, 200 when
//	                            an equivalent job already exists, 429 when
//	                            the client is over its submit rate, 503
//	                            (with a queue-derived Retry-After) when the
//	                            bounded queue is full or shutting down
//	GET    /v1/jobs             list job statuses in submission order
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/events server-sent events: every point as
//	                            "event: point", an "event: retry" marker
//	                            when a transient failure restarts the
//	                            stream, periodic ": hb" comment frames on
//	                            idle, then a final "event: done" with the
//	                            job's status (replay included, so late
//	                            subscribers see the full stream)
//	GET    /v1/jobs/{id}/report the finished schema-v4 report, byte-for-byte
//	                            as the run archived it
//	GET    /v1/jobs/{id}/tables the rendered result tables, text/plain
//	DELETE /v1/jobs/{id}        cancel the job
//	GET    /v1/stats            scheduler and cache counters
//	GET    /healthz             liveness: 200 while the process serves
//	GET    /readyz              readiness: 503 once shutdown begins
//
// Clients are identified for fairness and rate limiting by the
// X-Client-Id header, falling back to the remote address.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(s.handleStatus, s.remoteStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents, s.remoteEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.withJob(s.handleReport, s.remoteReport))
	mux.HandleFunc("GET /v1/jobs/{id}/tables", s.withJob(s.handleTables, s.remoteTables))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.withJob(s.handleCancel, s.remoteCancel))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /v1/readyz", s.handleReadyz)
	return mux
}

// clientKey identifies the requester for fairness and rate limiting: the
// X-Client-Id header when present, else the remote host.
func clientKey(r *http.Request) string {
	if id := r.Header.Get("X-Client-Id"); id != "" {
		return id
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// withJob resolves the job ID against this replica's jobs first, then — when
// a shared job store is configured — against the store, so job URLs keep
// working across restarts and point at jobs owned by peer replicas.
func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job), remote func(http.ResponseWriter, *http.Request, jobstore.JobInfo)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if j, ok := s.Job(r.PathValue("id")); ok {
			h(w, r, j)
			return
		}
		if info, ok := s.storeJob(r.PathValue("id")); ok {
			remote(w, r, info)
			return
		}
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
	}
}

// retryAfterHeader rounds d up to whole seconds for the Retry-After header
// (which is integral), with a 1s floor.
func retryAfterHeader(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	client := clientKey(r)
	if ok, retry := s.submitLim.allow(client); !ok {
		s.rejectedRate.Add(1)
		w.Header().Set("Retry-After", retryAfterHeader(retry))
		writeError(w, http.StatusTooManyRequests, ErrRateLimited)
		return
	}
	spec, err := ParseSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, created, err := s.Submit(spec, client)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Tell the client when space is likely: mean recent job duration
		// times the jobs ahead of it.
		retry := s.RetryAfterQueueFull()
		w.Header().Set("Retry-After", retryAfterHeader(retry))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"error":         err.Error(),
			"retry_after_s": int(math.Ceil(retry.Seconds())),
		})
		return
	case errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		var remote *RemoteOwnedError
		if errors.As(err, &remote) {
			// A live peer replica is executing this spec; hand back its
			// job so the client can follow it by ID.
			w.Header().Set("Location", "/v1/jobs/"+remote.ID)
			writeJSON(w, http.StatusOK, remote.Status)
			return
		}
		if IsTransient(err) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, len(jobs))
	local := make(map[string]bool, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.Status()
		local[j.Key()] = true
	}
	// With a shared store the list covers the whole fleet: journaled jobs
	// this replica doesn't hold locally — owned by peers, or finished
	// before a restart — are appended from the store.
	if s.store != nil {
		if infos, err := s.store.List(false); err == nil {
			for _, info := range infos {
				if !local[info.Key] {
					statuses = append(statuses, s.infoStatus(info))
				}
			}
		}
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, j *Job) {
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job as server-sent events. The replay log means
// the stream is complete no matter when the client attaches — including
// after the job finished. Dead clients are reaped two ways: a per-write
// deadline bounds how long a blocked write (client stopped reading) can
// hold the handler, and a heartbeat comment frame on idle streams forces
// a write so vanished connections surface instead of idling forever.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	client := clientKey(r)
	if ok, retry := s.streamLim.allow(client); !ok {
		s.rejectedRate.Add(1)
		w.Header().Set("Retry-After", retryAfterHeader(retry))
		writeError(w, http.StatusTooManyRequests, ErrRateLimited)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	s.sseActive.Add(1)
	defer s.sseActive.Add(-1)
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	rc := http.NewResponseController(w)
	writeTimeout := s.cfg.SSEWriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = defaultWriteTimeout
	}
	heartbeat := s.cfg.SSEHeartbeat
	if heartbeat <= 0 {
		heartbeat = defaultHeartbeat
	}
	// armWrite bounds the next write; a connection whose client stopped
	// reading fails the write once its buffers fill, ending the handler.
	// ErrNotSupported (a test recorder, an exotic wrapper) degrades to
	// unbounded writes rather than refusing to stream.
	armWrite := func() {
		_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
	}

	notify := j.subscribe()
	defer j.unsubscribe(notify)
	sent, gen := 0, 0
	emit := func() bool {
		pts, g := j.pointsSince(sent)
		if g != gen {
			// A retry restarted the replay log: tell the client and
			// stream the new attempt from the top.
			if sent > 0 {
				armWrite()
				if _, err := fmt.Fprintf(w, "event: retry\ndata: {\"attempt\": %d}\n\n", g); err != nil {
					return false
				}
			}
			gen, sent = g, 0
			pts, _ = j.pointsSince(0)
		}
		for _, ev := range pts {
			data, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			armWrite()
			if _, err := fmt.Fprintf(w, "event: point\ndata: %s\n\n", data); err != nil {
				return false
			}
			sent++
		}
		armWrite()
		flusher.Flush()
		return true
	}
	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	for {
		if !emit() {
			return
		}
		select {
		case <-notify:
		case <-hb.C:
			armWrite()
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-j.Done():
			if !emit() {
				return
			}
			data, _ := json.Marshal(j.Status())
			armWrite()
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, j *Job) {
	switch j.State() {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s", j.ID(), j.State()))
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", j.ID(), j.State()))
		return
	}
	raw, ok := j.Report()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no report (no figure sweeps)", j.ID()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request, j *Job) {
	tables, ok := j.Tables()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", j.ID(), j.State()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprint(w, t)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, j *Job) {
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

// The remote* handlers serve jobs known only through the shared store:
// journaled by a peer replica, or terminal from before a restart.

func (s *Server) remoteStatus(w http.ResponseWriter, r *http.Request, info jobstore.JobInfo) {
	writeJSON(w, http.StatusOK, s.infoStatus(info))
}

// remoteEvents replays a terminal journaled job's point log as a complete
// SSE stream — how a client that lost its stream to a replica crash catches
// up from a survivor. Live remote jobs can't be streamed from here (the
// points land in the owner's journal asynchronously), so they 409 to the
// owning replica.
func (s *Server) remoteEvents(w http.ResponseWriter, r *http.Request, info jobstore.JobInfo) {
	if !info.Terminal() {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s is running on replica %q; stream it there", info.ID, s.infoStatus(info).Replica))
		return
	}
	full, ok, err := s.store.Job(info.Key, true)
	if err != nil || !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("journal for job %s unreadable", info.ID))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	for _, raw := range full.Points {
		fmt.Fprintf(w, "event: point\ndata: %s\n\n", raw)
	}
	data, _ := json.Marshal(s.infoStatus(full))
	fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
}

func (s *Server) remoteReport(w http.ResponseWriter, r *http.Request, info jobstore.JobInfo) {
	switch State(info.State) {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s", info.ID, info.State))
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", info.ID, info.State))
		return
	}
	art, ok := s.archivedArtifact(info.Key)
	if !ok || len(art.Report) == 0 {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no archived report", info.ID))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(art.Report)
}

func (s *Server) remoteTables(w http.ResponseWriter, r *http.Request, info jobstore.JobInfo) {
	if State(info.State) != StateDone {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", info.ID, info.State))
		return
	}
	art, ok := s.archivedArtifact(info.Key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no archived tables", info.ID))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	for i, t := range art.Tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprint(w, t)
	}
}

// remoteCancel refuses: only the owning replica may cancel its job (its
// lease fences everyone else out), so the client is pointed there.
func (s *Server) remoteCancel(w http.ResponseWriter, r *http.Request, info jobstore.JobInfo) {
	writeError(w, http.StatusConflict, fmt.Errorf("job %s is owned by replica %q; cancel it there", info.ID, s.infoStatus(info).Replica))
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"queue_len": s.QueueLen(),
		"jobs":      len(s.Jobs()),
		"scheduler": s.Stats(),
	}
	if cs, ok := s.CacheStats(); ok {
		stats["cache"] = cs
	}
	writeJSON(w, http.StatusOK, stats)
}

// handleHealthz is liveness: 200 for as long as the process can serve.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 503 once shutdown begins, so load balancers
// stop routing to a draining instance before its listener closes.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.closed
	s.mu.Unlock()
	if draining {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
