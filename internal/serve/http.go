package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Handler returns the service's HTTP API:
//
//	POST   /v1/jobs             submit a JobSpec; 201 on new work, 200 when
//	                            an equivalent job already exists, 503 when
//	                            the bounded queue is full or shutting down
//	GET    /v1/jobs             list job statuses in submission order
//	GET    /v1/jobs/{id}        one job's status
//	GET    /v1/jobs/{id}/events server-sent events: every point as
//	                            "event: point", then a final "event: done"
//	                            with the job's status (replay included, so
//	                            late subscribers see the full stream)
//	GET    /v1/jobs/{id}/report the finished schema-v4 report, byte-for-byte
//	                            as the run archived it
//	GET    /v1/jobs/{id}/tables the rendered result tables, text/plain
//	DELETE /v1/jobs/{id}        cancel the job
//	GET    /v1/stats            queue depth and cache counters
//	GET    /v1/healthz          liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.withJob(s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.withJob(s.handleEvents))
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.withJob(s.handleReport))
	mux.HandleFunc("GET /v1/jobs/{id}/tables", s.withJob(s.handleTables))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.withJob(s.handleCancel))
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func (s *Server) withJob(h func(http.ResponseWriter, *http.Request, *Job)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		j, ok := s.Job(r.PathValue("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.PathValue("id")))
			return
		}
		h(w, r, j)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := ParseSpec(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	job, created, err := s.Submit(spec)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrShuttingDown):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID())
	code := http.StatusOK
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, job.Status())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	statuses := make([]Status, len(jobs))
	for i, j := range jobs {
		statuses[i] = j.Status()
	}
	writeJSON(w, http.StatusOK, statuses)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request, j *Job) {
	writeJSON(w, http.StatusOK, j.Status())
}

// handleEvents streams the job as server-sent events. The replay log means
// the stream is complete no matter when the client attaches — including
// after the job finished.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	notify := j.subscribe()
	defer j.unsubscribe(notify)
	sent := 0
	emit := func() bool {
		for _, ev := range j.pointsSince(sent) {
			data, err := json.Marshal(ev)
			if err != nil {
				return false
			}
			if _, err := fmt.Fprintf(w, "event: point\ndata: %s\n\n", data); err != nil {
				return false
			}
			sent++
		}
		flusher.Flush()
		return true
	}
	for {
		if !emit() {
			return
		}
		select {
		case <-notify:
		case <-j.Done():
			if !emit() {
				return
			}
			data, _ := json.Marshal(j.Status())
			fmt.Fprintf(w, "event: done\ndata: %s\n\n", data)
			flusher.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request, j *Job) {
	switch j.State() {
	case StateDone:
	case StateFailed, StateCanceled:
		writeError(w, http.StatusGone, fmt.Errorf("job %s %s", j.ID(), j.State()))
		return
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", j.ID(), j.State()))
		return
	}
	raw, ok := j.Report()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("job %s has no report (no figure sweeps)", j.ID()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(raw)
}

func (s *Server) handleTables(w http.ResponseWriter, r *http.Request, j *Job) {
	tables, ok := j.Tables()
	if !ok {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, fmt.Errorf("job %s still %s", j.ID(), j.State()))
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	for i, t := range tables {
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprint(w, t)
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request, j *Job) {
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	stats := map[string]any{
		"queue_len": s.QueueLen(),
		"jobs":      len(s.Jobs()),
	}
	if cs, ok := s.CacheStats(); ok {
		stats["cache"] = cs
	}
	writeJSON(w, http.StatusOK, stats)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
