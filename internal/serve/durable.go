package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"strconv"
	"strings"
	"time"

	"turnmodel/internal/jobstore"
	"turnmodel/internal/sim"
)

// This file is the durability layer: with Config.Store set, every job's
// lifecycle is journaled in a jobstore shared by all replicas of one cache
// directory, execution is guarded by per-job leases with generation
// fencing, and two recovery paths — a startup scan and a periodic orphan
// sweep — requeue any job whose owner died, preserving its attempts and
// error-class history. Without a store, none of this code runs and the
// server behaves exactly as before.

// RemoteOwnedError reports a submission whose job is already being
// executed by a live peer replica sharing the job store. The embedded
// Status (built from the shared journal) lets callers follow the peer's
// progress by ID.
type RemoteOwnedError struct {
	ID     string
	Owner  string
	Status Status
}

func (e *RemoteOwnedError) Error() string {
	return fmt.Sprintf("serve: job %s is running on replica %q", e.ID, e.Owner)
}

// persistSubmitLocked claims the job's lease and journals (or adopts) it.
// Caller holds s.mu. A live peer's job comes back as *RemoteOwnedError; an
// expired peer's job is adopted with its history. On success j carries the
// lease and, for adopted jobs, the journaled identity and history.
func (s *Server) persistSubmitLocked(j *Job) error {
	info, ok, _ := s.store.Job(j.key, true)
	lease, prev, err := s.store.Claim(j.key, s.replicaID, s.leaseTTL)
	if err != nil {
		var held *jobstore.HeldError
		if errors.As(err, &held) {
			if ok && !info.Terminal() {
				return &RemoteOwnedError{ID: info.ID, Owner: held.Owner, Status: s.infoStatus(info)}
			}
			// Lease without a live journal: a claim/create race; tell the
			// client to retry rather than inventing a second journal.
			return Transient(err)
		}
		return fmt.Errorf("serve: claiming job lease: %w", err)
	}
	j.lease = &lease
	if ok && !info.Terminal() {
		// A crashed owner's (or our own pre-restart) job resubmitted:
		// adopt the journal — same fleet-wide identity, attempts and
		// point history preserved — instead of starting a second one.
		j.adoptInfo(info)
		s.noteAdoption(prev)
		return nil
	}
	specRaw, merr := json.Marshal(j.spec)
	if merr != nil {
		_ = s.store.Release(lease)
		return fmt.Errorf("serve: encoding spec: %w", merr)
	}
	rec := jobstore.Record{
		Kind: jobstore.RecordSubmitted, Time: s.clock(),
		ID: j.id, Client: j.client, Spec: specRaw,
	}
	if err := s.store.Create(j.key, rec); err != nil {
		_ = s.store.Release(lease)
		return fmt.Errorf("serve: journaling job: %w", err)
	}
	return nil
}

// noteAdoption counts a non-terminal journal takeover: our own earlier
// self (a restart) is a recovery, anyone else a requeue off a stolen
// lease.
func (s *Server) noteAdoption(prevOwner string) {
	if prevOwner == "" || prevOwner == s.replicaID {
		s.recoveredJobs.Add(1)
		return
	}
	s.requeuedJobs.Add(1)
	s.leasesStolen.Add(1)
}

// journalStarted fences and records one execution attempt.
func (s *Server) journalStarted(j *Job, attempt int) {
	lease := j.leaseRef()
	if s.store == nil || lease == nil {
		return
	}
	rec := jobstore.Record{
		Kind: jobstore.RecordStarted, Time: s.clock(),
		Owner: s.replicaID, Fence: lease.Gen, Attempt: attempt,
	}
	if err := s.store.Append(j.key, rec, true); err != nil {
		log.Printf("serve: journaling start of %s: %v", j.id, err)
	}
}

// journalPoint appends one streamed point, unsynced: losing the tail of a
// point log to a crash costs replaying cached points, not correctness, and
// the streaming hot path must not eat an fsync per point.
func (s *Server) journalPoint(j *Job, ev sim.PointEvent) {
	lease := j.leaseRef()
	if s.store == nil || lease == nil {
		return
	}
	raw, err := json.Marshal(ev)
	if err != nil {
		return
	}
	rec := jobstore.Record{Kind: jobstore.RecordPoint, Time: s.clock(), Point: raw}
	_ = s.store.Append(j.key, rec, false)
}

// journalRetrying records a transient failure awaiting backoff.
func (s *Server) journalRetrying(j *Job, attempt int, cause error) {
	lease := j.leaseRef()
	if s.store == nil || lease == nil {
		return
	}
	rec := jobstore.Record{
		Kind: jobstore.RecordRetrying, Time: s.clock(),
		Attempt: attempt, Error: cause.Error(), Class: string(ClassTransient),
	}
	if err := s.store.Append(j.key, rec, true); err != nil {
		log.Printf("serve: journaling retry of %s: %v", j.id, err)
	}
}

// journalFinish writes the job's terminal record and releases its lease —
// but only through the fencing gate: if the lease was lost to a peer (we
// stalled past the TTL and someone stole the job), the peer owns the
// terminal state and this replica stands down without writing.
func (s *Server) journalFinish(j *Job) {
	lease := j.takeLease()
	if s.store == nil || lease == nil {
		return
	}
	if j.fenceWasLost() || !s.store.Check(*lease) {
		s.fencingRejected.Add(1)
		log.Printf("serve: lease for job %s (key %s) lost to a peer; suppressing terminal record", j.id, j.key)
		return
	}
	st := j.Status()
	rec := jobstore.Record{
		Kind: jobstore.RecordTerminal, Time: s.clock(),
		State: string(st.State), Error: st.Error, Class: string(st.ErrorClass),
		Attempt: st.Attempts, Owner: s.replicaID, Fence: lease.Gen,
	}
	if err := s.store.Append(j.key, rec, true); err != nil {
		log.Printf("serve: journaling terminal state of %s: %v", j.id, err)
	}
	_ = s.store.Release(*lease)
}

// settle finishes the job and, if this call won the terminal transition,
// journals it. Every terminal path in the scheduler funnels through here
// (or settleSpec), so the journal sees exactly one terminal record per
// job lifetime.
func (s *Server) settle(j *Job, state State, err error, art *artifact) {
	if j.finish(state, err, art) {
		s.journalFinish(j)
	}
}

func (s *Server) settleSpec(j *Job, err error) {
	if j.finishSpec(err) {
		s.journalFinish(j)
	}
}

// reconcileArchiveLocked closes out a journal whose job finished and
// archived but crashed before the terminal record (the crash-after-archive
// row of the recovery matrix): the archived report is the result, so the
// journal just needs its terminal record. Caller holds s.mu; the job was
// served from the archive.
func (s *Server) reconcileArchiveLocked(j *Job) {
	if s.store == nil {
		return
	}
	info, ok, _ := s.store.Job(j.key, false)
	if !ok || info.Terminal() {
		return
	}
	lease, prev, err := s.store.Claim(j.key, s.replicaID, s.leaseTTL)
	if err != nil {
		return // a live peer is mid-run; its own fencing will settle it
	}
	rec := jobstore.Record{
		Kind: jobstore.RecordTerminal, Time: s.clock(),
		State: string(StateDone), Attempt: info.Attempts, Owner: s.replicaID, Fence: lease.Gen,
	}
	if err := s.store.Append(j.key, rec, true); err != nil {
		log.Printf("serve: reconciling archived job %s: %v", j.id, err)
	}
	_ = s.store.Release(lease)
	s.noteAdoption(prev)
}

// recoverJobs is the startup scan (-recover): every non-terminal journal
// whose lease is expired, absent, or our own pre-restart self is claimed
// and requeued, with attempts and point history restored.
func (s *Server) recoverJobs() {
	infos, err := s.store.List(false)
	if err != nil {
		log.Printf("serve: recovery scan: %v", err)
		return
	}
	for _, info := range infos {
		if !info.Terminal() {
			s.tryAdopt(info.Key)
		}
	}
}

// sweepOrphans is the periodic recovery pass: any job whose owner stopped
// renewing (SIGKILL, OOM, node loss) has its lease expire and gets
// requeued here by a surviving replica.
func (s *Server) sweepOrphans() {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return // a draining replica takes no new work
	}
	infos, err := s.store.List(false)
	if err != nil {
		return
	}
	for _, info := range infos {
		if !info.Terminal() {
			s.tryAdopt(info.Key)
		}
	}
}

// tryAdopt claims and requeues one journaled job, unless it is already
// local, a live peer holds it, or the queue has no room (the next sweep
// retries). Crash-after-archive jobs are closed out from the archive
// without re-running.
func (s *Server) tryAdopt(key string) {
	s.mu.Lock()
	_, local := s.byKey[key]
	closed := s.closed
	s.mu.Unlock()
	if local || closed {
		return
	}
	if holder, ok, _ := s.store.Holder(key); ok && !holder.Expired() && holder.Owner != s.replicaID {
		return // a live peer owns it
	}
	info, ok, err := s.store.Job(key, true)
	if err != nil || !ok || info.Terminal() {
		return
	}
	lease, prev, err := s.store.Claim(key, s.replicaID, s.leaseTTL)
	if err != nil {
		return // raced with a peer; whoever claimed it runs it
	}

	// Crash-after-archive: the result exists, only the terminal record is
	// missing. Materialize the archived job locally and close the journal.
	if raw, hit := s.cache.Get(key); hit {
		var art artifact
		if jerr := json.Unmarshal(raw, &art); jerr == nil {
			if _, ok := s.registerAdopted(info, JobSpec{}, nil, &art); !ok {
				_ = s.store.Release(lease)
				return
			}
			rec := jobstore.Record{
				Kind: jobstore.RecordTerminal, Time: s.clock(),
				State: string(StateDone), Attempt: info.Attempts, Owner: s.replicaID, Fence: lease.Gen,
			}
			_ = s.store.Append(key, rec, true)
			_ = s.store.Release(lease)
			s.noteAdoption(prev)
			return
		}
		s.archiveCorrupt.Add(1)
		log.Printf("serve: discarding corrupt archive entry for key %s (re-running job)", key)
	}

	var spec JobSpec
	if err := json.Unmarshal(info.Spec, &spec); err != nil || spec.Validate() != nil {
		// The journal's spec no longer parses (an old schema, a torn
		// record): fail it visibly rather than requeueing it forever.
		rec := jobstore.Record{
			Kind: jobstore.RecordTerminal, Time: s.clock(),
			State: string(StateFailed), Error: "recovered spec no longer valid", Class: string(ClassSpec),
			Attempt: info.Attempts, Owner: s.replicaID, Fence: lease.Gen,
		}
		_ = s.store.Append(key, rec, true)
		_ = s.store.Release(lease)
		return
	}
	if _, ok := s.registerAdopted(info, spec, &lease, nil); !ok {
		_ = s.store.Release(lease)
		return
	}
	s.noteAdoption(prev)
}

// registerAdopted builds a local Job from a journaled one — identity (the
// pre-crash job ID keeps working), client, attempts and point history all
// preserved — registers it, and either completes it from the archived
// artifact (crash-after-archive) or queues it for execution.
func (s *Server) registerAdopted(info jobstore.JobInfo, spec JobSpec, lease *jobstore.Lease, archived *artifact) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, false
	}
	if _, dup := s.byKey[info.Key]; dup {
		return nil, false
	}
	if archived == nil && s.fq.len() >= s.cfg.QueueDepth {
		return nil, false // no room; the next sweep retries
	}
	j := s.newJobLocked(spec, info.Key, info.Client)
	if info.ID != "" {
		j.id = info.ID
		s.bumpNextIDLocked(info.ID)
	}
	if !info.Created.IsZero() {
		j.created = info.Created
	}
	j.replica = s.replicaID
	j.adoptInfo(info)
	s.registerLocked(j)
	if archived != nil {
		j.completeFromArchive(*archived)
		return j, true
	}
	j.lease = lease
	s.fq.push(j)
	s.cond.Broadcast()
	return j, true
}

// bumpNextIDLocked keeps freshly-assigned IDs from colliding with a
// recovered job's: after adopting "job-<replica>-<n>" for our own replica
// id, the counter resumes past n.
func (s *Server) bumpNextIDLocked(id string) {
	prefix := "job-" + s.replicaID + "-"
	if !strings.HasPrefix(id, prefix) {
		return
	}
	if n, err := strconv.Atoi(id[len(prefix):]); err == nil && n > s.nextID {
		s.nextID = n
	}
}

// leaseLoop renews the leases of every local non-terminal job (a live
// replica never loses its jobs to the sweep) and periodically sweeps the
// store for orphans. It runs until bgStop — which Shutdown closes only
// after the workers drain, so leases stay fresh while jobs finish.
func (s *Server) leaseLoop() {
	defer s.bgWg.Done()
	renewEvery := s.leaseTTL / 3
	if renewEvery < 5*time.Millisecond {
		renewEvery = 5 * time.Millisecond
	}
	renew := time.NewTicker(renewEvery)
	defer renew.Stop()
	sweep := time.NewTicker(s.sweepInterval)
	defer sweep.Stop()
	for {
		select {
		case <-renew.C:
			s.renewLeases()
		case <-sweep.C:
			s.sweepOrphans()
		case <-s.bgStop:
			return
		}
	}
}

// renewLeases extends every local non-terminal job's lease. A renewal that
// comes back ErrLost means we stalled past the TTL and a peer took the
// job: mark the fence lost so our terminal record is suppressed.
func (s *Server) renewLeases() {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil && !j.State().Terminal() && j.leaseRef() != nil && !j.fenceWasLost() {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	for _, j := range jobs {
		lease := j.leaseRef()
		if lease == nil {
			continue
		}
		l := *lease
		if err := s.store.Renew(&l, s.leaseTTL); errors.Is(err, jobstore.ErrLost) {
			j.markFenceLost()
			log.Printf("serve: lease for job %s lost during renewal; a peer owns it now", j.id)
		}
	}
}

// infoStatus renders a journaled job — one owned by a peer replica, or
// finished before a restart — as a wire Status. Total comes from the
// artifact when archived, else the last streamed point's view.
func (s *Server) infoStatus(info jobstore.JobInfo) Status {
	st := Status{
		ID:       info.ID,
		Key:      info.Key,
		State:    State(info.State),
		Error:    info.Error,
		Attempts: info.Attempts,
		Done:     info.PointCount,
		Created:  info.Created,
		Replica:  info.Owner,
	}
	if info.Class != "" {
		st.ErrorClass = ErrorClass(info.Class)
	}
	if holder, ok, _ := s.store.Holder(info.Key); ok {
		st.Replica = holder.Owner
	}
	if st.State == StateDone {
		if art, ok := s.archivedArtifact(info.Key); ok {
			st.Total = art.Points
			st.Done = art.Points
			st.HasReport = len(art.Report) > 0
		}
	}
	return st
}

// archivedArtifact fetches and decodes a job's archived artifact.
func (s *Server) archivedArtifact(key string) (*artifact, bool) {
	raw, ok := s.cache.Get(key)
	if !ok {
		return nil, false
	}
	var art artifact
	if err := json.Unmarshal(raw, &art); err != nil {
		return nil, false
	}
	return &art, true
}

// storeJob finds a journaled job by ID — the cold path behind job URLs
// that survived a restart or belong to a peer replica.
func (s *Server) storeJob(id string) (jobstore.JobInfo, bool) {
	if s.store == nil {
		return jobstore.JobInfo{}, false
	}
	info, ok, err := s.store.ByID(id)
	if err != nil || !ok {
		return jobstore.JobInfo{}, false
	}
	return info, true
}
