package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"turnmodel/internal/sim"
)

// fastRetry makes backoff negligible so retry tests run in milliseconds.
func fastRetry(cfg Config) Config {
	cfg.RetryBase = time.Millisecond
	cfg.RetryMax = 5 * time.Millisecond
	return cfg
}

// TestFairQueueRoundRobin pins the queue discipline: clients are served
// round-robin regardless of how many jobs each has pending, and a drained
// client re-enters the rotation at the tail.
func TestFairQueueRoundRobin(t *testing.T) {
	q := newFairQueue()
	mk := func(client, id string) *Job { return &Job{id: id, client: client} }
	for _, j := range []*Job{
		mk("a", "a1"), mk("a", "a2"), mk("a", "a3"),
		mk("b", "b1"),
		mk("c", "c1"), mk("c", "c2"),
	} {
		q.push(j)
	}
	if q.len() != 6 || q.clientLen("a") != 3 || q.clientLen("b") != 1 {
		t.Fatalf("len = %d, a = %d, b = %d", q.len(), q.clientLen("a"), q.clientLen("b"))
	}
	var order []string
	for j := q.pop(); j != nil; j = q.pop() {
		order = append(order, j.id)
	}
	want := []string{"a1", "b1", "c1", "a2", "c2", "a3"}
	if got := strings.Join(order, ","); got != strings.Join(want, ",") {
		t.Fatalf("pop order = %s, want %s", got, strings.Join(want, ","))
	}
	if q.len() != 0 || q.pop() != nil {
		t.Fatal("queue not empty after draining")
	}
	// A drained client re-enters cleanly.
	q.push(mk("b", "b2"))
	if j := q.pop(); j == nil || j.id != "b2" {
		t.Fatalf("pop after re-push = %v", j)
	}
}

// TestFairSchedulingAcrossClients checks the end-to-end discipline: with
// one job slot, a client that floods the queue does not starve another
// client's single job.
func TestFairSchedulingAcrossClients(t *testing.T) {
	gate := newGateProbe()
	var mu sync.Mutex
	var order []string
	s := NewServer(Config{
		Workers:    2,
		JobWorkers: 1,
		QueueDepth: 8,
		Probe:      gate,
		RunHook: func(j *Job, attempt int) error {
			mu.Lock()
			order = append(order, j.Client())
			mu.Unlock()
			return nil
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Pin the only worker, then let client a flood the queue before
	// client b's single job arrives.
	warm := quickSpec()
	if _, _, err := s.Submit(warm, "warm"); err != nil {
		t.Fatal(err)
	}
	<-gate.started
	var jobs []*Job
	for i := 0; i < 3; i++ {
		spec := quickSpec()
		spec.Seed = int64(100 + i)
		j, _, err := s.Submit(spec, "a")
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	specB := quickSpec()
	specB.Seed = 200
	jb, _, err := s.Submit(specB, "b")
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, jb)
	close(gate.release)
	for _, j := range jobs {
		select {
		case <-j.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("job %s stuck in %s", j.ID(), j.State())
		}
	}
	mu.Lock()
	got := strings.Join(order, ",")
	mu.Unlock()
	// Round-robin: b's lone job runs right after a's first, not behind
	// a's whole backlog.
	if want := "warm,a,b,a,a"; got != want {
		t.Fatalf("dispatch order = %s, want %s", got, want)
	}
}

// TestRetryTransient checks a transiently-failing job is retried with
// backoff and succeeds, with the attempts and retry counters visible.
func TestRetryTransient(t *testing.T) {
	s, ts := newTestServer(t, fastRetry(Config{
		Workers: 2,
		RunHook: func(j *Job, attempt int) error {
			if attempt <= 2 {
				return Transient(errors.New("injected cache outage"))
			}
			return nil
		},
	}))
	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	j := waitDone(t, s, st.ID)
	if j.State() != StateDone {
		err, class := j.Err()
		t.Fatalf("state = %q (%s: %v), want done after retries", j.State(), class, err)
	}
	if got := j.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3", got)
	}
	if stats := s.Stats(); stats.Retries != 2 {
		t.Fatalf("retries counter = %d, want 2", stats.Retries)
	}
	// The final status carries no stale error from the failed attempts.
	if fin := j.Status(); fin.Error != "" || fin.ErrorClass != "" {
		t.Fatalf("done status still carries error %q (%s)", fin.Error, fin.ErrorClass)
	}
}

// TestRetryExhausted checks retries are bounded: a persistently transient
// failure lands in failed/transient after exactly 1+MaxRetries attempts.
func TestRetryExhausted(t *testing.T) {
	s, ts := newTestServer(t, fastRetry(Config{
		Workers:    2,
		MaxRetries: 2,
		RunHook: func(j *Job, attempt int) error {
			return Transient(errors.New("disk is on fire"))
		},
	}))
	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	j := waitDone(t, s, st.ID)
	if j.State() != StateFailed {
		t.Fatalf("state = %q, want failed", j.State())
	}
	err, class := j.Err()
	if class != ClassTransient || !IsTransient(err) {
		t.Fatalf("error class = %q (%v), want transient", class, err)
	}
	if got := j.Attempts(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (first + 2 retries)", got)
	}
}

// TestNonTransientNeverRetries checks the retry loop is reserved for
// infrastructure failures: a plain error fails the job on the first
// attempt with ClassInternal, no retries burned.
func TestNonTransientNeverRetries(t *testing.T) {
	var attempts int
	var mu sync.Mutex
	s2 := NewServer(fastRetry(Config{
		Workers: 2,
		RunHook: func(j *Job, attempt int) error {
			mu.Lock()
			attempts++
			mu.Unlock()
			return errors.New("not transient")
		},
	}))
	defer s2.Shutdown(context.Background())
	j, _, err := s2.Submit(quickSpec(), "c")
	if err != nil {
		t.Fatal(err)
	}
	<-j.Done()
	if j.State() != StateFailed {
		t.Fatalf("state = %q", j.State())
	}
	if _, class := j.Err(); class != ClassInternal {
		t.Fatalf("class = %q, want internal", class)
	}
	mu.Lock()
	got := attempts
	mu.Unlock()
	if got != 1 {
		t.Fatalf("attempts = %d, want 1 (no retry for non-transient)", got)
	}
}

// TestPanicIsolation checks a panicking job fails with a structured error
// while the process, the scheduler, and subsequent jobs all survive.
func TestPanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Config{
		Workers: 2,
		RunHook: func(j *Job, attempt int) error {
			if j.Spec().Seed == 666 {
				panic("boom")
			}
			return nil
		},
	})
	bad := quickSpec()
	bad.Seed = 666
	st, code := submit(t, ts, bad)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	j := waitDone(t, s, st.ID)
	if j.State() != StateFailed {
		t.Fatalf("state = %q, want failed", j.State())
	}
	err, class := j.Err()
	if class != ClassPanic {
		t.Fatalf("class = %q (%v), want panic", class, err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error = %#v", err)
	}
	if stats := s.Stats(); stats.Panics != 1 {
		t.Fatalf("panics counter = %d, want 1", stats.Panics)
	}
	// The worker that recovered the panic still serves the next job.
	good, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("post-panic submit = %d", code)
	}
	if j := waitDone(t, s, good.ID); j.State() != StateDone {
		t.Fatalf("post-panic job state = %q", j.State())
	}
}

// TestJobTimeout pins a job on a never-returning point and checks the
// per-job deadline fails it with ClassTimeout while the worker is freed
// for the next job.
func TestJobTimeout(t *testing.T) {
	gate := newGateProbe()
	s, ts := newTestServer(t, Config{
		Workers:    1,
		JobWorkers: 1,
		Probe:      gate,
		JobTimeout: 50 * time.Millisecond,
		StallGrace: 20 * time.Millisecond,
	})
	defer close(gate.release) // lets the abandoned runner drain at cleanup

	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	<-gate.started
	j := waitDone(t, s, st.ID)
	if j.State() != StateFailed {
		t.Fatalf("state = %q, want failed", j.State())
	}
	if err, class := j.Err(); class != ClassTimeout {
		t.Fatalf("class = %q (%v), want timeout", class, err)
	}
}

// TestSpecDeadlineCap pins the deadline resolution: the spec's timeout_s
// is honored below the server cap and clamped above it.
func TestSpecDeadlineCap(t *testing.T) {
	cases := []struct {
		spec float64
		cap  time.Duration
		want time.Duration
	}{
		{0, 0, 0},
		{0, time.Minute, time.Minute},
		{2, time.Minute, 2 * time.Second},
		{120, time.Minute, time.Minute},
		{2, 0, 2 * time.Second},
	}
	for _, tc := range cases {
		s := JobSpec{TimeoutS: tc.spec}
		if got := s.deadline(tc.cap); got != tc.want {
			t.Errorf("deadline(timeout_s=%g, cap=%v) = %v, want %v", tc.spec, tc.cap, got, tc.want)
		}
	}
}

// TestLimiter pins the token bucket: burst, refill, retry-after, prune.
func TestLimiter(t *testing.T) {
	now := time.Unix(0, 0)
	clock := func() time.Time { return now }
	l := newLimiter(2, 2, clock) // 2/s, burst 2
	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("c"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.allow("c")
	if ok {
		t.Fatal("over-burst request allowed")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retryAfter = %v", retry)
	}
	now = now.Add(500 * time.Millisecond) // refills one token at 2/s
	if ok, _ := l.allow("c"); !ok {
		t.Fatal("request after refill refused")
	}
	// Other clients are independent.
	if ok, _ := l.allow("d"); !ok {
		t.Fatal("fresh client refused")
	}
	if l.size() != 2 {
		t.Fatalf("size = %d", l.size())
	}
	// Idle, refilled buckets are pruned; active ones are kept.
	now = now.Add(time.Hour)
	l.prune(10 * time.Minute)
	if l.size() != 0 {
		t.Fatalf("size after prune = %d", l.size())
	}
	// nil limiter (disabled) allows everything.
	var nl *limiter
	if ok, _ := nl.allow("x"); !ok {
		t.Fatal("nil limiter refused")
	}
	nl.prune(0)
}

// TestSubmitRateLimit checks per-client admission control over HTTP: an
// over-rate client gets 429 with Retry-After while other clients and
// other endpoints are unaffected.
func TestSubmitRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, SubmitRate: 0.01, SubmitBurst: 1})
	post := func(client string, seed int64) *http.Response {
		spec := quickSpec()
		spec.Seed = seed
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
		req.Header.Set("X-Client-Id", client)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	r1 := post("alice", 1)
	io.Copy(io.Discard, r1.Body)
	r1.Body.Close()
	if r1.StatusCode != http.StatusCreated {
		t.Fatalf("first submit = %d", r1.StatusCode)
	}
	r2 := post("alice", 2)
	raw, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if r2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit = %d, want 429", r2.StatusCode)
	}
	ra := r2.Header.Get("Retry-After")
	if secs, err := strconv.Atoi(ra); err != nil || secs < 1 {
		t.Fatalf("Retry-After = %q, want a positive integer", ra)
	}
	var body map[string]string
	if err := json.Unmarshal(raw, &body); err != nil || body["error"] == "" {
		t.Fatalf("429 body = %s", raw)
	}
	// Another client still gets in.
	r3 := post("bob", 3)
	io.Copy(io.Discard, r3.Body)
	r3.Body.Close()
	if r3.StatusCode != http.StatusCreated {
		t.Fatalf("other client submit = %d", r3.StatusCode)
	}
}

// TestQueueFullRetryAfter checks the 503 contract: a JSON error body plus
// a Retry-After header derived from queue depth and recent job duration.
func TestQueueFullRetryAfter(t *testing.T) {
	gate := newGateProbe()
	s, ts := newTestServer(t, Config{Workers: 1, JobWorkers: 1, QueueDepth: 2, Probe: gate})
	defer close(gate.release)

	// Seed the duration history so the estimate has something to chew on:
	// recent jobs around 10s each, 2 queued -> (2+1)*10s/1 worker = 30s.
	for i := 0; i < 8; i++ {
		s.observeDuration(10 * time.Second)
	}
	first := quickSpec()
	first.Seed = 1001
	if _, code := submit(t, ts, first); code != http.StatusCreated {
		t.Fatalf("first submit = %d", code)
	}
	<-gate.started
	// Running job occupies the worker; fill the 2-deep queue.
	for _, seed := range []int64{2000, 2001} {
		spec := quickSpec()
		spec.Seed = seed
		if _, code := submit(t, ts, spec); code != http.StatusCreated {
			t.Fatalf("queued submit = %d", code)
		}
	}
	over := quickSpec()
	over.Seed = 3000
	body, _ := json.Marshal(over)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d, want 503", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After = %q, want integral seconds", ra)
	}
	if secs != 30 {
		t.Fatalf("Retry-After = %d, want 30 ((2 queued + 1) x 10s mean / 1 worker)", secs)
	}
	var payload struct {
		Error      string `json:"error"`
		RetryAfter int    `json:"retry_after_s"`
	}
	if err := json.Unmarshal(raw, &payload); err != nil {
		t.Fatalf("503 body is not JSON: %s", raw)
	}
	if payload.Error == "" || payload.RetryAfter != secs {
		t.Fatalf("503 body = %s, want error text and retry_after_s = %d", raw, secs)
	}
}

// TestRetryAfterClamps pins the estimate's bounds: 1s with no history,
// never above a minute.
func TestRetryAfterClamps(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	if got := s.RetryAfterQueueFull(); got != time.Second {
		t.Fatalf("no-history estimate = %v, want 1s", got)
	}
	for i := 0; i < 40; i++ {
		s.observeDuration(10 * time.Minute)
	}
	if got := s.RetryAfterQueueFull(); got != time.Minute {
		t.Fatalf("huge estimate = %v, want clamped to 1m", got)
	}
}

// TestSSEHeartbeatAndDeadClientReap checks an idle stream emits heartbeat
// comment frames, and a client that attaches then vanishes does not leak
// its subscription.
func TestSSEHeartbeatAndDeadClientReap(t *testing.T) {
	gate := newGateProbe()
	s, ts := newTestServer(t, Config{
		Workers:      1,
		JobWorkers:   1,
		Probe:        gate,
		SSEHeartbeat: 10 * time.Millisecond,
	})
	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}
	<-gate.started // running, but no points: the stream is idle

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	hbSeen := false
	deadline := time.After(5 * time.Second)
	for !hbSeen {
		select {
		case <-deadline:
			t.Fatal("no heartbeat frame within 5s")
		default:
		}
		if !sc.Scan() {
			t.Fatalf("stream ended before heartbeat: %v", sc.Err())
		}
		if strings.HasPrefix(sc.Text(), ": hb") {
			hbSeen = true
		}
	}
	j, _ := s.Job(st.ID)
	if got := j.subscriberCount(); got != 1 {
		t.Fatalf("subscribers while attached = %d, want 1", got)
	}

	// The client vanishes mid-stream; the handler must unsubscribe.
	resp.Body.Close()
	reaped := false
	for waited := 0; waited < 200; waited++ {
		if j.subscriberCount() == 0 {
			reaped = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !reaped {
		t.Fatalf("vanished client still subscribed (%d)", j.subscriberCount())
	}
	close(gate.release)
	waitDone(t, s, st.ID)
}

// TestSSERetryEvent checks a subscriber attached across a transient
// failure sees the stream restart: an "event: retry" marker, then the new
// attempt's points from the top.
func TestSSERetryEvent(t *testing.T) {
	synthetic := sim.PointEvent{Done: 1, Total: 4}
	// Attempt 1 publishes a point, then blocks until the SSE client has
	// received it (the test closes consumed), then fails transiently —
	// so the subscriber deterministically straddles the retry.
	consumed := make(chan struct{})
	s, ts := newTestServer(t, fastRetry(Config{
		Workers: 2,
		RunHook: func(j *Job, attempt int) error {
			if attempt == 1 {
				j.publish(attempt, synthetic)
				<-consumed
				return Transient(errors.New("mid-stream outage"))
			}
			return nil
		},
	}))
	st, code := submit(t, ts, quickSpec())
	if code != http.StatusCreated {
		t.Fatalf("submit = %d", code)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var names []string
	points, released := 0, false
	sawRetry := false
	cur := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur = strings.TrimPrefix(line, "event: ")
		case line == "" && cur != "":
			names = append(names, cur)
			switch cur {
			case "point":
				points++
				if !released {
					released = true
					close(consumed) // first point landed; let attempt 1 fail
				}
			case "retry":
				sawRetry = true
				points = 0 // stream restarted
			}
			if cur == "done" {
				cur = ""
				goto finished
			}
			cur = ""
		}
	}
finished:
	waitDone(t, s, st.ID)
	if !sawRetry {
		t.Fatalf("no retry event in stream: %v", names)
	}
	if points != 4 {
		t.Fatalf("points after retry = %d, want the full 4: %v", points, names)
	}
	if len(names) == 0 || names[len(names)-1] != "done" {
		t.Fatalf("stream did not end in done: %v", names)
	}
}

// TestReadyzDrain checks readiness flips to 503 once shutdown begins
// while liveness stays 200.
func TestReadyzDrain(t *testing.T) {
	s := NewServer(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz before drain = %d", code)
	}
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after drain = %d, want 200 (process still serves)", code)
	}
}

// TestStatsScheduler checks /v1/stats surfaces the scheduler counters and
// the cache's degradation flag.
func TestStatsScheduler(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, JobWorkers: 3})
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var stats struct {
		Scheduler SchedulerStats `json:"scheduler"`
		Cache     map[string]any `json:"cache"`
	}
	if err := json.Unmarshal(raw, &stats); err != nil {
		t.Fatalf("stats JSON: %v\n%s", err, raw)
	}
	if stats.Scheduler.Workers != 3 {
		t.Fatalf("scheduler.workers = %d, want 3", stats.Scheduler.Workers)
	}
	if _, ok := stats.Cache["disk_degraded"]; !ok {
		t.Fatalf("cache stats missing disk_degraded: %s", raw)
	}
}

// TestCancelWhileRetrying checks a job canceled during its backoff wait
// lands in canceled promptly instead of waiting out the timer.
func TestCancelWhileRetrying(t *testing.T) {
	retrying := make(chan struct{})
	var once sync.Once
	s := NewServer(Config{
		Workers:   2,
		RetryBase: time.Hour, // cancellation, not the timer, must end the wait
		RetryMax:  time.Hour,
		RunHook: func(j *Job, attempt int) error {
			once.Do(func() { close(retrying) })
			return Transient(errors.New("always down"))
		},
	})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	j, _, err := s.Submit(quickSpec(), "c")
	if err != nil {
		t.Fatal(err)
	}
	<-retrying
	for j.State() != StateRetrying {
		time.Sleep(time.Millisecond)
	}
	j.Cancel()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("canceled retrying job stuck in %s", j.State())
	}
	if j.State() != StateCanceled {
		t.Fatalf("state = %q, want canceled", j.State())
	}
}

// BenchmarkServeCachedPointConcurrent measures the warm-archive round trip
// under 8 concurrent clients — the benchgate absolute ceiling pins the
// scheduler's submit-to-dispatch overhead (fair queue, limiter, dedup)
// at cache speed.
func BenchmarkServeCachedPointConcurrent(b *testing.B) {
	s := NewServer(Config{Workers: 2})
	defer s.Shutdown(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := quickSpec()
	body, _ := json.Marshal(spec)
	warm, _, err := s.Submit(spec, "warm")
	if err != nil {
		b.Fatal(err)
	}
	<-warm.Done()
	if warm.State() != StateDone {
		b.Fatalf("warmup job state = %q", warm.State())
	}

	var clientN int64
	var mu sync.Mutex
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		clientN++
		client := fmt.Sprintf("bench-%d", clientN)
		mu.Unlock()
		for pb.Next() {
			req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
			req.Header.Set("X-Client-Id", client)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				b.Fatal(err)
			}
			var st Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
				b.Fatalf("submit status = %d", resp.StatusCode)
			}
			rep, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/report")
			if err != nil {
				b.Fatal(err)
			}
			io.Copy(io.Discard, rep.Body)
			rep.Body.Close()
			if rep.StatusCode != http.StatusOK {
				b.Fatalf("report status = %d", rep.StatusCode)
			}
		}
	})
}
