package topology

import "fmt"

// Mesh is an n-dimensional mesh: k_0 x k_1 x ... x k_{n-1} nodes where two
// nodes are neighbors iff their coordinates differ by one in exactly one
// dimension. Boundary nodes lack the channels that would leave the mesh.
type Mesh struct {
	grid
	name string
}

// NewMesh builds an n-dimensional mesh with the given per-dimension sizes.
// It panics if any size is below 2 (the paper requires k_i >= 2).
func NewMesh(sizes ...int) *Mesh {
	return &Mesh{grid: newGrid(sizes), name: "mesh(" + sizesString(sizes) + ")"}
}

// NewMesh2D builds the m x n two-dimensional mesh used in Sections 2-3,
// with dimension 0 as x (west/east) and dimension 1 as y (south/north).
func NewMesh2D(m, n int) *Mesh { return NewMesh(m, n) }

// Name implements Topology.
func (m *Mesh) Name() string { return m.name }

// Neighbor implements Topology. The second result is false when the channel
// would cross the mesh boundary.
func (m *Mesh) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	if !d.Valid(m.Dims()) {
		return 0, false
	}
	dim := d.Dim()
	x := m.coordAt(id, dim)
	nx := x + d.Delta()
	if nx < 0 || nx >= m.sizes[dim] {
		return 0, false
	}
	return id + NodeID(d.Delta()*m.strides[dim]), true
}

// Wraparound implements Topology; meshes have no wraparound channels.
func (m *Mesh) Wraparound(NodeID, Direction) bool { return false }

// MinimalDirections implements Topology.
func (m *Mesh) MinimalDirections(from, to NodeID) []Direction {
	var ds []Direction
	for dim := 0; dim < m.Dims(); dim++ {
		f, t := m.coordAt(from, dim), m.coordAt(to, dim)
		switch {
		case t < f:
			ds = append(ds, Dir(dim, false))
		case t > f:
			ds = append(ds, Dir(dim, true))
		}
	}
	return ds
}

// AppendMinimalDirections implements MinimalAppender: the allocation-free
// form of MinimalDirections. Hypercube inherits it; the bitwise override
// of MinimalDirections produces the same directions in the same order for
// k_i = 2, so the contract holds for both.
func (m *Mesh) AppendMinimalDirections(dst []Direction, from, to NodeID) []Direction {
	for dim := 0; dim < m.Dims(); dim++ {
		f, t := m.coordAt(from, dim), m.coordAt(to, dim)
		switch {
		case t < f:
			dst = append(dst, Dir(dim, false))
		case t > f:
			dst = append(dst, Dir(dim, true))
		}
	}
	return dst
}

// Distance implements Topology (Manhattan distance).
func (m *Mesh) Distance(from, to NodeID) int {
	d := 0
	for dim := 0; dim < m.Dims(); dim++ {
		f, t := m.coordAt(from, dim), m.coordAt(to, dim)
		if f > t {
			d += f - t
		} else {
			d += t - f
		}
	}
	return d
}

// Channels implements Topology.
func (m *Mesh) Channels() []Channel {
	var chs []Channel
	for id := NodeID(0); int(id) < m.nodes; id++ {
		for _, d := range Directions(m.Dims()) {
			if to, ok := m.Neighbor(id, d); ok {
				chs = append(chs, Channel{From: id, To: to, Dir: d})
			}
		}
	}
	return chs
}

var _ Topology = (*Mesh)(nil)

// Hypercube is a binary n-cube: the n-dimensional mesh with k_i = 2 for all
// i, equivalently the 2-ary n-cube. Node IDs coincide with the binary
// addresses used by the e-cube and p-cube routing algorithms: bit i of the
// address is coordinate x_i.
type Hypercube struct {
	Mesh
	n int
}

// NewHypercube builds a binary n-cube with 2^n nodes.
func NewHypercube(n int) *Hypercube {
	if n < 1 {
		panic("topology: hypercube needs n >= 1")
	}
	if n > 30 {
		panic("topology: hypercube dimension too large")
	}
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = 2
	}
	h := &Hypercube{Mesh: *NewMesh(sizes...), n: n}
	h.Mesh.name = fmt.Sprintf("hypercube(%d)", n)
	return h
}

// Bits returns the node's binary address; bit i is coordinate x_i.
// For hypercubes the dense node index already is that address.
func (h *Hypercube) Bits(id NodeID) uint { return uint(id) }

// NodeFromBits converts a binary address to a NodeID.
func (h *Hypercube) NodeFromBits(bits uint) NodeID { return NodeID(bits) }

// Distance is the Hamming distance between the two addresses.
func (h *Hypercube) Distance(from, to NodeID) int {
	x := uint(from) ^ uint(to)
	d := 0
	for x != 0 {
		x &= x - 1
		d++
	}
	return d
}

// MinimalDirections lists one productive direction per differing address
// bit, ordered by increasing dimension.
func (h *Hypercube) MinimalDirections(from, to NodeID) []Direction {
	var ds []Direction
	diff := uint(from) ^ uint(to)
	for dim := 0; dim < h.n; dim++ {
		if diff&(1<<uint(dim)) != 0 {
			ds = append(ds, Dir(dim, uint(to)&(1<<uint(dim)) != 0))
		}
	}
	return ds
}

var _ Topology = (*Hypercube)(nil)
