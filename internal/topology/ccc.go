package topology

import "fmt"

// CCC is a cube-connected cycles network — the last of the topologies
// Section 7 names for future application of the turn model. CCC(n)
// replaces every corner of a binary n-cube with a ring of n nodes; node
// (c, p) is position p of the ring at corner c. Each node has degree
// three: ring successor, ring predecessor, and the cube edge to corner
// c XOR 2^p.
//
// The directions map onto two axes:
//
//	axis 0: the cube ("lateral") edge — positive sets bit p of the
//	        corner, negative clears it, so exactly one of the two
//	        exists at every node;
//	axis 1: the ring — positive advances p (mod n), negative retreats.
//
// Coordinates are {corner, position}. Shortest-path distances are exact:
// they are precomputed by breadth-first search at construction, which
// bounds practical sizes to n <= 7 (896 nodes).
type CCC struct {
	n     int
	nodes int
	dist  []int16
}

// NewCCC builds a cube-connected cycles network of order n.
func NewCCC(n int) *CCC {
	if n < 3 {
		panic("topology: CCC needs n >= 3 (smaller rings degenerate)")
	}
	if n > 7 {
		panic("topology: CCC larger than n=7 (896 nodes) not supported")
	}
	c := &CCC{n: n, nodes: (1 << uint(n)) * n}
	c.dist = make([]int16, c.nodes*c.nodes)
	for i := range c.dist {
		c.dist[i] = -1
	}
	queue := make([]NodeID, 0, c.nodes)
	for src := NodeID(0); int(src) < c.nodes; src++ {
		base := int(src) * c.nodes
		c.dist[base+int(src)] = 0
		queue = queue[:0]
		queue = append(queue, src)
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, d := range Directions(2) {
				nb, ok := c.Neighbor(cur, d)
				if !ok {
					continue
				}
				if c.dist[base+int(nb)] < 0 {
					c.dist[base+int(nb)] = c.dist[base+int(cur)] + 1
					queue = append(queue, nb)
				}
			}
		}
	}
	return c
}

// Name implements Topology.
func (c *CCC) Name() string { return fmt.Sprintf("ccc(%d)", c.n) }

// Order reports n, the underlying cube dimension and ring length.
func (c *CCC) Order() int { return c.n }

// Dims implements Topology: the cube axis and the ring axis.
func (c *CCC) Dims() int { return 2 }

// Size implements Topology: 2^n corners on axis 0, n positions on axis 1.
func (c *CCC) Size(dim int) int {
	switch dim {
	case 0:
		return 1 << uint(c.n)
	case 1:
		return c.n
	}
	panic(fmt.Sprintf("topology: ccc has no dimension %d", dim))
}

// Nodes implements Topology.
func (c *CCC) Nodes() int { return c.nodes }

// Coord implements Topology: {corner, position}.
func (c *CCC) Coord(id NodeID) Coord {
	if id < 0 || int(id) >= c.nodes {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	return Coord{int(id) / c.n, int(id) % c.n}
}

// ID implements Topology.
func (c *CCC) ID(co Coord) NodeID {
	if len(co) != 2 || co[0] < 0 || co[0] >= 1<<uint(c.n) || co[1] < 0 || co[1] >= c.n {
		panic(fmt.Sprintf("topology: %v is not a ccc(%d) coordinate", co, c.n))
	}
	return NodeID(co[0]*c.n + co[1])
}

// Corner and Position decode a node without allocating.
func (c *CCC) Corner(id NodeID) int   { return int(id) / c.n }
func (c *CCC) Position(id NodeID) int { return int(id) % c.n }

// Neighbor implements Topology.
func (c *CCC) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	corner, pos := c.Corner(id), c.Position(id)
	switch d {
	case Dir(0, true): // set bit pos
		if corner&(1<<uint(pos)) != 0 {
			return 0, false
		}
		return c.ID(Coord{corner | 1<<uint(pos), pos}), true
	case Dir(0, false): // clear bit pos
		if corner&(1<<uint(pos)) == 0 {
			return 0, false
		}
		return c.ID(Coord{corner &^ (1 << uint(pos)), pos}), true
	case Dir(1, true):
		return c.ID(Coord{corner, (pos + 1) % c.n}), true
	case Dir(1, false):
		return c.ID(Coord{corner, (pos - 1 + c.n) % c.n}), true
	}
	return 0, false
}

// Wraparound implements Topology: the ring edges that close each cycle.
func (c *CCC) Wraparound(id NodeID, d Direction) bool {
	pos := c.Position(id)
	switch d {
	case Dir(1, true):
		return pos == c.n-1
	case Dir(1, false):
		return pos == 0
	}
	return false
}

// Distance implements Topology (exact, from the precomputed BFS).
func (c *CCC) Distance(from, to NodeID) int {
	return int(c.dist[int(from)*c.nodes+int(to)])
}

// MinimalDirections implements Topology: the directions whose neighbor is
// strictly closer to the destination.
func (c *CCC) MinimalDirections(from, to NodeID) []Direction {
	if from == to {
		return nil
	}
	var ds []Direction
	for _, d := range Directions(2) {
		if nb, ok := c.Neighbor(from, d); ok && c.Distance(nb, to) == c.Distance(from, to)-1 {
			ds = append(ds, d)
		}
	}
	return ds
}

// Channels implements Topology.
func (c *CCC) Channels() []Channel {
	var chs []Channel
	for id := NodeID(0); int(id) < c.nodes; id++ {
		for _, d := range Directions(2) {
			if to, ok := c.Neighbor(id, d); ok {
				chs = append(chs, Channel{From: id, To: to, Dir: d, Wrap: c.Wraparound(id, d)})
			}
		}
	}
	return chs
}

var _ Topology = (*CCC)(nil)
