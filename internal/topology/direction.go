package topology

import "fmt"

// Direction identifies one of the 2n virtual directions in an n-dimensional
// network. Direction 2*i is the negative direction of dimension i and
// 2*i+1 is the positive direction. In the 2D-mesh terminology of the paper,
// dimension 0 is x and dimension 1 is y, so West=0, East=1, South=2, North=3.
type Direction int

// The four 2D-mesh directions used throughout the paper.
const (
	West  Direction = 0 // -x
	East  Direction = 1 // +x
	South Direction = 2 // -y
	North Direction = 3 // +y
)

// Invalid is the zero-information direction, used where "no direction"
// is meaningful (for example the injection pseudo-port).
const Invalid Direction = -1

// Dir constructs the Direction for the given dimension and sign.
func Dir(dim int, positive bool) Direction {
	d := Direction(2 * dim)
	if positive {
		d++
	}
	return d
}

// Dim reports the dimension the direction travels along.
func (d Direction) Dim() int { return int(d) / 2 }

// Positive reports whether the direction increases its coordinate.
func (d Direction) Positive() bool { return int(d)%2 == 1 }

// Opposite returns the 180-degree reversal of d.
func (d Direction) Opposite() Direction { return d ^ 1 }

// Delta is the per-hop coordinate change along the direction's dimension:
// +1 for positive directions and -1 for negative directions.
func (d Direction) Delta() int {
	if d.Positive() {
		return 1
	}
	return -1
}

// Valid reports whether d names a real direction in an n-dimensional network.
func (d Direction) Valid(n int) bool { return d >= 0 && int(d) < 2*n }

// String renders the direction using the paper's compass names for the
// first two dimensions and a generic +i/-i form beyond them.
func (d Direction) String() string {
	switch d {
	case West:
		return "west(-x)"
	case East:
		return "east(+x)"
	case South:
		return "south(-y)"
	case North:
		return "north(+y)"
	case Invalid:
		return "invalid"
	}
	if d < 0 {
		return fmt.Sprintf("direction(%d)", int(d))
	}
	if d.Positive() {
		return fmt.Sprintf("+%d", d.Dim())
	}
	return fmt.Sprintf("-%d", d.Dim())
}

// Directions lists all 2n directions of an n-dimensional network in
// increasing order, i.e. -0, +0, -1, +1, ...
func Directions(n int) []Direction {
	ds := make([]Direction, 2*n)
	for i := range ds {
		ds[i] = Direction(i)
	}
	return ds
}
