package topology

import "fmt"

// Hex is a hexagonal mesh — one of the topologies Section 7 names for
// future application of the turn model. Nodes sit on a triangular lattice
// in a parallelogram-shaped region of axial coordinates (a, b) with
// 0 <= a < A and 0 <= b < B; interior nodes have six neighbors.
//
// The six directions are modeled as three axes, so the generic direction
// machinery applies with Dims() == 3:
//
//	axis 0: +(1, 0)  "east"        / -(1, 0)  "west"
//	axis 1: +(0, 1)  "northeast"   / -(0, 1)  "southwest"
//	axis 2: +(1,-1)  "southeast"   / -(1,-1)  "northwest"
//
// Coordinates are reported as cube coordinates {a, b, -(a+b)} so that the
// vector length matches Dims; Size(2) reports the span of the third cube
// coordinate.
type Hex struct {
	a, b int
}

// NewHex builds an A x B hexagonal mesh.
func NewHex(a, b int) *Hex {
	if a < 2 || b < 2 {
		panic("topology: hex mesh needs A, B >= 2")
	}
	return &Hex{a: a, b: b}
}

// Name implements Topology.
func (h *Hex) Name() string { return fmt.Sprintf("hex(%dx%d)", h.a, h.b) }

// Dims implements Topology: three direction axes.
func (h *Hex) Dims() int { return 3 }

// Size implements Topology.
func (h *Hex) Size(dim int) int {
	switch dim {
	case 0:
		return h.a
	case 1:
		return h.b
	case 2:
		return h.a + h.b - 1 // span of -(a+b)
	}
	panic(fmt.Sprintf("topology: hex has no dimension %d", dim))
}

// Nodes implements Topology.
func (h *Hex) Nodes() int { return h.a * h.b }

// Coord implements Topology, returning cube coordinates {a, b, -(a+b)}.
func (h *Hex) Coord(id NodeID) Coord {
	if id < 0 || int(id) >= h.Nodes() {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	a := int(id) % h.a
	b := int(id) / h.a
	return Coord{a, b, -(a + b)}
}

// ID implements Topology. It accepts cube coordinates ({a, b, -(a+b)}).
func (h *Hex) ID(c Coord) NodeID {
	if len(c) != 3 || c[2] != -(c[0]+c[1]) {
		panic(fmt.Sprintf("topology: %v is not a hex cube coordinate", c))
	}
	if c[0] < 0 || c[0] >= h.a || c[1] < 0 || c[1] >= h.b {
		panic(fmt.Sprintf("topology: %v outside the %s region", c, h.Name()))
	}
	return NodeID(c[0] + h.a*c[1])
}

// axialDelta is the (da, db) move of each direction.
func hexDelta(d Direction) (int, int) {
	switch d {
	case Dir(0, true):
		return 1, 0
	case Dir(0, false):
		return -1, 0
	case Dir(1, true):
		return 0, 1
	case Dir(1, false):
		return 0, -1
	case Dir(2, true):
		return 1, -1
	case Dir(2, false):
		return -1, 1
	}
	return 0, 0
}

// Neighbor implements Topology.
func (h *Hex) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	if !d.Valid(3) {
		return 0, false
	}
	da, db := hexDelta(d)
	a := int(id)%h.a + da
	b := int(id)/h.a + db
	if a < 0 || a >= h.a || b < 0 || b >= h.b {
		return 0, false
	}
	return NodeID(a + h.a*b), true
}

// Wraparound implements Topology; hex meshes have no wraparounds.
func (h *Hex) Wraparound(NodeID, Direction) bool { return false }

// Distance implements Topology: the hexagonal (axial) distance
// (|da| + |db| + |da+db|) / 2.
func (h *Hex) Distance(from, to NodeID) int {
	da := int(to)%h.a - int(from)%h.a
	db := int(to)/h.a - int(from)/h.a
	return (abs(da) + abs(db) + abs(da+db)) / 2
}

// MinimalDirections implements Topology. A minimal hex route decomposes
// the offset into moves along at most two axes: the two same-sign axes
// when da and db agree in sign, or the diagonal axis 2 plus the remainder
// axis when they disagree.
func (h *Hex) MinimalDirections(from, to NodeID) []Direction {
	da := int(to)%h.a - int(from)%h.a
	db := int(to)/h.a - int(from)/h.a
	var ds []Direction
	switch {
	case da == 0 && db == 0:
		return nil
	case da >= 0 && db >= 0:
		if da > 0 {
			ds = append(ds, Dir(0, true))
		}
		if db > 0 {
			ds = append(ds, Dir(1, true))
		}
	case da <= 0 && db <= 0:
		if da < 0 {
			ds = append(ds, Dir(0, false))
		}
		if db < 0 {
			ds = append(ds, Dir(1, false))
		}
	case da > 0 && db < 0:
		// Axis 2 positive moves (1,-1) cover the overlap; any excess
		// travels on the longer axis.
		if da > -db {
			ds = append(ds, Dir(0, true))
		}
		if -db > da {
			ds = append(ds, Dir(1, false))
		}
		ds = append(ds, Dir(2, true))
	default: // da < 0 && db > 0
		if -da > db {
			ds = append(ds, Dir(0, false))
		}
		if db > -da {
			ds = append(ds, Dir(1, true))
		}
		ds = append(ds, Dir(2, false))
	}
	return ds
}

// Channels implements Topology.
func (h *Hex) Channels() []Channel {
	var chs []Channel
	for id := NodeID(0); int(id) < h.Nodes(); id++ {
		for _, d := range Directions(3) {
			if to, ok := h.Neighbor(id, d); ok {
				chs = append(chs, Channel{From: id, To: to, Dir: d})
			}
		}
	}
	return chs
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

var _ Topology = (*Hex)(nil)
