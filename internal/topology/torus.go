package topology

// Torus is a k-ary n-cube: like a mesh, but neighbor arithmetic is modular,
// which adds a wraparound channel at both ends of every row of every
// dimension. The paper treats these wraparound channels as a separate
// channel class incorporated in Step 5 of the turn model.
//
// This implementation allows the per-dimension radices to differ (a mixed-
// radix torus); NewKaryNCube builds the uniform k-ary n-cube of the paper.
type Torus struct {
	grid
	name string
}

// NewTorus builds a torus with the given per-dimension sizes.
func NewTorus(sizes ...int) *Torus {
	return &Torus{grid: newGrid(sizes), name: "torus(" + sizesString(sizes) + ")"}
}

// NewKaryNCube builds the uniform k-ary n-cube of Section 4.2.
func NewKaryNCube(k, n int) *Torus {
	sizes := make([]int, n)
	for i := range sizes {
		sizes[i] = k
	}
	return NewTorus(sizes...)
}

// Name implements Topology.
func (t *Torus) Name() string { return t.name }

// Neighbor implements Topology. Every direction has a channel; coordinates
// wrap modulo k_i. Note that for k_i == 2 the positive and negative
// channels connect the same pair of nodes, matching the definition that a
// 2-ary n-cube node has n neighbors.
func (t *Torus) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	if !d.Valid(t.Dims()) {
		return 0, false
	}
	dim := d.Dim()
	k := t.sizes[dim]
	x := t.coordAt(id, dim)
	nx := x + d.Delta()
	switch {
	case nx < 0:
		nx = k - 1
	case nx >= k:
		nx = 0
	}
	return id + NodeID((nx-x)*t.strides[dim]), true
}

// Wraparound implements Topology.
func (t *Torus) Wraparound(id NodeID, d Direction) bool {
	if !d.Valid(t.Dims()) {
		return false
	}
	dim := d.Dim()
	x := t.coordAt(id, dim)
	if d.Positive() {
		return x == t.sizes[dim]-1
	}
	return x == 0
}

// MinimalDirections implements Topology. In each dimension the direction
// with the shorter modular distance is productive; when the two ways around
// the ring are equally long, both directions are productive.
func (t *Torus) MinimalDirections(from, to NodeID) []Direction {
	var ds []Direction
	for dim := 0; dim < t.Dims(); dim++ {
		f, tt := t.coordAt(from, dim), t.coordAt(to, dim)
		if f == tt {
			continue
		}
		k := t.sizes[dim]
		up := ((tt-f)%k + k) % k // hops travelling positive
		down := k - up           // hops travelling negative
		switch {
		case up < down:
			ds = append(ds, Dir(dim, true))
		case down < up:
			ds = append(ds, Dir(dim, false))
		default:
			ds = append(ds, Dir(dim, false), Dir(dim, true))
		}
	}
	return ds
}

// AppendMinimalDirections implements MinimalAppender: the allocation-free
// form of MinimalDirections, with the identical direction order.
func (t *Torus) AppendMinimalDirections(dst []Direction, from, to NodeID) []Direction {
	for dim := 0; dim < t.Dims(); dim++ {
		f, tt := t.coordAt(from, dim), t.coordAt(to, dim)
		if f == tt {
			continue
		}
		k := t.sizes[dim]
		up := ((tt-f)%k + k) % k
		down := k - up
		switch {
		case up < down:
			dst = append(dst, Dir(dim, true))
		case down < up:
			dst = append(dst, Dir(dim, false))
		default:
			dst = append(dst, Dir(dim, false), Dir(dim, true))
		}
	}
	return dst
}

// Distance implements Topology (sum of per-dimension ring distances).
func (t *Torus) Distance(from, to NodeID) int {
	d := 0
	for dim := 0; dim < t.Dims(); dim++ {
		f, tt := t.coordAt(from, dim), t.coordAt(to, dim)
		k := t.sizes[dim]
		up := ((tt-f)%k + k) % k
		if down := k - up; down < up {
			d += down
		} else {
			d += up
		}
	}
	return d
}

// Channels implements Topology.
func (t *Torus) Channels() []Channel {
	var chs []Channel
	for id := NodeID(0); int(id) < t.nodes; id++ {
		for _, d := range Directions(t.Dims()) {
			to, _ := t.Neighbor(id, d)
			chs = append(chs, Channel{From: id, To: to, Dir: d, Wrap: t.Wraparound(id, d)})
		}
	}
	return chs
}

var _ Topology = (*Torus)(nil)
