package topology

import (
	"testing"
	"testing/quick"
)

func TestTorusNeighborsWrap(t *testing.T) {
	tr := NewKaryNCube(4, 2)
	if tr.Name() != "torus(4x4)" {
		t.Errorf("Name() = %q", tr.Name())
	}
	edge := tr.ID(Coord{3, 1})
	nb, ok := tr.Neighbor(edge, East)
	if !ok {
		t.Fatal("torus node missing east neighbor")
	}
	if !tr.Coord(nb).Equal(Coord{0, 1}) {
		t.Errorf("wrap east from {3,1} = %v, want {0,1}", tr.Coord(nb))
	}
	if !tr.Wraparound(edge, East) {
		t.Error("east channel from {3,1} not marked wraparound")
	}
	if tr.Wraparound(edge, West) {
		t.Error("west channel from {3,1} wrongly marked wraparound")
	}
	west0, _ := tr.Neighbor(tr.ID(Coord{0, 0}), West)
	if !tr.Coord(west0).Equal(Coord{3, 0}) {
		t.Errorf("wrap west from {0,0} = %v", tr.Coord(west0))
	}
}

func TestTorusEveryNodeHasAllChannels(t *testing.T) {
	tr := NewKaryNCube(3, 3)
	for id := NodeID(0); int(id) < tr.Nodes(); id++ {
		for _, d := range Directions(3) {
			if _, ok := tr.Neighbor(id, d); !ok {
				t.Fatalf("node %d lacks channel %v", id, d)
			}
		}
	}
	if got, want := len(tr.Channels()), tr.Nodes()*6; got != want {
		t.Errorf("channel count = %d, want %d", got, want)
	}
}

func TestTorusDistanceModular(t *testing.T) {
	tr := NewKaryNCube(8, 1)
	cases := []struct{ from, to, want int }{
		{0, 1, 1}, {0, 7, 1}, {0, 4, 4}, {0, 3, 3}, {0, 5, 3}, {2, 2, 0},
	}
	for _, c := range cases {
		if d := tr.Distance(NodeID(c.from), NodeID(c.to)); d != c.want {
			t.Errorf("Distance(%d,%d) = %d, want %d", c.from, c.to, d, c.want)
		}
	}
}

func TestTorusMinimalDirections(t *testing.T) {
	tr := NewKaryNCube(8, 1)
	// 0 -> 2: positive is shorter.
	if ds := tr.MinimalDirections(0, 2); len(ds) != 1 || ds[0] != East {
		t.Errorf("0->2 minimal dirs = %v", ds)
	}
	// 0 -> 6: negative is shorter (2 hops west vs 6 east).
	if ds := tr.MinimalDirections(0, 6); len(ds) != 1 || ds[0] != West {
		t.Errorf("0->6 minimal dirs = %v", ds)
	}
	// 0 -> 4: tie, both productive.
	if ds := tr.MinimalDirections(0, 4); len(ds) != 2 || ds[0] != West || ds[1] != East {
		t.Errorf("0->4 minimal dirs = %v", ds)
	}
	if ds := tr.MinimalDirections(3, 3); len(ds) != 0 {
		t.Errorf("self minimal dirs = %v", ds)
	}
}

func TestTorusWraparoundChannelCensus(t *testing.T) {
	// A k-ary n-cube has 2*n*k^(n-1) wraparound channels (2 per ring, k^(n-1) rings per dim).
	tr := NewKaryNCube(4, 2)
	wraps := 0
	for _, ch := range tr.Channels() {
		if ch.Wrap {
			wraps++
		}
	}
	if want := 2 * 2 * 4; wraps != want {
		t.Errorf("wraparound channels = %d, want %d", wraps, want)
	}
}

func TestTorusDistanceSymmetric(t *testing.T) {
	tr := NewKaryNCube(5, 2)
	err := quick.Check(func(a, b uint) bool {
		from := NodeID(a % 25)
		to := NodeID(b % 25)
		return tr.Distance(from, to) == tr.Distance(to, from)
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestTorusMinimalDirectionsShortenDistance(t *testing.T) {
	tr := NewKaryNCube(5, 3)
	err := quick.Check(func(a, b uint) bool {
		from := NodeID(a % 125)
		to := NodeID(b % 125)
		if from == to {
			return len(tr.MinimalDirections(from, to)) == 0
		}
		for _, d := range tr.MinimalDirections(from, to) {
			nb, ok := tr.Neighbor(from, d)
			if !ok || tr.Distance(nb, to) != tr.Distance(from, to)-1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestMeshMinimalDirectionsShortenDistance(t *testing.T) {
	m := NewMesh(4, 5, 3)
	err := quick.Check(func(a, b uint) bool {
		from := NodeID(a % 60)
		to := NodeID(b % 60)
		for _, d := range m.MinimalDirections(from, to) {
			nb, ok := m.Neighbor(from, d)
			if !ok || m.Distance(nb, to) != m.Distance(from, to)-1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestBinaryTorusDegree(t *testing.T) {
	// In a 2-ary n-cube both directions reach the same single neighbor,
	// matching "every node has n neighbors if k = 2".
	tr := NewKaryNCube(2, 3)
	for id := NodeID(0); int(id) < tr.Nodes(); id++ {
		neighbors := make(map[NodeID]bool)
		for _, d := range Directions(3) {
			nb, ok := tr.Neighbor(id, d)
			if !ok {
				t.Fatalf("missing neighbor for %v", d)
			}
			neighbors[nb] = true
		}
		if len(neighbors) != 3 {
			t.Fatalf("node %d has %d distinct neighbors, want 3", id, len(neighbors))
		}
	}
}
