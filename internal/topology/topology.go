// Package topology implements the direct-network topologies studied in
// Glass & Ni, "The Turn Model for Adaptive Routing": n-dimensional meshes,
// k-ary n-cubes (tori), and hypercubes. A topology is a set of nodes joined
// by pairs of unidirectional channels; every channel travels in one of the
// 2n virtual directions of the network.
package topology

import "fmt"

// NodeID is a dense node index in [0, Nodes()).
type NodeID int

// Coord is a node coordinate vector (x_0, x_1, ..., x_{n-1}).
type Coord []int

// Equal reports whether two coordinate vectors are identical.
func (c Coord) Equal(o Coord) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of the coordinate vector.
func (c Coord) Clone() Coord {
	out := make(Coord, len(c))
	copy(out, c)
	return out
}

func (c Coord) String() string { return fmt.Sprint([]int(c)) }

// Channel is one unidirectional link: it leaves From's output port Dir and
// enters To's input port Dir. Wrap marks torus wraparound channels, which
// the turn model treats as a separate channel class (Step 1 / Step 5).
type Channel struct {
	From NodeID
	To   NodeID
	Dir  Direction
	Wrap bool
}

func (ch Channel) String() string {
	w := ""
	if ch.Wrap {
		w = " wrap"
	}
	return fmt.Sprintf("%d-%s->%d%s", ch.From, ch.Dir, ch.To, w)
}

// Topology describes a direct network. Implementations must be immutable
// and safe for concurrent use.
type Topology interface {
	// Name is a short human-readable identifier such as "mesh(16x16)".
	Name() string
	// Dims reports the number of dimensions n.
	Dims() int
	// Size reports k_i, the number of nodes along dimension dim.
	Size(dim int) int
	// Nodes reports the total node count.
	Nodes() int
	// Coord decodes a node index into coordinates.
	Coord(id NodeID) Coord
	// ID encodes coordinates into a node index.
	ID(c Coord) NodeID
	// Neighbor returns the node reached by the channel leaving id in
	// direction d, and whether such a channel exists (mesh boundary
	// nodes lack some channels).
	Neighbor(id NodeID, d Direction) (NodeID, bool)
	// Wraparound reports whether the channel leaving id in direction d
	// is a torus wraparound channel.
	Wraparound(id NodeID, d Direction) bool
	// MinimalDirections lists the productive directions: those whose
	// channels lie on some shortest path from `from` to `to`. The result
	// is ordered by increasing dimension (the paper's "xy" output
	// selection policy relies on this order).
	MinimalDirections(from, to NodeID) []Direction
	// Distance is the length of a shortest path between the nodes.
	Distance(from, to NodeID) int
	// Channels enumerates every unidirectional channel once.
	Channels() []Channel
}

// grid carries the coordinate arithmetic shared by meshes and tori.
type grid struct {
	sizes   []int
	strides []int
	nodes   int
}

func newGrid(sizes []int) grid {
	if len(sizes) == 0 {
		panic("topology: need at least one dimension")
	}
	g := grid{sizes: append([]int(nil), sizes...)}
	g.strides = make([]int, len(sizes))
	g.nodes = 1
	for i, k := range sizes {
		if k < 2 {
			panic(fmt.Sprintf("topology: dimension %d has size %d; need k_i >= 2", i, k))
		}
		g.strides[i] = g.nodes
		g.nodes *= k
	}
	return g
}

func (g grid) Dims() int        { return len(g.sizes) }
func (g grid) Size(dim int) int { return g.sizes[dim] }
func (g grid) Nodes() int       { return g.nodes }

func (g grid) Coord(id NodeID) Coord {
	if id < 0 || int(id) >= g.nodes {
		panic(fmt.Sprintf("topology: node %d out of range [0,%d)", id, g.nodes))
	}
	c := make(Coord, len(g.sizes))
	v := int(id)
	for i, k := range g.sizes {
		c[i] = v % k
		v /= k
	}
	return c
}

func (g grid) ID(c Coord) NodeID {
	if len(c) != len(g.sizes) {
		panic(fmt.Sprintf("topology: coordinate %v has %d dims; topology has %d", c, len(c), len(g.sizes)))
	}
	id := 0
	for i, x := range c {
		if x < 0 || x >= g.sizes[i] {
			panic(fmt.Sprintf("topology: coordinate %v out of range in dimension %d", c, i))
		}
		id += x * g.strides[i]
	}
	return NodeID(id)
}

// coordAt returns coordinate i of a node without allocating.
func (g grid) coordAt(id NodeID, dim int) int {
	return (int(id) / g.strides[dim]) % g.sizes[dim]
}

// CoordAt returns a single coordinate of a node without allocating the
// full Coord vector; it is the hot-loop counterpart of Coord, promoted to
// every grid-based topology.
func (g grid) CoordAt(id NodeID, dim int) int { return g.coordAt(id, dim) }

// MinimalAppender is implemented by topologies that can append their
// MinimalDirections into a caller-provided buffer. The contract is exact:
// AppendMinimalDirections(dst, from, to) appends the same directions in
// the same order MinimalDirections(from, to) returns, reusing dst's
// storage. The simulators' step loops use it to keep routing decisions
// allocation-free.
type MinimalAppender interface {
	AppendMinimalDirections(dst []Direction, from, to NodeID) []Direction
}

func sizesString(sizes []int) string {
	s := ""
	for i, k := range sizes {
		if i > 0 {
			s += "x"
		}
		s += fmt.Sprint(k)
	}
	return s
}
