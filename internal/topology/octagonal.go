package topology

import "fmt"

// Octagonal is a 2D mesh augmented with diagonal channels — the
// "octagonal" topology Section 7 names for future application of the turn
// model. Interior nodes have eight neighbors. The eight directions are
// modeled as four axes so the generic direction machinery applies with
// Dims() == 4:
//
//	axis 0: +(1, 0)  east      / -(1, 0)  west
//	axis 1: +(0, 1)  north     / -(0, 1)  south
//	axis 2: +(1, 1)  northeast / -(1, 1)  southwest
//	axis 3: +(-1,1)  northwest / -(-1,1)  southeast
//
// Coordinates are reported as {x, y, x+y, y-x}: the first two are the grid
// position and the last two the (redundant) diagonal axis positions, so
// the vector length matches Dims.
type Octagonal struct {
	w, h int
}

// NewOctagonal builds a W x H octagonal mesh.
func NewOctagonal(w, h int) *Octagonal {
	if w < 2 || h < 2 {
		panic("topology: octagonal mesh needs W, H >= 2")
	}
	return &Octagonal{w: w, h: h}
}

// Name implements Topology.
func (o *Octagonal) Name() string { return fmt.Sprintf("octagonal(%dx%d)", o.w, o.h) }

// Dims implements Topology: four direction axes.
func (o *Octagonal) Dims() int { return 4 }

// Size implements Topology.
func (o *Octagonal) Size(dim int) int {
	switch dim {
	case 0:
		return o.w
	case 1:
		return o.h
	case 2, 3:
		return o.w + o.h - 1 // span of the diagonal coordinates
	}
	panic(fmt.Sprintf("topology: octagonal has no dimension %d", dim))
}

// Nodes implements Topology.
func (o *Octagonal) Nodes() int { return o.w * o.h }

// Coord implements Topology: {x, y, x+y, y-x}.
func (o *Octagonal) Coord(id NodeID) Coord {
	if id < 0 || int(id) >= o.Nodes() {
		panic(fmt.Sprintf("topology: node %d out of range", id))
	}
	x := int(id) % o.w
	y := int(id) / o.w
	return Coord{x, y, x + y, y - x}
}

// ID implements Topology; it accepts the redundant 4-vector produced by
// Coord.
func (o *Octagonal) ID(c Coord) NodeID {
	if len(c) != 4 || c[2] != c[0]+c[1] || c[3] != c[1]-c[0] {
		panic(fmt.Sprintf("topology: %v is not an octagonal coordinate", c))
	}
	if c[0] < 0 || c[0] >= o.w || c[1] < 0 || c[1] >= o.h {
		panic(fmt.Sprintf("topology: %v outside the %s region", c, o.Name()))
	}
	return NodeID(c[0] + o.w*c[1])
}

func octDelta(d Direction) (int, int) {
	switch d {
	case Dir(0, true):
		return 1, 0
	case Dir(0, false):
		return -1, 0
	case Dir(1, true):
		return 0, 1
	case Dir(1, false):
		return 0, -1
	case Dir(2, true):
		return 1, 1
	case Dir(2, false):
		return -1, -1
	case Dir(3, true):
		return -1, 1
	case Dir(3, false):
		return 1, -1
	}
	return 0, 0
}

// Neighbor implements Topology.
func (o *Octagonal) Neighbor(id NodeID, d Direction) (NodeID, bool) {
	if !d.Valid(4) {
		return 0, false
	}
	dx, dy := octDelta(d)
	x := int(id)%o.w + dx
	y := int(id)/o.w + dy
	if x < 0 || x >= o.w || y < 0 || y >= o.h {
		return 0, false
	}
	return NodeID(x + o.w*y), true
}

// Wraparound implements Topology.
func (o *Octagonal) Wraparound(NodeID, Direction) bool { return false }

// Distance implements Topology: with unit diagonal channels the shortest
// path length is the Chebyshev distance max(|dx|, |dy|).
func (o *Octagonal) Distance(from, to NodeID) int {
	dx := abs(int(to)%o.w - int(from)%o.w)
	dy := abs(int(to)/o.w - int(from)/o.w)
	if dx > dy {
		return dx
	}
	return dy
}

// MinimalDirections implements Topology: the diagonal toward the
// destination (when both offsets are nonzero) plus the straight direction
// of the dominant axis (when the offsets differ in magnitude).
func (o *Octagonal) MinimalDirections(from, to NodeID) []Direction {
	dx := int(to)%o.w - int(from)%o.w
	dy := int(to)/o.w - int(from)/o.w
	var ds []Direction
	if dx != 0 && abs(dx) > abs(dy) {
		ds = append(ds, Dir(0, dx > 0))
	}
	if dy != 0 && abs(dy) > abs(dx) {
		ds = append(ds, Dir(1, dy > 0))
	}
	if dx != 0 && dy != 0 {
		if dx > 0 == (dy > 0) {
			ds = append(ds, Dir(2, dx > 0))
		} else {
			ds = append(ds, Dir(3, dy > 0))
		}
	}
	return ds
}

// Channels implements Topology.
func (o *Octagonal) Channels() []Channel {
	var chs []Channel
	for id := NodeID(0); int(id) < o.Nodes(); id++ {
		for _, d := range Directions(4) {
			if to, ok := o.Neighbor(id, d); ok {
				chs = append(chs, Channel{From: id, To: to, Dir: d})
			}
		}
	}
	return chs
}

var _ Topology = (*Octagonal)(nil)
