package topology

import (
	"testing"
	"testing/quick"
)

func TestDirectionBasics(t *testing.T) {
	cases := []struct {
		d        Direction
		dim      int
		positive bool
		opposite Direction
	}{
		{West, 0, false, East},
		{East, 0, true, West},
		{South, 1, false, North},
		{North, 1, true, South},
		{Dir(2, false), 2, false, Dir(2, true)},
		{Dir(3, true), 3, true, Dir(3, false)},
	}
	for _, c := range cases {
		if c.d.Dim() != c.dim {
			t.Errorf("%v.Dim() = %d, want %d", c.d, c.d.Dim(), c.dim)
		}
		if c.d.Positive() != c.positive {
			t.Errorf("%v.Positive() = %v, want %v", c.d, c.d.Positive(), c.positive)
		}
		if c.d.Opposite() != c.opposite {
			t.Errorf("%v.Opposite() = %v, want %v", c.d, c.d.Opposite(), c.opposite)
		}
		if got := Dir(c.dim, c.positive); got != c.d {
			t.Errorf("Dir(%d, %v) = %v, want %v", c.dim, c.positive, got, c.d)
		}
	}
}

func TestDirectionDelta(t *testing.T) {
	if West.Delta() != -1 || East.Delta() != 1 {
		t.Fatalf("West/East deltas wrong: %d, %d", West.Delta(), East.Delta())
	}
}

func TestDirectionsList(t *testing.T) {
	ds := Directions(3)
	if len(ds) != 6 {
		t.Fatalf("Directions(3) has %d entries, want 6", len(ds))
	}
	for i, d := range ds {
		if int(d) != i {
			t.Errorf("Directions(3)[%d] = %v", i, d)
		}
	}
}

func TestDirectionString(t *testing.T) {
	if West.String() != "west(-x)" || North.String() != "north(+y)" {
		t.Errorf("compass names wrong: %q %q", West, North)
	}
	if Dir(2, true).String() != "+2" || Dir(4, false).String() != "-4" {
		t.Errorf("generic names wrong: %q %q", Dir(2, true), Dir(4, false))
	}
	if Invalid.String() != "invalid" {
		t.Errorf("Invalid.String() = %q", Invalid)
	}
}

func TestMeshCoordRoundTrip(t *testing.T) {
	m := NewMesh(4, 3, 5)
	if m.Nodes() != 60 {
		t.Fatalf("Nodes() = %d, want 60", m.Nodes())
	}
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		c := m.Coord(id)
		if got := m.ID(c); got != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, got)
		}
	}
}

func TestMeshCoordValues(t *testing.T) {
	m := NewMesh2D(4, 4)
	// Dimension 0 (x) is the fastest-varying index.
	if got := m.Coord(0); !got.Equal(Coord{0, 0}) {
		t.Errorf("Coord(0) = %v", got)
	}
	if got := m.Coord(1); !got.Equal(Coord{1, 0}) {
		t.Errorf("Coord(1) = %v", got)
	}
	if got := m.Coord(4); !got.Equal(Coord{0, 1}) {
		t.Errorf("Coord(4) = %v", got)
	}
	if got := m.ID(Coord{3, 3}); got != 15 {
		t.Errorf("ID({3,3}) = %d", got)
	}
}

func TestMeshNeighbors(t *testing.T) {
	m := NewMesh2D(4, 4)
	center := m.ID(Coord{1, 1})
	for _, c := range []struct {
		d    Direction
		want Coord
	}{
		{West, Coord{0, 1}},
		{East, Coord{2, 1}},
		{South, Coord{1, 0}},
		{North, Coord{1, 2}},
	} {
		got, ok := m.Neighbor(center, c.d)
		if !ok {
			t.Fatalf("Neighbor(center, %v) missing", c.d)
		}
		if !m.Coord(got).Equal(c.want) {
			t.Errorf("Neighbor(center, %v) = %v, want %v", c.d, m.Coord(got), c.want)
		}
	}
}

func TestMeshBoundary(t *testing.T) {
	m := NewMesh2D(4, 4)
	corner := m.ID(Coord{0, 0})
	if _, ok := m.Neighbor(corner, West); ok {
		t.Error("corner has west neighbor")
	}
	if _, ok := m.Neighbor(corner, South); ok {
		t.Error("corner has south neighbor")
	}
	if _, ok := m.Neighbor(corner, East); !ok {
		t.Error("corner lacks east neighbor")
	}
	if _, ok := m.Neighbor(corner, North); !ok {
		t.Error("corner lacks north neighbor")
	}
	if _, ok := m.Neighbor(corner, Direction(99)); ok {
		t.Error("invalid direction produced a neighbor")
	}
}

func TestMeshDegreeRange(t *testing.T) {
	// Nodes in an n-dim mesh have between n and 2n neighbors.
	m := NewMesh(3, 3, 3)
	n := m.Dims()
	for id := NodeID(0); int(id) < m.Nodes(); id++ {
		deg := 0
		for _, d := range Directions(n) {
			if _, ok := m.Neighbor(id, d); ok {
				deg++
			}
		}
		if deg < n || deg > 2*n {
			t.Fatalf("node %d degree %d outside [%d,%d]", id, deg, n, 2*n)
		}
	}
}

func TestMeshChannelCount(t *testing.T) {
	// An m x n mesh has 2*((m-1)*n + (n-1)*m) unidirectional channels.
	m := NewMesh2D(4, 5)
	want := 2 * ((4-1)*5 + (5-1)*4)
	if got := len(m.Channels()); got != want {
		t.Errorf("channel count = %d, want %d", got, want)
	}
	for _, ch := range m.Channels() {
		if ch.Wrap {
			t.Errorf("mesh channel %v marked wraparound", ch)
		}
	}
}

func TestMeshMinimalDirections(t *testing.T) {
	m := NewMesh2D(8, 8)
	from := m.ID(Coord{4, 4})
	cases := []struct {
		to   Coord
		want []Direction
	}{
		{Coord{6, 6}, []Direction{East, North}},
		{Coord{2, 2}, []Direction{West, South}},
		{Coord{6, 2}, []Direction{East, South}},
		{Coord{4, 4}, nil},
		{Coord{4, 7}, []Direction{North}},
	}
	for _, c := range cases {
		got := m.MinimalDirections(from, m.ID(c.to))
		if len(got) != len(c.want) {
			t.Errorf("MinimalDirections(->%v) = %v, want %v", c.to, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("MinimalDirections(->%v) = %v, want %v", c.to, got, c.want)
			}
		}
	}
}

func TestMeshDistance(t *testing.T) {
	m := NewMesh2D(8, 8)
	if d := m.Distance(m.ID(Coord{0, 0}), m.ID(Coord{7, 7})); d != 14 {
		t.Errorf("corner-to-corner distance = %d, want 14", d)
	}
	if d := m.Distance(3, 3); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestMeshPanicsOnBadSizes(t *testing.T) {
	assertPanics(t, "k<2", func() { NewMesh(1, 4) })
	assertPanics(t, "no dims", func() { NewMesh() })
	m := NewMesh2D(4, 4)
	assertPanics(t, "bad id", func() { m.Coord(NodeID(16)) })
	assertPanics(t, "bad coord len", func() { m.ID(Coord{1}) })
	assertPanics(t, "coord out of range", func() { m.ID(Coord{4, 0}) })
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestHypercubeBasics(t *testing.T) {
	h := NewHypercube(4)
	if h.Nodes() != 16 {
		t.Fatalf("Nodes() = %d", h.Nodes())
	}
	if h.Name() != "hypercube(4)" {
		t.Errorf("Name() = %q", h.Name())
	}
	// Every node has exactly n neighbors.
	for id := NodeID(0); int(id) < h.Nodes(); id++ {
		deg := 0
		for _, d := range Directions(4) {
			if nb, ok := h.Neighbor(id, d); ok {
				deg++
				// Hypercube neighbors differ in exactly one bit.
				if x := uint(id) ^ uint(nb); x&(x-1) != 0 {
					t.Fatalf("neighbor %d of %d differs in more than one bit", nb, id)
				}
			}
		}
		if deg != 4 {
			t.Fatalf("node %d degree %d, want 4", id, deg)
		}
	}
}

func TestHypercubeDistanceIsHamming(t *testing.T) {
	h := NewHypercube(6)
	if d := h.Distance(h.NodeFromBits(0b101010), h.NodeFromBits(0b010101)); d != 6 {
		t.Errorf("Distance = %d, want 6", d)
	}
	if d := h.Distance(5, 5); d != 0 {
		t.Errorf("self distance = %d", d)
	}
}

func TestHypercubeMinimalDirections(t *testing.T) {
	h := NewHypercube(4)
	from := h.NodeFromBits(0b0011)
	to := h.NodeFromBits(0b0101)
	// Bits 1 and 2 differ: bit 1 must go 1->0 (negative), bit 2 must go 0->1 (positive).
	got := h.MinimalDirections(from, to)
	want := []Direction{Dir(1, false), Dir(2, true)}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("MinimalDirections = %v, want %v", got, want)
	}
}

func TestHypercubeMatchesMeshDistance(t *testing.T) {
	// Hypercube overrides Distance/MinimalDirections for speed; the results
	// must agree with the generic mesh implementation it embeds.
	h := NewHypercube(5)
	err := quick.Check(func(a, b uint) bool {
		from := NodeID(a % 32)
		to := NodeID(b % 32)
		if h.Distance(from, to) != h.Mesh.Distance(from, to) {
			return false
		}
		hd := h.MinimalDirections(from, to)
		md := h.Mesh.MinimalDirections(from, to)
		if len(hd) != len(md) {
			return false
		}
		for i := range hd {
			if hd[i] != md[i] {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHypercubePanics(t *testing.T) {
	assertPanics(t, "n<1", func() { NewHypercube(0) })
	assertPanics(t, "n too big", func() { NewHypercube(31) })
}

func TestCoordHelpers(t *testing.T) {
	c := Coord{1, 2, 3}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Error("Clone aliases the original")
	}
	if !c.Equal(Coord{1, 2, 3}) || c.Equal(Coord{1, 2}) || c.Equal(Coord{1, 2, 4}) {
		t.Error("Equal misbehaves")
	}
	if c.String() != "[1 2 3]" {
		t.Errorf("String() = %q", c)
	}
}

func TestChannelString(t *testing.T) {
	ch := Channel{From: 1, To: 2, Dir: East}
	if ch.String() != "1-east(+x)->2" {
		t.Errorf("String() = %q", ch)
	}
	ch.Wrap = true
	if ch.String() != "1-east(+x)->2 wrap" {
		t.Errorf("String() = %q", ch)
	}
}

func TestMeshChannelsAreInternallyConsistent(t *testing.T) {
	// Property: for every listed channel, Neighbor agrees, and the reverse
	// channel exists (channels come in unidirectional pairs).
	for _, tp := range []Topology{NewMesh2D(5, 3), NewMesh(3, 3, 3), NewHypercube(4)} {
		seen := make(map[Channel]bool)
		for _, ch := range tp.Channels() {
			if seen[ch] {
				t.Fatalf("%s: duplicate channel %v", tp.Name(), ch)
			}
			seen[ch] = true
			nb, ok := tp.Neighbor(ch.From, ch.Dir)
			if !ok || nb != ch.To {
				t.Fatalf("%s: channel %v disagrees with Neighbor", tp.Name(), ch)
			}
		}
		for ch := range seen {
			rev := Channel{From: ch.To, To: ch.From, Dir: ch.Dir.Opposite(), Wrap: ch.Wrap}
			if !seen[rev] {
				t.Fatalf("%s: missing reverse of %v", tp.Name(), ch)
			}
		}
	}
}
