package topology

import (
	"testing"
	"testing/quick"
)

// bfsDistance is the ground-truth shortest path length for any Topology.
func bfsDistance(t Topology, from, to NodeID) int {
	if from == to {
		return 0
	}
	dist := make(map[NodeID]int)
	dist[from] = 0
	queue := []NodeID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, d := range Directions(t.Dims()) {
			if nb, ok := t.Neighbor(cur, d); ok {
				if _, seen := dist[nb]; !seen {
					dist[nb] = dist[cur] + 1
					if nb == to {
						return dist[nb]
					}
					queue = append(queue, nb)
				}
			}
		}
	}
	return -1
}

func TestHexBasics(t *testing.T) {
	h := NewHex(5, 4)
	if h.Name() != "hex(5x4)" || h.Nodes() != 20 || h.Dims() != 3 {
		t.Fatalf("basics wrong: %s %d %d", h.Name(), h.Nodes(), h.Dims())
	}
	if h.Size(0) != 5 || h.Size(1) != 4 || h.Size(2) != 8 {
		t.Error("sizes wrong")
	}
	for id := NodeID(0); int(id) < h.Nodes(); id++ {
		c := h.Coord(id)
		if len(c) != 3 || c[0]+c[1]+c[2] != 0 {
			t.Fatalf("Coord(%d) = %v is not a cube coordinate", id, c)
		}
		if h.ID(c) != id {
			t.Fatalf("ID(Coord(%d)) = %d", id, h.ID(c))
		}
	}
}

func TestHexInteriorDegree(t *testing.T) {
	h := NewHex(4, 4)
	center := h.ID(Coord{1, 1, -2})
	deg := 0
	for _, d := range Directions(3) {
		if _, ok := h.Neighbor(center, d); ok {
			deg++
		}
	}
	// (1,1) in a 4x4 parallelogram: all six neighbors are in range
	// except those crossing the border... (1,1)+every delta stays in
	// [0,4): (2,1),(0,1),(1,2),(1,0),(2,0),(0,2) — all inside.
	if deg != 6 {
		t.Errorf("interior degree = %d, want 6", deg)
	}
}

func TestHexDistanceMatchesBFS(t *testing.T) {
	h := NewHex(5, 5)
	for from := NodeID(0); int(from) < h.Nodes(); from++ {
		for to := NodeID(0); int(to) < h.Nodes(); to++ {
			if got, want := h.Distance(from, to), bfsDistance(h, from, to); got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS says %d", from, to, got, want)
			}
		}
	}
}

func TestHexMinimalDirectionsReduceDistance(t *testing.T) {
	h := NewHex(6, 5)
	err := quick.Check(func(a, b uint) bool {
		from := NodeID(a % 30)
		to := NodeID(b % 30)
		ds := h.MinimalDirections(from, to)
		if from == to {
			return len(ds) == 0
		}
		if len(ds) == 0 {
			return false
		}
		prev := Direction(-1)
		for _, d := range ds {
			if d <= prev {
				return false // must be ordered by dimension
			}
			prev = d
			nb, ok := h.Neighbor(from, d)
			// A productive direction may leave the parallelogram region
			// only if another productive direction remains... minimal
			// decompositions here always stay inside: check when ok.
			if !ok {
				continue
			}
			if h.Distance(nb, to) != h.Distance(from, to)-1 {
				return false
			}
		}
		return true
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestHexMinimalDirectionsStayInRegion(t *testing.T) {
	// For the parallelogram region, every minimal decomposition's moves
	// remain in range: a route between two in-region nodes never needs
	// to leave. Verify that at least one candidate always exists and is
	// in range.
	h := NewHex(4, 6)
	for from := NodeID(0); int(from) < h.Nodes(); from++ {
		for to := NodeID(0); int(to) < h.Nodes(); to++ {
			if from == to {
				continue
			}
			ok := false
			for _, d := range h.MinimalDirections(from, to) {
				if _, in := h.Neighbor(from, d); in {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("no in-region productive direction %d->%d", from, to)
			}
		}
	}
}

func TestHexChannelsConsistent(t *testing.T) {
	h := NewHex(4, 4)
	seen := make(map[Channel]bool)
	for _, ch := range h.Channels() {
		if seen[ch] {
			t.Fatalf("duplicate channel %v", ch)
		}
		seen[ch] = true
		nb, ok := h.Neighbor(ch.From, ch.Dir)
		if !ok || nb != ch.To {
			t.Fatalf("channel %v disagrees with Neighbor", ch)
		}
		if ch.Wrap || h.Wraparound(ch.From, ch.Dir) {
			t.Fatalf("hex channel %v marked wraparound", ch)
		}
		rev := Channel{From: ch.To, To: ch.From, Dir: ch.Dir.Opposite()}
		if _, done := seen[rev]; done && !seen[rev] {
			t.Fatal("impossible")
		}
	}
	for ch := range seen {
		rev := Channel{From: ch.To, To: ch.From, Dir: ch.Dir.Opposite()}
		if !seen[rev] {
			t.Fatalf("missing reverse of %v", ch)
		}
	}
}

func TestHexPanics(t *testing.T) {
	assertPanics(t, "small", func() { NewHex(1, 4) })
	h := NewHex(4, 4)
	assertPanics(t, "bad id", func() { h.Coord(16) })
	assertPanics(t, "bad coord", func() { h.ID(Coord{1, 1, 0}) })
	assertPanics(t, "out of region", func() { h.ID(Coord{9, 0, -9}) })
	assertPanics(t, "bad dim", func() { h.Size(3) })
}

func TestOctagonalBasics(t *testing.T) {
	o := NewOctagonal(5, 4)
	if o.Name() != "octagonal(5x4)" || o.Nodes() != 20 || o.Dims() != 4 {
		t.Fatalf("basics wrong: %s", o.Name())
	}
	for id := NodeID(0); int(id) < o.Nodes(); id++ {
		c := o.Coord(id)
		if len(c) != 4 || c[2] != c[0]+c[1] || c[3] != c[1]-c[0] {
			t.Fatalf("Coord(%d) = %v malformed", id, c)
		}
		if o.ID(c) != id {
			t.Fatalf("round trip failed at %d", id)
		}
	}
	// Interior node has eight neighbors.
	center := o.ID(Coord{2, 2, 4, 0})
	deg := 0
	for _, d := range Directions(4) {
		if _, ok := o.Neighbor(center, d); ok {
			deg++
		}
	}
	if deg != 8 {
		t.Errorf("interior degree = %d, want 8", deg)
	}
}

func TestOctagonalDistanceMatchesBFS(t *testing.T) {
	o := NewOctagonal(5, 5)
	for from := NodeID(0); int(from) < o.Nodes(); from++ {
		for to := NodeID(0); int(to) < o.Nodes(); to++ {
			if got, want := o.Distance(from, to), bfsDistance(o, from, to); got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS says %d", from, to, got, want)
			}
		}
	}
}

func TestOctagonalMinimalDirectionsReduceDistance(t *testing.T) {
	o := NewOctagonal(6, 6)
	for from := NodeID(0); int(from) < o.Nodes(); from++ {
		for to := NodeID(0); int(to) < o.Nodes(); to++ {
			if from == to {
				if len(o.MinimalDirections(from, to)) != 0 {
					t.Fatal("self has productive directions")
				}
				continue
			}
			ds := o.MinimalDirections(from, to)
			if len(ds) == 0 {
				t.Fatalf("no productive directions %d->%d", from, to)
			}
			for _, d := range ds {
				nb, ok := o.Neighbor(from, d)
				if !ok {
					t.Fatalf("%d->%d: productive %v leaves the region", from, to, d)
				}
				if o.Distance(nb, to) != o.Distance(from, to)-1 {
					t.Fatalf("%d->%d: %v does not reduce distance", from, to, d)
				}
			}
		}
	}
}

func TestOctagonalPanics(t *testing.T) {
	assertPanics(t, "small", func() { NewOctagonal(4, 1) })
	o := NewOctagonal(4, 4)
	assertPanics(t, "bad coord", func() { o.ID(Coord{1, 1, 3, 0}) })
	assertPanics(t, "bad dim", func() { o.Size(4) })
	assertPanics(t, "bad id", func() { o.Coord(99) })
}

func TestCCCBasics(t *testing.T) {
	c := NewCCC(3)
	if c.Name() != "ccc(3)" || c.Nodes() != 24 || c.Dims() != 2 {
		t.Fatalf("basics wrong: %s %d", c.Name(), c.Nodes())
	}
	if c.Size(0) != 8 || c.Size(1) != 3 {
		t.Error("sizes wrong")
	}
	// Every node has degree exactly 3: one cube edge, two ring edges.
	for id := NodeID(0); int(id) < c.Nodes(); id++ {
		deg := 0
		for _, d := range Directions(2) {
			if _, ok := c.Neighbor(id, d); ok {
				deg++
			}
		}
		if deg != 3 {
			t.Fatalf("node %d degree %d, want 3", id, deg)
		}
		co := c.Coord(id)
		if c.ID(co) != id {
			t.Fatalf("round trip failed at %d", id)
		}
	}
}

func TestCCCEdges(t *testing.T) {
	c := NewCCC(3)
	// Node (corner=0b000, pos=1): cube edge sets bit 1 -> corner 0b010.
	from := c.ID(Coord{0, 1})
	nb, ok := c.Neighbor(from, Dir(0, true))
	if !ok || c.Corner(nb) != 0b010 || c.Position(nb) != 1 {
		t.Errorf("cube edge wrong: %v %v", c.Coord(nb), ok)
	}
	if _, ok := c.Neighbor(from, Dir(0, false)); ok {
		t.Error("clear-bit edge exists although bit is 0")
	}
	// Ring edges wrap.
	last := c.ID(Coord{5, 2})
	nb, _ = c.Neighbor(last, Dir(1, true))
	if c.Position(nb) != 0 || c.Corner(nb) != 5 {
		t.Error("ring wrap wrong")
	}
	if !c.Wraparound(last, Dir(1, true)) || c.Wraparound(last, Dir(1, false)) {
		t.Error("wraparound flags wrong")
	}
}

func TestCCCDistanceMatchesBFS(t *testing.T) {
	c := NewCCC(3)
	for from := NodeID(0); int(from) < c.Nodes(); from++ {
		for to := NodeID(0); int(to) < c.Nodes(); to++ {
			if got, want := c.Distance(from, to), bfsDistance(c, from, to); got != want {
				t.Fatalf("Distance(%d,%d) = %d, BFS says %d", from, to, got, want)
			}
		}
	}
}

func TestCCCMinimalDirectionsReduceDistance(t *testing.T) {
	c := NewCCC(4)
	for from := NodeID(0); int(from) < c.Nodes(); from += 3 {
		for to := NodeID(0); int(to) < c.Nodes(); to += 5 {
			for _, d := range c.MinimalDirections(from, to) {
				nb, ok := c.Neighbor(from, d)
				if !ok || c.Distance(nb, to) != c.Distance(from, to)-1 {
					t.Fatalf("%d->%d: %v not productive", from, to, d)
				}
			}
		}
	}
}

func TestCCCChannelCount(t *testing.T) {
	// CCC(n) has 2^n * n nodes, each with 2 ring channels out and 1 cube
	// channel out: 3 * 2^n * n unidirectional channels.
	c := NewCCC(4)
	if got, want := len(c.Channels()), 3*16*4; got != want {
		t.Errorf("channels = %d, want %d", got, want)
	}
}

func TestCCCPanics(t *testing.T) {
	assertPanics(t, "too small", func() { NewCCC(2) })
	assertPanics(t, "too large", func() { NewCCC(8) })
	c := NewCCC(3)
	assertPanics(t, "bad id", func() { c.Coord(NodeID(24)) })
	assertPanics(t, "bad coord", func() { c.ID(Coord{8, 0}) })
	assertPanics(t, "bad dim", func() { c.Size(2) })
}

func TestSmallAccessors(t *testing.T) {
	m := NewMesh2D(4, 4)
	if m.Size(0) != 4 || m.Size(1) != 4 {
		t.Error("mesh Size wrong")
	}
	if m.Wraparound(0, East) {
		t.Error("mesh claims wraparound")
	}
	h := NewHypercube(3)
	if h.Bits(5) != 5 || h.NodeFromBits(5) != 5 {
		t.Error("hypercube Bits round trip wrong")
	}
	c := NewCCC(3)
	if c.Order() != 3 {
		t.Error("CCC Order wrong")
	}
	o := NewOctagonal(5, 4)
	if o.Size(0) != 5 || o.Size(1) != 4 || o.Size(2) != 8 || o.Size(3) != 8 {
		t.Error("octagonal sizes wrong")
	}
	if o.Wraparound(0, East) {
		t.Error("octagonal claims wraparound")
	}
	if len(o.Channels()) == 0 {
		t.Error("octagonal has no channels")
	}
	// Channels agree with Neighbor for the octagonal mesh.
	for _, ch := range o.Channels() {
		nb, ok := o.Neighbor(ch.From, ch.Dir)
		if !ok || nb != ch.To {
			t.Fatalf("octagonal channel %v disagrees with Neighbor", ch)
		}
	}
	// Invalid directions have no neighbors anywhere.
	for _, topo := range []Topology{m, h, c, o, NewHex(4, 4)} {
		if _, ok := topo.Neighbor(0, Direction(99)); ok {
			t.Errorf("%s: invalid direction produced a neighbor", topo.Name())
		}
	}
}
