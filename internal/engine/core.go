// Package engine is the shared core of the two flit-level simulators:
// internal/network (physical channels, worms advance as units) and
// internal/vcnet (virtual channels, flits move individually). Both engines
// step through the same per-cycle skeleton — fault transitions, source
// injection, routing + output allocation, movement, retirement — and this
// package owns everything in that skeleton that does not depend on the
// channel model:
//
//   - Grid: flat integer neighbor/wraparound tables replacing interface
//     lookups in the hot loops;
//   - Core: source queues, retry backoff, the injection worklist (only
//     nodes with queued work are visited, so idle routers cost nothing),
//     fault plan wiring, delivery/abort/drop accounting, and the deadlock
//     watchdog;
//   - Emitter: batched probe event emission that keeps the no-probe step
//     paths allocation-free.
//
// The split is semantics-preserving by construction: the engines drive the
// same phases in the same order with the same tie-breaking, which the
// differential harness in diff_test.go checks end to end.
package engine

import (
	"math"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/topology"
)

// Config configures a Core. It is the engine-independent subset of the
// simulators' Config structs.
type Config struct {
	Topo topology.Topology
	// WatchdogCycles is how long the network may go without progress
	// while packets are in flight before the watchdog fires. 0 selects
	// the default (10000); negative disables.
	WatchdogCycles int64
	// Faults is shorthand for FaultPlan.Static; the two lists are merged.
	Faults    []topology.Channel
	FaultPlan fault.Plan
	// Recovery enables deadlock recovery (abort + source retry).
	Recovery fault.Recovery
	// FaultRouting enables in-network fault masking; ignored when the
	// fault plan is empty.
	FaultRouting fault.RoutingPolicy
	// Probe receives simulation events; nil disables instrumentation.
	Probe metrics.Probe
	// Shards is the number of spatial domains the network is partitioned
	// into for intra-simulation parallelism (see shard.go). Values <= 1
	// select serial stepping; the count is capped at the node count.
	// Results are bit-identical at every shard count.
	Shards int
	// DisableEventSkip turns off event-driven cycle skipping: with it set,
	// EndStep never leaps the clock even when the caller has promised an
	// injection horizon (see SetInjectionHorizon), so every cycle is
	// stepped individually. The default (false) keeps skipping available;
	// it is an execution strategy, not a model change — results are
	// bit-identical either way — so, like Shards, it never enters cache
	// keys.
	DisableEventSkip bool
}

// retryEntry is one aborted packet waiting at its source to reinject at
// cycle `at`.
type retryEntry struct {
	p  *Packet
	at int64
}

// Core is the engine-independent simulator state. The embedding engine
// wires the four hooks after NewCore and then drives FaultPhase,
// InjectPhase and EndStep from its Step loop.
type Core struct {
	Topo topology.Topology
	Grid *Grid

	// Cycle is the current simulation time.
	Cycle int64

	// Faults drives the dynamic fault plan; nil when the plan is empty.
	// Faulted aliases Faults.Faulted when non-nil (so transitions are
	// visible with a single load), and is a zero bitmap otherwise; it is
	// keyed by Grid.Key.
	Faults  *fault.State
	Faulted []bool
	// Health is the per-node fault visibility map of fault-aware routing;
	// nil unless Config.FaultRouting was enabled and the plan non-empty.
	// FaultPol is the policy with defaults applied (valid when Health is
	// non-nil); the engine builds its masked algorithm from the pair.
	Health   *fault.Health
	FaultPol fault.RoutingPolicy

	Recovery fault.Recovery
	Watchdog int64

	// Em batches probe events; its methods no-op without a probe.
	Em Emitter

	// Counters. NextID numbers packets in enqueue order; the rest are the
	// totals the simulators expose.
	NextID         int64
	FlitsConsumed  int64
	PacketsDone    int64
	PacketsAborted int64
	PacketsRetried int64
	PacketsDropped int64
	MisrouteHops   int64

	// Reachability-BFS scratch for the engines' reachable() queries
	// (recovery mode only): stamped visited marks reused across queries.
	ReachSeen  []int32
	ReachQueue []int32
	ReachStamp int32

	// Hooks, set by the engine once after NewCore. InjFree reports
	// whether the node's injection buffer is free; InjPlace creates the
	// engine's worm for a packet whose header enters that buffer.
	// Reachable answers the post-abort retry feasibility query.
	// OnEpochChange fires when the fault set's epoch advances (the engine
	// invalidates cached candidate sets of waiting headers).
	// InjPlaceShard is the sharded counterpart of InjPlace: it runs on
	// domain d's worker and must defer any shared-state mutation (such as
	// appending to the engine's active list) to the engine's post-barrier
	// merge. Required when ShardCount() > 1; both hooks must be set, since
	// InjFree and InjPlace also serve serial helpers.
	InjFree       func(node topology.NodeID) bool
	InjPlace      func(node topology.NodeID, p *Packet)
	InjPlaceShard func(d int, node topology.NodeID, p *Packet)
	Reachable     func(src, dst topology.NodeID) bool
	OnEpochChange func()

	queues [][]*Packet // per-node source queues (FIFO)
	qhead  []int
	queued int // packets across all queues (O(1) InFlight)

	// retries holds aborted packets waiting out their backoff at the
	// source (per node); nil unless recovery is enabled.
	retries    [][]retryEntry
	retryCount int

	// pending is the injection worklist: the nodes with queued packets or
	// retry entries, each at most once (inPending is the membership
	// bitmap). It is kept in ascending node order at injection time so
	// the visit order — and with it every probe event and arbitration
	// outcome — matches the full scan it replaces.
	pending   []int32
	inPending []bool

	faultEpoch   int64
	lastProgress int64

	// Event clock (see EndStep): horizon is the caller's promise that no
	// Enqueue will happen at a cycle strictly before it (0: no promise, so
	// no skipping); skipDisabled is Config.DisableEventSkip; skipped and
	// leaps count the cycles leaped over and the leaps taken.
	horizon      int64
	skipDisabled bool
	skipped      int64
	leaps        int64

	// Sharding state (see shard.go); shards is 1 for serial stepping.
	shards    int
	bounds    []int32
	shardEm   []Emitter
	shardInjs []shardInj
	pool      *Pool
	injectFn  func(d int)
}

// NewCore builds the shared state for a topology and the engine-
// independent configuration.
func NewCore(cfg Config) Core {
	topo := cfg.Topo
	c := Core{
		Topo: topo,
		Grid: NewGrid(topo),
		Em:   NewEmitter(cfg.Probe),
	}
	plan := cfg.FaultPlan
	if len(cfg.Faults) > 0 {
		plan.Static = append(append([]topology.Channel(nil), plan.Static...), cfg.Faults...)
	}
	if plan.Empty() {
		c.Faulted = make([]bool, topo.Nodes()*c.Grid.Dims2)
	} else {
		c.Faults = fault.MustNew(plan, topo)
		c.Faulted = c.Faults.Faulted
	}
	if cfg.FaultRouting.Enabled() && c.Faults != nil {
		c.FaultPol = cfg.FaultRouting.WithDefaults()
		c.Health = fault.NewHealth(topo, c.Faults, c.FaultPol)
	}
	c.Recovery = cfg.Recovery
	if c.Recovery.Enabled {
		c.Recovery = c.Recovery.WithDefaults()
		c.retries = make([][]retryEntry, topo.Nodes())
	}
	c.queues = make([][]*Packet, topo.Nodes())
	c.qhead = make([]int, topo.Nodes())
	c.inPending = make([]bool, topo.Nodes())
	c.Watchdog = cfg.WatchdogCycles
	if c.Watchdog == 0 {
		c.Watchdog = 10000
	}
	c.skipDisabled = cfg.DisableEventSkip
	c.initShards(cfg.Shards, cfg.Probe)
	return c
}

// Bind finishes construction once the Core has its final address (the
// engines embed it by value): it routes fault transition events through
// the emitter. The engine sets the hooks alongside.
func (c *Core) Bind() {
	if c.Faults != nil {
		c.Faults.OnChange = func(from topology.NodeID, dir topology.Direction, failed bool) {
			c.Em.Fault(c.Cycle, from, dir, failed)
		}
	}
	// Method values bound here point at the final address; binding them in
	// NewCore would capture the soon-discarded stack copy.
	c.injectFn = c.injectDomain
}

// Enqueue creates a packet at the current cycle and queues it at src. The
// engines validate arguments (their panic messages carry the package name)
// before delegating here.
func (c *Core) Enqueue(src, dst topology.NodeID, length int) *Packet {
	p := &Packet{
		ID: c.NextID, Src: src, Dst: dst, Length: length,
		Created: c.Cycle, Injected: -1, Arrived: -1,
	}
	c.NextID++
	c.queues[src] = append(c.queues[src], p)
	c.queued++
	c.addPending(int32(src))
	return p
}

// QueueLen reports how many generated messages wait at the node's source
// queue (not yet injecting).
func (c *Core) QueueLen(node topology.NodeID) int {
	return len(c.queues[node]) - c.qhead[node]
}

// MaxQueueLen reports the longest current source queue.
func (c *Core) MaxQueueLen() int {
	max := 0
	for i := range c.queues {
		if l := len(c.queues[i]) - c.qhead[i]; l > max {
			max = l
		}
	}
	return max
}

// Backlog counts queued plus retry-pending packets; the engine adds its
// active worm count for the InFlight total. O(1): the queue and retry
// populations are tracked incrementally.
func (c *Core) Backlog() int { return c.queued + c.retryCount }

// FaultEvents counts channel-break events applied so far, including static
// faults.
func (c *Core) FaultEvents() int64 {
	if c.Faults == nil {
		return 0
	}
	return c.Faults.FailEvents()
}

// ActiveFaults reports how many channels are currently broken.
func (c *Core) ActiveFaults() int {
	if c.Faults == nil {
		return 0
	}
	return c.Faults.ActiveFaults()
}

// addPending puts a node on the injection worklist (idempotent).
func (c *Core) addPending(node int32) {
	if !c.inPending[node] {
		c.inPending[node] = true
		c.pending = append(c.pending, node)
	}
}

// nodeBusy reports whether the node still has queued packets or retry
// entries (due or not).
func (c *Core) nodeBusy(node int32) bool {
	if c.qhead[node] < len(c.queues[node]) {
		return true
	}
	return c.retries != nil && len(c.retries[node]) > 0
}

// sortPending restores ascending node order. The list is nearly sorted —
// compaction preserves order and new nodes append at the end — so an
// insertion sort is effectively linear; and because each node appears at
// most once the order is total, making the visit order identical to the
// full node scan this worklist replaces.
func (c *Core) sortPending() {
	p := c.pending
	for i := 1; i < len(p); i++ {
		v := p[i]
		j := i - 1
		for j >= 0 && p[j] > v {
			p[j+1] = p[j]
			j--
		}
		p[j+1] = v
	}
}

// popRetry returns the first due retry packet at the node, or nil. Entries
// are scanned in abort order so an early abort with a long backoff does not
// block a later one with a short backoff. The caller owns the retryCount
// bookkeeping: the sharded injection path tracks per-domain deltas instead
// of racing on the shared counter.
func (c *Core) popRetry(node int32) *Packet {
	if c.retries == nil {
		return nil
	}
	q := c.retries[node]
	for i := range q {
		if q[i].at <= c.Cycle {
			p := q[i].p
			c.retries[node] = append(q[:i], q[i+1:]...)
			return p
		}
	}
	return nil
}

// popQueue dequeues the node's oldest generated packet, or nil. As with
// popRetry, the caller owns the queued bookkeeping.
func (c *Core) popQueue(node int32) *Packet {
	if c.qhead[node] >= len(c.queues[node]) {
		return nil
	}
	p := c.queues[node][c.qhead[node]]
	c.queues[node][c.qhead[node]] = nil
	c.qhead[node]++
	if c.qhead[node] == len(c.queues[node]) {
		c.queues[node] = c.queues[node][:0]
		c.qhead[node] = 0
	}
	return p
}

// FaultPhase applies this cycle's channel breaks and repairs and refreshes
// the fault-visibility map; when the fault epoch advances it invokes the
// engine's OnEpochChange hook so stale cached candidate sets are dropped.
func (c *Core) FaultPhase() {
	if c.Faults == nil {
		return
	}
	c.Faults.Advance(c.Cycle)
	if c.Health != nil {
		c.Health.Refresh()
		if e := c.Faults.Epoch(); e != c.faultEpoch {
			c.faultEpoch = e
			c.OnEpochChange()
		}
	}
}

// InjectPhase runs source injection over the pending worklist: for each
// node with queued work, in ascending node order, due retries then fresh
// messages enter the injection buffer while it is free; packets whose
// destination the fault set has cut off entirely are dropped without
// entering the network. Nodes left with no queued work leave the
// worklist. It reports whether anything happened (progress).
//
// With ShardCount() > 1 the sorted worklist is partitioned at the domain
// bounds and injected in parallel (see injectSharded); because nodes are
// injection-independent, the per-domain results merged in domain order are
// identical to this serial loop.
func (c *Core) InjectPhase() bool {
	if len(c.pending) == 0 {
		return false
	}
	c.sortPending()
	if c.shards > 1 && c.InjPlaceShard != nil {
		return c.injectSharded()
	}
	progress := false
	out := c.pending[:0]
	for _, nd := range c.pending {
		node := topology.NodeID(nd)
		if c.InjFree(node) {
			for {
				p := c.popRetry(nd)
				if p != nil {
					c.retryCount--
				} else {
					p = c.popQueue(nd)
					if p == nil {
						break
					}
					c.queued--
				}
				if c.Recovery.Enabled && c.Faults != nil && c.Faults.ActiveFaults() > 0 &&
					c.CutOff(node, p.Dst) {
					c.DropPacket(p, metrics.DropUnreachable)
					progress = true
					continue // the injection buffer is still free; try the next
				}
				p.Injected = c.Cycle
				c.InjPlace(node, p)
				progress = true
				c.Em.Inject(c.Cycle, p.Src, p.Dst, p.Length)
				break
			}
		}
		if c.nodeBusy(nd) {
			out = append(out, nd)
		} else {
			c.inPending[nd] = false
		}
	}
	c.pending = out
	return progress
}

// FinishAbort is the engine-independent tail of a worm abort, after the
// engine has drained the worm's flits and released its buffers and
// channels: accounting, then retry with backoff or drop.
func (c *Core) FinishAbort(p *Packet) {
	p.Injected = -1
	p.Hops = 0
	p.Aborts++
	c.PacketsAborted++
	c.Em.Abort(c.Cycle, p.Src, p.Dst, p.Length, p.Aborts)
	if c.Recovery.MaxRetries >= 0 && p.Aborts > c.Recovery.MaxRetries {
		c.DropPacket(p, metrics.DropRetriesExhausted)
		return
	}
	if !c.Reachable(p.Src, p.Dst) {
		c.DropPacket(p, metrics.DropUnreachable)
		return
	}
	delay := c.Recovery.Backoff(p.Aborts)
	c.retries[p.Src] = append(c.retries[p.Src], retryEntry{p: p, at: c.Cycle + delay})
	c.retryCount++
	c.addPending(int32(p.Src))
	c.PacketsRetried++
	c.Em.Retry(c.Cycle, p.Src, p.Dst, p.Aborts, delay)
}

// DropPacket abandons a packet: it leaves the in-flight population for
// good.
func (c *Core) DropPacket(p *Packet, reason metrics.DropReason) {
	c.PacketsDropped++
	c.Em.Drop(c.Cycle, p.Src, p.Dst, p.Length, reason)
}

// CutOff is the cheap injection-time unreachability check: the source has
// no live outgoing channel, or the destination no live incoming one. It
// catches failed-node destinations outright; subtler routing-restricted
// unreachability is caught by the engine's full BFS when the packet is
// aborted.
func (c *Core) CutOff(src, dst topology.NodeID) bool {
	g := c.Grid
	srcCut, dstCut := true, true
	for d := 0; d < g.Dims2; d++ {
		dir := topology.Direction(d)
		if nb, ok := g.Neighbor(src, dir); ok && nb != src {
			if !c.Faulted[int(src)*g.Dims2+d] {
				srcCut = false
			}
		}
		if nb, ok := g.Neighbor(dst, dir); ok && nb != dst {
			if back, ok2 := g.Neighbor(nb, dir.Opposite()); ok2 && back == dst &&
				!c.Faulted[int(nb)*g.Dims2+int(dir.Opposite())] {
				dstCut = false
			}
		}
		if !srcCut && !dstCut {
			return false
		}
	}
	return true
}

// SetInjectionHorizon records the caller's promise that no Enqueue will
// happen at a cycle strictly before the given one. The promise is what
// makes event-driven cycle skipping sound: when the network holds no worm
// and no queued packet, every cycle before the horizon is provably empty
// except for retry-backoff expiries and scheduled fault transitions, whose
// times the core knows, so EndStep may leap the clock over them (see the
// event-clock section of docs/performance.md). Passing a cycle at or
// before the current one (0 included) withdraws the promise and disables
// skipping until a new horizon is set. The caller may raise, lower or
// clear the horizon between any two steps; it must simply never Enqueue
// earlier than the last promise still in force when a Step runs.
func (c *Core) SetInjectionHorizon(cycle int64) { c.horizon = cycle }

// CyclesSkipped reports how many cycles the event clock has leaped over
// instead of stepping, and Leaps how many leaps did it. Skipped cycles are
// charged to probes and the watchdog exactly as if they had been stepped,
// so the counters are pure execution telemetry: they never affect results.
func (c *Core) CyclesSkipped() int64 { return c.skipped }

// Leaps reports how many clock leaps CyclesSkipped accumulated over.
func (c *Core) Leaps() int64 { return c.leaps }

// EndStep closes the cycle: it flushes batched probe events, advances the
// clock and evaluates the deadlock watchdog. active is the engine's
// in-network worm count; the return value reports whether the watchdog
// fired (never under recovery, which aborts stuck worms per-worm instead).
//
// When the network is provably idle — no active worm and no queued packet
// — and the caller has promised an injection horizon, EndStep then leaps
// the clock toward the horizon (see leap), making idle cycles cost O(1)
// instead of one no-op step each.
func (c *Core) EndStep(progress bool, active int) bool {
	c.Em.Tick(c.Cycle)
	c.Cycle++
	if progress {
		c.lastProgress = c.Cycle
	} else if !c.Recovery.Enabled {
		// Recovery mode never fail-stops: stuck worms are aborted by the
		// per-worm timeout, and a quiet network with packets only waiting
		// out retry backoff is making (delayed) progress.
		if c.Watchdog > 0 && active+c.queued+c.retryCount > 0 && c.Cycle-c.lastProgress >= c.Watchdog {
			return true
		}
	}
	if active == 0 && c.queued == 0 && !c.skipDisabled && c.horizon > c.Cycle {
		c.leap()
	}
	return false
}

// leap advances the clock over cycles a stepped run would spend doing
// nothing observable. It may only be called when the network is idle (no
// active worm, no queued packet): a stepped run of such a cycle applies no
// fault transition before the next scheduled one, injects nothing before
// the earliest retry expiry or the caller's injection horizon, moves no
// flit, and cannot fire the watchdog (without recovery an idle network has
// nothing in flight; with it the watchdog never fires) — its only
// observable act is the end-of-cycle probe Tick. The leap target is
// therefore the minimum of the injection horizon, the earliest pending
// retry expiry and the next scheduled fault transition; every skipped
// cycle's Tick is forwarded to the probe so collectors see the identical
// event stream, and the clock lands exactly on the first cycle where
// something can happen, which then runs as a full step. Results are
// bit-identical to stepping every cycle.
func (c *Core) leap() {
	target := c.horizon
	if c.retryCount > 0 {
		if at := c.nextRetryAt(); at < target {
			target = at
		}
	}
	if c.Faults != nil {
		if at := c.Faults.NextEventCycle(); at < target {
			target = at
		}
	}
	if target <= c.Cycle {
		return
	}
	c.Em.TickEmpty(c.Cycle, target-c.Cycle)
	c.skipped += target - c.Cycle
	c.leaps++
	c.Cycle = target
}

// nextRetryAt scans the pending worklist for the earliest retry-backoff
// expiry. Every node holding retry entries is on the worklist (FinishAbort
// puts it there and InjectPhase keeps busy nodes), so the scan is complete;
// it runs only on idle networks, where the worklist holds exactly the
// retry-waiting nodes. At leap time every entry is in the future: a due
// entry would have been injected (or dropped) by this step's InjectPhase,
// making the network non-idle.
func (c *Core) nextRetryAt() int64 {
	at := int64(math.MaxInt64)
	for _, nd := range c.pending {
		for i := range c.retries[nd] {
			if e := c.retries[nd][i].at; e < at {
				at = e
			}
		}
	}
	return at
}

// Deadlock builds the watchdog's error value.
func (c *Core) Deadlock(active int, stuck []*Packet) *DeadlockError {
	return &DeadlockError{Cycle: c.Cycle, InFlight: active + c.queued + c.retryCount, Stuck: stuck}
}
