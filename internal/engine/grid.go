package engine

import "turnmodel/internal/topology"

// Grid is the flat-indexed image of a topology.Topology: neighbor and
// wraparound lookups become single loads into dense precomputed tables,
// replacing the interface calls (and their coordinate arithmetic) in the
// per-cycle step loops. A Grid is immutable after construction and safe
// for concurrent use.
type Grid struct {
	Topo  topology.Topology
	Dims  int
	Dims2 int // 2*Dims: directed channel classes per node
	Nodes int

	// neighbor[node*Dims2+dir] is the node the channel leaving node in
	// dir enters, or -1 when the channel does not exist (mesh boundary).
	// wrap marks torus wraparound channels under the same key.
	neighbor []int32
	wrap     []bool
}

// NewGrid precomputes the flat tables for a topology.
func NewGrid(topo topology.Topology) *Grid {
	g := &Grid{
		Topo:  topo,
		Dims:  topo.Dims(),
		Dims2: 2 * topo.Dims(),
		Nodes: topo.Nodes(),
	}
	g.neighbor = make([]int32, g.Nodes*g.Dims2)
	g.wrap = make([]bool, g.Nodes*g.Dims2)
	for node := 0; node < g.Nodes; node++ {
		for d := 0; d < g.Dims2; d++ {
			dir := topology.Direction(d)
			if nb, ok := topo.Neighbor(topology.NodeID(node), dir); ok {
				g.neighbor[node*g.Dims2+d] = int32(nb)
				g.wrap[node*g.Dims2+d] = topo.Wraparound(topology.NodeID(node), dir)
			} else {
				g.neighbor[node*g.Dims2+d] = -1
			}
		}
	}
	return g
}

// Key is the dense index of the directed channel leaving node in dir; the
// engines key their outOwner/faulted/channel-load tables by it.
func (g *Grid) Key(node topology.NodeID, d topology.Direction) int {
	return int(node)*g.Dims2 + int(d)
}

// Neighbor is the table-backed equivalent of Topology.Neighbor.
func (g *Grid) Neighbor(node topology.NodeID, d topology.Direction) (topology.NodeID, bool) {
	nb := g.neighbor[int(node)*g.Dims2+int(d)]
	return topology.NodeID(nb), nb >= 0
}

// Wrap is the table-backed equivalent of Topology.Wraparound.
func (g *Grid) Wrap(node topology.NodeID, d topology.Direction) bool {
	return g.wrap[int(node)*g.Dims2+int(d)]
}
