package engine_test

// The cross-mode differential harness: the same workload is driven through
// a stepped engine (DisableEventSkip, every cycle executed individually)
// and through event-driven engines that leap the clock over provably idle
// cycles, alone and composed with sharding. Event-driven cycle skipping is
// an execution strategy, not a model change, so every observable must be
// bit-identical: per-packet injection and delivery cycles, hop counts,
// abort counts, counter totals, and the outcome of every step — for every
// registered algorithm and for the faulted, recovery, fault-masking and
// random fault-process configurations. Sparse workloads additionally
// assert that leaps actually happened, so the equivalence is not vacuous.

import (
	"math/rand"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/network"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/vc"
	"turnmodel/internal/vcnet"
)

// skipEngine is the shardEngine surface plus the event clock.
type skipEngine interface {
	shardEngine
	Cycle() int64
	SetInjectionHorizon(cycle int64)
	CyclesSkipped() int64
}

// skipCase extends a shardCase with a random fault process and a
// leap-expectation flag. Cases with wantLeaps are sparse enough that a
// leap-free run means the event clock is broken (or disabled), so the
// harness fails rather than passing vacuously.
type skipCase struct {
	shardCase
	plan      fault.Plan
	wantLeaps bool
}

func skipCases() []skipCase {
	var out []skipCase
	// Every cross-shard case (all registered algorithms, static faults,
	// recovery, masking) rides along at its original rate: skipping must
	// be a no-op on busy workloads too.
	for _, c := range shardCases() {
		out = append(out, skipCase{shardCase: c})
	}
	// Sparse workloads where idle gaps dominate: leaps are guaranteed and
	// asserted. One plain, one with recovery (retry backoff timers bound
	// the leaps), one with a random fault process with repair (the fault
	// event heap bounds the leaps), one masked.
	sparse := func(alg string, topo string, rec bool, pol fault.RoutingPolicy, plan fault.Plan, faults ...topology.Channel) skipCase {
		return skipCase{
			shardCase: shardCase{
				diffCase: diffCase{topo: topo, alg: alg, rate: 0.002, cycles: 6000, rec: rec, faults: faults},
				pol:      pol,
			},
			plan:      plan,
			wantLeaps: true,
		}
	}
	out = append(out,
		sparse("west-first", "mesh", false, fault.RoutingPolicy{}, fault.Plan{}),
		sparse("negative-first+wrap", "torus", true, fault.RoutingPolicy{}, fault.Plan{}),
		sparse("p-cube-nonminimal", "cube", true, fault.RoutingPolicy{}, fault.Plan{},
			mustChan("cube", 3, topology.Dir(1, false))),
		sparse("west-first", "mesh", true, fault.RoutingPolicy{Visibility: fault.VisibilityLocal},
			fault.Plan{Rate: 2e-5, Repair: 400, Seed: 9}),
	)
	return out
}

func (c skipCase) skipName() string {
	n := c.shardName()
	if !c.plan.Empty() {
		n += "/faultplan"
	}
	if c.wantLeaps {
		n += "/sparse"
	}
	return n
}

// buildSkip constructs one engine for the case; stepped pins the clock
// mode, shards the spatial partitioning underneath it.
func buildSkip(t *testing.T, c skipCase, useVC bool, stepped bool, shards int) skipEngine {
	t.Helper()
	alg, err := routing.New(c.alg, c.topology(t))
	if err != nil {
		t.Fatal(err)
	}
	rec := fault.Recovery{}
	if c.rec {
		rec = fault.Recovery{Enabled: true, StallCycles: 200, MaxRetries: 4}
	}
	if useVC {
		return vcnet.New(vcnet.Config{
			Routing:          vc.Lift(alg),
			Faults:           c.faults,
			FaultPlan:        c.plan,
			Recovery:         rec,
			FaultRouting:     c.pol,
			Shards:           shards,
			DisableEventSkip: stepped,
		})
	}
	return network.New(network.Config{
		Routing:          alg,
		Faults:           c.faults,
		FaultPlan:        c.plan,
		Recovery:         rec,
		FaultRouting:     c.pol,
		Shards:           shards,
		DisableEventSkip: stepped,
	})
}

// runSkipTrace drives one engine event to event: each iteration enqueues
// everything due at the current cycle, promises the engine that no further
// injection arrives before the next scheduled one, and steps. A stepped
// engine ignores the promise and advances one cycle; an event-driven one
// may leap. The recorded trace uses the same observables as the cross-shard
// harness, so compareTraces applies unchanged. Returns the trace and how
// many cycles the engine skipped.
func runSkipTrace(t *testing.T, c skipCase, e skipEngine, sched []injection) (trace, int64) {
	t.Helper()
	defer e.Close()
	var tr trace
	next := 0
	drain := c.cycles + 20000
	for e.Cycle() < drain {
		cycle := e.Cycle()
		for next < len(sched) && sched[next].cycle == cycle {
			in := sched[next]
			e.Enqueue(in.src, in.dst, in.length)
			next++
		}
		if next < len(sched) {
			e.SetInjectionHorizon(sched[next].cycle)
		} else {
			e.SetInjectionHorizon(drain)
		}
		if err := e.Step(); err != nil {
			tr.stepErr = err.Error()
			tr.errCycle = cycle
			break
		}
		for _, p := range e.TakeDelivered() {
			tr.deliveries = append(tr.deliveries, delivery{
				cycle: cycle, id: p.ID, injected: p.Injected, arrived: p.Arrived,
				hops: p.Hops, aborts: p.Aborts,
			})
		}
		if next == len(sched) && e.InFlight() == 0 {
			break
		}
	}
	tr.totals = totalsOf(e)
	return tr, e.CyclesSkipped()
}

// crossMode runs one case stepped and compares the event-driven runs at
// shard counts 1, 2 and 4 against it.
func crossMode(t *testing.T, c skipCase, useVC bool) {
	topo := c.topology(t)
	sched := schedule(c.diffCase, topo, 42)
	stepped, skipped := runSkipTrace(t, c, buildSkip(t, c, useVC, true, 1), sched)
	if skipped != 0 {
		t.Fatalf("stepped engine skipped %d cycles; DisableEventSkip is broken", skipped)
	}
	if stepped.totals.Delivered == 0 {
		t.Fatalf("stepped run delivered no packets (workload too weak to mean anything)")
	}
	for _, shards := range []int{1, 2, 4} {
		leaped, skipped := runSkipTrace(t, c, buildSkip(t, c, useVC, false, shards), sched)
		compareTraces(t, shards, stepped, leaped)
		if c.wantLeaps && skipped == 0 {
			t.Errorf("shards=%d: sparse workload skipped no cycles; the equivalence check is vacuous", shards)
		}
	}
}

// TestCrossModeNetwork checks that the physical-channel simulator produces
// bit-identical results with the clock stepped and leaping, at shard
// counts 1, 2 and 4.
func TestCrossModeNetwork(t *testing.T) {
	for _, c := range skipCases() {
		c := c
		t.Run(c.skipName(), func(t *testing.T) {
			t.Parallel()
			crossMode(t, c, false)
		})
	}
}

// TestCrossModeVCNet checks the virtual-channel simulator the same way.
func TestCrossModeVCNet(t *testing.T) {
	for _, c := range skipCases() {
		c := c
		t.Run(c.skipName(), func(t *testing.T) {
			t.Parallel()
			crossMode(t, c, true)
		})
	}
}

// TestCrossModeToggleProperty is the property variant: the injection
// horizon is granted and withdrawn at random mid-run — stretches where the
// caller promises nothing (horizon 0) interleave with stretches where the
// engine may leap — and the trace must still match the fully stepped
// baseline exactly, on both simulators, across several toggle seeds. This
// pins that skipping composes with itself: every leap is individually
// sound no matter which earlier idle cycles were leaped or stepped.
func TestCrossModeToggleProperty(t *testing.T) {
	c := skipCase{
		shardCase: shardCase{
			diffCase: diffCase{topo: "mesh", alg: "west-first", rate: 0.004, cycles: 6000, rec: true,
				faults: []topology.Channel{mustChan("mesh", 7, topology.East)}},
		},
	}
	topo := c.topology(t)
	sched := schedule(c.diffCase, topo, 42)
	for _, useVC := range []bool{false, true} {
		name := "network"
		if useVC {
			name = "vcnet"
		}
		t.Run(name, func(t *testing.T) {
			baseline, _ := runSkipTrace(t, c, buildSkip(t, c, useVC, true, 1), sched)
			if baseline.totals.Delivered == 0 {
				t.Fatal("baseline delivered no packets")
			}
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				e := buildSkip(t, c, useVC, false, 1)
				var tr trace
				next := 0
				drain := c.cycles + 20000
				for e.Cycle() < drain {
					cycle := e.Cycle()
					for next < len(sched) && sched[next].cycle == cycle {
						in := sched[next]
						e.Enqueue(in.src, in.dst, in.length)
						next++
					}
					// Toggle: half the iterations withdraw the horizon
					// (horizon 0 never exceeds the current cycle, so the
					// engine steps plainly), half grant it.
					if rng.Intn(2) == 0 {
						e.SetInjectionHorizon(0)
					} else if next < len(sched) {
						e.SetInjectionHorizon(sched[next].cycle)
					} else {
						e.SetInjectionHorizon(drain)
					}
					if err := e.Step(); err != nil {
						tr.stepErr = err.Error()
						tr.errCycle = cycle
						break
					}
					for _, p := range e.TakeDelivered() {
						tr.deliveries = append(tr.deliveries, delivery{
							cycle: cycle, id: p.ID, injected: p.Injected, arrived: p.Arrived,
							hops: p.Hops, aborts: p.Aborts,
						})
					}
					if next == len(sched) && e.InFlight() == 0 {
						break
					}
				}
				tr.totals = totalsOf(e)
				e.Close()
				compareTraces(t, 1, baseline, tr)
			}
		})
	}
}
