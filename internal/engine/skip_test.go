package engine

// White-box tests of the event clock: EndStep may leap the cycle counter
// only to the earliest of the injection horizon, the next retry-backoff
// expiry, and the next fault transition — and never past any of them. The
// cross-mode differential harness (skip_diff_test.go) proves the clock
// modes equivalent end to end; these tests pin the leap bound itself, one
// ingredient at a time, directly on a Core.

import (
	"math"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/topology"
)

func newSkipCore(t *testing.T, cfg Config) *Core {
	t.Helper()
	if cfg.Topo == nil {
		cfg.Topo = topology.NewMesh(4, 4)
	}
	c := NewCore(cfg)
	c.Bind()
	return &c
}

// addRetry plants an aborted packet waiting out its backoff at the node,
// the way FinishAbort would.
func addRetry(c *Core, node topology.NodeID, at int64) {
	c.retries[node] = append(c.retries[node], retryEntry{p: &Packet{Src: node}, at: at})
	c.retryCount++
	c.addPending(int32(node))
}

// TestEndStepLeapBounds drives one EndStep from cycle 0 under every
// combination of promise, pending retry timer, clock mode and residual
// work, and pins exactly where the cycle counter lands. The retry rows are
// the heart of it: a leap must stop at the earliest backoff expiry — a
// clock that jumps past a retry timer would reinject the packet late and
// change delivery schedules.
func TestEndStepLeapBounds(t *testing.T) {
	cases := []struct {
		name    string
		horizon int64
		retryAt int64 // 0: no retry pending
		disable bool
		queued  bool
		active  int
		want    int64 // Cycle after one EndStep
	}{
		{name: "no promise", horizon: 0, want: 1},
		{name: "horizon alone", horizon: 500, want: 500},
		{name: "retry before horizon", horizon: 500, retryAt: 120, want: 120},
		{name: "retry due next cycle", horizon: 500, retryAt: 1, want: 1},
		{name: "retry after horizon", horizon: 300, retryAt: 450, want: 300},
		{name: "earliest of two retries", horizon: 500, retryAt: 80, want: 60},
		{name: "skipping disabled", horizon: 500, disable: true, want: 1},
		{name: "queued packet blocks", horizon: 500, queued: true, want: 1},
		{name: "active worms block", horizon: 500, active: 2, want: 1},
		{name: "stale horizon", horizon: -5, want: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newSkipCore(t, Config{
				Recovery:         fault.Recovery{Enabled: true},
				DisableEventSkip: tc.disable,
			})
			if tc.retryAt > 0 {
				addRetry(c, 3, tc.retryAt)
			}
			if tc.name == "earliest of two retries" {
				addRetry(c, 9, 60) // second, earlier timer on another node
			}
			if tc.queued {
				c.Enqueue(0, 5, 2)
			}
			c.SetInjectionHorizon(tc.horizon)
			if dead := c.EndStep(true, tc.active); dead {
				t.Fatal("EndStep reported deadlock")
			}
			if c.Cycle != tc.want {
				t.Fatalf("Cycle = %d, want %d", c.Cycle, tc.want)
			}
			wantSkipped := int64(0)
			if tc.want > 1 {
				wantSkipped = tc.want - 1
			}
			if c.CyclesSkipped() != wantSkipped {
				t.Errorf("CyclesSkipped = %d, want %d", c.CyclesSkipped(), wantSkipped)
			}
			if wantLeaps := int64(0); wantSkipped > 0 {
				wantLeaps = 1
				if c.Leaps() != wantLeaps {
					t.Errorf("Leaps = %d, want %d", c.Leaps(), wantLeaps)
				}
			} else if c.Leaps() != 0 {
				t.Errorf("Leaps = %d, want 0", c.Leaps())
			}
		})
	}
}

// TestEndStepLeapStopsAtFaultEvent pins the third leap bound: a random
// fault process with pending transitions caps every leap at the next
// scheduled failure or repair, so FaultPhase applies it at exactly the
// cycle a stepped run would.
func TestEndStepLeapStopsAtFaultEvent(t *testing.T) {
	c := newSkipCore(t, Config{FaultPlan: fault.Plan{Rate: 1e-3, Repair: 50, Seed: 3}})
	next := c.Faults.NextEventCycle()
	if next == math.MaxInt64 {
		t.Fatal("fault plan scheduled no events")
	}
	c.SetInjectionHorizon(next + 10000)
	c.EndStep(true, 0)
	want := next
	if want < 1 {
		want = 1
	}
	if c.Cycle != want {
		t.Fatalf("Cycle = %d, want the fault event cycle %d", c.Cycle, want)
	}
	// A horizon below the event wins instead.
	c2 := newSkipCore(t, Config{FaultPlan: fault.Plan{Rate: 1e-6, Repair: 50, Seed: 3}})
	far := c2.Faults.NextEventCycle()
	if far < 100 {
		t.Fatalf("low-rate plan scheduled an event implausibly early (cycle %d)", far)
	}
	c2.SetInjectionHorizon(far - 10)
	c2.EndStep(true, 0)
	if c2.Cycle != far-10 {
		t.Fatalf("Cycle = %d, want the horizon %d", c2.Cycle, far-10)
	}
}

// TestLeapCountersAccumulate: consecutive leaps sum their skipped cycles
// and count individually, and a withdrawn horizon stops further leaping.
func TestLeapCountersAccumulate(t *testing.T) {
	c := newSkipCore(t, Config{})
	c.SetInjectionHorizon(100)
	c.EndStep(true, 0) // 0 -> 1, leap to 100
	c.SetInjectionHorizon(250)
	c.EndStep(true, 0)       // 100 -> 101, leap to 250
	c.SetInjectionHorizon(0) // promise withdrawn
	c.EndStep(true, 0)       // plain step to 251
	if c.Cycle != 251 {
		t.Fatalf("Cycle = %d, want 251", c.Cycle)
	}
	if c.Leaps() != 2 || c.CyclesSkipped() != 99+149 {
		t.Fatalf("Leaps/CyclesSkipped = %d/%d, want 2/248", c.Leaps(), c.CyclesSkipped())
	}
}

// TestTickEmptyChargesEveryCycle: a leap forwards one probe Tick per
// skipped cycle, in order, so collectors sample occupancy over leaps
// exactly as over stepped idle cycles.
func TestTickEmptyChargesEveryCycle(t *testing.T) {
	var ticks []int64
	em := NewEmitter(tickRecorder{ticks: &ticks})
	em.TickEmpty(7, 3)
	want := []int64{7, 8, 9}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// tickRecorder is a probe that records only Tick cycles.
type tickRecorder struct {
	metrics.NopProbe
	ticks *[]int64
}

func (r tickRecorder) Tick(cycle int64) { *r.ticks = append(*r.ticks, cycle) }
