package engine_test

// The cross-shard differential harness: the same workload is driven through
// a serial engine and through sharded engines at several shard counts,
// including counts that do not divide the node count. Sharding is an
// execution strategy, not a model change, so every observable must be
// bit-identical: per-packet injection and delivery cycles, hop counts,
// abort counts, counter totals, and the outcome of every step. The serial
// run is recorded as a trace and each sharded run is compared against it
// cycle by cycle, for every registered algorithm and for the faulted,
// recovery and fault-masking configurations.

import (
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/network"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/vc"
	"turnmodel/internal/vcnet"
)

// shardCounts are compared against serial. 7 does not divide 36, 25 or 16
// nodes, so the last domain is a different size from the others; 4 divides
// all of them evenly.
var shardCounts = []int{2, 4, 7}

// shardEngine is the slice of the simulator surface the harness drives and
// compares; both network.Network and vcnet.Network implement it.
type shardEngine interface {
	Enqueue(src, dst topology.NodeID, length int) *network.Packet
	Step() error
	TakeDelivered() []*network.Packet
	InFlight() int
	PacketsDelivered() int64
	FlitsConsumed() int64
	PacketsAborted() int64
	PacketsRetried() int64
	PacketsDropped() int64
	FaultEvents() int64
	MaskedFaults() int64
	MisrouteHops() int64
	MaxQueueLen() int
	Close()
}

// shardCase extends a diffCase with an optional fault-masking policy (the
// per-domain FaultAware wrappers are one of the sharper sharding hazards,
// so masking gets dedicated cases).
type shardCase struct {
	diffCase
	pol fault.RoutingPolicy
}

func shardCases() []shardCase {
	var out []shardCase
	for _, c := range diffCases {
		out = append(out, shardCase{diffCase: c})
	}
	// Fault masking, with and without misrouting: masked-decision and
	// misroute-hop counters must also agree with serial.
	out = append(out,
		shardCase{
			diffCase: diffCase{topo: "mesh", alg: "west-first", rate: 0.02, cycles: 4000, rec: true,
				faults: []topology.Channel{mustChan("mesh", 7, topology.East), mustChan("mesh", 14, topology.North)}},
			pol: fault.RoutingPolicy{Visibility: fault.VisibilityLocal},
		},
		shardCase{
			diffCase: diffCase{topo: "mesh", alg: "negative-first", rate: 0.02, cycles: 4000, rec: true,
				faults: []topology.Channel{mustChan("mesh", 7, topology.East), mustChan("mesh", 21, topology.South)}},
			pol: fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4},
		},
	)
	return out
}

func (c shardCase) shardName() string {
	n := c.name()
	if c.pol.Enabled() {
		n += "/masked"
	}
	return n
}

// delivery is one delivered packet as observed from outside the engine.
type delivery struct {
	cycle             int64
	id                int64
	injected, arrived int64
	hops, aborts      int
}

// shardTotals are the end-of-run counters compared across shard counts.
type shardTotals struct {
	Delivered, Flits, Aborted, Retried, Dropped int64
	FaultEvents, Masked, Misroutes              int64
	MaxQueue, InFlight                          int
}

func totalsOf(e shardEngine) shardTotals {
	return shardTotals{
		Delivered: e.PacketsDelivered(), Flits: e.FlitsConsumed(),
		Aborted: e.PacketsAborted(), Retried: e.PacketsRetried(),
		Dropped: e.PacketsDropped(), FaultEvents: e.FaultEvents(),
		Masked: e.MaskedFaults(), Misroutes: e.MisrouteHops(),
		MaxQueue: e.MaxQueueLen(), InFlight: e.InFlight(),
	}
}

// trace is the full observable history of one run.
type trace struct {
	deliveries []delivery
	stepErr    string // non-empty if a step deadlocked, ending the run
	errCycle   int64
	totals     shardTotals
}

// runTrace drives one engine over the case's schedule and records
// everything observable.
func runTrace(t *testing.T, c shardCase, e shardEngine, sched []injection) trace {
	t.Helper()
	defer e.Close()
	var tr trace
	next := 0
	drain := c.cycles + 20000
	for cycle := int64(0); cycle < drain; cycle++ {
		for next < len(sched) && sched[next].cycle == cycle {
			in := sched[next]
			e.Enqueue(in.src, in.dst, in.length)
			next++
		}
		if err := e.Step(); err != nil {
			tr.stepErr = err.Error()
			tr.errCycle = cycle
			break
		}
		for _, p := range e.TakeDelivered() {
			tr.deliveries = append(tr.deliveries, delivery{
				cycle: cycle, id: p.ID, injected: p.Injected, arrived: p.Arrived,
				hops: p.Hops, aborts: p.Aborts,
			})
		}
		if next == len(sched) && e.InFlight() == 0 {
			break
		}
	}
	tr.totals = totalsOf(e)
	return tr
}

func compareTraces(t *testing.T, shards int, serial, sharded trace) {
	t.Helper()
	if serial.stepErr != sharded.stepErr || serial.errCycle != sharded.errCycle {
		t.Fatalf("shards=%d: step outcome diverges:\n  serial:  cycle %d %q\n  sharded: cycle %d %q",
			shards, serial.errCycle, serial.stepErr, sharded.errCycle, sharded.stepErr)
	}
	if len(serial.deliveries) != len(sharded.deliveries) {
		t.Fatalf("shards=%d: delivered %d packets serially, %d sharded",
			shards, len(serial.deliveries), len(sharded.deliveries))
	}
	for i := range serial.deliveries {
		if serial.deliveries[i] != sharded.deliveries[i] {
			t.Fatalf("shards=%d: delivery %d diverges:\n  serial:  %+v\n  sharded: %+v",
				shards, i, serial.deliveries[i], sharded.deliveries[i])
		}
	}
	if serial.totals != sharded.totals {
		t.Errorf("shards=%d: counter totals diverge:\n  serial:  %+v\n  sharded: %+v",
			shards, serial.totals, sharded.totals)
	}
}

// TestCrossShardNetwork checks that the physical-channel simulator produces
// bit-identical results at every shard count.
func TestCrossShardNetwork(t *testing.T) {
	for _, c := range shardCases() {
		c := c
		t.Run(c.shardName(), func(t *testing.T) {
			t.Parallel()
			topo := c.topology(t)
			sched := schedule(c.diffCase, topo, 42)
			build := func(shards int) shardEngine {
				alg, err := routing.New(c.alg, c.topology(t))
				if err != nil {
					t.Fatal(err)
				}
				rec := fault.Recovery{}
				if c.rec {
					rec = fault.Recovery{Enabled: true, StallCycles: 200, MaxRetries: 4}
				}
				return network.New(network.Config{
					Routing:      alg,
					Faults:       c.faults,
					Recovery:     rec,
					FaultRouting: c.pol,
					Shards:       shards,
				})
			}
			serial := runTrace(t, c, build(1), sched)
			if serial.totals.Delivered == 0 {
				t.Fatalf("serial run delivered no packets (workload too weak to mean anything)")
			}
			for _, shards := range shardCounts {
				compareTraces(t, shards, serial, runTrace(t, c, build(shards), sched))
			}
		})
	}
}

// TestCrossShardVCNet checks the virtual-channel simulator the same way
// (there only injection and routing/allocation are sharded; movement is
// serial).
func TestCrossShardVCNet(t *testing.T) {
	for _, c := range shardCases() {
		c := c
		t.Run(c.shardName(), func(t *testing.T) {
			t.Parallel()
			topo := c.topology(t)
			sched := schedule(c.diffCase, topo, 42)
			build := func(shards int) shardEngine {
				alg, err := routing.New(c.alg, c.topology(t))
				if err != nil {
					t.Fatal(err)
				}
				rec := fault.Recovery{}
				if c.rec {
					rec = fault.Recovery{Enabled: true, StallCycles: 200, MaxRetries: 4}
				}
				return vcnet.New(vcnet.Config{
					Routing:      vc.Lift(alg),
					Faults:       c.faults,
					Recovery:     rec,
					FaultRouting: c.pol,
					Shards:       shards,
				})
			}
			serial := runTrace(t, c, build(1), sched)
			if serial.totals.Delivered == 0 {
				t.Fatalf("serial run delivered no packets (workload too weak to mean anything)")
			}
			for _, shards := range shardCounts {
				compareTraces(t, shards, serial, runTrace(t, c, build(shards), sched))
			}
		})
	}
}
