package engine

import (
	"turnmodel/internal/metrics"
	"turnmodel/internal/topology"
)

// Emitter batches probe events: the step loops record events into a
// reusable tagged buffer and Tick replays them, in emission order, into the
// configured metrics.Probe before forwarding the Tick itself. Batching
// keeps the interface dispatch out of the innermost loops; with no probe
// configured every method returns immediately, so the no-probe step path
// stays allocation-free (enforced by TestStepZeroAllocs).
//
// Probe semantics are preserved exactly: events of cycle c reach the probe
// in the order they were emitted, before Tick(c), and never after it.
type Emitter struct {
	probe  metrics.Probe
	events []probeEvent
}

type probeEventKind uint8

const (
	evInject probeEventKind = iota
	evBlocked
	evFlitMove
	evDeliver
	evFault
	evAbort
	evRetry
	evDrop
)

// probeEvent is one buffered probe call; the meaning of a, b, x, y, z
// depends on kind.
type probeEvent struct {
	kind   probeEventKind
	failed bool
	dir    topology.Direction
	reason metrics.DropReason
	cycle  int64
	a, b   topology.NodeID
	x, y   int64
	z, w   int64
}

// NewEmitter wraps a probe; a nil probe yields a disabled emitter.
func NewEmitter(p metrics.Probe) Emitter { return Emitter{probe: p} }

// Enabled reports whether a probe is attached.
func (e *Emitter) Enabled() bool { return e.probe != nil }

// Probe returns the attached probe (nil when disabled).
func (e *Emitter) Probe() metrics.Probe { return e.probe }

// Inject buffers a packet-injection event (a worm left its source queue).
func (e *Emitter) Inject(cycle int64, src, dst topology.NodeID, length int) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evInject, cycle: cycle, a: src, b: dst, x: int64(length)})
}

// Blocked buffers a blocked-cycle event (a waiting header got no output).
func (e *Emitter) Blocked(cycle int64, node topology.NodeID) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evBlocked, cycle: cycle, a: node})
}

// FlitMove buffers a flit-movement event (flits crossed the channel
// leaving from in direction dir).
func (e *Emitter) FlitMove(cycle int64, from topology.NodeID, dir topology.Direction, flits int) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evFlitMove, cycle: cycle, a: from, dir: dir, x: int64(flits)})
}

// Deliver buffers a delivery event with the packet's hop count and its
// queueing-vs-in-network delay split.
func (e *Emitter) Deliver(cycle int64, src, dst topology.NodeID, length, hops int, queueDelay, netDelay int64) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{
		kind: evDeliver, cycle: cycle, a: src, b: dst,
		x: int64(length), y: int64(hops), z: queueDelay, w: netDelay,
	})
}

// Fault buffers a channel fault transition (failed or repaired).
func (e *Emitter) Fault(cycle int64, from topology.NodeID, dir topology.Direction, failed bool) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evFault, cycle: cycle, a: from, dir: dir, failed: failed})
}

// Abort buffers a recovery abort (a deadlocked worm withdrawn to its
// source; attempt counts prior tries).
func (e *Emitter) Abort(cycle int64, src, dst topology.NodeID, length, attempt int) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evAbort, cycle: cycle, a: src, b: dst, x: int64(length), y: int64(attempt)})
}

// Retry buffers a recovery reinjection scheduled after a backoff delay.
func (e *Emitter) Retry(cycle int64, src, dst topology.NodeID, attempt int, delay int64) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evRetry, cycle: cycle, a: src, b: dst, x: int64(attempt), y: delay})
}

// Drop buffers a packet drop (e.g. an unreachable destination) with its
// reason.
func (e *Emitter) Drop(cycle int64, src, dst topology.NodeID, length int, reason metrics.DropReason) {
	if e.probe == nil {
		return
	}
	e.events = append(e.events, probeEvent{kind: evDrop, cycle: cycle, a: src, b: dst, x: int64(length), reason: reason})
}

// Absorb appends another emitter's buffered events, in their emission
// order, and clears the source. The sharded step paths emit into
// per-domain emitters during parallel phases and absorb them at the phase
// barrier in domain order, so the merged event stream is identical to the
// serial one.
func (e *Emitter) Absorb(from *Emitter) {
	if e.probe == nil || len(from.events) == 0 {
		return
	}
	e.events = append(e.events, from.events...)
	from.events = from.events[:0]
}

// Tick flushes every buffered event to the probe in order, then forwards
// the end-of-cycle Tick.
func (e *Emitter) Tick(cycle int64) {
	if e.probe == nil {
		return
	}
	for i := range e.events {
		ev := &e.events[i]
		switch ev.kind {
		case evInject:
			e.probe.Inject(ev.cycle, ev.a, ev.b, int(ev.x))
		case evBlocked:
			e.probe.Blocked(ev.cycle, ev.a)
		case evFlitMove:
			e.probe.FlitMove(ev.cycle, ev.a, ev.dir, int(ev.x))
		case evDeliver:
			e.probe.Deliver(ev.cycle, ev.a, ev.b, int(ev.x), int(ev.y), ev.z, ev.w)
		case evFault:
			e.probe.Fault(ev.cycle, ev.a, ev.dir, ev.failed)
		case evAbort:
			e.probe.Abort(ev.cycle, ev.a, ev.b, int(ev.x), int(ev.y))
		case evRetry:
			e.probe.Retry(ev.cycle, ev.a, ev.b, int(ev.x), ev.y)
		case evDrop:
			e.probe.Drop(ev.cycle, ev.a, ev.b, int(ev.x), ev.reason)
		}
	}
	e.events = e.events[:0]
	e.probe.Tick(cycle)
}

// TickEmpty forwards the end-of-cycle Tick for n consecutive cycles that
// had no events, starting at cycle. The event-driven clock calls it when
// leaping over idle cycles: the leap happens right after a Tick flushed
// the buffer and an idle network emits nothing, so there is nothing to
// replay — each skipped cycle contributes exactly the Tick a stepped run
// of it would have, keeping collector state (occupancy sampling,
// last-cycle tracking) identical across leaps. Free with no probe.
func (e *Emitter) TickEmpty(cycle, n int64) {
	if e.probe == nil {
		return
	}
	for i := int64(0); i < n; i++ {
		e.probe.Tick(cycle + i)
	}
}
