package engine_test

// Unit tests for the shared engine core itself: the Grid tables against
// the Topology interface they cache, the Emitter's batching contract, and
// the Core's injection worklist, retry policy, and watchdog. The
// end-to-end equivalence of the two engines built on top is diff_test.go's
// job.

import (
	"reflect"
	"testing"

	"turnmodel/internal/engine"
	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/topology"
)

func TestGridMatchesTopology(t *testing.T) {
	for _, topo := range []topology.Topology{
		topology.NewMesh(4, 5),
		topology.NewMesh(3, 3, 2),
		topology.NewTorus(3, 4),
		topology.NewHypercube(3),
	} {
		g := engine.NewGrid(topo)
		if g.Dims != topo.Dims() || g.Dims2 != 2*topo.Dims() || g.Nodes != topo.Nodes() {
			t.Fatalf("%s: grid shape %d/%d/%d", topo.Name(), g.Dims, g.Dims2, g.Nodes)
		}
		seen := make(map[int]bool)
		for node := 0; node < g.Nodes; node++ {
			for d := 0; d < g.Dims2; d++ {
				id, dir := topology.NodeID(node), topology.Direction(d)
				wantNb, wantOK := topo.Neighbor(id, dir)
				gotNb, gotOK := g.Neighbor(id, dir)
				if gotOK != wantOK || (wantOK && gotNb != wantNb) {
					t.Errorf("%s: Neighbor(%d,%v) = %d,%v, want %d,%v",
						topo.Name(), node, dir, gotNb, gotOK, wantNb, wantOK)
				}
				if wantOK && g.Wrap(id, dir) != topo.Wraparound(id, dir) {
					t.Errorf("%s: Wrap(%d,%v) = %v", topo.Name(), node, dir, g.Wrap(id, dir))
				}
				key := g.Key(id, dir)
				if key < 0 || key >= g.Nodes*g.Dims2 || seen[key] {
					t.Fatalf("%s: Key(%d,%v) = %d not dense/unique", topo.Name(), node, dir, key)
				}
				seen[key] = true
			}
		}
	}
}

// recProbe records probe calls as strings, in arrival order.
type recProbe struct{ calls []string }

func (r *recProbe) rec(s string) { r.calls = append(r.calls, s) }
func (r *recProbe) Inject(c int64, src, dst topology.NodeID, l int) {
	r.rec("inject")
}
func (r *recProbe) Blocked(c int64, n topology.NodeID) { r.rec("blocked") }
func (r *recProbe) FlitMove(c int64, from topology.NodeID, d topology.Direction, f int) {
	r.rec("flitmove")
}
func (r *recProbe) Deliver(c int64, src, dst topology.NodeID, l, h int, qd, nd int64) {
	r.rec("deliver")
}
func (r *recProbe) Fault(c int64, from topology.NodeID, d topology.Direction, failed bool) {
	r.rec("fault")
}
func (r *recProbe) Abort(c int64, src, dst topology.NodeID, l, a int)       { r.rec("abort") }
func (r *recProbe) Retry(c int64, src, dst topology.NodeID, a int, d int64) { r.rec("retry") }
func (r *recProbe) Drop(c int64, src, dst topology.NodeID, l int, reason metrics.DropReason) {
	r.rec("drop")
}
func (r *recProbe) Tick(c int64) { r.rec("tick") }

func TestEmitterBatchesInOrder(t *testing.T) {
	p := &recProbe{}
	em := engine.NewEmitter(p)
	if !em.Enabled() || em.Probe() != metrics.Probe(p) {
		t.Fatal("emitter did not attach the probe")
	}
	em.Inject(0, 1, 2, 3)
	em.Blocked(0, 4)
	em.FlitMove(0, 5, topology.East, 2)
	em.Deliver(0, 1, 2, 3, 4, 5, 6)
	em.Fault(0, 7, topology.North, true)
	em.Abort(0, 1, 2, 3, 1)
	em.Retry(0, 1, 2, 1, 8)
	em.Drop(0, 1, 2, 3, metrics.DropUnreachable)
	if len(p.calls) != 0 {
		t.Fatalf("events reached the probe before Tick: %v", p.calls)
	}
	em.Tick(0)
	want := []string{"inject", "blocked", "flitmove", "deliver", "fault", "abort", "retry", "drop", "tick"}
	if !reflect.DeepEqual(p.calls, want) {
		t.Errorf("flush order %v, want %v", p.calls, want)
	}
	// The buffer is reused, not replayed.
	p.calls = nil
	em.Tick(1)
	if !reflect.DeepEqual(p.calls, []string{"tick"}) {
		t.Errorf("second Tick replayed stale events: %v", p.calls)
	}
}

func TestEmitterNilProbeNoOps(t *testing.T) {
	em := engine.NewEmitter(nil)
	if em.Enabled() || em.Probe() != nil {
		t.Fatal("nil probe reported enabled")
	}
	n := testing.AllocsPerRun(100, func() {
		em.Inject(0, 1, 2, 3)
		em.Deliver(0, 1, 2, 3, 4, 5, 6)
		em.Tick(0)
	})
	if n != 0 {
		t.Errorf("disabled emitter allocates %.1f allocs/op", n)
	}
}

// testCore builds a Core over a 4x4 mesh whose hooks record injections and
// never place a worm in a real network: InjFree consults the free map,
// InjPlace appends to placed.
type testCore struct {
	engine.Core
	free      map[topology.NodeID]bool
	placed    []topology.NodeID
	reachable bool
}

func newTestCore(t *testing.T, cfg engine.Config) *testCore {
	t.Helper()
	if cfg.Topo == nil {
		cfg.Topo = topology.NewMesh(4, 4)
	}
	tc := &testCore{free: map[topology.NodeID]bool{}, reachable: true}
	tc.Core = engine.NewCore(cfg)
	tc.Core.Bind()
	tc.Core.InjFree = func(n topology.NodeID) bool { return tc.free[n] }
	tc.Core.InjPlace = func(n topology.NodeID, p *engine.Packet) { tc.placed = append(tc.placed, n) }
	tc.Core.Reachable = func(src, dst topology.NodeID) bool { return tc.reachable }
	tc.Core.OnEpochChange = func() {}
	return tc
}

func TestCoreInjectsInAscendingNodeOrder(t *testing.T) {
	tc := newTestCore(t, engine.Config{})
	for _, src := range []topology.NodeID{9, 2, 13, 2, 5} {
		tc.Enqueue(src, 0, 4)
		tc.free[src] = true
	}
	if got := tc.Backlog(); got != 5 {
		t.Fatalf("backlog %d, want 5", got)
	}
	if got := tc.QueueLen(2); got != 2 {
		t.Fatalf("queue at node 2 has %d, want 2", got)
	}
	if !tc.InjectPhase() {
		t.Fatal("injection made no progress")
	}
	// One packet per free buffer, visited in ascending node order exactly
	// like the full node scan the worklist replaces.
	want := []topology.NodeID{2, 5, 9, 13}
	if !reflect.DeepEqual(tc.placed, want) {
		t.Errorf("injection order %v, want %v", tc.placed, want)
	}
	if got := tc.Backlog(); got != 1 {
		t.Errorf("backlog after injection %d, want 1 (second packet at node 2)", got)
	}
	// Node 2's buffer is now notionally occupied; with no buffers free the
	// phase makes no progress but keeps the node on the worklist.
	for n := range tc.free {
		tc.free[n] = false
	}
	tc.placed = nil
	if tc.InjectPhase() {
		t.Error("injection progressed with every buffer occupied")
	}
	tc.free[2] = true
	if !tc.InjectPhase() || !reflect.DeepEqual(tc.placed, []topology.NodeID{2}) {
		t.Errorf("queued packet did not inject once the buffer freed: %v", tc.placed)
	}
	if tc.Backlog() != 0 {
		t.Errorf("backlog %d after draining", tc.Backlog())
	}
}

func TestCorePacketNumbering(t *testing.T) {
	tc := newTestCore(t, engine.Config{})
	a := tc.Enqueue(1, 2, 3)
	b := tc.Enqueue(3, 4, 5)
	if a.ID != 0 || b.ID != 1 {
		t.Errorf("packet IDs %d, %d — want enqueue order 0, 1", a.ID, b.ID)
	}
	if a.Created != 0 || a.Injected != -1 || a.Arrived != -1 {
		t.Errorf("fresh packet timestamps: %+v", *a)
	}
}

func TestCoreRetryBackoffThenDrop(t *testing.T) {
	tc := newTestCore(t, engine.Config{
		Recovery: fault.Recovery{Enabled: true, StallCycles: 100, MaxRetries: 1},
	})
	p := tc.Enqueue(0, 15, 4)
	tc.free[0] = true
	tc.InjectPhase()
	if len(tc.placed) != 1 || p.Injected != 0 {
		t.Fatalf("packet did not inject: placed=%v injected=%d", tc.placed, p.Injected)
	}

	// First abort: within the retry budget, so the packet waits out its
	// backoff at the source and reinjects.
	tc.placed = nil
	tc.FinishAbort(p)
	if tc.PacketsAborted != 1 || tc.PacketsRetried != 1 || tc.PacketsDropped != 0 {
		t.Fatalf("after first abort: aborted=%d retried=%d dropped=%d",
			tc.PacketsAborted, tc.PacketsRetried, tc.PacketsDropped)
	}
	if p.Injected != -1 || p.Aborts != 1 {
		t.Fatalf("aborted packet not reset: %+v", *p)
	}
	delay := tc.Recovery.Backoff(1)
	for tc.Cycle <= delay {
		if tc.InjectPhase() && tc.Cycle < delay {
			t.Fatalf("retry reinjected at cycle %d, before its %d-cycle backoff", tc.Cycle, delay)
		}
		tc.EndStep(false, 1)
	}
	if !reflect.DeepEqual(tc.placed, []topology.NodeID{0}) {
		t.Fatalf("retry never reinjected: %v", tc.placed)
	}

	// Second abort exceeds MaxRetries=1: dropped, not retried.
	tc.FinishAbort(p)
	if tc.PacketsDropped != 1 || tc.PacketsRetried != 1 {
		t.Errorf("after second abort: retried=%d dropped=%d, want 1, 1", tc.PacketsRetried, tc.PacketsDropped)
	}
	if tc.Backlog() != 0 {
		t.Errorf("dropped packet still in backlog (%d)", tc.Backlog())
	}
}

func TestCoreAbortUnreachableDrops(t *testing.T) {
	tc := newTestCore(t, engine.Config{
		Recovery: fault.Recovery{Enabled: true, StallCycles: 100, MaxRetries: 5},
	})
	p := tc.Enqueue(0, 15, 4)
	tc.free[0] = true
	tc.InjectPhase()
	tc.reachable = false
	tc.FinishAbort(p)
	if tc.PacketsDropped != 1 || tc.PacketsRetried != 0 {
		t.Errorf("unreachable abort: retried=%d dropped=%d, want 0, 1", tc.PacketsRetried, tc.PacketsDropped)
	}
}

func TestCoreWatchdog(t *testing.T) {
	tc := newTestCore(t, engine.Config{WatchdogCycles: 50})
	tc.Enqueue(0, 15, 4) // in-flight population, never injects (no free buffer)
	fired := false
	for i := 0; i < 120 && !fired; i++ {
		fired = tc.EndStep(false, 0)
	}
	if !fired {
		t.Error("watchdog never fired despite 120 progress-free cycles with backlog")
	}
	if tc.Cycle < 50 {
		t.Errorf("watchdog fired early, at cycle %d", tc.Cycle)
	}
	err := tc.Deadlock(0, nil)
	if err.Cycle != tc.Cycle || err.InFlight != 1 {
		t.Errorf("deadlock error %+v", *err)
	}

	// Progress resets the countdown.
	tc2 := newTestCore(t, engine.Config{WatchdogCycles: 50})
	tc2.Enqueue(0, 15, 4)
	for i := 0; i < 200; i++ {
		if tc2.EndStep(i%30 == 0, 0) {
			t.Fatalf("watchdog fired at cycle %d despite progress every 30 cycles", tc2.Cycle)
		}
	}

	// An idle network never deadlocks, and neither does recovery mode.
	tc3 := newTestCore(t, engine.Config{WatchdogCycles: 50})
	for i := 0; i < 200; i++ {
		if tc3.EndStep(false, 0) {
			t.Fatal("watchdog fired on an empty network")
		}
	}
	tc4 := newTestCore(t, engine.Config{
		WatchdogCycles: 50,
		Recovery:       fault.Recovery{Enabled: true, StallCycles: 100},
	})
	tc4.Enqueue(0, 15, 4)
	for i := 0; i < 200; i++ {
		if tc4.EndStep(false, 1) {
			t.Fatal("watchdog fired in recovery mode")
		}
	}
}

func TestCoreCutOff(t *testing.T) {
	// Fault every channel out of node 0 (corner of a 4x4 mesh: East and
	// North). With static faults the fault state is live and CutOff must
	// see node 0 as cut off as a source, and as a destination (its
	// incoming channels are the opposites of the broken pair's reverse
	// links, which remain live — so only the source side cuts).
	topo := topology.NewMesh(4, 4)
	var faults []topology.Channel
	for d := 0; d < 4; d++ {
		dir := topology.Direction(d)
		if to, ok := topo.Neighbor(0, dir); ok {
			faults = append(faults, topology.Channel{From: 0, To: to, Dir: dir})
		}
	}
	tc := newTestCore(t, engine.Config{Topo: topo, Faults: faults})
	if !tc.CutOff(0, 15) {
		t.Error("source with every outgoing channel broken not reported cut off")
	}
	if tc.CutOff(15, 5) {
		t.Error("healthy pair reported cut off")
	}
	if tc.ActiveFaults() != len(faults) {
		t.Errorf("ActiveFaults %d, want %d", tc.ActiveFaults(), len(faults))
	}
	if tc.FaultEvents() != int64(len(faults)) {
		t.Errorf("FaultEvents %d, want %d", tc.FaultEvents(), len(faults))
	}
}
