package engine_test

// Unit tests for the domain-decomposition primitives: the worker pool's
// barrier and shutdown semantics, the domain partition of the node space,
// the emitter merge used at phase barriers, and the sharded injection
// phase's ordering contract. The end-to-end bit-identity of sharded runs is
// shard_diff_test.go's job.

import (
	"reflect"
	"testing"

	"turnmodel/internal/engine"
	"turnmodel/internal/topology"
)

func TestPoolRunBarrier(t *testing.T) {
	p := engine.NewPool(4)
	defer p.Close()
	hits := make([]int, 4)
	for round := 0; round < 3; round++ {
		// Disjoint writes per domain; Run's barrier publishes them.
		p.Run(func(d int) { hits[d]++ })
	}
	for d, n := range hits {
		if n != 3 {
			t.Errorf("domain %d ran %d times, want 3", d, n)
		}
	}
}

func TestPoolSingleWorker(t *testing.T) {
	// A one-worker pool runs everything on the calling goroutine.
	p := engine.NewPool(1)
	defer p.Close()
	ran := false
	p.Run(func(d int) {
		if d != 0 {
			t.Errorf("domain %d on a single-worker pool", d)
		}
		ran = true
	})
	if !ran {
		t.Fatal("task did not run")
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := engine.NewPool(3)
	p.Close()
	p.Close() // second Close must be a no-op, not a double close panic
}

func TestShardPartition(t *testing.T) {
	mesh := topology.NewMesh(6, 6) // 36 nodes
	for _, shards := range []int{1, 2, 3, 4, 5, 7, 36} {
		c := engine.NewCore(engine.Config{Topo: mesh, Shards: shards})
		if got := c.ShardCount(); got != shards {
			t.Fatalf("shards=%d: ShardCount() = %d", shards, got)
		}
		if shards > 1 {
			// The domains must tile [0, nodes) contiguously, in ascending
			// order, each non-empty and balanced to within one node.
			next := int32(0)
			min, max := 37, 0
			for d := 0; d < shards; d++ {
				lo, hi := c.ShardRange(d)
				if lo != next || hi <= lo {
					t.Fatalf("shards=%d: domain %d is [%d, %d), want contiguous from %d", shards, d, lo, hi, next)
				}
				n := int(hi - lo)
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
				next = hi
			}
			if next != 36 {
				t.Fatalf("shards=%d: domains end at %d, want 36", shards, next)
			}
			if max-min > 1 {
				t.Errorf("shards=%d: domain sizes range %d..%d, want balanced within 1", shards, min, max)
			}
		}
		c.Close()
		if c.ShardCount() != 1 {
			t.Errorf("shards=%d: ShardCount() after Close = %d, want 1", shards, c.ShardCount())
		}
		c.Close() // idempotent
	}
}

func TestShardCountClamped(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {-3, 1}, {1, 1}, {16, 16}, {100, 16},
	} {
		c := engine.NewCore(engine.Config{Topo: mesh, Shards: tc.in})
		if got := c.ShardCount(); got != tc.want {
			t.Errorf("Shards=%d: ShardCount() = %d, want %d", tc.in, got, tc.want)
		}
		c.Close()
	}
}

func TestEmitterAbsorbMergesInOrder(t *testing.T) {
	p := &recProbe{}
	main := engine.NewEmitter(p)
	dom := engine.NewEmitter(p)

	main.Inject(0, 1, 2, 3)
	dom.Blocked(0, 4)
	dom.Drop(0, 1, 2, 3, 0)
	main.Absorb(&dom)
	main.Deliver(0, 1, 2, 3, 4, 5, 6)
	main.Tick(0)

	// Absorbed events land after what the main emitter already held and
	// before what it records afterwards — the domain-order merge.
	want := []string{"inject", "blocked", "drop", "deliver", "tick"}
	if !reflect.DeepEqual(p.calls, want) {
		t.Errorf("flush order %v, want %v", p.calls, want)
	}

	// The source was cleared, not copied: a second absorb adds nothing.
	p.calls = nil
	main.Absorb(&dom)
	main.Tick(1)
	if !reflect.DeepEqual(p.calls, []string{"tick"}) {
		t.Errorf("re-absorb replayed stale events: %v", p.calls)
	}
}

func TestEmitterAbsorbDisabledNoAllocs(t *testing.T) {
	main := engine.NewEmitter(nil)
	dom := engine.NewEmitter(nil)
	n := testing.AllocsPerRun(100, func() {
		dom.Inject(0, 1, 2, 3) // no-op: nil probe
		main.Absorb(&dom)
	})
	if n != 0 {
		t.Errorf("disabled absorb allocates %.1f allocs/op", n)
	}
}

// TestShardedInjectionOrder pins the injection worklist's sharded contract:
// the placement hook is called on the owning domain for every node, and the
// per-domain placements concatenated in domain order equal the ascending
// node order of the serial phase.
func TestShardedInjectionOrder(t *testing.T) {
	mesh := topology.NewMesh(4, 4)
	const shards = 3
	c := engine.NewCore(engine.Config{Topo: mesh, Shards: shards})
	defer c.Close()
	c.Bind()
	placed := make([][]topology.NodeID, shards)
	c.InjFree = func(n topology.NodeID) bool { return true }
	c.InjPlace = func(n topology.NodeID, p *engine.Packet) {
		t.Errorf("serial InjPlace called for node %d on a sharded core", n)
	}
	c.InjPlaceShard = func(d int, n topology.NodeID, p *engine.Packet) {
		lo, hi := c.ShardRange(d)
		if int32(n) < lo || int32(n) >= hi {
			t.Errorf("node %d placed by domain %d [%d, %d)", n, d, lo, hi)
		}
		placed[d] = append(placed[d], n)
	}
	c.Reachable = func(src, dst topology.NodeID) bool { return true }
	c.OnEpochChange = func() {}

	for _, src := range []topology.NodeID{9, 2, 13, 2, 5, 0, 15, 7} {
		c.Enqueue(src, (src+1)%16, 4)
	}
	if !c.InjectPhase() {
		t.Fatal("injection made no progress")
	}
	var got []topology.NodeID
	for d := 0; d < shards; d++ {
		got = append(got, placed[d]...)
	}
	want := []topology.NodeID{0, 2, 5, 7, 9, 13, 15}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sharded injection order %v, want %v", got, want)
	}
	// Node 2's second packet survived on the worklist.
	if c.Backlog() != 1 {
		t.Errorf("backlog %d after injection, want 1", c.Backlog())
	}
}
