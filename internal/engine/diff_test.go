package engine_test

// The differential harness: the same (topology, algorithm, traffic, seed,
// faults) workload is driven through both simulators — internal/network,
// where a physical channel belongs to one worm, and internal/vcnet with the
// algorithm lifted to a single virtual channel per physical channel. With
// one VC the two channel models coincide, so every observable must agree:
// per-packet injection and delivery cycles, hop counts, counter totals, and
// the outcome of every step (including deadlock). This pins the shared
// engine core refactor end to end: any divergence in phase order,
// arbitration tie-breaking, fault handling, or retry policy between the two
// engines shows up as a packet delivered at a different cycle.

import (
	"fmt"
	"math/rand"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/network"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/vc"
	"turnmodel/internal/vcnet"
)

// diffCase is one workload of the harness.
type diffCase struct {
	topo   string // "mesh", "torus", "cube"
	alg    string // registered routing algorithm name
	rate   float64
	cycles int64
	faults []topology.Channel
	rec    bool
}

func (c diffCase) name() string {
	n := c.topo + "/" + c.alg
	if len(c.faults) > 0 {
		n += "/faulted"
	}
	return n
}

func (c diffCase) topology(t *testing.T) topology.Topology {
	t.Helper()
	switch c.topo {
	case "mesh":
		return topology.NewMesh(6, 6)
	case "torus":
		return topology.NewTorus(5, 5)
	case "cube":
		return topology.NewHypercube(4)
	}
	t.Fatalf("unknown topology kind %q", c.topo)
	return nil
}

// injection is one scheduled enqueue, generated once and applied to both
// simulators.
type injection struct {
	cycle    int64
	src, dst topology.NodeID
	length   int
}

func schedule(c diffCase, topo topology.Topology, seed int64) []injection {
	rng := rand.New(rand.NewSource(seed))
	nodes := topo.Nodes()
	var out []injection
	for cycle := int64(0); cycle < c.cycles; cycle++ {
		for node := 0; node < nodes; node++ {
			if rng.Float64() >= c.rate {
				continue
			}
			dst := topology.NodeID(rng.Intn(nodes))
			if dst == topology.NodeID(node) {
				continue
			}
			out = append(out, injection{
				cycle: cycle, src: topology.NodeID(node), dst: dst,
				length: 1 + rng.Intn(8),
			})
		}
	}
	return out
}

// every registered algorithm on a topology it supports; together the cases
// cover all of routing.Names().
var diffCases = []diffCase{
	{topo: "mesh", alg: "dimension-order", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "xy", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "west-first", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "north-last", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "negative-first", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "abonf", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "abopl", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "odd-even", rate: 0.02, cycles: 3000},
	{topo: "mesh", alg: "fully-adaptive", rate: 0.01, cycles: 2000},
	{topo: "torus", alg: "negative-first", rate: 0.02, cycles: 3000},
	{topo: "torus", alg: "west-first+wrap", rate: 0.02, cycles: 3000},
	{topo: "torus", alg: "north-last+wrap", rate: 0.02, cycles: 3000},
	{topo: "torus", alg: "negative-first+wrap", rate: 0.02, cycles: 3000},
	{topo: "torus", alg: "dimension-order+wrap", rate: 0.02, cycles: 3000},
	{topo: "cube", alg: "e-cube", rate: 0.02, cycles: 3000},
	{topo: "cube", alg: "p-cube", rate: 0.02, cycles: 3000},
	{topo: "cube", alg: "p-cube-nonminimal", rate: 0.02, cycles: 3000},
	// Faulted + recovery: aborts, source retries, reachability drops and
	// the fault-epoch plumbing must also agree between the engines.
	{topo: "mesh", alg: "west-first", rate: 0.02, cycles: 4000, rec: true,
		faults: []topology.Channel{mustChan("mesh", 7, topology.East), mustChan("mesh", 14, topology.North)}},
	{topo: "torus", alg: "negative-first+wrap", rate: 0.02, cycles: 4000, rec: true,
		faults: []topology.Channel{mustChan("torus", 6, topology.East)}},
	{topo: "cube", alg: "p-cube-nonminimal", rate: 0.02, cycles: 4000, rec: true,
		faults: []topology.Channel{mustChan("cube", 3, topology.Dir(1, false))}},
}

func mustChan(kind string, from topology.NodeID, d topology.Direction) topology.Channel {
	var topo topology.Topology
	switch kind {
	case "mesh":
		topo = topology.NewMesh(6, 6)
	case "torus":
		topo = topology.NewTorus(5, 5)
	case "cube":
		topo = topology.NewHypercube(4)
	}
	to, ok := topo.Neighbor(from, d)
	if !ok {
		panic(fmt.Sprintf("diff test: node %d has no %v channel on %s", from, d, kind))
	}
	return topology.Channel{From: from, To: to, Dir: d}
}

func TestDifferentialNetworkVsVCNet(t *testing.T) {
	for _, c := range diffCases {
		c := c
		t.Run(c.name(), func(t *testing.T) {
			t.Parallel()
			topo := c.topology(t)
			algPhys, err := routing.New(c.alg, topo)
			if err != nil {
				t.Fatal(err)
			}
			algVC, err := routing.New(c.alg, c.topology(t))
			if err != nil {
				t.Fatal(err)
			}
			rec := fault.Recovery{}
			if c.rec {
				rec = fault.Recovery{Enabled: true, StallCycles: 200, MaxRetries: 4}
			}
			phys := network.New(network.Config{
				Routing:  algPhys,
				Faults:   c.faults,
				Recovery: rec,
			})
			vnet := vcnet.New(vcnet.Config{
				Routing:  vc.Lift(algVC),
				Faults:   c.faults,
				Recovery: rec,
				// With one VC the channel models coincide except for
				// ejection bandwidth, where vcnet defaults to one flit per
				// node per cycle; lift the cap to match network's
				// consume-immediately model.
				UncappedEjection: true,
			})

			sched := schedule(c, topo, 42)
			next := 0
			drain := c.cycles + 20000
			for cycle := int64(0); cycle < drain; cycle++ {
				for next < len(sched) && sched[next].cycle == cycle {
					in := sched[next]
					a := phys.Enqueue(in.src, in.dst, in.length)
					b := vnet.Enqueue(in.src, in.dst, in.length)
					if a.ID != b.ID {
						t.Fatalf("cycle %d: packet ID mismatch %d vs %d", cycle, a.ID, b.ID)
					}
					next++
				}
				errA := phys.Step()
				errB := vnet.Step()
				if (errA == nil) != (errB == nil) {
					t.Fatalf("cycle %d: step errors diverge: network=%v vcnet=%v", cycle, errA, errB)
				}
				if errA != nil {
					// Both deadlocked: the shared watchdog must agree on the
					// diagnosis too.
					if errA.Error() != errB.Error() {
						t.Fatalf("cycle %d: deadlock diagnoses diverge:\n  network: %v\n  vcnet:   %v", cycle, errA, errB)
					}
					return
				}
				da, db := phys.TakeDelivered(), vnet.TakeDelivered()
				if len(da) != len(db) {
					t.Fatalf("cycle %d: delivered %d packets in network, %d in vcnet", cycle, len(da), len(db))
				}
				for i := range da {
					pa, pb := da[i], db[i]
					if pa.ID != pb.ID || pa.Injected != pb.Injected || pa.Arrived != pb.Arrived ||
						pa.Hops != pb.Hops || pa.Aborts != pb.Aborts {
						t.Fatalf("cycle %d: delivery %d diverges:\n  network: %+v\n  vcnet:   %+v", cycle, i, *pa, *pb)
					}
				}
				if next == len(sched) && phys.InFlight() == 0 && vnet.InFlight() == 0 {
					break
				}
			}
			if phys.InFlight() != vnet.InFlight() {
				t.Errorf("in flight at end: network %d, vcnet %d", phys.InFlight(), vnet.InFlight())
			}

			type totals struct {
				Delivered, Flits, Aborted, Retried, Dropped, FaultEvents int64
				MaxQueue                                                 int
			}
			ta := totals{phys.PacketsDelivered(), phys.FlitsConsumed(), phys.PacketsAborted(),
				phys.PacketsRetried(), phys.PacketsDropped(), phys.FaultEvents(), phys.MaxQueueLen()}
			tb := totals{vnet.PacketsDelivered(), vnet.FlitsConsumed(), vnet.PacketsAborted(),
				vnet.PacketsRetried(), vnet.PacketsDropped(), vnet.FaultEvents(), vnet.MaxQueueLen()}
			if ta != tb {
				t.Errorf("counter totals diverge:\n  network: %+v\n  vcnet:   %+v", ta, tb)
			}
			if ta.Delivered == 0 {
				t.Errorf("differential run delivered no packets (workload too weak to mean anything)")
			}
		})
	}
}
