package engine

import (
	"runtime"
	"sync"

	"turnmodel/internal/metrics"
	"turnmodel/internal/topology"
)

// Spatial domain decomposition: a Core configured with Config.Shards > 1
// partitions its node space into contiguous, balanced node-ID ranges
// ("domains"), each stepped by one worker of a persistent Pool. The
// decomposition is designed around one invariant, which docs/performance.md
// argues in full: a sharded step must be bit-identical to the serial step.
//
// Three properties make that possible:
//
//   - Domains are contiguous ascending node ranges, so concatenating
//     per-domain results in domain order reproduces exactly the ascending
//     node (and sorted-request) order the serial loops visit.
//   - Every mutation a domain performs during a parallel phase lands in
//     state owned by that domain (its nodes' queues, buffers and output
//     channels) or in state owned exclusively by one worm — never in state
//     another domain may touch in the same phase.
//   - Order-dependent work (fault transitions, recovery aborts, retirement,
//     the watchdog) stays serial, and per-domain probe events and counter
//     deltas are merged at a barrier in fixed domain order.
//
// The per-domain scratch (keep lists, emitters, counter deltas) is
// preallocated at construction and reused every cycle, so the sharded
// no-probe step path stays 0 allocs/op like the serial one.

// Pool is a persistent worker pool stepping the domains of one sharded
// simulator. Worker 0 is the calling goroutine; workers 1..n-1 are
// goroutines parked between phases. A Pool holds no reference back to its
// Core, and the workers reference only the Pool's shared state, so an
// abandoned simulator is collectable: a finalizer closes the quit channel
// and the workers exit. Call Close to release them deterministically.
type Pool struct {
	workers int
	s       *poolShared
}

// poolShared is the state the worker goroutines retain. It deliberately
// excludes the Pool (and with it the Core) so that dropping the simulator
// makes the Pool unreachable, letting its finalizer run.
type poolShared struct {
	task  func(d int)
	wg    sync.WaitGroup
	start []chan struct{}
	quit  chan struct{}
}

// NewPool starts a pool with one worker per domain. workers must be >= 1;
// worker 0 runs on the goroutine that calls Run.
func NewPool(workers int) *Pool {
	p := &Pool{
		workers: workers,
		s: &poolShared{
			start: make([]chan struct{}, workers),
			quit:  make(chan struct{}),
		},
	}
	for d := 1; d < workers; d++ {
		p.s.start[d] = make(chan struct{}, 1)
		go p.s.worker(d)
	}
	runtime.SetFinalizer(p, (*Pool).Close)
	return p
}

func (s *poolShared) worker(d int) {
	for {
		select {
		case <-s.start[d]:
			s.task(d)
			s.wg.Done()
		case <-s.quit:
			return
		}
	}
}

// Run executes task(d) for every domain d in parallel and returns when all
// have finished (a barrier). Tasks must confine their writes to state owned
// by their domain. Run does not allocate: callers pass prebound function
// values, and the handoff is a buffered-channel send per worker.
func (p *Pool) Run(task func(d int)) {
	s := p.s
	s.task = task
	s.wg.Add(p.workers - 1)
	for d := 1; d < p.workers; d++ {
		s.start[d] <- struct{}{}
	}
	task(0)
	s.wg.Wait()
}

// Close stops the worker goroutines. It is idempotent; Run must not be
// called after Close.
func (p *Pool) Close() {
	if p.s != nil {
		runtime.SetFinalizer(p, nil)
		close(p.s.quit)
		p.s = nil
	}
}

// shardInj is one domain's injection-phase scratch: the surviving worklist
// entries and the counter deltas the serial merge folds into the Core after
// the barrier. Padded so adjacent domains do not share a cache line while
// the workers write.
type shardInj struct {
	keep      []int32
	dequeued  int
	deretried int
	dropped   int64
	progress  bool
	_         [64]byte
}

// initShards finishes sharding setup inside NewCore: domain bounds,
// per-domain emitters and injection scratch, and the worker pool.
func (c *Core) initShards(shards int, probe metrics.Probe) {
	nodes := c.Topo.Nodes()
	if shards > nodes {
		shards = nodes
	}
	if shards < 1 {
		shards = 1
	}
	c.shards = shards
	if shards <= 1 {
		return
	}
	c.bounds = make([]int32, shards+1)
	for d := 0; d <= shards; d++ {
		c.bounds[d] = int32(d * nodes / shards)
	}
	c.shardEm = make([]Emitter, shards)
	for d := range c.shardEm {
		c.shardEm[d] = NewEmitter(probe)
	}
	c.shardInjs = make([]shardInj, shards)
	c.pool = NewPool(shards)
}

// ShardCount reports the number of spatial domains the Core steps in
// parallel; 1 means serial stepping.
func (c *Core) ShardCount() int { return c.shards }

// ShardRange returns domain d's node-ID range [lo, hi). Domains are
// contiguous and ascending: domain 0 starts at node 0 and domain
// ShardCount()-1 ends at Nodes().
func (c *Core) ShardRange(d int) (lo, hi int32) {
	return c.bounds[d], c.bounds[d+1]
}

// RunShards executes task(d) for every domain on the worker pool (a
// barrier; see Pool.Run). With one shard it simply calls task(0).
func (c *Core) RunShards(task func(d int)) {
	if c.pool == nil {
		task(0)
		return
	}
	c.pool.Run(task)
}

// ShardEmitter returns domain d's probe-event buffer. Parallel phases emit
// into it instead of Em; AbsorbShardEmitters folds the buffers back into Em
// in domain order at the phase barrier.
func (c *Core) ShardEmitter(d int) *Emitter { return &c.shardEm[d] }

// AbsorbShardEmitters appends every domain's buffered probe events to the
// main emitter in ascending domain order and clears the buffers. Because
// domains are ascending node ranges, the merged order of a phase that
// visits nodes in ascending order within each domain is identical to the
// serial visit order.
func (c *Core) AbsorbShardEmitters() {
	for d := range c.shardEm {
		c.Em.Absorb(&c.shardEm[d])
	}
}

// Close releases the worker pool and returns the Core to serial stepping.
// It is idempotent and safe to call on a never-sharded Core. The engines
// expose it as their own Close; the pool also carries a finalizer, so a
// forgotten Close leaks nothing once the simulator is collected.
func (c *Core) Close() {
	if c.pool != nil {
		c.pool.Close()
		c.pool = nil
	}
	c.shards = 1
}

// injectSegment locates domain d's slice of the sorted pending worklist:
// entries with bounds[d] <= node < bounds[d+1]. Plain binary search, kept
// closure-free so the parallel phase does not allocate.
func (c *Core) injectSegment(d int) []int32 {
	p := c.pending
	lo, hi := c.bounds[d], c.bounds[d+1]
	i := lowerBound(p, lo)
	j := lowerBound(p, hi)
	return p[i:j]
}

// lowerBound returns the first index whose value is >= v in the ascending
// slice p.
func lowerBound(p []int32, v int32) int {
	i, j := 0, len(p)
	for i < j {
		h := int(uint(i+j) >> 1)
		if p[h] < v {
			i = h + 1
		} else {
			j = h
		}
	}
	return i
}

// injectDomain runs the injection loop over one domain's segment of the
// pending worklist. It is the sharded mirror of the serial loop in
// InjectPhase: the per-node logic is byte-for-byte the same, with the
// shared-counter updates and probe events redirected into the domain's
// scratch for the ordered merge after the barrier. All state it mutates —
// the nodes' queues, retry lists, worklist membership, and (through the
// engine's InjFree/InjPlaceShard hooks) their injection buffers — belongs
// to this domain's nodes.
func (c *Core) injectDomain(d int) {
	st := &c.shardInjs[d]
	em := &c.shardEm[d]
	st.keep = st.keep[:0]
	st.dequeued, st.deretried, st.dropped = 0, 0, 0
	st.progress = false
	for _, nd := range c.injectSegment(d) {
		node := topology.NodeID(nd)
		if c.InjFree(node) {
			for {
				p := c.popRetry(nd)
				if p != nil {
					st.deretried++
				} else {
					p = c.popQueue(nd)
					if p == nil {
						break
					}
					st.dequeued++
				}
				if c.Recovery.Enabled && c.Faults != nil && c.Faults.ActiveFaults() > 0 &&
					c.CutOff(node, p.Dst) {
					st.dropped++
					em.Drop(c.Cycle, p.Src, p.Dst, p.Length, metrics.DropUnreachable)
					st.progress = true
					continue // the injection buffer is still free; try the next
				}
				p.Injected = c.Cycle
				c.InjPlaceShard(d, node, p)
				st.progress = true
				em.Inject(c.Cycle, p.Src, p.Dst, p.Length)
				break
			}
		}
		if c.nodeBusy(nd) {
			st.keep = append(st.keep, nd)
		} else {
			c.inPending[nd] = false
		}
	}
}

// injectSharded is InjectPhase's parallel body: the sorted worklist is
// split at the domain bounds, every domain injects its own segment, and the
// surviving worklist entries, counter deltas and probe events are merged
// serially in domain order — reproducing the serial phase's ascending node
// order exactly.
func (c *Core) injectSharded() bool {
	c.RunShards(c.injectFn)
	progress := false
	out := c.pending[:0]
	for d := 0; d < c.shards; d++ {
		st := &c.shardInjs[d]
		out = append(out, st.keep...)
		c.queued -= st.dequeued
		c.retryCount -= st.deretried
		c.PacketsDropped += st.dropped
		progress = progress || st.progress
		c.Em.Absorb(&c.shardEm[d])
	}
	c.pending = out
	return progress
}
