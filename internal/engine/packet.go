package engine

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Packet is one wormhole packet. The paper's simulations use one packet
// per message, of 10 or 200 flits with equal probability; the first flit
// is the header and the last the tail. Both simulators share this
// bookkeeping (internal/network and internal/vcnet alias it).
type Packet struct {
	// ID is assigned by the network in enqueue order.
	ID int64
	// Src and Dst are the endpoints.
	Src, Dst topology.NodeID
	// Length is the packet size in flits (header and tail included).
	Length int
	// Created is the cycle the message was generated at the source
	// processor (it may then wait in the source queue).
	Created int64
	// Injected is the cycle the header flit entered the network; -1
	// until then.
	Injected int64
	// Arrived is the cycle the tail flit was consumed at the
	// destination; -1 until then.
	Arrived int64
	// Hops counts the channels the header traversed.
	Hops int
	// Aborts counts how many times deadlock recovery has pulled the
	// packet back out of the network. Injected and Hops reset on abort;
	// Created does not, so Latency spans every attempt.
	Aborts int
}

// Latency is the end-to-end message latency in cycles, including source
// queueing, or -1 if the packet has not arrived.
func (p *Packet) Latency() int64 {
	if p.Arrived < 0 {
		return -1
	}
	return p.Arrived - p.Created
}

// String renders the packet for diagnostics (watchdog reports, tests).
func (p *Packet) String() string {
	return fmt.Sprintf("packet %d %d->%d len=%d", p.ID, p.Src, p.Dst, p.Length)
}

// DeadlockError is returned by Step when the watchdog detects that no flit
// has moved for the configured number of cycles although packets are in
// flight — the signature of a routing deadlock. (The "network:" prefix is
// kept for both simulators: internal/vcnet has always returned the base
// simulator's error type.)
type DeadlockError struct {
	Cycle    int64
	InFlight int
	Stuck    []*Packet
}

// Error describes the deadlock: the cycle it was detected and the worms
// involved.
func (e *DeadlockError) Error() string {
	return fmt.Sprintf("network: deadlock at cycle %d: %d packets in flight, none progressing (e.g. %v)",
		e.Cycle, e.InFlight, e.Stuck[0])
}
