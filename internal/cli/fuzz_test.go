package cli

import (
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/topology"
)

// FuzzParseFaults asserts the contract the fault-spec parser owes the
// engines: any input either parses into a plan the fault machinery
// accepts without panicking, or is rejected with an error — never a
// panic, and never a plan that blows up downstream (out-of-range nodes,
// nonexistent directions, garbage channels).
func FuzzParseFaults(f *testing.F) {
	for _, seed := range []string{
		"",
		"5:e",
		"5:east, 6:west",
		"0:+0,0:-1",
		"node3",
		"node3,12:n",
		"nodeX",
		"5:q",
		"5:",
		":e",
		"-5:e",
		"99999:e",
		"5:+99",
		"5:-1x",
		"node-1",
		"node99999999999999999999",
		"5:e,,  ,node0",
		"0:e:w",
		"\x00:\xff",
	} {
		f.Add(seed)
	}
	topos := []topology.Topology{
		topology.NewMesh2D(4, 4),
		topology.NewHypercube(3),
		topology.NewTorus(4, 4),
	}
	f.Fuzz(func(t *testing.T, spec string) {
		for _, topo := range topos {
			plan, err := ParseFaults(spec, topo)
			if err != nil {
				continue
			}
			if verr := fault.Validate(topo, plan); verr != nil {
				t.Fatalf("%s: ParseFaults(%q) accepted a plan Validate rejects: %v", topo.Name(), spec, verr)
			}
			// Instantiating must not panic either: every parsed channel and
			// node must be real.
			fault.MustNew(plan, topo)
		}
	})
}
