package cli

import (
	"reflect"
	"runtime"
	"testing"

	"turnmodel/internal/topology"
)

func TestParseTopology(t *testing.T) {
	cases := []struct {
		spec  string
		name  string
		nodes int
	}{
		{"mesh16x16", "mesh(16x16)", 256},
		{"mesh2x3x4", "mesh(2x3x4)", 24},
		{"hypercube8", "hypercube(8)", 256},
		{"torus4x4", "torus(4x4)", 16},
		{"kary4x2", "torus(4x4)", 16},
		{"hex5x4", "hex(5x4)", 20},
		{"oct4x5", "octagonal(4x5)", 20},
	}
	for _, c := range cases {
		topo, err := ParseTopology(c.spec)
		if err != nil {
			t.Errorf("ParseTopology(%q): %v", c.spec, err)
			continue
		}
		if topo.Name() != c.name || topo.Nodes() != c.nodes {
			t.Errorf("ParseTopology(%q) = %s (%d nodes), want %s (%d)", c.spec, topo.Name(), topo.Nodes(), c.name, c.nodes)
		}
	}
	for _, bad := range []string{"", "ring8", "mesh", "meshAxB", "hypercubeX", "kary4", "hex4", "octx"} {
		if _, err := ParseTopology(bad); err == nil {
			t.Errorf("ParseTopology(%q) accepted", bad)
		}
	}
}

func TestParsePattern(t *testing.T) {
	mesh, _ := ParseTopology("mesh16x16")
	cube, _ := ParseTopology("hypercube8")
	torus, _ := ParseTopology("torus4x4")
	good := []struct {
		spec string
		topo topology.Topology
		name string
	}{
		{"uniform", mesh, "uniform"},
		{"transpose", mesh, "matrix-transpose"},
		{"transpose", cube, "matrix-transpose"},
		{"reverse-flip", cube, "reverse-flip"},
		{"bit-complement", mesh, "bit-complement"},
		{"bit-reversal", cube, "bit-reversal"},
		{"hotspot0.2", mesh, "hotspot(20%)"},
	}
	for _, c := range good {
		p, err := ParsePattern(c.spec, c.topo)
		if err != nil {
			t.Errorf("ParsePattern(%q, %s): %v", c.spec, c.topo.Name(), err)
			continue
		}
		if p.Name() != c.name {
			t.Errorf("ParsePattern(%q).Name() = %q, want %q", c.spec, p.Name(), c.name)
		}
	}
	bad := []struct {
		spec string
		topo topology.Topology
	}{
		{"transpose", torus},
		{"reverse-flip", mesh},
		{"bit-reversal", mesh},
		{"hotspot2", mesh},
		{"hotspotx", mesh},
		{"nope", mesh},
	}
	for _, c := range bad {
		if _, err := ParsePattern(c.spec, c.topo); err == nil {
			t.Errorf("ParsePattern(%q, %s) accepted", c.spec, c.topo.Name())
		}
	}
}

func TestParseFigureIDs(t *testing.T) {
	cases := []struct {
		spec string
		want []string
	}{
		{"13", []string{"figure13"}},
		{"figure14", []string{"figure14"}},
		{"13,14, 16", []string{"figure13", "figure14", "figure16"}},
		{"uniform-cube,extension-hex", []string{"uniform-cube", "extension-hex"}},
		{" 15 ,, ", []string{"figure15"}},
		{"", nil},
		{",", nil},
	}
	for _, c := range cases {
		if got := ParseFigureIDs(c.spec); !reflect.DeepEqual(got, c.want) {
			t.Errorf("ParseFigureIDs(%q) = %v, want %v", c.spec, got, c.want)
		}
	}
}

func TestJobs(t *testing.T) {
	if got := Jobs(4); got != 4 {
		t.Errorf("Jobs(4) = %d", got)
	}
	if got := Jobs(1); got != 1 {
		t.Errorf("Jobs(1) = %d", got)
	}
	for _, n := range []int{0, -3} {
		if got := Jobs(n); got != runtime.NumCPU() {
			t.Errorf("Jobs(%d) = %d, want NumCPU %d", n, got, runtime.NumCPU())
		}
	}
}

func TestParsePolicies(t *testing.T) {
	for _, spec := range []string{"", "xy", "lowest-dimension", "random", "straight", "straight-first"} {
		if _, err := ParseOutputPolicy(spec); err != nil {
			t.Errorf("ParseOutputPolicy(%q): %v", spec, err)
		}
	}
	if _, err := ParseOutputPolicy("nope"); err == nil {
		t.Error("bad output policy accepted")
	}
	for _, spec := range []string{"", "fcfs", "local-fcfs", "oldest", "oldest-first"} {
		if _, err := ParseInputPolicy(spec); err != nil {
			t.Errorf("ParseInputPolicy(%q): %v", spec, err)
		}
	}
	if _, err := ParseInputPolicy("nope"); err == nil {
		t.Error("bad input policy accepted")
	}
}

func TestParseFaults(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	plan, err := ParseFaults("5:e, 5:north, 6:+0, 9:-1, node12", mesh)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Static) != 4 || len(plan.Nodes) != 1 {
		t.Fatalf("parsed %d channels, %d nodes, want 4, 1", len(plan.Static), len(plan.Nodes))
	}
	want := []topology.Channel{
		{From: 5, To: 6, Dir: topology.East},
		{From: 5, To: 9, Dir: topology.North},
		{From: 6, To: 7, Dir: topology.East},
		{From: 9, To: 5, Dir: topology.South},
	}
	for i, ch := range plan.Static {
		if ch != want[i] {
			t.Errorf("channel %d: %v, want %v", i, ch, want[i])
		}
	}
	if plan.Nodes[0] != 12 {
		t.Errorf("failed node %d, want 12", plan.Nodes[0])
	}

	if p, err := ParseFaults("", mesh); err != nil || !p.Empty() {
		t.Errorf("empty spec: plan %+v, err %v", p, err)
	}
	for _, bad := range []string{"0:w", "5", "5:q", "node", "nodeX", "99:e", "5:+9"} {
		if _, err := ParseFaults(bad, mesh); err == nil {
			t.Errorf("ParseFaults(%q) accepted", bad)
		}
	}
}
