// Package cli holds the flag-parsing helpers shared by the command-line
// tools: textual specifications for topologies, traffic patterns and
// arbitration policies.
package cli

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"

	"turnmodel/internal/fault"
	"turnmodel/internal/network"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// ParseTopology understands "mesh16x16", "mesh4x4x4", "hypercube8",
// "torus8x8" and "kary4x2" (k-ary n-cube as k x n).
func ParseTopology(spec string) (topology.Topology, error) {
	switch {
	case strings.HasPrefix(spec, "mesh"):
		sizes, err := parseSizes(strings.TrimPrefix(spec, "mesh"))
		if err != nil {
			return nil, fmt.Errorf("cli: bad mesh spec %q: %v", spec, err)
		}
		return topology.NewMesh(sizes...), nil
	case strings.HasPrefix(spec, "hypercube"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "hypercube"))
		if err != nil {
			return nil, fmt.Errorf("cli: bad hypercube spec %q: %v", spec, err)
		}
		return topology.NewHypercube(n), nil
	case strings.HasPrefix(spec, "torus"):
		sizes, err := parseSizes(strings.TrimPrefix(spec, "torus"))
		if err != nil {
			return nil, fmt.Errorf("cli: bad torus spec %q: %v", spec, err)
		}
		return topology.NewTorus(sizes...), nil
	case strings.HasPrefix(spec, "hex"):
		sizes, err := parseSizes(strings.TrimPrefix(spec, "hex"))
		if err != nil || len(sizes) != 2 {
			return nil, fmt.Errorf("cli: bad hex spec %q (want hexAxB)", spec)
		}
		return topology.NewHex(sizes[0], sizes[1]), nil
	case strings.HasPrefix(spec, "oct"):
		sizes, err := parseSizes(strings.TrimPrefix(spec, "oct"))
		if err != nil || len(sizes) != 2 {
			return nil, fmt.Errorf("cli: bad octagonal spec %q (want octAxB)", spec)
		}
		return topology.NewOctagonal(sizes[0], sizes[1]), nil
	case strings.HasPrefix(spec, "ccc"):
		n, err := strconv.Atoi(strings.TrimPrefix(spec, "ccc"))
		if err != nil {
			return nil, fmt.Errorf("cli: bad ccc spec %q (want cccN)", spec)
		}
		return topology.NewCCC(n), nil
	case strings.HasPrefix(spec, "kary"):
		sizes, err := parseSizes(strings.TrimPrefix(spec, "kary"))
		if err != nil || len(sizes) != 2 {
			return nil, fmt.Errorf("cli: bad k-ary spec %q (want karyKxN)", spec)
		}
		return topology.NewKaryNCube(sizes[0], sizes[1]), nil
	}
	return nil, fmt.Errorf("cli: unknown topology %q (try mesh16x16, hypercube8, torus8x8, kary4x2)", spec)
}

func parseSizes(s string) ([]int, error) {
	parts := strings.Split(s, "x")
	sizes := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, v)
	}
	return sizes, nil
}

// ParsePattern understands "uniform", "transpose", "reverse-flip",
// "bit-complement", "bit-reversal" and "hotspotF" (e.g. "hotspot0.1",
// hot node 0).
func ParsePattern(spec string, topo topology.Topology) (traffic.Pattern, error) {
	mesh, isMesh := topo.(*topology.Mesh)
	hyper, isHyper := topo.(*topology.Hypercube)
	switch {
	case spec == "uniform":
		return traffic.Uniform{Topo: topo}, nil
	case spec == "transpose":
		if isHyper {
			return traffic.NewHypercubeTranspose(hyper), nil
		}
		if isMesh {
			return traffic.NewMeshTranspose(mesh), nil
		}
		return nil, fmt.Errorf("cli: transpose needs a mesh or hypercube, have %s", topo.Name())
	case spec == "reverse-flip":
		if !isHyper {
			return nil, fmt.Errorf("cli: reverse-flip needs a hypercube, have %s", topo.Name())
		}
		return traffic.ReverseFlip{Cube: hyper}, nil
	case spec == "bit-complement":
		return traffic.BitComplement{Topo: topo}, nil
	case spec == "bit-reversal":
		if !isHyper {
			return nil, fmt.Errorf("cli: bit-reversal needs a hypercube, have %s", topo.Name())
		}
		return traffic.BitReversal{Cube: hyper}, nil
	case strings.HasPrefix(spec, "hotspot"):
		f, err := strconv.ParseFloat(strings.TrimPrefix(spec, "hotspot"), 64)
		if err != nil || f <= 0 || f >= 1 {
			return nil, fmt.Errorf("cli: bad hotspot spec %q (want hotspot0.1)", spec)
		}
		return traffic.Hotspot{Topo: topo, Hot: 0, Fraction: f}, nil
	}
	return nil, fmt.Errorf("cli: unknown pattern %q", spec)
}

// ParseFigureIDs splits a comma-separated -figure value and normalizes
// bare figure numbers: "13, extension-hex" becomes ["figure13",
// "extension-hex"]. Empty elements are dropped; an all-empty spec yields
// nil.
func ParseFigureIDs(spec string) []string {
	var ids []string
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if _, err := strconv.Atoi(part); err == nil {
			part = "figure" + part
		}
		ids = append(ids, part)
	}
	return ids
}

// ParseFaults turns a comma-separated -faults value into the static part
// of a fault plan. Each token is either a broken unidirectional channel,
// written as the source node and a direction ("5:e", "5:east", or the
// dimension form "5:+0" / "5:-1" for topologies beyond 2D), or a failed
// node written "nodeN", which breaks every channel into and out of node N.
// The empty spec yields an empty plan. Directions are resolved and
// validated against topo, so a fault on a channel the topology does not
// have (an edge channel of a mesh, say) is an error here rather than a
// panic in the engine.
func ParseFaults(spec string, topo topology.Topology) (fault.Plan, error) {
	var plan fault.Plan
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(tok, "node"); ok {
			id, err := strconv.Atoi(rest)
			if err != nil {
				return fault.Plan{}, fmt.Errorf("cli: bad fault token %q (want nodeN)", tok)
			}
			if id < 0 || id >= topo.Nodes() {
				return fault.Plan{}, fmt.Errorf("cli: fault node %d outside [0,%d)", id, topo.Nodes())
			}
			plan.Nodes = append(plan.Nodes, topology.NodeID(id))
			continue
		}
		nodeStr, dirStr, ok := strings.Cut(tok, ":")
		if !ok {
			return fault.Plan{}, fmt.Errorf("cli: bad fault token %q (want N:dir or nodeN)", tok)
		}
		id, err := strconv.Atoi(nodeStr)
		if err != nil {
			return fault.Plan{}, fmt.Errorf("cli: bad fault source in %q", tok)
		}
		// Bounds-check before consulting the topology: Neighbor's contract
		// only covers in-range nodes and valid directions.
		if id < 0 || id >= topo.Nodes() {
			return fault.Plan{}, fmt.Errorf("cli: fault source %d outside [0,%d)", id, topo.Nodes())
		}
		dir, err := parseDirection(dirStr)
		if err != nil {
			return fault.Plan{}, fmt.Errorf("cli: %v in %q", err, tok)
		}
		if !dir.Valid(topo.Dims()) {
			return fault.Plan{}, fmt.Errorf("cli: direction %s in %q does not exist in %s", dir, tok, topo.Name())
		}
		from := topology.NodeID(id)
		to, exists := topo.Neighbor(from, dir)
		if !exists {
			return fault.Plan{}, fmt.Errorf("cli: fault %q names a channel %s has not: node %d has no %s neighbor",
				tok, topo.Name(), id, dir)
		}
		plan.Static = append(plan.Static, topology.Channel{From: from, To: to, Dir: dir})
	}
	if err := fault.Validate(topo, plan); err != nil {
		return fault.Plan{}, fmt.Errorf("cli: %v", err)
	}
	return plan, nil
}

// ParseFaultRouting turns a -ftroute value into a fault.RoutingPolicy:
// "off" (or the empty string) leaves routing fault-oblivious, "local"
// gives routers knowledge of their own incident channels, "khop" adds
// dissemination at the default radius, and "khopN" (N >= 1) chooses the
// radius explicitly. The misroute budget is a separate flag; callers set
// RoutingPolicy.MisrouteLimit themselves.
func ParseFaultRouting(spec string) (fault.RoutingPolicy, error) {
	if spec == "" {
		return fault.RoutingPolicy{}, nil
	}
	if rest, ok := strings.CutPrefix(spec, "khop"); ok && rest != "" {
		r, err := strconv.Atoi(rest)
		if err != nil || r < 1 {
			return fault.RoutingPolicy{}, fmt.Errorf("cli: bad fault-routing radius in %q (want khopN with N >= 1)", spec)
		}
		return fault.RoutingPolicy{Visibility: fault.VisibilityKHop, Radius: r}, nil
	}
	vis, err := fault.ParseVisibility(spec)
	if err != nil {
		return fault.RoutingPolicy{}, fmt.Errorf("cli: %v", err)
	}
	return fault.RoutingPolicy{Visibility: vis}, nil
}

// parseDirection resolves a direction token: a compass name for 2D
// topologies or the generic "+k"/"-k" dimension form.
func parseDirection(s string) (topology.Direction, error) {
	switch strings.ToLower(s) {
	case "w", "west":
		return topology.West, nil
	case "e", "east":
		return topology.East, nil
	case "s", "south":
		return topology.South, nil
	case "n", "north":
		return topology.North, nil
	}
	if len(s) >= 2 && (s[0] == '+' || s[0] == '-') {
		dim, err := strconv.Atoi(s[1:])
		if err == nil && dim >= 0 {
			return topology.Dir(dim, s[0] == '+'), nil
		}
	}
	return topology.Invalid, fmt.Errorf("bad direction %q (want w/e/s/n, west/east/south/north, or +k/-k)", s)
}

// Jobs normalizes a -jobs flag value: anything below one selects
// runtime.NumCPU().
func Jobs(n int) int {
	if n < 1 {
		return runtime.NumCPU()
	}
	return n
}

// ParseOutputPolicy resolves an output selection policy through the
// network registry ("xy", "random", "straight-first" and their aliases);
// the empty string selects the paper's default ("xy").
func ParseOutputPolicy(spec string) (network.OutputPolicy, error) {
	if spec == "" {
		spec = "xy"
	}
	p, err := network.NewOutputPolicy(spec)
	if err != nil {
		return nil, fmt.Errorf("cli: %v", err)
	}
	return p, nil
}

// ParseInputPolicy resolves an input selection policy through the network
// registry ("local-fcfs", "oldest-first" and their aliases); the empty
// string selects the paper's default ("local-fcfs").
func ParseInputPolicy(spec string) (network.InputPolicy, error) {
	if spec == "" {
		spec = "local-fcfs"
	}
	p, err := network.NewInputPolicy(spec)
	if err != nil {
		return nil, fmt.Errorf("cli: %v", err)
	}
	return p, nil
}
