package network

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

func newMeshNet(t *testing.T, m, n int, alg string) *Network {
	t.Helper()
	mesh := topology.NewMesh2D(m, n)
	a, err := routing.New(alg, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Routing: a})
}

// run steps the network until quiet (nothing in flight) or the cycle
// limit, failing the test on watchdog deadlock.
func run(t *testing.T, n *Network, limit int64) {
	t.Helper()
	for i := int64(0); i < limit; i++ {
		if err := n.Step(); err != nil {
			t.Fatalf("unexpected deadlock: %v", err)
		}
		if n.InFlight() == 0 {
			return
		}
	}
	t.Fatalf("network not quiet after %d cycles (%d in flight)", limit, n.InFlight())
}

func TestSinglePacketZeroLoadLatency(t *testing.T) {
	// Classic wormhole zero-load latency: distance + length - 1 cycles.
	cases := []struct {
		src, dst topology.Coord
		length   int
	}{
		{topology.Coord{0, 0}, topology.Coord{3, 0}, 1},
		{topology.Coord{0, 0}, topology.Coord{3, 0}, 10},
		{topology.Coord{0, 0}, topology.Coord{3, 3}, 10},
		{topology.Coord{0, 0}, topology.Coord{7, 7}, 200},
		{topology.Coord{5, 2}, topology.Coord{5, 3}, 200},
	}
	for _, c := range cases {
		net := newMeshNet(t, 8, 8, "xy")
		mesh := net.Topology()
		p := net.Enqueue(mesh.ID(c.src), mesh.ID(c.dst), c.length)
		run(t, net, 10000)
		dist := mesh.Distance(mesh.ID(c.src), mesh.ID(c.dst))
		want := int64(dist + c.length - 1)
		if p.Latency() != want {
			t.Errorf("%v->%v len=%d: latency %d cycles, want %d", c.src, c.dst, c.length, p.Latency(), want)
		}
		if p.Hops != dist {
			t.Errorf("%v->%v: hops = %d, want %d", c.src, c.dst, p.Hops, dist)
		}
		if p.Injected != 0 {
			t.Errorf("Injected = %d, want 0", p.Injected)
		}
	}
}

func TestFlitConservation(t *testing.T) {
	net := newMeshNet(t, 4, 4, "west-first")
	mesh := net.Topology()
	total := 0
	for i := 0; i < 20; i++ {
		src := topology.NodeID(i % 16)
		dst := topology.NodeID((i*7 + 3) % 16)
		if src == dst {
			continue
		}
		length := 5 + i
		net.Enqueue(src, dst, length)
		total += length
	}
	_ = mesh
	run(t, net, 50000)
	if got := net.FlitsConsumed(); got != int64(total) {
		t.Errorf("FlitsConsumed = %d, want %d", got, total)
	}
	if got := len(net.TakeDelivered()); got == 0 {
		t.Error("TakeDelivered returned nothing")
	}
	if got := net.TakeDelivered(); got != nil {
		t.Error("TakeDelivered did not reset")
	}
}

func TestPipelining(t *testing.T) {
	// A single worm on an empty path advances one flit per cycle: total
	// time = distance + length - 1, exactly — no stalls.
	net := newMeshNet(t, 8, 8, "xy")
	mesh := net.Topology()
	p := net.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{7, 0}), 50)
	run(t, net, 1000)
	if want := int64(7 + 50 - 1); p.Latency() != want {
		t.Errorf("latency = %d, want %d (perfect pipelining)", p.Latency(), want)
	}
}

func TestChannelHeldUntilTail(t *testing.T) {
	// Packet A (long) and packet B (short) need the same channel in the
	// same direction. B must wait for A's tail to pass, so B's latency
	// reflects the serialization.
	net := newMeshNet(t, 8, 2, "xy")
	mesh := net.Topology()
	a := net.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{7, 0}), 100)
	b := net.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{7, 0}), 10)
	run(t, net, 10000)
	if a.Arrived >= b.Arrived {
		t.Errorf("A (first) arrived at %d, B at %d; want A first", a.Arrived, b.Arrived)
	}
	// B cannot even inject until A's tail leaves the injection buffer
	// (cycle ~100), then follows the pipeline.
	if b.Injected < 99 {
		t.Errorf("B injected at %d, want >= 99 (after A's tail)", b.Injected)
	}
}

func TestFCFSArbitration(t *testing.T) {
	// Two packets from different nodes contend for the same output
	// channel; the one whose header arrived at the router first wins.
	net := newMeshNet(t, 8, 8, "xy")
	mesh := net.Topology()
	// Both route east along row 0 and collide at (2,0).
	early := net.Enqueue(mesh.ID(topology.Coord{1, 0}), mesh.ID(topology.Coord{7, 0}), 50)
	if err := net.Step(); err != nil {
		t.Fatal(err)
	}
	if err := net.Step(); err != nil {
		t.Fatal(err)
	}
	// Early's header is now at (2,0) or beyond; inject a competitor at (2,0).
	late := net.Enqueue(mesh.ID(topology.Coord{2, 0}), mesh.ID(topology.Coord{7, 0}), 50)
	run(t, net, 10000)
	if early.Arrived >= late.Arrived {
		t.Errorf("early arrived %d, late arrived %d; FCFS should favor early", early.Arrived, late.Arrived)
	}
}

func TestBlockedPacketWaits(t *testing.T) {
	// Wormhole blocking: a worm whose header cannot acquire a channel
	// waits in place until the holder's tail flit releases it.
	net := newMeshNet(t, 4, 4, "xy")
	mesh := net.Topology()
	// The short packet at (1,1) grabs channel (1,1)->(2,1) immediately;
	// the long worm from (0,1) reaches (1,1) one cycle later and must
	// wait for the short packet's tail, not merely its header.
	long := net.Enqueue(mesh.ID(topology.Coord{0, 1}), mesh.ID(topology.Coord{3, 1}), 200)
	short := net.Enqueue(mesh.ID(topology.Coord{1, 1}), mesh.ID(topology.Coord{3, 1}), 10)
	run(t, net, 10000)
	if short.Arrived >= long.Arrived {
		t.Fatalf("short %d should finish before long %d", short.Arrived, long.Arrived)
	}
	// Unblocked, the long worm would take 3 + 200 - 1 = 202 cycles; the
	// channel hold delays it by roughly the short packet's length.
	if long.Latency() < 202+5 {
		t.Errorf("long latency %d; want >= 207 (delayed by the short worm's tail)", long.Latency())
	}
}

func TestAdaptiveAvoidsBlockedChannel(t *testing.T) {
	// The same scenario with west-first: the cross packet at (1,1) going
	// to (3,1) has only east productive — still blocked. But a packet
	// going to (3,2) can route around via north. Verify it arrives long
	// before the 200-flit worm drains.
	net := newMeshNet(t, 4, 4, "west-first")
	mesh := net.Topology()
	long := net.Enqueue(mesh.ID(topology.Coord{0, 1}), mesh.ID(topology.Coord{3, 1}), 200)
	// Give the long worm time to occupy row 1.
	for i := 0; i < 6; i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
	}
	around := net.Enqueue(mesh.ID(topology.Coord{1, 1}), mesh.ID(topology.Coord{3, 2}), 10)
	run(t, net, 10000)
	if around.Arrived >= long.Arrived {
		t.Errorf("adaptive packet did not route around: around=%d long=%d", around.Arrived, long.Arrived)
	}
	if around.Hops != 3 {
		t.Errorf("around took %d hops, want 3 (minimal)", around.Hops)
	}
}

func TestEnqueuePanics(t *testing.T) {
	net := newMeshNet(t, 4, 4, "xy")
	for name, f := range map[string]func(){
		"self":       func() { net.Enqueue(1, 1, 10) },
		"zero-flits": func() { net.Enqueue(0, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestNewRequiresRouting(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for nil routing")
		}
	}()
	New(Config{})
}

func TestQueueAccounting(t *testing.T) {
	net := newMeshNet(t, 4, 4, "xy")
	mesh := net.Topology()
	src := mesh.ID(topology.Coord{0, 0})
	dst := mesh.ID(topology.Coord{3, 3})
	for i := 0; i < 5; i++ {
		net.Enqueue(src, dst, 10)
	}
	if got := net.QueueLen(src); got != 5 {
		t.Errorf("QueueLen = %d, want 5", got)
	}
	if got := net.MaxQueueLen(); got != 5 {
		t.Errorf("MaxQueueLen = %d, want 5", got)
	}
	if got := net.InFlight(); got != 5 {
		t.Errorf("InFlight = %d, want 5", got)
	}
	if err := net.Step(); err != nil {
		t.Fatal(err)
	}
	// One packet started injecting: queue shrinks by one.
	if got := net.QueueLen(src); got != 4 {
		t.Errorf("after step QueueLen = %d, want 4", got)
	}
	run(t, net, 10000)
	if net.PacketsDelivered() != 5 {
		t.Errorf("PacketsDelivered = %d, want 5", net.PacketsDelivered())
	}
	if net.MaxQueueLen() != 0 || net.InFlight() != 0 {
		t.Error("network not empty after drain")
	}
}

func TestManyPacketsAllDelivered(t *testing.T) {
	// Saturating burst: every node sends to every other node once.
	for _, algName := range []string{"xy", "west-first", "north-last", "negative-first"} {
		net := newMeshNet(t, 4, 4, algName)
		want := int64(0)
		for s := topology.NodeID(0); s < 16; s++ {
			for d := topology.NodeID(0); d < 16; d++ {
				if s == d {
					continue
				}
				net.Enqueue(s, d, 4)
				want++
			}
		}
		run(t, net, 200000)
		if net.PacketsDelivered() != want {
			t.Errorf("%s: delivered %d packets, want %d", algName, net.PacketsDelivered(), want)
		}
	}
}

func TestHypercubeBurst(t *testing.T) {
	h := topology.NewHypercube(4)
	for _, mk := range []func(*topology.Hypercube) routing.Algorithm{routing.ECube, routing.PCube} {
		net := New(Config{Routing: mk(h)})
		want := int64(0)
		for s := topology.NodeID(0); s < 16; s++ {
			d := topology.NodeID(uint(s) ^ 0xF)
			net.Enqueue(s, d, 20)
			want++
		}
		run(t, net, 100000)
		if net.PacketsDelivered() != want {
			t.Errorf("%s: delivered %d, want %d", net.Routing().Name(), net.PacketsDelivered(), want)
		}
	}
}

func TestTorusBurstWithWraparounds(t *testing.T) {
	tr := topology.NewKaryNCube(4, 2)
	for _, mk := range []func(*topology.Torus) routing.Algorithm{routing.NegativeFirstTorus, routing.WestFirstWrap, routing.DimensionOrderWrap} {
		net := New(Config{Routing: mk(tr)})
		want := int64(0)
		for s := topology.NodeID(0); int(s) < tr.Nodes(); s++ {
			for d := topology.NodeID(0); int(d) < tr.Nodes(); d++ {
				if s == d {
					continue
				}
				net.Enqueue(s, d, 3)
				want++
			}
		}
		run(t, net, 300000)
		if net.PacketsDelivered() != want {
			t.Errorf("%s: delivered %d, want %d", net.Routing().Name(), net.PacketsDelivered(), want)
		}
	}
}

func TestMicrosecondsConversion(t *testing.T) {
	if Microseconds(20) != 1 {
		t.Errorf("Microseconds(20) = %v, want 1", Microseconds(20))
	}
	if Microseconds(10) != 0.5 {
		t.Errorf("Microseconds(10) = %v, want 0.5", Microseconds(10))
	}
}

func TestPacketStringAndLatencyBeforeArrival(t *testing.T) {
	net := newMeshNet(t, 4, 4, "xy")
	p := net.Enqueue(0, 5, 10)
	if p.Latency() != -1 {
		t.Errorf("Latency before arrival = %d, want -1", p.Latency())
	}
	if p.String() == "" {
		t.Error("empty String()")
	}
}

func TestHexAndOctagonalBursts(t *testing.T) {
	// The simulator is topology-agnostic: the Section 7 future-work
	// topologies run on it unchanged.
	hex := topology.NewHex(4, 4)
	oct := topology.NewOctagonal(4, 4)
	for _, algName := range []string{"negative-first", "dimension-order"} {
		for _, topo := range []topology.Topology{hex, oct} {
			a, err := routing.New(algName, topo)
			if err != nil {
				t.Fatal(err)
			}
			net := New(Config{Routing: a})
			want := int64(0)
			for s := topology.NodeID(0); int(s) < topo.Nodes(); s++ {
				for d := topology.NodeID(0); int(d) < topo.Nodes(); d++ {
					if s != d {
						net.Enqueue(s, d, 4)
						want++
					}
				}
			}
			run(t, net, 300000)
			if net.PacketsDelivered() != want {
				t.Errorf("%s on %s: delivered %d, want %d", a.Name(), topo.Name(), net.PacketsDelivered(), want)
			}
		}
	}
}

func TestRoutingDelaySlowsHeaders(t *testing.T) {
	// With a D-cycle routing decision (D >= 1), every header hop costs D
	// cycles and arrival detection at the destination another D, while
	// the body still pipelines at one flit per cycle: zero-load latency
	// becomes D*(distance+1) + length - 1. D = 0 is the paper's
	// single-cycle router: distance + length - 1.
	mesh := topology.NewMesh2D(8, 8)
	a, err := routing.New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	for _, delay := range []int64{0, 1, 3} {
		net := New(Config{Routing: a, RoutingDelay: delay})
		p := net.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{5, 0}), 10)
		run(t, net, 10000)
		want := delay*(5+1) + 10 - 1
		if delay == 0 {
			want = 5 + 10 - 1
		}
		if p.Latency() != want {
			t.Errorf("delay %d: latency %d, want %d", delay, p.Latency(), want)
		}
	}
}

func TestChannelLoadAccounting(t *testing.T) {
	// A single packet's flits all cross each channel of its path exactly
	// once.
	mesh := topology.NewMesh2D(4, 4)
	a, err := routing.New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	net := New(Config{Routing: a})
	src := mesh.ID(topology.Coord{0, 0})
	dst := mesh.ID(topology.Coord{2, 1})
	net.Enqueue(src, dst, 25)
	run(t, net, 1000)
	// xy path: east, east, north.
	wantLoaded := []struct {
		node topology.NodeID
		dir  topology.Direction
	}{
		{mesh.ID(topology.Coord{0, 0}), topology.East},
		{mesh.ID(topology.Coord{1, 0}), topology.East},
		{mesh.ID(topology.Coord{2, 0}), topology.North},
	}
	for _, c := range wantLoaded {
		if got := net.ChannelLoad(c.node, c.dir); got != 25 {
			t.Errorf("channel %d/%v load = %d, want 25", c.node, c.dir, got)
		}
	}
	// Every other channel is untouched; total equals length * hops.
	total := int64(0)
	for node := topology.NodeID(0); int(node) < mesh.Nodes(); node++ {
		for _, d := range topology.Directions(2) {
			total += net.ChannelLoad(node, d)
		}
	}
	if total != 25*3 {
		t.Errorf("total channel load = %d, want 75", total)
	}
}

func TestTransposeLoadConcentratesOnDiagonalCorners(t *testing.T) {
	// The congestion story behind Figure 14: under matrix-transpose with
	// xy routing, the channels adjacent to the diagonal carry far more
	// traffic than the average channel.
	mesh := topology.NewMesh2D(8, 8)
	a, err := routing.New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	net := New(Config{Routing: a})
	for x := 0; x < 8; x++ {
		for y := 0; y < 8; y++ {
			if x == y {
				continue
			}
			net.Enqueue(mesh.ID(topology.Coord{x, y}), mesh.ID(topology.Coord{y, x}), 10)
		}
	}
	run(t, net, 100000)
	var total, count, diag int64
	var diagCount int64
	for node := topology.NodeID(0); int(node) < mesh.Nodes(); node++ {
		c := mesh.Coord(node)
		for _, d := range topology.Directions(2) {
			if _, ok := mesh.Neighbor(node, d); !ok {
				continue
			}
			load := net.ChannelLoad(node, d)
			total += load
			count++
			// Vertical channels leaving diagonal nodes: where every
			// xy transpose route turns.
			if c[0] == c[1] && d.Dim() == 1 {
				diag += load
				diagCount++
			}
		}
	}
	avg := float64(total) / float64(count)
	diagAvg := float64(diag) / float64(diagCount)
	if diagAvg < 2*avg {
		t.Errorf("diagonal turning channels carry %.1f flits vs network average %.1f; expected heavy concentration", diagAvg, avg)
	}
}

func TestOddEvenBurstDelivery(t *testing.T) {
	// Chiu's odd-even model (see internal/routing/turnrule.go) on the
	// real simulator: every pair delivers, no deadlock.
	net := newMeshNet(t, 5, 5, "odd-even")
	want := int64(0)
	for s := topology.NodeID(0); int(s) < 25; s++ {
		for d := topology.NodeID(0); int(d) < 25; d++ {
			if s != d {
				net.Enqueue(s, d, 4)
				want++
			}
		}
	}
	run(t, net, 300000)
	if net.PacketsDelivered() != want {
		t.Errorf("delivered %d, want %d", net.PacketsDelivered(), want)
	}
}
