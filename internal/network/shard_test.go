package network

import (
	"testing"

	"turnmodel/internal/topology"
)

// TestShardingRequiresDefaultOutput pins the serial fallback: sharding is
// only sound under the inlined LowestDimension arbitration (randomized
// policies draw from a shared RNG stream whose order sharding would
// change), so any other output policy silently steps serially.
func TestShardingRequiresDefaultOutput(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)

	def := New(Config{Routing: mustAlg(t, "west-first", mesh), Shards: 4})
	defer def.Close()
	if def.shards != 4 || def.core.ShardCount() != 4 {
		t.Errorf("default output: shards = %d (core %d), want 4", def.shards, def.core.ShardCount())
	}

	for name, pol := range map[string]OutputPolicy{
		"random":         RandomOutput{},
		"straight-first": StraightFirst{},
	} {
		n := New(Config{Routing: mustAlg(t, "west-first", mesh), Shards: 4, Output: pol})
		if n.shards != 1 || n.core.ShardCount() != 1 {
			t.Errorf("%s output: shards = %d (core %d), want serial fallback",
				name, n.shards, n.core.ShardCount())
		}
		n.Close()
	}
}

// TestCloseReturnsToSerial checks that Close releases the pool and that a
// closed network still steps correctly (serially).
func TestCloseReturnsToSerial(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	n := New(Config{Routing: mustAlg(t, "west-first", mesh), Shards: 4})
	n.Close()
	if n.shards != 1 {
		t.Fatalf("shards after Close = %d, want 1", n.shards)
	}
	p := n.Enqueue(0, 15, 4)
	run(t, n, 200)
	if p.Arrived < 0 {
		t.Error("closed network failed to deliver")
	}
}
