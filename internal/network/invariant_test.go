package network

import (
	"math/rand"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// checkInvariants verifies the simulator's structural invariants:
//
//  1. The in-network flits of every worm occupy exactly the contiguous
//     suffix of its path, every such buffer is marked occupied, and no two
//     worms share a buffer.
//  2. Every output channel owned in outOwner is owned by an active worm,
//     and the set of channels a worm owns is exactly the channels between
//     its tail and head plus its pending head allocation.
//  3. Flit conservation: sent - delivered flits are in the network.
func checkInvariants(t *testing.T, n *Network) {
	t.Helper()
	coveredBy := make(map[int32]*worm)
	ownedWant := make(map[int32]*worm) // key: router*2n+dir
	dims2 := 2 * n.dims
	for _, w := range n.active {
		inNet := w.inNetwork()
		if inNet < 1 {
			t.Fatalf("%v: %d flits in network", w.pkt, inNet)
		}
		if w.sent < w.delivered || w.sent > w.pkt.Length {
			t.Fatalf("%v: sent=%d delivered=%d", w.pkt, w.sent, w.delivered)
		}
		tailIdx := len(w.path) - inNet
		if tailIdx < 0 {
			t.Fatalf("%v: window longer than path (%d flits, %d buffers)", w.pkt, inNet, len(w.path))
		}
		if w.sent < w.pkt.Length && tailIdx != 0 {
			t.Fatalf("%v: still injecting but tail at path[%d]", w.pkt, tailIdx)
		}
		for i := tailIdx; i < len(w.path); i++ {
			buf := w.path[i]
			if !n.occupied[buf] {
				t.Fatalf("%v: window buffer %d not marked occupied", w.pkt, buf)
			}
			if other, ok := coveredBy[buf]; ok {
				t.Fatalf("buffer %d covered by both %v and %v", buf, other.pkt, w.pkt)
			}
			coveredBy[buf] = w
		}
		// Channels still held: those feeding path[j] for j > tailIdx,
		// plus the pending allocation at the head.
		for j := tailIdx + 1; j < len(w.path); j++ {
			from := n.bufRouter(w.path[j-1])
			dir := n.bufPort(w.path[j])
			key := int32(int(from)*dims2 + dir)
			ownedWant[key] = w
		}
		if !w.arrived && w.outDir != noDirection {
			head := n.bufRouter(w.headBuf())
			key := int32(int(head)*dims2 + int(w.outDir))
			ownedWant[key] = w
		}
	}
	// Every occupied buffer must belong to some worm.
	for buf, occ := range n.occupied {
		if occ && coveredBy[int32(buf)] == nil {
			t.Fatalf("buffer %d occupied but covered by no worm", buf)
		}
	}
	// outOwner must match the expected ownership exactly.
	for key, owner := range n.outOwner {
		want := ownedWant[int32(key)]
		if owner != want {
			wantPkt, gotPkt := "nil", "nil"
			if want != nil {
				wantPkt = want.pkt.String()
			}
			if owner != nil {
				gotPkt = owner.pkt.String()
			}
			t.Fatalf("channel %d: owned by %s, want %s", key, gotPkt, wantPkt)
		}
	}
}

func TestSimulatorInvariantsUnderRandomTraffic(t *testing.T) {
	algs := []func() routing.Algorithm{
		func() routing.Algorithm { return routing.XY(topology.NewMesh2D(4, 4)) },
		func() routing.Algorithm { return routing.WestFirst(topology.NewMesh2D(4, 4)) },
		func() routing.Algorithm { return routing.NegativeFirst(topology.NewMesh2D(4, 4)) },
		func() routing.Algorithm { return routing.PCube(topology.NewHypercube(4)) },
		func() routing.Algorithm { return routing.NonminimalPCube(topology.NewHypercube(4)) },
		func() routing.Algorithm { return routing.NegativeFirstTorus(topology.NewKaryNCube(4, 2)) },
		func() routing.Algorithm { return routing.WestFirstWrap(topology.NewKaryNCube(4, 2)) },
	}
	for _, mk := range algs {
		alg := mk()
		net := New(Config{Routing: alg, Seed: 5})
		topo := alg.Topology()
		rng := rand.New(rand.NewSource(6))
		for c := 0; c < 3000; c++ {
			if c%2 == 0 {
				src := topology.NodeID(rng.Intn(topo.Nodes()))
				dst := topology.NodeID(rng.Intn(topo.Nodes()))
				if src != dst {
					net.Enqueue(src, dst, 1+rng.Intn(30))
				}
			}
			if err := net.Step(); err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			checkInvariants(t, net)
		}
		// Drain and re-check emptiness.
		for i := 0; i < 100000 && net.InFlight() > 0; i++ {
			if err := net.Step(); err != nil {
				t.Fatalf("%s drain: %v", alg.Name(), err)
			}
			checkInvariants(t, net)
		}
		if net.InFlight() != 0 {
			t.Fatalf("%s: network did not drain", alg.Name())
		}
		for buf, occ := range net.occupied {
			if occ {
				t.Fatalf("%s: buffer %d still occupied after drain", alg.Name(), buf)
			}
		}
		for key, owner := range net.outOwner {
			if owner != nil {
				t.Fatalf("%s: channel %d still owned after drain", alg.Name(), key)
			}
		}
	}
}

func TestSingleFlitPackets(t *testing.T) {
	// One-flit packets (header == tail) exercise every release edge case.
	mesh := topology.NewMesh2D(4, 4)
	net := New(Config{Routing: routing.WestFirst(mesh), Seed: 8})
	want := int64(0)
	for s := topology.NodeID(0); s < 16; s++ {
		for d := topology.NodeID(0); d < 16; d++ {
			if s != d {
				net.Enqueue(s, d, 1)
				want++
			}
		}
	}
	for i := 0; i < 50000 && net.InFlight() > 0; i++ {
		if err := net.Step(); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, net)
	}
	if net.PacketsDelivered() != want {
		t.Errorf("delivered %d, want %d", net.PacketsDelivered(), want)
	}
}
