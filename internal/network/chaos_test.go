package network

import (
	"math/rand"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// chaosProbe extends the ledger with dropped-flit accounting so the soak
// can prove flit conservation across abort/retry/drop.
type chaosProbe struct {
	*ledgerProbe
	droppedFlits int64
}

func (p *chaosProbe) Drop(cycle int64, src, dst topology.NodeID, length int, reason metrics.DropReason) {
	p.ledgerProbe.Drop(cycle, src, dst, length, reason)
	p.droppedFlits += int64(length)
}

// TestChaosSoakRecovery hammers mesh and torus networks with random
// transient link faults under load, with deadlock recovery on, and checks
// the structural invariants plus packet conservation every few cycles:
//
//	enqueued == delivered + dropped + in-flight
//
// at all times, and after the drain every enqueued flit is accounted for
// as delivered or dropped — aborts and retries lose nothing.
func TestChaosSoakRecovery(t *testing.T) {
	cases := []struct {
		name   string
		alg    routing.Algorithm
		shards int
	}{
		{"mesh-west-first", routing.WestFirst(topology.NewMesh2D(4, 4)), 0},
		{"mesh-negative-first", routing.NegativeFirst(topology.NewMesh2D(4, 4)), 0},
		{"torus-negative-first", routing.NegativeFirstTorus(topology.NewKaryNCube(4, 2)), 0},
		// Sharded soaks: the same invariants and conservation laws must
		// hold while the step fans out over domain workers (and, under
		// -race, the race detector watches the handoffs). 3 and 5 do not
		// divide 16 nodes, so domain sizes are uneven.
		{"mesh-west-first-sharded", routing.WestFirst(topology.NewMesh2D(4, 4)), 3},
		{"torus-negative-first-sharded", routing.NegativeFirstTorus(topology.NewKaryNCube(4, 2)), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probe := &chaosProbe{ledgerProbe: &ledgerProbe{t: t}}
			net := New(Config{
				Routing: tc.alg,
				Seed:    11,
				Probe:   probe,
				// Aggressive enough that faults, aborts and retries all
				// actually happen within the soak window.
				FaultPlan: fault.Plan{Rate: 5e-5, Repair: 300, Seed: 99},
				Recovery:  fault.Recovery{Enabled: true, StallCycles: 200},
				Shards:    tc.shards,
			})
			defer net.Close()
			topo := tc.alg.Topology()
			rng := rand.New(rand.NewSource(21))
			enqueued := int64(0)
			enqueuedFlits := int64(0)

			conserve := func(step int) {
				t.Helper()
				got := net.PacketsDelivered() + net.PacketsDropped() + int64(net.InFlight())
				if enqueued != got {
					t.Fatalf("step %d: enqueued=%d but delivered=%d dropped=%d in-flight=%d",
						step, enqueued, net.PacketsDelivered(), net.PacketsDropped(), net.InFlight())
				}
			}

			for c := 0; c < 5000; c++ {
				if c%2 == 0 {
					src := topology.NodeID(rng.Intn(topo.Nodes()))
					dst := topology.NodeID(rng.Intn(topo.Nodes()))
					if src != dst {
						length := 1 + rng.Intn(20)
						net.Enqueue(src, dst, length)
						enqueued++
						enqueuedFlits += int64(length)
					}
				}
				if err := net.Step(); err != nil {
					t.Fatalf("recovery mode returned an error: %v", err)
				}
				checkInvariants(t, net)
				conserve(c)
			}
			if probe.faults == 0 {
				t.Fatal("no faults fired; soak exercised nothing")
			}

			// Drain: stop offering load; transient faults keep firing but
			// repair, and retries are capped, so the network must empty.
			for i := 0; i < 400000 && net.InFlight() > 0; i++ {
				if err := net.Step(); err != nil {
					t.Fatalf("drain: %v", err)
				}
				checkInvariants(t, net)
			}
			if net.InFlight() != 0 {
				t.Fatalf("network did not drain: %d in flight", net.InFlight())
			}
			conserve(-1)
			for buf, occ := range net.occupied {
				if occ {
					t.Fatalf("buffer %d still occupied after drain", buf)
				}
			}
			for key, owner := range net.outOwner {
				if owner != nil {
					t.Fatalf("channel %d still owned after drain", key)
				}
			}
			if got := probe.deliveredFlits + probe.droppedFlits; got != enqueuedFlits {
				t.Errorf("flits delivered %d + dropped %d = %d, want enqueued %d",
					probe.deliveredFlits, probe.droppedFlits, got, enqueuedFlits)
			}
			if probe.deliveredFlits != net.FlitsConsumed() {
				t.Errorf("probe delivered %d flits, engine consumed %d",
					probe.deliveredFlits, net.FlitsConsumed())
			}
			if probe.aborted > 0 && probe.retried+probe.dropped == 0 {
				t.Error("aborts happened but no retries or drops followed")
			}
			t.Logf("%s: enqueued=%d delivered=%d dropped=%d aborted=%d retried=%d faults=%d repairs=%d",
				tc.name, enqueued, probe.delivered, probe.dropped, probe.aborted,
				probe.retried, probe.faults, probe.repairs)
		})
	}
}

// TestUnreachableDestinationDropped pins the drop accounting for packets
// that cannot be delivered:
//
//  1. A packet toward a failed node is dropped at injection time, not
//     left to deadlock or retry forever.
//  2. A packet whose routing function has exactly one path (xy) and loses
//     it to a static fault is dropped after its first abort, because the
//     routing-aware reachability check sees no surviving path.
func TestUnreachableDestinationDropped(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)

	t.Run("failed-node", func(t *testing.T) {
		probe := &chaosProbe{ledgerProbe: &ledgerProbe{t: t}}
		net := New(Config{
			Routing:   mustAlg(t, "west-first", mesh),
			Probe:     probe,
			FaultPlan: fault.Plan{Nodes: []topology.NodeID{5}},
			Recovery:  fault.Recovery{Enabled: true},
		})
		p := net.Enqueue(0, 5, 4)
		run(t, net, 100)
		if net.PacketsDropped() != 1 || probe.dropped != 1 {
			t.Fatalf("dropped %d (probe %d), want 1", net.PacketsDropped(), probe.dropped)
		}
		if p.Arrived >= 0 || p.Injected >= 0 {
			t.Errorf("packet toward failed node was injected (injected=%d arrived=%d)", p.Injected, p.Arrived)
		}
		if net.PacketsAborted() != 0 {
			t.Errorf("injection-time drop should not need an abort, got %d", net.PacketsAborted())
		}
	})

	t.Run("xy-only-path-broken", func(t *testing.T) {
		probe := &chaosProbe{ledgerProbe: &ledgerProbe{t: t}}
		net := New(Config{
			Routing: mustAlg(t, "xy", mesh),
			Probe:   probe,
			FaultPlan: fault.Plan{Static: []topology.Channel{{
				From: mesh.ID(topology.Coord{1, 0}), To: mesh.ID(topology.Coord{2, 0}), Dir: topology.East,
			}}},
			Recovery: fault.Recovery{Enabled: true, StallCycles: 50},
		})
		src := mesh.ID(topology.Coord{0, 0})
		dst := mesh.ID(topology.Coord{3, 2})
		p := net.Enqueue(src, dst, 4)
		run(t, net, 2000)
		if net.PacketsDropped() != 1 {
			t.Fatalf("dropped %d, want 1 (xy has no surviving path)", net.PacketsDropped())
		}
		if net.PacketsAborted() != 1 {
			t.Errorf("aborted %d, want exactly 1 (reachability check fires on first abort)", net.PacketsAborted())
		}
		if net.PacketsRetried() != 0 {
			t.Errorf("retried %d, want 0: retrying an unreachable destination is the bug this test pins", net.PacketsRetried())
		}
		if p.Arrived >= 0 {
			t.Error("packet delivered across a broken only-path")
		}
		if net.InFlight() != 0 {
			t.Errorf("%d still in flight after drop", net.InFlight())
		}
	})

	t.Run("adaptive-survives-same-fault", func(t *testing.T) {
		// The same fault under west-first is routable; recovery must not
		// drop anything.
		net := New(Config{
			Routing: mustAlg(t, "west-first", mesh),
			FaultPlan: fault.Plan{Static: []topology.Channel{{
				From: mesh.ID(topology.Coord{1, 0}), To: mesh.ID(topology.Coord{2, 0}), Dir: topology.East,
			}}},
			Recovery: fault.Recovery{Enabled: true, StallCycles: 50},
		})
		p := net.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{3, 2}), 4)
		run(t, net, 2000)
		if p.Arrived < 0 {
			t.Fatal("west-first did not deliver around the fault")
		}
		if net.PacketsDropped() != 0 {
			t.Errorf("dropped %d, want 0", net.PacketsDropped())
		}
	})
}

// TestRecoveryBreaksDeadlock pins the fail-stop/recovery contrast on the
// same permanently wedged scenario: an xy worm whose only path is broken
// stalls forever, so fail-stop mode must report it through the watchdog
// while recovery mode must abort it, drop it as unreachable, and keep the
// run error-free.
func TestRecoveryBreaksDeadlock(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	broken := topology.Channel{From: mesh.ID(topology.Coord{1, 0}), To: mesh.ID(topology.Coord{2, 0}), Dir: topology.East}

	failStop := New(Config{Routing: mustAlg(t, "xy", mesh), Faults: []topology.Channel{broken}, WatchdogCycles: 500})
	failStop.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{3, 0}), 4)
	sawError := false
	for i := 0; i < 5000; i++ {
		if err := failStop.Step(); err != nil {
			sawError = true
			break
		}
	}
	if !sawError {
		t.Fatal("fail-stop mode should report the stalled worm")
	}

	rec := New(Config{
		Routing:   mustAlg(t, "xy", mesh),
		Faults:    []topology.Channel{broken},
		Recovery:  fault.Recovery{Enabled: true, StallCycles: 100},
		FaultPlan: fault.Plan{},
	})
	rec.Enqueue(mesh.ID(topology.Coord{0, 0}), mesh.ID(topology.Coord{3, 0}), 4)
	for i := 0; i < 5000; i++ {
		if err := rec.Step(); err != nil {
			t.Fatalf("recovery mode returned an error: %v", err)
		}
	}
	if rec.PacketsDropped() != 1 {
		t.Errorf("dropped %d, want 1", rec.PacketsDropped())
	}
	if rec.InFlight() != 0 {
		t.Errorf("%d in flight after recovery", rec.InFlight())
	}
}
