package network

import (
	"errors"
	"math/rand"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// stress floods the network with random traffic and reports whether the
// watchdog detected a deadlock within the cycle budget.
func stress(t *testing.T, alg routing.Algorithm, seed int64, cycles int, length int) (bool, *DeadlockError) {
	t.Helper()
	net := New(Config{Routing: alg, Seed: seed, WatchdogCycles: 2000})
	topo := alg.Topology()
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < cycles; c++ {
		if c%3 == 0 {
			s := topology.NodeID(rng.Intn(topo.Nodes()))
			d := topology.NodeID(rng.Intn(topo.Nodes()))
			if s != d {
				net.Enqueue(s, d, length)
			}
		}
		if err := net.Step(); err != nil {
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("unexpected error type: %v", err)
			}
			return true, dl
		}
	}
	return false, nil
}

// TestFullyAdaptiveDeadlocks demonstrates the premise of the paper: minimal
// fully adaptive routing without extra channels deadlocks under load
// (Figure 1). The watchdog must fire across several seeds.
func TestFullyAdaptiveDeadlocks(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	for seed := int64(0); seed < 3; seed++ {
		dead, dl := stress(t, routing.FullyAdaptive(mesh), seed, 100000, 50)
		if !dead {
			t.Errorf("seed %d: fully adaptive routing survived the stress (expected deadlock)", seed)
			continue
		}
		if dl.InFlight == 0 || len(dl.Stuck) == 0 {
			t.Errorf("seed %d: deadlock report incomplete: %+v", seed, dl)
		}
		if dl.Error() == "" {
			t.Error("empty deadlock message")
		}
	}
}

// TestTurnModelAlgorithmsSurviveStress is the complementary guarantee: the
// turn-model algorithms never trip the watchdog under the same load.
func TestTurnModelAlgorithmsSurviveStress(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	cube := topology.NewHypercube(4)
	torus := topology.NewKaryNCube(4, 2)
	algs := []routing.Algorithm{
		routing.XY(mesh), routing.WestFirst(mesh), routing.NorthLast(mesh), routing.NegativeFirst(mesh),
		routing.OddEven(mesh),
		routing.ECube(cube), routing.PCube(cube),
		routing.NegativeFirstTorus(torus), routing.WestFirstWrap(torus),
	}
	for _, alg := range algs {
		if dead, dl := stress(t, alg, 1, 30000, 50); dead {
			t.Errorf("%s deadlocked: %v", alg.Name(), dl)
		}
	}
}

// TestFullyAdaptiveOnHypercubeDeadlocks extends the demonstration to the
// hypercube, where unrestricted minimal routing is equally unsafe.
func TestFullyAdaptiveOnHypercubeDeadlocks(t *testing.T) {
	cube := topology.NewHypercube(4)
	dead := false
	for seed := int64(0); seed < 5 && !dead; seed++ {
		dead, _ = stress(t, routing.FullyAdaptive(cube), seed, 150000, 80)
	}
	if !dead {
		t.Error("fully adaptive routing on the hypercube survived all seeds")
	}
}

// TestWatchdogDisabled verifies that a negative WatchdogCycles setting
// turns detection off: the run proceeds (deadlocked, but silently) without
// an error for the whole budget.
func TestWatchdogDisabled(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	net := New(Config{Routing: routing.FullyAdaptive(mesh), Seed: 0, WatchdogCycles: -1})
	rng := rand.New(rand.NewSource(0))
	for c := 0; c < 30000; c++ {
		if c%3 == 0 {
			s := topology.NodeID(rng.Intn(16))
			d := topology.NodeID(rng.Intn(16))
			if s != d {
				net.Enqueue(s, d, 50)
			}
		}
		if err := net.Step(); err != nil {
			t.Fatalf("watchdog fired although disabled: %v", err)
		}
	}
}
