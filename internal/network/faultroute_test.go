package network

import (
	"math/rand"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestChaosSoakFaultRouting is the chaos soak with the full resilience
// stack on: random transient faults, deadlock recovery AND in-network
// fault-aware routing with a misroute budget. Same invariants and flit
// conservation as TestChaosSoakRecovery, plus masking accounting: the
// adaptive algorithms must actually steer around faults, and misroute
// hops only appear when a misroute budget exists.
func TestChaosSoakFaultRouting(t *testing.T) {
	cases := []struct {
		name string
		alg  routing.Algorithm
		pol  fault.RoutingPolicy
	}{
		{"mesh-negative-first-local", routing.NegativeFirst(topology.NewMesh2D(4, 4)),
			fault.RoutingPolicy{Visibility: fault.VisibilityLocal}},
		{"mesh-negative-first-khop-misroute", routing.NegativeFirst(topology.NewMesh2D(4, 4)),
			fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}},
		{"torus-negative-first-khop", routing.NegativeFirstTorus(topology.NewKaryNCube(4, 2)),
			fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			probe := &chaosProbe{ledgerProbe: &ledgerProbe{t: t}}
			net := New(Config{
				Routing:      tc.alg,
				Seed:         11,
				Probe:        probe,
				FaultPlan:    fault.Plan{Rate: 5e-5, Repair: 300, Seed: 99},
				Recovery:     fault.Recovery{Enabled: true, StallCycles: 200},
				FaultRouting: tc.pol,
			})
			topo := tc.alg.Topology()
			rng := rand.New(rand.NewSource(21))
			enqueued := int64(0)
			enqueuedFlits := int64(0)
			for c := 0; c < 5000; c++ {
				if c%2 == 0 {
					src := topology.NodeID(rng.Intn(topo.Nodes()))
					dst := topology.NodeID(rng.Intn(topo.Nodes()))
					if src != dst {
						length := 1 + rng.Intn(20)
						net.Enqueue(src, dst, length)
						enqueued++
						enqueuedFlits += int64(length)
					}
				}
				if err := net.Step(); err != nil {
					t.Fatalf("step: %v", err)
				}
				checkInvariants(t, net)
				if got := net.PacketsDelivered() + net.PacketsDropped() + int64(net.InFlight()); got != enqueued {
					t.Fatalf("step %d: enqueued=%d but accounted=%d", c, enqueued, got)
				}
			}
			if probe.faults == 0 {
				t.Fatal("no faults fired; soak exercised nothing")
			}
			for i := 0; i < 400000 && net.InFlight() > 0; i++ {
				if err := net.Step(); err != nil {
					t.Fatalf("drain: %v", err)
				}
				checkInvariants(t, net)
			}
			if net.InFlight() != 0 {
				t.Fatalf("network did not drain: %d in flight", net.InFlight())
			}
			if got := probe.deliveredFlits + probe.droppedFlits; got != enqueuedFlits {
				t.Errorf("flits delivered %d + dropped %d = %d, want enqueued %d",
					probe.deliveredFlits, probe.droppedFlits, got, enqueuedFlits)
			}
			if net.MaskedFaults() == 0 {
				t.Error("no masked routing decisions over a 5000-cycle faulted soak")
			}
			if tc.pol.MisrouteLimit == 0 && net.MisrouteHops() != 0 {
				t.Errorf("misroute hops %d with a zero budget", net.MisrouteHops())
			}
			t.Logf("%s: enqueued=%d delivered=%d dropped=%d masked=%d misroutes=%d faults=%d",
				tc.name, enqueued, probe.delivered, probe.dropped,
				net.MaskedFaults(), net.MisrouteHops(), probe.faults)
		})
	}
}

// TestFaultRoutingOffWithoutFaults: enabling the policy on a fault-free
// configuration builds no wrapper and changes nothing — the run matches a
// plain network cycle for cycle.
func TestFaultRoutingOffWithoutFaults(t *testing.T) {
	run := func(pol fault.RoutingPolicy) (int64, int64) {
		mesh := topology.NewMesh2D(4, 4)
		net := New(Config{
			Routing:      routing.WestFirst(mesh),
			Seed:         5,
			FaultRouting: pol,
		})
		rng := rand.New(rand.NewSource(9))
		for c := 0; c < 3000; c++ {
			if c%3 == 0 {
				src := topology.NodeID(rng.Intn(mesh.Nodes()))
				dst := topology.NodeID(rng.Intn(mesh.Nodes()))
				if src != dst {
					net.Enqueue(src, dst, 1+rng.Intn(10))
				}
			}
			if err := net.Step(); err != nil {
				t.Fatal(err)
			}
		}
		if net.MaskedFaults() != 0 || net.MisrouteHops() != 0 {
			t.Fatalf("fault-free run counted masked=%d misroutes=%d", net.MaskedFaults(), net.MisrouteHops())
		}
		return net.PacketsDelivered(), net.FlitsConsumed()
	}
	offD, offF := run(fault.RoutingPolicy{})
	onD, onF := run(fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4})
	if offD != onD || offF != onF {
		t.Errorf("fault-free runs diverge with the policy on: delivered %d vs %d, flits %d vs %d",
			offD, onD, offF, onF)
	}
}
