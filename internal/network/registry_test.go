package network

import (
	"reflect"
	"strings"
	"testing"
)

func TestPolicyRegistry(t *testing.T) {
	if got := OutputPolicyNames(); !reflect.DeepEqual(got, []string{"random", "straight-first", "xy"}) {
		t.Errorf("output policy names = %v", got)
	}
	if got := InputPolicyNames(); !reflect.DeepEqual(got, []string{"local-fcfs", "oldest-first"}) {
		t.Errorf("input policy names = %v", got)
	}
	// Every listed name resolves to a policy that reports the same name.
	for _, name := range OutputPolicyNames() {
		p, err := NewOutputPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("output %q resolves to %q", name, p.Name())
		}
	}
	for _, name := range InputPolicyNames() {
		p, err := NewInputPolicy(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Errorf("input %q resolves to %q", name, p.Name())
		}
	}
	// Aliases map to the canonical policies.
	if p, err := NewOutputPolicy("lowest-dimension"); err != nil || p.Name() != "xy" {
		t.Errorf("lowest-dimension alias: %v, %v", p, err)
	}
	if p, err := NewOutputPolicy("straight"); err != nil || p.Name() != "straight-first" {
		t.Errorf("straight alias: %v, %v", p, err)
	}
	if p, err := NewInputPolicy("fcfs"); err != nil || p.Name() != "local-fcfs" {
		t.Errorf("fcfs alias: %v, %v", p, err)
	}
	if p, err := NewInputPolicy("oldest"); err != nil || p.Name() != "oldest-first" {
		t.Errorf("oldest alias: %v, %v", p, err)
	}
	// Unknown names fail with the available names in the message.
	if _, err := NewOutputPolicy("nope"); err == nil || !strings.Contains(err.Error(), "xy") {
		t.Errorf("unknown output policy error: %v", err)
	}
	if _, err := NewInputPolicy("nope"); err == nil || !strings.Contains(err.Error(), "local-fcfs") {
		t.Errorf("unknown input policy error: %v", err)
	}
}
