package network

import (
	"fmt"
	"math/rand"
	"sort"

	"turnmodel/internal/topology"
)

// OutputPolicy arbitrates when a header flit has several permitted output
// channels available (Section 6). The paper's simulations use the "xy"
// policy, which favors the channel along the lowest dimension.
type OutputPolicy interface {
	Name() string
	// Choose picks one of the candidate directions for which free
	// reports true. in is the direction the header arrived travelling
	// (topology.Invalid at the injection port). The boolean result is
	// false when no candidate is free.
	Choose(cands []topology.Direction, free func(topology.Direction) bool, in topology.Direction, rng *rand.Rand) (topology.Direction, bool)
}

// LowestDimension is the paper's "xy" output selection policy: among the
// available output channels, take the one along the lowest dimension.
// Routing algorithms order their candidates by increasing dimension, so
// this is the first free candidate.
type LowestDimension struct{}

// Name implements OutputPolicy.
func (LowestDimension) Name() string { return "xy" }

// Choose implements OutputPolicy.
func (LowestDimension) Choose(cands []topology.Direction, free func(topology.Direction) bool, _ topology.Direction, _ *rand.Rand) (topology.Direction, bool) {
	for _, d := range cands {
		if free(d) {
			return d, true
		}
	}
	return 0, false
}

// RandomOutput picks uniformly among the available candidates. It is one
// of the alternative output selection policies whose effect the paper
// defers to [19]; it serves as an ablation against LowestDimension.
type RandomOutput struct{}

// Name implements OutputPolicy.
func (RandomOutput) Name() string { return "random" }

// Choose implements OutputPolicy.
func (RandomOutput) Choose(cands []topology.Direction, free func(topology.Direction) bool, _ topology.Direction, rng *rand.Rand) (topology.Direction, bool) {
	var avail [8]topology.Direction
	n := 0
	for _, d := range cands {
		if free(d) {
			if n < len(avail) {
				avail[n] = d
			}
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	if n > len(avail) {
		n = len(avail)
	}
	return avail[rng.Intn(n)], true
}

// StraightFirst prefers to keep travelling in the arrival direction,
// falling back to the lowest available dimension. Straight-through
// traversal avoids occupying the crossbar turn paths and tends to reduce
// the coupling between dimensions.
type StraightFirst struct{}

// Name implements OutputPolicy.
func (StraightFirst) Name() string { return "straight-first" }

// Choose implements OutputPolicy.
func (StraightFirst) Choose(cands []topology.Direction, free func(topology.Direction) bool, in topology.Direction, _ *rand.Rand) (topology.Direction, bool) {
	if in != topology.Invalid {
		for _, d := range cands {
			if d == in && free(d) {
				return d, true
			}
		}
	}
	for _, d := range cands {
		if free(d) {
			return d, true
		}
	}
	return 0, false
}

// InputPolicy arbitrates when header flits in several input buffers of one
// router compete for output channels in the same cycle: it decides the
// order in which they claim channels.
type InputPolicy interface {
	Name() string
	// Less reports whether worm a should be served before worm b.
	Less(a, b *worm) bool
}

// LocalFCFS is the paper's input selection policy: it decides in favor of
// the header flits that arrived in the router first. Ties (same arrival
// cycle) fall back to packet ID, which preserves determinism and fairness.
type LocalFCFS struct{}

// Name implements InputPolicy.
func (LocalFCFS) Name() string { return "local-fcfs" }

// Less implements InputPolicy.
func (LocalFCFS) Less(a, b *worm) bool {
	if a.headerArrival != b.headerArrival {
		return a.headerArrival < b.headerArrival
	}
	return a.pkt.ID < b.pkt.ID
}

// OldestFirst serves the header of the oldest packet first (global age
// arbitration), an alternative fairness policy.
type OldestFirst struct{}

// Name implements InputPolicy.
func (OldestFirst) Name() string { return "oldest-first" }

// Less implements InputPolicy.
func (OldestFirst) Less(a, b *worm) bool {
	if a.pkt.Created != b.pkt.Created {
		return a.pkt.Created < b.pkt.Created
	}
	return a.pkt.ID < b.pkt.ID
}

// The policy registries mirror routing.New/routing.Names: policies are
// selected by name (with a few historical aliases), so CLIs and config
// files need no per-policy constructors. The canonical name of a policy is
// its Name() method; aliases map to the same value.

var outputPolicies = map[string]OutputPolicy{
	"xy":               LowestDimension{},
	"lowest-dimension": LowestDimension{},
	"random":           RandomOutput{},
	"straight-first":   StraightFirst{},
	"straight":         StraightFirst{},
}

var inputPolicies = map[string]InputPolicy{
	"local-fcfs":   LocalFCFS{},
	"fcfs":         LocalFCFS{},
	"oldest-first": OldestFirst{},
	"oldest":       OldestFirst{},
}

// NewOutputPolicy resolves an output selection policy by name or alias.
func NewOutputPolicy(name string) (OutputPolicy, error) {
	if p, ok := outputPolicies[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("network: unknown output policy %q (have %v)", name, OutputPolicyNames())
}

// NewInputPolicy resolves an input selection policy by name or alias.
func NewInputPolicy(name string) (InputPolicy, error) {
	if p, ok := inputPolicies[name]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("network: unknown input policy %q (have %v)", name, InputPolicyNames())
}

// OutputPolicyNames lists the canonical output policy names, sorted.
func OutputPolicyNames() []string { return canonicalNames(outputPolicies) }

// InputPolicyNames lists the canonical input policy names, sorted.
func InputPolicyNames() []string { return canonicalNames(inputPolicies) }

func canonicalNames[P interface{ Name() string }](m map[string]P) []string {
	seen := map[string]bool{}
	var names []string
	for _, p := range m {
		if n := p.Name(); !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}
