package network

import (
	"math/rand"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestChaosSoakEventSkip is the event-clock variant of the chaos soak: a
// sparse seeded workload — idle gaps dominate, so the clock leaps — runs
// under random transient link faults with deadlock recovery on, serial and
// sharded (under -race the detector watches the domain handoffs compose
// with leaping). The structural invariants and packet conservation
//
//	enqueued == delivered + dropped + in-flight
//
// hold at every observed step, the drain empties the network, every
// enqueued flit ends up delivered or dropped (no retry is ever lost to a
// leap), and the ledger probe's Tick-continuity check proves each leaped
// cycle was charged to the probe exactly once. The soak fails if nothing
// leaped or no fault fired, so it cannot pass vacuously.
func TestChaosSoakEventSkip(t *testing.T) {
	cases := []struct {
		name   string
		alg    routing.Algorithm
		shards int
	}{
		{"mesh-west-first", routing.WestFirst(topology.NewMesh2D(4, 4)), 0},
		{"torus-negative-first", routing.NegativeFirstTorus(topology.NewKaryNCube(4, 2)), 0},
		{"mesh-west-first-sharded", routing.WestFirst(topology.NewMesh2D(4, 4)), 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := tc.alg.Topology()
			// Precompute a sparse schedule: a burst of a few packets
			// roughly every few hundred cycles, so the network repeatedly
			// drains to empty and the clock gets room to leap between
			// bursts (and between retry timers within recovery episodes).
			type arrival struct {
				cycle    int64
				src, dst topology.NodeID
				length   int
			}
			rng := rand.New(rand.NewSource(21))
			var sched []arrival
			const soak = int64(30000)
			for cycle := int64(0); cycle < soak; {
				burst := 1 + rng.Intn(3)
				for i := 0; i < burst; i++ {
					src := topology.NodeID(rng.Intn(topo.Nodes()))
					dst := topology.NodeID(rng.Intn(topo.Nodes()))
					if src == dst {
						continue
					}
					sched = append(sched, arrival{cycle: cycle, src: src, dst: dst, length: 1 + rng.Intn(20)})
				}
				cycle += 50 + int64(rng.Intn(400))
			}

			probe := &chaosProbe{ledgerProbe: &ledgerProbe{t: t}}
			net := New(Config{
				Routing: tc.alg,
				Seed:    11,
				Probe:   probe,
				// Aggressive enough that faults, aborts and retries all
				// happen within the soak window, with repair so the
				// network can always drain.
				FaultPlan: fault.Plan{Rate: 5e-5, Repair: 300, Seed: 99},
				Recovery:  fault.Recovery{Enabled: true, StallCycles: 200, MaxRetries: 4},
				Shards:    tc.shards,
			})
			defer net.Close()

			enqueued := int64(0)
			enqueuedFlits := int64(0)
			conserve := func(when int64) {
				t.Helper()
				got := net.PacketsDelivered() + net.PacketsDropped() + int64(net.InFlight())
				if enqueued != got {
					t.Fatalf("cycle %d: enqueued=%d but delivered=%d dropped=%d in-flight=%d",
						when, enqueued, net.PacketsDelivered(), net.PacketsDropped(), net.InFlight())
				}
			}

			next := 0
			for net.Cycle() < soak {
				c := net.Cycle()
				for next < len(sched) && sched[next].cycle == c {
					in := sched[next]
					net.Enqueue(in.src, in.dst, in.length)
					enqueued++
					enqueuedFlits += int64(in.length)
					next++
				}
				if next < len(sched) {
					net.SetInjectionHorizon(sched[next].cycle)
				} else {
					net.SetInjectionHorizon(soak)
				}
				if err := net.Step(); err != nil {
					t.Fatalf("recovery mode returned an error: %v", err)
				}
				checkInvariants(t, net)
				conserve(c)
			}
			if probe.faults == 0 {
				t.Fatal("no faults fired; soak exercised nothing")
			}
			if net.CyclesSkipped() == 0 {
				t.Fatal("no cycles were skipped; the soak never exercised the event clock")
			}

			// Drain with the horizon wide open: transient faults keep
			// firing but repair, retries are capped, so the network must
			// empty — and the clock may leap over the whole idle tail.
			drainEnd := net.Cycle() + 400000
			net.SetInjectionHorizon(drainEnd)
			for net.Cycle() < drainEnd && net.InFlight() > 0 {
				if err := net.Step(); err != nil {
					t.Fatalf("drain: %v", err)
				}
				checkInvariants(t, net)
			}
			if net.InFlight() != 0 {
				t.Fatalf("network did not drain: %d in flight", net.InFlight())
			}
			conserve(-1)
			for buf, occ := range net.occupied {
				if occ {
					t.Fatalf("buffer %d still occupied after drain", buf)
				}
			}
			for key, owner := range net.outOwner {
				if owner != nil {
					t.Fatalf("channel %d still owned after drain", key)
				}
			}
			if got := probe.deliveredFlits + probe.droppedFlits; got != enqueuedFlits {
				t.Errorf("flits delivered %d + dropped %d = %d, want enqueued %d",
					probe.deliveredFlits, probe.droppedFlits, got, enqueuedFlits)
			}
			if probe.deliveredFlits != net.FlitsConsumed() {
				t.Errorf("probe delivered %d flits, engine consumed %d",
					probe.deliveredFlits, net.FlitsConsumed())
			}
			// Zero lost retries: every abort is followed by a retry or a
			// drop, and the engine's retry counter matches the probe's.
			if probe.aborted > 0 && probe.retried+probe.dropped == 0 {
				t.Error("aborts happened but no retries or drops followed")
			}
			if probe.retried != net.PacketsRetried() {
				t.Errorf("probe saw %d retries, engine counted %d", probe.retried, net.PacketsRetried())
			}
			t.Logf("%s: enqueued=%d delivered=%d dropped=%d aborted=%d retried=%d faults=%d repairs=%d skipped=%d",
				tc.name, enqueued, probe.delivered, probe.dropped, probe.aborted,
				probe.retried, probe.faults, probe.repairs, net.CyclesSkipped())
		})
	}
}
