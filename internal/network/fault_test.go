package network

import (
	"errors"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// TestAdaptiveRoutesAroundFault shows the fault-tolerance benefit the
// paper claims for adaptive routing: with one east channel broken,
// west-first (adaptive between east and north) delivers, while xy — whose
// only path uses the broken channel — stalls until the watchdog fires.
func TestAdaptiveRoutesAroundFault(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	fault := topology.Channel{From: mesh.ID(topology.Coord{1, 0}), To: mesh.ID(topology.Coord{2, 0}), Dir: topology.East}
	src := mesh.ID(topology.Coord{0, 0})
	dst := mesh.ID(topology.Coord{3, 2})

	wf := New(Config{Routing: mustAlg(t, "west-first", mesh), Faults: []topology.Channel{fault}, WatchdogCycles: 2000})
	p := wf.Enqueue(src, dst, 10)
	run(t, wf, 20000)
	if p.Arrived < 0 {
		t.Fatal("west-first did not deliver around the fault")
	}
	if p.Hops != mesh.Distance(src, dst) {
		t.Errorf("west-first took %d hops, want %d (an alternative shortest path exists)", p.Hops, mesh.Distance(src, dst))
	}

	xy := New(Config{Routing: mustAlg(t, "xy", mesh), Faults: []topology.Channel{fault}, WatchdogCycles: 2000})
	q := xy.Enqueue(src, dst, 10)
	stalled := false
	for i := 0; i < 30000; i++ {
		if err := xy.Step(); err != nil {
			var dl *DeadlockError
			if !errors.As(err, &dl) {
				t.Fatalf("unexpected error: %v", err)
			}
			stalled = true
			break
		}
	}
	if !stalled {
		t.Error("xy should stall on the faulted channel (its only path)")
	}
	if q.Arrived >= 0 {
		t.Error("xy delivered across a broken channel")
	}
}

// TestNonminimalRoutesAroundFaultMinimalCannot exercises the stronger
// claim of Section 5: nonminimal p-cube survives faults that block every
// minimal path at a router.
func TestNonminimalRoutesAroundFaultMinimalCannot(t *testing.T) {
	h := topology.NewHypercube(4)
	src := h.NodeFromBits(0b0111)
	dst := h.NodeFromBits(0b0100)
	// Minimal phase-one candidates at src are dimensions 0 and 1; break
	// both. Nonminimal p-cube may also clear bit 2 (set in both src and
	// dst) and recover it in phase two.
	faults := []topology.Channel{
		{From: src, To: h.NodeFromBits(0b0110), Dir: topology.Dir(0, false)},
		{From: src, To: h.NodeFromBits(0b0101), Dir: topology.Dir(1, false)},
	}

	nm := New(Config{Routing: routing.NonminimalPCube(h), Faults: faults, WatchdogCycles: 2000})
	p := nm.Enqueue(src, dst, 10)
	run(t, nm, 20000)
	if p.Arrived < 0 {
		t.Fatal("nonminimal p-cube did not deliver around the faults")
	}
	if p.Hops != 4 {
		// Clear bit 2 (-2), fix bits 0 and 1, restore bit 2: 4 hops
		// instead of the 2-hop minimal route.
		t.Errorf("nonminimal route took %d hops, want 4", p.Hops)
	}

	pm := New(Config{Routing: mustAlg(t, "p-cube", h), Faults: faults, WatchdogCycles: 2000})
	q := pm.Enqueue(src, dst, 10)
	stalled := false
	for i := 0; i < 30000; i++ {
		if err := pm.Step(); err != nil {
			stalled = true
			break
		}
	}
	if !stalled || q.Arrived >= 0 {
		t.Error("minimal p-cube should stall with every minimal channel broken")
	}
}

// TestFaultsUnderLoad checks that a faulted network still delivers all
// deliverable traffic and stays deadlock free for turn-model routing.
func TestFaultsUnderLoad(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	// Break one interior channel in each direction class; west-first
	// keeps a path for every pair that does not need a broken channel
	// as its only option. Use a fault on an east channel only, which
	// west-first can always avoid (east/north/south are adaptive and
	// every destination is reachable via an adjacent row).
	faults := []topology.Channel{
		{From: mesh.ID(topology.Coord{1, 1}), To: mesh.ID(topology.Coord{2, 1}), Dir: topology.East},
	}
	net := New(Config{Routing: mustAlg(t, "west-first", mesh), Faults: faults, WatchdogCycles: 5000})
	want := int64(0)
	for s := topology.NodeID(0); s < 16; s++ {
		for d := topology.NodeID(0); d < 16; d++ {
			if s == d {
				continue
			}
			// Skip destinations east of the fault in its own row: any
			// packet for them can end up at (1,1) with the broken
			// channel as its only permitted option and wedge the
			// network behind it. Every other pair always retains an
			// unfaulted candidate.
			if dc := mesh.Coord(d); dc[1] == 1 && dc[0] > 1 {
				continue
			}
			net.Enqueue(s, d, 4)
			want++
		}
	}
	run(t, net, 200000)
	if net.PacketsDelivered() != want {
		t.Errorf("delivered %d, want %d", net.PacketsDelivered(), want)
	}
}

func TestFaultOnMissingChannelPanics(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(Config{
		Routing: mustAlg(t, "xy", mesh),
		Faults:  []topology.Channel{{From: 0, Dir: topology.West}},
	})
}

func mustAlg(t *testing.T, name string, topo topology.Topology) routing.Algorithm {
	t.Helper()
	a, err := routing.New(name, topo)
	if err != nil {
		t.Fatal(err)
	}
	return a
}
