package network

import (
	"math/rand"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

func TestLowestDimensionPolicy(t *testing.T) {
	p := LowestDimension{}
	if p.Name() != "xy" {
		t.Errorf("Name() = %q", p.Name())
	}
	cands := []topology.Direction{topology.East, topology.North}
	d, ok := p.Choose(cands, func(topology.Direction) bool { return true }, topology.Invalid, nil)
	if !ok || d != topology.East {
		t.Errorf("Choose = %v,%v; want east", d, ok)
	}
	// East busy: falls to north.
	d, ok = p.Choose(cands, func(d topology.Direction) bool { return d != topology.East }, topology.Invalid, nil)
	if !ok || d != topology.North {
		t.Errorf("Choose = %v,%v; want north", d, ok)
	}
	// All busy.
	if _, ok = p.Choose(cands, func(topology.Direction) bool { return false }, topology.Invalid, nil); ok {
		t.Error("Choose succeeded with nothing free")
	}
	if _, ok = p.Choose(nil, func(topology.Direction) bool { return true }, topology.Invalid, nil); ok {
		t.Error("Choose succeeded with no candidates")
	}
}

func TestRandomOutputPolicy(t *testing.T) {
	p := RandomOutput{}
	if p.Name() != "random" {
		t.Errorf("Name() = %q", p.Name())
	}
	rng := rand.New(rand.NewSource(5))
	cands := []topology.Direction{topology.East, topology.North}
	seen := map[topology.Direction]int{}
	for i := 0; i < 1000; i++ {
		d, ok := p.Choose(cands, func(topology.Direction) bool { return true }, topology.Invalid, rng)
		if !ok {
			t.Fatal("Choose failed with all free")
		}
		seen[d]++
	}
	if seen[topology.East] < 300 || seen[topology.North] < 300 {
		t.Errorf("random policy is skewed: %v", seen)
	}
	if _, ok := p.Choose(cands, func(topology.Direction) bool { return false }, topology.Invalid, rng); ok {
		t.Error("Choose succeeded with nothing free")
	}
	// Only one free: must pick it.
	d, ok := p.Choose(cands, func(d topology.Direction) bool { return d == topology.North }, topology.Invalid, rng)
	if !ok || d != topology.North {
		t.Errorf("Choose = %v,%v; want north", d, ok)
	}
}

func TestStraightFirstPolicy(t *testing.T) {
	p := StraightFirst{}
	if p.Name() != "straight-first" {
		t.Errorf("Name() = %q", p.Name())
	}
	cands := []topology.Direction{topology.East, topology.North}
	// Arrived travelling north: prefers north although east is lower.
	d, ok := p.Choose(cands, func(topology.Direction) bool { return true }, topology.North, nil)
	if !ok || d != topology.North {
		t.Errorf("Choose = %v,%v; want north (straight)", d, ok)
	}
	// Straight blocked: lowest dimension.
	d, ok = p.Choose(cands, func(d topology.Direction) bool { return d != topology.North }, topology.North, nil)
	if !ok || d != topology.East {
		t.Errorf("Choose = %v,%v; want east", d, ok)
	}
	// From injection: lowest dimension.
	d, ok = p.Choose(cands, func(topology.Direction) bool { return true }, topology.Invalid, nil)
	if !ok || d != topology.East {
		t.Errorf("Choose = %v,%v; want east", d, ok)
	}
}

func TestInputPolicies(t *testing.T) {
	a := &worm{pkt: &Packet{ID: 1, Created: 10}, headerArrival: 5}
	b := &worm{pkt: &Packet{ID: 2, Created: 3}, headerArrival: 7}
	fcfs := LocalFCFS{}
	if fcfs.Name() != "local-fcfs" {
		t.Errorf("Name() = %q", fcfs.Name())
	}
	if !fcfs.Less(a, b) || fcfs.Less(b, a) {
		t.Error("FCFS must favor the earlier header arrival")
	}
	// Tie on arrival: lower ID.
	c := &worm{pkt: &Packet{ID: 3}, headerArrival: 5}
	if !fcfs.Less(a, c) {
		t.Error("FCFS tie-break by ID failed")
	}
	oldest := OldestFirst{}
	if oldest.Name() != "oldest-first" {
		t.Errorf("Name() = %q", oldest.Name())
	}
	if !oldest.Less(b, a) || oldest.Less(a, b) {
		t.Error("OldestFirst must favor the earlier creation")
	}
	d := &worm{pkt: &Packet{ID: 9, Created: 10}}
	if !oldest.Less(a, d) {
		t.Error("OldestFirst tie-break by ID failed")
	}
}

func TestRandomOutputPolicyInNetwork(t *testing.T) {
	// End-to-end smoke test: the random policy delivers everything too.
	mesh := topology.NewMesh2D(4, 4)
	a, err := routing.New("west-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	net := New(Config{Routing: a, Output: RandomOutput{}, Input: OldestFirst{}, Seed: 3})
	want := int64(0)
	for s := topology.NodeID(0); s < 16; s++ {
		for d := topology.NodeID(0); d < 16; d++ {
			if s != d {
				net.Enqueue(s, d, 5)
				want++
			}
		}
	}
	run(t, net, 100000)
	if net.PacketsDelivered() != want {
		t.Errorf("delivered %d, want %d", net.PacketsDelivered(), want)
	}
}
