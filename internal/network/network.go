// Package network is a cycle-accurate flit-level simulator of wormhole
// routing in direct networks, modeled on the simulator of Section 6 of the
// paper: each router has a single-flit buffer per input channel, a pair of
// unidirectional channels connects each pair of neighboring routers and
// each router to its local processor, messages blocked from entering the
// network queue at the source, and arriving messages are consumed
// immediately.
//
// Time advances in cycles; one cycle is the time a channel needs to
// transmit one flit. With the paper's channel bandwidth of 20 flits/us,
// one cycle is 0.05 us (see FlitsPerMicrosecond).
//
// The engine-independent machinery — source queues, the injection
// worklist, fault wiring, retry/drop accounting, the watchdog, and flat
// topology tables — lives in the shared internal/engine core; this package
// owns the physical-channel model, where a worm holds whole channels and
// advances as a unit.
package network

import (
	"fmt"
	"math/rand"
	"sort"

	"turnmodel/internal/engine"
	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// FlitsPerMicrosecond is the channel bandwidth of the paper's simulations:
// every channel moves 20 flits per microsecond, so one simulator cycle
// corresponds to 0.05 us.
const FlitsPerMicrosecond = 20

// Config configures a Network.
type Config struct {
	// Routing is the routing algorithm; it determines the topology.
	Routing routing.Algorithm
	// Output arbitrates among available permitted output channels.
	// Defaults to LowestDimension, the paper's "xy" policy.
	Output OutputPolicy
	// Input orders competing headers within a router. Defaults to
	// LocalFCFS, the paper's policy.
	Input InputPolicy
	// Seed seeds the arbitration RNG (only used by randomized policies).
	Seed int64
	// WatchdogCycles is how long the network may go without any flit
	// movement while packets are in flight before Step reports a
	// deadlock. 0 selects the default (10000); negative disables.
	WatchdogCycles int64
	// Faults lists broken unidirectional channels. A faulted channel is
	// never allocated; packets route around it when their algorithm
	// offers an alternative (the fault-tolerance benefit the paper
	// claims for adaptive and especially nonminimal routing) and stall
	// until the watchdog fires when it does not. Faults is shorthand for
	// FaultPlan.Static; the two lists are merged.
	Faults []topology.Channel
	// FaultPlan is the full fault workload: static channels, failed
	// nodes, and a seeded random per-cycle link-failure process with
	// optional repair (see fault.Plan). The zero plan injects nothing.
	FaultPlan fault.Plan
	// Recovery switches the watchdog from fail-stop to deadlock
	// recovery: a worm whose header has not moved for
	// Recovery.StallCycles is aborted — its flits drained, its buffers
	// and channels released — and retried from the source after capped
	// exponential backoff, or dropped once the retry budget is spent or
	// its destination is unreachable under the current fault set. With
	// Recovery.Enabled, Step never returns DeadlockError.
	Recovery fault.Recovery
	// FaultRouting enables in-network fault masking: the routing
	// algorithm is wrapped by routing.NewFaultAware, so candidates on
	// channels the deciding router knows are broken are filtered out when
	// a legal alternative survives, with an optional bounded misroute
	// fallback along turns the algorithm already permits (see
	// docs/fault-routing.md). Ignored when the fault plan is empty; off
	// by default.
	FaultRouting fault.RoutingPolicy
	// RoutingDelay models the cost Section 7 warns adaptive routing may
	// add ("more complex control logic for route selection ... may
	// increase node delay"): each routing decision takes RoutingDelay
	// cycles, so a header spends max(1, RoutingDelay) cycles per hop.
	// 0 (and 1) give the paper's idealized single-cycle router.
	RoutingDelay int64
	// Shards partitions the network into that many contiguous spatial
	// domains stepped in parallel by a persistent worker pool (see
	// docs/performance.md). Results are bit-identical to serial stepping
	// at every shard count. Values <= 1 step serially. Sharding requires
	// the default LowestDimension output policy (randomized arbitration
	// consumes a shared RNG stream whose draw order sharding would
	// change); other policies silently fall back to serial stepping.
	Shards int
	// Probe receives simulation events (see metrics.Probe). nil disables
	// instrumentation at zero cost: emission is batched through the
	// engine core's emitter, whose no-probe paths return immediately and
	// keep the Step hot loop allocation-free (TestStepAllocs pins this).
	Probe metrics.Probe
	// DisableEventSkip turns off event-driven cycle skipping (see
	// SetInjectionHorizon): every cycle is then stepped individually even
	// when the caller has promised an injection horizon. Like Shards it
	// is an execution strategy, not a model change — results are
	// bit-identical either way. Off by default (skipping available).
	DisableEventSkip bool
}

// DeadlockError is returned by Step when the watchdog detects that no flit
// has moved for the configured number of cycles although packets are in
// flight — the signature of a routing deadlock.
type DeadlockError = engine.DeadlockError

// Network is the simulator state. It is not safe for concurrent use; run
// independent simulations in independent Networks.
type Network struct {
	core engine.Core

	topo   topology.Topology
	alg    routing.Algorithm
	output OutputPolicy
	input  InputPolicy
	rng    *rand.Rand

	dims  int
	dims2 int
	ports int // per router: 2n input-buffer ports plus the injection port

	occupied []bool  // buffer id -> flit present
	outOwner []*worm // router*2n+dir -> holder of the output channel
	faulted  []bool  // router*2n+dir -> broken (aliases core.Faulted)

	// routerOf and portOf decode buffer ids without division.
	routerOf []int32
	portOf   []int16

	// masked implements fault-aware routing; nil unless enabled with a
	// non-empty fault plan. appender is the routing algorithm's optional
	// allocation-free candidate path; fastOutput short-circuits the
	// output policy when it is the default LowestDimension (first free
	// candidate), keeping the policy interface out of the hot loop.
	masked     *routing.FaultAware
	appender   routing.CandidateAppender
	fastOutput bool

	active    []*worm
	requests  []*worm // scratch: headers awaiting an output this cycle
	delivered []*Packet

	routingDelay int64

	// victims is the per-cycle scratch list of timed-out worms;
	// candScratch is reused by reachable()'s candidate queries.
	victims     []*worm
	candScratch []topology.Direction
	// channelFlits counts the flits each output channel has carried,
	// for load analysis (router*2n+dir).
	channelFlits []int64

	// sorter, freeBase and freeFn are allocation-free machinery for the
	// Step hot loop: a stored sort.Interface replaces the sort.Slice
	// closure for large request lists, and freeFn is allocated once with
	// freeBase rebound per request instead of closing over a fresh base
	// per header.
	sorter   reqSorter
	freeBase int
	freeFn   func(topology.Direction) bool

	// Sharded stepping (see shard.go): dsc holds one netDomain per
	// spatial domain and the Fn fields are the prebound per-phase worker
	// tasks; shards mirrors core.ShardCount() and is 1 for serial Step.
	shards     int
	dsc        []netDomain
	classifyFn func(d int)
	planFn     func(d int)
	applyFn    func(d int)
}

// reqSorter orders a request list by router, then by the input selection
// policy. It exists (rather than a sort.Slice closure) so that sorting in
// Step does not allocate; the sharded step keeps one per domain.
type reqSorter struct {
	n    *Network
	reqs *[]*worm
}

func (s *reqSorter) Len() int { return len(*s.reqs) }

func (s *reqSorter) Swap(i, j int) {
	r := *s.reqs
	r[i], r[j] = r[j], r[i]
}

func (s *reqSorter) Less(i, j int) bool {
	r := *s.reqs
	return s.n.requestLess(r[i], r[j])
}

// New builds a network simulator for the given configuration.
func New(cfg Config) *Network {
	if cfg.Routing == nil {
		panic("network: Config.Routing is required")
	}
	topo := cfg.Routing.Topology()
	n := &Network{
		topo:   topo,
		alg:    cfg.Routing,
		output: cfg.Output,
		input:  cfg.Input,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		dims:   topo.Dims(),
	}
	if n.output == nil {
		n.output = LowestDimension{}
	}
	if n.input == nil {
		n.input = LocalFCFS{}
	}
	n.dims2 = 2 * n.dims
	n.ports = n.dims2 + 1
	n.occupied = make([]bool, topo.Nodes()*n.ports)
	n.outOwner = make([]*worm, topo.Nodes()*n.dims2)
	n.routerOf = make([]int32, topo.Nodes()*n.ports)
	n.portOf = make([]int16, topo.Nodes()*n.ports)
	for b := range n.routerOf {
		n.routerOf[b] = int32(b / n.ports)
		n.portOf[b] = int16(b % n.ports)
	}
	n.core = engine.NewCore(engine.Config{
		Topo:             topo,
		WatchdogCycles:   cfg.WatchdogCycles,
		Faults:           cfg.Faults,
		FaultPlan:        cfg.FaultPlan,
		Recovery:         cfg.Recovery,
		FaultRouting:     cfg.FaultRouting,
		Probe:            cfg.Probe,
		Shards:           cfg.Shards,
		DisableEventSkip: cfg.DisableEventSkip,
	})
	n.core.Bind()
	n.core.InjFree = func(node topology.NodeID) bool {
		return !n.occupied[int(node)*n.ports+n.dims2]
	}
	n.core.InjPlace = n.placeWorm
	n.core.Reachable = n.reachable
	n.core.OnEpochChange = func() {
		// The fault set changed, so masked candidate sets computed from
		// the old set are stale: let waiting headers (those not yet
		// granted an output channel) re-decide.
		for _, w := range n.active {
			if !w.arrived && w.outDir == noDirection {
				w.candsValid = false
			}
		}
	}
	// Alias the core's fault bitmap: output allocation reads it with one
	// load, and fault transitions are visible immediately.
	n.faulted = n.core.Faulted
	if n.core.Health != nil {
		n.masked = routing.NewFaultAware(cfg.Routing, n.core.Health, n.core.FaultPol)
	}
	n.appender, _ = cfg.Routing.(routing.CandidateAppender)
	_, n.fastOutput = n.output.(LowestDimension)
	n.routingDelay = cfg.RoutingDelay
	n.channelFlits = make([]int64, topo.Nodes()*n.dims2)
	n.sorter = reqSorter{n, &n.requests}
	n.freeFn = func(d topology.Direction) bool {
		return n.outOwner[n.freeBase+int(d)] == nil && !n.faulted[n.freeBase+int(d)]
	}
	n.initShardDomains(cfg)
	return n
}

// placeWorm is the core's injection hook: the packet's header enters the
// node's free injection buffer.
func (n *Network) placeWorm(node topology.NodeID, p *Packet) {
	inj := n.bufID(node, n.dims2)
	w := &worm{
		pkt:           p,
		sent:          1,
		outDir:        noDirection,
		headerArrival: n.core.Cycle,
		headRouter:    node,
		inDir:         topology.Invalid,
	}
	w.path = append(w.pathBuf[:0], inj)
	n.occupied[inj] = true
	n.active = append(n.active, w)
}

// ChannelLoad reports how many flits the channel leaving node in direction
// d has carried since the start of the simulation.
func (n *Network) ChannelLoad(node topology.NodeID, d topology.Direction) int64 {
	return n.channelFlits[int(node)*n.dims2+int(d)]
}

// Topology returns the simulated network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Routing returns the routing algorithm in use.
func (n *Network) Routing() routing.Algorithm { return n.alg }

// Cycle is the current simulation time in cycles.
func (n *Network) Cycle() int64 { return n.core.Cycle }

// SetInjectionHorizon promises that no Enqueue will happen at a cycle
// strictly before the given one, which lets Step leap the clock over
// provably empty cycles once the network is idle (event-driven cycle
// skipping; see engine.Core.SetInjectionHorizon and docs/performance.md).
// After a Step the clock may therefore have advanced by more than one:
// drive the simulation with `for n.Cycle() < end { ... n.Step() }` rather
// than counting steps. Results are bit-identical to stepping every cycle.
// Passing a cycle at or before the current one withdraws the promise;
// Config.DisableEventSkip disables leaping regardless.
func (n *Network) SetInjectionHorizon(cycle int64) { n.core.SetInjectionHorizon(cycle) }

// CyclesSkipped reports how many cycles the event-driven clock leaped
// over instead of stepping — execution telemetry; results never depend on
// it.
func (n *Network) CyclesSkipped() int64 { return n.core.CyclesSkipped() }

// Microseconds converts a cycle count to microseconds at the paper's
// channel bandwidth.
func Microseconds(cycles int64) float64 { return float64(cycles) / FlitsPerMicrosecond }

// Enqueue generates a message of length flits from src to dst at the
// current cycle. The message waits in the source queue until the injection
// channel is free. Self-addressed messages are not meaningful in the
// paper's workloads and are rejected.
func (n *Network) Enqueue(src, dst topology.NodeID, length int) *Packet {
	if length < 1 {
		panic("network: packet length must be at least 1 flit")
	}
	if src == dst {
		panic("network: self-addressed packet")
	}
	return n.core.Enqueue(src, dst, length)
}

// QueueLen reports how many generated messages wait at the node's source
// queue (not yet injecting).
func (n *Network) QueueLen(node topology.NodeID) int { return n.core.QueueLen(node) }

// MaxQueueLen reports the longest current source queue; the paper deems a
// throughput sustainable while source queues stay small and bounded.
func (n *Network) MaxQueueLen() int { return n.core.MaxQueueLen() }

// InFlight counts packets that are queued, have flits in the network, or
// are waiting out a retry backoff after an abort. Dropped packets are not
// in flight: enqueued = delivered + dropped + in-flight at all times.
func (n *Network) InFlight() int { return len(n.active) + n.core.Backlog() }

// FlitsConsumed is the total number of flits delivered to destination
// processors since the start of the simulation.
func (n *Network) FlitsConsumed() int64 { return n.core.FlitsConsumed }

// PacketsDelivered is the total number of completed packets.
func (n *Network) PacketsDelivered() int64 { return n.core.PacketsDone }

// PacketsAborted counts worm aborts by deadlock recovery (a packet aborted
// k times contributes k).
func (n *Network) PacketsAborted() int64 { return n.core.PacketsAborted }

// PacketsRetried counts source retries of aborted packets.
func (n *Network) PacketsRetried() int64 { return n.core.PacketsRetried }

// PacketsDropped counts packets abandoned: destination unreachable under
// the current fault set, or retry budget exhausted.
func (n *Network) PacketsDropped() int64 { return n.core.PacketsDropped }

// MaskedFaults counts routing decisions whose candidate set was narrowed
// (or replaced by a misroute fallback) because the deciding router knew
// about broken channels; 0 unless fault-aware routing is enabled.
func (n *Network) MaskedFaults() int64 {
	if n.masked == nil {
		return 0
	}
	total := n.masked.MaskedDecisions()
	// The sharded step routes each request through its domain's wrapper
	// (the wrapper's counters are not concurrent-safe); every request is
	// processed exactly once, so the sum matches the serial count.
	for d := range n.dsc {
		if m := n.dsc[d].masked; m != nil {
			total += m.MaskedDecisions()
		}
	}
	return total
}

// MisrouteHops counts header hops taken from a misroute fallback set —
// the nonminimal detours of fault-aware routing; 0 unless enabled.
func (n *Network) MisrouteHops() int64 { return n.core.MisrouteHops }

// FaultEvents counts channel-break events applied so far, including static
// faults. ActiveFaults is the number of channels broken right now.
func (n *Network) FaultEvents() int64 { return n.core.FaultEvents() }

// ActiveFaults reports how many channels are currently broken.
func (n *Network) ActiveFaults() int { return n.core.ActiveFaults() }

// TakeDelivered returns the packets completed since the previous call and
// resets the internal list.
func (n *Network) TakeDelivered() []*Packet {
	out := n.delivered
	n.delivered = nil
	return out
}

func (n *Network) bufID(node topology.NodeID, port int) int32 {
	return int32(int(node)*n.ports + port)
}

func (n *Network) bufRouter(buf int32) topology.NodeID {
	return topology.NodeID(n.routerOf[buf])
}

func (n *Network) bufPort(buf int32) int { return int(n.portOf[buf]) }

// requestLess orders competing headers by router, then by the input
// selection policy. Both built-in policies tie-break on the unique packet
// ID, so the order is total and every sorting algorithm yields the same
// permutation.
func (n *Network) requestLess(a, b *worm) bool {
	if a.headRouter != b.headRouter {
		return a.headRouter < b.headRouter
	}
	return n.input.Less(a, b)
}

// sortRequestList orders a request list in place. Small lists (the common
// case at sweep loads) use an insertion sort — the active list's injection
// order is close to sorted, so it is effectively linear — and large lists
// fall back to the caller's stored sort.Interface. The comparison is a
// strict total order, so both paths produce the identical permutation.
func (n *Network) sortRequestList(r []*worm, s *reqSorter) {
	if len(r) <= 32 {
		for i := 1; i < len(r); i++ {
			w := r[i]
			j := i - 1
			for j >= 0 && n.requestLess(w, r[j]) {
				r[j+1] = r[j]
				j--
			}
			r[j+1] = w
		}
		return
	}
	sort.Sort(s)
}

func (n *Network) sortRequests() { n.sortRequestList(n.requests, &n.sorter) }

// Step advances the simulation by one cycle: it injects waiting headers,
// routes and allocates output channels for waiting headers (input and
// output selection policies arbitrate), and then advances every worm that
// can move by one hop. It returns a *DeadlockError if the watchdog fires.
//
// With Config.Shards > 1 the cycle runs on the domain-decomposed path
// (see shard.go), which produces bit-identical results.
func (n *Network) Step() error {
	if n.shards > 1 {
		return n.stepSharded()
	}
	c := &n.core
	progress := false

	// Phase 0: fault transitions and deadlock recovery.
	c.FaultPhase()
	if c.Recovery.Enabled {
		n.recoveryPhase()
	}

	// Phase 1: injection, over the core's worklist of nodes with queued
	// work. Due retries take priority over fresh messages; packets whose
	// destination the fault set has cut off entirely are dropped without
	// entering the network.
	if c.InjectPhase() {
		progress = true
	}

	// Phase 2: routing and output allocation for waiting headers,
	// arbitrated per router by the input selection policy.
	n.requests = n.requests[:0]
	for _, w := range n.active {
		w.advanced = false
		if w.arrived || w.outDir != noDirection {
			continue
		}
		if n.routingDelay > 0 && c.Cycle-w.headerArrival < n.routingDelay {
			// The routing decision is still in the router pipeline
			// (Section 7's node-delay cost of adaptive route selection).
			continue
		}
		if w.headRouter == w.pkt.Dst {
			// Ejection channels are always available; the message
			// starts draining into the local processor.
			w.arrived = true
			continue
		}
		n.requests = append(n.requests, w)
	}
	if len(n.requests) > 0 {
		n.sortRequests()
		for _, w := range n.requests {
			r := w.headRouter
			if !w.candsValid {
				// The permitted outputs depend only on (router, dst,
				// arrival direction), all fixed while the header waits in
				// this buffer, so the candidate list is computed once per
				// hop rather than once per cycle.
				if n.masked != nil {
					w.cands, w.candsMis = n.masked.FaultCandidates(r, w.pkt.Dst, w.inDir, w.inWrap, w.misroutes)
				} else if n.appender != nil {
					w.cands = n.appender.AppendCandidates(w.candBuf[:0], r, w.pkt.Dst, w.inDir, w.inWrap)
				} else {
					w.cands = n.alg.Candidates(r, w.pkt.Dst, w.inDir, w.inWrap)
				}
				w.candsValid = true
			}
			base := int(r) * n.dims2
			if n.fastOutput {
				// LowestDimension is "first free candidate": inline it and
				// skip the policy's closure indirection.
				granted := false
				for _, d := range w.cands {
					if k := base + int(d); n.outOwner[k] == nil && !n.faulted[k] {
						n.outOwner[k] = w
						w.outDir = d
						granted = true
						break
					}
				}
				if !granted {
					c.Em.Blocked(c.Cycle, r)
				}
				continue
			}
			n.freeBase = base
			if d, ok := n.output.Choose(w.cands, n.freeFn, w.inDir, n.rng); ok {
				n.outOwner[base+int(d)] = w
				w.outDir = d
			} else {
				c.Em.Blocked(c.Cycle, r)
			}
		}
	}

	// Phase 3: movement. Worms advance at most one hop each; a worm
	// freed by another worm's tail may move in the same cycle, so
	// iterate to a fixpoint.
	for {
		moved := false
		for _, w := range n.active {
			if !w.advanced && n.tryAdvance(w) {
				moved = true
			}
		}
		if !moved {
			break
		}
		progress = true
	}

	// Phase 4: retire completed worms, then close the cycle.
	n.retirePhase()
	return n.finishStep(progress)
}

// recoveryPhase aborts any worm whose header has been stuck past the stall
// threshold (the timeout criterion of software-based deadlock recovery: a
// genuinely deadlocked worm never moves again, and a worm starved that long
// is treated the same). It is always serial: aborts mutate the active list
// and shared retry state.
func (n *Network) recoveryPhase() {
	c := &n.core
	n.victims = n.victims[:0]
	for _, w := range n.active {
		if !w.arrived && c.Cycle-w.headerArrival >= c.Recovery.StallCycles {
			n.victims = append(n.victims, w)
		}
	}
	for _, w := range n.victims {
		n.abort(w)
	}
}

// retirePhase removes completed worms from the active list, preserving
// order, and records their delivery.
func (n *Network) retirePhase() {
	c := &n.core
	out := n.active[:0]
	for _, w := range n.active {
		if w.delivered == w.pkt.Length {
			w.pkt.Arrived = c.Cycle
			n.delivered = append(n.delivered, w.pkt)
			c.PacketsDone++
			p := w.pkt
			c.Em.Deliver(c.Cycle, p.Src, p.Dst, p.Length, p.Hops,
				p.Injected-p.Created, p.Arrived-p.Injected)
		} else {
			out = append(out, w)
		}
	}
	for i := len(out); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = out
}

// finishStep closes the cycle through the core and builds the deadlock
// error if the watchdog fired.
func (n *Network) finishStep(progress bool) error {
	c := &n.core
	if c.EndStep(progress, len(n.active)) {
		stuck := make([]*Packet, 0, 4)
		for _, w := range n.active {
			stuck = append(stuck, w.pkt)
			if len(stuck) == 4 {
				break
			}
		}
		return c.Deadlock(len(n.active), stuck)
	}
	return nil
}

// abort yanks a blocked worm out of the network: every buffer its flits
// occupy is freed and every channel it still holds (including a pending
// output allocation) is released; the shared core then requeues the packet
// at its source with backoff or drops it. Only never-arrived worms are
// aborted, and an arrived worm always consumes a flit each cycle, so a
// victim has delivered no flits — aborting loses nothing already consumed.
func (n *Network) abort(w *worm) {
	last := len(w.path) - 1
	inNet := w.inNetwork()
	tailIdx := last - (inNet - 1)
	for i := tailIdx; i <= last; i++ {
		n.occupied[w.path[i]] = false
	}
	for j := tailIdx + 1; j <= last; j++ {
		from := n.bufRouter(w.path[j-1])
		dir := n.bufPort(w.path[j])
		n.outOwner[int(from)*n.dims2+dir] = nil
	}
	if w.outDir != noDirection {
		n.outOwner[int(w.headRouter)*n.dims2+int(w.outDir)] = nil
		w.outDir = noDirection
	}
	for i, x := range n.active {
		if x == w {
			n.active = append(n.active[:i], n.active[i+1:]...)
			break
		}
	}
	n.core.FinishAbort(w.pkt)
}

// reachable reports whether a packet injected at src can reach dst under
// the routing algorithm, avoiding currently faulted channels. It searches
// the (node, inPort, wrap) state space the algorithm's Candidates function
// is defined over, with stamped visited marks (scratch shared through the
// engine core) so repeated queries do not allocate.
func (n *Network) reachable(src, dst topology.NodeID) bool {
	if src == dst {
		return true
	}
	c := &n.core
	g := c.Grid
	states := n.topo.Nodes() * n.ports * 2
	if len(c.ReachSeen) < states {
		c.ReachSeen = make([]int32, states)
		c.ReachQueue = make([]int32, 0, states)
	}
	c.ReachStamp++
	stamp := c.ReachStamp
	// inPort 2n encodes "injected here" (arrival direction Invalid).
	start := int32((int(src)*n.ports + n.dims2) * 2)
	c.ReachSeen[start] = stamp
	q := append(c.ReachQueue[:0], start)
	found := false
	for head := 0; head < len(q) && !found; head++ {
		s := q[head]
		node := topology.NodeID(int(s) / 2 / n.ports)
		inPort := int(s) / 2 % n.ports
		inWrap := s&1 == 1
		in := topology.Invalid
		if inPort < n.dims2 {
			in = topology.Direction(inPort)
		}
		var cands []topology.Direction
		if n.masked != nil {
			// Under fault-aware routing the packet follows the masked
			// relation, which can also reach around faults by misrouting;
			// budget is ignored, an over-approximation that at worst
			// retries a packet that will be aborted again.
			cands, _ = n.masked.FaultCandidates(node, dst, in, inWrap, 0)
		} else if n.appender != nil {
			n.candScratch = n.appender.AppendCandidates(n.candScratch[:0], node, dst, in, inWrap)
			cands = n.candScratch
		} else {
			cands = n.alg.Candidates(node, dst, in, inWrap)
		}
		for _, d := range cands {
			if n.faulted[int(node)*n.dims2+int(d)] {
				continue
			}
			nb, ok := g.Neighbor(node, d)
			if !ok {
				continue
			}
			if nb == dst {
				found = true
				break
			}
			next := int32((int(nb)*n.ports + int(d)) * 2)
			if g.Wrap(node, d) {
				next++
			}
			if c.ReachSeen[next] != stamp {
				c.ReachSeen[next] = stamp
				q = append(q, next)
			}
		}
	}
	c.ReachQueue = q[:0]
	return found
}

// tryAdvance moves the worm forward one hop if it can: the header moves
// into the next free buffer (or a flit is consumed at the destination) and
// every trailing flit follows, with the tail releasing its buffer and, once
// fully injected, the channel behind it.
func (n *Network) tryAdvance(w *worm) bool {
	if !n.canAdvance(w) {
		return false
	}
	c := &n.core
	n.applyAdvance(w, &c.Em, &c.FlitsConsumed, &c.MisrouteHops)
	return true
}

// canAdvance is tryAdvance's read-only half: whether the worm moves this
// round. An arrived worm always drains a flit; a granted header moves iff
// its target buffer is free. The sharded step's movement rounds evaluate it
// for every worm at a barrier before any write (see shard.go), which is
// sound because no write of the subsequent apply stage can invalidate a
// positive answer: granted headers hold exclusive output channels, so two
// movers never target one buffer, and frees only enable.
func (n *Network) canAdvance(w *worm) bool {
	if w.inNetwork() == 0 {
		return false
	}
	if w.arrived {
		return true
	}
	if w.outDir == noDirection {
		return false
	}
	r := w.headRouter
	next, ok := n.core.Grid.Neighbor(r, w.outDir)
	if !ok {
		panic(fmt.Sprintf("network: allocated output %v at node %d has no channel", w.outDir, r))
	}
	return !n.occupied[n.bufID(next, int(w.outDir))]
}

// applyAdvance is tryAdvance's write half: one hop for a worm canAdvance
// approved. Every location it writes is exclusive to this worm — the
// target buffer (via its output-channel grant), its own flits' buffers and
// channels — so the sharded step may apply a whole round of moves in
// parallel. The flit-consumed and misroute tallies and the probe events go
// through the caller's sinks: the core's own for the serial path, the
// domain's for the sharded one.
func (n *Network) applyAdvance(w *worm, em *engine.Emitter, flits, mis *int64) {
	c := &n.core
	last := len(w.path) - 1
	inNet := w.inNetwork()
	if !w.arrived {
		r := w.headRouter
		next, _ := c.Grid.Neighbor(r, w.outDir)
		nb := n.bufID(next, int(w.outDir))
		n.occupied[nb] = true
		if w.candsMis {
			// The hop came from a misroute set: a nonminimal detour,
			// charged against the packet's misroute budget.
			w.misroutes++
			*mis++
			w.candsMis = false
		}
		w.path = append(w.path, nb)
		w.pkt.Hops++
		w.headerArrival = c.Cycle
		w.inWrap = c.Grid.Wrap(r, w.outDir)
		w.inDir = w.outDir
		w.headRouter = next
		w.outDir = noDirection
		w.candsValid = false
	} else {
		// The front flit is consumed by the destination processor.
		w.delivered++
		*flits++
	}

	// Shift the tail: either a fresh flit enters the injection buffer or
	// the tail flit vacates its buffer and releases the channel it
	// finished crossing.
	tailIdx := last - (inNet - 1)
	if w.sent < w.pkt.Length {
		// The next flit follows into the injection buffer (tailIdx is
		// necessarily 0 here).
		w.sent++
	} else {
		n.occupied[w.path[tailIdx]] = false
		if tailIdx+1 < len(w.path) {
			from := n.bufRouter(w.path[tailIdx])
			dir := n.bufPort(w.path[tailIdx+1])
			key := int(from)*n.dims2 + dir
			n.outOwner[key] = nil
			// The tail has crossed: all of the packet's flits have now
			// traversed this channel. Tallied at release so the counts
			// reflect completed traversals only.
			n.channelFlits[key] += int64(w.pkt.Length)
			em.FlitMove(c.Cycle, from, topology.Direction(dir), w.pkt.Length)
		}
	}
	w.advanced = true
}
