// Package network is a cycle-accurate flit-level simulator of wormhole
// routing in direct networks, modeled on the simulator of Section 6 of the
// paper: each router has a single-flit buffer per input channel, a pair of
// unidirectional channels connects each pair of neighboring routers and
// each router to its local processor, messages blocked from entering the
// network queue at the source, and arriving messages are consumed
// immediately.
//
// Time advances in cycles; one cycle is the time a channel needs to
// transmit one flit. With the paper's channel bandwidth of 20 flits/us,
// one cycle is 0.05 us (see FlitsPerMicrosecond).
package network

import (
	"fmt"
	"math/rand"
	"sort"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// FlitsPerMicrosecond is the channel bandwidth of the paper's simulations:
// every channel moves 20 flits per microsecond, so one simulator cycle
// corresponds to 0.05 us.
const FlitsPerMicrosecond = 20

// Config configures a Network.
type Config struct {
	// Routing is the routing algorithm; it determines the topology.
	Routing routing.Algorithm
	// Output arbitrates among available permitted output channels.
	// Defaults to LowestDimension, the paper's "xy" policy.
	Output OutputPolicy
	// Input orders competing headers within a router. Defaults to
	// LocalFCFS, the paper's policy.
	Input InputPolicy
	// Seed seeds the arbitration RNG (only used by randomized policies).
	Seed int64
	// WatchdogCycles is how long the network may go without any flit
	// movement while packets are in flight before Step reports a
	// deadlock. 0 selects the default (10000); negative disables.
	WatchdogCycles int64
	// Faults lists broken unidirectional channels. A faulted channel is
	// never allocated; packets route around it when their algorithm
	// offers an alternative (the fault-tolerance benefit the paper
	// claims for adaptive and especially nonminimal routing) and stall
	// until the watchdog fires when it does not. Faults is shorthand for
	// FaultPlan.Static; the two lists are merged.
	Faults []topology.Channel
	// FaultPlan is the full fault workload: static channels, failed
	// nodes, and a seeded random per-cycle link-failure process with
	// optional repair (see fault.Plan). The zero plan injects nothing.
	FaultPlan fault.Plan
	// Recovery switches the watchdog from fail-stop to deadlock
	// recovery: a worm whose header has not moved for
	// Recovery.StallCycles is aborted — its flits drained, its buffers
	// and channels released — and retried from the source after capped
	// exponential backoff, or dropped once the retry budget is spent or
	// its destination is unreachable under the current fault set. With
	// Recovery.Enabled, Step never returns DeadlockError.
	Recovery fault.Recovery
	// FaultRouting enables in-network fault masking: the routing
	// algorithm is wrapped by routing.NewFaultAware, so candidates on
	// channels the deciding router knows are broken are filtered out when
	// a legal alternative survives, with an optional bounded misroute
	// fallback along turns the algorithm already permits (see
	// docs/fault-routing.md). Ignored when the fault plan is empty; off
	// by default.
	FaultRouting fault.RoutingPolicy
	// RoutingDelay models the cost Section 7 warns adaptive routing may
	// add ("more complex control logic for route selection ... may
	// increase node delay"): each routing decision takes RoutingDelay
	// cycles, so a header spends max(1, RoutingDelay) cycles per hop.
	// 0 (and 1) give the paper's idealized single-cycle router.
	RoutingDelay int64
	// Probe receives simulation events (see metrics.Probe). nil disables
	// instrumentation at zero cost: every emission site is nil-guarded
	// and the Step hot loop stays allocation-free (BenchmarkNetworkStep
	// pins this).
	Probe metrics.Probe
}

// DeadlockError is returned by Step when the watchdog detects that no flit
// has moved for the configured number of cycles although packets are in
// flight — the signature of a routing deadlock.
type DeadlockError struct {
	Cycle    int64
	InFlight int
	Stuck    []*Packet
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("network: deadlock at cycle %d: %d packets in flight, none progressing (e.g. %v)",
		e.Cycle, e.InFlight, e.Stuck[0])
}

// Network is the simulator state. It is not safe for concurrent use; run
// independent simulations in independent Networks.
type Network struct {
	topo   topology.Topology
	alg    routing.Algorithm
	output OutputPolicy
	input  InputPolicy
	rng    *rand.Rand

	dims  int
	ports int // per router: 2n input-buffer ports plus the injection port

	cycle    int64
	occupied []bool  // buffer id -> flit present
	outOwner []*worm // router*2n+dir -> holder of the output channel
	faulted  []bool  // router*2n+dir -> channel is broken

	// faults drives the dynamic fault plan; nil when the plan is empty.
	// When non-nil, faulted aliases faults.Faulted so output allocation
	// keeps its single-load fault check.
	faults   *fault.State
	recovery fault.Recovery
	// health and masked implement fault-aware routing; both nil unless
	// Config.FaultRouting is enabled and the fault plan is non-empty.
	// faultEpoch tracks the last fault-set epoch seen, to invalidate
	// cached candidate sets when the set changes.
	health     *fault.Health
	masked     *routing.FaultAware
	faultEpoch int64
	// retries holds aborted packets waiting out their backoff at the
	// source (per node); nil unless recovery is enabled.
	retries [][]retryEntry

	queues [][]*Packet // per-node source queues (FIFO)
	qhead  []int

	active    []*worm
	requests  []*worm // scratch: headers awaiting an output this cycle
	delivered []*Packet

	nextID         int64
	flitsConsumed  int64
	packetsDone    int64
	packetsAborted int64
	packetsRetried int64
	packetsDropped int64
	misrouteHops   int64
	lastProgress   int64
	watchdogCycles int64
	routingDelay   int64

	// Reachability-BFS scratch (recovery mode only): stamped visited
	// marks over (node, inPort, wrap) states, reused across queries.
	reachSeen  []int32
	reachQueue []int32
	reachStamp int32
	// victims is the per-cycle scratch list of timed-out worms.
	victims []*worm
	// channelFlits counts the flits each output channel has carried,
	// for load analysis (router*2n+dir).
	channelFlits []int64

	probe metrics.Probe
	// sorter, freeBase and freeFn are allocation-free machinery for the
	// Step hot loop: a stored sort.Interface replaces the sort.Slice
	// closure, and freeFn is allocated once with freeBase rebound per
	// request instead of closing over a fresh base per header.
	sorter   reqSorter
	freeBase int
	freeFn   func(topology.Direction) bool
}

// retryEntry is one aborted packet waiting at its source to reinject at
// cycle `at`.
type retryEntry struct {
	p  *Packet
	at int64
}

// reqSorter orders the pending requests by router, then by the input
// selection policy. It exists (rather than a sort.Slice closure) so that
// sorting in Step does not allocate.
type reqSorter struct{ n *Network }

func (s *reqSorter) Len() int { return len(s.n.requests) }

func (s *reqSorter) Swap(i, j int) {
	r := s.n.requests
	r[i], r[j] = r[j], r[i]
}

func (s *reqSorter) Less(i, j int) bool {
	r := s.n.requests
	ri, rj := s.n.bufRouter(r[i].headBuf()), s.n.bufRouter(r[j].headBuf())
	if ri != rj {
		return ri < rj
	}
	return s.n.input.Less(r[i], r[j])
}

// New builds a network simulator for the given configuration.
func New(cfg Config) *Network {
	if cfg.Routing == nil {
		panic("network: Config.Routing is required")
	}
	topo := cfg.Routing.Topology()
	n := &Network{
		topo:   topo,
		alg:    cfg.Routing,
		output: cfg.Output,
		input:  cfg.Input,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		dims:   topo.Dims(),
	}
	if n.output == nil {
		n.output = LowestDimension{}
	}
	if n.input == nil {
		n.input = LocalFCFS{}
	}
	n.ports = 2*n.dims + 1
	n.occupied = make([]bool, topo.Nodes()*n.ports)
	n.outOwner = make([]*worm, topo.Nodes()*2*n.dims)
	plan := cfg.FaultPlan
	if len(cfg.Faults) > 0 {
		plan.Static = append(append([]topology.Channel(nil), plan.Static...), cfg.Faults...)
	}
	if plan.Empty() {
		n.faulted = make([]bool, topo.Nodes()*2*n.dims)
	} else {
		n.faults = fault.MustNew(plan, topo)
		// Alias the fault state's bitmap: output allocation reads it with
		// one load, and Advance's transitions are visible immediately.
		n.faulted = n.faults.Faulted
		n.faults.OnChange = func(from topology.NodeID, dir topology.Direction, failed bool) {
			if n.probe != nil {
				n.probe.Fault(n.cycle, from, dir, failed)
			}
		}
	}
	if cfg.FaultRouting.Enabled() && n.faults != nil {
		pol := cfg.FaultRouting.WithDefaults()
		n.health = fault.NewHealth(topo, n.faults, pol)
		n.masked = routing.NewFaultAware(cfg.Routing, n.health, pol)
	}
	n.recovery = cfg.Recovery
	if n.recovery.Enabled {
		n.recovery = n.recovery.WithDefaults()
		n.retries = make([][]retryEntry, topo.Nodes())
	}
	n.queues = make([][]*Packet, topo.Nodes())
	n.qhead = make([]int, topo.Nodes())
	n.watchdogCycles = cfg.WatchdogCycles
	if n.watchdogCycles == 0 {
		n.watchdogCycles = 10000
	}
	n.routingDelay = cfg.RoutingDelay
	n.channelFlits = make([]int64, topo.Nodes()*2*n.dims)
	n.probe = cfg.Probe
	n.sorter = reqSorter{n}
	n.freeFn = func(d topology.Direction) bool {
		return n.outOwner[n.freeBase+int(d)] == nil && !n.faulted[n.freeBase+int(d)]
	}
	return n
}

// ChannelLoad reports how many flits the channel leaving node in direction
// d has carried since the start of the simulation.
func (n *Network) ChannelLoad(node topology.NodeID, d topology.Direction) int64 {
	return n.channelFlits[int(node)*2*n.dims+int(d)]
}

// Topology returns the simulated network's topology.
func (n *Network) Topology() topology.Topology { return n.topo }

// Routing returns the routing algorithm in use.
func (n *Network) Routing() routing.Algorithm { return n.alg }

// Cycle is the current simulation time in cycles.
func (n *Network) Cycle() int64 { return n.cycle }

// Microseconds converts a cycle count to microseconds at the paper's
// channel bandwidth.
func Microseconds(cycles int64) float64 { return float64(cycles) / FlitsPerMicrosecond }

// Enqueue generates a message of length flits from src to dst at the
// current cycle. The message waits in the source queue until the injection
// channel is free. Self-addressed messages are not meaningful in the
// paper's workloads and are rejected.
func (n *Network) Enqueue(src, dst topology.NodeID, length int) *Packet {
	if length < 1 {
		panic("network: packet length must be at least 1 flit")
	}
	if src == dst {
		panic("network: self-addressed packet")
	}
	p := &Packet{
		ID: n.nextID, Src: src, Dst: dst, Length: length,
		Created: n.cycle, Injected: -1, Arrived: -1,
	}
	n.nextID++
	n.queues[src] = append(n.queues[src], p)
	return p
}

// QueueLen reports how many generated messages wait at the node's source
// queue (not yet injecting).
func (n *Network) QueueLen(node topology.NodeID) int {
	return len(n.queues[node]) - n.qhead[node]
}

// MaxQueueLen reports the longest current source queue; the paper deems a
// throughput sustainable while source queues stay small and bounded.
func (n *Network) MaxQueueLen() int {
	max := 0
	for i := range n.queues {
		if l := len(n.queues[i]) - n.qhead[i]; l > max {
			max = l
		}
	}
	return max
}

// InFlight counts packets that are queued, have flits in the network, or
// are waiting out a retry backoff after an abort. Dropped packets are not
// in flight: enqueued = delivered + dropped + in-flight at all times.
func (n *Network) InFlight() int {
	total := len(n.active)
	for i := range n.queues {
		total += len(n.queues[i]) - n.qhead[i]
	}
	for i := range n.retries {
		total += len(n.retries[i])
	}
	return total
}

// FlitsConsumed is the total number of flits delivered to destination
// processors since the start of the simulation.
func (n *Network) FlitsConsumed() int64 { return n.flitsConsumed }

// PacketsDelivered is the total number of completed packets.
func (n *Network) PacketsDelivered() int64 { return n.packetsDone }

// PacketsAborted counts worm aborts by deadlock recovery (a packet aborted
// k times contributes k).
func (n *Network) PacketsAborted() int64 { return n.packetsAborted }

// PacketsRetried counts source retries of aborted packets.
func (n *Network) PacketsRetried() int64 { return n.packetsRetried }

// PacketsDropped counts packets abandoned: destination unreachable under
// the current fault set, or retry budget exhausted.
func (n *Network) PacketsDropped() int64 { return n.packetsDropped }

// MaskedFaults counts routing decisions whose candidate set was narrowed
// (or replaced by a misroute fallback) because the deciding router knew
// about broken channels; 0 unless fault-aware routing is enabled.
func (n *Network) MaskedFaults() int64 {
	if n.masked == nil {
		return 0
	}
	return n.masked.MaskedDecisions()
}

// MisrouteHops counts header hops taken from a misroute fallback set —
// the nonminimal detours of fault-aware routing; 0 unless enabled.
func (n *Network) MisrouteHops() int64 { return n.misrouteHops }

// FaultEvents counts channel-break events applied so far, including static
// faults. ActiveFaults is the number of channels broken right now.
func (n *Network) FaultEvents() int64 {
	if n.faults == nil {
		return 0
	}
	return n.faults.FailEvents()
}

// ActiveFaults reports how many channels are currently broken.
func (n *Network) ActiveFaults() int {
	if n.faults == nil {
		return 0
	}
	return n.faults.ActiveFaults()
}

// TakeDelivered returns the packets completed since the previous call and
// resets the internal list.
func (n *Network) TakeDelivered() []*Packet {
	out := n.delivered
	n.delivered = nil
	return out
}

func (n *Network) bufID(node topology.NodeID, port int) int32 {
	return int32(int(node)*n.ports + port)
}

func (n *Network) bufRouter(buf int32) topology.NodeID {
	return topology.NodeID(int(buf) / n.ports)
}

func (n *Network) bufPort(buf int32) int { return int(buf) % n.ports }

// inDirOf reports the direction the worm's header was travelling when it
// entered its current buffer, and whether it came over a wraparound.
func (n *Network) inDirOf(w *worm) (topology.Direction, bool) {
	port := n.bufPort(w.headBuf())
	if port == 2*n.dims {
		return topology.Invalid, false
	}
	d := topology.Direction(port)
	if len(w.path) < 2 {
		return d, false
	}
	prev := n.bufRouter(w.path[len(w.path)-2])
	return d, n.topo.Wraparound(prev, d)
}

// Step advances the simulation by one cycle: it injects waiting headers,
// routes and allocates output channels for waiting headers (input and
// output selection policies arbitrate), and then advances every worm that
// can move by one hop. It returns a *DeadlockError if the watchdog fires.
func (n *Network) Step() error {
	progress := false

	// Phase 0: fault transitions and deadlock recovery. The fault plan
	// applies this cycle's channel breaks and repairs; recovery then
	// aborts any worm whose header has been stuck past the stall
	// threshold (the timeout criterion of software-based deadlock
	// recovery: a genuinely deadlocked worm never moves again, and a
	// worm starved that long is treated the same).
	if n.faults != nil {
		n.faults.Advance(n.cycle)
		if n.health != nil {
			n.health.Refresh()
			if e := n.faults.Epoch(); e != n.faultEpoch {
				// The fault set changed, so masked candidate sets computed
				// from the old set are stale: let waiting headers (those
				// not yet granted an output channel) re-decide.
				n.faultEpoch = e
				for _, w := range n.active {
					if !w.arrived && w.outDir == noDirection {
						w.candsValid = false
					}
				}
			}
		}
	}
	if n.recovery.Enabled {
		n.victims = n.victims[:0]
		for _, w := range n.active {
			if !w.arrived && n.cycle-w.headerArrival >= n.recovery.StallCycles {
				n.victims = append(n.victims, w)
			}
		}
		for _, w := range n.victims {
			n.abort(w)
		}
	}

	// Phase 1: injection. A queued message's header enters the router's
	// injection buffer as soon as that buffer is free. Due retries take
	// priority over fresh messages; packets whose destination the fault
	// set has cut off entirely are dropped without entering the network.
	for node := range n.queues {
		inj := n.bufID(topology.NodeID(node), 2*n.dims)
		if n.occupied[inj] {
			continue
		}
		for {
			p := n.popRetry(node)
			if p == nil {
				if n.qhead[node] >= len(n.queues[node]) {
					break
				}
				p = n.queues[node][n.qhead[node]]
				n.queues[node][n.qhead[node]] = nil
				n.qhead[node]++
				if n.qhead[node] == len(n.queues[node]) {
					n.queues[node] = n.queues[node][:0]
					n.qhead[node] = 0
				}
			}
			if n.recovery.Enabled && n.faults != nil && n.faults.ActiveFaults() > 0 &&
				n.cutOff(topology.NodeID(node), p.Dst) {
				n.drop(p, metrics.DropUnreachable)
				progress = true
				continue // the injection buffer is still free; try the next
			}
			p.Injected = n.cycle
			w := &worm{
				pkt:           p,
				path:          []int32{inj},
				sent:          1,
				outDir:        noDirection,
				headerArrival: n.cycle,
			}
			n.occupied[inj] = true
			n.active = append(n.active, w)
			progress = true
			if n.probe != nil {
				n.probe.Inject(n.cycle, p.Src, p.Dst, p.Length)
			}
			break
		}
	}

	// Phase 2: routing and output allocation for waiting headers,
	// arbitrated per router by the input selection policy.
	n.requests = n.requests[:0]
	for _, w := range n.active {
		w.advanced = false
		if w.arrived || w.outDir != noDirection {
			continue
		}
		if n.routingDelay > 0 && n.cycle-w.headerArrival < n.routingDelay {
			// The routing decision is still in the router pipeline
			// (Section 7's node-delay cost of adaptive route selection).
			continue
		}
		if n.bufRouter(w.headBuf()) == w.pkt.Dst {
			// Ejection channels are always available; the message
			// starts draining into the local processor.
			w.arrived = true
			continue
		}
		n.requests = append(n.requests, w)
	}
	if len(n.requests) > 0 {
		sort.Sort(&n.sorter)
		for _, w := range n.requests {
			r := n.bufRouter(w.headBuf())
			in, inWrap := n.inDirOf(w)
			if !w.candsValid {
				// The permitted outputs depend only on (router, dst,
				// arrival direction), all fixed while the header waits in
				// this buffer, so the candidate list is computed once per
				// hop rather than once per cycle.
				if n.masked != nil {
					w.cands, w.candsMis = n.masked.FaultCandidates(r, w.pkt.Dst, in, inWrap, w.misroutes)
				} else {
					w.cands = n.alg.Candidates(r, w.pkt.Dst, in, inWrap)
				}
				w.candsValid = true
			}
			n.freeBase = int(r) * 2 * n.dims
			if d, ok := n.output.Choose(w.cands, n.freeFn, in, n.rng); ok {
				n.outOwner[n.freeBase+int(d)] = w
				w.outDir = d
			} else if n.probe != nil {
				n.probe.Blocked(n.cycle, r)
			}
		}
	}

	// Phase 3: movement. Worms advance at most one hop each; a worm
	// freed by another worm's tail may move in the same cycle, so
	// iterate to a fixpoint.
	for {
		moved := false
		for _, w := range n.active {
			if !w.advanced && n.tryAdvance(w) {
				moved = true
			}
		}
		if !moved {
			break
		}
		progress = true
	}

	// Phase 4: retire completed worms, preserving order.
	out := n.active[:0]
	for _, w := range n.active {
		if w.delivered == w.pkt.Length {
			w.pkt.Arrived = n.cycle
			n.delivered = append(n.delivered, w.pkt)
			n.packetsDone++
			if n.probe != nil {
				p := w.pkt
				n.probe.Deliver(n.cycle, p.Src, p.Dst, p.Length, p.Hops,
					p.Injected-p.Created, p.Arrived-p.Injected)
			}
		} else {
			out = append(out, w)
		}
	}
	for i := len(out); i < len(n.active); i++ {
		n.active[i] = nil
	}
	n.active = out

	if n.probe != nil {
		n.probe.Tick(n.cycle)
	}
	n.cycle++
	if progress {
		n.lastProgress = n.cycle
	} else if n.recovery.Enabled {
		// Recovery mode never fail-stops: stuck worms are aborted by the
		// per-worm timeout above, and a quiet network with packets only
		// waiting out retry backoff is making (delayed) progress.
	} else if n.watchdogCycles > 0 && n.InFlight() > 0 && n.cycle-n.lastProgress >= n.watchdogCycles {
		stuck := make([]*Packet, 0, 4)
		for _, w := range n.active {
			stuck = append(stuck, w.pkt)
			if len(stuck) == 4 {
				break
			}
		}
		return &DeadlockError{Cycle: n.cycle, InFlight: n.InFlight(), Stuck: stuck}
	}
	return nil
}

// popRetry returns the first due retry packet at the node, or nil. Entries
// are scanned in abort order so an early abort with a long backoff does not
// block a later one with a short backoff.
func (n *Network) popRetry(node int) *Packet {
	if !n.recovery.Enabled {
		return nil
	}
	q := n.retries[node]
	for i := range q {
		if q[i].at <= n.cycle {
			p := q[i].p
			n.retries[node] = append(q[:i], q[i+1:]...)
			return p
		}
	}
	return nil
}

// abort yanks a blocked worm out of the network: every buffer its flits
// occupy is freed and every channel it still holds (including a pending
// output allocation) is released, then the packet is either requeued at its
// source with backoff or dropped. Only never-arrived worms are aborted, and
// an arrived worm always consumes a flit each cycle, so a victim has
// delivered no flits — aborting loses nothing that was already consumed.
func (n *Network) abort(w *worm) {
	last := len(w.path) - 1
	inNet := w.inNetwork()
	tailIdx := last - (inNet - 1)
	for i := tailIdx; i <= last; i++ {
		n.occupied[w.path[i]] = false
	}
	for j := tailIdx + 1; j <= last; j++ {
		from := n.bufRouter(w.path[j-1])
		dir := n.bufPort(w.path[j])
		n.outOwner[int(from)*2*n.dims+dir] = nil
	}
	if w.outDir != noDirection {
		r := n.bufRouter(w.headBuf())
		n.outOwner[int(r)*2*n.dims+int(w.outDir)] = nil
		w.outDir = noDirection
	}
	for i, x := range n.active {
		if x == w {
			n.active = append(n.active[:i], n.active[i+1:]...)
			break
		}
	}
	p := w.pkt
	p.Injected = -1
	p.Hops = 0
	p.Aborts++
	n.packetsAborted++
	if n.probe != nil {
		n.probe.Abort(n.cycle, p.Src, p.Dst, p.Length, p.Aborts)
	}
	if n.recovery.MaxRetries >= 0 && p.Aborts > n.recovery.MaxRetries {
		n.drop(p, metrics.DropRetriesExhausted)
		return
	}
	if !n.reachable(p.Src, p.Dst) {
		n.drop(p, metrics.DropUnreachable)
		return
	}
	delay := n.recovery.Backoff(p.Aborts)
	n.retries[p.Src] = append(n.retries[p.Src], retryEntry{p: p, at: n.cycle + delay})
	n.packetsRetried++
	if n.probe != nil {
		n.probe.Retry(n.cycle, p.Src, p.Dst, p.Aborts, delay)
	}
}

// drop abandons a packet: it leaves the in-flight population for good.
func (n *Network) drop(p *Packet, reason metrics.DropReason) {
	n.packetsDropped++
	if n.probe != nil {
		n.probe.Drop(n.cycle, p.Src, p.Dst, p.Length, reason)
	}
}

// cutOff is the cheap injection-time unreachability check: the source has
// no live outgoing channel, or the destination no live incoming one. It
// catches failed-node destinations outright; subtler routing-restricted
// unreachability is caught by the full BFS when the packet is aborted.
func (n *Network) cutOff(src, dst topology.NodeID) bool {
	srcCut, dstCut := true, true
	for d := 0; d < 2*n.dims; d++ {
		dir := topology.Direction(d)
		if nb, ok := n.topo.Neighbor(src, dir); ok && nb != src {
			if !n.faulted[int(src)*2*n.dims+d] {
				srcCut = false
			}
		}
		if nb, ok := n.topo.Neighbor(dst, dir); ok && nb != dst {
			if back, ok2 := n.topo.Neighbor(nb, dir.Opposite()); ok2 && back == dst &&
				!n.faulted[int(nb)*2*n.dims+int(dir.Opposite())] {
				dstCut = false
			}
		}
		if !srcCut && !dstCut {
			return false
		}
	}
	return true
}

// reachable reports whether a packet injected at src can reach dst under
// the routing algorithm, avoiding currently faulted channels. It searches
// the (node, arrival-direction, wraparound) state space the algorithm's
// Candidates function is defined over, with stamped visited marks so
// repeated queries do not allocate.
func (n *Network) reachable(src, dst topology.NodeID) bool {
	if src == dst {
		return true
	}
	states := n.topo.Nodes() * n.ports * 2
	if len(n.reachSeen) < states {
		n.reachSeen = make([]int32, states)
		n.reachQueue = make([]int32, 0, states)
	}
	n.reachStamp++
	stamp := n.reachStamp
	// inPort 2n encodes "injected here" (arrival direction Invalid).
	start := int32((int(src)*n.ports + 2*n.dims) * 2)
	n.reachSeen[start] = stamp
	q := append(n.reachQueue[:0], start)
	found := false
	for head := 0; head < len(q) && !found; head++ {
		s := q[head]
		node := topology.NodeID(int(s) / 2 / n.ports)
		inPort := int(s) / 2 % n.ports
		inWrap := s&1 == 1
		in := topology.Invalid
		if inPort < 2*n.dims {
			in = topology.Direction(inPort)
		}
		var cands []topology.Direction
		if n.masked != nil {
			// Under fault-aware routing the packet follows the masked
			// relation, which can also reach around faults by misrouting;
			// budget is ignored, an over-approximation that at worst
			// retries a packet that will be aborted again.
			cands, _ = n.masked.FaultCandidates(node, dst, in, inWrap, 0)
		} else {
			cands = n.alg.Candidates(node, dst, in, inWrap)
		}
		for _, d := range cands {
			if n.faulted[int(node)*2*n.dims+int(d)] {
				continue
			}
			nb, ok := n.topo.Neighbor(node, d)
			if !ok {
				continue
			}
			if nb == dst {
				found = true
				break
			}
			next := int32((int(nb)*n.ports + int(d)) * 2)
			if n.topo.Wraparound(node, d) {
				next++
			}
			if n.reachSeen[next] != stamp {
				n.reachSeen[next] = stamp
				q = append(q, next)
			}
		}
	}
	n.reachQueue = q[:0]
	return found
}

// tryAdvance moves the worm forward one hop if it can: the header moves
// into the next free buffer (or a flit is consumed at the destination) and
// every trailing flit follows, with the tail releasing its buffer and, once
// fully injected, the channel behind it.
func (n *Network) tryAdvance(w *worm) bool {
	last := len(w.path) - 1
	inNet := w.inNetwork()
	if inNet == 0 {
		return false
	}
	if !w.arrived {
		if w.outDir == noDirection {
			return false
		}
		r := n.bufRouter(w.headBuf())
		next, ok := n.topo.Neighbor(r, w.outDir)
		if !ok {
			panic(fmt.Sprintf("network: allocated output %v at node %d has no channel", w.outDir, r))
		}
		nb := n.bufID(next, int(w.outDir))
		if n.occupied[nb] {
			return false
		}
		n.occupied[nb] = true
		if w.candsMis {
			// The hop came from a misroute set: a nonminimal detour,
			// charged against the packet's misroute budget.
			w.misroutes++
			n.misrouteHops++
			w.candsMis = false
		}
		w.path = append(w.path, nb)
		w.pkt.Hops++
		w.headerArrival = n.cycle
		w.outDir = noDirection
		w.candsValid = false
	} else {
		// The front flit is consumed by the destination processor.
		w.delivered++
		n.flitsConsumed++
	}

	// Shift the tail: either a fresh flit enters the injection buffer or
	// the tail flit vacates its buffer and releases the channel it
	// finished crossing.
	tailIdx := last - (inNet - 1)
	if w.sent < w.pkt.Length {
		// The next flit follows into the injection buffer (tailIdx is
		// necessarily 0 here).
		w.sent++
	} else {
		n.occupied[w.path[tailIdx]] = false
		if tailIdx+1 < len(w.path) {
			from := n.bufRouter(w.path[tailIdx])
			dir := n.bufPort(w.path[tailIdx+1])
			key := int(from)*2*n.dims + dir
			n.outOwner[key] = nil
			// The tail has crossed: all of the packet's flits have now
			// traversed this channel. Tallied at release so the counts
			// reflect completed traversals only.
			n.channelFlits[key] += int64(w.pkt.Length)
			if n.probe != nil {
				n.probe.FlitMove(n.cycle, from, topology.Direction(dir), w.pkt.Length)
			}
		}
	}
	w.advanced = true
	return true
}
