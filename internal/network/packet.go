package network

import (
	"turnmodel/internal/engine"
	"turnmodel/internal/topology"
)

// Packet is one wormhole packet; the bookkeeping lives in the shared
// engine core (both simulators alias the same type, so packets and the
// structures built from them interoperate).
type Packet = engine.Packet

// noDirection marks a worm whose header has no allocated output port.
const noDirection topology.Direction = -2

// worm is the in-network state of a packet: the chain of single-flit input
// buffers its flits occupy. path records every buffer the worm has entered,
// starting with the source injection buffer; the in-network flits always
// occupy the contiguous suffix path[len(path)-inNetwork:].
type worm struct {
	pkt *Packet
	// path[i] is the i-th buffer the header entered (buffer ids). It is
	// backed by pathBuf until the route outgrows it.
	path []int32
	// sent counts flits that have left the source processor, delivered
	// counts flits consumed at the destination.
	sent, delivered int
	// outDir is the output port allocated for the header at its current
	// router, or noDirection while the header waits.
	outDir topology.Direction
	// arrived is set once the header has reached the destination
	// router's input buffer; from then on the worm drains one flit per
	// cycle into the local processor.
	arrived bool
	// headerArrival is the cycle the header entered its current buffer,
	// used by the local first-come-first-served input selection policy.
	headerArrival int64
	// advanced marks that the worm already moved this cycle.
	advanced bool
	// headRouter, inDir and inWrap cache the header's position state —
	// the router holding its buffer, the direction it was travelling when
	// it entered, and whether that hop crossed a wraparound — so the step
	// loop never decodes buffer ids or re-derives arrival wraps.
	headRouter topology.NodeID
	inDir      topology.Direction
	inWrap     bool
	// cands caches the routing algorithm's candidate outputs for the
	// header's current buffer (valid while candsValid); it is invalidated
	// on every hop so a blocked header re-requests without recomputing.
	// It is backed by candBuf when the algorithm supports appending.
	// candsMis marks cands as a misroute fallback set (fault-aware
	// routing): the next hop is a nonminimal detour and counts against
	// the packet's misroute budget, tracked in misroutes per attempt.
	cands      []topology.Direction
	candsValid bool
	candsMis   bool
	misroutes  int

	candBuf [8]topology.Direction
	pathBuf [16]int32
}

func (w *worm) inNetwork() int { return w.sent - w.delivered }

// headBuf is the buffer of the most advanced in-network flit.
func (w *worm) headBuf() int32 { return w.path[len(w.path)-1] }
