package network

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Packet is one wormhole packet. The paper's simulations use one packet
// per message, of 10 or 200 flits with equal probability; the first flit
// is the header and the last the tail.
type Packet struct {
	// ID is assigned by the network in enqueue order.
	ID int64
	// Src and Dst are the endpoints.
	Src, Dst topology.NodeID
	// Length is the packet size in flits (header and tail included).
	Length int
	// Created is the cycle the message was generated at the source
	// processor (it may then wait in the source queue).
	Created int64
	// Injected is the cycle the header flit entered the network; -1
	// until then.
	Injected int64
	// Arrived is the cycle the tail flit was consumed at the
	// destination; -1 until then.
	Arrived int64
	// Hops counts the channels the header traversed.
	Hops int
	// Aborts counts how many times deadlock recovery has pulled the
	// packet back out of the network. Injected and Hops reset on abort;
	// Created does not, so Latency spans every attempt.
	Aborts int
}

// Latency is the end-to-end message latency in cycles, including source
// queueing, or -1 if the packet has not arrived.
func (p *Packet) Latency() int64 {
	if p.Arrived < 0 {
		return -1
	}
	return p.Arrived - p.Created
}

func (p *Packet) String() string {
	return fmt.Sprintf("packet %d %d->%d len=%d", p.ID, p.Src, p.Dst, p.Length)
}

// noDirection marks a worm whose header has no allocated output port.
const noDirection topology.Direction = -2

// worm is the in-network state of a packet: the chain of single-flit input
// buffers its flits occupy. path records every buffer the worm has entered,
// starting with the source injection buffer; the in-network flits always
// occupy the contiguous suffix path[len(path)-inNetwork:].
type worm struct {
	pkt *Packet
	// path[i] is the i-th buffer the header entered (buffer ids).
	path []int32
	// sent counts flits that have left the source processor, delivered
	// counts flits consumed at the destination.
	sent, delivered int
	// outDir is the output port allocated for the header at its current
	// router, or noDirection while the header waits.
	outDir topology.Direction
	// arrived is set once the header has reached the destination
	// router's input buffer; from then on the worm drains one flit per
	// cycle into the local processor.
	arrived bool
	// headerArrival is the cycle the header entered its current buffer,
	// used by the local first-come-first-served input selection policy.
	headerArrival int64
	// advanced marks that the worm already moved this cycle.
	advanced bool
	// cands caches the routing algorithm's candidate outputs for the
	// header's current buffer (valid while candsValid); it is invalidated
	// on every hop so a blocked header re-requests without recomputing.
	// candsMis marks cands as a misroute fallback set (fault-aware
	// routing): the next hop is a nonminimal detour and counts against
	// the packet's misroute budget, tracked in misroutes per attempt.
	cands      []topology.Direction
	candsValid bool
	candsMis   bool
	misroutes  int
}

func (w *worm) inNetwork() int { return w.sent - w.delivered }

// headBuf is the buffer of the most advanced in-network flit.
func (w *worm) headBuf() int32 { return w.path[len(w.path)-1] }
