package network

import (
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Sharded stepping: Config.Shards > 1 partitions the node space into
// contiguous domains (engine.Core owns the bounds and the worker pool) and
// runs the parallelizable phases of Step on one worker per domain. The
// acceptance bar is bit-identical results at every shard count; the full
// argument lives in docs/performance.md, the short form next to each phase
// below. The differential harness (internal/engine/diff_test.go) and the
// cross-shard tests in this package check it end to end.
//
// A worm belongs to the domain of its head router at the start of the
// phase. Its flits may trail through other domains' nodes — that is fine,
// because buffer and channel writes during movement are exclusive to the
// worm (not to the domain), and the phases that consult another router's
// state are either read-only at that point or serial.

// netDomain is one domain's per-cycle scratch: the worms it owns this
// cycle, its request and mover lists, the worms it injected this cycle
// (merged into the active list in domain order), its fault-masking wrapper
// (the wrapper's counters are not concurrent-safe, so each domain gets its
// own over the shared read-only Health), its counter deltas, and its
// request sorter. Everything is preallocated or reused, keeping the
// no-probe sharded step allocation-free. Padded against false sharing of
// the counters.
type netDomain struct {
	owned    []*worm
	requests []*worm
	movers   []*worm
	injected []*worm
	masked   *routing.FaultAware
	sorter   reqSorter
	flits    int64
	mis      int64
	_        [64]byte
}

// initShardDomains finishes sharded-step construction inside New. The core
// has already clamped the shard count; sharding additionally requires the
// inlined LowestDimension output arbitration — any other policy draws from
// a shared RNG stream or closure state whose order sharding would change,
// so those configurations release the pool and fall back to serial
// stepping.
func (n *Network) initShardDomains(cfg Config) {
	if n.core.ShardCount() > 1 && !n.fastOutput {
		n.core.Close()
	}
	n.shards = n.core.ShardCount()
	if n.shards <= 1 {
		return
	}
	n.dsc = make([]netDomain, n.shards)
	for d := range n.dsc {
		dm := &n.dsc[d]
		dm.sorter = reqSorter{n, &dm.requests}
		if n.core.Health != nil {
			dm.masked = routing.NewFaultAware(n.alg, n.core.Health, n.core.FaultPol)
		}
	}
	n.core.InjPlaceShard = n.placeWormShard
	n.classifyFn = n.classifyDomain
	n.planFn = n.planDomain
	n.applyFn = n.applyDomain
}

// Close releases the sharded step's worker pool and returns the network to
// serial stepping; idempotent and a no-op for serial networks. The pool
// also has a finalizer, so an un-Closed network leaks nothing once
// collected — Close just makes the release deterministic (the sweep runner
// closes each point's network as it finishes).
func (n *Network) Close() {
	n.core.Close()
	n.shards = 1
}

// placeWormShard is the core's sharded injection hook: identical to
// placeWorm except that the worm is appended to the domain's injected list
// instead of the shared active list; stepSharded merges the lists in
// domain order, which reproduces the serial active-list order because
// injection visits nodes in ascending order and domains are ascending node
// ranges. The buffer write is to the injecting node's own injection
// buffer, which belongs to this domain.
func (n *Network) placeWormShard(d int, node topology.NodeID, p *Packet) {
	inj := n.bufID(node, n.dims2)
	w := &worm{
		pkt:           p,
		sent:          1,
		outDir:        noDirection,
		headerArrival: n.core.Cycle,
		headRouter:    node,
		inDir:         topology.Invalid,
	}
	w.path = append(w.pathBuf[:0], inj)
	n.occupied[inj] = true
	n.dsc[d].injected = append(n.dsc[d].injected, w)
}

// classifyDomain is the parallel body of phase 2 for one domain: collect
// the worms whose head router lies in the domain's node range, reset their
// advanced flags, mark arrivals, then route and allocate output channels
// for the waiting headers.
//
// Serial equivalence: the request order is total (router first), so
// per-domain sorted lists concatenated in domain order equal the globally
// sorted list; and a request only reads and writes arbitration state at
// its own head router (outOwner, faulted), which no other domain touches
// in this phase — so every router's arbitration sees exactly the
// competitors, in exactly the order, of the serial pass. Blocked events go
// to the domain emitter and merge in domain order, again the serial order.
func (n *Network) classifyDomain(d int) {
	c := &n.core
	dm := &n.dsc[d]
	lo, hi := c.ShardRange(d)
	dm.owned = dm.owned[:0]
	dm.requests = dm.requests[:0]
	for _, w := range n.active {
		r := int32(w.headRouter)
		if r < lo || r >= hi {
			continue
		}
		dm.owned = append(dm.owned, w)
		w.advanced = false
		if w.arrived || w.outDir != noDirection {
			continue
		}
		if n.routingDelay > 0 && c.Cycle-w.headerArrival < n.routingDelay {
			continue
		}
		if w.headRouter == w.pkt.Dst {
			w.arrived = true
			continue
		}
		dm.requests = append(dm.requests, w)
	}
	if len(dm.requests) == 0 {
		return
	}
	n.sortRequestList(dm.requests, &dm.sorter)
	em := c.ShardEmitter(d)
	for _, w := range dm.requests {
		r := w.headRouter
		if !w.candsValid {
			if dm.masked != nil {
				w.cands, w.candsMis = dm.masked.FaultCandidates(r, w.pkt.Dst, w.inDir, w.inWrap, w.misroutes)
			} else if n.appender != nil {
				w.cands = n.appender.AppendCandidates(w.candBuf[:0], r, w.pkt.Dst, w.inDir, w.inWrap)
			} else {
				w.cands = n.alg.Candidates(r, w.pkt.Dst, w.inDir, w.inWrap)
			}
			w.candsValid = true
		}
		// Sharding requires fastOutput, so the inlined LowestDimension
		// (first free candidate) is the only arbitration here.
		base := int(r) * n.dims2
		granted := false
		for _, dd := range w.cands {
			if k := base + int(dd); n.outOwner[k] == nil && !n.faulted[k] {
				n.outOwner[k] = w
				w.outDir = dd
				granted = true
				break
			}
		}
		if !granted {
			em.Blocked(c.Cycle, r)
		}
	}
}

// planDomain is the read-only half of one movement round: it collects the
// domain's worms that can advance under the state frozen at the round's
// barrier. No mover invalidates another (see canAdvance), so the plan is
// exactly the set of moves the round applies.
func (n *Network) planDomain(d int) {
	dm := &n.dsc[d]
	dm.movers = dm.movers[:0]
	for _, w := range dm.owned {
		if !w.advanced && n.canAdvance(w) {
			dm.movers = append(dm.movers, w)
		}
	}
}

// applyDomain applies one movement round's planned moves for the domain.
// All writes are exclusive to each moving worm (see applyAdvance), so
// domains apply concurrently; counter deltas and FlitMove events land in
// the domain's sinks and merge after the movement loop.
func (n *Network) applyDomain(d int) {
	c := &n.core
	dm := &n.dsc[d]
	em := c.ShardEmitter(d)
	for _, w := range dm.movers {
		n.applyAdvance(w, em, &dm.flits, &dm.mis)
	}
}

// stepSharded is Step's domain-decomposed body. Phases 0 (faults,
// recovery) and 4 (retirement, watchdog) are inherently order-dependent
// and stay serial; injection, routing/allocation and movement fan out over
// the domains with barriers between phases.
//
// Movement runs as rounds of plan (read-only, collect movers) and apply
// (disjoint writes) instead of the serial sweep-to-fixpoint loop. Both
// compute the same least fixpoint: a move never blocks another possible
// move this cycle (target buffers are exclusively granted) and frees only
// enable, so the set of worms that advance — and therefore every buffer,
// channel and counter after the phase — is identical to the serial
// schedule's. Only the intra-cycle interleaving of FlitMove probe events
// differs from serial (it is still deterministic for a fixed shard count);
// per-cycle aggregation, which is all the metrics collector does, sees
// identical streams.
func (n *Network) stepSharded() error {
	c := &n.core
	progress := false

	// Phase 0: fault transitions and deadlock recovery (serial).
	c.FaultPhase()
	if c.Recovery.Enabled {
		n.recoveryPhase()
	}

	// Phase 1: injection over the core's worklist, fanned out across the
	// domains by the core; the worms each domain created are appended in
	// domain order, reproducing the serial ascending-node active order.
	if c.InjectPhase() {
		progress = true
	}
	for d := range n.dsc {
		dm := &n.dsc[d]
		n.active = append(n.active, dm.injected...)
		for i := range dm.injected {
			dm.injected[i] = nil
		}
		dm.injected = dm.injected[:0]
	}

	// Phase 2: routing and output allocation, one task per domain.
	c.RunShards(n.classifyFn)
	c.AbsorbShardEmitters()

	// Phase 3: movement rounds to the fixpoint.
	for {
		c.RunShards(n.planFn)
		total := 0
		for d := range n.dsc {
			total += len(n.dsc[d].movers)
		}
		if total == 0 {
			break
		}
		progress = true
		c.RunShards(n.applyFn)
	}
	c.AbsorbShardEmitters()
	for d := range n.dsc {
		dm := &n.dsc[d]
		c.FlitsConsumed += dm.flits
		c.MisrouteHops += dm.mis
		dm.flits, dm.mis = 0, 0
	}

	// Phase 4: retire completed worms, then close the cycle (serial).
	n.retirePhase()
	return n.finishStep(progress)
}
