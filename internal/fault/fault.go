// Package fault defines deterministic, seed-driven channel-fault plans for
// the wormhole simulators and the recovery policy applied when faults (or
// any other cause) stop a network's progress.
//
// The paper's closing argument for adaptivity is fault tolerance: an
// adaptive turn-model router can deliver around a broken channel where
// dimension-order routing stalls. A Plan turns that claim into a workload:
// it describes which unidirectional channels are broken when, either
// statically (a fixed channel list, or whole-node failures taking out every
// incident channel) or stochastically (Bernoulli per-cycle link failure,
// optionally transient with a fixed repair delay). A State is one plan
// instantiated on one topology; the simulators advance it once per cycle
// and consult its Faulted bitmap during output allocation.
//
// Everything is deterministic: the random component draws from its own
// seeded stream, failure gaps are sampled geometrically (exactly the
// Bernoulli per-cycle process), and pending events are processed in
// (cycle, channel) order, so identical (plan, topology) pairs replay
// identical fault histories regardless of caller scheduling.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"turnmodel/internal/topology"
)

// Plan describes a fault workload. The zero value injects no faults.
// A single plan can combine all components: static broken channels, failed
// nodes, and a random per-cycle link-failure process.
type Plan struct {
	// Static lists unidirectional channels broken from cycle 0, forever.
	Static []topology.Channel
	// Nodes lists failed nodes: every channel incident to a failed node
	// (entering and leaving it) is broken from cycle 0, forever. The
	// node's processor itself keeps generating and consuming messages —
	// a failed node models a broken router, and traffic addressed to it
	// becomes undeliverable.
	Nodes []topology.NodeID
	// Rate is the per-cycle, per-channel failure probability of the
	// random component. Each healthy channel fails in a cycle with this
	// probability, independently (a Bernoulli process, sampled via
	// geometric gaps). 0 disables random faults.
	Rate float64
	// Repair is the repair delay in cycles for random faults: a channel
	// failed by the random process comes back up Repair cycles later and
	// can fail again. 0 makes random faults permanent. Static and node
	// faults never repair.
	Repair int64
	// Seed seeds the random component's stream. Plans with equal seeds
	// replay identical fault histories on the same topology.
	Seed int64
}

// Empty reports whether the plan injects no faults at all.
func (p Plan) Empty() bool {
	return len(p.Static) == 0 && len(p.Nodes) == 0 && p.Rate <= 0
}

// Validate checks that every static channel and failed node exists in the
// topology. Both simulators call it through NewState, so the two engines
// share one validation path.
func Validate(topo topology.Topology, p Plan) error {
	for _, ch := range p.Static {
		if !ch.Dir.Valid(topo.Dims()) {
			return fmt.Errorf("fault: channel %v has no direction %v in %s", ch, ch.Dir, topo.Name())
		}
		if _, ok := topo.Neighbor(ch.From, ch.Dir); !ok {
			return fmt.Errorf("fault: fault on nonexistent channel %v", ch)
		}
	}
	for _, node := range p.Nodes {
		if node < 0 || int(node) >= topo.Nodes() {
			return fmt.Errorf("fault: failed node %d outside [0,%d)", node, topo.Nodes())
		}
	}
	if p.Rate < 0 || p.Rate >= 1 {
		return fmt.Errorf("fault: rate %v outside [0,1)", p.Rate)
	}
	if p.Repair < 0 {
		return fmt.Errorf("fault: negative repair delay %d", p.Repair)
	}
	return nil
}

// event is one pending fault transition of the random process.
type event struct {
	cycle int64
	ch    int32 // node*2n+dir channel key
	fail  bool
}

// State is a Plan instantiated on a topology: the live fault bitmap plus
// the pending random fail/repair events. It is advanced by the owning
// simulator once per cycle and is not safe for concurrent use.
type State struct {
	dims2 int

	// Faulted marks broken channels, indexed node*2n+dir — the exact
	// layout the simulators use for output allocation, so they can consult
	// it with one load and no translation.
	Faulted []bool

	// OnChange, when non-nil, observes every fault transition as it is
	// applied (failed=true on break, false on repair). The simulators use
	// it to emit probe events.
	OnChange func(from topology.NodeID, dir topology.Direction, failed bool)

	perm   []bool // static/node faults: never repair, never re-fail
	events []event
	rng    *rand.Rand
	rate   float64
	repair int64

	active     int
	failEvents int64
	epoch      int64
}

// NewState instantiates the plan on the topology. It returns an error for
// plans referencing channels or nodes the topology does not have.
func NewState(p Plan, topo topology.Topology) (*State, error) {
	if err := Validate(topo, p); err != nil {
		return nil, err
	}
	dims2 := 2 * topo.Dims()
	s := &State{
		dims2:   dims2,
		Faulted: make([]bool, topo.Nodes()*dims2),
		perm:    make([]bool, topo.Nodes()*dims2),
		rate:    p.Rate,
		repair:  p.Repair,
	}
	mark := func(node topology.NodeID, d topology.Direction) {
		key := int(node)*dims2 + int(d)
		if !s.Faulted[key] {
			s.Faulted[key] = true
			s.active++
			s.failEvents++
		}
		s.perm[key] = true
	}
	for _, ch := range p.Static {
		mark(ch.From, ch.Dir)
	}
	for _, node := range p.Nodes {
		for d := 0; d < dims2; d++ {
			dir := topology.Direction(d)
			// Outgoing channel, if the topology has it.
			if _, ok := topo.Neighbor(node, dir); ok {
				mark(node, dir)
			}
			// Incoming channel: the neighbor reached in direction dir
			// sends back toward node on the opposite direction.
			if nb, ok := topo.Neighbor(node, dir); ok {
				if back, ok2 := topo.Neighbor(nb, dir.Opposite()); ok2 && back == node {
					mark(nb, dir.Opposite())
				}
			}
		}
	}
	if s.active > 0 {
		s.epoch++
	}
	if p.Rate > 0 {
		s.rng = rand.New(rand.NewSource(p.Seed))
		// Seed the process: every live channel draws its first failure
		// time, in channel order, so the stream consumption is a pure
		// function of the plan and topology.
		for node := 0; node < topo.Nodes(); node++ {
			for d := 0; d < dims2; d++ {
				key := node*dims2 + d
				if s.perm[key] {
					continue
				}
				if _, ok := topo.Neighbor(topology.NodeID(node), topology.Direction(d)); !ok {
					continue
				}
				s.push(event{cycle: s.gap(), ch: int32(key), fail: true})
			}
		}
	}
	return s, nil
}

// MustNew is NewState for callers that treat a bad plan as a programming
// error (the simulators' constructors, which panic on bad config).
func MustNew(p Plan, topo topology.Topology) *State {
	s, err := NewState(p, topo)
	if err != nil {
		panic(err.Error())
	}
	return s
}

// gap samples the geometric inter-failure gap of the Bernoulli process:
// P(gap = k) = rate * (1-rate)^(k-1), k >= 1.
func (s *State) gap() int64 {
	u := s.rng.Float64()
	for u == 0 {
		u = s.rng.Float64()
	}
	g := int64(math.Log(u)/math.Log1p(-s.rate)) + 1
	if g < 1 {
		g = 1
	}
	return g
}

// push inserts an event into the min-heap ordered by (cycle, ch).
func (s *State) push(e event) {
	s.events = append(s.events, e)
	i := len(s.events) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !less(s.events[i], s.events[parent]) {
			break
		}
		s.events[i], s.events[parent] = s.events[parent], s.events[i]
		i = parent
	}
}

func (s *State) pop() event {
	top := s.events[0]
	last := len(s.events) - 1
	s.events[0] = s.events[last]
	s.events = s.events[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(s.events) && less(s.events[l], s.events[min]) {
			min = l
		}
		if r < len(s.events) && less(s.events[r], s.events[min]) {
			min = r
		}
		if min == i {
			break
		}
		s.events[i], s.events[min] = s.events[min], s.events[i]
		i = min
	}
	return top
}

func less(a, b event) bool {
	if a.cycle != b.cycle {
		return a.cycle < b.cycle
	}
	return a.ch < b.ch
}

// Advance applies every fault transition due at or before the given cycle.
// The simulators call it once at the top of every Step; with no random
// component it returns immediately.
func (s *State) Advance(cycle int64) {
	for len(s.events) > 0 && s.events[0].cycle <= cycle {
		e := s.pop()
		key := int(e.ch)
		if s.perm[key] {
			continue // permanently broken meanwhile; the process stops here
		}
		if e.fail {
			if !s.Faulted[key] {
				s.Faulted[key] = true
				s.active++
				s.failEvents++
				s.epoch++
				s.notify(key, true)
			}
			if s.repair > 0 {
				s.push(event{cycle: e.cycle + s.repair, ch: e.ch, fail: false})
			}
			// Repair == 0: permanent random fault, no more events.
		} else {
			if s.Faulted[key] {
				s.Faulted[key] = false
				s.active--
				s.epoch++
				s.notify(key, false)
			}
			s.push(event{cycle: e.cycle + s.gap(), ch: e.ch, fail: true})
		}
	}
}

func (s *State) notify(key int, failed bool) {
	if s.OnChange != nil {
		s.OnChange(topology.NodeID(key/s.dims2), topology.Direction(key%s.dims2), failed)
	}
}

// NextEventCycle reports the cycle of the earliest pending fault
// transition (failure or repair), or math.MaxInt64 when none is scheduled
// — static-only plans schedule nothing after construction. The event at
// that cycle may turn out to be a no-op (the channel became permanently
// broken meanwhile), so callers may only use the value as a lower bound:
// no transition is applied strictly before it. The event-driven step
// loops leap the clock up to (never past) this cycle, which keeps every
// fault transition — and the probe events and epoch changes it triggers —
// on its exact cycle.
func (s *State) NextEventCycle() int64 {
	if len(s.events) == 0 {
		return math.MaxInt64
	}
	return s.events[0].cycle
}

// ActiveFaults reports how many channels are currently broken.
func (s *State) ActiveFaults() int { return s.active }

// FailEvents reports the cumulative number of channel-break events,
// including the static faults applied at construction.
func (s *State) FailEvents() int64 { return s.failEvents }

// Epoch increments on every change to the fault set. Callers caching
// anything derived from the fault set (reachability, candidate lists)
// invalidate when the epoch moves.
func (s *State) Epoch() int64 { return s.epoch }

// Recovery configures deadlock recovery: instead of the watchdog's
// fail-stop DeadlockError, a stalled network aborts the oldest blocked
// worm, drains its flits, and retries it from the source with capped
// exponential backoff. The zero value (Enabled false) keeps the fail-stop
// watchdog.
type Recovery struct {
	// Enabled turns recovery on.
	Enabled bool
	// StallCycles is how long the network may go without any flit
	// movement (while packets are in flight) before a worm is aborted.
	// 0 selects the default (1000).
	StallCycles int64
	// BackoffBase is the first retry delay in cycles; each further abort
	// of the same packet doubles it up to BackoffCap. 0 selects 16 and
	// 1024 respectively.
	BackoffBase int64
	BackoffCap  int64
	// MaxRetries caps how many times one packet may be aborted and
	// retried before it is dropped. 0 selects the default (8); negative
	// retries forever.
	MaxRetries int
}

// WithDefaults fills in the default thresholds.
func (r Recovery) WithDefaults() Recovery {
	if r.StallCycles <= 0 {
		r.StallCycles = 1000
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 16
	}
	if r.BackoffCap <= 0 {
		r.BackoffCap = 1024
	}
	if r.MaxRetries == 0 {
		r.MaxRetries = 8
	}
	return r
}

// Backoff is the retry delay after the packet's attempt-th abort
// (attempt >= 1): BackoffBase doubled per additional attempt, capped at
// BackoffCap. Attempts 0 and 1 both return the base delay, and the
// doubling saturates at the cap before it could overflow, so arbitrarily
// large attempt counts are safe even with a cap near MaxInt64.
func (r Recovery) Backoff(attempt int) int64 {
	d := r.BackoffBase
	if d <= 0 {
		return 0 // doubling can never grow a non-positive base
	}
	if d >= r.BackoffCap {
		return r.BackoffCap
	}
	for i := 1; i < attempt; i++ {
		if d > r.BackoffCap/2 {
			// Doubling would pass (or overflow past) the cap.
			return r.BackoffCap
		}
		d *= 2
		if d >= r.BackoffCap {
			return r.BackoffCap
		}
	}
	return d
}
