package fault

import (
	"testing"

	"turnmodel/internal/topology"
)

func TestHealthLocalVisibilityOwnChannelsOnly(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	pol := RoutingPolicy{Visibility: VisibilityLocal}
	s := MustNew(Plan{Static: []topology.Channel{{From: 5, Dir: topology.East}}}, mesh)
	h := NewHealth(mesh, s, pol)
	if h.Active() != 1 {
		t.Fatalf("Active = %d, want 1", h.Active())
	}
	if !h.Faulted(5, topology.East) {
		t.Error("own broken channel not visible")
	}
	if h.Faulted(5, topology.West) {
		t.Error("healthy channel reported broken")
	}
	if !h.Known(5, 5, topology.East) {
		t.Error("router 5 must know its own channel")
	}
	// Neighbor 4 one hop away learns nothing under local visibility.
	if h.Known(4, 5, topology.East) {
		t.Error("local visibility leaked a remote channel")
	}
	if h.Radius() != 0 {
		t.Errorf("Radius = %d under local visibility, want 0", h.Radius())
	}
}

func TestHealthKHopRadiusBoundsKnowledge(t *testing.T) {
	mesh := topology.NewMesh2D(6, 6)
	pol := RoutingPolicy{Visibility: VisibilityKHop, Radius: 2}
	// Channel out of node 14 = (2,2), interior.
	s := MustNew(Plan{Static: []topology.Channel{{From: 14, Dir: topology.East}}}, mesh)
	h := NewHealth(mesh, s, pol)
	for r := 0; r < mesh.Nodes(); r++ {
		id := topology.NodeID(r)
		want := mesh.Distance(id, 14) <= 2
		if got := h.Known(id, 14, topology.East); got != want {
			t.Errorf("router %d (distance %d): Known = %v, want %v", r, mesh.Distance(id, 14), got, want)
		}
	}
}

func TestHealthKHopSnapshotLagsUntilRefresh(t *testing.T) {
	mesh := topology.NewMesh2D(6, 6)
	pol := RoutingPolicy{Visibility: VisibilityKHop, Radius: 2}
	// A rate-driven process: no faults at construction.
	s := MustNew(Plan{Rate: 1e-4, Seed: 11}, mesh)
	h := NewHealth(mesh, s, pol)
	var from topology.NodeID
	var dir topology.Direction
	found := false
	s.OnChange = func(f topology.NodeID, d topology.Direction, failed bool) {
		if failed && !found {
			from, dir, found = f, d, true
		}
	}
	for c := int64(0); c < 100000 && !found; c++ {
		s.Advance(c)
	}
	if !found {
		t.Fatal("no fault in 100000 cycles at rate 1e-4")
	}
	// The source of the channel sees it live, snapshot or not.
	if !h.Known(from, from, dir) {
		t.Fatal("source router blind to its own broken channel")
	}
	// A neighbor within the radius only learns it after dissemination.
	nb, ok := mesh.Neighbor(from, dir)
	if !ok {
		t.Fatal("broken channel has no neighbor")
	}
	remote := nb
	if remote == from {
		t.Fatal("degenerate channel")
	}
	if h.Known(remote, from, dir) {
		t.Fatal("remote router learned the fault before Refresh")
	}
	h.Refresh()
	if !h.Known(remote, from, dir) {
		t.Fatal("remote router within radius still blind after Refresh")
	}
}

func TestHealthRefreshQuiescentZeroAlloc(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	pol := RoutingPolicy{Visibility: VisibilityKHop}
	s := MustNew(Plan{Static: []topology.Channel{{From: 9, Dir: topology.East}}}, mesh)
	h := NewHealth(mesh, s, pol)
	h.Refresh()
	if n := testing.AllocsPerRun(200, h.Refresh); n != 0 {
		t.Errorf("quiescent Refresh allocates %.1f/op, want 0", n)
	}
}

func TestNewHealthPanics(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	s := MustNew(Plan{}, mesh)
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanics("nil state", func() { NewHealth(mesh, nil, RoutingPolicy{Visibility: VisibilityLocal}) })
	assertPanics("disabled policy", func() { NewHealth(mesh, s, RoutingPolicy{}) })
}

func TestRoutingPolicyDefaultsAndString(t *testing.T) {
	p := RoutingPolicy{Visibility: VisibilityKHop, MisrouteLimit: -3}.WithDefaults()
	if p.Radius != DefaultRadius {
		t.Errorf("Radius = %d, want DefaultRadius %d", p.Radius, DefaultRadius)
	}
	if p.MisrouteLimit != 0 {
		t.Errorf("negative MisrouteLimit kept: %d", p.MisrouteLimit)
	}
	cases := []struct {
		pol  RoutingPolicy
		want string
	}{
		{RoutingPolicy{}, "off"},
		{RoutingPolicy{Visibility: VisibilityLocal}, "local"},
		{RoutingPolicy{Visibility: VisibilityKHop, Radius: 2}, "khop(r=2)"},
		{RoutingPolicy{Visibility: VisibilityKHop, Radius: 3, MisrouteLimit: 4}, "khop(r=3)+misroute4"},
	}
	for _, tc := range cases {
		if got := tc.pol.String(); got != tc.want {
			t.Errorf("String(%+v) = %q, want %q", tc.pol, got, tc.want)
		}
	}
	if (RoutingPolicy{}).Enabled() {
		t.Error("zero policy reports enabled")
	}
}

func TestParseVisibility(t *testing.T) {
	for s, want := range map[string]Visibility{"off": VisibilityOff, "local": VisibilityLocal, "khop": VisibilityKHop} {
		got, err := ParseVisibility(s)
		if err != nil || got != want {
			t.Errorf("ParseVisibility(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), s)
		}
	}
	if _, err := ParseVisibility("khop2"); err == nil {
		t.Error("ParseVisibility accepted khop2 (radius syntax belongs to the CLI)")
	}
}

// TestBackoffEdgeCases hardens Recovery.Backoff at the boundaries: the
// zeroth and first attempts, a base equal to the cap, and attempt counts
// large enough to overflow a naive repeated doubling.
func TestBackoffEdgeCases(t *testing.T) {
	r := Recovery{Enabled: true, BackoffBase: 16, BackoffCap: 1024}
	if got := r.Backoff(0); got != 16 {
		t.Errorf("Backoff(0) = %d, want base 16", got)
	}
	if got := r.Backoff(1); got != 16 {
		t.Errorf("Backoff(1) = %d, want base 16", got)
	}
	if got := r.Backoff(2); got != 32 {
		t.Errorf("Backoff(2) = %d, want 32", got)
	}
	eq := Recovery{Enabled: true, BackoffBase: 64, BackoffCap: 64}
	for _, attempt := range []int{1, 2, 5} {
		if got := eq.Backoff(attempt); got != 64 {
			t.Errorf("base==cap: Backoff(%d) = %d, want 64", attempt, got)
		}
	}
	for _, attempt := range []int{63, 64, 1 << 20, 1<<31 - 1} {
		if got := r.Backoff(attempt); got != 1024 {
			t.Errorf("Backoff(%d) = %d, want cap 1024 (overflow?)", attempt, got)
		}
	}
}
