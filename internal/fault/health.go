package fault

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Visibility selects how much of the fault set each router can see when
// fault-aware routing is enabled (see RoutingPolicy and docs/fault-routing.md).
type Visibility int

const (
	// VisibilityOff disables fault-aware routing: routers route as if the
	// network were healthy and rely on recovery to clean up after faults.
	VisibilityOff Visibility = iota
	// VisibilityLocal gives each router knowledge of its own incident
	// channels only — the minimum any real router has, since a dead output
	// link is directly observable.
	VisibilityLocal
	// VisibilityKHop additionally disseminates fault state to every router
	// within Radius hops of a broken channel's source, refreshed once per
	// cycle from an epoch-stamped snapshot, so routers can steer away
	// before their header reaches the dead link.
	VisibilityKHop
)

// String implements fmt.Stringer with the names the CLI accepts.
func (v Visibility) String() string {
	switch v {
	case VisibilityOff:
		return "off"
	case VisibilityLocal:
		return "local"
	case VisibilityKHop:
		return "khop"
	}
	return fmt.Sprintf("Visibility(%d)", int(v))
}

// ParseVisibility parses the CLI names "off", "local" and "khop".
func ParseVisibility(s string) (Visibility, error) {
	switch s {
	case "off":
		return VisibilityOff, nil
	case "local":
		return VisibilityLocal, nil
	case "khop":
		return VisibilityKHop, nil
	}
	return VisibilityOff, fmt.Errorf("fault: unknown visibility %q (want off, local or khop)", s)
}

// DefaultRadius is the k-hop dissemination horizon used when a policy
// enables VisibilityKHop without choosing one.
const DefaultRadius = 2

// RoutingPolicy configures the fault-aware routing wrapper
// (routing.NewFaultAware): how much of the fault set routers see, and how
// many nonminimal detour hops a packet may take when every minimal
// candidate is known dead. The zero value disables fault-aware routing.
type RoutingPolicy struct {
	// Visibility selects the health model (off disables the wrapper).
	Visibility Visibility
	// Radius is the k-hop dissemination horizon; only meaningful with
	// VisibilityKHop. 0 selects DefaultRadius.
	Radius int
	// MisrouteLimit caps the nonminimal detour hops per packet attempt.
	// Misrouting only ever uses directions the wrapped algorithm's own
	// turn relation permits (see routing.Misrouter), and only algorithms
	// implementing that interface misroute at all. 0 disables misrouting.
	MisrouteLimit int
}

// Enabled reports whether the policy turns fault-aware routing on.
func (p RoutingPolicy) Enabled() bool { return p.Visibility != VisibilityOff }

// WithDefaults fills in the default k-hop radius.
func (p RoutingPolicy) WithDefaults() RoutingPolicy {
	if p.Visibility == VisibilityKHop && p.Radius <= 0 {
		p.Radius = DefaultRadius
	}
	if p.MisrouteLimit < 0 {
		p.MisrouteLimit = 0
	}
	return p
}

// String renders the policy in the CLI's -ftroute/-misroute vocabulary.
func (p RoutingPolicy) String() string {
	if !p.Enabled() {
		return "off"
	}
	s := p.Visibility.String()
	if p.Visibility == VisibilityKHop {
		s = fmt.Sprintf("%s(r=%d)", s, p.Radius)
	}
	if p.MisrouteLimit > 0 {
		s = fmt.Sprintf("%s+misroute%d", s, p.MisrouteLimit)
	}
	return s
}

// Health is the routers' view of a fault State under a RoutingPolicy. A
// router always sees its own incident channels live (they are directly
// observable); under VisibilityKHop it additionally sees an epoch-stamped
// snapshot of channels whose source lies within the dissemination radius.
//
// The snapshot is re-derived only when State.Epoch moves, so with faults
// off (or simply quiescent) a per-cycle Refresh costs one comparison and
// zero allocations — the property the simulators' hot loops require.
type Health struct {
	topo   topology.Topology
	state  *State
	vis    Visibility
	radius int
	dims2  int

	epoch int64
	// known is the epoch-stamped snapshot of State.Faulted used for k-hop
	// knowledge; nil until the first fault ever appears, and treated as
	// all-healthy while nil.
	known []bool
}

// NewHealth builds the health view of a fault state. The policy must be
// enabled and the state non-nil; the simulators only construct a Health
// when both hold.
func NewHealth(topo topology.Topology, state *State, pol RoutingPolicy) *Health {
	if state == nil {
		panic("fault: NewHealth requires a fault state")
	}
	pol = pol.WithDefaults()
	if !pol.Enabled() {
		panic("fault: NewHealth requires an enabled routing policy")
	}
	h := &Health{
		topo:   topo,
		state:  state,
		vis:    pol.Visibility,
		radius: pol.Radius,
		dims2:  2 * topo.Dims(),
	}
	h.Refresh()
	return h
}

// Refresh updates the k-hop snapshot if the fault set changed since the
// last call. The simulators call it once per cycle, right after
// State.Advance; local visibility needs no snapshot and returns
// immediately.
func (h *Health) Refresh() {
	if h.vis != VisibilityKHop {
		return
	}
	e := h.state.Epoch()
	if e == h.epoch {
		return
	}
	if h.known == nil {
		h.known = make([]bool, len(h.state.Faulted))
	}
	copy(h.known, h.state.Faulted)
	h.epoch = e
}

// Active reports how many channels are currently broken; the wrapper's
// fast path bypasses all filtering when it returns 0.
func (h *Health) Active() int { return h.state.ActiveFaults() }

// Visibility returns the health model in effect.
func (h *Health) Visibility() Visibility { return h.vis }

// Radius returns the k-hop dissemination horizon (0 under local
// visibility).
func (h *Health) Radius() int {
	if h.vis != VisibilityKHop {
		return 0
	}
	return h.radius
}

// Faulted reports, from live state, whether the channel leaving `from` in
// direction `dir` is broken. Routers may only consult it for their own
// incident channels — remote knowledge goes through Known.
func (h *Health) Faulted(from topology.NodeID, dir topology.Direction) bool {
	return h.state.Faulted[int(from)*h.dims2+int(dir)]
}

// Known reports whether router r knows that the channel leaving `from` in
// direction `dir` is broken: live knowledge for r's own channels, and
// under VisibilityKHop the epoch-stamped snapshot for channels whose
// source lies within the dissemination radius.
func (h *Health) Known(r, from topology.NodeID, dir topology.Direction) bool {
	if r == from {
		return h.Faulted(from, dir)
	}
	if h.vis != VisibilityKHop || h.known == nil {
		return false
	}
	if !h.known[int(from)*h.dims2+int(dir)] {
		return false
	}
	return h.topo.Distance(r, from) <= h.radius
}
