package fault

import (
	"math"
	"math/rand"
	"testing"

	"turnmodel/internal/topology"
)

func TestValidateRejectsBadPlans(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	cases := []struct {
		name string
		plan Plan
	}{
		{"missing channel", Plan{Static: []topology.Channel{
			{From: 0, Dir: topology.West}, // node 0 has no west neighbor
		}}},
		{"invalid direction", Plan{Static: []topology.Channel{
			{From: 0, Dir: topology.Direction(9)},
		}}},
		{"node out of range", Plan{Nodes: []topology.NodeID{16}}},
		{"negative node", Plan{Nodes: []topology.NodeID{-1}}},
		{"rate one", Plan{Rate: 1}},
		{"negative rate", Plan{Rate: -0.5}},
		{"negative repair", Plan{Rate: 0.1, Repair: -1}},
	}
	for _, tc := range cases {
		if err := Validate(mesh, tc.plan); err == nil {
			t.Errorf("%s: Validate accepted %+v", tc.name, tc.plan)
		}
	}
	if err := Validate(mesh, Plan{}); err != nil {
		t.Errorf("empty plan rejected: %v", err)
	}
}

func TestNodeFailureBreaksAllIncidentChannels(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	// Node 5 = (1,1) is interior: 4 outgoing + 4 incoming channels.
	s := MustNew(Plan{Nodes: []topology.NodeID{5}}, mesh)
	dims2 := 2 * mesh.Dims()
	for d := 0; d < dims2; d++ {
		dir := topology.Direction(d)
		if !s.Faulted[5*dims2+d] {
			t.Errorf("outgoing channel 5:%s not faulted", dir)
		}
		nb, ok := mesh.Neighbor(5, dir)
		if !ok {
			t.Fatalf("node 5 missing %s neighbor", dir)
		}
		if !s.Faulted[int(nb)*dims2+int(dir.Opposite())] {
			t.Errorf("incoming channel %d:%s not faulted", nb, dir.Opposite())
		}
	}
	if s.ActiveFaults() != 2*dims2 {
		t.Errorf("ActiveFaults = %d, want %d", s.ActiveFaults(), 2*dims2)
	}
	// Other channels stay up.
	if s.Faulted[0*dims2+int(topology.East)] {
		t.Error("unrelated channel 0:east faulted")
	}
}

func TestRandomProcessIsDeterministic(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	plan := Plan{Rate: 1e-5, Repair: 500, Seed: 42}
	a := MustNew(plan, mesh)
	b := MustNew(plan, mesh)
	for c := int64(0); c < 50000; c++ {
		a.Advance(c)
		b.Advance(c)
		if a.Epoch() != b.Epoch() {
			t.Fatalf("cycle %d: epochs diverge (%d vs %d)", c, a.Epoch(), b.Epoch())
		}
	}
	if a.FailEvents() == 0 {
		t.Fatal("no failures in 50000 cycles at rate 1e-5 over 224 channels")
	}
	if a.FailEvents() != b.FailEvents() || a.ActiveFaults() != b.ActiveFaults() {
		t.Fatalf("streams diverge: %d/%d events, %d/%d active",
			a.FailEvents(), b.FailEvents(), a.ActiveFaults(), b.ActiveFaults())
	}
	for i := range a.Faulted {
		if a.Faulted[i] != b.Faulted[i] {
			t.Fatalf("fault bitmaps diverge at key %d", i)
		}
	}
}

func TestTransientFaultsRepair(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	var fails, repairs int
	s := MustNew(Plan{Rate: 1e-4, Repair: 100, Seed: 7}, mesh)
	s.OnChange = func(from topology.NodeID, dir topology.Direction, failed bool) {
		if failed {
			fails++
		} else {
			repairs++
		}
	}
	for c := int64(0); c < 100000; c++ {
		s.Advance(c)
	}
	if fails == 0 || repairs == 0 {
		t.Fatalf("fails=%d repairs=%d, want both > 0", fails, repairs)
	}
	// Every fault eventually repairs: active faults are only those whose
	// repair is still pending, bounded by fails - repairs.
	if got := fails - repairs; s.ActiveFaults() != got {
		t.Errorf("ActiveFaults = %d, want fails-repairs = %d", s.ActiveFaults(), got)
	}
}

func TestPermanentRandomFaultsNeverRepair(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	s := MustNew(Plan{Rate: 1e-4, Repair: 0, Seed: 7}, mesh)
	s.OnChange = func(_ topology.NodeID, _ topology.Direction, failed bool) {
		if !failed {
			t.Fatal("permanent fault repaired")
		}
	}
	for c := int64(0); c < 100000; c++ {
		s.Advance(c)
	}
	if int64(s.ActiveFaults()) != s.FailEvents() {
		t.Errorf("ActiveFaults = %d, want FailEvents = %d", s.ActiveFaults(), s.FailEvents())
	}
}

func TestRecoveryBackoff(t *testing.T) {
	r := Recovery{Enabled: true}.WithDefaults()
	if r.StallCycles <= 0 || r.BackoffBase <= 0 || r.BackoffCap < r.BackoffBase || r.MaxRetries <= 0 {
		t.Fatalf("bad defaults: %+v", r)
	}
	prev := int64(0)
	for attempt := 1; attempt <= 20; attempt++ {
		d := r.Backoff(attempt)
		if d < prev {
			t.Fatalf("attempt %d: backoff %d shrank from %d", attempt, d, prev)
		}
		if d > r.BackoffCap {
			t.Fatalf("attempt %d: backoff %d above cap %d", attempt, d, r.BackoffCap)
		}
		prev = d
	}
	if r.Backoff(1) != r.BackoffBase {
		t.Errorf("first backoff = %d, want base %d", r.Backoff(1), r.BackoffBase)
	}
	if r.Backoff(20) != r.BackoffCap {
		t.Errorf("late backoff = %d, want cap %d", r.Backoff(20), r.BackoffCap)
	}
}

func TestNextEventCycleEmptyHeap(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	// No random component: nothing is ever scheduled, before or after
	// construction — static and node faults apply at cycle 0 and never
	// transition again.
	for name, plan := range map[string]Plan{
		"empty":  {},
		"static": {Static: []topology.Channel{{From: 5, Dir: topology.East}}},
		"node":   {Nodes: []topology.NodeID{5}},
	} {
		s := MustNew(plan, mesh)
		if got := s.NextEventCycle(); got != math.MaxInt64 {
			t.Errorf("%s plan: NextEventCycle = %d, want MaxInt64 sentinel", name, got)
		}
		s.Advance(10000)
		if got := s.NextEventCycle(); got != math.MaxInt64 {
			t.Errorf("%s plan after Advance: NextEventCycle = %d, want MaxInt64", name, got)
		}
	}
}

func TestNextEventCycleRepairBeforeFailure(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	s := MustNew(Plan{Static: []topology.Channel{{From: 5, Dir: topology.East}}}, mesh)
	// Applying the repair re-arms the channel's failure process, which
	// draws a fresh gap; give the hand-built heap a stream to draw from.
	s.rng = rand.New(rand.NewSource(1))
	s.rate = 1e-6
	// A pending repair earlier than every pending failure must win the
	// heap: the leap bound is the repair's cycle, not the next failure's.
	s.push(event{cycle: 100, ch: 3, fail: true})
	s.push(event{cycle: 40, ch: 7, fail: false})
	s.push(event{cycle: 70, ch: 9, fail: true})
	if got := s.NextEventCycle(); got != 40 {
		t.Fatalf("NextEventCycle = %d, want the pending repair at 40", got)
	}
	// Advancing short of it applies nothing; advancing to it pops exactly
	// the repair and exposes the next failure.
	epoch := s.Epoch()
	s.Advance(39)
	if s.Epoch() != epoch || s.NextEventCycle() != 40 {
		t.Fatalf("Advance(39) disturbed the heap: next=%d epoch %d->%d", s.NextEventCycle(), epoch, s.Epoch())
	}
	s.Advance(40)
	if got := s.NextEventCycle(); got != 70 {
		t.Fatalf("after the repair, NextEventCycle = %d, want the failure at 70", got)
	}
}

func TestNextEventCycleIsALowerBound(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	s := MustNew(Plan{Rate: 1e-4, Repair: 100, Seed: 7}, mesh)
	transitions := 0
	s.OnChange = func(topology.NodeID, topology.Direction, bool) { transitions++ }
	// Leap-style driving: jump straight from event to event. No transition
	// may ever land before the reported bound, and advancing exactly to the
	// bound must apply at least one event (the random process never marks
	// channels permanent, so no event here is a no-op).
	for c := int64(0); c < 100000; {
		next := s.NextEventCycle()
		if next <= c {
			t.Fatalf("cycle %d: NextEventCycle %d not in the future", c, next)
		}
		before := transitions
		s.Advance(next - 1)
		if transitions != before {
			t.Fatalf("transition applied before the reported bound %d", next)
		}
		s.Advance(next)
		if transitions == before {
			t.Fatalf("no transition at the reported bound %d", next)
		}
		c = next
	}
	if s.FailEvents() == 0 {
		t.Fatal("soak produced no failures")
	}
}
