// Package adaptiveness quantifies how adaptive the routing algorithms are,
// implementing the closed forms of Sections 3.4, 4.1 and 5 — the number of
// shortest paths S_algorithm each algorithm permits between a source and a
// destination — together with an exhaustive path counter used to
// cross-check them and to compute the average S_p/S_f ratios the paper
// reports.
package adaptiveness

import (
	"math/bits"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Factorial returns n!. It panics for n < 0 or n > 20 (beyond 20 the
// result overflows int64; the paper's networks stay far below that).
func Factorial(n int) int64 {
	if n < 0 || n > 20 {
		panic("adaptiveness: factorial argument out of range")
	}
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// Binomial returns C(n, k).
func Binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := 1; i <= k; i++ {
		r = r * int64(n-k+i) / int64(i)
	}
	return r
}

// Multinomial returns (sum deltas)! / prod(delta_i!), the number of
// shortest paths a fully adaptive algorithm allows in a mesh whose
// per-dimension offsets are deltas (all non-negative).
func Multinomial(deltas ...int) int64 {
	total := 0
	for _, d := range deltas {
		if d < 0 {
			panic("adaptiveness: negative delta")
		}
		total += d
	}
	r := Factorial(total)
	for _, d := range deltas {
		r /= Factorial(d)
	}
	return r
}

// FullyAdaptive2D is S_f for a 2D mesh: (dx+dy)! / (dx! dy!) where dx and
// dy are the absolute coordinate offsets.
func FullyAdaptive2D(dx, dy int) int64 { return Multinomial(dx, dy) }

// WestFirst2D is S_west-first (Section 3.4): fully adaptive when the
// destination is not to the west, otherwise a single path.
func WestFirst2D(sx, sy, dx, dy int) int64 {
	if dx >= sx {
		return FullyAdaptive2D(abs(dx-sx), abs(dy-sy))
	}
	return 1
}

// NorthLast2D is S_north-last (Section 3.4): fully adaptive when the
// destination is not to the north, otherwise a single path.
func NorthLast2D(sx, sy, dx, dy int) int64 {
	if dy <= sy {
		return FullyAdaptive2D(abs(dx-sx), abs(dy-sy))
	}
	return 1
}

// NegativeFirst2D is S_negative-first (Section 3.4): fully adaptive when
// both offsets have the same sign (both phases degenerate to one), a
// single minimal path otherwise. (The paper's table prints "0 otherwise";
// the unique minimal path — all negative hops, then all positive hops —
// always exists, and the exhaustive counter confirms the value 1.)
func NegativeFirst2D(sx, sy, dx, dy int) int64 {
	if (dx <= sx && dy <= sy) || (dx >= sx && dy >= sy) {
		return FullyAdaptive2D(abs(dx-sx), abs(dy-sy))
	}
	return 1
}

// FullyAdaptiveHypercube is S_f for a hypercube: h! where h is the Hamming
// distance between source and destination (Section 5).
func FullyAdaptiveHypercube(src, dst uint) int64 {
	return Factorial(bits.OnesCount(uint(src ^ dst)))
}

// PCube is S_p-cube = h1! * h0! where h1 = |S AND NOT D| counts the phase
// one dimensions and h0 = |NOT S AND D| the phase two dimensions
// (Section 5).
func PCube(src, dst uint) int64 {
	h1 := bits.OnesCount(uint(src &^ dst))
	h0 := bits.OnesCount(uint(^src & dst))
	return Factorial(h1) * Factorial(h0)
}

// PCubeRatio is S_p-cube / S_f = 1 / C(h, h1) (Section 5).
func PCubeRatio(src, dst uint) float64 {
	h := bits.OnesCount(uint(src ^ dst))
	h1 := bits.OnesCount(uint(src &^ dst))
	return 1 / float64(Binomial(h, h1))
}

// PCubeChoices reports, for a packet currently at address c destined for
// d in an n-cube, the number of minimal p-cube output choices and the
// extra choices nonminimal p-cube (Figure 12) adds: during phase one a
// packet may also route along any dimension where both c and d have a 1.
func PCubeChoices(c, d uint, n int) (minimal, extra int) {
	mask := uint(1)<<uint(n) - 1
	r := c &^ d
	if r != 0 {
		return bits.OnesCount(uint(r)), bits.OnesCount(uint(c & d & mask))
	}
	return bits.OnesCount(uint(^c & d & mask)), 0
}

// CountPaths counts the shortest src->dst paths the algorithm permits, by
// dynamic programming over the minimal-routing DAG. It is exponential-free:
// each node on a shortest path is visited once.
func CountPaths(a routing.Algorithm, src, dst topology.NodeID) int64 {
	topo := a.Topology()
	memo := make(map[topology.NodeID]int64)
	var count func(cur topology.NodeID) int64
	count = func(cur topology.NodeID) int64 {
		if cur == dst {
			return 1
		}
		if v, ok := memo[cur]; ok {
			return v
		}
		var total int64
		for _, d := range a.Candidates(cur, dst, topology.Invalid, false) {
			next, ok := topo.Neighbor(cur, d)
			if !ok {
				continue
			}
			// Only count hops that stay on shortest paths; the
			// algorithms here are minimal, so this always holds.
			if topo.Distance(next, dst) != topo.Distance(cur, dst)-1 {
				continue
			}
			total += count(next)
		}
		memo[cur] = total
		return total
	}
	return count(src)
}

// AverageRatio computes the mean of S_algorithm / S_f across every ordered
// source-destination pair with src != dst. Section 3.4 reports this
// exceeds 1/2 for the three partially adaptive 2D algorithms; Section 4.1
// reports it exceeds 1/2^(n-1) in n dimensions.
func AverageRatio(a routing.Algorithm) float64 {
	topo := a.Topology()
	full := routing.FullyAdaptive(topo)
	sum := 0.0
	pairs := 0
	for src := topology.NodeID(0); int(src) < topo.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < topo.Nodes(); dst++ {
			if src == dst {
				continue
			}
			sp := CountPaths(a, src, dst)
			sf := CountPaths(full, src, dst)
			sum += float64(sp) / float64(sf)
			pairs++
		}
	}
	return sum / float64(pairs)
}

// FractionSingle reports the fraction of ordered pairs for which the
// algorithm permits exactly one shortest path (Section 3.4 notes S_p = 1
// for at least half of the pairs in 2D).
func FractionSingle(a routing.Algorithm) float64 {
	topo := a.Topology()
	single := 0
	pairs := 0
	for src := topology.NodeID(0); int(src) < topo.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < topo.Nodes(); dst++ {
			if src == dst {
				continue
			}
			if CountPaths(a, src, dst) == 1 {
				single++
			}
			pairs++
		}
	}
	return float64(single) / float64(pairs)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
