package adaptiveness

import (
	"math/bits"
	"testing"
	"testing/quick"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	if Factorial(20) != 2432902008176640000 {
		t.Error("Factorial(20) wrong")
	}
	for _, bad := range []int{-1, 21} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorial(%d) did not panic", bad)
				}
			}()
			Factorial(bad)
		}()
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {6, 3, 20},
		{10, 5, 252}, {5, 6, 0}, {5, -1, 0}, {30, 15, 155117520},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestMultinomial(t *testing.T) {
	if got := Multinomial(2, 2); got != 6 {
		t.Errorf("Multinomial(2,2) = %d, want 6", got)
	}
	if got := Multinomial(1, 1, 1); got != 6 {
		t.Errorf("Multinomial(1,1,1) = %d, want 6", got)
	}
	if got := Multinomial(0, 0); got != 1 {
		t.Errorf("Multinomial(0,0) = %d, want 1", got)
	}
	if got, want := Multinomial(3, 4), Binomial(7, 3); got != want {
		t.Errorf("Multinomial(3,4) = %d, want %d", got, want)
	}
}

// TestClosedFormsMatchExhaustiveCounts verifies the Section 3.4 table
// against dynamic-programming path counts on an 8x8 mesh, for every
// ordered source-destination pair.
func TestClosedFormsMatchExhaustiveCounts(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	algs := map[string]struct {
		alg  routing.Algorithm
		form func(sx, sy, dx, dy int) int64
	}{
		"fully-adaptive": {routing.FullyAdaptive(m), func(sx, sy, dx, dy int) int64 {
			return FullyAdaptive2D(absInt(dx-sx), absInt(dy-sy))
		}},
		"west-first":     {routing.WestFirst(m), WestFirst2D},
		"north-last":     {routing.NorthLast(m), NorthLast2D},
		"negative-first": {routing.NegativeFirst(m), NegativeFirst2D},
	}
	for name, tc := range algs {
		for sx := 0; sx < 8; sx++ {
			for sy := 0; sy < 8; sy++ {
				for dx := 0; dx < 8; dx++ {
					for dy := 0; dy < 8; dy++ {
						src := m.ID(topology.Coord{sx, sy})
						dst := m.ID(topology.Coord{dx, dy})
						want := tc.form(sx, sy, dx, dy)
						got := CountPaths(tc.alg, src, dst)
						if got != want {
							t.Fatalf("%s (%d,%d)->(%d,%d): DP=%d formula=%d", name, sx, sy, dx, dy, got, want)
						}
					}
				}
			}
		}
	}
}

func TestXYHasExactlyOnePath(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	xy := routing.XY(m)
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			if got := CountPaths(xy, src, dst); got != 1 {
				t.Fatalf("xy %d->%d: %d paths, want 1", src, dst, got)
			}
		}
	}
}

func TestPCubeMatchesExhaustiveCount(t *testing.T) {
	h := topology.NewHypercube(6)
	pc := routing.PCube(h)
	full := routing.FullyAdaptive(h)
	for s := uint(0); s < 64; s++ {
		for d := uint(0); d < 64; d++ {
			src, dst := h.NodeFromBits(s), h.NodeFromBits(d)
			if got, want := CountPaths(pc, src, dst), PCube(s, d); got != want {
				t.Fatalf("p-cube %06b->%06b: DP=%d formula=%d", s, d, got, want)
			}
			if got, want := CountPaths(full, src, dst), FullyAdaptiveHypercube(s, d); got != want {
				t.Fatalf("full %06b->%06b: DP=%d formula=%d", s, d, got, want)
			}
		}
	}
}

func TestPCubeRatioFormula(t *testing.T) {
	err := quick.Check(func(a, b uint) bool {
		s, d := a%1024, b%1024
		h := bits.OnesCount(uint(s ^ d))
		h1 := bits.OnesCount(uint(s &^ d))
		want := 1 / float64(Binomial(h, h1))
		return PCubeRatio(s, d) == want
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

// TestSection5Table reproduces the worked example of Section 5: a binary
// 10-cube route from 1011010100 to 0010111001 (bit 9 leftmost), with the
// per-hop choice counts including the nonminimal extras in parentheses.
func TestSection5Table(t *testing.T) {
	const n = 10
	src, dst := uint(0b1011010100), uint(0b0010111001)
	if h := bits.OnesCount(uint(src ^ dst)); h != 6 {
		t.Fatalf("h = %d, want 6", h)
	}
	if h1 := bits.OnesCount(uint(src &^ dst)); h1 != 3 {
		t.Fatalf("h1 = %d, want 3", h1)
	}
	if h0 := bits.OnesCount(uint(^src & dst & 1023)); h0 != 3 {
		t.Fatalf("h0 = %d, want 3", h0)
	}
	if got := PCube(src, dst); got != 36 {
		t.Fatalf("S_p-cube = %d, want 36", got)
	}
	steps := []struct {
		addr     uint
		choices  int
		extra    int
		dimTaken int
	}{
		{0b1011010100, 3, 2, 2},
		{0b1011010000, 2, 2, 9},
		{0b0011010000, 1, 2, 6},
		{0b0010010000, 3, 0, 5},
		{0b0010110000, 2, 0, 0},
		{0b0010110001, 1, 0, 3},
	}
	cur := src
	for i, st := range steps {
		if cur != st.addr {
			t.Fatalf("step %d: at %010b, want %010b", i, cur, st.addr)
		}
		minimal, extra := PCubeChoices(cur, dst, n)
		if minimal != st.choices || extra != st.extra {
			t.Errorf("step %d: choices %d(+%d), want %d(+%d)", i, minimal, extra, st.choices, st.extra)
		}
		// The dimension the table takes must be among the minimal choices.
		r := cur &^ dst
		if r == 0 {
			r = ^cur & dst & 1023
		}
		if r&(1<<uint(st.dimTaken)) == 0 {
			t.Errorf("step %d: dimension %d not a legal choice", i, st.dimTaken)
		}
		cur ^= 1 << uint(st.dimTaken)
	}
	if cur != dst {
		t.Fatalf("route ended at %010b, want %010b", cur, dst)
	}
}

// TestAverageRatioExceedsHalf2D verifies the Section 3.4 claim that,
// averaged across all source-destination pairs, S_p/S_f > 1/2 for the
// three partially adaptive algorithms, and that S_p = 1 for at least half
// of the pairs.
func TestAverageRatioExceedsHalf2D(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	for _, a := range []routing.Algorithm{routing.WestFirst(m), routing.NorthLast(m), routing.NegativeFirst(m)} {
		if r := AverageRatio(a); r <= 0.5 {
			t.Errorf("%s: average S_p/S_f = %.4f, want > 1/2", a.Name(), r)
		}
		if f := FractionSingle(a); f < 0.5 {
			t.Errorf("%s: single-path fraction = %.4f, want >= 1/2", a.Name(), f)
		}
	}
}

// TestAverageRatioBound3D verifies the Section 4.1 claim that the average
// ratio exceeds 1/2^(n-1) in n dimensions.
func TestAverageRatioBound3D(t *testing.T) {
	m := topology.NewMesh(4, 4, 4)
	bound := 1.0 / 4.0 // 1/2^(n-1) with n=3
	for _, a := range []routing.Algorithm{routing.NegativeFirst(m), routing.ABONF(m), routing.ABOPL(m)} {
		if r := AverageRatio(a); r <= bound {
			t.Errorf("%s: average S_p/S_f = %.4f, want > %.4f", a.Name(), r, bound)
		}
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// TestSinglePathFractionDropsWithDimension verifies the Section 4.1
// observation: "As the number of dimensions increases, the minimal
// partially adaptive algorithms are more likely to be able to route
// messages adaptively. S_p = 1 less often."
func TestSinglePathFractionDropsWithDimension(t *testing.T) {
	m2 := topology.NewMesh2D(4, 4)
	m3 := topology.NewMesh(4, 4, 4)
	f2 := FractionSingle(routing.NegativeFirst(m2))
	f3 := FractionSingle(routing.NegativeFirst(m3))
	if f3 >= f2 {
		t.Errorf("single-path fraction did not drop with dimension: 2D %.3f, 3D %.3f", f2, f3)
	}
}

// TestHexAdaptiveness exercises the path-counting machinery on the
// Section 7 hexagonal extension: negative-first on the hex mesh retains a
// healthy share of the fully adaptive shortest paths.
func TestHexAdaptiveness(t *testing.T) {
	h := topology.NewHex(5, 5)
	nf, err := routing.New("negative-first", h)
	if err != nil {
		t.Fatal(err)
	}
	full := routing.FullyAdaptive(h)
	// Same-sign offsets are fully adaptive; spot-check one pair.
	src := h.ID(topology.Coord{0, 0, 0})
	dst := h.ID(topology.Coord{2, 2, -4})
	if got, want := CountPaths(nf, src, dst), CountPaths(full, src, dst); got != want {
		t.Errorf("same-sign pair: NF %d paths, fully adaptive %d", got, want)
	}
	if r := AverageRatio(nf); r <= 0.4 {
		t.Errorf("hex negative-first average ratio %.3f suspiciously low", r)
	}
}
