// Fault-aware routing at the virtual-channel level: the same masking and
// bounded-misroute wrapper internal/routing provides for physical-channel
// algorithms, applied to vc.Algorithm. A fault breaks a physical channel,
// so it takes down every virtual channel multiplexed onto it; the wrapper
// therefore filters Outs by their physical (node, direction) channel.
package vc

import (
	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// Misrouter is the virtual-channel analog of routing.Misrouter: safe
// nonminimal detour outputs that add no dependency outside the base
// algorithm's deadlock-freedom argument. Lifted physical-channel
// algorithms inherit it from their inner algorithm; the native
// virtual-channel schemes (double-y, dateline dimension-order) do not
// implement it — their safety numbering is tied to minimal progress, so
// they mask faults by filtering only.
type Misrouter interface {
	MisrouteCandidates(current, dest topology.NodeID, inDir topology.Direction, inVC int) []Out
}

// MisrouteCandidates implements Misrouter for lifted algorithms whose
// inner physical-channel algorithm can misroute safely; detours stay on
// the single lifted virtual channel.
func (l lifted) MisrouteCandidates(current, dest topology.NodeID, inDir topology.Direction, _ int) []Out {
	m, ok := l.a.(routing.Misrouter)
	if !ok {
		return nil
	}
	topo := l.a.Topology()
	inWrap := false
	if inDir != topology.Invalid {
		if from, ok := topo.Neighbor(current, inDir.Opposite()); ok {
			inWrap = topo.Wraparound(from, inDir)
		}
	}
	dirs := m.MisrouteCandidates(current, dest, inDir, inWrap)
	out := make([]Out, len(dirs))
	for i, d := range dirs {
		out[i] = Out{d, 0}
	}
	return out
}

// FaultAware wraps a virtual-channel Algorithm with the fault-masking
// ladder of routing.FaultAware: filter outputs on known-broken physical
// channels when a legal alternative survives, optionally fall back to a
// bounded misroute, and otherwise return the base set untouched so the
// packet stalls into recovery exactly as before. Filtering removes
// dependencies from the virtual-channel dependency graph and misrouting
// uses only relations the base algorithm already permits, so deadlock
// freedom is preserved; FaultRelationVC feeds the wrapped relation back
// into FromRouting for a per-fault-set mechanical check.
type FaultAware struct {
	base   Algorithm
	topo   topology.Topology
	health *fault.Health
	pol    fault.RoutingPolicy
	mis    Misrouter // nil: base cannot misroute safely, or limit is 0

	masked    int64
	misroutes int64
}

// NewFaultAware builds the wrapper; the policy must be enabled.
func NewFaultAware(base Algorithm, health *fault.Health, pol fault.RoutingPolicy) *FaultAware {
	pol = pol.WithDefaults()
	if !pol.Enabled() {
		panic("vc: NewFaultAware requires an enabled policy")
	}
	f := &FaultAware{base: base, topo: base.Topology(), health: health, pol: pol}
	if m, ok := base.(Misrouter); ok && pol.MisrouteLimit > 0 {
		f.mis = m
	}
	return f
}

// Name implements Algorithm; the base name is kept for table stability.
func (f *FaultAware) Name() string { return f.base.Name() }

// Topology implements Algorithm.
func (f *FaultAware) Topology() topology.Topology { return f.topo }

// VCs implements Algorithm.
func (f *FaultAware) VCs(dir topology.Direction) int { return f.base.VCs(dir) }

// Base returns the wrapped algorithm.
func (f *FaultAware) Base() Algorithm { return f.base }

// MaskedDecisions counts routing decisions narrowed because of faults.
func (f *FaultAware) MaskedDecisions() int64 { return f.masked }

// MisrouteDecisions counts decisions that fell back to a misroute set.
func (f *FaultAware) MisrouteDecisions() int64 { return f.misroutes }

// Candidates implements Algorithm with the misroute budget treated as
// always available — the over-approximation CDG construction wants. The
// simulator calls FaultCandidates with the packet's actual count.
func (f *FaultAware) Candidates(current, dest topology.NodeID, inDir topology.Direction, inVC int) []Out {
	outs, _ := f.FaultCandidates(current, dest, inDir, inVC, 0)
	return outs
}

// FaultCandidates mirrors routing.(*FaultAware).FaultCandidates on
// virtual-channel outputs; the second result marks a misroute fallback
// set. See that method for the four-case ladder.
func (f *FaultAware) FaultCandidates(current, dest topology.NodeID, inDir topology.Direction, inVC, misrouted int) ([]Out, bool) {
	base := f.base.Candidates(current, dest, inDir, inVC)
	if len(base) == 0 || f.health.Active() == 0 {
		return base, false
	}
	// In-place filter; Candidates returns a fresh slice per call and no
	// entry is overwritten unless it survives, so the unfiltered set is
	// intact if we fall through to it.
	keep := base[:0]
	khop := f.health.Visibility() == fault.VisibilityKHop
	for _, o := range base {
		if f.health.Faulted(current, o.Dir) {
			continue
		}
		if khop && f.deadWithin(current, dest, current, o, f.health.Radius()) {
			continue
		}
		keep = append(keep, o)
	}
	if len(keep) > 0 {
		if len(keep) < len(base) {
			f.masked++
		}
		return keep, false
	}
	if f.mis != nil && misrouted < f.pol.MisrouteLimit {
		if alt := f.misrouteSet(current, dest, inDir, inVC); len(alt) > 0 {
			f.masked++
			f.misroutes++
			return alt, true
		}
	}
	return base, false
}

// deadWithin reports whether taking output o from node leads into a
// region router origin knows to be dead within the lookahead depth (see
// routing.(*FaultAware).deadWithin).
func (f *FaultAware) deadWithin(origin, dest, node topology.NodeID, o Out, depth int) bool {
	if depth <= 0 {
		return false
	}
	nb, ok := f.topo.Neighbor(node, o.Dir)
	if !ok || nb == dest {
		return false
	}
	cands := f.base.Candidates(nb, dest, o.Dir, o.VC)
	if len(cands) == 0 {
		return false
	}
	for _, no := range cands {
		if f.health.Known(origin, nb, no.Dir) {
			continue // known broken; try the next continuation
		}
		if !f.deadWithin(origin, dest, nb, no, depth-1) {
			return false
		}
	}
	return true
}

// misrouteSet is the base algorithm's safe detour set minus directly
// broken channels.
func (f *FaultAware) misrouteSet(current, dest topology.NodeID, inDir topology.Direction, inVC int) []Out {
	alt := f.mis.MisrouteCandidates(current, dest, inDir, inVC)
	keep := alt[:0]
	for _, o := range alt {
		if f.health.Faulted(current, o.Dir) {
			continue
		}
		keep = append(keep, o)
	}
	return keep
}
