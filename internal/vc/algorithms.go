package vc

import (
	"fmt"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

// DoubleY is the minimal FULLY adaptive algorithm for 2D meshes obtained
// by doubling the virtual channels of the y links, in the spirit of the
// companion paper [18] (maximally fully adaptive routing in 2D meshes).
//
// The y physical channels carry two virtual channels, y1 (vc 0) and y2
// (vc 1); the x channels carry one. A packet that still has to travel
// west uses west channels and y1 channels, all fully adaptively; once no
// westward hops remain it uses east channels and y2 channels. Every
// productive physical direction is therefore available at every hop —
// full adaptiveness — yet the dependency graph is acyclic: the
// west-pending class {W, y1} has no eastward channel to close a plane
// cycle, the east class {E, y2} has no westward one, and transitions only
// go from the first class to the second (a packet never becomes
// west-pending again under minimal routing).
func DoubleY(m *topology.Mesh) Algorithm {
	if m.Dims() != 2 {
		panic("vc: double-y requires a 2D mesh")
	}
	return doubleY{m}
}

type doubleY struct{ m *topology.Mesh }

func (a doubleY) Name() string                { return "double-y" }
func (a doubleY) Topology() topology.Topology { return a.m }

func (a doubleY) VCs(d topology.Direction) int {
	if d.Dim() == 1 {
		return 2
	}
	return 1
}

func (a doubleY) Candidates(current, dest topology.NodeID, _ topology.Direction, _ int) []Out {
	cc := a.m.Coord(current)
	dc := a.m.Coord(dest)
	westPending := dc[0] < cc[0]
	yvc := 1
	if westPending {
		yvc = 0
	}
	var out []Out
	switch {
	case westPending:
		out = append(out, Out{topology.West, 0})
	case dc[0] > cc[0]:
		out = append(out, Out{topology.East, 0})
	}
	switch {
	case dc[1] < cc[1]:
		out = append(out, Out{topology.South, yvc})
	case dc[1] > cc[1]:
		out = append(out, Out{topology.North, yvc})
	}
	return out
}

// AppendCandidates implements CandidateAppender (per-coordinate reads, no
// Coord allocation).
func (a doubleY) AppendCandidates(dst []Out, scratch []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ int) ([]Out, []topology.Direction) {
	cx, cy := a.m.CoordAt(current, 0), a.m.CoordAt(current, 1)
	dx, dy := a.m.CoordAt(dest, 0), a.m.CoordAt(dest, 1)
	westPending := dx < cx
	yvc := 1
	if westPending {
		yvc = 0
	}
	switch {
	case westPending:
		dst = append(dst, Out{topology.West, 0})
	case dx > cx:
		dst = append(dst, Out{topology.East, 0})
	}
	switch {
	case dy < cy:
		dst = append(dst, Out{topology.South, yvc})
	case dy > cy:
		dst = append(dst, Out{topology.North, yvc})
	}
	return dst, scratch
}

// DatelineDOR is minimal dimension-order routing on a k-ary n-cube made
// deadlock free with the Dally–Seitz dateline scheme: every physical
// channel carries two virtual channels, and within each ring a packet uses
// vc0 until its route passes the dateline (the wraparound edge) and vc1
// afterwards. Section 4.2 notes minimal deadlock-free routing on tori with
// k > 4 is impossible without extra channels; this is the classic way to
// buy it with one extra virtual channel.
//
// Ties (k even, destination exactly halfway) route in the positive
// direction.
func DatelineDOR(t *topology.Torus) Algorithm {
	return datelineDOR{t}
}

type datelineDOR struct{ t *topology.Torus }

func (a datelineDOR) Name() string                { return "dateline-dor" }
func (a datelineDOR) Topology() topology.Topology { return a.t }
func (a datelineDOR) VCs(topology.Direction) int  { return 2 }

func (a datelineDOR) Candidates(current, dest topology.NodeID, _ topology.Direction, _ int) []Out {
	cc := a.t.Coord(current)
	dc := a.t.Coord(dest)
	for dim := 0; dim < a.t.Dims(); dim++ {
		cur, want := cc[dim], dc[dim]
		if cur == want {
			continue
		}
		k := a.t.Size(dim)
		up := ((want-cur)%k + k) % k
		down := k - up
		positive := up <= down
		// The dateline of every ring lies on its wraparound edge. A
		// packet travelling in the positive direction crosses it at
		// node k-1; until then, a route that still must wrap sees
		// cur > want. Symmetrically for the negative direction.
		vc := 0
		if positive && cur < want {
			vc = 1
		}
		if !positive && cur > want {
			vc = 1
		}
		return []Out{{topology.Dir(dim, positive), vc}}
	}
	return nil
}

// AppendCandidates implements CandidateAppender.
func (a datelineDOR) AppendCandidates(dst []Out, scratch []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ int) ([]Out, []topology.Direction) {
	for dim := 0; dim < a.t.Dims(); dim++ {
		cur, want := a.t.CoordAt(current, dim), a.t.CoordAt(dest, dim)
		if cur == want {
			continue
		}
		k := a.t.Size(dim)
		up := ((want-cur)%k + k) % k
		down := k - up
		positive := up <= down
		vc := 0
		if positive && cur < want {
			vc = 1
		}
		if !positive && cur > want {
			vc = 1
		}
		return append(dst, Out{topology.Dir(dim, positive), vc}), scratch
	}
	return dst, scratch
}

// Lift adapts a physical-channel routing.Algorithm into a single-virtual-
// channel vc.Algorithm, so the two simulators and verifiers can be
// cross-checked on identical routing relations.
func Lift(a routing.Algorithm) Algorithm {
	ra, _ := a.(routing.CandidateAppender)
	return lifted{a, ra}
}

type lifted struct {
	a routing.Algorithm
	// ra caches the underlying CandidateAppender (nil when unsupported)
	// so AppendCandidates skips the type assertion per hop.
	ra routing.CandidateAppender
}

func (l lifted) Name() string                { return l.a.Name() }
func (l lifted) Topology() topology.Topology { return l.a.Topology() }
func (l lifted) VCs(topology.Direction) int  { return 1 }

func (l lifted) Candidates(current, dest topology.NodeID, inDir topology.Direction, _ int) []Out {
	topo := l.a.Topology()
	inWrap := false
	if inDir != topology.Invalid {
		if from, ok := topo.Neighbor(current, inDir.Opposite()); ok {
			inWrap = topo.Wraparound(from, inDir)
		}
	}
	dirs := l.a.Candidates(current, dest, inDir, inWrap)
	out := make([]Out, len(dirs))
	for i, d := range dirs {
		out[i] = Out{d, 0}
	}
	return out
}

// AppendCandidates implements CandidateAppender, delegating to the
// underlying algorithm's appender when it has one.
func (l lifted) AppendCandidates(dst []Out, scratch []topology.Direction, current, dest topology.NodeID, inDir topology.Direction, _ int) ([]Out, []topology.Direction) {
	topo := l.a.Topology()
	inWrap := false
	if inDir != topology.Invalid {
		if from, ok := topo.Neighbor(current, inDir.Opposite()); ok {
			inWrap = topo.Wraparound(from, inDir)
		}
	}
	var dirs []topology.Direction
	if l.ra != nil {
		scratch = l.ra.AppendCandidates(scratch[:0], current, dest, inDir, inWrap)
		dirs = scratch
	} else {
		dirs = l.a.Candidates(current, dest, inDir, inWrap)
	}
	for _, d := range dirs {
		dst = append(dst, Out{d, 0})
	}
	return dst, scratch
}

// NaiveTorusDOR is minimal dimension-order torus routing WITHOUT the
// dateline split: a single virtual channel per physical channel. It is
// the §4.2 impossibility made concrete — its ring dependency cycles make
// it deadlock prone — and exists as the negative control for the
// dateline scheme.
func NaiveTorusDOR(t *topology.Torus) Algorithm {
	return naiveTorus{t}
}

type naiveTorus struct{ t *topology.Torus }

func (a naiveTorus) Name() string                { return "naive-torus-dor" }
func (a naiveTorus) Topology() topology.Topology { return a.t }
func (a naiveTorus) VCs(topology.Direction) int  { return 1 }

func (a naiveTorus) Candidates(current, dest topology.NodeID, _ topology.Direction, _ int) []Out {
	cc := a.t.Coord(current)
	dc := a.t.Coord(dest)
	for dim := 0; dim < a.t.Dims(); dim++ {
		cur, want := cc[dim], dc[dim]
		if cur == want {
			continue
		}
		k := a.t.Size(dim)
		up := ((want-cur)%k + k) % k
		positive := up <= k-up
		return []Out{{topology.Dir(dim, positive), 0}}
	}
	return nil
}

// AppendCandidates implements CandidateAppender.
func (a naiveTorus) AppendCandidates(dst []Out, scratch []topology.Direction, current, dest topology.NodeID, _ topology.Direction, _ int) ([]Out, []topology.Direction) {
	for dim := 0; dim < a.t.Dims(); dim++ {
		cur, want := a.t.CoordAt(current, dim), a.t.CoordAt(dest, dim)
		if cur == want {
			continue
		}
		k := a.t.Size(dim)
		up := ((want-cur)%k + k) % k
		positive := up <= k-up
		return append(dst, Out{topology.Dir(dim, positive), 0}), scratch
	}
	return dst, scratch
}

// New constructs a named virtual-channel algorithm.
func New(name string, topo topology.Topology) (Algorithm, error) {
	switch name {
	case "double-y":
		m, ok := topo.(*topology.Mesh)
		if !ok || m.Dims() != 2 {
			return nil, fmt.Errorf("vc: double-y requires a 2D mesh, have %s", topo.Name())
		}
		return DoubleY(m), nil
	case "dateline-dor":
		t, ok := topo.(*topology.Torus)
		if !ok {
			return nil, fmt.Errorf("vc: dateline-dor requires a torus, have %s", topo.Name())
		}
		return DatelineDOR(t), nil
	case "naive-torus-dor":
		t, ok := topo.(*topology.Torus)
		if !ok {
			return nil, fmt.Errorf("vc: naive-torus-dor requires a torus, have %s", topo.Name())
		}
		return NaiveTorusDOR(t), nil
	case "ccc-ascending":
		c, ok := topo.(*topology.CCC)
		if !ok {
			return nil, fmt.Errorf("vc: ccc-ascending requires a CCC, have %s", topo.Name())
		}
		return NewCCCAscending(c), nil
	case "ccc-naive":
		c, ok := topo.(*topology.CCC)
		if !ok {
			return nil, fmt.Errorf("vc: ccc-naive requires a CCC, have %s", topo.Name())
		}
		return NewNaiveCCC(c), nil
	}
	if alg, err := routing.New(name, topo); err == nil {
		return Lift(alg), nil
	}
	return nil, fmt.Errorf("vc: unknown algorithm %q", name)
}
