// Package vc applies the turn model to networks with extra virtual
// channels — the direction Section 4.2 and the companion paper [18] point
// to. Splitting a physical channel into virtual channels multiplies the
// vertices of the channel dependency graph, which makes two things
// possible that the base model cannot do:
//
//   - minimal deadlock-free routing on k-ary n-cubes (the Dally–Seitz
//     dateline scheme, two virtual channels per physical channel), and
//   - minimal FULLY adaptive routing on 2D meshes (the double-y scheme:
//     two virtual channels on the y links only).
//
// The package mirrors internal/routing at the virtual-channel level: an
// Algorithm proposes (direction, virtual channel) outputs, and FromRouting
// builds the virtual-channel dependency graph whose acyclicity certifies
// deadlock freedom.
package vc

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Out names one output virtual channel at a router: the physical direction
// and the virtual channel index on it.
type Out struct {
	Dir topology.Direction
	VC  int
}

func (o Out) String() string { return fmt.Sprintf("%v/vc%d", o.Dir, o.VC) }

// Algorithm is a virtual-channel routing algorithm bound to a topology.
type Algorithm interface {
	// Name identifies the algorithm.
	Name() string
	// Topology returns the bound network.
	Topology() topology.Topology
	// VCs reports how many virtual channels each physical channel in
	// the given direction carries (uniform across the network).
	VCs(dir topology.Direction) int
	// Candidates lists the permitted output virtual channels for a
	// packet at current destined for dest that arrived on (inDir, inVC)
	// (topology.Invalid at injection). Ordered by increasing dimension,
	// then virtual channel.
	Candidates(current, dest topology.NodeID, inDir topology.Direction, inVC int) []Out
}

// CandidateAppender is the optional allocation-free form of Candidates:
// AppendCandidates appends the same outputs in the same order Candidates
// returns, reusing dst's storage. dirScratch is caller-owned scratch for
// algorithms that lift a physical-channel routing.Algorithm (its contents
// are meaningless afterwards); the possibly-grown scratch is returned so
// the caller can reuse its capacity. Callers must fall back to Candidates
// when the assertion fails.
type CandidateAppender interface {
	AppendCandidates(dst []Out, dirScratch []topology.Direction, current, dest topology.NodeID, inDir topology.Direction, inVC int) ([]Out, []topology.Direction)
}

// MaxVCs reports the largest per-direction virtual channel count of the
// algorithm.
func MaxVCs(a Algorithm) int {
	max := 1
	for _, d := range topology.Directions(a.Topology().Dims()) {
		if v := a.VCs(d); v > max {
			max = v
		}
	}
	return max
}

// Channel is one virtual channel instance of the network.
type Channel struct {
	topology.Channel
	VC int
}

func (c Channel) String() string {
	return fmt.Sprintf("%d-%v/vc%d->%d", c.From, c.Dir, c.VC, c.To)
}

// CDG is the virtual-channel dependency graph of an Algorithm on its
// topology. As with the physical-channel graph, acyclicity is the
// Dally–Seitz criterion for deadlock freedom.
type CDG struct {
	topo  topology.Topology
	alg   Algorithm
	maxVC int
	chans []Channel
	index []int32
	adj   [][]int32
}

// FromRouting builds the exact dependency graph: for every destination it
// traverses the virtual channels a packet can occupy and records which
// virtual channels it may wait for next.
func FromRouting(a Algorithm) *CDG {
	topo := a.Topology()
	g := &CDG{topo: topo, alg: a, maxVC: MaxVCs(a)}
	dims2 := 2 * topo.Dims()
	g.index = make([]int32, topo.Nodes()*dims2*g.maxVC)
	for i := range g.index {
		g.index[i] = -1
	}
	for _, ch := range topo.Channels() {
		for v := 0; v < a.VCs(ch.Dir); v++ {
			g.index[g.key(ch.From, ch.Dir, v)] = int32(len(g.chans))
			g.chans = append(g.chans, Channel{Channel: ch, VC: v})
		}
	}
	g.adj = make([][]int32, len(g.chans))

	seen := make(map[int64]bool)
	visited := make([]bool, len(g.chans))
	var queue []int32
	for dst := topology.NodeID(0); int(dst) < topo.Nodes(); dst++ {
		for i := range visited {
			visited[i] = false
		}
		queue = queue[:0]
		for src := topology.NodeID(0); int(src) < topo.Nodes(); src++ {
			if src == dst {
				continue
			}
			for _, out := range a.Candidates(src, dst, topology.Invalid, 0) {
				v := g.vertex(src, out)
				if !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			ch := g.chans[v]
			if ch.To == dst {
				continue
			}
			for _, out := range a.Candidates(ch.To, dst, ch.Dir, ch.VC) {
				w := g.vertex(ch.To, out)
				key := int64(v)*int64(len(g.chans)) + int64(w)
				if !seen[key] {
					seen[key] = true
					g.adj[v] = append(g.adj[v], w)
				}
				if !visited[w] {
					visited[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return g
}

func (g *CDG) key(node topology.NodeID, d topology.Direction, v int) int {
	dims2 := 2 * g.topo.Dims()
	return (int(node)*dims2+int(d))*g.maxVC + v
}

func (g *CDG) vertex(node topology.NodeID, out Out) int32 {
	v := g.index[g.key(node, out.Dir, out.VC)]
	if v < 0 {
		panic(fmt.Sprintf("vc: routing proposed missing channel %v at node %d", out, node))
	}
	return v
}

// Vertices reports the number of virtual channels.
func (g *CDG) Vertices() int { return len(g.chans) }

// Edges reports the number of dependencies.
func (g *CDG) Edges() int {
	n := 0
	for _, a := range g.adj {
		n += len(a)
	}
	return n
}

// FindCycle returns one dependency cycle, or nil when the routing is
// deadlock free.
func (g *CDG) FindCycle() []Channel {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make([]byte, len(g.chans))
	parent := make([]int32, len(g.chans))
	type frame struct {
		v    int32
		next int
	}
	for start := range g.chans {
		if color[start] != white {
			continue
		}
		stack := []frame{{int32(start), 0}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next < len(g.adj[f.v]) {
				w := g.adj[f.v][f.next]
				f.next++
				switch color[w] {
				case white:
					color[w] = gray
					parent[w] = f.v
					stack = append(stack, frame{w, 0})
				case gray:
					var cyc []Channel
					for v := f.v; ; v = parent[v] {
						cyc = append(cyc, g.chans[v])
						if v == w {
							break
						}
					}
					for i, j := 0, len(cyc)-1; i < j; i, j = i+1, j-1 {
						cyc[i], cyc[j] = cyc[j], cyc[i]
					}
					return cyc
				}
			} else {
				color[f.v] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// DeadlockFree reports whether the graph is acyclic.
func (g *CDG) DeadlockFree() bool { return g.FindCycle() == nil }
