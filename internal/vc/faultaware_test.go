package vc

import (
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

func vcWrapper(t *testing.T, alg Algorithm, plan fault.Plan, pol fault.RoutingPolicy) *FaultAware {
	t.Helper()
	topo := alg.Topology()
	if err := fault.Validate(topo, plan); err != nil {
		t.Fatalf("bad plan: %v", err)
	}
	state := fault.MustNew(plan, topo)
	return NewFaultAware(alg, fault.NewHealth(topo, state, pol), pol)
}

// TestVCFaultAwareFiltersBrokenPhysicalChannel: a fault takes down every
// virtual channel on the physical link, and the wrapper keeps the live
// alternative.
func TestVCFaultAwareFiltersBrokenPhysicalChannel(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg := DoubleY(mesh)
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityLocal}
	// 5 -> 0: double-y offers west and south; break 5:west.
	fa := vcWrapper(t, alg, fault.Plan{Static: []topology.Channel{{From: 5, Dir: topology.West}}}, pol)
	got, mis := fa.FaultCandidates(5, 0, topology.Invalid, 0, 0)
	if mis {
		t.Fatal("filtered decision flagged as misroute")
	}
	if len(got) == 0 {
		t.Fatal("candidate set emptied")
	}
	for _, o := range got {
		if o.Dir == topology.West {
			t.Fatalf("dead west survived the filter: %v", got)
		}
	}
	if fa.MaskedDecisions() != 1 {
		t.Errorf("MaskedDecisions = %d, want 1", fa.MaskedDecisions())
	}
}

// TestVCFaultAwareNeverEmptiesNativeScheme: the native VC schemes do not
// implement Misrouter, so when every candidate is dead the wrapper falls
// through to the unfiltered base set and the packet stalls into recovery.
func TestVCFaultAwareNeverEmptiesNativeScheme(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg := DoubleY(mesh)
	if _, ok := Algorithm(alg).(Misrouter); ok {
		t.Fatal("double-y unexpectedly implements Misrouter")
	}
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityLocal, MisrouteLimit: 4}
	fa := vcWrapper(t, alg, fault.Plan{Static: []topology.Channel{
		{From: 5, Dir: topology.West},
		{From: 5, Dir: topology.South},
	}}, pol)
	base := alg.Candidates(5, 0, topology.Invalid, 0)
	got, mis := fa.FaultCandidates(5, 0, topology.Invalid, 0, 0)
	if mis {
		t.Fatal("native scheme produced a misroute set")
	}
	if len(got) != len(base) {
		t.Fatalf("got %v, want the unfiltered base %v", got, base)
	}
}

// TestVCLiftedMisrouteInheritsPhysicalDetours: a lifted phased algorithm
// exposes its inner algorithm's safe detours on the single lifted VC.
func TestVCLiftedMisrouteInheritsPhysicalDetours(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	inner, err := routing.New("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	alg, err := New("negative-first", mesh)
	if err != nil {
		t.Fatal(err)
	}
	m, ok := alg.(Misrouter)
	if !ok {
		t.Fatal("lifted negative-first does not implement Misrouter")
	}
	// 5 -> 4: only west productive; the physical detour set is [south].
	want := inner.(routing.Misrouter).MisrouteCandidates(5, 4, topology.Invalid, false)
	got := m.MisrouteCandidates(5, 4, topology.Invalid, 0)
	if len(got) != len(want) {
		t.Fatalf("lifted detours %v, physical %v", got, want)
	}
	for i, o := range got {
		if o.Dir != want[i] || o.VC != 0 {
			t.Fatalf("lifted detours %v, want %v on VC 0", got, want)
		}
	}

	pol := fault.RoutingPolicy{Visibility: fault.VisibilityLocal, MisrouteLimit: 2}
	fa := vcWrapper(t, alg, fault.Plan{Static: []topology.Channel{{From: 5, Dir: topology.West}}}, pol)
	outs, mis := fa.FaultCandidates(5, 4, topology.Invalid, 0, 0)
	if !mis {
		t.Fatalf("expected a misroute set, got %v", outs)
	}
	if len(outs) != 1 || outs[0].Dir != topology.South {
		t.Fatalf("misroute set = %v, want [south]", outs)
	}
	// Budget spent: the stalled base set comes back.
	outs, mis = fa.FaultCandidates(5, 4, topology.Invalid, 0, pol.MisrouteLimit)
	if mis || len(outs) != 1 || outs[0].Dir != topology.West {
		t.Fatalf("exhausted budget returned %v (mis=%v), want the dead [west]", outs, mis)
	}
}

// TestVCFaultAwarePassthroughWhenHealthy pins the fast path at the VC
// level: no active faults, base candidates untouched.
func TestVCFaultAwarePassthroughWhenHealthy(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	alg := DoubleY(mesh)
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
	fa := vcWrapper(t, alg, fault.Plan{Rate: 1e-9, Seed: 1}, pol)
	for src := 0; src < mesh.Nodes(); src++ {
		for dst := 0; dst < mesh.Nodes(); dst++ {
			if src == dst {
				continue
			}
			want := alg.Candidates(topology.NodeID(src), topology.NodeID(dst), topology.Invalid, 0)
			got, mis := fa.FaultCandidates(topology.NodeID(src), topology.NodeID(dst), topology.Invalid, 0, 0)
			if mis || len(got) != len(want) {
				t.Fatalf("%d->%d: got %v (mis=%v), want %v", src, dst, got, mis, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%d->%d: got %v, want %v", src, dst, got, want)
				}
			}
		}
	}
	if fa.MaskedDecisions() != 0 {
		t.Errorf("healthy network counted %d masked decisions", fa.MaskedDecisions())
	}
}
