package vc

import (
	"turnmodel/internal/topology"
)

// CCCAscending is deadlock-free routing for cube-connected cycles, the
// third Section 7 future-work topology. It is the CCC embedding of e-cube
// routing: phase A walks each ring in the positive direction, taking the
// cube edge whenever the current position's corner bit differs from the
// destination corner; once the corner matches, phase B takes the shorter
// way around the ring to the destination position.
//
// Rings are cycles, so naive single-channel ring traversal deadlocks just
// like a torus ring. The scheme therefore splits the ring channels into
// dateline classes, ordered so every dependency strictly increases:
//
//	positive ring channels: A0 < A1 < B+0 < B+1 (vc 0..3)
//	cube channels:          A0 < A1             (vc 0..1)
//	negative ring channels: B-0 < B-1           (vc 0..1)
//
// A packet starts in A0, moves to A1 when phase A crosses a ring's
// wraparound edge (phase A circles a ring at most once), enters a B class
// when the corner is fully corrected, and bumps to the B crossed class at
// that traversal's own wraparound. Classes never decrease, each class is
// acyclic on its own (a chain of ring positions), so the virtual-channel
// dependency graph is acyclic — FromRouting verifies this mechanically.
//
// Routes are nonminimal in general (phase A may circle most of a ring
// where a shortest path would backtrack) but bounded by 2n + n/2 hops.
type CCCAscending struct {
	ccc *topology.CCC
}

// NewCCCAscending builds the router for a CCC topology.
func NewCCCAscending(c *topology.CCC) CCCAscending { return CCCAscending{c} }

// Name implements Algorithm.
func (a CCCAscending) Name() string { return "ccc-ascending" }

// Topology implements Algorithm.
func (a CCCAscending) Topology() topology.Topology { return a.ccc }

// VCs implements Algorithm.
func (a CCCAscending) VCs(d topology.Direction) int {
	switch d {
	case topology.Dir(1, true):
		return 4 // A0, A1, B+0, B+1
	case topology.Dir(1, false):
		return 2 // B-0, B-1
	default:
		return 2 // cube: A0, A1
	}
}

// phase-A class of the incoming virtual channel: 0 before the packet has
// crossed a ring wraparound in phase A, 1 after. Injection starts at 0.
func aClass(inDir topology.Direction, inVC int) int {
	if inDir == topology.Invalid {
		return 0
	}
	// Arriving on a cube channel or a positive ring channel in class A1
	// keeps the crossed state; everything else is still A0. (A packet in
	// a B class never returns to phase A, so this is only consulted
	// while phase A is in progress.)
	if inVC == 1 && (inDir.Dim() == 0 || inDir == topology.Dir(1, true)) {
		return 1
	}
	return 0
}

// Candidates implements Algorithm. The route is deterministic: exactly one
// output per state.
func (a CCCAscending) Candidates(current, dest topology.NodeID, inDir topology.Direction, inVC int) []Out {
	c := a.ccc
	corner, pos := c.Corner(current), c.Position(current)
	dCorner, dPos := c.Corner(dest), c.Position(dest)
	n := c.Order()
	diff := corner ^ dCorner
	if diff != 0 {
		cls := aClass(inDir, inVC)
		if diff&(1<<uint(pos)) != 0 {
			// Correct this position's bit laterally.
			return []Out{{topology.Dir(0, corner&(1<<uint(pos)) == 0), cls}}
		}
		// Advance the ring; the wraparound edge is the dateline and
		// belongs to the crossed class.
		if pos == n-1 {
			cls = 1
		}
		return []Out{{topology.Dir(1, true), cls}}
	}
	if pos == dPos {
		return nil
	}
	// Phase B: shorter way around the ring, ties positive.
	up := (dPos - pos + n) % n
	if up <= n-up {
		// Positive ring classes B+0 (vc 2) and B+1 (vc 3).
		cls := 2
		if inDir == topology.Dir(1, true) && inVC == 3 {
			cls = 3
		}
		if pos == n-1 {
			cls = 3
		}
		return []Out{{topology.Dir(1, true), cls}}
	}
	// Negative ring classes B-0 (vc 0) and B-1 (vc 1).
	cls := 0
	if inDir == topology.Dir(1, false) && inVC == 1 {
		cls = 1
	}
	if pos == 0 {
		cls = 1
	}
	return []Out{{topology.Dir(1, false), cls}}
}

// NaiveCCC is the negative control: the same ascending route on a single
// virtual channel per physical channel. Its ring dependency cycles make it
// deadlock prone.
type NaiveCCC struct {
	ccc *topology.CCC
}

// NewNaiveCCC builds the control router.
func NewNaiveCCC(c *topology.CCC) NaiveCCC { return NaiveCCC{c} }

// Name implements Algorithm.
func (a NaiveCCC) Name() string { return "ccc-naive" }

// Topology implements Algorithm.
func (a NaiveCCC) Topology() topology.Topology { return a.ccc }

// VCs implements Algorithm.
func (a NaiveCCC) VCs(topology.Direction) int { return 1 }

// Candidates implements Algorithm.
func (a NaiveCCC) Candidates(current, dest topology.NodeID, _ topology.Direction, _ int) []Out {
	full := CCCAscending{a.ccc}.Candidates(current, dest, topology.Invalid, 0)
	for i := range full {
		full[i].VC = 0
	}
	return full
}
