package vc

import (
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
)

func TestDoubleYDeadlockFree(t *testing.T) {
	// The double-y scheme: fully adaptive minimal routing on a 2D mesh
	// with two virtual channels on the y links only, and an acyclic
	// virtual-channel dependency graph.
	for _, size := range [][2]int{{4, 4}, {8, 8}, {5, 3}} {
		m := topology.NewMesh2D(size[0], size[1])
		g := FromRouting(DoubleY(m))
		if cyc := g.FindCycle(); cyc != nil {
			t.Errorf("double-y on %s: dependency cycle %v", m.Name(), cyc)
		}
	}
}

func TestDoubleYIsFullyAdaptive(t *testing.T) {
	// Every productive physical direction must be offered at every hop —
	// that is what "fully adaptive" means.
	m := topology.NewMesh2D(6, 6)
	a := DoubleY(m)
	for src := topology.NodeID(0); int(src) < m.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < m.Nodes(); dst++ {
			if src == dst {
				continue
			}
			productive := m.MinimalDirections(src, dst)
			cands := a.Candidates(src, dst, topology.Invalid, 0)
			if len(cands) != len(productive) {
				t.Fatalf("%d->%d: %d candidates for %d productive directions", src, dst, len(cands), len(productive))
			}
			for i, d := range productive {
				if cands[i].Dir != d {
					t.Fatalf("%d->%d: candidate %v, want direction %v", src, dst, cands[i], d)
				}
			}
		}
	}
}

func TestDoubleYVCDiscipline(t *testing.T) {
	m := topology.NewMesh2D(8, 8)
	a := DoubleY(m)
	// West-pending packets use y1 (vc 0).
	src := m.ID(topology.Coord{5, 5})
	cands := a.Candidates(src, m.ID(topology.Coord{2, 7}), topology.Invalid, 0)
	for _, c := range cands {
		if c.Dir.Dim() == 1 && c.VC != 0 {
			t.Errorf("west-pending y candidate on vc %d", c.VC)
		}
		if c.Dir == topology.East {
			t.Error("west-pending packet offered east")
		}
	}
	// Non-west-pending packets use y2 (vc 1).
	cands = a.Candidates(src, m.ID(topology.Coord{7, 2}), topology.Invalid, 0)
	for _, c := range cands {
		if c.Dir.Dim() == 1 && c.VC != 1 {
			t.Errorf("eastbound y candidate on vc %d", c.VC)
		}
	}
	if a.VCs(topology.North) != 2 || a.VCs(topology.East) != 1 {
		t.Error("VC counts wrong")
	}
}

func TestDoubleYPanicsOn3D(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	DoubleY(topology.NewMesh(3, 3, 3))
}

func TestDatelineDORDeadlockFree(t *testing.T) {
	// Dally-Seitz: minimal DOR on k-ary n-cubes becomes deadlock free
	// with the two-virtual-channel dateline split, including k > 4 where
	// Section 4.2 proves it impossible without extra channels.
	for _, spec := range [][2]int{{4, 2}, {5, 2}, {8, 2}, {3, 3}, {6, 1}} {
		tr := topology.NewKaryNCube(spec[0], spec[1])
		g := FromRouting(DatelineDOR(tr))
		if cyc := g.FindCycle(); cyc != nil {
			t.Errorf("dateline-dor on %s: dependency cycle %v", tr.Name(), cyc)
		}
	}
}

func TestDatelineDORIsMinimal(t *testing.T) {
	tr := topology.NewKaryNCube(8, 2)
	a := DatelineDOR(tr)
	for src := topology.NodeID(0); int(src) < tr.Nodes(); src++ {
		for dst := topology.NodeID(0); int(dst) < tr.Nodes(); dst++ {
			if src == dst {
				continue
			}
			// Walk the deterministic route; it must use exactly
			// Distance hops.
			cur := src
			hops := 0
			inDir, inVC := topology.Invalid, 0
			for cur != dst {
				cands := a.Candidates(cur, dst, inDir, inVC)
				if len(cands) != 1 {
					t.Fatalf("%d->%d at %d: %d candidates, want 1", src, dst, cur, len(cands))
				}
				nb, ok := tr.Neighbor(cur, cands[0].Dir)
				if !ok {
					t.Fatalf("missing channel %v", cands[0])
				}
				inDir, inVC = cands[0].Dir, cands[0].VC
				cur = nb
				hops++
				if hops > tr.Nodes() {
					t.Fatalf("%d->%d: runaway route", src, dst)
				}
			}
			if want := tr.Distance(src, dst); hops != want {
				t.Fatalf("%d->%d: %d hops, want %d (minimal)", src, dst, hops, want)
			}
		}
	}
}

func TestNaiveTorusDORHasCycle(t *testing.T) {
	// The negative control: without the dateline split the ring
	// dependency cycles survive.
	tr := topology.NewKaryNCube(5, 2)
	g := FromRouting(NaiveTorusDOR(tr))
	if g.DeadlockFree() {
		t.Error("naive torus DOR verified deadlock free; the rings should cycle")
	}
}

func TestLiftMatchesBaseCDGVerdicts(t *testing.T) {
	// Lifting a physical algorithm to one virtual channel must preserve
	// the deadlock verdicts of the base analysis.
	m := topology.NewMesh2D(4, 4)
	for name, wantFree := range map[string]bool{
		"xy":             true,
		"west-first":     true,
		"negative-first": true,
		"fully-adaptive": false,
	} {
		base, err := routing.New(name, m)
		if err != nil {
			t.Fatal(err)
		}
		g := FromRouting(Lift(base))
		if got := g.DeadlockFree(); got != wantFree {
			t.Errorf("%s lifted: deadlock free = %v, want %v", name, got, wantFree)
		}
	}
}

func TestVCCDGStats(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	g := FromRouting(DoubleY(m))
	// 2D 4x4 mesh: 48 x-channels with 1 VC... x channels: 2*(3*4) = 24;
	// y channels: 24 physical with 2 VCs = 48. Total 72 virtual channels.
	if g.Vertices() != 72 {
		t.Errorf("Vertices = %d, want 72", g.Vertices())
	}
	if g.Edges() == 0 {
		t.Error("no edges")
	}
}

func TestVCNew(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	tr := topology.NewKaryNCube(4, 2)
	if _, err := New("double-y", m); err != nil {
		t.Error(err)
	}
	if _, err := New("double-y", tr); err == nil {
		t.Error("double-y on torus accepted")
	}
	if _, err := New("dateline-dor", tr); err != nil {
		t.Error(err)
	}
	if _, err := New("dateline-dor", m); err == nil {
		t.Error("dateline-dor on mesh accepted")
	}
	if _, err := New("naive-torus-dor", tr); err != nil {
		t.Error(err)
	}
	if _, err := New("naive-torus-dor", m); err == nil {
		t.Error("naive-torus-dor on mesh accepted")
	}
	// Physical algorithms are lifted transparently.
	if a, err := New("west-first", m); err != nil || a.Name() != "west-first" {
		t.Errorf("lift via New failed: %v", err)
	}
	if _, err := New("bogus", m); err == nil {
		t.Error("bogus accepted")
	}
}

func TestMaxVCs(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	if MaxVCs(DoubleY(m)) != 2 {
		t.Error("double-y MaxVCs != 2")
	}
	base, _ := routing.New("xy", m)
	if MaxVCs(Lift(base)) != 1 {
		t.Error("lifted MaxVCs != 1")
	}
}

func TestOutString(t *testing.T) {
	o := Out{topology.North, 1}
	if o.String() != "north(+y)/vc1" {
		t.Errorf("String = %q", o)
	}
}

func TestCCCAscendingDeadlockFree(t *testing.T) {
	// The turn model applied to the third Section 7 topology: the
	// ascending CCC route with dateline-classed ring channels has an
	// acyclic virtual-channel dependency graph.
	for _, n := range []int{3, 4, 5} {
		c := topology.NewCCC(n)
		g := FromRouting(NewCCCAscending(c))
		if cyc := g.FindCycle(); cyc != nil {
			t.Errorf("ccc-ascending on %s: dependency cycle %v", c.Name(), cyc)
		}
	}
}

func TestNaiveCCCHasCycle(t *testing.T) {
	c := topology.NewCCC(3)
	g := FromRouting(NewNaiveCCC(c))
	if g.DeadlockFree() {
		t.Error("naive CCC routing verified deadlock free; ring cycles should survive")
	}
}

func TestCCCAscendingRoutesTerminate(t *testing.T) {
	c := topology.NewCCC(5)
	a := NewCCCAscending(c)
	n := c.Order()
	for src := topology.NodeID(0); int(src) < c.Nodes(); src += 3 {
		for dst := topology.NodeID(0); int(dst) < c.Nodes(); dst += 7 {
			if src == dst {
				continue
			}
			cur := src
			inDir, inVC := topology.Invalid, 0
			hops := 0
			for cur != dst {
				outs := a.Candidates(cur, dst, inDir, inVC)
				if len(outs) != 1 {
					t.Fatalf("%d->%d at %d: %d candidates, want 1", src, dst, cur, len(outs))
				}
				nb, ok := c.Neighbor(cur, outs[0].Dir)
				if !ok {
					t.Fatalf("%d->%d: candidate %v has no channel at %d", src, dst, outs[0], cur)
				}
				if outs[0].VC >= a.VCs(outs[0].Dir) {
					t.Fatalf("%d->%d: vc %d out of range for %v", src, dst, outs[0].VC, outs[0].Dir)
				}
				inDir, inVC = outs[0].Dir, outs[0].VC
				cur = nb
				hops++
				if hops > 2*n+n/2+1 {
					t.Fatalf("%d->%d exceeded the 2n+n/2 hop bound", src, dst)
				}
			}
			if hops < c.Distance(src, dst) {
				t.Fatalf("%d->%d: %d hops beats the BFS distance %d", src, dst, hops, c.Distance(src, dst))
			}
		}
	}
}

func TestCCCClassNeverDecreases(t *testing.T) {
	// The deadlock-freedom argument: the (channel set, class) rank is
	// monotone along every route. Walk all routes on CCC(4) and check.
	c := topology.NewCCC(4)
	a := NewCCCAscending(c)
	rank := func(d topology.Direction, vcIdx int) int {
		switch {
		case d.Dim() == 0: // cube: A0, A1
			return vcIdx
		case d == topology.Dir(1, true): // ring+: A0 A1 B+0 B+1
			return vcIdx
		default: // ring-: B-0 B-1 rank above phase A
			return 2 + vcIdx
		}
	}
	for src := topology.NodeID(0); int(src) < c.Nodes(); src += 2 {
		for dst := topology.NodeID(0); int(dst) < c.Nodes(); dst += 3 {
			if src == dst {
				continue
			}
			cur := src
			inDir, inVC := topology.Invalid, 0
			prev := -1
			for cur != dst {
				out := a.Candidates(cur, dst, inDir, inVC)[0]
				r := rank(out.Dir, out.VC)
				if r < prev {
					t.Fatalf("%d->%d: class rank decreased %d -> %d at node %d (%v)", src, dst, prev, r, cur, out)
				}
				prev = r
				nb, _ := c.Neighbor(cur, out.Dir)
				inDir, inVC = out.Dir, out.VC
				cur = nb
			}
		}
	}
}

func TestVCNames(t *testing.T) {
	m := topology.NewMesh2D(4, 4)
	tr := topology.NewKaryNCube(4, 2)
	c := topology.NewCCC(3)
	names := map[string]Algorithm{
		"double-y":        DoubleY(m),
		"dateline-dor":    DatelineDOR(tr),
		"naive-torus-dor": NaiveTorusDOR(tr),
		"ccc-ascending":   NewCCCAscending(c),
		"ccc-naive":       NewNaiveCCC(c),
	}
	for want, a := range names {
		if a.Name() != want {
			t.Errorf("Name() = %q, want %q", a.Name(), want)
		}
	}
	if (Channel{Channel: topology.Channel{From: 1, To: 2, Dir: topology.East}, VC: 1}).String() != "1-east(+x)/vc1->2" {
		t.Error("vc.Channel String wrong")
	}
	// Registry covers the CCC algorithms and rejects mismatches.
	if _, err := New("ccc-ascending", c); err != nil {
		t.Error(err)
	}
	if _, err := New("ccc-ascending", m); err == nil {
		t.Error("ccc-ascending on mesh accepted")
	}
	if _, err := New("ccc-naive", c); err != nil {
		t.Error(err)
	}
	if _, err := New("ccc-naive", m); err == nil {
		t.Error("ccc-naive on mesh accepted")
	}
}
