package simcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStoreMemoryRoundTrip(t *testing.T) {
	s := NewStore(Options{})
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Put("kkkk", []byte("value")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("kkkk")
	if !ok || string(got) != "value" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(Options{MaxMemEntries: 2})
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.Get("key0"); ok {
		t.Error("oldest entry not evicted")
	}
	// key1 is now least recently used; touching it protects it.
	if _, ok := s.Get("key1"); !ok {
		t.Fatal("key1 missing")
	}
	s.Put("key3", []byte{3})
	if _, ok := s.Get("key1"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := s.Get("key2"); ok {
		t.Error("least recently used entry survived")
	}
	if ev := s.Stats().Evictions; ev != 2 {
		t.Errorf("evictions = %d", ev)
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(map[string]any{"x": 1})
	s := NewStore(Options{Dir: dir})
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory — cold memory tier — must
	// hit via disk and promote.
	s2 := NewStore(Options{Dir: dir})
	got, ok := s2.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	if s2.Stats().DiskHits != 1 {
		t.Errorf("stats = %+v", s2.Stats())
	}
	got, ok = s2.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatal("promotion lost the payload")
	}
	if s2.Stats().MemHits != 1 {
		t.Errorf("second get did not hit memory: %+v", s2.Stats())
	}
}

func TestStoreDiskLayoutSharded(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir})
	key, _ := Key("v")
	if err := s.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".bin")
	if _, err := os.Stat(p); err != nil {
		t.Errorf("expected payload at %s: %v", p, err)
	}
}

func TestStoreRejectsTraversalKeys(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir})
	if err := s.Put("../../etc/passwd", []byte("x")); err == nil {
		t.Error("traversal key accepted for disk write")
	}
	// Reads with hostile keys are plain misses, not filesystem probes.
	if _, ok := s.Get("../../etc/passwd"); ok {
		t.Error("traversal key hit")
	}
}

func TestStoreMemoryDisabled(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir, MaxMemEntries: -1})
	key, _ := Key("only-disk")
	if err := s.Put(key, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("memory tier holds %d entries", s.Len())
	}
	if got, ok := s.Get(key); !ok || string(got) != "d" {
		t.Error("disk-only store lost the payload")
	}
}

func TestStoreConcurrent(t *testing.T) {
	s := NewStore(Options{Dir: t.TempDir(), MaxMemEntries: 8})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key, _ := Key(map[string]any{"i": i % 10})
				want := []byte(fmt.Sprintf("payload-%d", i%10))
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("payload mismatch: %q vs %q", got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}
