package simcache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestStoreMemoryRoundTrip(t *testing.T) {
	s := NewStore(Options{})
	if _, ok := s.Get("k"); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Put("kkkk", []byte("value")); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get("kkkk")
	if !ok || string(got) != "value" {
		t.Fatalf("get = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.MemHits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s := NewStore(Options{MaxMemEntries: 2})
	for i := 0; i < 3; i++ {
		if err := s.Put(fmt.Sprintf("key%d", i), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if _, ok := s.Get("key0"); ok {
		t.Error("oldest entry not evicted")
	}
	// key1 is now least recently used; touching it protects it.
	if _, ok := s.Get("key1"); !ok {
		t.Fatal("key1 missing")
	}
	s.Put("key3", []byte{3})
	if _, ok := s.Get("key1"); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := s.Get("key2"); ok {
		t.Error("least recently used entry survived")
	}
	if ev := s.Stats().Evictions; ev != 2 {
		t.Errorf("evictions = %d", ev)
	}
}

func TestStoreDiskTier(t *testing.T) {
	dir := t.TempDir()
	key, _ := Key(map[string]any{"x": 1})
	s := NewStore(Options{Dir: dir})
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory — cold memory tier — must
	// hit via disk and promote.
	s2 := NewStore(Options{Dir: dir})
	got, ok := s2.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatalf("disk get = %q, %v", got, ok)
	}
	if s2.Stats().DiskHits != 1 {
		t.Errorf("stats = %+v", s2.Stats())
	}
	got, ok = s2.Get(key)
	if !ok || string(got) != "payload" {
		t.Fatal("promotion lost the payload")
	}
	if s2.Stats().MemHits != 1 {
		t.Errorf("second get did not hit memory: %+v", s2.Stats())
	}
}

func TestStoreDiskLayoutSharded(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir})
	key, _ := Key("v")
	if err := s.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, key[:2], key+".bin")
	if _, err := os.Stat(p); err != nil {
		t.Errorf("expected payload at %s: %v", p, err)
	}
}

func TestStoreRejectsTraversalKeys(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir})
	if err := s.Put("../../etc/passwd", []byte("x")); err == nil {
		t.Error("traversal key accepted for disk write")
	}
	// Reads with hostile keys are plain misses, not filesystem probes.
	if _, ok := s.Get("../../etc/passwd"); ok {
		t.Error("traversal key hit")
	}
}

func TestStoreMemoryDisabled(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir, MaxMemEntries: -1})
	key, _ := Key("only-disk")
	if err := s.Put(key, []byte("d")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Errorf("memory tier holds %d entries", s.Len())
	}
	if got, ok := s.Get(key); !ok || string(got) != "d" {
		t.Error("disk-only store lost the payload")
	}
}

// diskDirSize walks the cache directory like the chaos soak's bound
// audit: total file bytes and entry count.
func diskDirSize(t *testing.T, dir string) (bytes int64, entries int) {
	t.Helper()
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() || filepath.Ext(path) != ".bin" {
			return err
		}
		bytes += info.Size()
		entries++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return bytes, entries
}

// TestStoreDiskByteBound fills a byte-bounded tier past its capacity and
// checks eviction keeps the on-disk footprint under the bound, oldest
// access first.
func TestStoreDiskByteBound(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("p"), 100)
	entrySize := int64(frameHeader + len(payload))
	s := NewStore(Options{Dir: dir, MaxDiskBytes: 3 * entrySize, MaxMemEntries: -1})
	keys := make([]string, 5)
	for i := range keys {
		keys[i], _ = Key(map[string]any{"i": i})
		if err := s.Put(keys[i], payload); err != nil {
			t.Fatal(err)
		}
	}
	if got, _ := diskDirSize(t, dir); got > 3*entrySize {
		t.Fatalf("disk tier %d bytes exceeds bound %d", got, 3*entrySize)
	}
	st := s.Stats()
	if st.DiskEvictions != 2 {
		t.Errorf("disk evictions = %d, want 2", st.DiskEvictions)
	}
	if st.DiskBytes > 3*entrySize || st.DiskEntries != 3 {
		t.Errorf("stats footprint = %d bytes / %d entries", st.DiskBytes, st.DiskEntries)
	}
	// Oldest two are gone, newest three remain.
	for i, key := range keys {
		_, ok := s.Get(key)
		if want := i >= 2; ok != want {
			t.Errorf("key %d present = %v, want %v", i, ok, want)
		}
	}
}

// TestStoreDiskEntryBoundLRUOrder checks the entry-count bound evicts by
// access recency: reading an old entry protects it.
func TestStoreDiskEntryBoundLRUOrder(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir, MaxDiskEntries: 2, MaxMemEntries: -1})
	k0, _ := Key("e0")
	k1, _ := Key("e1")
	k2, _ := Key("e2")
	for i, k := range []string{k0, k1, k2} {
		if err := s.Put(k, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Touch k0 so k1 is the LRU victim when k2 arrives.
			if _, ok := s.Get(k0); !ok {
				t.Fatal("k0 missing before eviction")
			}
		}
	}
	if _, ok := s.Get(k1); ok {
		t.Error("least recently used disk entry survived")
	}
	if _, ok := s.Get(k0); !ok {
		t.Error("recently read disk entry evicted")
	}
	if _, entries := diskDirSize(t, dir); entries != 2 {
		t.Errorf("disk entries = %d, want 2", entries)
	}
}

// TestStoreDiskBoundSurvivesRestart checks a fresh store over an
// overfull directory (as after a crash or a bound lowered across
// restarts) enforces the bound from the persisted access stamps.
func TestStoreDiskBoundSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	writer := NewStore(Options{Dir: dir, MaxMemEntries: -1})
	keys := make([]string, 4)
	base := time.Now().Add(-time.Hour)
	for i := range keys {
		keys[i], _ = Key(map[string]any{"r": i})
		if err := writer.Put(keys[i], []byte("xxxx")); err != nil {
			t.Fatal(err)
		}
		// Distinct, widely spaced access stamps so restart ordering is
		// unambiguous on any filesystem's mtime resolution.
		stamp := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(filepath.Join(dir, keys[i][:2], keys[i]+".bin"), stamp, stamp); err != nil {
			t.Fatal(err)
		}
	}

	s := NewStore(Options{Dir: dir, MaxDiskEntries: 2, MaxMemEntries: -1})
	s.Maintain()
	for i, key := range keys {
		_, ok := s.Get(key)
		if want := i >= 2; ok != want {
			t.Errorf("after restart: key %d present = %v, want %v", i, ok, want)
		}
	}
}

// TestStoreCorruptEntries detects truncated and garbage on-disk entries:
// never served, deleted, and each counted exactly once in Stats.Failures.
func TestStoreCorruptEntries(t *testing.T) {
	dir := t.TempDir()
	writer := NewStore(Options{Dir: dir})
	kTrunc, _ := Key("trunc")
	kGarbage, _ := Key("garbage")
	kLegacy, _ := Key("legacy")
	for _, k := range []string{kTrunc, kGarbage} {
		if err := writer.Put(k, []byte("a perfectly good payload")); err != nil {
			t.Fatal(err)
		}
	}
	// Truncate one mid-frame, overwrite one with garbage of the right
	// magic but wrong checksum, and write one raw legacy (unframed) file.
	truncPath := filepath.Join(dir, kTrunc[:2], kTrunc+".bin")
	raw, err := os.ReadFile(truncPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(truncPath, raw[:frameHeader-5], 0o644); err != nil {
		t.Fatal(err)
	}
	garbagePath := filepath.Join(dir, kGarbage[:2], kGarbage+".bin")
	bad := append([]byte(nil), frameMagic...)
	bad = append(bad, bytes.Repeat([]byte{0xAA}, frameHeader-4)...)
	bad = append(bad, []byte(`{"not":"the payload"}`)...)
	if err := os.WriteFile(garbagePath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	legacyDir := filepath.Join(dir, kLegacy[:2])
	if err := os.MkdirAll(legacyDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(legacyDir, kLegacy+".bin"), []byte(`{"schema":4}`), 0o644); err != nil {
		t.Fatal(err)
	}

	s := NewStore(Options{Dir: dir})
	for _, k := range []string{kTrunc, kGarbage, kLegacy} {
		if _, ok := s.Get(k); ok {
			t.Errorf("corrupt entry %s served", k)
		}
	}
	st := s.Stats()
	if st.Failures != 3 {
		t.Errorf("failures = %d, want exactly 3 (one per corrupt entry)", st.Failures)
	}
	if st.Misses != 3 {
		t.Errorf("misses = %d, want 3", st.Misses)
	}
	if st.DiskDegraded {
		t.Error("corrupt entries degraded the tier; only I/O errors should")
	}
	for _, k := range []string{kTrunc, kGarbage, kLegacy} {
		if _, err := os.Stat(filepath.Join(dir, k[:2], k+".bin")); !os.IsNotExist(err) {
			t.Errorf("corrupt entry %s not deleted: %v", k, err)
		}
	}
	// The slot refills cleanly.
	if err := s.Put(kTrunc, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore(Options{Dir: dir})
	if got, ok := s2.Get(kTrunc); !ok || string(got) != "fresh" {
		t.Errorf("refilled slot = %q, %v", got, ok)
	}
}

// TestStoreUnwritableDir points the disk tier at a path that cannot be a
// directory (a regular file), so every disk write fails: Puts still serve
// the memory tier, failures are counted exactly, and the tier degrades
// after the threshold.
func TestStoreUnwritableDir(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := NewStore(Options{Dir: file, DegradeAfter: 3})
	keys := make([]string, 4)
	for i := range keys {
		keys[i], _ = Key(map[string]any{"u": i})
		err := s.Put(keys[i], []byte("v"))
		if i < 3 && err == nil {
			t.Errorf("put %d on unwritable dir succeeded", i)
		}
		if i == 3 && err != nil {
			t.Errorf("put after degradation returned %v, want silent memory-only", err)
		}
	}
	st := s.Stats()
	if st.Failures != 3 {
		t.Errorf("failures = %d, want exactly 3 (then degraded, no more disk ops)", st.Failures)
	}
	if !st.DiskDegraded || !s.Degraded() {
		t.Error("tier not degraded after consecutive failures")
	}
	// Memory tier still serves everything.
	for i, k := range keys {
		if got, ok := s.Get(k); !ok || string(got) != "v" {
			t.Errorf("degraded get %d = %q, %v", i, got, ok)
		}
	}
}

// TestStoreDegradeAndRecover drives the tier down with injected write
// failures and back up through the janitor's health probe.
func TestStoreDegradeAndRecover(t *testing.T) {
	var mu sync.Mutex
	failing := true
	hook := func(op, key string) error {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return fmt.Errorf("injected %s fault", op)
		}
		return nil
	}
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir, DegradeAfter: 2, FaultHook: hook})
	key, _ := Key("recover")
	for i := 0; i < 2; i++ {
		if err := s.Put(key, []byte("v")); err == nil {
			t.Fatalf("put %d with injected fault succeeded", i)
		}
	}
	if !s.Degraded() {
		t.Fatal("not degraded after threshold")
	}
	// Probe fails while the fault persists...
	s.Maintain()
	if !s.Degraded() {
		t.Fatal("degraded tier recovered while faults persist")
	}
	// ...and restores the tier once the disk heals.
	mu.Lock()
	failing = false
	mu.Unlock()
	s.Maintain()
	if s.Degraded() {
		t.Fatal("tier did not recover after probe success")
	}
	if err := s.Put(key, []byte("v")); err != nil {
		t.Fatalf("put after recovery: %v", err)
	}
	s2 := NewStore(Options{Dir: dir})
	if _, ok := s2.Get(key); !ok {
		t.Error("post-recovery put did not reach disk")
	}
}

// TestStoreFailureAccountingExact injects a known number of read faults
// and checks Stats.Failures matches exactly.
func TestStoreFailureAccountingExact(t *testing.T) {
	var calls int
	hook := func(op, key string) error {
		if op == "read" {
			calls++
			if calls <= 5 {
				return fmt.Errorf("injected read fault %d", calls)
			}
		}
		return nil
	}
	dir := t.TempDir()
	writer := NewStore(Options{Dir: dir})
	key, _ := Key("exact")
	if err := writer.Put(key, []byte("v")); err != nil {
		t.Fatal(err)
	}
	// DegradeAfter above the fault count so every failure is visible.
	s := NewStore(Options{Dir: dir, FaultHook: hook, DegradeAfter: 10, MaxMemEntries: -1})
	for i := 0; i < 5; i++ {
		if _, ok := s.Get(key); ok {
			t.Fatalf("get %d hit despite injected fault", i)
		}
	}
	if got, ok := s.Get(key); !ok || string(got) != "v" {
		t.Fatalf("get after faults cleared = %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Failures != 5 {
		t.Errorf("failures = %d, want exactly 5", st.Failures)
	}
	if st.Misses != 5 || st.DiskHits != 1 {
		t.Errorf("misses/diskhits = %d/%d, want 5/1", st.Misses, st.DiskHits)
	}
}

func TestStoreJanitorStartStop(t *testing.T) {
	s := NewStore(Options{Dir: t.TempDir()})
	s.StartJanitor(time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	s.Close()
	s.Close() // idempotent
	// Memory-only stores never start a janitor; Close is still safe.
	m := NewStore(Options{})
	m.StartJanitor(time.Millisecond)
	m.Close()
}

// TestStoreConcurrent hammers Put/Get/eviction across goroutines on a
// tightly bounded tier; run under -race this is the store's concurrency
// soak. Payload integrity is absolute: a Get may miss (evicted) but must
// never return another key's bytes.
func TestStoreConcurrent(t *testing.T) {
	s := NewStore(Options{
		Dir:            t.TempDir(),
		MaxMemEntries:  8,
		MaxDiskEntries: 6,
		MaxDiskBytes:   2048,
	})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key, _ := Key(map[string]any{"i": i % 10})
				want := []byte(fmt.Sprintf("payload-%d", i%10))
				if err := s.Put(key, want); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(key); ok && !bytes.Equal(got, want) {
					t.Errorf("payload mismatch: %q vs %q", got, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := s.Stats()
	if st.Failures != 0 {
		t.Errorf("concurrent soak recorded %d failures", st.Failures)
	}
	if st.DiskEntries > 6 || st.DiskBytes > 2048 {
		t.Errorf("bounds violated: %d entries / %d bytes", st.DiskEntries, st.DiskBytes)
	}
}

// TestStoreVerifySweep flips bits in stored entries behind the store's
// back and asserts the Verify sweep (the janitor's integrity pass) deletes
// exactly the damaged ones, counts them in CorruptRemoved, and leaves the
// healthy entries serving.
func TestStoreVerifySweep(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(Options{Dir: dir})
	keys := make([]string, 5)
	for i := range keys {
		keys[i], _ = Key(map[string]any{"verify": i})
		if err := s.Put(keys[i], []byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Bit-flip two entries: one in the payload, one in the stored checksum.
	flip := func(key string, off int) {
		p := filepath.Join(dir, key[:2], key+".bin")
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if off < 0 {
			off = len(raw) + off
		}
		raw[off] ^= 0x01
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	flip(keys[1], -1) // last payload byte
	flip(keys[3], 8)  // inside the checksum

	if removed := s.Verify(); removed != 2 {
		t.Fatalf("Verify removed %d entries, want 2", removed)
	}
	st := s.Stats()
	if st.CorruptRemoved != 2 {
		t.Errorf("CorruptRemoved = %d, want 2", st.CorruptRemoved)
	}
	if st.Failures != 2 {
		t.Errorf("Failures = %d, want 2 (one per corrupt entry)", st.Failures)
	}
	if st.DiskEntries != 3 {
		t.Errorf("DiskEntries = %d, want 3 after sweep", st.DiskEntries)
	}
	for _, k := range []string{keys[1], keys[3]} {
		if _, err := os.Stat(filepath.Join(dir, k[:2], k+".bin")); !os.IsNotExist(err) {
			t.Errorf("corrupt entry %s not deleted: %v", k, err)
		}
	}
	// Healthy entries still serve from disk in a fresh store (no memory
	// tier help), and a second sweep finds nothing.
	s2 := NewStore(Options{Dir: dir})
	for _, i := range []int{0, 2, 4} {
		if got, ok := s2.Get(keys[i]); !ok || string(got) != fmt.Sprintf("payload-%d", i) {
			t.Errorf("healthy entry %d = %q, %v after sweep", i, got, ok)
		}
	}
	if removed := s2.Verify(); removed != 0 {
		t.Errorf("second Verify removed %d, want 0", removed)
	}
}

// TestStoreVerifyFaultsSkipNotDelete injects "verify" faults for some keys
// and asserts the sweep treats them as I/O failures — counted, entry left
// in place — rather than deleting entries it could not actually check.
func TestStoreVerifyFaultsSkipNotDelete(t *testing.T) {
	dir := t.TempDir()
	var mu sync.Mutex
	blocked := map[string]bool{}
	hook := func(op, key string) error {
		mu.Lock()
		defer mu.Unlock()
		if op == "verify" && blocked[key] {
			return fmt.Errorf("injected verify fault")
		}
		return nil
	}
	s := NewStore(Options{Dir: dir, FaultHook: hook})
	kGood, _ := Key("verify-good")
	kBlocked, _ := Key("verify-blocked")
	for _, k := range []string{kGood, kBlocked} {
		if err := s.Put(k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// Corrupt the blocked entry too: the fault must win, leaving it alone.
	p := filepath.Join(dir, kBlocked[:2], kBlocked+".bin")
	if err := os.WriteFile(p, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	blocked[kBlocked] = true
	mu.Unlock()

	if removed := s.Verify(); removed != 0 {
		t.Fatalf("Verify removed %d entries, want 0 (fault blocks the check)", removed)
	}
	st := s.Stats()
	if st.CorruptRemoved != 0 {
		t.Errorf("CorruptRemoved = %d, want 0", st.CorruptRemoved)
	}
	if st.Failures != 1 {
		t.Errorf("Failures = %d, want 1 (the injected fault)", st.Failures)
	}
	if _, err := os.Stat(p); err != nil {
		t.Errorf("faulted entry was deleted: %v", err)
	}
	// Fault cleared: the next sweep (as Maintain would run it) deletes it.
	mu.Lock()
	blocked[kBlocked] = false
	mu.Unlock()
	s.Maintain()
	if st := s.Stats(); st.CorruptRemoved != 1 {
		t.Errorf("CorruptRemoved after Maintain = %d, want 1", st.CorruptRemoved)
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Errorf("corrupt entry survived Maintain: %v", err)
	}
}
