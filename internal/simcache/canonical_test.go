package simcache

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestCanonicalSortsKeys(t *testing.T) {
	got, err := Canonical(map[string]any{"b": 2, "a": 1, "c": "x"})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"a":1,"b":2,"c":"x"}` {
		t.Errorf("canonical = %s", got)
	}
}

func TestCanonicalPrunesZeros(t *testing.T) {
	type inner struct {
		Kept    string  `json:"kept"`
		Zero    int     `json:"zero"`
		ZeroF   float64 `json:"zero_f"`
		Off     bool    `json:"off"`
		Empty   string  `json:"empty"`
		Nothing []int   `json:"nothing"`
	}
	got, err := Canonical(map[string]any{"x": inner{Kept: "v"}, "gone": ""})
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != `{"x":{"kept":"v"}}` {
		t.Errorf("canonical = %s", got)
	}
}

// TestCanonicalZeroEquivalence is the satellite requirement in miniature:
// a params value with optional members at their zero values must hash
// identically to one without the members at all, and any semantic change
// must miss.
func TestCanonicalZeroEquivalence(t *testing.T) {
	full := map[string]any{
		"algorithm": "xy", "rate": 0.05, "seed": 7,
		"fault_rate": 0.0, "recovery": false, "static": []any{},
		"metrics": false, "misroute": 0,
	}
	bare := map[string]any{"algorithm": "xy", "rate": 0.05, "seed": 7}
	kFull, err := Key(full)
	if err != nil {
		t.Fatal(err)
	}
	kBare, err := Key(bare)
	if err != nil {
		t.Fatal(err)
	}
	if kFull != kBare {
		t.Errorf("zero-valued optionals changed the key: %s vs %s", kFull, kBare)
	}
	for field, v := range map[string]any{
		"algorithm": "west-first", "rate": 0.06, "seed": 8,
		"fault_rate": 1e-7, "recovery": true, "misroute": 4,
	} {
		changed := map[string]any{"algorithm": "xy", "rate": 0.05, "seed": 7}
		changed[field] = v
		k, err := Key(changed)
		if err != nil {
			t.Fatal(err)
		}
		if k == kBare {
			t.Errorf("changing %s=%v did not change the key", field, v)
		}
	}
}

func TestCanonicalNumberSpellings(t *testing.T) {
	for _, tc := range [][2]any{
		{map[string]any{"n": 1}, map[string]any{"n": 1.0}},
		{map[string]any{"n": json.Number("1e0")}, map[string]any{"n": 1}},
		{map[string]any{"n": json.Number("0.5")}, map[string]any{"n": 0.5}},
		{map[string]any{"n": int64(20)}, map[string]any{"n": json.Number("20")}},
	} {
		a, err := Key(tc[0])
		if err != nil {
			t.Fatal(err)
		}
		b, err := Key(tc[1])
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Errorf("%v and %v hash differently", tc[0], tc[1])
		}
	}
	a, _ := Key(map[string]any{"n": 1})
	b, _ := Key(map[string]any{"n": 2})
	if a == b {
		t.Error("distinct numbers hash equally")
	}
}

func TestCanonicalArraysKeepPositions(t *testing.T) {
	a, err := Canonical([]any{0, "", false, 1})
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != `[0,"",false,1]` {
		t.Errorf("array canonical = %s", a)
	}
	ka, _ := Key([]any{1, 2})
	kb, _ := Key([]any{2, 1})
	if ka == kb {
		t.Error("array order must matter")
	}
}

func TestCanonicalStructFieldOrderIrrelevant(t *testing.T) {
	// The same logical value declared with different struct layouts (and
	// therefore different encoding/json member order) must hash equally.
	type ab struct {
		A string `json:"a"`
		B int    `json:"b"`
	}
	type ba struct {
		B int    `json:"b"`
		A string `json:"a"`
	}
	ka, err := Key(ab{A: "x", B: 3})
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(ba{A: "x", B: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Error("member order changed the key")
	}
}

func TestKeyShape(t *testing.T) {
	k, err := Key(map[string]any{"a": 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(k) != 64 || strings.ToLower(k) != k {
		t.Errorf("key %q is not lowercase hex sha256", k)
	}
}

func TestCanonicalRejectsUnmarshalable(t *testing.T) {
	if _, err := Canonical(map[string]any{"f": func() {}}); err == nil {
		t.Error("function value canonicalized")
	}
}

// randomTree builds a random JSON tree; buildShuffled re-builds the same
// logical tree with map insertions in a different order and zero-valued
// members randomly added or dropped.
func randomTree(rng *rand.Rand, depth int) any {
	if depth <= 0 {
		switch rng.Intn(4) {
		case 0:
			return rng.Intn(100)
		case 1:
			return rng.Float64()
		case 2:
			return fmt.Sprintf("s%d", rng.Intn(10))
		default:
			return rng.Intn(2) == 0
		}
	}
	switch rng.Intn(3) {
	case 0:
		n := rng.Intn(4)
		out := make([]any, n)
		for i := range out {
			out[i] = randomTree(rng, depth-1)
		}
		return out
	default:
		n := rng.Intn(5)
		out := make(map[string]any, n)
		for i := 0; i < n; i++ {
			out[fmt.Sprintf("k%d", rng.Intn(8))] = randomTree(rng, depth-1)
		}
		return out
	}
}

func addZeros(rng *rand.Rand, v any) any {
	m, ok := v.(map[string]any)
	if !ok {
		return v
	}
	out := make(map[string]any, len(m)+2)
	for k, e := range m {
		out[k] = addZeros(rng, e)
	}
	zeros := []any{0, "", false, nil, []any{}, map[string]any{}, 0.0}
	for i := 0; i < rng.Intn(3); i++ {
		out[fmt.Sprintf("zz%d", rng.Intn(5))] = zeros[rng.Intn(len(zeros))]
	}
	return out
}

func TestCanonicalRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		tree := randomTree(rng, 3)
		a, err := Key(tree)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Key(addZeros(rng, tree))
		if err != nil {
			t.Fatal(err)
		}
		// Collisions are only legal when the added zero member names did
		// not overwrite a non-zero member; addZeros uses a distinct "zz"
		// namespace, so equality must always hold.
		if a != b {
			t.Fatalf("iteration %d: zero padding changed the key\ntree: %#v", i, tree)
		}
	}
}

// FuzzCanonical is the satellite's fuzz target over the normalizer: for
// any JSON document, canonicalization must be deterministic, idempotent
// (canonicalizing the canonical form is a fixed point) and
// order-insensitive (decoding and re-encoding through Go maps, which
// randomizes iteration order, lands on the same bytes).
func FuzzCanonical(f *testing.F) {
	f.Add([]byte(`{"a":1,"b":[1,2,{"c":0}],"d":{"e":""}}`))
	f.Add([]byte(`[0,1,2.5,"x",null,{}]`))
	f.Add([]byte(`{"n":1e3,"m":-0.0,"big":123456789123456789}`))
	f.Add([]byte(`"plain"`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var v any
		dec := json.NewDecoder(strings.NewReader(string(data)))
		dec.UseNumber()
		if err := dec.Decode(&v); err != nil {
			t.Skip()
		}
		c1, err := Canonical(v)
		if err != nil {
			t.Skip() // numbers outside what json.Marshal accepts, etc.
		}
		c2, err := Canonical(v)
		if err != nil || string(c1) != string(c2) {
			t.Fatalf("canonicalization not deterministic: %s vs %s (%v)", c1, c2, err)
		}
		var back any
		dec = json.NewDecoder(strings.NewReader(string(c1)))
		dec.UseNumber()
		if err := dec.Decode(&back); err != nil {
			t.Fatalf("canonical form is not valid JSON: %s: %v", c1, err)
		}
		c3, err := Canonical(back)
		if err != nil {
			t.Fatalf("re-canonicalizing failed: %v", err)
		}
		if string(c3) != string(c1) {
			t.Fatalf("canonicalization not idempotent:\n%s\n%s", c1, c3)
		}
	})
}
