package simcache

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// Options configures a Store.
type Options struct {
	// Dir is the disk tier's root directory; empty keeps the cache
	// memory-only. The directory (and shard subdirectories) are created
	// on demand.
	Dir string
	// MaxMemEntries bounds the memory LRU tier; 0 selects
	// DefaultMaxMemEntries, negative disables the memory tier.
	MaxMemEntries int
	// MaxDiskBytes bounds the disk tier's total size (file bytes as
	// stored, framing included). When a Put pushes the tier over the
	// bound, least-recently-used entries are evicted until it fits.
	// 0 leaves the tier unbounded. A single payload larger than the
	// bound is kept memory-only rather than thrashing the tier.
	MaxDiskBytes int64
	// MaxDiskEntries bounds the disk tier's entry count the same way;
	// 0 leaves it unbounded.
	MaxDiskEntries int
	// DegradeAfter is how many consecutive disk I/O failures flip the
	// store into memory-only degraded mode (see Stats.DiskDegraded).
	// 0 selects DefaultDegradeAfter; negative disables degradation, so
	// every operation keeps retrying the disk.
	DegradeAfter int
	// FaultHook, when non-nil, is consulted before every disk operation
	// with the operation name ("read", "write", "evict", "probe",
	// "verify") and the key involved; a non-nil return is treated as
	// that operation failing at the filesystem. It exists for
	// fault-injection tests (internal/serve/chaostest) and must be
	// deterministic if the test wants reproducible fault histories.
	FaultHook func(op, key string) error
}

// DefaultMaxMemEntries is the memory-tier capacity when Options leaves it
// zero. Entries are simulation point results (a few hundred bytes to a
// few KB each, tens of KB with metrics snapshots), so the default costs
// at most a few hundred MB and typically far less.
const DefaultMaxMemEntries = 4096

// DefaultDegradeAfter is the consecutive-disk-failure threshold that
// flips the store into memory-only degraded mode when Options leaves
// DegradeAfter zero.
const DefaultDegradeAfter = 3

// Stats counts cache traffic since the store was created. Hits = MemHits
// + DiskHits; lookups = Hits + Misses. DiskBytes/DiskEntries snapshot the
// disk tier's current footprint; DiskDegraded reports the tier is offline
// after repeated I/O failures (the janitor probes and restores it).
type Stats struct {
	MemHits       int64 `json:"mem_hits"`
	DiskHits      int64 `json:"disk_hits"`
	Misses        int64 `json:"misses"`
	Puts          int64 `json:"puts"`
	Evictions     int64 `json:"evictions"` // memory tier
	DiskEvictions int64 `json:"disk_evictions"`
	// Failures counts disk I/O errors and corrupt on-disk entries.
	// Every failed read, write, eviction or probe increments it exactly
	// once.
	Failures int64 `json:"failures"`
	// CorruptRemoved counts on-disk entries whose checksum frame no
	// longer validated — found by a Get or a Verify sweep — and were
	// deleted rather than served. Each also counts once in Failures.
	CorruptRemoved int64 `json:"corrupt_removed"`
	DiskBytes      int64 `json:"disk_bytes"`
	DiskEntries    int64 `json:"disk_entries"`
	DiskDegraded   bool  `json:"disk_degraded"`
}

// Hits is the total hit count across both tiers.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Store is a two-tier content-addressed byte store: an in-memory LRU in
// front of an optional bounded disk directory. Keys are opaque strings —
// in practice the hex SHA-256 content addresses Key produces — and values
// are immutable byte payloads (a key always denotes the same bytes, so
// overwrites are idempotent and races between writers are harmless).
//
// The disk tier is self-defending: entries are framed with a checksum so
// torn or corrupted files are detected, counted in Stats.Failures and
// deleted rather than served; the tier is LRU-bounded (access order
// persists across restarts via file mtimes, so eviction order survives a
// crash); and repeated I/O failures degrade the store to memory-only
// serving instead of failing every caller, with StartJanitor probing the
// disk back to health. All methods are safe for concurrent use.
type Store struct {
	dir          string
	maxMem       int
	maxDiskB     int64
	maxDiskN     int
	degradeAfter int
	hook         func(op, key string) error

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats

	// diskMu serializes disk I/O and guards the disk index. Lock order:
	// diskMu before mu, never the reverse.
	diskMu      sync.Mutex
	idxReady    bool
	diskIdx     map[string]diskEnt
	diskBytes   int64
	consecFails int
	degraded    bool

	janitorOnce sync.Once
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// entry is one memory-tier element.
type entry struct {
	key string
	val []byte
}

// diskEnt is one disk-tier index record: the stored size (framing
// included) and the last-access stamp eviction orders by.
type diskEnt struct {
	size  int64
	stamp time.Time
}

// NewStore builds a store from the options. A disk directory is not
// touched until the first disk operation.
func NewStore(opts Options) *Store {
	maxMem := opts.MaxMemEntries
	if maxMem == 0 {
		maxMem = DefaultMaxMemEntries
	}
	degrade := opts.DegradeAfter
	if degrade == 0 {
		degrade = DefaultDegradeAfter
	}
	return &Store{
		dir:          opts.Dir,
		maxMem:       maxMem,
		maxDiskB:     opts.MaxDiskBytes,
		maxDiskN:     opts.MaxDiskEntries,
		degradeAfter: degrade,
		hook:         opts.FaultHook,
		ll:           list.New(),
		items:        make(map[string]*list.Element),
	}
}

// keyPattern guards the disk tier against keys that are not content
// addresses: only hex-ish names may touch the filesystem, so a hostile
// or buggy key cannot traverse outside the cache directory.
var keyPattern = regexp.MustCompile(`^[a-zA-Z0-9_-]{4,128}$`)

// path maps a key to its disk location, sharded by the first two
// characters to keep directories small.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".bin")
}

// Entries are framed on disk as magic + SHA-256(payload) + payload, so a
// truncated, torn or bit-flipped file is detected on read instead of
// being served as a (wrong) result. Writes are atomic renames, so frames
// are all-or-nothing even across crashes.
var frameMagic = []byte("TMC1")

const frameHeader = 4 + sha256.Size

func frame(payload []byte) []byte {
	out := make([]byte, 0, frameHeader+len(payload))
	out = append(out, frameMagic...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// unframe validates and strips the frame; ok is false for corrupt or
// legacy unframed entries.
func unframe(raw []byte) ([]byte, bool) {
	if len(raw) < frameHeader || !bytes.Equal(raw[:4], frameMagic) {
		return nil, false
	}
	payload := raw[frameHeader:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[4:frameHeader], sum[:]) {
		return nil, false
	}
	return payload, true
}

// Get returns the payload stored under key. A disk hit is promoted into
// the memory tier and refreshes the entry's access stamp (on disk too,
// so LRU order survives restarts).
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		s.stats.MemHits++
		s.mu.Unlock()
		return val, true
	}
	s.mu.Unlock()

	if s.dir == "" || !keyPattern.MatchString(key) {
		s.miss()
		return nil, false
	}
	val, ok := s.diskGet(key)
	if !ok {
		s.miss()
		return nil, false
	}
	s.mu.Lock()
	s.stats.DiskHits++
	s.admit(key, val)
	s.mu.Unlock()
	return val, true
}

// diskGet reads and unframes one entry under diskMu. Missing entries and
// a degraded tier are plain misses; I/O errors count toward degradation;
// corrupt entries are deleted and counted as failures (but not toward
// degradation — the disk itself answered fine).
func (s *Store) diskGet(key string) ([]byte, bool) {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.degraded {
		return nil, false
	}
	s.ensureIndexLocked()
	if err := s.hookErr("read", key); err != nil {
		s.diskFailLocked()
		return nil, false
	}
	raw, err := os.ReadFile(s.path(key))
	if err != nil {
		if !os.IsNotExist(err) {
			s.diskFailLocked()
		}
		return nil, false
	}
	s.consecFails = 0
	payload, ok := unframe(raw)
	if !ok {
		// Corrupt (or pre-framing legacy) entry: never serve it, delete
		// it so the slot can be refilled, and account the failure.
		os.Remove(s.path(key))
		s.dropIndexLocked(key)
		s.countCorrupt()
		return nil, false
	}
	now := time.Now()
	// Best-effort access stamp: eviction order degrades gracefully if
	// the filesystem refuses Chtimes.
	_ = os.Chtimes(s.path(key), now, now)
	if ent, ok := s.diskIdx[key]; ok {
		ent.stamp = now
		s.diskIdx[key] = ent
	} else {
		s.addIndexLocked(key, int64(len(raw)), now)
	}
	return payload, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// admit inserts key into the memory tier, evicting from the LRU tail.
// Caller holds s.mu.
func (s *Store) admit(key string, val []byte) {
	if s.maxMem < 0 {
		return
	}
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key, val})
	for s.ll.Len() > s.maxMem {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.items, tail.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// Put stores the payload under key in both tiers. The disk write is
// atomic (temp file + rename), so a crashed or concurrent writer can
// never leave a torn payload where Get would find it; pushing the tier
// over its configured bounds evicts least-recently-used entries. A
// degraded disk tier is skipped silently — the memory tier still serves —
// and disk I/O errors are returned (callers treat a failed Put as a
// skipped optimization; the store counts it in Stats.Failures).
func (s *Store) Put(key string, val []byte) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("simcache: key %q is not a content address", key)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(key, append([]byte(nil), val...))
	s.mu.Unlock()

	if s.dir == "" {
		return nil
	}
	framed := frame(val)
	if s.maxDiskB > 0 && int64(len(framed)) > s.maxDiskB {
		// Larger than the whole tier: keeping it would evict everything
		// for one entry, so it stays memory-only.
		return nil
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.degraded {
		return nil
	}
	s.ensureIndexLocked()
	if err := s.diskPutLocked(key, framed); err != nil {
		s.diskFailLocked()
		return fmt.Errorf("simcache: %w", err)
	}
	s.consecFails = 0
	s.evictDiskLocked()
	return nil
}

// diskPutLocked performs the atomic framed write and updates the index.
// Caller holds diskMu.
func (s *Store) diskPutLocked(key string, framed []byte) error {
	if err := s.hookErr("write", key); err != nil {
		return err
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.dropIndexLocked(key)
	s.addIndexLocked(key, int64(len(framed)), time.Now())
	return nil
}

// evictDiskLocked enforces the byte and entry bounds by deleting entries
// in least-recently-used order (oldest access stamp first). Deletion is a
// plain unlink per entry, so eviction interrupted by a crash just leaves
// the tier smaller — never inconsistent. Caller holds diskMu.
func (s *Store) evictDiskLocked() {
	over := func() bool {
		return (s.maxDiskB > 0 && s.diskBytes > s.maxDiskB) ||
			(s.maxDiskN > 0 && len(s.diskIdx) > s.maxDiskN)
	}
	if !over() {
		return
	}
	type victim struct {
		key   string
		stamp time.Time
	}
	order := make([]victim, 0, len(s.diskIdx))
	for k, e := range s.diskIdx {
		order = append(order, victim{k, e.stamp})
	}
	sort.Slice(order, func(i, j int) bool { return order[i].stamp.Before(order[j].stamp) })
	for _, v := range order {
		if !over() {
			return
		}
		if err := s.hookErr("evict", v.key); err != nil {
			s.diskFailLocked()
			continue
		}
		if err := os.Remove(s.path(v.key)); err != nil && !os.IsNotExist(err) {
			s.countFail()
			// Drop it from the index anyway: better to under-count the
			// tier than to evict the same immovable entry forever.
		}
		s.dropIndexLocked(v.key)
		s.mu.Lock()
		s.stats.DiskEvictions++
		s.mu.Unlock()
	}
}

// ensureIndexLocked builds the disk index by walking the cache directory
// once: entry sizes from the directory listing, access stamps from file
// mtimes (which Get refreshes), so LRU order is crash-persistent. Caller
// holds diskMu.
func (s *Store) ensureIndexLocked() {
	if s.idxReady {
		return
	}
	s.idxReady = true
	s.diskIdx = make(map[string]diskEnt)
	s.diskBytes = 0
	shards, err := os.ReadDir(s.dir)
	if err != nil {
		return // nothing cached yet (or unreadable root: ops will fail and count)
	}
	for _, sh := range shards {
		if !sh.IsDir() || len(sh.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, sh.Name()))
		if err != nil {
			continue
		}
		for _, f := range files {
			name := f.Name()
			if f.IsDir() || filepath.Ext(name) != ".bin" {
				continue
			}
			info, err := f.Info()
			if err != nil {
				continue
			}
			s.addIndexLocked(name[:len(name)-len(".bin")], info.Size(), info.ModTime())
		}
	}
}

func (s *Store) addIndexLocked(key string, size int64, stamp time.Time) {
	s.diskIdx[key] = diskEnt{size, stamp}
	s.diskBytes += size
}

func (s *Store) dropIndexLocked(key string) {
	if ent, ok := s.diskIdx[key]; ok {
		s.diskBytes -= ent.size
		delete(s.diskIdx, key)
	}
}

// hookErr consults the fault-injection hook.
func (s *Store) hookErr(op, key string) error {
	if s.hook == nil {
		return nil
	}
	return s.hook(op, key)
}

// diskFailLocked accounts one disk I/O failure and degrades the tier
// after degradeAfter consecutive ones. Caller holds diskMu.
func (s *Store) diskFailLocked() {
	s.countFail()
	s.consecFails++
	if s.degradeAfter > 0 && s.consecFails >= s.degradeAfter {
		s.degraded = true
	}
}

func (s *Store) countFail() {
	s.mu.Lock()
	s.stats.Failures++
	s.mu.Unlock()
}

// countCorrupt accounts one corrupt entry deleted from the disk tier.
func (s *Store) countCorrupt() {
	s.mu.Lock()
	s.stats.Failures++
	s.stats.CorruptRemoved++
	s.mu.Unlock()
}

// Verify sweeps the disk tier, re-checksumming every entry and deleting
// any whose frame no longer validates — bit rot, a torn write from a
// crashed sibling process, or manual tampering — so a later Get can never
// serve it and the slot refills from a fresh run. Deleted entries count in
// Stats.CorruptRemoved (and Failures). The janitor runs this every pass;
// it is also safe to call directly. Returns the number removed.
func (s *Store) Verify() int {
	if s.dir == "" {
		return 0
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.degraded {
		return 0
	}
	s.ensureIndexLocked()
	return s.verifyLocked()
}

// verifyLocked is Verify's sweep body. Caller holds diskMu with the index
// built. Hook-injected "verify" faults count as I/O failures and skip the
// entry (the disk, not the entry, is suspect); unreadable files likewise
// stay put, so a transiently failing mount never mass-deletes the tier.
func (s *Store) verifyLocked() int {
	keys := make([]string, 0, len(s.diskIdx))
	for k := range s.diskIdx {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	removed := 0
	for _, key := range keys {
		if err := s.hookErr("verify", key); err != nil {
			s.countFail()
			continue
		}
		raw, err := os.ReadFile(s.path(key))
		if err != nil {
			if os.IsNotExist(err) {
				s.dropIndexLocked(key) // evicted or removed externally
			} else {
				s.countFail()
			}
			continue
		}
		if _, ok := unframe(raw); ok {
			continue
		}
		os.Remove(s.path(key))
		s.dropIndexLocked(key)
		s.countCorrupt()
		removed++
	}
	return removed
}

// StartJanitor launches the background maintenance loop: every interval
// it re-enforces the disk bounds (catching entries written by other
// processes sharing the directory, or left over from before a crash) and,
// when the tier is degraded, probes the disk and restores it on success.
// It is a no-op for memory-only stores or non-positive intervals. Stop it
// with Close.
func (s *Store) StartJanitor(interval time.Duration) {
	if s.dir == "" || interval <= 0 {
		return
	}
	s.janitorOnce.Do(func() {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go func() {
			defer close(s.janitorDone)
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					s.Maintain()
				case <-s.janitorStop:
					return
				}
			}
		}()
	})
}

// Maintain runs one janitor pass synchronously: bound enforcement on a
// healthy tier, a health probe on a degraded one. Exposed so tests and
// shutdown paths need not wait for a tick.
func (s *Store) Maintain() {
	if s.dir == "" {
		return
	}
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	if s.degraded {
		if s.probeLocked() {
			s.degraded = false
			s.consecFails = 0
			// Rebuild the index: anything could have happened to the
			// directory while the tier was offline.
			s.idxReady = false
		}
		return
	}
	// Rescan so externally-added entries (a sibling process sharing the
	// directory) are bounded too, then enforce bounds and integrity.
	s.idxReady = false
	s.ensureIndexLocked()
	s.evictDiskLocked()
	s.verifyLocked()
}

// probeLocked checks the disk is writable and readable again: a probe
// file is written, read back and removed. Caller holds diskMu.
func (s *Store) probeLocked() bool {
	if err := s.hookErr("probe", ""); err != nil {
		s.countFail()
		return false
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		s.countFail()
		return false
	}
	p := filepath.Join(s.dir, ".probe")
	if err := os.WriteFile(p, []byte("ok"), 0o644); err != nil {
		s.countFail()
		return false
	}
	raw, err := os.ReadFile(p)
	os.Remove(p)
	if err != nil || string(raw) != "ok" {
		s.countFail()
		return false
	}
	return true
}

// Close stops the janitor, if one was started. The store itself holds no
// other resources; it remains usable (janitor-less) after Close.
func (s *Store) Close() {
	if s.janitorStop == nil {
		return
	}
	select {
	case <-s.janitorStop:
	default:
		close(s.janitorStop)
	}
	<-s.janitorDone
}

// Degraded reports whether the disk tier is offline after repeated I/O
// failures (memory-only serving until a janitor probe restores it).
func (s *Store) Degraded() bool {
	s.diskMu.Lock()
	defer s.diskMu.Unlock()
	return s.degraded
}

// Stats returns a snapshot of the traffic counters and the disk tier's
// current footprint.
func (s *Store) Stats() Stats {
	var bytes, entries int64
	var degraded bool
	if s.dir != "" {
		s.diskMu.Lock()
		s.ensureIndexLocked()
		bytes, entries, degraded = s.diskBytes, int64(len(s.diskIdx)), s.degraded
		s.diskMu.Unlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.DiskBytes, st.DiskEntries, st.DiskDegraded = bytes, entries, degraded
	return st
}

// Len reports the number of memory-tier entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
