package simcache

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
)

// Options configures a Store.
type Options struct {
	// Dir is the disk tier's root directory; empty keeps the cache
	// memory-only. The directory (and shard subdirectories) are created
	// on demand.
	Dir string
	// MaxMemEntries bounds the memory LRU tier; 0 selects
	// DefaultMaxMemEntries, negative disables the memory tier.
	MaxMemEntries int
}

// DefaultMaxMemEntries is the memory-tier capacity when Options leaves it
// zero. Entries are simulation point results (a few hundred bytes to a
// few KB each, tens of KB with metrics snapshots), so the default costs
// at most a few hundred MB and typically far less.
const DefaultMaxMemEntries = 4096

// Stats counts cache traffic since the store was created. Hits = MemHits
// + DiskHits; lookups = Hits + Misses.
type Stats struct {
	MemHits   int64 `json:"mem_hits"`
	DiskHits  int64 `json:"disk_hits"`
	Misses    int64 `json:"misses"`
	Puts      int64 `json:"puts"`
	Evictions int64 `json:"evictions"`
	Errors    int64 `json:"errors"`
}

// Hits is the total hit count across both tiers.
func (s Stats) Hits() int64 { return s.MemHits + s.DiskHits }

// Store is a two-tier content-addressed byte store: an in-memory LRU in
// front of an optional disk directory. Keys are opaque strings — in
// practice the hex SHA-256 content addresses Key produces — and values
// are immutable byte payloads (a key always denotes the same bytes, so
// overwrites are idempotent and races between writers are harmless).
// All methods are safe for concurrent use.
type Store struct {
	dir    string
	maxMem int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats Stats
}

// entry is one memory-tier element.
type entry struct {
	key string
	val []byte
}

// NewStore builds a store from the options. A disk directory is not
// touched until the first Put.
func NewStore(opts Options) *Store {
	maxMem := opts.MaxMemEntries
	if maxMem == 0 {
		maxMem = DefaultMaxMemEntries
	}
	return &Store{
		dir:    opts.Dir,
		maxMem: maxMem,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// keyPattern guards the disk tier against keys that are not content
// addresses: only hex-ish names may touch the filesystem, so a hostile
// or buggy key cannot traverse outside the cache directory.
var keyPattern = regexp.MustCompile(`^[a-zA-Z0-9_-]{4,128}$`)

// path maps a key to its disk location, sharded by the first two
// characters to keep directories small.
func (s *Store) path(key string) string {
	return filepath.Join(s.dir, key[:2], key+".bin")
}

// Get returns the payload stored under key. A disk hit is promoted into
// the memory tier.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		val := el.Value.(*entry).val
		s.stats.MemHits++
		s.mu.Unlock()
		return val, true
	}
	s.mu.Unlock()

	if s.dir == "" || !keyPattern.MatchString(key) {
		s.miss()
		return nil, false
	}
	val, err := os.ReadFile(s.path(key))
	if err != nil {
		// Missing or unreadable file: a miss either way. Unreadable
		// payloads surface in Stats.Errors for operators.
		s.mu.Lock()
		s.stats.Misses++
		if !os.IsNotExist(err) {
			s.stats.Errors++
		}
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.stats.DiskHits++
	s.admit(key, val)
	s.mu.Unlock()
	return val, true
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

// admit inserts key into the memory tier, evicting from the LRU tail.
// Caller holds s.mu.
func (s *Store) admit(key string, val []byte) {
	if s.maxMem < 0 {
		return
	}
	if el, ok := s.items[key]; ok {
		s.ll.MoveToFront(el)
		el.Value.(*entry).val = val
		return
	}
	s.items[key] = s.ll.PushFront(&entry{key, val})
	for s.ll.Len() > s.maxMem {
		tail := s.ll.Back()
		s.ll.Remove(tail)
		delete(s.items, tail.Value.(*entry).key)
		s.stats.Evictions++
	}
}

// Put stores the payload under key in both tiers. The disk write is
// atomic (temp file + rename), so a crashed or concurrent writer can
// never leave a torn payload where Get would find it.
func (s *Store) Put(key string, val []byte) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("simcache: key %q is not a content address", key)
	}
	s.mu.Lock()
	s.stats.Puts++
	s.admit(key, append([]byte(nil), val...))
	s.mu.Unlock()

	if s.dir == "" {
		return nil
	}
	p := s.path(key)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.fail()
		return fmt.Errorf("simcache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "put-*")
	if err != nil {
		s.fail()
		return fmt.Errorf("simcache: %w", err)
	}
	if _, err := tmp.Write(val); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.fail()
		return fmt.Errorf("simcache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.fail()
		return fmt.Errorf("simcache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		s.fail()
		return fmt.Errorf("simcache: %w", err)
	}
	return nil
}

func (s *Store) fail() {
	s.mu.Lock()
	s.stats.Errors++
	s.mu.Unlock()
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Len reports the number of memory-tier entries.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}
