// Package simcache is the content-addressed result cache behind the
// simulation-as-a-service layer: deterministic canonical-JSON keys over
// normalized run parameters, and a two-tier (memory LRU + disk) store for
// the payloads those keys address.
//
// The cache is sound because simulation results are a pure function of
// (normalized parameters, seed, engine version): seeds derive from job
// identity alone (see internal/sim), so the same key always denotes the
// same bytes. Keying discipline — what goes into the normalized form and
// what must stay out of it — is owned by the callers (internal/sim builds
// point keys, internal/serve builds job keys); this package only
// guarantees that equal logical values hash equally.
package simcache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
)

// Canonical renders v as canonical JSON: object keys sorted, zero-valued
// object members pruned recursively, numbers preserved digit-for-digit,
// and no insignificant whitespace. Two values that differ only in map
// iteration/insertion order or in members holding their zero value ("",
// 0, false, null, empty array, empty object) canonicalize identically —
// which is exactly the equivalence a content-addressed cache key needs:
// adding a new optional knob at its default value must not invalidate
// every existing entry.
//
// Array elements are never pruned (position is meaning), but each element
// is canonicalized recursively.
func Canonical(v any) ([]byte, error) {
	// Round-trip through encoding/json to erase Go-side representation
	// details (struct vs map, field order, int vs float) while keeping
	// numbers verbatim via json.Number.
	raw, err := json.Marshal(v)
	if err != nil {
		return nil, fmt.Errorf("simcache: canonicalizing: %w", err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var tree any
	if err := dec.Decode(&tree); err != nil {
		return nil, fmt.Errorf("simcache: canonicalizing: %w", err)
	}
	var b bytes.Buffer
	if err := writeCanonical(&b, prune(tree)); err != nil {
		return nil, err
	}
	return b.Bytes(), nil
}

// Key returns the content address of v: the hex SHA-256 of its canonical
// JSON form.
func Key(v any) (string, error) {
	c, err := Canonical(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(c)
	return hex.EncodeToString(sum[:]), nil
}

// prune drops zero-valued members from objects, recursively. It returns
// the pruned value; a value that prunes to nothing becomes nil (the
// caller decides whether to keep it — objects drop it, arrays keep it as
// null to preserve positions).
func prune(v any) any {
	switch t := v.(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, member := range t {
			p := prune(member)
			if isZero(p) {
				continue
			}
			out[k] = p
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = prune(e)
		}
		return out
	default:
		return v
	}
}

// isZero reports whether a pruned JSON value is a zero its enclosing
// object should drop.
func isZero(v any) bool {
	switch t := v.(type) {
	case nil:
		return true
	case bool:
		return !t
	case string:
		return t == ""
	case json.Number:
		return numberIsZero(t)
	case map[string]any:
		return len(t) == 0
	case []any:
		return len(t) == 0
	}
	return reflect.ValueOf(v).IsZero()
}

// numberIsZero recognizes every JSON spelling of zero ("0", "-0", "0.0",
// "0e5", ...) so that 0 and 0.0 prune identically regardless of how the
// Go side spelled them.
func numberIsZero(n json.Number) bool {
	if f, err := n.Float64(); err == nil {
		return f == 0
	}
	return false
}

// writeCanonical serializes the pruned tree with sorted keys and no
// whitespace. Strings go through encoding/json for escaping; numbers are
// written verbatim as decoded (json.Number), so no float64 round trip can
// perturb digits.
func writeCanonical(b *bytes.Buffer, v any) error {
	switch t := v.(type) {
	case nil:
		b.WriteString("null")
	case bool:
		if t {
			b.WriteString("true")
		} else {
			b.WriteString("false")
		}
	case string:
		enc, err := json.Marshal(t)
		if err != nil {
			return err
		}
		b.Write(enc)
	case json.Number:
		b.WriteString(canonicalNumber(t))
	case []any:
		b.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				b.WriteByte(',')
			}
			if err := writeCanonical(b, e); err != nil {
				return err
			}
		}
		b.WriteByte(']')
	case map[string]any:
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte(',')
			}
			enc, err := json.Marshal(k)
			if err != nil {
				return err
			}
			b.Write(enc)
			b.WriteByte(':')
			if err := writeCanonical(b, t[k]); err != nil {
				return err
			}
		}
		b.WriteByte('}')
	default:
		return fmt.Errorf("simcache: unexpected canonical node %T", v)
	}
	return nil
}

// canonicalNumber normalizes the textual spelling of a JSON number so
// that 1, 1.0 and 1e0 address the same entry: integers print without
// exponent or fraction, everything else prints as Go's shortest float64
// form. Numbers outside float64 range keep their literal spelling.
func canonicalNumber(n json.Number) string {
	if i, err := n.Int64(); err == nil {
		return json.Number(fmt.Sprintf("%d", i)).String()
	}
	var f float64
	if err := json.Unmarshal([]byte(n.String()), &f); err != nil {
		return n.String()
	}
	if f == 0 {
		return "0" // fold negative zero into zero
	}
	out, err := json.Marshal(f)
	if err != nil {
		return n.String()
	}
	return string(out)
}
