package sim

import (
	"math"
	"strings"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

func meshCfg(t *testing.T, alg string, rate float64) Config {
	t.Helper()
	mesh := topology.NewMesh2D(8, 8)
	a, err := routing.New(alg, mesh)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Routing: a,
		RunParams: RunParams{
			Pattern:       traffic.Uniform{Topo: mesh},
			InjectionRate: rate,
			WarmupCycles:  2000,
			MeasureCycles: 5000,
			Seed:          11,
		},
	}
}

func TestRunLowLoadIsSustainable(t *testing.T) {
	r := Run(meshCfg(t, "xy", 0.01))
	if !r.Sustainable {
		t.Errorf("low load not sustainable: %+v", r)
	}
	if r.Deadlocked {
		t.Error("xy deadlocked")
	}
	if r.Packets == 0 {
		t.Fatal("no packets measured")
	}
	// Accepted throughput must be close to offered.
	if r.ThroughputFlitsPerUs < 0.9*r.OfferedFlitsPerUs {
		t.Errorf("throughput %v far below offered %v", r.ThroughputFlitsPerUs, r.OfferedFlitsPerUs)
	}
	// Zero-load latency is near the analytic value: avg distance ~5.33
	// hops plus mean packet length 105 minus 1, in cycles / 20.
	want := (5.33 + 105 - 1) / 20
	if r.AvgLatencyUs < 0.8*want || r.AvgLatencyUs > 2.5*want {
		t.Errorf("low-load latency %.2f us; want near %.2f us", r.AvgLatencyUs, want)
	}
	if r.AvgHops < 4.5 || r.AvgHops > 6.5 {
		t.Errorf("AvgHops = %.2f, want ~5.3", r.AvgHops)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunOverloadIsUnsustainable(t *testing.T) {
	r := Run(meshCfg(t, "xy", 0.5))
	if r.Sustainable {
		t.Errorf("gross overload marked sustainable: %+v", r)
	}
	if r.QueueGrowth <= 0 {
		t.Errorf("overload did not grow queues: %d", r.QueueGrowth)
	}
	// Throughput saturates well below offered.
	if r.ThroughputFlitsPerUs > 0.8*r.OfferedFlitsPerUs {
		t.Errorf("overloaded throughput %v suspiciously close to offered %v", r.ThroughputFlitsPerUs, r.OfferedFlitsPerUs)
	}
}

func TestLatencyIncreasesWithLoad(t *testing.T) {
	low := Run(meshCfg(t, "west-first", 0.01))
	high := Run(meshCfg(t, "west-first", 0.08))
	if high.AvgLatencyUs <= low.AvgLatencyUs {
		t.Errorf("latency did not increase with load: %.2f -> %.2f", low.AvgLatencyUs, high.AvgLatencyUs)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	a := Run(meshCfg(t, "negative-first", 0.05))
	b := Run(meshCfg(t, "negative-first", 0.05))
	if a != b {
		t.Errorf("identical configs diverged:\n%+v\n%+v", a, b)
	}
}

func TestSeedChangesOutcome(t *testing.T) {
	cfg := meshCfg(t, "xy", 0.05)
	a := Run(cfg)
	cfg.Seed++
	b := Run(cfg)
	if a.AvgLatencyUs == b.AvgLatencyUs && a.Packets == b.Packets {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestDeadlockReportedInResult(t *testing.T) {
	mesh := topology.NewMesh2D(4, 4)
	cfg := Config{
		Routing: routing.FullyAdaptive(mesh),
		RunParams: RunParams{
			Pattern:        traffic.Uniform{Topo: mesh},
			InjectionRate:  1.0,
			WarmupCycles:   30000,
			MeasureCycles:  30000,
			Seed:           1,
			WatchdogCycles: 1500,
		},
	}
	r := Run(cfg)
	if !r.Deadlocked {
		t.Error("fully adaptive overload did not deadlock")
	}
	if r.Sustainable {
		t.Error("deadlocked run marked sustainable")
	}
}

func TestFixedPointsReduceOfferedLoad(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	a, err := routing.New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Routing: a,
		RunParams: RunParams{
			Pattern:       traffic.NewMeshTranspose(mesh),
			InjectionRate: 0.04, WarmupCycles: 5000, MeasureCycles: 30000, Seed: 3,
		},
	}
	r := Run(cfg)
	// 8 of 64 nodes are fixed points: effective offered load is 56/64
	// of the nominal rate.
	want := 0.04 * 64 * (56.0 / 64.0) * 20
	if math.Abs(r.OfferedFlitsPerUs-want) > 1e-9 {
		t.Errorf("OfferedFlitsPerUs = %v, want %v", r.OfferedFlitsPerUs, want)
	}
	if !r.Sustainable {
		t.Errorf("light transpose load unsustainable: %+v", r)
	}
}

func TestSweepOrdersAndLabels(t *testing.T) {
	cfg := meshCfg(t, "xy", 0)
	rates := []float64{0.01, 0.03}
	rs := Sweep(cfg, rates)
	if len(rs) != 2 {
		t.Fatalf("Sweep returned %d results", len(rs))
	}
	for i, r := range rs {
		if r.InjectionRate != rates[i] {
			t.Errorf("result %d has rate %v", i, r.InjectionRate)
		}
		if r.Algorithm != "xy" || r.Pattern != "uniform" {
			t.Errorf("labels wrong: %+v", r)
		}
	}
	if rs[0].ThroughputFlitsPerUs >= rs[1].ThroughputFlitsPerUs {
		t.Error("throughput did not increase in the sustainable region")
	}
}

func TestSaturationThroughput(t *testing.T) {
	cfg := meshCfg(t, "xy", 0)
	rate, thr := SaturationThroughput(cfg, 0.01, 0.1, 4)
	if thr <= 0 {
		t.Fatalf("no sustainable point found (rate %v)", rate)
	}
	if rate < 0.01 || rate > 0.1 {
		t.Errorf("rate %v outside sweep bounds", rate)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for steps < 2")
			}
		}()
		SaturationThroughput(cfg, 0.01, 0.1, 1)
	}()
}

func TestFiguresCatalog(t *testing.T) {
	figs := Figures()
	if len(figs) != 5 {
		t.Fatalf("got %d figures, want 5", len(figs))
	}
	ids := map[string]bool{}
	for _, f := range figs {
		if f.ID == "" || f.Title == "" || f.Claim == "" {
			t.Errorf("figure %q incomplete", f.ID)
		}
		if ids[f.ID] {
			t.Errorf("duplicate figure id %q", f.ID)
		}
		ids[f.ID] = true
		if len(f.Rates) < 5 {
			t.Errorf("%s: too few sweep rates", f.ID)
		}
		topo := f.NewTopology()
		if topo.Nodes() != 256 {
			t.Errorf("%s: topology has %d nodes, want 256", f.ID, topo.Nodes())
		}
		for _, a := range f.Algorithms {
			if _, err := routing.New(a, f.NewTopology()); err != nil {
				t.Errorf("%s: algorithm %s: %v", f.ID, a, err)
			}
		}
		if f.NewPattern(topo) == nil {
			t.Errorf("%s: nil pattern", f.ID)
		}
	}
	for _, want := range []string{"figure13", "figure14", "figure15", "figure16", "uniform-cube"} {
		if !ids[want] {
			t.Errorf("missing figure %q", want)
		}
	}
	if _, ok := FigureByID("figure13"); !ok {
		t.Error("FigureByID failed")
	}
	if _, ok := FigureByID("nope"); ok {
		t.Error("FigureByID found a ghost")
	}
}

func TestRunFigureSmoke(t *testing.T) {
	// A scaled-down figure run: tiny windows, but the full pipeline.
	spec, _ := FigureByID("figure13")
	spec.Rates = []float64{0.01, 0.05}
	fr, err := runFigure(spec, 500, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Series) != 4 {
		t.Fatalf("series for %d algorithms, want 4", len(fr.Series))
	}
	for alg, series := range fr.Series {
		if len(series) != 2 {
			t.Errorf("%s: %d points", alg, len(series))
		}
	}
	tab := fr.Table()
	for _, want := range []string{"figure13", "xy", "west-first", "max sustainable"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if _, thr := MaxSustainable(fr.Series["xy"]); thr <= 0 {
		t.Error("no sustainable point in smoke run")
	}
}

func TestExtensionFiguresCatalog(t *testing.T) {
	exts := ExtensionFigures()
	if len(exts) < 4 {
		t.Fatalf("got %d extension figures", len(exts))
	}
	for _, f := range exts {
		if f.ID == "" || f.Title == "" || f.Claim == "" {
			t.Errorf("extension %q incomplete", f.ID)
		}
		topo := f.NewTopology()
		for _, a := range f.Algorithms {
			if _, err := routing.New(a, f.NewTopology()); err != nil {
				t.Errorf("%s: algorithm %s: %v", f.ID, a, err)
			}
		}
		if f.NewPattern(topo) == nil {
			t.Errorf("%s: nil pattern", f.ID)
		}
	}
	if len(AllFigures()) != len(Figures())+len(exts) {
		t.Error("AllFigures does not combine both catalogs")
	}
	if _, ok := FigureByID("extension-hex"); !ok {
		t.Error("FigureByID cannot find extensions")
	}
}

func TestExtensionFigureSmoke(t *testing.T) {
	spec, ok := FigureByID("extension-octagonal")
	if !ok {
		t.Fatal("extension-octagonal missing")
	}
	spec.Rates = []float64{0.02}
	fr, err := runFigure(spec, 300, 800, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(fr.Series) != 2 {
		t.Fatalf("series = %d", len(fr.Series))
	}
	for alg, series := range fr.Series {
		if series[0].Packets == 0 {
			t.Errorf("%s: no packets", alg)
		}
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	spec, _ := FigureByID("figure13")
	spec.Rates = []float64{0.02, 0.05}
	fr, err := runFigure(spec, 300, 800, 3)
	if err != nil {
		t.Fatal(err)
	}
	plot := fr.Plot(60, 16)
	for _, want := range []string{"figure13", "legend:", "x=xy", "o=west-first"} {
		if !strings.Contains(plot, want) {
			t.Errorf("plot missing %q:\n%s", want, plot)
		}
	}
	lines := strings.Split(plot, "\n")
	if len(lines) < 16 {
		t.Errorf("plot too short: %d lines", len(lines))
	}
	// Data symbols must actually appear in the grid.
	if !strings.Contains(plot, "x") || !strings.Contains(plot, "o") {
		t.Error("no data points plotted")
	}
	// Degenerate sizes are clamped, empty data reported.
	small := fr.Plot(1, 1)
	if small == "" {
		t.Error("clamped plot empty")
	}
	empty := FigureResult{Spec: spec, Series: map[string][]Result{}}
	if got := empty.Plot(40, 10); got != "(no data)\n" {
		t.Errorf("empty plot = %q", got)
	}
}

func TestRunFigureBadAlgorithmError(t *testing.T) {
	spec, _ := FigureByID("figure13")
	spec.Algorithms = []string{"no-such"}
	spec.Rates = []float64{0.01}
	_, err := runFigure(spec, 100, 200, 1)
	if err == nil {
		t.Fatal("expected an error for an unknown algorithm")
	}
	if !strings.Contains(err.Error(), "no-such") || !strings.Contains(err.Error(), "figure13") {
		t.Errorf("error %q does not name the algorithm and figure", err)
	}
}

func TestSaturationBisect(t *testing.T) {
	cfg := meshCfg(t, "xy", 0)
	cfg.WarmupCycles, cfg.MeasureCycles = 4000, 12000
	rate, thr := SaturationBisect(cfg, 0.01, 0.5, 4)
	if rate <= 0.01 || rate >= 0.5 {
		t.Errorf("bisected rate %v outside the bracket", rate)
	}
	if thr <= 0 {
		t.Error("no throughput at the bisected rate")
	}
	// Misuse panics: a saturated lower bound.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for unsustainable lower bound")
			}
		}()
		SaturationBisect(cfg, 0.5, 0.6, 2)
	}()
}
