package sim

import (
	"testing"

	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
	"turnmodel/internal/vc"
)

// TestMetricsDoNotPerturbResults is the observability layer's core
// contract: attaching the collector must not change what the simulator
// does. Every Result scalar must be bit-identical with metrics on and off,
// on both engines.
func TestMetricsDoNotPerturbResults(t *testing.T) {
	base := meshCfg(t, "west-first", 0.05)
	plain := Run(base)

	on := base
	on.Metrics = true
	instrumented := Run(on)
	if instrumented.Metrics == nil {
		t.Fatal("Metrics=true produced no snapshot")
	}
	scalars := instrumented
	scalars.Metrics = nil
	if scalars != plain {
		t.Errorf("collector perturbed the run:\noff: %+v\non:  %+v", plain, scalars)
	}

	mesh := topology.NewMesh2D(8, 8)
	dy, err := vc.New("double-y", mesh)
	if err != nil {
		t.Fatal(err)
	}
	vcCfg := VCConfig{
		Routing: dy,
		RunParams: RunParams{
			Pattern:       traffic.Uniform{Topo: mesh},
			InjectionRate: 0.05,
			WarmupCycles:  2000,
			MeasureCycles: 5000,
			Seed:          11,
		},
	}
	vplain := RunVC(vcCfg)
	vcCfg.Metrics = true
	von := RunVC(vcCfg)
	if von.Metrics == nil {
		t.Fatal("VC Metrics=true produced no snapshot")
	}
	vscalars := von
	vscalars.Metrics = nil
	if vscalars != vplain {
		t.Errorf("collector perturbed the VC run:\noff: %+v\non:  %+v", vplain, vscalars)
	}
}

// TestMetricsSnapshotSane checks the snapshot attached to a Result is
// internally consistent with the measurement protocol.
func TestMetricsSnapshotSane(t *testing.T) {
	cfg := meshCfg(t, "west-first", 0.05)
	cfg.Metrics = true
	res := Run(cfg)
	s := res.Metrics
	if s == nil {
		t.Fatal("no snapshot")
	}
	if s.WindowCycles < cfg.MeasureCycles {
		t.Errorf("window %d cycles, measure phase is %d (plus drain)", s.WindowCycles, cfg.MeasureCycles)
	}
	if s.PacketsDelivered < res.Packets {
		t.Errorf("snapshot saw %d deliveries, result measured %d packets", s.PacketsDelivered, res.Packets)
	}
	if !(s.LatencyP50Us <= s.LatencyP95Us && s.LatencyP95Us <= s.LatencyP99Us) {
		t.Errorf("percentiles out of order: %v %v %v", s.LatencyP50Us, s.LatencyP95Us, s.LatencyP99Us)
	}
	if s.LatencyP50Us <= 0 {
		t.Error("p50 is zero with traffic flowing")
	}
	if s.MaxChannelUtil <= 0 || s.MaxChannelUtil > 1 {
		t.Errorf("max util %v", s.MaxChannelUtil)
	}
	if s.MeshWidth != 8 || s.MeshHeight != 8 {
		t.Errorf("mesh dims %dx%d", s.MeshWidth, s.MeshHeight)
	}
	if len(s.OccupancyFlits) == 0 {
		t.Error("occupancy trace empty — warmup transient not recorded")
	}
	// The delay split must be consistent with the average latency Result
	// reports (both sides round, so allow a loose tolerance).
	if sum := s.AvgQueueDelayUs + s.AvgNetDelayUs; sum > 2*res.AvgLatencyUs || sum <= 0 {
		t.Errorf("delay split %v inconsistent with avg latency %v", sum, res.AvgLatencyUs)
	}
}

// TestRunnerMetricsPlan checks Plan.Metrics flows through to the point
// results while leaving scalars untouched.
func TestRunnerMetricsPlan(t *testing.T) {
	plain, _, err := runPlan(quickPlan(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	plan := quickPlan(2, nil)
	plan.Metrics = true
	on, rep, err := runPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Config.Metrics {
		t.Error("report does not echo Metrics flag")
	}
	for fi := range on {
		for name, series := range on[fi].Series {
			for pi, r := range series {
				if r.Metrics == nil {
					t.Fatalf("%s/%s point %d has no snapshot", on[fi].Spec.ID, name, pi)
				}
				r.Metrics = nil
				if r != plain[fi].Series[name][pi] {
					t.Errorf("%s/%s point %d scalars changed with metrics on", on[fi].Spec.ID, name, pi)
				}
			}
		}
	}
}
