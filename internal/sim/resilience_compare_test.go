package sim

import (
	"reflect"
	"strings"
	"testing"

	"turnmodel/internal/fault"
)

func TestResilienceModesCatalog(t *testing.T) {
	modes := ResilienceModes()
	if len(modes) != 3 {
		t.Fatalf("%d modes, want 3", len(modes))
	}
	byName := map[string]ResilienceMode{}
	for _, m := range modes {
		byName[m.Name] = m
	}
	if m := byName["recovery"]; !m.Recovery || m.FaultRouting.Enabled() {
		t.Errorf("recovery mode misconfigured: %+v", m)
	}
	if m := byName["masking"]; m.Recovery || !m.FaultRouting.Enabled() {
		t.Errorf("masking mode misconfigured: %+v", m)
	}
	if m := byName["recovery+masking"]; !m.Recovery || !m.FaultRouting.Enabled() {
		t.Errorf("recovery+masking mode misconfigured: %+v", m)
	}
}

// TestResilienceCompareDeterministicAcrossJobs extends the bit-identical
// guarantee to the mode comparison: any worker count, same results and
// tables.
func TestResilienceCompareDeterministicAcrossJobs(t *testing.T) {
	spec := quickResilience()
	serial, err := runResilienceCompare(spec, 400, 1200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runResilienceCompare(spec, 400, 1200, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Series, parallel.Series) {
		t.Errorf("series differ between 1 and 6 workers:\n%+v\n%+v", serial.Series, parallel.Series)
	}
	if serial.Table() != parallel.Table() {
		t.Errorf("tables differ:\n%s\n%s", serial.Table(), parallel.Table())
	}
}

// TestResilienceCompareEndToEnd runs the scaled-down comparison and checks
// the semantics of each mode: the recovery series reproduces the
// recovery-only sweep bit-identically (common random numbers across
// modes), masking actually
// masks at faulted rates, and adding masking to recovery never hurts — and
// strictly helps the adaptive algorithm at the highest rate.
func TestResilienceCompareEndToEnd(t *testing.T) {
	spec := quickResilience()
	rc, err := runResilienceCompare(spec, 1000, 6000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := runResilience(spec, 1000, 6000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rc.Series["recovery"], baseline.Series) {
		t.Error("recovery-only series does not reproduce the recovery-only sweep")
	}
	last := len(spec.FaultRates) - 1
	for _, alg := range spec.Algorithms {
		for ri := range spec.FaultRates {
			for _, mode := range rc.Modes {
				res := rc.Series[mode.Name][alg][ri]
				if res.DeliveredFraction < 0 || res.DeliveredFraction > 1 {
					t.Errorf("%s/%s rate %g: delivered fraction %g", mode.Name, alg, spec.FaultRates[ri], res.DeliveredFraction)
				}
				if ri == 0 && (res.MaskedFaults != 0 || res.MisrouteHops != 0) {
					t.Errorf("%s/%s fault-free: masked=%d misroutes=%d, want 0/0", mode.Name, alg, res.MaskedFaults, res.MisrouteHops)
				}
				if !mode.FaultRouting.Enabled() && res.MaskedFaults != 0 {
					t.Errorf("%s/%s: masking counted with fault routing off", mode.Name, alg)
				}
			}
		}
	}
	// At the highest rate masking must actually steer the adaptive
	// algorithm. (xy never masks: with exactly one candidate per hop no
	// proper nonempty subset exists, so the wrapper always falls through.)
	if got := rc.Series["recovery+masking"]["west-first"][last].MaskedFaults; got == 0 {
		t.Errorf("west-first: no masked decisions at rate %g", spec.FaultRates[last])
	}
	// The acceptance claim on the adaptive algorithm: in-network masking on
	// top of recovery delivers strictly more than recovery alone at the
	// highest fault rate. Seeds are fixed; this is deterministic.
	rec := rc.Series["recovery"]["west-first"][last].DeliveredFraction
	both := rc.Series["recovery+masking"]["west-first"][last].DeliveredFraction
	if both <= rec {
		t.Errorf("west-first at rate %g: recovery+masking delivered %.4f <= recovery %.4f",
			spec.FaultRates[last], both, rec)
	}
	table := rc.Table()
	for _, want := range []string{"recovery vs in-network fault masking", "recovery+masking", "masking gain", "khop(r=2)+misroute4"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestRunPlanFaultRoutingDeterminism: a faulted sweep with fault-aware
// routing enabled stays bit-identical across worker counts, and the
// report echoes the policy (schema v4 fields).
func TestRunPlanFaultRoutingDeterminism(t *testing.T) {
	mk := func(jobs int) Plan {
		p := quickPlan(jobs, nil)
		p.FaultPlan = fault.Plan{Rate: 2e-6, Repair: 400}
		p.Recovery = fault.Recovery{Enabled: true, StallCycles: 300}
		p.FaultRouting = fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
		return p
	}
	serial, serialRep, err := runPlan(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := runPlan(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, serial, parallel)
	cfg := serialRep.Config
	if cfg.FaultRouting != "khop" || cfg.FaultRadius != fault.DefaultRadius || cfg.MisrouteLimit != 4 {
		t.Errorf("report config does not echo the routing policy: %+v", cfg)
	}
}
