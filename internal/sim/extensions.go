package sim

import (
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// ExtensionFigures returns experiments beyond the paper's own evaluation:
// the turn model applied to the Section 7 future-work topologies. They run
// through the same harness and formatting as the paper's figures.
func ExtensionFigures() []FigureSpec {
	uniform := func(t topology.Topology) traffic.Pattern { return traffic.Uniform{Topo: t} }
	hotspot := func(t topology.Topology) traffic.Pattern {
		return traffic.Hotspot{Topo: t, Hot: topology.NodeID(t.Nodes() / 2), Fraction: 0.1}
	}
	return []FigureSpec{
		{
			ID:          "extension-hex",
			Title:       "Uniform traffic in a 16x16 hexagonal mesh (Section 7 future work)",
			Claim:       "the turn model extends beyond 90-degree turns: negative-first on the hex mesh is deadlock free and competitive with axis-order routing",
			NewTopology: func() topology.Topology { return topology.NewHex(16, 16) },
			Algorithms:  []string{"dimension-order", "negative-first"},
			NewPattern:  uniform,
			Rates:       []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12},
		},
		{
			ID:          "extension-hex-hotspot",
			Title:       "Hotspot traffic (10% to the center) in a 16x16 hexagonal mesh",
			Claim:       "adaptiveness helps around hot spots, the motivation Section 1 gives for adaptive routing",
			NewTopology: func() topology.Topology { return topology.NewHex(16, 16) },
			Algorithms:  []string{"dimension-order", "negative-first"},
			NewPattern:  hotspot,
			Rates:       []float64{0.01, 0.02, 0.03, 0.04, 0.05},
		},
		{
			ID:          "extension-octagonal",
			Title:       "Uniform traffic in a 16x16 octagonal mesh (Section 7 future work)",
			Claim:       "diagonal channels shorten paths (Chebyshev distance) and the negative-first phase split keeps routing deadlock free",
			NewTopology: func() topology.Topology { return topology.NewOctagonal(16, 16) },
			Algorithms:  []string{"dimension-order", "negative-first"},
			NewPattern:  uniform,
			Rates:       []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12},
		},
		{
			ID:          "extension-odd-even",
			Title:       "Matrix-transpose traffic in a 16x16 mesh with the odd-even turn model",
			Claim:       "the odd-even successor model (Chiu 2000) spreads its turn prohibitions by column parity; its evenly distributed adaptiveness competes with the best of the paper's algorithms on nonuniform traffic",
			NewTopology: func() topology.Topology { return topology.NewMesh2D(16, 16) },
			Algorithms:  []string{"xy", "west-first", "odd-even"},
			NewPattern: func(t topology.Topology) traffic.Pattern {
				return traffic.NewMeshTranspose(t.(*topology.Mesh))
			},
			Rates: []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12},
		},
		{
			ID:          "extension-mesh-hotspot",
			Title:       "Hotspot traffic (10% to the center) in a 16x16 mesh",
			Claim:       "partially adaptive algorithms route around the hot region; xy maintains the unevenness",
			NewTopology: func() topology.Topology { return topology.NewMesh2D(16, 16) },
			Algorithms:  []string{"xy", "west-first", "north-last", "negative-first"},
			NewPattern:  hotspot,
			Rates:       []float64{0.01, 0.02, 0.03, 0.04, 0.05},
		},
	}
}

// AllFigures returns the paper figures followed by the extensions.
func AllFigures() []FigureSpec {
	return append(Figures(), ExtensionFigures()...)
}
