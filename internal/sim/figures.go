package sim

import (
	"fmt"
	"sort"
	"strings"

	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// FigureSpec declares one of the paper's evaluation figures as a runnable
// experiment: a topology, a workload, the algorithms compared, and the
// injection-rate sweep that traces the latency-versus-throughput curve.
type FigureSpec struct {
	// ID is the experiment identifier, e.g. "figure13".
	ID string
	// Title describes the paper artifact.
	Title string
	// Claim is the paper's qualitative finding the figure supports.
	Claim string
	// NewTopology constructs the network.
	NewTopology func() topology.Topology
	// Algorithms are registry names resolved against the topology.
	Algorithms []string
	// NewPattern builds the workload for the topology.
	NewPattern func(topology.Topology) traffic.Pattern
	// Rates is the injection-rate sweep in flits/node/cycle.
	Rates []float64
}

// Figures returns the four figures of Section 6 plus the uniform-hypercube
// comparison the text discusses without plotting.
func Figures() []FigureSpec {
	mesh16 := func() topology.Topology { return topology.NewMesh2D(16, 16) }
	cube8 := func() topology.Topology { return topology.NewHypercube(8) }
	meshAlgs := []string{"xy", "west-first", "north-last", "negative-first"}
	cubeAlgs := []string{"e-cube", "p-cube", "abonf", "abopl"}
	meshRates := []float64{0.01, 0.02, 0.03, 0.04, 0.05, 0.06, 0.07, 0.08, 0.09, 0.10, 0.12}
	cubeRates := []float64{0.02, 0.05, 0.08, 0.12, 0.16, 0.20, 0.25, 0.30, 0.40, 0.50}
	uniform := func(t topology.Topology) traffic.Pattern { return traffic.Uniform{Topo: t} }
	return []FigureSpec{
		{
			ID:          "figure13",
			Title:       "Uniform traffic in a 16x16 mesh",
			Claim:       "nonadaptive xy has lower latencies at high throughputs than the partially adaptive algorithms; all perform alike at low throughputs",
			NewTopology: mesh16, Algorithms: meshAlgs, NewPattern: uniform, Rates: meshRates,
		},
		{
			ID:          "figure14",
			Title:       "Matrix-transpose traffic in a 16x16 mesh",
			Claim:       "the partially adaptive algorithms have lower latencies, especially at high throughputs, and sustain higher throughput than xy",
			NewTopology: mesh16, Algorithms: meshAlgs,
			NewPattern: func(t topology.Topology) traffic.Pattern {
				return traffic.NewMeshTranspose(t.(*topology.Mesh))
			},
			Rates: meshRates,
		},
		{
			ID:          "figure15",
			Title:       "Matrix-transpose traffic in a binary 8-cube",
			Claim:       "the partially adaptive algorithms sustain roughly twice the throughput of e-cube",
			NewTopology: cube8, Algorithms: cubeAlgs,
			NewPattern: func(t topology.Topology) traffic.Pattern {
				return traffic.NewHypercubeTranspose(t.(*topology.Hypercube))
			},
			Rates: cubeRates,
		},
		{
			ID:          "figure16",
			Title:       "Reverse-flip traffic in a binary 8-cube",
			Claim:       "the partially adaptive algorithms sustain roughly four times the throughput of e-cube; their sustained throughput is the hypercube's best, about 50% above e-cube with uniform traffic",
			NewTopology: cube8, Algorithms: cubeAlgs,
			NewPattern: func(t topology.Topology) traffic.Pattern {
				return traffic.ReverseFlip{Cube: t.(*topology.Hypercube)}
			},
			Rates: cubeRates,
		},
		{
			ID:          "uniform-cube",
			Title:       "Uniform traffic in a binary 8-cube (discussed in the text)",
			Claim:       "nonadaptive e-cube outperforms the partially adaptive algorithms at high load under uniform traffic",
			NewTopology: cube8, Algorithms: cubeAlgs, NewPattern: uniform, Rates: cubeRates,
		},
	}
}

// FigureByID finds a figure spec by its ID, searching the paper figures
// and the extension experiments.
func FigureByID(id string) (FigureSpec, bool) {
	for _, f := range AllFigures() {
		if f.ID == id {
			return f, true
		}
	}
	return FigureSpec{}, false
}

// FigureResult holds the sweep results of one figure, one series per
// algorithm.
type FigureResult struct {
	Spec   FigureSpec
	Series map[string][]Result
}

// MaxSustainable reports the highest sustained throughput (flits/us) of a
// series and the injection rate it occurred at.
func MaxSustainable(series []Result) (rate, throughput float64) {
	for _, r := range series {
		if r.Sustainable && r.ThroughputFlitsPerUs > throughput {
			throughput = r.ThroughputFlitsPerUs
			rate = r.InjectionRate
		}
	}
	return rate, throughput
}

// Table renders the figure's series as the latency-versus-throughput rows
// the paper plots, followed by a sustainable-throughput summary.
func (fr FigureResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", fr.Spec.ID, fr.Spec.Title)
	fmt.Fprintf(&b, "paper: %s\n\n", fr.Spec.Claim)
	algs := append([]string(nil), fr.Spec.Algorithms...)
	fmt.Fprintf(&b, "%-8s", "rate")
	for _, a := range algs {
		fmt.Fprintf(&b, " | %27s", a)
	}
	fmt.Fprintf(&b, "\n%-8s", "")
	for range algs {
		fmt.Fprintf(&b, " | %12s %8s %5s", "thr flits/us", "lat us", "sust")
	}
	b.WriteString("\n")
	for i := range fr.Spec.Rates {
		fmt.Fprintf(&b, "%-8.3f", fr.Spec.Rates[i])
		for _, a := range algs {
			r := fr.Series[a][i]
			sust := " "
			if r.Sustainable {
				sust = "yes"
			}
			fmt.Fprintf(&b, " | %12.1f %8.2f %5s", r.ThroughputFlitsPerUs, r.AvgLatencyUs, sust)
		}
		b.WriteString("\n")
	}
	b.WriteString("\nmax sustainable throughput:\n")
	type knee struct {
		alg  string
		rate float64
		thr  float64
	}
	knees := make([]knee, 0, len(algs))
	for _, a := range algs {
		r, thr := MaxSustainable(fr.Series[a])
		knees = append(knees, knee{a, r, thr})
	}
	sort.Slice(knees, func(i, j int) bool { return knees[i].thr > knees[j].thr })
	for _, k := range knees {
		fmt.Fprintf(&b, "  %-16s %8.1f flits/us (at rate %.3f)\n", k.alg, k.thr, k.rate)
	}
	return b.String()
}
