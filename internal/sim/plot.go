package sim

import (
	"fmt"
	"math"
	"strings"
)

// Plot renders the figure's latency-versus-throughput curves as an ASCII
// chart in the orientation the paper uses: throughput (flits/us) on the x
// axis, average latency (us) on the y axis. Unsustainable points are still
// plotted — they trace the characteristic upward bend at saturation.
func (fr FigureResult) Plot(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	symbols := []byte{'x', 'o', '+', '*', '#', '@'}
	maxThr, maxLat := 0.0, 0.0
	for _, series := range fr.Series {
		for _, r := range series {
			maxThr = math.Max(maxThr, r.ThroughputFlitsPerUs)
			maxLat = math.Max(maxLat, r.AvgLatencyUs)
		}
	}
	if maxThr == 0 || maxLat == 0 {
		return "(no data)\n"
	}
	// Cap the latency axis: deep saturation dwarfs the interesting knee.
	latCap := maxLat
	if latCap > 400 {
		latCap = 400
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for ai, alg := range fr.Spec.Algorithms {
		sym := symbols[ai%len(symbols)]
		for _, r := range fr.Series[alg] {
			x := int(r.ThroughputFlitsPerUs / maxThr * float64(width-1))
			lat := math.Min(r.AvgLatencyUs, latCap)
			y := height - 1 - int(lat/latCap*float64(height-1))
			if x < 0 || x >= width || y < 0 || y >= height {
				continue
			}
			grid[y][x] = sym
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — latency (us, up to %.0f) vs throughput (flits/us, up to %.0f)\n", fr.Spec.ID, latCap, maxThr)
	for _, row := range grid {
		fmt.Fprintf(&b, "  |%s\n", row)
	}
	fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&b, "   legend:")
	for ai, alg := range fr.Spec.Algorithms {
		fmt.Fprintf(&b, " %c=%s", symbols[ai%len(symbols)], alg)
	}
	b.WriteString("\n")
	return b.String()
}
