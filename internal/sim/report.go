package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"turnmodel/internal/fault"
)

// ReportSchemaVersion identifies the JSON layout of Report. Every bump so
// far only added fields, so ReadReport accepts versions 1 through this one
// and rejects anything newer or unknown; bump it on any incompatible
// change, document the migration in docs/sweeps.md, and regenerate the
// golden fixture (see docs/testing.md).
//
// v2: points may carry a "metrics" snapshot (per-channel utilization,
// latency percentiles, blocked cycles, occupancy trace) when the plan ran
// with metrics collection on, and the config echoes the "metrics" flag.
// See docs/metrics.md.
//
// v3: points carry delivery accounting under faults and recovery —
// "delivered", "dropped", "aborted", "retried", "delivered_fraction",
// "fault_events" — and the config echoes the fault workload
// ("fault_rate", "fault_repair", "static_faults", "recovery"). Metrics
// snapshots gain the matching window counters. See docs/faults.md.
//
// v4 (this version): points carry fault-aware routing accounting —
// "masked_faults", "misroute_hops" — and the config echoes the policy
// ("fault_routing", "fault_radius", "misroute_limit"). See
// docs/fault-routing.md.
const ReportSchemaVersion = 4

// Report is the machine-readable record of one Runner execution: the
// configuration that produced it, every per-point Result with its seed and
// wall-clock time, and run-wide totals. It is what `turnsweep -json`
// writes alongside the human-readable tables and what `turnserved` serves
// for completed jobs.
type Report struct {
	SchemaVersion int            `json:"schema_version"`
	Generator     string         `json:"generator"`
	Config        ReportConfig   `json:"config"`
	Figures       []FigureReport `json:"figures"`
	Totals        ReportTotals   `json:"totals"`
}

// ReportConfig echoes the plan so a report is reproducible on its own.
type ReportConfig struct {
	WarmupCycles  int64    `json:"warmup_cycles"`
	MeasureCycles int64    `json:"measure_cycles"`
	Seed          int64    `json:"seed"`
	Jobs          int      `json:"jobs"`
	Metrics       bool     `json:"metrics"`
	FigureIDs     []string `json:"figure_ids"`
	// The fault workload and recovery policy the plan ran under (schema
	// v3); all zero for fault-free plans.
	FaultRate    float64 `json:"fault_rate,omitempty"`
	FaultRepair  int64   `json:"fault_repair,omitempty"`
	StaticFaults int     `json:"static_faults,omitempty"`
	Recovery     bool    `json:"recovery,omitempty"`
	// The fault-aware routing policy the plan ran under (schema v4);
	// all zero when routing was fault-oblivious.
	FaultRouting  string `json:"fault_routing,omitempty"`
	FaultRadius   int    `json:"fault_radius,omitempty"`
	MisrouteLimit int    `json:"misroute_limit,omitempty"`
}

// ReportTotals summarizes the whole run. CPUMillis is the sum of per-job
// wall clocks, so CPUMillis/WallMillis is the average number of in-flight
// jobs (pool occupancy) — an upper bound on the achieved speedup, reached
// only when the workers do not contend for cores.
type ReportTotals struct {
	JobsRun    int     `json:"jobs_run"`
	Workers    int     `json:"workers"`
	WallMillis float64 `json:"wall_ms"`
	CPUMillis  float64 `json:"cpu_ms"`
}

// FigureReport is one figure's sweep: identity, the claim it tests, and
// one series per algorithm in the spec's order.
type FigureReport struct {
	ID       string         `json:"id"`
	Title    string         `json:"title"`
	Claim    string         `json:"claim"`
	Topology string         `json:"topology"`
	Pattern  string         `json:"pattern"`
	Rates    []float64      `json:"rates"`
	Series   []SeriesReport `json:"series"`
}

// SeriesReport is one algorithm's sweep across the figure's rates.
type SeriesReport struct {
	Algorithm string        `json:"algorithm"`
	Points    []PointReport `json:"points"`
}

// PointReport is one simulated (figure, algorithm, rate) point: the full
// Result plus the derived seed that produced it and its wall-clock cost.
type PointReport struct {
	Result
	Seed       int64   `json:"seed"`
	WallMillis float64 `json:"wall_ms"`
}

// buildReport assembles the Report from the Runner's indexed figure
// storage. jobsRun counts every point of the run (including resilience
// cells, when the options mixed them in).
func buildReport(p Options, workers, jobsRun int, totalWall time.Duration,
	results [][][]Result, walls [][][]time.Duration, seeds [][][]int64) *Report {
	cfg := ReportConfig{
		WarmupCycles:  p.WarmupCycles,
		MeasureCycles: p.MeasureCycles,
		Seed:          p.Seed,
		Jobs:          workers,
		Metrics:       p.Metrics,
		FigureIDs:     make([]string, 0, len(p.Specs)),
		FaultRate:     p.FaultPlan.Rate,
		FaultRepair:   p.FaultPlan.Repair,
		StaticFaults:  len(p.FaultPlan.Static),
		Recovery:      p.Recovery.Enabled,
	}
	if p.FaultRouting.Enabled() {
		pol := p.FaultRouting.WithDefaults()
		cfg.FaultRouting = pol.Visibility.String()
		if pol.Visibility == fault.VisibilityKHop {
			cfg.FaultRadius = pol.Radius
		}
		cfg.MisrouteLimit = pol.MisrouteLimit
	}
	rep := &Report{
		SchemaVersion: ReportSchemaVersion,
		Generator:     "turnmodel sweep runner",
		Figures:       make([]FigureReport, 0, len(p.Specs)),
	}
	var cpu time.Duration
	for si, spec := range p.Specs {
		cfg.FigureIDs = append(cfg.FigureIDs, spec.ID)
		topo := spec.NewTopology()
		fig := FigureReport{
			ID:       spec.ID,
			Title:    spec.Title,
			Claim:    spec.Claim,
			Topology: topo.Name(),
			Pattern:  spec.NewPattern(topo).Name(),
			Rates:    append([]float64(nil), spec.Rates...),
			Series:   make([]SeriesReport, 0, len(spec.Algorithms)),
		}
		for ai, name := range spec.Algorithms {
			series := SeriesReport{Algorithm: name, Points: make([]PointReport, 0, len(spec.Rates))}
			for ri := range spec.Rates {
				cpu += walls[si][ai][ri]
				series.Points = append(series.Points, PointReport{
					Result:     results[si][ai][ri],
					Seed:       seeds[si][ai][ri],
					WallMillis: float64(walls[si][ai][ri]) / float64(time.Millisecond),
				})
			}
			fig.Series = append(fig.Series, series)
		}
		rep.Figures = append(rep.Figures, fig)
	}
	rep.Config = cfg
	rep.Totals = ReportTotals{
		JobsRun:    jobsRun,
		Workers:    workers,
		WallMillis: float64(totalWall) / float64(time.Millisecond),
		CPUMillis:  float64(cpu) / float64(time.Millisecond),
	}
	return rep
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ReadReport decodes a JSON report and verifies its schema version.
// Reports written by older turnmodel revisions (schema versions 1 through
// 3) still parse: every schema bump so far only added fields, so an old
// report decodes with the newer fields at their zero values and
// SchemaVersion states which fields are meaningful. Versions this build
// does not know (0, negative, or newer than ReportSchemaVersion) are
// rejected, as is trailing data after the document — a report that
// travelled over HTTP and got concatenated with a second document or
// truncated mid-stream must not parse as if it were whole.
func ReadReport(rd io.Reader) (*Report, error) {
	dec := json.NewDecoder(rd)
	var rep Report
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("sim: decoding report: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("sim: trailing data after report document")
	}
	if rep.SchemaVersion < 1 || rep.SchemaVersion > ReportSchemaVersion {
		return nil, fmt.Errorf("sim: report schema version %d, want 1..%d", rep.SchemaVersion, ReportSchemaVersion)
	}
	return &rep, nil
}
