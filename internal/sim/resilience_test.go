package sim

import (
	"reflect"
	"strings"
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// quickResilience is a scaled-down resilience spec: a small mesh, two
// algorithms, and fault rates high enough that faults, aborts and drops
// all happen inside short windows.
func quickResilience() ResilienceSpec {
	return ResilienceSpec{
		ID:            "quick-resilience",
		Title:         "scaled-down resilience sweep for tests",
		Claim:         "test fixture",
		NewTopology:   func() topology.Topology { return topology.NewMesh2D(8, 8) },
		Algorithms:    []string{"xy", "west-first"},
		NewPattern:    func(t topology.Topology) traffic.Pattern { return traffic.Uniform{Topo: t} },
		InjectionRate: 0.04,
		FaultRates:    []float64{0, 1e-6, 4e-6},
	}
}

func TestResilienceCatalog(t *testing.T) {
	figs := ResilienceFigures()
	if len(figs) < 2 {
		t.Fatalf("want at least 2 resilience figures, have %d", len(figs))
	}
	seen := map[string]bool{}
	for _, s := range figs {
		if seen[s.ID] {
			t.Errorf("duplicate resilience ID %q", s.ID)
		}
		seen[s.ID] = true
		if len(s.Algorithms) < 2 || len(s.FaultRates) < 2 {
			t.Errorf("%s: degenerate spec (%d algorithms, %d rates)", s.ID, len(s.Algorithms), len(s.FaultRates))
		}
		if s.FaultRates[0] != 0 {
			t.Errorf("%s: first fault rate is %g, want 0 (the fault-free baseline)", s.ID, s.FaultRates[0])
		}
		got, ok := ResilienceByID(s.ID)
		if !ok || got.ID != s.ID {
			t.Errorf("ResilienceByID(%q) = %v, %v", s.ID, got.ID, ok)
		}
	}
	if _, ok := ResilienceByID("no-such-figure"); ok {
		t.Error("ResilienceByID accepted an unknown ID")
	}
}

// TestResilienceDeterministicAcrossJobs pins the bit-identical guarantee:
// the same spec and seed produce deeply equal results and tables for any
// worker count.
func TestResilienceDeterministicAcrossJobs(t *testing.T) {
	spec := quickResilience()
	serial, err := runResilience(spec, 400, 1200, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := runResilience(spec, 400, 1200, 3, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.Series, parallel.Series) {
		t.Errorf("series differ between 1 and 6 workers:\n%+v\n%+v", serial.Series, parallel.Series)
	}
	if serial.Table() != parallel.Table() {
		t.Errorf("tables differ:\n%s\n%s", serial.Table(), parallel.Table())
	}
}

// TestResilienceSweepAccounting checks the sweep end to end on a small
// fixture: no run deadlocks under recovery, the fault-free baseline drops
// nothing, faulted cells see fault events, and every delivered fraction
// is a valid probability.
func TestResilienceSweepAccounting(t *testing.T) {
	spec := quickResilience()
	rr, err := runResilience(spec, 1000, 6000, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range spec.Algorithms {
		series := rr.Series[alg]
		if len(series) != len(spec.FaultRates) {
			t.Fatalf("%s: %d points, want %d", alg, len(series), len(spec.FaultRates))
		}
		for ri, res := range series {
			if res.Deadlocked {
				t.Errorf("%s at rate %g: deadlocked under recovery", alg, spec.FaultRates[ri])
			}
			if res.DeliveredFraction < 0 || res.DeliveredFraction > 1 {
				t.Errorf("%s at rate %g: delivered fraction %g", alg, spec.FaultRates[ri], res.DeliveredFraction)
			}
			if res.Delivered <= 0 {
				t.Errorf("%s at rate %g: delivered %d packets", alg, spec.FaultRates[ri], res.Delivered)
			}
		}
		if series[0].Dropped != 0 || series[0].FaultEvents != 0 {
			t.Errorf("%s fault-free baseline: dropped=%d faults=%d, want 0/0", alg, series[0].Dropped, series[0].FaultEvents)
		}
		last := series[len(series)-1]
		if last.FaultEvents == 0 {
			t.Errorf("%s at the highest rate: no fault events; sweep exercised nothing", alg)
		}
	}
	// The paper's qualitative claim on this fixture: xy has exactly one
	// path per pair, so permanent faults cost it more deliveries than the
	// adaptive algorithm. The seeds are fixed, so this is deterministic.
	last := len(spec.FaultRates) - 1
	if xy, wf := rr.Series["xy"][last], rr.Series["west-first"][last]; xy.DeliveredFraction >= wf.DeliveredFraction {
		t.Errorf("xy delivered %.4f >= west-first %.4f at the highest fault rate; adaptivity should win",
			xy.DeliveredFraction, wf.DeliveredFraction)
	}
	table := rr.Table()
	for _, want := range []string{"quick-resilience", "deliv%", "xy", "west-first", "delivered fraction"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

// TestRunPlanFaultDeterminism extends the parallel-matches-serial
// guarantee to faulted plans with metrics collection: fault histories are
// a pure function of job identity, so worker count changes nothing —
// including the metrics snapshots' window counters.
func TestRunPlanFaultDeterminism(t *testing.T) {
	mk := func(jobs int) Plan {
		p := quickPlan(jobs, nil)
		p.Metrics = true
		p.FaultPlan = fault.Plan{Rate: 2e-6, Repair: 400}
		p.Recovery = fault.Recovery{Enabled: true, StallCycles: 300}
		return p
	}
	serial, serialRep, err := runPlan(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, parallelRep, err := runPlan(mk(8))
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, serial, parallel)
	for si := range serialRep.Figures {
		for ai := range serialRep.Figures[si].Series {
			a, b := serialRep.Figures[si].Series[ai], parallelRep.Figures[si].Series[ai]
			for pi := range a.Points {
				// WallMillis is wall-clock and legitimately differs;
				// everything measured must not.
				if !reflect.DeepEqual(a.Points[pi].Result, b.Points[pi].Result) || a.Points[pi].Seed != b.Points[pi].Seed {
					t.Errorf("figure %s series %s point %d: report results differ",
						serialRep.Figures[si].ID, a.Algorithm, pi)
				}
			}
		}
	}
	if serialRep.Config.FaultRate != 2e-6 || !serialRep.Config.Recovery {
		t.Errorf("report config does not echo the fault workload: %+v", serialRep.Config)
	}
}

// TestRunPlanFaultFreeMatchesBaseline pins the archived tables: a plan
// with an empty fault plan and recovery off must produce byte-identical
// tables to one that predates the fault subsystem entirely (the zero
// value of the new fields changes nothing).
func TestRunPlanFaultFreeMatchesBaseline(t *testing.T) {
	base, _, err := runPlan(quickPlan(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	withZero := quickPlan(4, nil)
	withZero.FaultPlan = fault.Plan{}
	withZero.Recovery = fault.Recovery{}
	again, _, err := runPlan(withZero)
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, base, again)
	for _, fr := range base {
		for alg, series := range fr.Series {
			for _, res := range series {
				if res.Dropped != 0 || res.Aborted != 0 || res.Retried != 0 || res.FaultEvents != 0 {
					t.Errorf("%s/%s: fault-free run has fault accounting %+v", fr.Spec.ID, alg, res)
				}
				if res.DeliveredFraction != 1 {
					t.Errorf("%s/%s: fault-free delivered fraction %g, want 1", fr.Spec.ID, alg, res.DeliveredFraction)
				}
			}
		}
	}
}
