package sim

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReportContents(t *testing.T) {
	plan := quickPlan(2, nil)
	frs, rep, err := runPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schema version %d", rep.SchemaVersion)
	}
	if rep.Config.Seed != plan.Seed || rep.Config.WarmupCycles != plan.WarmupCycles ||
		rep.Config.MeasureCycles != plan.MeasureCycles || rep.Config.Jobs != 2 {
		t.Errorf("config echo wrong: %+v", rep.Config)
	}
	if !reflect.DeepEqual(rep.Config.FigureIDs, []string{"figure13", "extension-octagonal"}) {
		t.Errorf("figure ids = %v", rep.Config.FigureIDs)
	}
	if len(rep.Figures) != len(frs) {
		t.Fatalf("%d figures in report, %d results", len(rep.Figures), len(frs))
	}
	for fi, fig := range rep.Figures {
		spec := plan.Specs[fi]
		if fig.ID != spec.ID || fig.Topology == "" || fig.Pattern == "" {
			t.Errorf("figure %d identity incomplete: %+v", fi, fig)
		}
		if len(fig.Series) != len(spec.Algorithms) {
			t.Fatalf("%s: %d series", fig.ID, len(fig.Series))
		}
		for si, series := range fig.Series {
			name := spec.Algorithms[si]
			if series.Algorithm != name {
				t.Errorf("%s: series %d is %q, want %q (order must follow the spec)", fig.ID, si, series.Algorithm, name)
			}
			for pi, pt := range series.Points {
				if pt.Result != frs[fi].Series[name][pi] {
					t.Errorf("%s/%s point %d diverges from FigureResult", fig.ID, name, pi)
				}
				if pt.Seed != PairedSeed(plan.Seed, fig.ID, name, pi) {
					t.Errorf("%s/%s point %d seed = %d", fig.ID, name, pi, pt.Seed)
				}
				if pt.WallMillis <= 0 {
					t.Errorf("%s/%s point %d has no timing", fig.ID, name, pi)
				}
			}
		}
	}
	if rep.Totals.WallMillis <= 0 || rep.Totals.CPUMillis <= 0 {
		t.Errorf("totals lack timing: %+v", rep.Totals)
	}
	if rep.Totals.JobsRun != 2*2+2*2 {
		t.Errorf("jobs run = %d", rep.Totals.JobsRun)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	_, rep, err := runPlan(quickPlan(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema_version": 4`, `"figure_ids"`, `"metrics"`, `"throughput_flits_per_us"`,
		`"avg_latency_us"`, `"sustainable"`, `"wall_ms"`, `"seed"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip diverged:\n%+v\n%+v", rep, back)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema_version": 99}`)); err == nil {
		t.Error("schema version 99 accepted")
	}
	if _, err := ReadReport(strings.NewReader(`{"schema_version": 0}`)); err == nil {
		t.Error("schema version 0 accepted")
	}
	if _, err := ReadReport(strings.NewReader(`{"generator": "x"}`)); err == nil {
		t.Error("report without schema version accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}

// TestReadReportRejectsTrailingGarbage: a report followed by anything but
// whitespace must not parse. json.Decoder stops at the end of the first
// document, so before this check a concatenation of two reports — or a
// report with a stray diagnostic line appended by a broken pipe — silently
// decoded as the first document alone.
func TestReadReportRejectsTrailingGarbage(t *testing.T) {
	_, rep, err := runPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	var doc bytes.Buffer
	if err := rep.WriteJSON(&doc); err != nil {
		t.Fatal(err)
	}
	for _, trailer := range []string{
		"{}", doc.String(), "null", "garbage", "[1,2]", `"x"`, "0",
	} {
		if _, err := ReadReport(strings.NewReader(doc.String() + trailer)); err == nil {
			t.Errorf("report with trailer %.20q accepted", trailer)
		}
	}
	// Trailing whitespace is what WriteJSON itself emits (Encoder appends a
	// newline); it must keep parsing.
	for _, ws := range []string{"", "\n", "\n\n  \t\n"} {
		if _, err := ReadReport(strings.NewReader(doc.String() + ws)); err != nil {
			t.Errorf("report with whitespace trailer %q rejected: %v", ws, err)
		}
	}
}

// goldenV4Report produces the deterministic report behind
// testdata/report_v4.json: quickPlan serially, with the wall-clock fields
// (the only run-to-run variation) zeroed. Regenerate the fixture with
// UPDATE_GOLDEN=1 go test ./internal/sim -run TestReportGoldenV4
// whenever the schema changes on purpose.
func goldenV4Report(t *testing.T) *Report {
	t.Helper()
	_, rep, err := runPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	rep.Totals.WallMillis, rep.Totals.CPUMillis = 0, 0
	for fi := range rep.Figures {
		for si := range rep.Figures[fi].Series {
			pts := rep.Figures[fi].Series[si].Points
			for pi := range pts {
				pts[pi].WallMillis = 0
			}
		}
	}
	return rep
}

// TestReportGoldenV4 pins the schema-v4 wire format byte for byte: a
// fresh run marshals exactly to the committed fixture, and the fixture
// survives unmarshal -> remarshal unchanged. Any accidental field rename,
// reorder, omitempty change, or indentation drift fails here before it
// breaks downstream consumers of `turnsweep -json`.
func TestReportGoldenV4(t *testing.T) {
	golden := filepath.Join("testdata", "report_v4.json")
	rep := goldenV4Report(t)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("fresh report diverges from %s (rerun with UPDATE_GOLDEN=1 if the change is intentional)\ngot:\n%s\nwant:\n%s",
			golden, buf.Bytes(), want)
	}

	back, err := ReadReport(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := back.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Errorf("unmarshal -> remarshal of %s is not byte-identical\ngot:\n%s", golden, again.Bytes())
	}
}

// TestReadReportBackwardCompat feeds ReadReport reports written by the
// v1-v3 revisions of the schema (committed as testdata fixtures). Every
// bump only added fields, so old reports must still parse, keep their
// declared version, and land their data in the right places.
func TestReadReportBackwardCompat(t *testing.T) {
	for _, tc := range []struct {
		version int
		file    string
	}{
		{1, "report_v1.json"},
		{2, "report_v2.json"},
		{3, "report_v3.json"},
	} {
		f, err := os.Open(filepath.Join("testdata", tc.file))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := ReadReport(f)
		f.Close()
		if err != nil {
			t.Errorf("v%d report rejected: %v", tc.version, err)
			continue
		}
		if rep.SchemaVersion != tc.version {
			t.Errorf("%s: schema version %d, want %d", tc.file, rep.SchemaVersion, tc.version)
		}
		if len(rep.Figures) == 0 || len(rep.Figures[0].Series) == 0 || len(rep.Figures[0].Series[0].Points) == 0 {
			t.Errorf("%s: no points decoded", tc.file)
			continue
		}
		pt := rep.Figures[0].Series[0].Points[0]
		if pt.Result.Algorithm == "" || pt.Result.ThroughputFlitsPerUs <= 0 {
			t.Errorf("%s: point did not decode: %+v", tc.file, pt)
		}
		if tc.version < 3 && (rep.Config.FaultRate != 0 || rep.Config.Recovery) {
			t.Errorf("%s: pre-v3 report grew fault config: %+v", tc.file, rep.Config)
		}
		if tc.version < 4 && rep.Config.FaultRouting != "" {
			t.Errorf("%s: pre-v4 report grew fault-routing config: %+v", tc.file, rep.Config)
		}
	}
}
