package sim

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestReportContents(t *testing.T) {
	plan := quickPlan(2, nil)
	frs, rep, err := RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SchemaVersion != ReportSchemaVersion {
		t.Errorf("schema version %d", rep.SchemaVersion)
	}
	if rep.Config.Seed != plan.Seed || rep.Config.WarmupCycles != plan.WarmupCycles ||
		rep.Config.MeasureCycles != plan.MeasureCycles || rep.Config.Jobs != 2 {
		t.Errorf("config echo wrong: %+v", rep.Config)
	}
	if !reflect.DeepEqual(rep.Config.FigureIDs, []string{"figure13", "extension-octagonal"}) {
		t.Errorf("figure ids = %v", rep.Config.FigureIDs)
	}
	if len(rep.Figures) != len(frs) {
		t.Fatalf("%d figures in report, %d results", len(rep.Figures), len(frs))
	}
	for fi, fig := range rep.Figures {
		spec := plan.Specs[fi]
		if fig.ID != spec.ID || fig.Topology == "" || fig.Pattern == "" {
			t.Errorf("figure %d identity incomplete: %+v", fi, fig)
		}
		if len(fig.Series) != len(spec.Algorithms) {
			t.Fatalf("%s: %d series", fig.ID, len(fig.Series))
		}
		for si, series := range fig.Series {
			name := spec.Algorithms[si]
			if series.Algorithm != name {
				t.Errorf("%s: series %d is %q, want %q (order must follow the spec)", fig.ID, si, series.Algorithm, name)
			}
			for pi, pt := range series.Points {
				if pt.Result != frs[fi].Series[name][pi] {
					t.Errorf("%s/%s point %d diverges from FigureResult", fig.ID, name, pi)
				}
				if pt.Seed != PairedSeed(plan.Seed, fig.ID, name, pi) {
					t.Errorf("%s/%s point %d seed = %d", fig.ID, name, pi, pt.Seed)
				}
				if pt.WallMillis <= 0 {
					t.Errorf("%s/%s point %d has no timing", fig.ID, name, pi)
				}
			}
		}
	}
	if rep.Totals.WallMillis <= 0 || rep.Totals.CPUMillis <= 0 {
		t.Errorf("totals lack timing: %+v", rep.Totals)
	}
	if rep.Totals.JobsRun != 2*2+2*2 {
		t.Errorf("jobs run = %d", rep.Totals.JobsRun)
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	_, rep, err := RunPlan(quickPlan(4, nil))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"schema_version": 4`, `"figure_ids"`, `"metrics"`, `"throughput_flits_per_us"`,
		`"avg_latency_us"`, `"sustainable"`, `"wall_ms"`, `"seed"`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	back, err := ReadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, back) {
		t.Errorf("round trip diverged:\n%+v\n%+v", rep, back)
	}
}

func TestReadReportRejectsWrongSchema(t *testing.T) {
	if _, err := ReadReport(strings.NewReader(`{"schema_version": 99}`)); err == nil {
		t.Error("schema version 99 accepted")
	}
	if _, err := ReadReport(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage accepted")
	}
}
