package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"turnmodel/internal/fault"
	"turnmodel/internal/routing"
)

// SeedFunc derives the RNG seed of one (figure, algorithm, rate) job from
// the plan's base seed. A derivation must depend only on the job's
// identity — never on worker count or scheduling order — which is what
// makes a parallel sweep bit-identical to a serial one.
type SeedFunc func(base int64, figureID, algorithm string, rateIdx int) int64

// PairedSeed is the default derivation: base + rateIdx*7919, shared by
// every algorithm and figure at the same rate index. Sharing the random
// stream across the algorithms being compared is the classic
// common-random-numbers variance reduction — each curve of a figure sees
// the same arrival processes — and it reproduces Sweep's historical
// seeding, so the archived tables under docs/ regenerate byte-identically.
func PairedSeed(base int64, _, _ string, rateIdx int) int64 {
	return base + int64(rateIdx)*7919
}

// HashSeed derives a statistically independent stream per job by hashing
// the base seed, figure ID, algorithm name and rate index with FNV-1a.
// Use it when jobs must not share random streams, e.g. when averaging
// replicated runs of the same point.
func HashSeed(base int64, figureID, algorithm string, rateIdx int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(figureID))
	h.Write([]byte{0})
	h.Write([]byte(algorithm))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(rateIdx)))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// ProgressEvent reports one completed job to a Plan's Progress callback.
type ProgressEvent struct {
	// Done and Total count jobs across the whole plan.
	Done, Total int
	// Figure, Algorithm and Rate identify the job that just finished.
	Figure    string
	Algorithm string
	Rate      float64
	// JobWall is the job's own wall-clock time; Elapsed is the time since
	// the plan started.
	JobWall, Elapsed time.Duration
}

// Plan describes a batch of figure sweeps for RunPlan.
type Plan struct {
	// Specs are the figures to run, in output order.
	Specs []FigureSpec
	// WarmupCycles and MeasureCycles set the per-run windows; zero selects
	// the Run defaults (20000/40000).
	WarmupCycles, MeasureCycles int64
	// Seed is the base seed every job derives its own from.
	Seed int64
	// Jobs is the worker count. Values <= 0 select runtime.GOMAXPROCS(0);
	// 1 runs the jobs serially in the calling goroutine.
	Jobs int
	// Shards partitions every job's network into that many spatial
	// domains stepped in parallel (see RunParams.Shards). Point-level
	// (Jobs) and intra-point (Shards) parallelism compose: a plan uses up
	// to Jobs*Shards cores. Results are bit-identical at every value.
	Shards int
	// SeedFn derives per-job seeds; nil selects PairedSeed.
	SeedFn SeedFunc
	// Metrics attaches a metrics collector to every job, so each
	// PointReport's Result carries a Snapshot (channel utilization,
	// latency percentiles; see docs/metrics.md). The Result scalars and
	// table output are identical with or without it.
	Metrics bool
	// FaultPlan injects faults into every job (see fault.Plan). The
	// plan's Seed is salted with each job's derived seed, so fault
	// histories are a pure function of job identity (bit-identical for
	// any worker count) and, under PairedSeed, shared by the algorithms
	// being compared at the same rate index.
	FaultPlan fault.Plan
	// Recovery enables deadlock recovery in every job (see
	// fault.Recovery).
	Recovery fault.Recovery
	// FaultRouting enables in-network fault masking in every job (see
	// fault.RoutingPolicy); ignored when FaultPlan is empty.
	FaultRouting fault.RoutingPolicy
	// Progress, when non-nil, is called after every completed job. Calls
	// are serialized; the callback must not invoke RunPlan reentrantly on
	// the same Plan's state.
	Progress func(ProgressEvent)
}

// job indexes one (figure, algorithm, rate) simulation of a plan.
type job struct {
	spec, alg, rate int
}

// RunPlan flattens the plan's figures into independent (figure, algorithm,
// rate) simulations, fans them out over a bounded worker pool and
// reassembles the FigureResults in spec order. Every worker builds its own
// topology, algorithm and pattern, and every job's seed is a pure function
// of its identity, so the results are bit-identical for any worker count.
// The returned Report carries the same results in JSON-ready form together
// with per-job wall-clock timings.
//
// An unknown algorithm name in any spec is reported as an error before any
// simulation runs.
func RunPlan(p Plan) ([]FigureResult, *Report, error) {
	seedFn := p.SeedFn
	if seedFn == nil {
		seedFn = PairedSeed
	}
	workers := p.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Fail fast: resolve every algorithm against its topology up front so
	// a bad name is one deterministic error, not a race of partial work.
	var jobs []job
	for si, spec := range p.Specs {
		topo := spec.NewTopology()
		for ai, name := range spec.Algorithms {
			if _, err := routing.New(name, topo); err != nil {
				return nil, nil, fmt.Errorf("sim: figure %s: %w", spec.ID, err)
			}
			for ri := range spec.Rates {
				jobs = append(jobs, job{si, ai, ri})
			}
		}
	}
	if workers > len(jobs) && len(jobs) > 0 {
		workers = len(jobs)
	}

	// Indexed result storage: assembly order never depends on completion
	// order.
	results := make([][][]Result, len(p.Specs))
	walls := make([][][]time.Duration, len(p.Specs))
	seeds := make([][][]int64, len(p.Specs))
	for si, spec := range p.Specs {
		results[si] = make([][]Result, len(spec.Algorithms))
		walls[si] = make([][]time.Duration, len(spec.Algorithms))
		seeds[si] = make([][]int64, len(spec.Algorithms))
		for ai := range spec.Algorithms {
			results[si][ai] = make([]Result, len(spec.Rates))
			walls[si][ai] = make([]time.Duration, len(spec.Rates))
			seeds[si][ai] = make([]int64, len(spec.Rates))
		}
	}

	start := time.Now()
	var (
		mu   sync.Mutex
		done int
	)
	runOne := func(j job) {
		spec := p.Specs[j.spec]
		name := spec.Algorithms[j.alg]
		topo := spec.NewTopology()
		alg, err := routing.New(name, topo)
		if err != nil {
			// Validated above; a construction that fails only here would
			// be nondeterministic, so treat it as a programming error.
			panic(fmt.Sprintf("sim: figure %s: %v", spec.ID, err))
		}
		seed := seedFn(p.Seed, spec.ID, name, j.rate)
		fp := p.FaultPlan
		if !fp.Empty() {
			fp.Seed += seed
		}
		cfg := Config{
			Routing: alg,
			RunParams: RunParams{
				Pattern:       spec.NewPattern(topo),
				InjectionRate: spec.Rates[j.rate],
				WarmupCycles:  p.WarmupCycles,
				MeasureCycles: p.MeasureCycles,
				Seed:          seed,
				Metrics:       p.Metrics,
				FaultPlan:     fp,
				Recovery:      p.Recovery,
				FaultRouting:  p.FaultRouting,
				Shards:        p.Shards,
			},
		}
		jobStart := time.Now()
		res := Run(cfg)
		wall := time.Since(jobStart)

		mu.Lock()
		results[j.spec][j.alg][j.rate] = res
		walls[j.spec][j.alg][j.rate] = wall
		seeds[j.spec][j.alg][j.rate] = seed
		done++
		if p.Progress != nil {
			p.Progress(ProgressEvent{
				Done: done, Total: len(jobs),
				Figure: spec.ID, Algorithm: name, Rate: spec.Rates[j.rate],
				JobWall: wall, Elapsed: time.Since(start),
			})
		}
		mu.Unlock()
	}

	if workers <= 1 {
		// The serial degenerate case: same storage, same seeds, same
		// progress protocol, no goroutines.
		for _, j := range jobs {
			runOne(j)
		}
	} else {
		ch := make(chan job)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range ch {
					runOne(j)
				}
			}()
		}
		for _, j := range jobs {
			ch <- j
		}
		close(ch)
		wg.Wait()
	}
	totalWall := time.Since(start)

	out := make([]FigureResult, len(p.Specs))
	for si, spec := range p.Specs {
		fr := FigureResult{Spec: spec, Series: make(map[string][]Result, len(spec.Algorithms))}
		for ai, name := range spec.Algorithms {
			fr.Series[name] = results[si][ai]
		}
		out[si] = fr
	}
	report := buildReport(p, workers, len(jobs), totalWall, results, walls, seeds)
	return out, report, nil
}
