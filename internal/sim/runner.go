package sim

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"time"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
)

// SeedFunc derives the RNG seed of one (figure, algorithm, rate) job from
// the options' base seed. A derivation must depend only on the job's
// identity — never on worker count or scheduling order — which is what
// makes a parallel sweep bit-identical to a serial one.
type SeedFunc func(base int64, figureID, algorithm string, rateIdx int) int64

// PairedSeed is the default derivation: base + rateIdx*7919, shared by
// every algorithm and figure at the same rate index. Sharing the random
// stream across the algorithms being compared is the classic
// common-random-numbers variance reduction — each curve of a figure sees
// the same arrival processes — and it reproduces Sweep's historical
// seeding, so the archived tables under docs/ regenerate byte-identically.
func PairedSeed(base int64, _, _ string, rateIdx int) int64 {
	return base + int64(rateIdx)*7919
}

// HashSeed derives a statistically independent stream per job by hashing
// the base seed, figure ID, algorithm name and rate index with FNV-1a.
// Use it when jobs must not share random streams, e.g. when averaging
// replicated runs of the same point.
func HashSeed(base int64, figureID, algorithm string, rateIdx int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(figureID))
	h.Write([]byte{0})
	h.Write([]byte(algorithm))
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(int64(rateIdx)))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// ProgressEvent reports one completed job to the Progress callback.
type ProgressEvent struct {
	// Done and Total count jobs across the whole run.
	Done, Total int
	// Figure, Algorithm and Rate identify the job that just finished.
	Figure    string
	Algorithm string
	Rate      float64
	// JobWall is the job's own wall-clock time; Elapsed is the time since
	// the run started.
	JobWall, Elapsed time.Duration
}

// PointKind distinguishes the three kinds of points a Runner emits.
type PointKind string

const (
	// PointFigure is one (figure, algorithm, injection rate) sweep point.
	PointFigure PointKind = "figure"
	// PointResilience is one (resilience figure, algorithm, fault rate)
	// cell with recovery on.
	PointResilience PointKind = "resilience"
	// PointCompare is a resilience cell run under one of the
	// masking-versus-recovery modes (Mode names which).
	PointCompare PointKind = "resilience-compare"
)

// PointEvent is one completed simulation point, emitted through
// Options.OnPoint as workers finish — in completion order, which depends
// on scheduling. The indices identify where the point lands in the merged
// output, so consumers can reassemble deterministic results from a
// nondeterministic stream exactly as the Runner itself does. The JSON
// encoding is the wire form turnserved streams over SSE.
type PointEvent struct {
	Kind   PointKind `json:"kind"`
	Figure string    `json:"figure"`
	// Mode is the resilience-compare mode name; empty for other kinds.
	Mode      string `json:"mode,omitempty"`
	Algorithm string `json:"algorithm"`
	// RateIndex indexes Rates (figures) or FaultRates (resilience); Rate
	// is the value at that index.
	RateIndex int     `json:"rate_index"`
	Rate      float64 `json:"rate"`
	// Seed is the derived per-point seed (for resilience points, the cell
	// seed the fault plan's seed is also derived from).
	Seed int64 `json:"seed"`
	// Cached reports the point was served by Options.Cache without
	// simulating.
	Cached bool `json:"cached,omitempty"`
	// WallMillis is the point's wall-clock cost (microseconds-scale for
	// cache hits).
	WallMillis float64 `json:"wall_ms"`
	// Done and Total count completed points across the whole run at the
	// moment this event was emitted; events arrive with Done strictly
	// increasing 1..Total.
	Done  int `json:"done"`
	Total int `json:"total"`
	// Result is the point's full simulation result.
	Result Result `json:"result"`
}

// Options describes one Runner execution: which experiments to run, the
// shared run windows and seeding, the execution budget, and the streaming,
// caching and instrumentation hooks. The zero value of every optional
// field selects the historical behavior, so the archived tables regenerate
// byte-identically.
type Options struct {
	// Specs are the figure sweeps to run, in output order.
	Specs []FigureSpec
	// Resilience are the resilience sweeps to run, in output order, after
	// the figures. Each cell runs with deadlock recovery on and a fault
	// plan derived from the cell's rate index (see ResilienceSpec).
	Resilience []ResilienceSpec
	// CompareModes runs every Resilience spec once per ResilienceModes()
	// configuration (recovery / masking / recovery+masking) instead of
	// recovery-only, producing Outcome.Compares instead of
	// Outcome.Resilience.
	CompareModes bool
	// WarmupCycles and MeasureCycles set the per-run windows; zero selects
	// the Run defaults (20000/40000).
	WarmupCycles, MeasureCycles int64
	// Seed is the base seed every point derives its own from.
	Seed int64
	// Jobs is the worker count. Values <= 0 select runtime.GOMAXPROCS(0);
	// 1 runs the points serially in the calling goroutine.
	Jobs int
	// Shards partitions every point's network into that many spatial
	// domains stepped in parallel (see RunParams.Shards). Point-level
	// (Jobs) and intra-point (Shards) parallelism compose: a run uses up
	// to Jobs*Shards cores. Results are bit-identical at every value.
	Shards int
	// DisableEventSkip steps every point cycle by cycle instead of leaping
	// the clock over provably empty ones (see RunParams.DisableEventSkip).
	// Results are bit-identical either way.
	DisableEventSkip bool
	// SeedFn derives per-point seeds for figure sweeps; nil selects
	// PairedSeed. Resilience cells always use the paired derivation, which
	// shares fault histories across the algorithms and modes being
	// compared.
	SeedFn SeedFunc
	// Metrics attaches a metrics collector to every point, so each
	// Result carries a Snapshot (channel utilization, latency percentiles;
	// see docs/metrics.md). The Result scalars and table output are
	// identical with or without it.
	Metrics bool
	// FaultPlan injects faults into every figure point (see fault.Plan).
	// The plan's Seed is salted with each point's derived seed, so fault
	// histories are a pure function of point identity (bit-identical for
	// any worker count) and, under PairedSeed, shared by the algorithms
	// being compared at the same rate index. Resilience cells build their
	// own fault plans from their spec and ignore this field.
	FaultPlan fault.Plan
	// Recovery enables deadlock recovery in every figure point (see
	// fault.Recovery). Resilience cells manage recovery themselves.
	Recovery fault.Recovery
	// FaultRouting enables in-network fault masking in every figure point
	// (see fault.RoutingPolicy); ignored when FaultPlan is empty.
	// Resilience cells take their policy from the compare mode.
	FaultRouting fault.RoutingPolicy
	// Progress, when non-nil, is called after every completed point.
	// Calls are serialized.
	Progress func(ProgressEvent)
	// OnPoint, when non-nil, receives every completed point as workers
	// finish (completion order). Calls are serialized with Progress; the
	// callback must not block for long — it stalls the worker that
	// completed the point — and must not re-enter the Runner.
	OnPoint func(PointEvent)
	// Cache, when non-nil, is consulted before and updated after every
	// point (see RunCached). A hit skips the simulation entirely.
	Cache Cache
	// Probe, when non-nil, receives every simulation event of every point
	// actually simulated (see metrics.Probe). Cached points emit no
	// events — counting Tick events is how tests assert a run was served
	// from cache. Probes observe but never perturb, so Probe does not
	// enter cache keys.
	Probe metrics.Probe
}

// Plan is the former name of Options.
//
// Deprecated: use Options with NewRunner or RunSweep.
type Plan = Options

// unit indexes one point of a run. mode is -1 except for compare points.
type unit struct {
	kind            PointKind
	spec, mode, alg int
	rate            int
}

// Runner is the single execution entry point of the sim package: it
// flattens the Options' figures and resilience sweeps into independent
// points, fans them out over a bounded worker pool under a
// context.Context, streams each point as it completes, and merges the
// results deterministically. Every worker builds its own topology,
// algorithm and pattern, and every point's seed is a pure function of its
// identity, so the merged results — and the schema-v4 Report — are
// bit-identical for any worker count, shard count, cache state or
// completion order.
type Runner struct {
	opts   Options
	seedFn SeedFunc
	modes  []ResilienceMode
	units  []unit
}

// NewRunner validates the options and plans the run. An unknown algorithm
// name in any spec is reported here, before any simulation runs.
func NewRunner(opts Options) (*Runner, error) {
	r := &Runner{opts: opts, seedFn: opts.SeedFn}
	if r.seedFn == nil {
		r.seedFn = PairedSeed
	}
	if opts.CompareModes {
		r.modes = ResilienceModes()
	}
	// Fail fast: resolve every algorithm against its topology up front so
	// a bad name is one deterministic error, not a race of partial work.
	for si, spec := range opts.Specs {
		topo := spec.NewTopology()
		for ai, name := range spec.Algorithms {
			if _, err := routing.New(name, topo); err != nil {
				return nil, fmt.Errorf("sim: figure %s: %w", spec.ID, err)
			}
			for ri := range spec.Rates {
				r.units = append(r.units, unit{PointFigure, si, -1, ai, ri})
			}
		}
	}
	for si, spec := range opts.Resilience {
		topo := spec.NewTopology()
		for _, name := range spec.Algorithms {
			if _, err := routing.New(name, topo); err != nil {
				return nil, fmt.Errorf("sim: resilience %s: %w", spec.ID, err)
			}
		}
		if opts.CompareModes {
			for mi := range r.modes {
				for ai := range spec.Algorithms {
					for ri := range spec.FaultRates {
						r.units = append(r.units, unit{PointCompare, si, mi, ai, ri})
					}
				}
			}
		} else {
			for ai := range spec.Algorithms {
				for ri := range spec.FaultRates {
					r.units = append(r.units, unit{PointResilience, si, -1, ai, ri})
				}
			}
		}
	}
	return r, nil
}

// Total is the number of points the run will execute.
func (r *Runner) Total() int { return len(r.units) }

// Outcome is a completed run's merged output.
type Outcome struct {
	// Figures holds one FigureResult per Options.Specs entry, in order.
	Figures []FigureResult
	// Resilience holds one ResilienceResult per Options.Resilience entry
	// when CompareModes is off; Compares holds the per-mode comparison
	// when it is on.
	Resilience []ResilienceResult
	Compares   []ResilienceCompareResult
	// Report is the schema-v4 record of the figure sweeps — byte-identical
	// to the historical batch API's output for the same options. Nil when
	// Options.Specs is empty. Its totals count every point of the run,
	// including resilience cells.
	Report *Report
	// CachedPoints counts points served by Options.Cache.
	CachedPoints int
}

// unitConfig builds the simulation Config of one point and the identity
// part of its PointEvent. The derivations here are load-bearing: figure
// seeds come from SeedFn(base, figureID, algorithm, rateIdx) with the
// fault plan's seed salted by the point seed, and resilience cell seeds
// are base + rateIdx*7919 with the fault seed one above — exactly the
// historical derivations, which the archived tables and the cache's
// soundness both depend on.
func (r *Runner) unitConfig(u unit) (Config, PointEvent) {
	opts := r.opts
	switch u.kind {
	case PointFigure:
		spec := opts.Specs[u.spec]
		name := spec.Algorithms[u.alg]
		topo := spec.NewTopology()
		alg, err := routing.New(name, topo)
		if err != nil {
			// Validated in NewRunner; a construction that fails only here
			// would be nondeterministic, so treat it as a programming error.
			panic(fmt.Sprintf("sim: figure %s: %v", spec.ID, err))
		}
		seed := r.seedFn(opts.Seed, spec.ID, name, u.rate)
		fp := opts.FaultPlan
		if !fp.Empty() {
			fp.Seed += seed
		}
		cfg := Config{
			Routing: alg,
			RunParams: RunParams{
				Pattern:          spec.NewPattern(topo),
				InjectionRate:    spec.Rates[u.rate],
				WarmupCycles:     opts.WarmupCycles,
				MeasureCycles:    opts.MeasureCycles,
				Seed:             seed,
				Metrics:          opts.Metrics,
				FaultPlan:        fp,
				Recovery:         opts.Recovery,
				FaultRouting:     opts.FaultRouting,
				Probe:            opts.Probe,
				Shards:           opts.Shards,
				DisableEventSkip: opts.DisableEventSkip,
			},
		}
		return cfg, PointEvent{
			Kind: PointFigure, Figure: spec.ID, Algorithm: name,
			RateIndex: u.rate, Rate: spec.Rates[u.rate], Seed: seed,
		}
	case PointResilience, PointCompare:
		spec := opts.Resilience[u.spec]
		name := spec.Algorithms[u.alg]
		topo := spec.NewTopology()
		alg, err := routing.New(name, topo)
		if err != nil {
			panic(fmt.Sprintf("sim: resilience %s: %v", spec.ID, err))
		}
		cellSeed := opts.Seed + int64(u.rate)*7919
		cfg := Config{
			Routing: alg,
			RunParams: RunParams{
				Pattern:       spec.NewPattern(topo),
				InjectionRate: spec.InjectionRate,
				WarmupCycles:  opts.WarmupCycles,
				MeasureCycles: opts.MeasureCycles,
				Seed:          cellSeed,
				Metrics:       opts.Metrics,
				FaultPlan: fault.Plan{
					Rate:   spec.FaultRates[u.rate],
					Repair: spec.RepairDelay,
					Seed:   cellSeed + 1,
				},
				Recovery:         fault.Recovery{Enabled: true},
				Probe:            opts.Probe,
				Shards:           opts.Shards,
				DisableEventSkip: opts.DisableEventSkip,
			},
		}
		ev := PointEvent{
			Kind: u.kind, Figure: spec.ID, Algorithm: name,
			RateIndex: u.rate, Rate: spec.FaultRates[u.rate], Seed: cellSeed,
		}
		if u.kind == PointCompare {
			mode := r.modes[u.mode]
			ev.Mode = mode.Name
			cfg.Recovery = fault.Recovery{Enabled: mode.Recovery}
			cfg.FaultRouting = mode.FaultRouting
			if !mode.Recovery {
				// Without recovery, a packet with every permitted path dead
				// stalls forever; disable the fail-stop watchdog so the run
				// measures that honestly instead of aborting.
				cfg.WatchdogCycles = -1
			}
		}
		return cfg, ev
	}
	panic(fmt.Sprintf("sim: unknown point kind %q", u.kind))
}

// Run executes every point over the worker pool and assembles the merged
// Outcome. Cancelling the context stops the run at point granularity:
// no new point starts after cancellation, in-flight points finish (their
// OnPoint events still fire), and Run returns the context's error with a
// nil Outcome. Already-emitted PointEvents remain valid — a streaming
// consumer keeps everything completed before the cancel.
func (r *Runner) Run(ctx context.Context) (*Outcome, error) {
	opts := r.opts
	units := r.units
	workers := opts.Jobs
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(units) && len(units) > 0 {
		workers = len(units)
	}

	// Indexed result storage: assembly order never depends on completion
	// order.
	figRes := make([][][]Result, len(opts.Specs))
	figWall := make([][][]time.Duration, len(opts.Specs))
	figSeed := make([][][]int64, len(opts.Specs))
	for si, spec := range opts.Specs {
		figRes[si] = make([][]Result, len(spec.Algorithms))
		figWall[si] = make([][]time.Duration, len(spec.Algorithms))
		figSeed[si] = make([][]int64, len(spec.Algorithms))
		for ai := range spec.Algorithms {
			figRes[si][ai] = make([]Result, len(spec.Rates))
			figWall[si][ai] = make([]time.Duration, len(spec.Rates))
			figSeed[si][ai] = make([]int64, len(spec.Rates))
		}
	}
	resRes := make([][][]Result, len(opts.Resilience))
	cmpRes := make([][][][]Result, len(opts.Resilience))
	for si, spec := range opts.Resilience {
		if opts.CompareModes {
			cmpRes[si] = make([][][]Result, len(r.modes))
			for mi := range r.modes {
				cmpRes[si][mi] = make([][]Result, len(spec.Algorithms))
				for ai := range spec.Algorithms {
					cmpRes[si][mi][ai] = make([]Result, len(spec.FaultRates))
				}
			}
		} else {
			resRes[si] = make([][]Result, len(spec.Algorithms))
			for ai := range spec.Algorithms {
				resRes[si][ai] = make([]Result, len(spec.FaultRates))
			}
		}
	}

	start := time.Now()
	var (
		mu     sync.Mutex
		done   int
		cached int
	)
	runOne := func(u unit) {
		cfg, ev := r.unitConfig(u)
		jobStart := time.Now()
		res, hit := RunCached(cfg, opts.Cache)
		wall := time.Since(jobStart)
		ev.Result = res
		ev.Cached = hit
		ev.WallMillis = float64(wall) / float64(time.Millisecond)

		mu.Lock()
		switch u.kind {
		case PointFigure:
			figRes[u.spec][u.alg][u.rate] = res
			figWall[u.spec][u.alg][u.rate] = wall
			figSeed[u.spec][u.alg][u.rate] = ev.Seed
		case PointResilience:
			resRes[u.spec][u.alg][u.rate] = res
		case PointCompare:
			cmpRes[u.spec][u.mode][u.alg][u.rate] = res
		}
		done++
		if hit {
			cached++
		}
		ev.Done, ev.Total = done, len(units)
		if opts.Progress != nil {
			opts.Progress(ProgressEvent{
				Done: done, Total: len(units),
				Figure: ev.Figure, Algorithm: ev.Algorithm, Rate: ev.Rate,
				JobWall: wall, Elapsed: time.Since(start),
			})
		}
		if opts.OnPoint != nil {
			opts.OnPoint(ev)
		}
		mu.Unlock()
	}

	if workers <= 1 {
		// The serial degenerate case: same storage, same seeds, same
		// event protocol, no goroutines. Cancellation is checked between
		// points, matching the pool's point granularity.
		for _, u := range units {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			runOne(u)
		}
	} else {
		ch := make(chan unit)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for u := range ch {
					runOne(u)
				}
			}()
		}
	dispatch:
		for _, u := range units {
			select {
			case ch <- u:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(ch)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, err
		}
	}
	totalWall := time.Since(start)

	out := &Outcome{CachedPoints: cached}
	for si, spec := range opts.Specs {
		fr := FigureResult{Spec: spec, Series: make(map[string][]Result, len(spec.Algorithms))}
		for ai, name := range spec.Algorithms {
			fr.Series[name] = figRes[si][ai]
		}
		out.Figures = append(out.Figures, fr)
	}
	if len(opts.Specs) > 0 {
		out.Report = buildReport(opts, workers, len(units), totalWall, figRes, figWall, figSeed)
	}
	for si, spec := range opts.Resilience {
		if opts.CompareModes {
			rc := ResilienceCompareResult{
				Spec:   spec,
				Modes:  r.modes,
				Series: make(map[string]map[string][]Result, len(r.modes)),
			}
			for mi, mode := range r.modes {
				byAlg := make(map[string][]Result, len(spec.Algorithms))
				for ai, name := range spec.Algorithms {
					byAlg[name] = cmpRes[si][mi][ai]
				}
				rc.Series[mode.Name] = byAlg
			}
			out.Compares = append(out.Compares, rc)
		} else {
			rr := ResilienceResult{Spec: spec, Series: make(map[string][]Result, len(spec.Algorithms))}
			for ai, name := range spec.Algorithms {
				rr.Series[name] = resRes[si][ai]
			}
			out.Resilience = append(out.Resilience, rr)
		}
	}
	return out, nil
}

// RunSweep is the one-call convenience over NewRunner + Run.
func RunSweep(ctx context.Context, opts Options) (*Outcome, error) {
	r, err := NewRunner(opts)
	if err != nil {
		return nil, err
	}
	return r.Run(ctx)
}
