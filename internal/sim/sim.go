// Package sim is the experiment harness that reproduces the paper's
// Section 6 simulations: it drives the wormhole network simulator with
// Poisson message generation per processor, bimodal packet lengths (10 or
// 200 flits with equal probability), a warmup period and a measurement
// window, and reports the two figures of merit of the paper — average
// communication latency in microseconds and average sustained network
// throughput in flits delivered per microsecond.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/network"
	"turnmodel/internal/routing"
	"turnmodel/internal/stats"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// DefaultLengths are the paper's two packet sizes in flits; each message
// is one packet of either length with equal probability.
var DefaultLengths = []int{10, 200}

// RunParams are the run parameters shared by both simulator harnesses
// (Config for the physical-channel network, VCConfig for the
// virtual-channel one): workload, offered load, run windows, seeding and
// instrumentation. Both configs embed it, so the defaults live in one
// place.
type RunParams struct {
	// Pattern selects the workload.
	Pattern traffic.Pattern
	// InjectionRate is the offered load per processor in flits per
	// cycle. At the paper's 20 flits/us channel bandwidth, a rate of
	// 0.05 means each processor offers one flit per microsecond.
	InjectionRate float64
	// Lengths are the candidate packet lengths, chosen uniformly.
	// Defaults to DefaultLengths.
	Lengths []int
	// WarmupCycles and MeasureCycles bound the run. Defaults: 20000
	// warmup, 40000 measurement.
	WarmupCycles, MeasureCycles int64
	// Seed makes runs reproducible.
	Seed int64
	// WatchdogCycles is forwarded to the simulator (see network.Config).
	WatchdogCycles int64
	// FaultPlan injects channel faults into the run (static channels,
	// failed nodes, or a seeded random per-cycle failure process; see
	// fault.Plan). The zero plan is fault-free.
	FaultPlan fault.Plan
	// Recovery enables deadlock recovery in place of the fail-stop
	// watchdog (see fault.Recovery): stuck worms are aborted and
	// source-retried with backoff, and undeliverable packets are dropped
	// and accounted rather than wedging the run.
	Recovery fault.Recovery
	// FaultRouting enables in-network fault masking (see
	// fault.RoutingPolicy): routers filter candidate outputs they know
	// to be broken and may take bounded safe misroutes. Ignored when
	// FaultPlan is empty.
	FaultRouting fault.RoutingPolicy
	// Metrics attaches a metrics.Collector to the run: Result.Metrics
	// then carries the measurement-window Snapshot (channel utilization,
	// latency percentiles, blocked cycles, occupancy trace). Collection
	// does not perturb the simulation; the Result scalars are identical
	// either way.
	Metrics bool
	// MetricsOptions tunes the collector; the zero value selects the
	// defaults (see metrics.Options).
	MetricsOptions metrics.Options
	// Probe, when non-nil, additionally receives every simulation event
	// (combined with the collector via metrics.Tee when Metrics is set).
	Probe metrics.Probe
	// Shards partitions the simulated network into that many spatial
	// domains stepped in parallel (see network.Config.Shards and
	// docs/performance.md). Results are bit-identical at every shard
	// count; values <= 1 step serially. Intra-point parallelism composes
	// multiplicatively with Plan.Jobs — a sweep uses up to Jobs*Shards
	// cores — so split the machine between them (see docs/sweeps.md).
	Shards int
	// DisableEventSkip turns off event-driven cycle skipping (see
	// network.Config.DisableEventSkip and docs/performance.md): with it
	// set the run steps every cycle individually instead of leaping the
	// clock over provably empty ones. Like Shards it is an execution
	// strategy, not a model change — the Result is bit-identical either
	// way, so it never enters cache keys. Off by default (skipping on).
	DisableEventSkip bool
}

func (p RunParams) withDefaults() RunParams {
	if len(p.Lengths) == 0 {
		p.Lengths = DefaultLengths
	}
	if p.WarmupCycles == 0 {
		p.WarmupCycles = 20000
	}
	if p.MeasureCycles == 0 {
		p.MeasureCycles = 40000
	}
	return p
}

// instrument builds the probe to hand the simulator and, when Metrics is
// set, the collector whose snapshot the Result will carry.
func (p RunParams) instrument(topo topology.Topology) (metrics.Probe, *metrics.Collector) {
	if !p.Metrics {
		return p.Probe, nil
	}
	coll := metrics.NewCollector(topo, p.MetricsOptions)
	return metrics.Tee(coll, p.Probe), coll
}

// Config describes one simulation run on the physical-channel simulator.
type Config struct {
	// Routing selects the algorithm (and with it the topology).
	Routing routing.Algorithm
	// RunParams carry the simulator-independent parameters.
	RunParams
	// Output and Input select arbitration policies; nil selects the
	// paper's defaults (lowest-dimension output, local FCFS input).
	Output network.OutputPolicy
	Input  network.InputPolicy
	// RoutingDelay is forwarded to the network: extra cycles per routing
	// decision (see network.Config).
	RoutingDelay int64
}

func (c *Config) withDefaults() Config {
	out := *c
	out.RunParams = out.RunParams.withDefaults()
	return out
}

// minCycle clamps an injection horizon to a run-window boundary.
func minCycle(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// meanLength is the expected packet length under the configured mix.
func meanLength(lengths []int) float64 {
	total := 0
	for _, l := range lengths {
		total += l
	}
	return float64(total) / float64(len(lengths))
}

// Result summarizes one run. The JSON field names are part of the sweep
// report schema (see Report and docs/sweeps.md).
type Result struct {
	Algorithm string `json:"algorithm"`
	Pattern   string `json:"pattern"`
	// InjectionRate is the offered load in flits per node per cycle.
	InjectionRate float64 `json:"injection_rate"`
	// OfferedFlitsPerUs is the total offered load in flits/us
	// network-wide (InjectionRate x nodes x 20).
	OfferedFlitsPerUs float64 `json:"offered_flits_per_us"`
	// ThroughputFlitsPerUs is the measured delivery rate network-wide
	// in flits per microsecond — the paper's throughput axis.
	ThroughputFlitsPerUs float64 `json:"throughput_flits_per_us"`
	// AvgLatencyUs is the mean message latency (generation to tail
	// consumption) in microseconds — the paper's latency axis.
	AvgLatencyUs float64 `json:"avg_latency_us"`
	// P95LatencyUs is the 95th-percentile latency in microseconds.
	P95LatencyUs float64 `json:"p95_latency_us"`
	// AvgHops is the mean header path length of measured packets.
	AvgHops float64 `json:"avg_hops"`
	// Packets is the number of packets the latency average covers.
	Packets int64 `json:"packets"`
	// MaxQueue is the longest source queue seen at the end of the run;
	// sustainability requires it to stay small and bounded.
	MaxQueue int `json:"max_queue"`
	// QueueGrowth is the increase of total in-flight packets across the
	// measurement window; a saturated network grows without bound.
	QueueGrowth int `json:"queue_growth"`
	// Sustainable is the harness's judgement that the offered load was
	// accepted: delivery kept pace with generation and queues stayed
	// bounded.
	Sustainable bool `json:"sustainable"`
	// Deadlocked reports that the network watchdog fired (only possible
	// for routing algorithms outside the turn model, and never with
	// recovery enabled).
	Deadlocked bool `json:"deadlocked"`
	// Delivery accounting over the measurement window (schema v3; all
	// zero except Delivered unless faults or recovery are configured).
	// Delivered counts packets consumed at their destination; Dropped
	// counts packets abandoned (destination unreachable under the fault
	// set, or retry budget exhausted); Aborted counts worm aborts by
	// deadlock recovery; Retried counts source retries after aborts.
	Delivered int64 `json:"delivered"`
	Dropped   int64 `json:"dropped,omitempty"`
	Aborted   int64 `json:"aborted,omitempty"`
	Retried   int64 `json:"retried,omitempty"`
	// DeliveredFraction is Delivered/(Delivered+Dropped), the graceful-
	// degradation figure of merit; 1 when nothing was dropped.
	DeliveredFraction float64 `json:"delivered_fraction"`
	// FaultEvents counts channel-break events during the window.
	FaultEvents int64 `json:"fault_events,omitempty"`
	// Fault-aware routing accounting over the measurement window (schema
	// v4; zero unless RunParams.FaultRouting is enabled). MaskedFaults
	// counts routing decisions whose candidate set was narrowed around
	// known-broken channels; MisrouteHops counts nonminimal detour hops
	// actually taken.
	MaskedFaults int64 `json:"masked_faults,omitempty"`
	MisrouteHops int64 `json:"misroute_hops,omitempty"`
	// Metrics is the collector snapshot of the measurement window, set
	// only when RunParams.Metrics was on (schema v2; see docs/metrics.md).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

func (r Result) String() string {
	return fmt.Sprintf("%s/%s rate=%.4f thr=%.1f flits/us lat=%.2f us (p95 %.2f) hops=%.2f sustainable=%v",
		r.Algorithm, r.Pattern, r.InjectionRate, r.ThroughputFlitsPerUs, r.AvgLatencyUs, r.P95LatencyUs, r.AvgHops, r.Sustainable)
}

// Run executes one simulation and reports the measurement-window results.
// A deadlock (possible only for non-turn-model routing) is reported in the
// Result rather than as an error.
func Run(cfg Config) Result {
	cfg = cfg.withDefaults()
	topo := cfg.Routing.Topology()
	probe, coll := cfg.RunParams.instrument(topo)
	net := network.New(network.Config{
		Routing:          cfg.Routing,
		Output:           cfg.Output,
		Input:            cfg.Input,
		Seed:             cfg.Seed,
		WatchdogCycles:   cfg.WatchdogCycles,
		FaultPlan:        cfg.FaultPlan,
		Recovery:         cfg.Recovery,
		FaultRouting:     cfg.FaultRouting,
		RoutingDelay:     cfg.RoutingDelay,
		Probe:            probe,
		Shards:           cfg.Shards,
		DisableEventSkip: cfg.DisableEventSkip,
	})
	return measure(cfg.RunParams, cfg.Routing.Name(), topo, net, coll)
}

// measure drives an engine through warmup and measurement with Poisson
// per-processor generation and collects the Result. cfg must already have
// defaults applied; coll, when non-nil, is the collector already attached
// to the engine whose snapshot the Result will carry.
func measure(cfg RunParams, algName string, topo topology.Topology, net engine, coll *metrics.Collector) Result {
	defer net.Close()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Fixed points of permutation patterns consume their own messages
	// locally and never load the network, so the effective offered load
	// counts only the injecting sources.
	injecting := traffic.InjectingFraction(cfg.Pattern, topo)
	res := Result{
		Algorithm:         algName,
		Pattern:           cfg.Pattern.Name(),
		InjectionRate:     cfg.InjectionRate,
		OfferedFlitsPerUs: cfg.InjectionRate * float64(topo.Nodes()) * injecting * network.FlitsPerMicrosecond,
	}

	// Per-node Poisson arrival processes: the mean interarrival time in
	// cycles delivers InjectionRate flits per cycle on average.
	meanGap := meanLength(cfg.Lengths) / cfg.InjectionRate
	next := make([]float64, topo.Nodes())
	for i := range next {
		next[i] = rng.ExpFloat64() * meanGap
	}
	// generate fires every arrival due at the cycle and reports the first
	// future cycle at which any node generates again — the injection
	// horizon the event-driven clock may leap to. The min-scan rides the
	// node loop generate already runs, so horizon tracking adds no pass.
	generate := func(cycle int64) int64 {
		earliest := math.Inf(1)
		for node := range next {
			for next[node] <= float64(cycle) {
				next[node] += rng.ExpFloat64() * meanGap
				dst := cfg.Pattern.Dest(topology.NodeID(node), rng)
				if dst == topology.NodeID(node) {
					continue // fixed point: consumed locally
				}
				length := cfg.Lengths[rng.Intn(len(cfg.Lengths))]
				net.Enqueue(topology.NodeID(node), dst, length)
			}
			if next[node] < earliest {
				earliest = next[node]
			}
		}
		if math.IsInf(earliest, 1) {
			return math.MaxInt64 // nothing ever generates (zero-rate run)
		}
		return int64(math.Ceil(earliest))
	}

	var lat stats.Sample
	var hops stats.Accumulator
	deadlocked := false

	// Both run windows drive the engine event to event: each iteration
	// generates this cycle's arrivals, promises the engine that none come
	// before the next generation cycle (capped at the window end), and
	// steps. A busy network advances one cycle per Step as before; an idle
	// one leaps straight to the horizon, which is what makes low-rate
	// sweep regions and long drain tails cheap (see docs/performance.md).
	// The generation cycles are identical to the stepped schedule —
	// skipped cycles are exactly those where generate would have drawn
	// nothing — so the RNG stream, and with it every Result, is
	// bit-identical in both modes.
	for !deadlocked && net.Cycle() < cfg.WarmupCycles {
		nextGen := generate(net.Cycle())
		net.SetInjectionHorizon(minCycle(nextGen, cfg.WarmupCycles))
		if err := net.Step(); err != nil {
			deadlocked = true
		}
	}
	net.TakeDelivered()
	flitsBefore := net.FlitsConsumed()
	inFlightBefore := net.InFlight()
	deliveredBefore := net.PacketsDelivered()
	droppedBefore := net.PacketsDropped()
	abortedBefore := net.PacketsAborted()
	retriedBefore := net.PacketsRetried()
	faultsBefore := net.FaultEvents()
	maskedBefore := net.MaskedFaults()
	misrouteBefore := net.MisrouteHops()
	measureStart := net.Cycle()
	if coll != nil {
		coll.BeginMeasurement(measureStart)
	}

	measureEnd := measureStart + cfg.MeasureCycles
	for !deadlocked && net.Cycle() < measureEnd {
		nextGen := generate(net.Cycle())
		net.SetInjectionHorizon(minCycle(nextGen, measureEnd))
		if err := net.Step(); err != nil {
			deadlocked = true
		}
		for _, p := range net.TakeDelivered() {
			if p.Created >= measureStart-cfg.WarmupCycles/2 {
				lat.Add(network.Microseconds(p.Latency()))
				hops.Add(float64(p.Hops))
			}
		}
	}

	elapsed := net.Cycle() - measureStart
	if elapsed > 0 {
		res.ThroughputFlitsPerUs = float64(net.FlitsConsumed()-flitsBefore) / network.Microseconds(elapsed)
	}
	res.AvgLatencyUs = lat.Mean()
	res.P95LatencyUs = lat.Percentile(95)
	res.AvgHops = hops.Mean()
	res.Packets = lat.Count()
	res.MaxQueue = net.MaxQueueLen()
	res.QueueGrowth = net.InFlight() - inFlightBefore
	res.Deadlocked = deadlocked
	res.Delivered = net.PacketsDelivered() - deliveredBefore
	res.Dropped = net.PacketsDropped() - droppedBefore
	res.Aborted = net.PacketsAborted() - abortedBefore
	res.Retried = net.PacketsRetried() - retriedBefore
	res.FaultEvents = net.FaultEvents() - faultsBefore
	res.MaskedFaults = net.MaskedFaults() - maskedBefore
	res.MisrouteHops = net.MisrouteHops() - misrouteBefore
	res.DeliveredFraction = 1
	if denom := res.Delivered + res.Dropped; denom > 0 {
		res.DeliveredFraction = float64(res.Delivered) / float64(denom)
	}

	// Sustainability per Section 6: the number of packets queued at the
	// sources stays small and bounded. By conservation, offered load the
	// network does not accept accumulates as backlog, so bounded backlog
	// growth across the measurement window is the whole criterion: we
	// allow a small absolute slack plus 2% of the packets generated in
	// the window.
	expected := expectedPackets(cfg, topo.Nodes()) * injecting
	bounded := float64(res.QueueGrowth) <= 50+0.02*expected
	res.Sustainable = !deadlocked && bounded
	if coll != nil {
		res.Metrics = coll.Snapshot()
	}
	return res
}

// expectedPackets estimates how many packets the whole network generates
// during the measurement window.
func expectedPackets(cfg RunParams, nodes int) float64 {
	return cfg.InjectionRate * float64(cfg.MeasureCycles) * float64(nodes) / meanLength(cfg.Lengths)
}

// Sweep runs the configuration at each injection rate and returns one
// Result per rate, in order. It is the engine behind the latency-versus-
// throughput curves of Figures 13-16.
func Sweep(base Config, rates []float64) []Result {
	out := make([]Result, 0, len(rates))
	for i, r := range rates {
		cfg := base
		cfg.InjectionRate = r
		cfg.Seed = base.Seed + int64(i)*7919
		out = append(out, Run(cfg))
	}
	return out
}

// SaturationBisect refines the maximum sustainable injection rate by
// bisection: lo must be sustainable and hi unsustainable (verified with
// one run each; it panics otherwise, since bisection would be meaningless)
// and each iteration halves the bracket. It returns the highest rate
// found sustainable and the throughput measured there. Use it after a
// coarse Sweep has located the knee's neighborhood.
func SaturationBisect(base Config, lo, hi float64, iters int) (rate, throughput float64) {
	run := func(r float64, seedSalt int64) Result {
		cfg := base
		cfg.InjectionRate = r
		cfg.Seed = base.Seed + seedSalt
		return Run(cfg)
	}
	low := run(lo, 1)
	if !low.Sustainable {
		panic(fmt.Sprintf("sim: SaturationBisect lower bound %v is not sustainable", lo))
	}
	if high := run(hi, 2); high.Sustainable {
		panic(fmt.Sprintf("sim: SaturationBisect upper bound %v is sustainable", hi))
	}
	rate, throughput = lo, low.ThroughputFlitsPerUs
	for i := 0; i < iters; i++ {
		mid := (lo + hi) / 2
		res := run(mid, 3+int64(i))
		if res.Sustainable {
			lo = mid
			rate, throughput = mid, res.ThroughputFlitsPerUs
		} else {
			hi = mid
		}
	}
	return rate, throughput
}

// SaturationThroughput estimates the maximum sustainable throughput (in
// flits per microsecond) by sweeping injection rates upward from lo to hi
// in the given number of steps and reporting the highest sustained
// delivery rate observed.
func SaturationThroughput(base Config, lo, hi float64, steps int) (rate float64, throughput float64) {
	if steps < 2 {
		panic("sim: need at least two steps")
	}
	best, bestRate := 0.0, lo
	for i := 0; i < steps; i++ {
		r := lo + (hi-lo)*float64(i)/float64(steps-1)
		cfg := base
		cfg.InjectionRate = r
		cfg.Seed = base.Seed + int64(i)*104729
		res := Run(cfg)
		if res.Sustainable && res.ThroughputFlitsPerUs > best {
			best = res.ThroughputFlitsPerUs
			bestRate = r
		}
	}
	return bestRate, best
}
