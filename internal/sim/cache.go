package sim

import (
	"encoding/json"
	"fmt"

	"turnmodel/internal/fault"
	"turnmodel/internal/traffic"

	"turnmodel/internal/simcache"
)

// Cache is the content-addressed result cache consulted by Runner,
// RunCached and RunVCCached. Keys are content addresses computed by
// CacheKey/CacheKeyVC; values are the JSON encoding of the Result they
// denote. simcache.Store implements it; any conforming store works.
//
// Caching is sound because a Result is a pure function of (normalized run
// parameters, seed, engine version): seeds derive from job identity alone,
// never from scheduling, so equal keys always denote equal results.
type Cache interface {
	// Get returns the payload stored under key, if present.
	Get(key string) ([]byte, bool)
	// Put stores the payload under key. Errors are the store's to count;
	// callers treat a failed Put as a skipped optimization, not a failure.
	Put(key string, val []byte) error
}

// EngineVersion names the simulation semantics cache keys are computed
// under. Bump it whenever a change can make any Result differ for the same
// configuration and seed — every cached entry is invalidated at once, which
// is exactly what such a change requires. The report schema version is part
// of every key too, so payload-shape changes also miss cleanly.
const EngineVersion = "turnmodel-sim/1"

// patternIdentity renders a traffic pattern's full identity for cache
// keying, or reports it uncacheable. Pattern.Name is not sufficient — the
// stock Hotspot pattern's name omits the hot node — and arbitrary
// user-provided Pattern implementations may hide state the name does not
// show, so only the stock types are keyable and everything else declines
// to cache rather than risk a false hit. The enclosing key always carries
// the topology name (which includes its dimensions), so topology-derived
// state needs no repetition here.
func patternIdentity(p traffic.Pattern) (string, bool) {
	switch t := p.(type) {
	case traffic.Uniform:
		return "uniform", true
	case traffic.MeshTranspose:
		return "mesh-transpose", true
	case traffic.HypercubeTranspose:
		return "hypercube-transpose", true
	case traffic.ReverseFlip:
		return "reverse-flip", true
	case traffic.BitComplement:
		return "bit-complement", true
	case traffic.BitReversal:
		return "bit-reversal", true
	case traffic.Hotspot:
		return fmt.Sprintf("hotspot(hot=%d,frac=%g)", int(t.Hot), t.Fraction), true
	default:
		return "", false
	}
}

// faultPlanKey renders a fault plan for keying. Channel and node lists are
// kept positionally (reordering a fault list is a conservative miss).
func faultPlanKey(fp fault.Plan) map[string]any {
	m := map[string]any{
		"rate":   fp.Rate,
		"repair": fp.Repair,
		"seed":   fp.Seed,
	}
	if len(fp.Static) > 0 {
		chans := make([]map[string]any, len(fp.Static))
		for i, ch := range fp.Static {
			chans[i] = map[string]any{
				"from": int(ch.From), "to": int(ch.To),
				"dir": int(ch.Dir), "wrap": ch.Wrap,
			}
		}
		m["static"] = chans
	}
	if len(fp.Nodes) > 0 {
		m["nodes"] = fp.Nodes
	}
	return m
}

// runParamsKey renders the normalized RunParams for keying, or reports the
// configuration uncacheable. Normalization applies the Run defaults first,
// so explicit defaults and zero values address the same entry, and prunes
// whole subsystems that cannot affect the Result:
//
//   - Shards and DisableEventSkip never enter a key: results are
//     bit-identical at every shard count and in both clock modes (the
//     engine's sharding and event-skipping guarantees) — they choose how
//     the simulation executes, not what it computes.
//   - Probe never enters a key: probes observe, they do not perturb. A
//     cache hit therefore emits no probe events at all — which is how
//     callers assert that no simulation ran.
//   - Recovery thresholds are dropped when recovery is disabled, the
//     fault-routing policy when no faults exist to mask, and the collector
//     options when no collector is attached.
func runParamsKey(p RunParams) (map[string]any, bool) {
	pat, ok := patternIdentity(p.Pattern)
	if !ok {
		return nil, false
	}
	p = p.withDefaults()
	m := map[string]any{
		"pattern":  pat,
		"rate":     p.InjectionRate,
		"lengths":  p.Lengths,
		"warmup":   p.WarmupCycles,
		"measure":  p.MeasureCycles,
		"seed":     p.Seed,
		"watchdog": p.WatchdogCycles,
		"metrics":  p.Metrics,
	}
	if p.Metrics {
		m["metrics_options"] = p.MetricsOptions
	}
	if !p.FaultPlan.Empty() {
		m["fault"] = faultPlanKey(p.FaultPlan)
		if p.FaultRouting.Enabled() {
			pol := p.FaultRouting.WithDefaults()
			m["fault_routing"] = map[string]any{
				"visibility": pol.Visibility.String(),
				"radius":     pol.Radius,
				"misroute":   pol.MisrouteLimit,
			}
		}
	}
	if p.Recovery.Enabled {
		m["recovery"] = p.Recovery.WithDefaults()
	}
	return m, true
}

// CacheKey computes the content address of a physical-channel run: the
// canonical-JSON hash of (engine version, report schema version, algorithm,
// topology, arbitration policies, normalized RunParams). The second return
// is false when the configuration is not cacheable — an unrecognized
// traffic pattern type — in which case callers simply simulate.
//
// The algorithm contributes its registry name; callers constructing
// algorithms outside the routing registry must not reuse a registry name
// for different semantics, or keys would collide. Runner always constructs
// through the registry, so its keys are sound by construction.
func CacheKey(cfg Config) (string, bool) {
	params, ok := runParamsKey(cfg.RunParams)
	if !ok {
		return "", false
	}
	m := map[string]any{
		"engine":        EngineVersion,
		"schema":        ReportSchemaVersion,
		"simulator":     "physical",
		"algorithm":     cfg.Routing.Name(),
		"topology":      cfg.Routing.Topology().Name(),
		"params":        params,
		"routing_delay": cfg.RoutingDelay,
	}
	if cfg.Output != nil {
		m["output"] = cfg.Output.Name()
	}
	if cfg.Input != nil {
		m["input"] = cfg.Input.Name()
	}
	key, err := simcache.Key(m)
	if err != nil {
		return "", false
	}
	return key, true
}

// CacheKeyVC is CacheKey for the virtual-channel simulator.
func CacheKeyVC(cfg VCConfig) (string, bool) {
	params, ok := runParamsKey(cfg.RunParams)
	if !ok {
		return "", false
	}
	m := map[string]any{
		"engine":    EngineVersion,
		"schema":    ReportSchemaVersion,
		"simulator": "vc",
		"algorithm": cfg.Routing.Name(),
		"topology":  cfg.Routing.Topology().Name(),
		"params":    params,
	}
	key, err := simcache.Key(m)
	if err != nil {
		return "", false
	}
	return key, true
}

// lookupCached consults the cache for a precomputed Result.
func lookupCached(cache Cache, key string) (Result, bool) {
	raw, ok := cache.Get(key)
	if !ok {
		return Result{}, false
	}
	var res Result
	if err := json.Unmarshal(raw, &res); err != nil {
		// A corrupt payload is a miss; the fresh result overwrites it.
		return Result{}, false
	}
	return res, true
}

// storeCached records a fresh Result under key. A failed Put only costs
// future hits, so the error is deliberately dropped (the store's Stats
// surface it to operators).
func storeCached(cache Cache, key string, res Result) {
	if raw, err := json.Marshal(res); err == nil {
		_ = cache.Put(key, raw)
	}
}

// RunCached is Run behind the content-addressed cache: a hit returns the
// stored Result without simulating at all (no engine is even constructed),
// a miss simulates and stores. The second return reports whether the cache
// served the result. A nil cache or an uncacheable configuration degrades
// to a plain Run.
func RunCached(cfg Config, cache Cache) (Result, bool) {
	if cache == nil {
		return Run(cfg), false
	}
	key, ok := CacheKey(cfg)
	if !ok {
		return Run(cfg), false
	}
	if res, hit := lookupCached(cache, key); hit {
		return res, true
	}
	res := Run(cfg)
	storeCached(cache, key, res)
	return res, false
}

// RunVCCached is RunCached for the virtual-channel simulator.
func RunVCCached(cfg VCConfig, cache Cache) (Result, bool) {
	if cache == nil {
		return RunVC(cfg), false
	}
	key, ok := CacheKeyVC(cfg)
	if !ok {
		return RunVC(cfg), false
	}
	if res, hit := lookupCached(cache, key); hit {
		return res, true
	}
	res := RunVC(cfg)
	storeCached(cache, key, res)
	return res, false
}
