package sim

import (
	"turnmodel/internal/network"
	"turnmodel/internal/topology"
	"turnmodel/internal/vc"
	"turnmodel/internal/vcnet"
)

// engine abstracts the two simulators (physical-channel and
// virtual-channel) behind the measurement protocol of Run. Close releases
// the worker pool of a sharded engine (a no-op for serial ones); measure
// closes each engine when its run finishes so sweeps never accumulate
// parked worker goroutines.
type engine interface {
	Step() error
	Close()
	Enqueue(src, dst topology.NodeID, length int) *network.Packet
	Cycle() int64
	SetInjectionHorizon(cycle int64)
	FlitsConsumed() int64
	InFlight() int
	MaxQueueLen() int
	TakeDelivered() []*network.Packet
	PacketsDelivered() int64
	PacketsAborted() int64
	PacketsRetried() int64
	PacketsDropped() int64
	FaultEvents() int64
	MaskedFaults() int64
	MisrouteHops() int64
}

// VCConfig describes one run on the virtual-channel simulator.
type VCConfig struct {
	// Routing is the virtual-channel routing algorithm.
	Routing vc.Algorithm
	// RunParams carry the simulator-independent parameters, exactly as
	// in Config.
	RunParams
}

// RunVC executes one virtual-channel simulation with the same generation
// and measurement protocol as Run.
func RunVC(cfg VCConfig) Result {
	params := cfg.RunParams.withDefaults()
	topo := cfg.Routing.Topology()
	probe, coll := params.instrument(topo)
	net := vcnet.New(vcnet.Config{
		Routing:          cfg.Routing,
		WatchdogCycles:   cfg.WatchdogCycles,
		FaultPlan:        cfg.FaultPlan,
		Recovery:         cfg.Recovery,
		FaultRouting:     cfg.FaultRouting,
		Probe:            probe,
		Shards:           cfg.Shards,
		DisableEventSkip: cfg.DisableEventSkip,
	})
	return measure(params, cfg.Routing.Name(), topo, net, coll)
}
