package sim

import (
	"turnmodel/internal/network"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
	"turnmodel/internal/vc"
	"turnmodel/internal/vcnet"
)

// engine abstracts the two simulators (physical-channel and
// virtual-channel) behind the measurement protocol of Run.
type engine interface {
	Step() error
	Enqueue(src, dst topology.NodeID, length int) *network.Packet
	Cycle() int64
	FlitsConsumed() int64
	InFlight() int
	MaxQueueLen() int
	TakeDelivered() []*network.Packet
}

// VCConfig describes one run on the virtual-channel simulator.
type VCConfig struct {
	// Routing is the virtual-channel routing algorithm.
	Routing vc.Algorithm
	// Pattern, InjectionRate, Lengths, windows and Seed as in Config.
	Pattern                     traffic.Pattern
	InjectionRate               float64
	Lengths                     []int
	WarmupCycles, MeasureCycles int64
	Seed                        int64
	WatchdogCycles              int64
}

// RunVC executes one virtual-channel simulation with the same generation
// and measurement protocol as Run.
func RunVC(cfg VCConfig) Result {
	proto := Config{
		Pattern:       cfg.Pattern,
		InjectionRate: cfg.InjectionRate,
		Lengths:       cfg.Lengths,
		WarmupCycles:  cfg.WarmupCycles,
		MeasureCycles: cfg.MeasureCycles,
		Seed:          cfg.Seed,
	}
	base := proto.withDefaults()
	net := vcnet.New(vcnet.Config{Routing: cfg.Routing, WatchdogCycles: cfg.WatchdogCycles})
	return measure(base, cfg.Routing.Name(), cfg.Routing.Topology(), net)
}
