package sim

import (
	"testing"

	"turnmodel/internal/fault"
	"turnmodel/internal/metrics"
	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
	"turnmodel/internal/vc"
)

// keyCfg builds a small cacheable baseline configuration.
func keyCfg(t *testing.T) Config {
	t.Helper()
	mesh := topology.NewMesh2D(8, 8)
	alg, err := routing.New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Routing: alg,
		RunParams: RunParams{
			Pattern:       traffic.Uniform{Topo: mesh},
			InjectionRate: 0.05,
			Seed:          7,
		},
	}
}

func mustKey(t *testing.T, cfg Config) string {
	t.Helper()
	key, ok := CacheKey(cfg)
	if !ok {
		t.Fatal("configuration unexpectedly uncacheable")
	}
	return key
}

// TestCacheKeyNormalization pins the half of key soundness that creates
// hits: spelling a parameter as its zero value or as the explicit default,
// and toggling anything that cannot affect the Result, must address the
// same cache entry.
func TestCacheKeyNormalization(t *testing.T) {
	base := mustKey(t, keyCfg(t))
	for name, mutate := range map[string]func(*Config){
		"explicit default lengths": func(c *Config) { c.Lengths = []int{10, 200} },
		"explicit default windows": func(c *Config) { c.WarmupCycles, c.MeasureCycles = 20000, 40000 },
		"disabled recovery thresholds": func(c *Config) {
			c.Recovery = fault.Recovery{Enabled: false, StallCycles: 777, MaxRetries: 3}
		},
		"fault routing without faults": func(c *Config) {
			c.FaultRouting = fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
		},
		"collector options without collector": func(c *Config) {
			c.MetricsOptions = metrics.Options{OccupancyEvery: 5}
		},
		"probe attached":    func(c *Config) { c.Probe = metrics.NopProbe{} },
		"sharded execution": func(c *Config) { c.Shards = 4 },
		"stepped clock":     func(c *Config) { c.DisableEventSkip = true },
	} {
		cfg := keyCfg(t)
		mutate(&cfg)
		if got := mustKey(t, cfg); got != base {
			t.Errorf("%s changed the key: %s vs %s", name, got, base)
		}
	}
	// Enabled recovery is normalized through its own defaults: the zero
	// thresholds and the spelled-out defaults are one entry.
	implicit := keyCfg(t)
	implicit.Recovery = fault.Recovery{Enabled: true}
	explicit := keyCfg(t)
	explicit.Recovery = fault.Recovery{Enabled: true}.WithDefaults()
	if mustKey(t, implicit) != mustKey(t, explicit) {
		t.Error("default and explicit recovery thresholds hash differently")
	}
}

// TestCacheKeySensitivity is the other half: every semantic change must
// miss. A collision here would silently serve the wrong physics.
func TestCacheKeySensitivity(t *testing.T) {
	base := mustKey(t, keyCfg(t))
	keys := map[string]string{"base": base}
	for name, mutate := range map[string]func(*Config){
		"seed":          func(c *Config) { c.Seed = 8 },
		"rate":          func(c *Config) { c.InjectionRate = 0.06 },
		"lengths":       func(c *Config) { c.Lengths = []int{10} },
		"warmup":        func(c *Config) { c.WarmupCycles = 19999 },
		"measure":       func(c *Config) { c.MeasureCycles = 40001 },
		"watchdog":      func(c *Config) { c.WatchdogCycles = 5000 },
		"metrics":       func(c *Config) { c.Metrics = true },
		"routing delay": func(c *Config) { c.RoutingDelay = 1 },
		"fault plan":    func(c *Config) { c.FaultPlan = fault.Plan{Rate: 1e-6, Seed: 9} },
		"fault plan seed": func(c *Config) {
			c.FaultPlan = fault.Plan{Rate: 1e-6, Seed: 10}
		},
		"static fault": func(c *Config) {
			c.FaultPlan = fault.Plan{Static: []topology.Channel{{From: 0, To: 1}}}
		},
		"recovery": func(c *Config) { c.Recovery = fault.Recovery{Enabled: true} },
		"recovery retries": func(c *Config) {
			c.Recovery = fault.Recovery{Enabled: true, MaxRetries: 2}
		},
		"masking policy": func(c *Config) {
			c.FaultPlan = fault.Plan{Rate: 1e-6, Seed: 9}
			c.FaultRouting = fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
		},
		"algorithm": func(c *Config) {
			alg, err := routing.New("west-first", c.Routing.Topology())
			if err != nil {
				t.Fatal(err)
			}
			c.Routing = alg
		},
		"topology": func(c *Config) {
			mesh := topology.NewMesh2D(4, 4)
			alg, err := routing.New("xy", mesh)
			if err != nil {
				t.Fatal(err)
			}
			c.Routing = alg
			c.Pattern = traffic.Uniform{Topo: mesh}
		},
		"pattern": func(c *Config) {
			c.Pattern = traffic.Hotspot{Topo: c.Routing.Topology(), Hot: 0, Fraction: 0.1}
		},
		"hotspot node": func(c *Config) {
			c.Pattern = traffic.Hotspot{Topo: c.Routing.Topology(), Hot: 5, Fraction: 0.1}
		},
	} {
		cfg := keyCfg(t)
		mutate(&cfg)
		key := mustKey(t, cfg)
		for prev, prevKey := range keys {
			if key == prevKey {
				t.Errorf("%q and %q collide on %s", name, prev, key)
			}
		}
		keys[name] = key
	}
}

// oddPattern is a Pattern the key builder has never heard of.
type oddPattern struct{ traffic.Uniform }

func (oddPattern) Name() string { return "odd" }

// TestCacheKeyUnknownPatternUncacheable: a pattern type outside the stock
// set may hide state its name does not show, so it must decline to cache —
// and RunCached must degrade to a plain run, not an error and not a hit.
func TestCacheKeyUnknownPatternUncacheable(t *testing.T) {
	cfg := keyCfg(t)
	cfg.Pattern = oddPattern{traffic.Uniform{Topo: cfg.Routing.Topology()}}
	if _, ok := CacheKey(cfg); ok {
		t.Fatal("unknown pattern type produced a cache key")
	}
	cfg.WarmupCycles, cfg.MeasureCycles = 200, 400
	cache := countingCache{}
	res, hit := RunCached(cfg, cache)
	if hit {
		t.Error("uncacheable configuration reported a cache hit")
	}
	if len(cache) != 0 {
		t.Error("uncacheable configuration wrote to the cache")
	}
	if res.Packets == 0 {
		t.Error("degraded run did not simulate")
	}
}

// countingCache is a map-backed Cache for tests.
type countingCache map[string][]byte

func (c countingCache) Get(key string) ([]byte, bool) { v, ok := c[key]; return v, ok }
func (c countingCache) Put(key string, val []byte) error {
	c[key] = val
	return nil
}

// TestCacheKeyVC: the virtual-channel simulator keys its own namespace —
// identical run parameters under the two engines must never share an entry
// — and normalization applies there too.
func TestCacheKeyVC(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	dy, err := vc.New("double-y", mesh)
	if err != nil {
		t.Fatal(err)
	}
	params := RunParams{Pattern: traffic.Uniform{Topo: mesh}, InjectionRate: 0.05, Seed: 7}
	vcKey, ok := CacheKeyVC(VCConfig{Routing: dy, RunParams: params})
	if !ok {
		t.Fatal("VC configuration uncacheable")
	}
	phys := keyCfg(t)
	if physKey := mustKey(t, phys); physKey == vcKey {
		t.Error("physical and VC keys collide")
	}
	normalized := params
	normalized.Lengths = []int{10, 200}
	normalized.Shards = 3
	again, _ := CacheKeyVC(VCConfig{Routing: dy, RunParams: normalized})
	if again != vcKey {
		t.Error("VC key not normalized")
	}
	miss := params
	miss.Seed = 8
	other, _ := CacheKeyVC(VCConfig{Routing: dy, RunParams: miss})
	if other == vcKey {
		t.Error("VC key insensitive to seed")
	}
}

// TestRunVCCachedHitSkipsSimulation mirrors the physical-engine guarantee
// on the VC engine: the second run is served without stepping.
func TestRunVCCachedHitSkipsSimulation(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	dy, err := vc.New("double-y", mesh)
	if err != nil {
		t.Fatal(err)
	}
	probe := &tickCounter{}
	cfg := VCConfig{
		Routing: dy,
		RunParams: RunParams{
			Pattern:       traffic.Uniform{Topo: mesh},
			InjectionRate: 0.05,
			WarmupCycles:  300,
			MeasureCycles: 800,
			Seed:          11,
			Probe:         probe,
		},
	}
	cache := countingCache{}
	first, hit := RunVCCached(cfg, cache)
	if hit {
		t.Fatal("cold VC run hit")
	}
	if probe.ticks.Load() == 0 {
		t.Fatal("cold VC run did not simulate")
	}
	probe.ticks.Store(0)
	second, hit := RunVCCached(cfg, cache)
	if !hit {
		t.Fatal("warm VC run missed")
	}
	if probe.ticks.Load() != 0 {
		t.Error("warm VC run stepped the engine")
	}
	if first != second {
		t.Errorf("cached VC result diverges:\n%+v\n%+v", first, second)
	}
}
