package sim

import (
	"strings"
	"testing"

	"turnmodel/internal/routing"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
	"turnmodel/internal/vc"
)

func TestRunVCLowLoad(t *testing.T) {
	mesh := topology.NewMesh2D(8, 8)
	alg, err := vc.New("double-y", mesh)
	if err != nil {
		t.Fatal(err)
	}
	r := RunVC(VCConfig{
		Routing: alg,
		RunParams: RunParams{
			Pattern:       traffic.Uniform{Topo: mesh},
			InjectionRate: 0.04,
			WarmupCycles:  3000,
			MeasureCycles: 15000,
			Seed:          2,
		},
	})
	if !r.Sustainable || r.Deadlocked {
		t.Errorf("low-load VC run failed: %+v", r)
	}
	if r.Algorithm != "double-y" {
		t.Errorf("Algorithm = %q", r.Algorithm)
	}
	if r.Packets == 0 || r.AvgHops < 4 || r.AvgHops > 7 {
		t.Errorf("suspicious stats: %+v", r)
	}
}

func TestRunVCMatchesRunForLiftedAlgorithm(t *testing.T) {
	// The two engines share the measurement protocol; for a single-VC
	// lifted algorithm at light load the results must agree closely
	// (they are not bit-identical: arbitration details differ).
	mesh := topology.NewMesh2D(8, 8)
	balg, err := vc.New("xy", mesh)
	if err != nil {
		t.Fatal(err)
	}
	params := RunParams{
		Pattern:       traffic.Uniform{Topo: mesh},
		InjectionRate: 0.03, WarmupCycles: 3000, MeasureCycles: 15000, Seed: 2,
	}
	vres := RunVC(VCConfig{Routing: balg, RunParams: params})
	cfg := Config{RunParams: params}
	var err2 error
	cfg.Routing, err2 = routing.New("xy", mesh)
	if err2 != nil {
		t.Fatal(err2)
	}
	pres := Run(cfg)
	if diff := vres.AvgLatencyUs - pres.AvgLatencyUs; diff > 1 || diff < -1 {
		t.Errorf("engines disagree at light load: vc=%.2f phys=%.2f us", vres.AvgLatencyUs, pres.AvgLatencyUs)
	}
	if !vres.Sustainable || !pres.Sustainable {
		t.Error("light load unsustainable")
	}
}

func TestVCComparisonSmoke(t *testing.T) {
	res := VCComparison(500, 1500, 1)
	out := res.Table()
	for _, want := range []string{"double-y", "west-first", "xy", "matrix-transpose", "uniform"} {
		if !strings.Contains(out, want) {
			t.Errorf("comparison output missing %q", want)
		}
	}
	if len(res.Patterns) != 2 {
		t.Fatalf("got %d pattern blocks, want 2", len(res.Patterns))
	}
	for _, pat := range res.Patterns {
		if len(pat.Results) != len(res.Algorithms) {
			t.Fatalf("%s: %d series, want %d", pat.Pattern, len(pat.Results), len(res.Algorithms))
		}
		for ai, series := range pat.Results {
			if len(series) != len(res.Rates) {
				t.Errorf("%s/%s: %d points, want %d", pat.Pattern, res.Algorithms[ai], len(series), len(res.Rates))
			}
			for ri, r := range series {
				if r.InjectionRate != res.Rates[ri] {
					t.Errorf("%s/%s point %d has rate %v", pat.Pattern, res.Algorithms[ai], ri, r.InjectionRate)
				}
			}
		}
	}
}
