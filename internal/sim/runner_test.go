package sim

import (
	"reflect"
	"strings"
	"testing"
)

// quickPlan is a scaled-down two-figure plan that exercises multiple
// topologies, algorithms and rates while staying fast enough for -race.
func quickPlan(jobs int, seedFn SeedFunc) Plan {
	f13, _ := FigureByID("figure13")
	f13.Rates = []float64{0.01, 0.05}
	f13.Algorithms = []string{"xy", "west-first"}
	ext, _ := FigureByID("extension-octagonal")
	ext.Rates = []float64{0.02, 0.06}
	return Plan{
		Specs:         []FigureSpec{f13, ext},
		WarmupCycles:  300,
		MeasureCycles: 800,
		Seed:          2,
		Jobs:          jobs,
		SeedFn:        seedFn,
	}
}

// figuresEqual compares two figure result slices point by point. Spec
// holds function fields, so reflect.DeepEqual on the whole FigureResult
// would always fail; the Series maps and rendered tables carry everything
// measurable.
func figuresEqual(t *testing.T, a, b []FigureResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.ID != b[i].Spec.ID {
			t.Fatalf("figure %d: order differs: %s vs %s", i, a[i].Spec.ID, b[i].Spec.ID)
		}
		if !reflect.DeepEqual(a[i].Series, b[i].Series) {
			t.Errorf("%s: series differ:\n%+v\n%+v", a[i].Spec.ID, a[i].Series, b[i].Series)
		}
		if a[i].Table() != b[i].Table() {
			t.Errorf("%s: tables differ:\n%s\n%s", a[i].Spec.ID, a[i].Table(), b[i].Table())
		}
	}
}

func TestRunPlanParallelMatchesSerial(t *testing.T) {
	serial, _, err := RunPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := RunPlan(quickPlan(8, nil))
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, serial, parallel)
}

// TestRunPlanShardedMatchesSerial pins the intra-simulation parallelism
// axis: the same plan run with every job's network split into 2, 4 or 7
// spatial domains — composed with point-level workers — produces results
// and rendered tables identical to the fully serial run.
func TestRunPlanShardedMatchesSerial(t *testing.T) {
	serial, _, err := RunPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 7} {
		plan := quickPlan(2, nil)
		plan.Shards = shards
		sharded, _, err := RunPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		figuresEqual(t, serial, sharded)
	}
}

func TestRunPlanHashSeedDeterminism(t *testing.T) {
	serial, _, err := RunPlan(quickPlan(1, HashSeed))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := RunPlan(quickPlan(4, HashSeed))
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, serial, parallel)
}

func TestRunPlanMatchesRunFigure(t *testing.T) {
	plan := quickPlan(8, nil)
	frs, _, err := RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range plan.Specs {
		fr, err := RunFigure(spec, plan.WarmupCycles, plan.MeasureCycles, plan.Seed)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fr.Series, frs[i].Series) {
			t.Errorf("%s: RunFigure and RunPlan disagree", spec.ID)
		}
	}
}

func TestRunPlanDefaultWorkerCount(t *testing.T) {
	plan := quickPlan(0, nil) // <= 0 selects GOMAXPROCS
	frs, rep, err := RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 2 {
		t.Fatalf("got %d figures", len(frs))
	}
	if rep.Totals.Workers < 1 {
		t.Errorf("workers = %d", rep.Totals.Workers)
	}
}

func TestRunPlanUnknownAlgorithm(t *testing.T) {
	plan := quickPlan(4, nil)
	plan.Specs[1].Algorithms = []string{"dimension-order", "no-such-routing"}
	frs, rep, err := RunPlan(plan)
	if err == nil {
		t.Fatal("unknown algorithm not reported")
	}
	if !strings.Contains(err.Error(), "no-such-routing") || !strings.Contains(err.Error(), plan.Specs[1].ID) {
		t.Errorf("error %q does not name the algorithm and figure", err)
	}
	if frs != nil || rep != nil {
		t.Error("partial results returned alongside the error")
	}
}

func TestRunPlanProgress(t *testing.T) {
	plan := quickPlan(8, nil)
	var events []ProgressEvent
	plan.Progress = func(ev ProgressEvent) { events = append(events, ev) }
	_, rep, err := RunPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, spec := range plan.Specs {
		total += len(spec.Algorithms) * len(spec.Rates)
	}
	if len(events) != total {
		t.Fatalf("got %d progress events, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != total {
			t.Errorf("event %d: done/total = %d/%d", i, ev.Done, ev.Total)
		}
		if ev.Figure == "" || ev.Algorithm == "" {
			t.Errorf("event %d lacks identity: %+v", i, ev)
		}
		if ev.JobWall <= 0 || ev.Elapsed <= 0 {
			t.Errorf("event %d lacks timing: %+v", i, ev)
		}
	}
	if rep.Totals.JobsRun != total {
		t.Errorf("report counts %d jobs, want %d", rep.Totals.JobsRun, total)
	}
}

func TestPairedSeedMatchesSweepDerivation(t *testing.T) {
	// The archived tables under docs/ were produced by Sweep's
	// base + i*7919; PairedSeed must reproduce it exactly.
	for i := 0; i < 12; i++ {
		if got, want := PairedSeed(1, "figure13", "xy", i), int64(1+i*7919); got != want {
			t.Fatalf("PairedSeed(1, _, _, %d) = %d, want %d", i, got, want)
		}
	}
	if PairedSeed(5, "figure13", "xy", 3) != PairedSeed(5, "figure16", "e-cube", 3) {
		t.Error("PairedSeed must be shared across figures and algorithms")
	}
}

func TestHashSeedIndependence(t *testing.T) {
	base := HashSeed(1, "figure13", "xy", 0)
	for _, other := range []int64{
		HashSeed(2, "figure13", "xy", 0),
		HashSeed(1, "figure14", "xy", 0),
		HashSeed(1, "figure13", "west-first", 0),
		HashSeed(1, "figure13", "xy", 1),
	} {
		if other == base {
			t.Errorf("HashSeed collision with %d", other)
		}
	}
	if HashSeed(1, "figure13", "xy", 0) != base {
		t.Error("HashSeed is not deterministic")
	}
}
