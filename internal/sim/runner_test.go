package sim

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"turnmodel/internal/metrics"
	"turnmodel/internal/simcache"
	"turnmodel/internal/topology"
)

// runPlan adapts the streaming Runner to the batch shape most tests want:
// figures plus report, no context plumbing.
func runPlan(p Options) ([]FigureResult, *Report, error) {
	out, err := RunSweep(context.Background(), p)
	if err != nil {
		return nil, nil, err
	}
	return out.Figures, out.Report, nil
}

// runFigure runs one figure spec serially, standing in for the deleted
// RunFigure convenience.
func runFigure(spec FigureSpec, warmup, measure, seed int64) (FigureResult, error) {
	out, err := RunSweep(context.Background(), Options{
		Specs:         []FigureSpec{spec},
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Seed:          seed,
		Jobs:          1,
	})
	if err != nil {
		return FigureResult{}, err
	}
	return out.Figures[0], nil
}

// runResilience and runResilienceCompare run a single resilience spec
// through the Runner, standing in for the deleted positional entry points.
func runResilience(spec ResilienceSpec, warmup, measure, seed int64, jobs int) (ResilienceResult, error) {
	out, err := RunSweep(context.Background(), Options{
		Resilience:    []ResilienceSpec{spec},
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Seed:          seed,
		Jobs:          jobs,
	})
	if err != nil {
		return ResilienceResult{}, err
	}
	return out.Resilience[0], nil
}

func runResilienceCompare(spec ResilienceSpec, warmup, measure, seed int64, jobs int) (ResilienceCompareResult, error) {
	out, err := RunSweep(context.Background(), Options{
		Resilience:    []ResilienceSpec{spec},
		CompareModes:  true,
		WarmupCycles:  warmup,
		MeasureCycles: measure,
		Seed:          seed,
		Jobs:          jobs,
	})
	if err != nil {
		return ResilienceCompareResult{}, err
	}
	return out.Compares[0], nil
}

// quickPlan is a scaled-down two-figure run that exercises multiple
// topologies, algorithms and rates while staying fast enough for -race.
func quickPlan(jobs int, seedFn SeedFunc) Options {
	f13, _ := FigureByID("figure13")
	f13.Rates = []float64{0.01, 0.05}
	f13.Algorithms = []string{"xy", "west-first"}
	ext, _ := FigureByID("extension-octagonal")
	ext.Rates = []float64{0.02, 0.06}
	return Options{
		Specs:         []FigureSpec{f13, ext},
		WarmupCycles:  300,
		MeasureCycles: 800,
		Seed:          2,
		Jobs:          jobs,
		SeedFn:        seedFn,
	}
}

// figuresEqual compares two figure result slices point by point. Spec
// holds function fields, so reflect.DeepEqual on the whole FigureResult
// would always fail; the Series maps and rendered tables carry everything
// measurable.
func figuresEqual(t *testing.T, a, b []FigureResult) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Spec.ID != b[i].Spec.ID {
			t.Fatalf("figure %d: order differs: %s vs %s", i, a[i].Spec.ID, b[i].Spec.ID)
		}
		if !reflect.DeepEqual(a[i].Series, b[i].Series) {
			t.Errorf("%s: series differ:\n%+v\n%+v", a[i].Spec.ID, a[i].Series, b[i].Series)
		}
		if a[i].Table() != b[i].Table() {
			t.Errorf("%s: tables differ:\n%s\n%s", a[i].Spec.ID, a[i].Table(), b[i].Table())
		}
	}
}

func TestRunPlanParallelMatchesSerial(t *testing.T) {
	serial, _, err := runPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := runPlan(quickPlan(8, nil))
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, serial, parallel)
}

// TestRunPlanShardedMatchesSerial pins the intra-simulation parallelism
// axis: the same options run with every point's network split into 2, 4 or
// 7 spatial domains — composed with point-level workers — produces results
// and rendered tables identical to the fully serial run.
func TestRunPlanShardedMatchesSerial(t *testing.T) {
	serial, _, err := runPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 4, 7} {
		plan := quickPlan(2, nil)
		plan.Shards = shards
		sharded, _, err := runPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		figuresEqual(t, serial, sharded)
	}
}

// TestRunPlanSteppedClockMatches pins the execution-strategy guarantee of
// the event-driven clock: forcing every point to step cycle by cycle
// (DisableEventSkip) produces results and rendered tables identical to the
// default leaping run, with or without sharding underneath.
func TestRunPlanSteppedClockMatches(t *testing.T) {
	leaping, _, err := runPlan(quickPlan(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{0, 4} {
		plan := quickPlan(2, nil)
		plan.Shards = shards
		plan.DisableEventSkip = true
		stepped, _, err := runPlan(plan)
		if err != nil {
			t.Fatal(err)
		}
		figuresEqual(t, leaping, stepped)
	}
}

func TestRunPlanHashSeedDeterminism(t *testing.T) {
	serial, _, err := runPlan(quickPlan(1, HashSeed))
	if err != nil {
		t.Fatal(err)
	}
	parallel, _, err := runPlan(quickPlan(4, HashSeed))
	if err != nil {
		t.Fatal(err)
	}
	figuresEqual(t, serial, parallel)
}

// TestRunnerSingleFigureMatchesBatch: running each spec alone reproduces
// its series from the batched run exactly (the guarantee the deleted
// RunFigure convenience used to pin).
func TestRunnerSingleFigureMatchesBatch(t *testing.T) {
	plan := quickPlan(8, nil)
	frs, _, err := runPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range plan.Specs {
		solo, _, err := runPlan(Options{
			Specs:         []FigureSpec{spec},
			WarmupCycles:  plan.WarmupCycles,
			MeasureCycles: plan.MeasureCycles,
			Seed:          plan.Seed,
			Jobs:          1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(solo[0].Series, frs[i].Series) {
			t.Errorf("%s: single-figure run and batch disagree", spec.ID)
		}
	}
}

func TestRunPlanDefaultWorkerCount(t *testing.T) {
	plan := quickPlan(0, nil) // <= 0 selects GOMAXPROCS
	frs, rep, err := runPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 2 {
		t.Fatalf("got %d figures", len(frs))
	}
	if rep.Totals.Workers < 1 {
		t.Errorf("workers = %d", rep.Totals.Workers)
	}
}

func TestRunPlanUnknownAlgorithm(t *testing.T) {
	plan := quickPlan(4, nil)
	plan.Specs[1].Algorithms = []string{"dimension-order", "no-such-routing"}
	frs, rep, err := runPlan(plan)
	if err == nil {
		t.Fatal("unknown algorithm not reported")
	}
	if !strings.Contains(err.Error(), "no-such-routing") || !strings.Contains(err.Error(), plan.Specs[1].ID) {
		t.Errorf("error %q does not name the algorithm and figure", err)
	}
	if frs != nil || rep != nil {
		t.Error("partial results returned alongside the error")
	}
	// The same validation covers resilience specs.
	if _, err := RunSweep(context.Background(), Options{
		Resilience: []ResilienceSpec{{
			ID:          "bad",
			NewTopology: func() topology.Topology { return topology.NewMesh2D(4, 4) },
			Algorithms:  []string{"no-such-routing"},
			FaultRates:  []float64{0},
		}},
	}); err == nil || !strings.Contains(err.Error(), "no-such-routing") {
		t.Errorf("resilience validation missed: %v", err)
	}
}

func TestRunPlanProgress(t *testing.T) {
	plan := quickPlan(8, nil)
	var events []ProgressEvent
	plan.Progress = func(ev ProgressEvent) { events = append(events, ev) }
	_, rep, err := runPlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, spec := range plan.Specs {
		total += len(spec.Algorithms) * len(spec.Rates)
	}
	if len(events) != total {
		t.Fatalf("got %d progress events, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != total {
			t.Errorf("event %d: done/total = %d/%d", i, ev.Done, ev.Total)
		}
		if ev.Figure == "" || ev.Algorithm == "" {
			t.Errorf("event %d lacks identity: %+v", i, ev)
		}
		if ev.JobWall <= 0 || ev.Elapsed <= 0 {
			t.Errorf("event %d lacks timing: %+v", i, ev)
		}
	}
	if rep.Totals.JobsRun != total {
		t.Errorf("report counts %d jobs, want %d", rep.Totals.JobsRun, total)
	}
}

// TestRunnerStreamsPoints is the streaming contract: OnPoint fires exactly
// once per point with strictly increasing Done counters, every event
// carries its merge indices, and reassembling the stream by those indices
// reproduces the merged Outcome exactly.
func TestRunnerStreamsPoints(t *testing.T) {
	plan := quickPlan(8, nil)
	var events []PointEvent
	plan.OnPoint = func(ev PointEvent) { events = append(events, ev) }
	r, err := NewRunner(plan)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != r.Total() {
		t.Fatalf("got %d point events, want %d", len(events), r.Total())
	}
	seen := map[string]bool{}
	for i, ev := range events {
		if ev.Done != i+1 || ev.Total != r.Total() {
			t.Errorf("event %d: done/total = %d/%d", i, ev.Done, ev.Total)
		}
		if ev.Kind != PointFigure {
			t.Errorf("event %d: kind %q", i, ev.Kind)
		}
		key := ev.Figure + "/" + ev.Algorithm + "/" + string(rune('0'+ev.RateIndex))
		if seen[key] {
			t.Errorf("point %s emitted twice", key)
		}
		seen[key] = true
	}
	// Reassemble from the (unordered) stream and compare to the merge.
	rebuilt := map[string]map[string][]Result{}
	for _, fr := range out.Figures {
		rebuilt[fr.Spec.ID] = map[string][]Result{}
		for name := range fr.Series {
			rebuilt[fr.Spec.ID][name] = make([]Result, len(fr.Spec.Rates))
		}
	}
	for _, ev := range events {
		rebuilt[ev.Figure][ev.Algorithm][ev.RateIndex] = ev.Result
	}
	for _, fr := range out.Figures {
		if !reflect.DeepEqual(rebuilt[fr.Spec.ID], fr.Series) {
			t.Errorf("%s: stream does not reassemble into the merged result", fr.Spec.ID)
		}
	}
}

// TestRunnerCancellation: a cancelled context stops the run at point
// granularity with the context's error, in both the serial and the pooled
// execution paths.
func TestRunnerCancellation(t *testing.T) {
	for _, jobs := range []int{1, 4} {
		plan := quickPlan(jobs, nil)
		ctx, cancel := context.WithCancel(context.Background())
		var fired atomic.Int32
		plan.OnPoint = func(PointEvent) {
			if fired.Add(1) == 1 {
				cancel()
			}
		}
		out, err := RunSweep(ctx, plan)
		cancel()
		if err != context.Canceled {
			t.Errorf("jobs=%d: err = %v, want context.Canceled", jobs, err)
		}
		if out != nil {
			t.Errorf("jobs=%d: cancelled run returned an outcome", jobs)
		}
		// In-flight points drain (at most one per worker after the cancel);
		// nothing close to the full run may have executed.
		if n := int(fired.Load()); n > 1+jobs {
			t.Errorf("jobs=%d: %d points ran after cancellation", jobs, n)
		}
	}
	// Cancellation before the run starts executes nothing.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	plan := quickPlan(1, nil)
	ran := false
	plan.OnPoint = func(PointEvent) { ran = true }
	if _, err := RunSweep(ctx, plan); err != context.Canceled {
		t.Errorf("pre-cancelled run: err = %v", err)
	}
	if ran {
		t.Error("pre-cancelled run executed a point")
	}
}

// tickCounter counts engine Tick events — the proof that a simulation
// actually stepped. A run served entirely from cache must count zero.
type tickCounter struct {
	metrics.NopProbe
	ticks atomic.Int64
}

func (c *tickCounter) Tick(cycle int64) { c.ticks.Add(1) }

// TestRunnerCacheServesRepeatRuns: a second identical run against the same
// cache executes no simulation at all (zero engine ticks through the
// probe), reports every point as cached, and produces deeply equal results
// and byte-identical tables.
func TestRunnerCacheServesRepeatRuns(t *testing.T) {
	cache := simcache.NewStore(simcache.Options{})
	mk := func() Options {
		p := quickPlan(4, nil)
		p.Cache = cache
		return p
	}
	first, err := RunSweep(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	if first.CachedPoints != 0 {
		t.Errorf("cold run reported %d cached points", first.CachedPoints)
	}

	probe := &tickCounter{}
	opts := mk()
	opts.Probe = probe
	var cachedEvents int
	opts.OnPoint = func(ev PointEvent) {
		if ev.Cached {
			cachedEvents++
		}
	}
	second, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CachedPoints != 8 { // 2 figures x 2 algs x 2 rates
		t.Errorf("warm run cached %d points, want 8", second.CachedPoints)
	}
	if cachedEvents != 8 {
		t.Errorf("%d events marked cached, want 8", cachedEvents)
	}
	if got := probe.ticks.Load(); got != 0 {
		t.Errorf("warm run stepped the engine %d times; cache hit must skip simulation entirely", got)
	}
	figuresEqual(t, first.Figures, second.Figures)
	if st := cache.Stats(); st.Hits() != 8 || st.Puts != 8 {
		t.Errorf("cache stats = %+v", st)
	}

	// A different seed shares nothing with the warm cache.
	probe.ticks.Store(0)
	miss := mk()
	miss.Seed = 99
	miss.Probe = probe
	third, err := RunSweep(context.Background(), miss)
	if err != nil {
		t.Fatal(err)
	}
	if third.CachedPoints != 0 {
		t.Errorf("different seed hit the cache (%d points)", third.CachedPoints)
	}
	if probe.ticks.Load() == 0 {
		t.Error("cache miss did not simulate")
	}
}

// TestRunnerResilienceThroughCache extends the cache guarantee to
// resilience cells, whose fault plans are derived state the key must
// capture.
func TestRunnerResilienceThroughCache(t *testing.T) {
	cache := simcache.NewStore(simcache.Options{})
	mk := func() Options {
		return Options{
			Resilience:    []ResilienceSpec{quickResilience()},
			WarmupCycles:  400,
			MeasureCycles: 1200,
			Seed:          3,
			Jobs:          2,
			Cache:         cache,
		}
	}
	first, err := RunSweep(context.Background(), mk())
	if err != nil {
		t.Fatal(err)
	}
	probe := &tickCounter{}
	opts := mk()
	opts.Probe = probe
	second, err := RunSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.CachedPoints != 6 { // 2 algs x 3 fault rates
		t.Errorf("cached %d resilience cells, want 6", second.CachedPoints)
	}
	if probe.ticks.Load() != 0 {
		t.Error("warm resilience run stepped the engine")
	}
	if !reflect.DeepEqual(first.Resilience[0].Series, second.Resilience[0].Series) {
		t.Error("cached resilience series diverge")
	}
	if first.Resilience[0].Table() != second.Resilience[0].Table() {
		t.Error("cached resilience tables diverge")
	}
}

func TestPairedSeedMatchesSweepDerivation(t *testing.T) {
	// The archived tables under docs/ were produced by Sweep's
	// base + i*7919; PairedSeed must reproduce it exactly.
	for i := 0; i < 12; i++ {
		if got, want := PairedSeed(1, "figure13", "xy", i), int64(1+i*7919); got != want {
			t.Fatalf("PairedSeed(1, _, _, %d) = %d, want %d", i, got, want)
		}
	}
	if PairedSeed(5, "figure13", "xy", 3) != PairedSeed(5, "figure16", "e-cube", 3) {
		t.Error("PairedSeed must be shared across figures and algorithms")
	}
}

func TestHashSeedIndependence(t *testing.T) {
	base := HashSeed(1, "figure13", "xy", 0)
	for _, other := range []int64{
		HashSeed(2, "figure13", "xy", 0),
		HashSeed(1, "figure14", "xy", 0),
		HashSeed(1, "figure13", "west-first", 0),
		HashSeed(1, "figure13", "xy", 1),
	} {
		if other == base {
			t.Errorf("HashSeed collision with %d", other)
		}
	}
	if HashSeed(1, "figure13", "xy", 0) != base {
		t.Error("HashSeed is not deterministic")
	}
}
