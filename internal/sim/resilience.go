package sim

import (
	"fmt"
	"sort"
	"strings"

	"turnmodel/internal/fault"
	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
)

// ResilienceSpec declares a graceful-degradation experiment: a fixed
// offered load swept across link-failure rates with deadlock recovery on,
// tracing delivered-packet fraction, throughput and latency as the network
// decays. It is the quantitative form of the paper's closing claim that
// adaptive turn-model routing tolerates faults nonadaptive routing cannot.
type ResilienceSpec struct {
	// ID, Title and Claim mirror FigureSpec.
	ID    string
	Title string
	Claim string
	// NewTopology constructs the network.
	NewTopology func() topology.Topology
	// Algorithms are registry names resolved against the topology.
	Algorithms []string
	// NewPattern builds the workload.
	NewPattern func(topology.Topology) traffic.Pattern
	// InjectionRate is the fixed offered load in flits/node/cycle, chosen
	// well below every algorithm's fault-free saturation so degradation
	// measures fault tolerance rather than congestion.
	InjectionRate float64
	// FaultRates is the sweep: per-cycle per-channel failure probability
	// of the random fault process (see fault.Plan.Rate).
	FaultRates []float64
	// RepairDelay is the transient-fault repair delay in cycles; 0 makes
	// every fault permanent (see fault.Plan.Repair).
	RepairDelay int64
}

// ResilienceFigures returns the resilience experiments: the 16x16 mesh
// under the paper's mesh algorithms and the binary 8-cube including
// nonminimal p-cube, whose fault tolerance Section 5 argues for explicitly.
func ResilienceFigures() []ResilienceSpec {
	uniform := func(t topology.Topology) traffic.Pattern { return traffic.Uniform{Topo: t} }
	return []ResilienceSpec{
		{
			ID:          "resilience-mesh",
			Title:       "Graceful degradation under permanent link faults in a 16x16 mesh",
			Claim:       "adaptive turn-model routing delivers around broken channels where xy, with exactly one path per pair, must drop; delivered fraction decays more slowly for west-first and negative-first",
			NewTopology: func() topology.Topology { return topology.NewMesh2D(16, 16) },
			Algorithms:  []string{"xy", "west-first", "negative-first"},
			NewPattern:  uniform,
			// Expected permanent faults over a default 60k-cycle run on
			// the mesh's 960 channels: roughly 3, 6, 12, 29, 58.
			InjectionRate: 0.04,
			FaultRates:    []float64{0, 5e-8, 1e-7, 2e-7, 5e-7, 1e-6},
		},
		{
			ID:          "resilience-cube",
			Title:       "Graceful degradation under permanent link faults in a binary 8-cube",
			Claim:       "nonminimal p-cube survives faults that cut every minimal path (Section 5); minimal adaptive p-cube degrades more slowly than e-cube",
			NewTopology: func() topology.Topology { return topology.NewHypercube(8) },
			Algorithms:  []string{"e-cube", "p-cube", "p-cube-nonminimal"},
			NewPattern:  uniform,
			// 2048 channels: roughly 6, 12, 25, 61, 123 faults per run.
			// The load sits below nonminimal p-cube's saturation too, so
			// degradation is fault-driven for every curve.
			InjectionRate: 0.05,
			FaultRates:    []float64{0, 5e-8, 1e-7, 2e-7, 5e-7, 1e-6},
		},
	}
}

// ResilienceByID finds a resilience spec by ID.
func ResilienceByID(id string) (ResilienceSpec, bool) {
	for _, s := range ResilienceFigures() {
		if s.ID == id {
			return s, true
		}
	}
	return ResilienceSpec{}, false
}

// ResilienceResult holds one resilience sweep, one series per algorithm
// indexed like Spec.FaultRates.
type ResilienceResult struct {
	Spec   ResilienceSpec
	Series map[string][]Result
}

// ResilienceMode is one fault-handling configuration of the
// masking-versus-recovery comparison: which of the two defense layers —
// end-to-end abort/retry recovery and in-network fault-aware routing —
// are switched on.
type ResilienceMode struct {
	// Name labels the mode in tables ("recovery", "masking",
	// "recovery+masking").
	Name string
	// Recovery enables deadlock recovery (abort, backoff, source retry).
	Recovery bool
	// FaultRouting is the fault-aware routing policy; the zero value
	// leaves routing fault-oblivious.
	FaultRouting fault.RoutingPolicy
}

// ResilienceModes returns the three configurations RunResilienceCompare
// contrasts. Masking uses k-hop health dissemination at the default
// radius with a misroute budget of 4 — enough for a detour around any
// single broken link and its immediate neighborhood. The masking-only
// mode runs with the watchdog disabled: a packet whose every permitted
// path is dead then stalls in place instead of being recovered, which is
// exactly the failure mode the comparison is meant to expose.
func ResilienceModes() []ResilienceMode {
	pol := fault.RoutingPolicy{Visibility: fault.VisibilityKHop, MisrouteLimit: 4}
	return []ResilienceMode{
		{Name: "recovery", Recovery: true},
		{Name: "masking", FaultRouting: pol},
		{Name: "recovery+masking", Recovery: true, FaultRouting: pol},
	}
}

// ResilienceCompareResult holds the mode comparison of one spec:
// Series[mode][algorithm] is indexed like Spec.FaultRates.
type ResilienceCompareResult struct {
	Spec   ResilienceSpec
	Modes  []ResilienceMode
	Series map[string]map[string][]Result
}

// Table renders the comparison: one block per algorithm with delivered
// fraction, throughput and latency per mode as the fault rate climbs,
// then the masking gain — delivered fraction and latency recovered by
// adding fault-aware routing to recovery — at the highest fault rate.
func (rc ResilienceCompareResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s — recovery vs in-network fault masking\n", rc.Spec.ID, rc.Spec.Title)
	fmt.Fprintf(&b, "offered load %.3f flits/node/cycle", rc.Spec.InjectionRate)
	for _, m := range rc.Modes {
		if m.FaultRouting.Enabled() {
			fmt.Fprintf(&b, "; masking policy %s", m.FaultRouting.WithDefaults())
			break
		}
	}
	b.WriteString("\n\n")
	for _, alg := range rc.Spec.Algorithms {
		fmt.Fprintf(&b, "%s\n%-10s", alg, "faultrate")
		for _, m := range rc.Modes {
			fmt.Fprintf(&b, " | %28s", m.Name)
		}
		fmt.Fprintf(&b, "\n%-10s", "")
		for range rc.Modes {
			fmt.Fprintf(&b, " | %6s %9s %8s", "deliv%", "thr fl/us", "lat us")
		}
		b.WriteString("\n")
		for ri, fr := range rc.Spec.FaultRates {
			fmt.Fprintf(&b, "%-10.1e", fr)
			for _, m := range rc.Modes {
				r := rc.Series[m.Name][alg][ri]
				fmt.Fprintf(&b, " | %6.2f %9.1f %8.2f", 100*r.DeliveredFraction, r.ThroughputFlitsPerUs, r.AvgLatencyUs)
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	last := len(rc.Spec.FaultRates) - 1
	fmt.Fprintf(&b, "masking gain over recovery alone at fault rate %.1e:\n", rc.Spec.FaultRates[last])
	for _, alg := range rc.Spec.Algorithms {
		rec := rc.Series["recovery"][alg][last]
		both := rc.Series["recovery+masking"][alg][last]
		fmt.Fprintf(&b, "  %-18s delivered %6.2f%% -> %6.2f%% (%+.2f); latency %8.2f -> %8.2f us; masked %d, misroutes %d\n",
			alg, 100*rec.DeliveredFraction, 100*both.DeliveredFraction,
			100*(both.DeliveredFraction-rec.DeliveredFraction),
			rec.AvgLatencyUs, both.AvgLatencyUs, both.MaskedFaults, both.MisrouteHops)
	}
	return b.String()
}

// Table renders the sweep: delivered fraction, throughput and latency per
// algorithm as the fault rate climbs, then a degradation summary at the
// highest fault rate.
func (rr ResilienceResult) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", rr.Spec.ID, rr.Spec.Title)
	fmt.Fprintf(&b, "claim: %s\n", rr.Spec.Claim)
	fmt.Fprintf(&b, "offered load %.3f flits/node/cycle; recovery on\n\n", rr.Spec.InjectionRate)
	algs := rr.Spec.Algorithms
	fmt.Fprintf(&b, "%-10s", "faultrate")
	for _, a := range algs {
		fmt.Fprintf(&b, " | %28s", a)
	}
	fmt.Fprintf(&b, "\n%-10s", "")
	for range algs {
		fmt.Fprintf(&b, " | %6s %9s %8s", "deliv%", "thr fl/us", "lat us")
	}
	b.WriteString("\n")
	for ri, fr := range rr.Spec.FaultRates {
		fmt.Fprintf(&b, "%-10.1e", fr)
		for _, a := range algs {
			r := rr.Series[a][ri]
			fmt.Fprintf(&b, " | %6.2f %9.1f %8.2f", 100*r.DeliveredFraction, r.ThroughputFlitsPerUs, r.AvgLatencyUs)
		}
		b.WriteString("\n")
	}
	last := len(rr.Spec.FaultRates) - 1
	fmt.Fprintf(&b, "\ndelivered fraction at fault rate %.1e:\n", rr.Spec.FaultRates[last])
	type row struct {
		alg  string
		frac float64
	}
	rows := make([]row, 0, len(algs))
	for _, a := range algs {
		rows = append(rows, row{a, rr.Series[a][last].DeliveredFraction})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].frac > rows[j].frac })
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-18s %6.2f%%\n", r.alg, 100*r.frac)
	}
	return b.String()
}
