package sim

import (
	"fmt"
	"strings"

	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
	"turnmodel/internal/vc"
)

// VCComparison runs the extension experiment the paper's Section 7 and
// reference [18] point to: minimal fully adaptive routing bought with one
// extra virtual channel on the y links (double-y), compared with the
// no-extra-channel algorithms on the same 16x16 mesh. The expectation from
// [18]: the fully adaptive algorithm wins on nonuniform traffic; under
// uniform traffic nonadaptive xy still wins at high load.
func VCComparison(warmup, measure, seed int64) string {
	mesh := topology.NewMesh2D(16, 16)
	algs := []string{"double-y", "west-first", "xy"}
	rates := []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14}
	patterns := []struct {
		name string
		make func() traffic.Pattern
	}{
		{"matrix-transpose", func() traffic.Pattern { return traffic.NewMeshTranspose(mesh) }},
		{"uniform", func() traffic.Pattern { return traffic.Uniform{Topo: mesh} }},
	}
	var b strings.Builder
	b.WriteString("extension-vc: double-y (2 virtual channels on y links, minimal fully adaptive)\n")
	b.WriteString("vs. the no-extra-channel algorithms on a 16x16 mesh (cf. Section 7 / [18])\n\n")
	for _, pat := range patterns {
		fmt.Fprintf(&b, "%s:\n", pat.name)
		fmt.Fprintf(&b, "%-8s", "rate")
		for _, a := range algs {
			fmt.Fprintf(&b, " | %27s", a)
		}
		fmt.Fprintf(&b, "\n%-8s", "")
		for range algs {
			fmt.Fprintf(&b, " | %12s %8s %5s", "thr flits/us", "lat us", "sust")
		}
		b.WriteString("\n")
		best := make(map[string]float64)
		for _, rate := range rates {
			fmt.Fprintf(&b, "%-8.3f", rate)
			for i, name := range algs {
				alg, err := vc.New(name, mesh)
				if err != nil {
					panic(err)
				}
				r := RunVC(VCConfig{
					Routing:       alg,
					Pattern:       pat.make(),
					InjectionRate: rate,
					WarmupCycles:  warmup,
					MeasureCycles: measure,
					Seed:          seed + int64(i),
				})
				sust := " "
				if r.Sustainable {
					sust = "yes"
					if r.ThroughputFlitsPerUs > best[name] {
						best[name] = r.ThroughputFlitsPerUs
					}
				}
				fmt.Fprintf(&b, " | %12.1f %8.2f %5s", r.ThroughputFlitsPerUs, r.AvgLatencyUs, sust)
			}
			b.WriteString("\n")
		}
		b.WriteString("max sustainable: ")
		for _, a := range algs {
			fmt.Fprintf(&b, "%s %.1f  ", a, best[a])
		}
		b.WriteString("\n\n")
	}
	return b.String()
}
