package sim

import (
	"fmt"
	"strings"

	"turnmodel/internal/topology"
	"turnmodel/internal/traffic"
	"turnmodel/internal/vc"
)

// VCComparisonResult is the structured outcome of VCComparison: one block
// of per-rate Results per traffic pattern, for each algorithm compared.
// Table renders it in the archived docs/results-extension-vc.txt layout.
type VCComparisonResult struct {
	// Topology names the network (a 16x16 mesh).
	Topology string
	// Algorithms are the compared routing algorithms, in column order.
	Algorithms []string
	// Rates are the swept injection rates, in row order.
	Rates []float64
	// Patterns holds one result block per traffic pattern.
	Patterns []VCComparisonPattern
}

// VCComparisonPattern is one traffic pattern's sweep.
type VCComparisonPattern struct {
	// Pattern is the workload name.
	Pattern string
	// Results[ai][ri] is algorithm ai at rate ri.
	Results [][]Result
	// BestThroughput[ai] is the highest sustained throughput algorithm ai
	// reached across the rates (flits/us), 0 if never sustainable.
	BestThroughput []float64
}

// VCComparison runs the extension experiment the paper's Section 7 and
// reference [18] point to: minimal fully adaptive routing bought with one
// extra virtual channel on the y links (double-y), compared with the
// no-extra-channel algorithms on the same 16x16 mesh. The expectation from
// [18]: the fully adaptive algorithm wins on nonuniform traffic; under
// uniform traffic nonadaptive xy still wins at high load.
//
// The returned results are structured; render them with Table (the CLI
// does) or consume the Results directly.
func VCComparison(warmup, measure, seed int64) VCComparisonResult {
	mesh := topology.NewMesh2D(16, 16)
	out := VCComparisonResult{
		Topology:   mesh.Name(),
		Algorithms: []string{"double-y", "west-first", "xy"},
		Rates:      []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.14},
	}
	patterns := []struct {
		name string
		make func() traffic.Pattern
	}{
		{"matrix-transpose", func() traffic.Pattern { return traffic.NewMeshTranspose(mesh) }},
		{"uniform", func() traffic.Pattern { return traffic.Uniform{Topo: mesh} }},
	}
	for _, pat := range patterns {
		block := VCComparisonPattern{
			Pattern:        pat.name,
			Results:        make([][]Result, len(out.Algorithms)),
			BestThroughput: make([]float64, len(out.Algorithms)),
		}
		for i, name := range out.Algorithms {
			alg, err := vc.New(name, mesh)
			if err != nil {
				panic(err)
			}
			block.Results[i] = make([]Result, 0, len(out.Rates))
			for _, rate := range out.Rates {
				r := RunVC(VCConfig{
					Routing: alg,
					RunParams: RunParams{
						Pattern:       pat.make(),
						InjectionRate: rate,
						WarmupCycles:  warmup,
						MeasureCycles: measure,
						Seed:          seed + int64(i),
					},
				})
				if r.Sustainable && r.ThroughputFlitsPerUs > block.BestThroughput[i] {
					block.BestThroughput[i] = r.ThroughputFlitsPerUs
				}
				block.Results[i] = append(block.Results[i], r)
			}
		}
		out.Patterns = append(out.Patterns, block)
	}
	return out
}

// Table renders the comparison in the layout archived under
// docs/results-extension-vc.txt (byte-identical to the historical
// preformatted output of VCComparison).
func (r VCComparisonResult) Table() string {
	var b strings.Builder
	b.WriteString("extension-vc: double-y (2 virtual channels on y links, minimal fully adaptive)\n")
	b.WriteString("vs. the no-extra-channel algorithms on a 16x16 mesh (cf. Section 7 / [18])\n\n")
	for _, pat := range r.Patterns {
		fmt.Fprintf(&b, "%s:\n", pat.Pattern)
		fmt.Fprintf(&b, "%-8s", "rate")
		for _, a := range r.Algorithms {
			fmt.Fprintf(&b, " | %27s", a)
		}
		fmt.Fprintf(&b, "\n%-8s", "")
		for range r.Algorithms {
			fmt.Fprintf(&b, " | %12s %8s %5s", "thr flits/us", "lat us", "sust")
		}
		b.WriteString("\n")
		for ri, rate := range r.Rates {
			fmt.Fprintf(&b, "%-8.3f", rate)
			for ai := range r.Algorithms {
				res := pat.Results[ai][ri]
				sust := " "
				if res.Sustainable {
					sust = "yes"
				}
				fmt.Fprintf(&b, " | %12.1f %8.2f %5s", res.ThroughputFlitsPerUs, res.AvgLatencyUs, sust)
			}
			b.WriteString("\n")
		}
		b.WriteString("max sustainable: ")
		for ai, a := range r.Algorithms {
			fmt.Fprintf(&b, "%s %.1f  ", a, pat.BestThroughput[ai])
		}
		b.WriteString("\n\n")
	}
	return b.String()
}
