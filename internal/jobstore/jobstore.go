// Package jobstore persists job lifecycle state in a directory shared by
// every turnserved replica, so a crash loses no accepted work and any
// number of processes can execute against one cache directory without
// double-running a job.
//
// Two kinds of file live under the store directory, both named by the
// job's content address (the same hex SHA-256 key the result cache uses):
//
//	<key>.journal  append-only lifecycle log
//	<key>.lease    current execution lease
//	<key>.claim    short-lived lock serializing lease transitions
//
// The journal is a sequence of CRC-framed records (magic "TMJ1", length,
// CRC32 of the payload, JSON payload — the same self-checking discipline
// as the cache's TMC1 entries): one submitted record, then per attempt a
// started record and its point records, retrying records between
// attempts, and exactly one terminal record. The submitted record is
// written by atomic rename (a journal either exists whole or not at all);
// later records are appended, with fsync on the lifecycle transitions and
// best-effort buffering for points. Replay stops at the first frame that
// fails its checksum and truncates the torn tail away, so a crash mid-
// append costs at most the unsynced suffix — never the job.
//
// Leases are the mutual-exclusion and fencing layer: a replica may only
// execute a job while it holds the job's lease, leases carry a
// monotonically-increasing generation (the fencing token recorded in every
// started record), and a lease that is not renewed within its TTL may be
// claimed by any peer — which is how a SIGKILLed replica's in-flight jobs
// get requeued. A revived owner whose lease was stolen discovers it via
// Check before writing its terminal record and stands down. Lease
// transitions are serialized by a .claim lockfile (O_CREATE|O_EXCL, stale-
// broken after a few seconds), and the lease file itself is replaced by
// atomic rename, so readers never observe a torn lease.
//
// All timestamps compare against the local wall clock: replicas share a
// filesystem, and the deployment model is N processes on one machine (or
// one coherent shared mount).
package jobstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// RecordKind labels one journal record.
type RecordKind string

const (
	// RecordSubmitted opens a journal: the job's identity, spec and client.
	RecordSubmitted RecordKind = "submitted"
	// RecordStarted marks an execution attempt: owner, fencing token,
	// attempt number. It resets the point log (a new attempt restreams).
	RecordStarted RecordKind = "started"
	// RecordPoint is one streamed point event, kept so SSE replay can be
	// reconstructed after a restart.
	RecordPoint RecordKind = "point"
	// RecordRetrying marks a transient failure awaiting its backoff.
	RecordRetrying RecordKind = "retrying"
	// RecordTerminal closes the journal: done, failed or canceled. Only
	// the first terminal record counts; replay ignores anything after it.
	RecordTerminal RecordKind = "terminal"
)

// Record is one journal entry. Fields are populated per kind; see the
// RecordKind docs.
type Record struct {
	Kind   RecordKind `json:"kind"`
	Time   time.Time  `json:"time"`
	ID     string     `json:"id,omitempty"`     // submitted: fleet-unique job id
	Client string     `json:"client,omitempty"` // submitted: fairness identity
	// Spec is the submitted job spec, verbatim JSON, so a recovering
	// replica can rebuild and re-run the job without the submitter.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Owner and Fence identify the attempt's executor: the replica id and
	// the lease generation it held when it started. A terminal record from
	// a stale fence is never written (see Store.Check).
	Owner   string `json:"owner,omitempty"`
	Fence   uint64 `json:"fence,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Point is one sim.PointEvent, verbatim JSON.
	Point json.RawMessage `json:"point,omitempty"`
	// State, Error and Class describe retrying and terminal records.
	State string `json:"state,omitempty"`
	Error string `json:"error,omitempty"`
	Class string `json:"class,omitempty"`
}

// JobInfo is a journal replayed into its current truth.
type JobInfo struct {
	Key      string
	ID       string
	Client   string
	Spec     json.RawMessage
	State    string // "queued", "running", "retrying", "done", "failed", "canceled"
	Owner    string // the last attempt's executor
	Fence    uint64 // the last attempt's fencing token
	Attempts int
	Error    string
	Class    string
	Created  time.Time
	Updated  time.Time
	// Points are the latest attempt's streamed points (loaded only when
	// asked for; PointCount is always set).
	Points     []json.RawMessage
	PointCount int
	// Truncated reports a corrupt tail was cut off during replay.
	Truncated bool
}

// Terminal reports whether the job has reached a final state.
func (i JobInfo) Terminal() bool {
	return i.State == "done" || i.State == "failed" || i.State == "canceled"
}

// Lease is a held execution lease: proof, until Expires, that Owner may
// run the job, and the fencing token Gen that orders owners over the
// job's lifetime.
type Lease struct {
	Key     string
	Owner   string
	Gen     uint64
	Expires time.Time
}

// HeldError reports a Claim refused because a live lease belongs to
// another owner.
type HeldError struct {
	Owner   string
	Expires time.Time
}

func (e *HeldError) Error() string {
	return fmt.Sprintf("jobstore: lease held by %q until %s", e.Owner, e.Expires.Format(time.RFC3339))
}

// ErrLost reports a Renew on a lease that is no longer ours: it expired
// and a peer claimed it. The holder must stop publishing results for the
// job.
var ErrLost = errors.New("jobstore: lease lost to another owner")

// keyPattern mirrors the cache store's guard: only content-address-shaped
// keys may name files, so a hostile key cannot traverse the directory.
var keyPattern = regexp.MustCompile(`^[a-zA-Z0-9_-]{4,128}$`)

const (
	journalSuffix = ".journal"
	leaseSuffix   = ".lease"
	claimSuffix   = ".claim"
	// staleClaimAfter breaks a .claim lockfile left by a crashed process.
	// Claim critical sections are a few file operations — microseconds to
	// low milliseconds — so anything this old is garbage, not a holder.
	staleClaimAfter = 5 * time.Second
	// claimWait bounds how long a claimer spins on a busy lockfile.
	claimWait = 5 * time.Second
)

// Store is the durable job state shared by replicas under one directory.
// All methods are safe for concurrent use by multiple goroutines and
// multiple processes.
type Store struct {
	dir string

	mu    sync.Mutex
	locks map[string]*sync.Mutex // per-key append serialization in-process
}

// Open creates (if needed) and opens the store directory.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, errors.New("jobstore: empty directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	return &Store{dir: dir, locks: make(map[string]*sync.Mutex)}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(key, suffix string) string {
	return filepath.Join(s.dir, key+suffix)
}

func (s *Store) keyLock(key string) *sync.Mutex {
	s.mu.Lock()
	defer s.mu.Unlock()
	l := s.locks[key]
	if l == nil {
		l = &sync.Mutex{}
		s.locks[key] = l
	}
	return l
}

func checkKey(key string) error {
	if !keyPattern.MatchString(key) {
		return fmt.Errorf("jobstore: key %q is not a content address", key)
	}
	return nil
}

// ---- journal framing ----

var frameMagic = []byte("TMJ1")

const frameHeader = 4 + 4 + 4 // magic + length + CRC32

func appendFrame(buf []byte, payload []byte) []byte {
	var hdr [frameHeader]byte
	copy(hdr[:4], frameMagic)
	binary.BigEndian.PutUint32(hdr[4:8], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[8:12], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// parseFrames walks raw and returns the decoded payloads plus the byte
// offset of the first corrupt or torn frame (== len(raw) when the whole
// file parsed).
func parseFrames(raw []byte) (payloads [][]byte, goodEnd int) {
	off := 0
	for off+frameHeader <= len(raw) {
		if string(raw[off:off+4]) != string(frameMagic) {
			return payloads, off
		}
		n := int(binary.BigEndian.Uint32(raw[off+4 : off+8]))
		if n < 0 || off+frameHeader+n > len(raw) {
			return payloads, off
		}
		payload := raw[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != binary.BigEndian.Uint32(raw[off+8:off+12]) {
			return payloads, off
		}
		payloads = append(payloads, payload)
		off += frameHeader + n
	}
	return payloads, off
}

// Create opens a fresh journal for key with the submitted record, via
// atomic rename: the journal appears whole or not at all, and an existing
// journal (a resubmission after a terminal failure) is replaced. The file
// and directory are fsynced before rename so the record survives a crash.
func (s *Store) Create(key string, rec Record) error {
	if err := checkKey(key); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encoding record: %w", err)
	}
	lock := s.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	framed := appendFrame(nil, payload)
	tmp, err := os.CreateTemp(s.dir, "journal-*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(framed); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key, journalSuffix)); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return syncDir(s.dir)
}

// Append adds one record to key's journal. syncDisk fsyncs the write —
// required for lifecycle transitions (started, retrying, terminal), while
// point records skip it: losing the unsynced tail of a point log costs a
// re-simulation of cached points, not correctness, and the submit/stream
// hot path must not eat an fsync per point.
func (s *Store) Append(key string, rec Record, syncDisk bool) error {
	if err := checkKey(key); err != nil {
		return err
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("jobstore: encoding record: %w", err)
	}
	lock := s.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	f, err := os.OpenFile(s.path(key, journalSuffix), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer f.Close()
	if _, err := f.Write(appendFrame(nil, payload)); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if syncDisk {
		if err := f.Sync(); err != nil {
			return fmt.Errorf("jobstore: %w", err)
		}
	}
	return nil
}

// Job replays key's journal. ok is false when no journal exists. A corrupt
// tail is truncated off the file (best-effort) and flagged in the info, so
// one torn append can never wedge replay forever.
func (s *Store) Job(key string, withPoints bool) (JobInfo, bool, error) {
	if err := checkKey(key); err != nil {
		return JobInfo{}, false, err
	}
	lock := s.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	return s.replayLocked(key, withPoints)
}

func (s *Store) replayLocked(key string, withPoints bool) (JobInfo, bool, error) {
	p := s.path(key, journalSuffix)
	raw, err := os.ReadFile(p)
	if err != nil {
		if os.IsNotExist(err) {
			return JobInfo{}, false, nil
		}
		return JobInfo{}, false, fmt.Errorf("jobstore: %w", err)
	}
	payloads, goodEnd := parseFrames(raw)
	info := JobInfo{Key: key, State: "queued"}
	if goodEnd < len(raw) {
		info.Truncated = true
		// Cut the torn tail so later appends extend a valid journal
		// instead of burying records behind garbage.
		_ = os.Truncate(p, int64(goodEnd))
	}
	if len(payloads) == 0 {
		return JobInfo{}, false, fmt.Errorf("jobstore: journal for %s has no valid records", key)
	}
	for _, payload := range payloads {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			continue // frame intact but payload unintelligible: skip it
		}
		if info.Terminal() {
			break // first terminal record wins; ignore a stale fence's tail
		}
		if rec.Time.After(info.Updated) {
			info.Updated = rec.Time
		}
		switch rec.Kind {
		case RecordSubmitted:
			info.ID, info.Client, info.Spec, info.Created = rec.ID, rec.Client, rec.Spec, rec.Time
		case RecordStarted:
			info.State = "running"
			info.Owner, info.Fence = rec.Owner, rec.Fence
			if rec.Attempt > info.Attempts {
				info.Attempts = rec.Attempt
			}
			info.Points, info.PointCount = nil, 0 // a new attempt restreams
			info.Error, info.Class = "", ""
		case RecordPoint:
			info.PointCount++
			if withPoints {
				info.Points = append(info.Points, rec.Point)
			}
		case RecordRetrying:
			info.State = "retrying"
			info.Error, info.Class = rec.Error, rec.Class
		case RecordTerminal:
			info.State = rec.State
			info.Error, info.Class = rec.Error, rec.Class
			if rec.Attempt > info.Attempts {
				info.Attempts = rec.Attempt
			}
		}
	}
	return info, true, nil
}

// Records returns key's journal verbatim — every intact record in append
// order, a corrupt tail silently excluded, nothing replayed or collapsed.
// It is the inspection API the crash harness uses to assert exactly-once
// properties (one terminal record, monotone fencing tokens) that JobInfo's
// replayed summary cannot express. ok is false when no journal exists.
func (s *Store) Records(key string) (recs []Record, ok bool, err error) {
	if err := checkKey(key); err != nil {
		return nil, false, err
	}
	lock := s.keyLock(key)
	lock.Lock()
	defer lock.Unlock()
	raw, err := os.ReadFile(s.path(key, journalSuffix))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("jobstore: %w", err)
	}
	payloads, _ := parseFrames(raw)
	for _, payload := range payloads {
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			continue
		}
		recs = append(recs, rec)
	}
	return recs, true, nil
}

// List replays every journal in the store, sorted by creation time then
// key for a stable order. Unreadable journals are skipped — a listing must
// not fail because one job's file is torn.
func (s *Store) List(withPoints bool) ([]JobInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("jobstore: %w", err)
	}
	var out []JobInfo
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || filepath.Ext(name) != journalSuffix {
			continue
		}
		key := name[:len(name)-len(journalSuffix)]
		if !keyPattern.MatchString(key) {
			continue
		}
		info, ok, err := s.Job(key, withPoints)
		if err != nil || !ok {
			continue
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Created.Equal(out[j].Created) {
			return out[i].Created.Before(out[j].Created)
		}
		return out[i].Key < out[j].Key
	})
	return out, nil
}

// ByID finds the job whose submitted record carries id. It scans the
// store; id lookups are the cold path (a client polling a pre-restart job
// URL), key lookups the hot one.
func (s *Store) ByID(id string) (JobInfo, bool, error) {
	if id == "" {
		return JobInfo{}, false, nil
	}
	infos, err := s.List(false)
	if err != nil {
		return JobInfo{}, false, err
	}
	for _, info := range infos {
		if info.ID == id {
			return info, true, nil
		}
	}
	return JobInfo{}, false, nil
}

// ---- leases ----

// leaseFile is the on-disk lease encoding.
type leaseFile struct {
	Owner   string `json:"owner"`
	Gen     uint64 `json:"gen"`
	Expires int64  `json:"expires_unix_nano"`
}

// withClaimLock serializes lease transitions for key across processes via
// an O_EXCL lockfile, breaking locks left by crashed claimers.
func (s *Store) withClaimLock(key string, fn func() error) error {
	lockPath := s.path(key, claimSuffix)
	deadline := time.Now().Add(claimWait)
	for {
		f, err := os.OpenFile(lockPath, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err == nil {
			f.Close()
			break
		}
		if !os.IsExist(err) {
			return fmt.Errorf("jobstore: claim lock: %w", err)
		}
		if fi, serr := os.Stat(lockPath); serr == nil && time.Since(fi.ModTime()) > staleClaimAfter {
			os.Remove(lockPath) // stale: its creator died mid-claim
			continue
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("jobstore: claim lock for %s busy", key)
		}
		time.Sleep(time.Millisecond)
	}
	defer os.Remove(lockPath)
	return fn()
}

func (s *Store) readLease(key string) (leaseFile, bool, error) {
	raw, err := os.ReadFile(s.path(key, leaseSuffix))
	if err != nil {
		if os.IsNotExist(err) {
			return leaseFile{}, false, nil
		}
		return leaseFile{}, false, fmt.Errorf("jobstore: %w", err)
	}
	var lf leaseFile
	if err := json.Unmarshal(raw, &lf); err != nil {
		// A torn lease file cannot happen via the rename path, but treat
		// garbage as absent rather than wedging the job forever.
		return leaseFile{}, false, nil
	}
	return lf, true, nil
}

func (s *Store) writeLease(key string, lf leaseFile) error {
	raw, err := json.Marshal(lf)
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, "lease-*")
	if err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(key, leaseSuffix)); err != nil {
		return fmt.Errorf("jobstore: %w", err)
	}
	return nil
}

// Claim takes key's lease for owner with the given TTL. It succeeds when
// no lease exists, the existing lease has expired, or owner already holds
// it (re-claiming extends and re-fences). The returned generation is
// strictly greater than every earlier owner's — the fencing token.
// prevOwner names who held the lease before (empty for a fresh claim), so
// callers can tell a first claim from a takeover. A live lease held by
// someone else returns *HeldError.
func (s *Store) Claim(key, owner string, ttl time.Duration) (lease Lease, prevOwner string, err error) {
	if err := checkKey(key); err != nil {
		return Lease{}, "", err
	}
	err = s.withClaimLock(key, func() error {
		lf, ok, err := s.readLease(key)
		if err != nil {
			return err
		}
		if ok {
			prevOwner = lf.Owner
			if lf.Owner != owner && time.Now().UnixNano() < lf.Expires {
				return &HeldError{Owner: lf.Owner, Expires: time.Unix(0, lf.Expires)}
			}
		}
		next := leaseFile{Owner: owner, Gen: lf.Gen + 1, Expires: time.Now().Add(ttl).UnixNano()}
		if err := s.writeLease(key, next); err != nil {
			return err
		}
		lease = Lease{Key: key, Owner: owner, Gen: next.Gen, Expires: time.Unix(0, next.Expires)}
		return nil
	})
	if err != nil {
		return Lease{}, "", err
	}
	return lease, prevOwner, nil
}

// Renew extends l by ttl, updating l.Expires in place. ErrLost means a
// peer claimed the lease after it expired: the caller no longer owns the
// job and must not write its terminal record.
func (s *Store) Renew(l *Lease, ttl time.Duration) error {
	if err := checkKey(l.Key); err != nil {
		return err
	}
	return s.withClaimLock(l.Key, func() error {
		lf, ok, err := s.readLease(l.Key)
		if err != nil {
			return err
		}
		if !ok || lf.Owner != l.Owner || lf.Gen != l.Gen {
			return ErrLost
		}
		lf.Expires = time.Now().Add(ttl).UnixNano()
		if err := s.writeLease(l.Key, lf); err != nil {
			return err
		}
		l.Expires = time.Unix(0, lf.Expires)
		return nil
	})
}

// Release drops l if (and only if) it is still ours; releasing a lost
// lease is a harmless no-op.
func (s *Store) Release(l Lease) error {
	if err := checkKey(l.Key); err != nil {
		return err
	}
	return s.withClaimLock(l.Key, func() error {
		lf, ok, err := s.readLease(l.Key)
		if err != nil {
			return err
		}
		if !ok || lf.Owner != l.Owner || lf.Gen != l.Gen {
			return nil
		}
		return os.Remove(s.path(l.Key, leaseSuffix))
	})
}

// Check reports whether l is still the live lease — owner and generation
// both match. It is the fencing gate a finishing attempt passes before
// writing its terminal record: a revived owner whose lease was stolen sees
// false here and stands down.
func (s *Store) Check(l Lease) bool {
	lf, ok, err := s.readLease(l.Key)
	if err != nil || !ok {
		return false
	}
	return lf.Owner == l.Owner && lf.Gen == l.Gen
}

// Holder returns key's current lease, expired or not; ok is false when no
// lease file exists. The caller decides what expiry means (the sweeper
// treats an expired holder as a dead replica).
func (s *Store) Holder(key string) (Lease, bool, error) {
	if err := checkKey(key); err != nil {
		return Lease{}, false, err
	}
	lf, ok, err := s.readLease(key)
	if err != nil || !ok {
		return Lease{}, false, err
	}
	return Lease{Key: key, Owner: lf.Owner, Gen: lf.Gen, Expires: time.Unix(0, lf.Expires)}, true, nil
}

// Expired reports whether l's TTL has passed.
func (l Lease) Expired() bool { return time.Now().After(l.Expires) }

// syncDir fsyncs a directory so a just-renamed file's entry is durable.
// Filesystems that refuse to sync directories (some CI tmpfs mounts) are
// tolerated: the rename itself is still atomic.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
