package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"
)

const testKey = "a1b2c3d4e5f60718293a4b5c6d7e8f901234567890abcdef1234567890abcdef"

func newStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCreate(t *testing.T, s *Store, key, id string) {
	t.Helper()
	rec := Record{
		Kind: RecordSubmitted, Time: time.Now(), ID: id, Client: "c1",
		Spec: json.RawMessage(`{"figures":["figure13"]}`),
	}
	if err := s.Create(key, rec); err != nil {
		t.Fatal(err)
	}
}

func TestJournalLifecycleReplay(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, testKey, "job-a-1")
	appendRec := func(rec Record, sync bool) {
		t.Helper()
		if err := s.Append(testKey, rec, sync); err != nil {
			t.Fatal(err)
		}
	}
	appendRec(Record{Kind: RecordStarted, Time: time.Now(), Owner: "a", Fence: 1, Attempt: 1}, true)
	appendRec(Record{Kind: RecordPoint, Time: time.Now(), Point: json.RawMessage(`{"figure":"figure13","rate":0.01}`)}, false)
	appendRec(Record{Kind: RecordPoint, Time: time.Now(), Point: json.RawMessage(`{"figure":"figure13","rate":0.05}`)}, false)
	appendRec(Record{Kind: RecordRetrying, Time: time.Now(), Error: "disk glitch", Class: "transient"}, true)
	appendRec(Record{Kind: RecordStarted, Time: time.Now(), Owner: "b", Fence: 2, Attempt: 2}, true)
	appendRec(Record{Kind: RecordPoint, Time: time.Now(), Point: json.RawMessage(`{"figure":"figure13","rate":0.01}`)}, false)

	info, ok, err := s.Job(testKey, true)
	if err != nil || !ok {
		t.Fatalf("Job = %v, %v", ok, err)
	}
	if info.ID != "job-a-1" || info.Client != "c1" {
		t.Fatalf("identity = %q/%q", info.ID, info.Client)
	}
	if info.State != "running" || info.Owner != "b" || info.Fence != 2 || info.Attempts != 2 {
		t.Fatalf("state = %q owner=%q fence=%d attempts=%d", info.State, info.Owner, info.Fence, info.Attempts)
	}
	// A new attempt resets the point log: only attempt 2's point remains.
	if info.PointCount != 1 || len(info.Points) != 1 {
		t.Fatalf("points = %d/%d, want 1/1", info.PointCount, len(info.Points))
	}
	if info.Error != "" || info.Class != "" {
		t.Fatalf("started record should clear error, got %q/%q", info.Error, info.Class)
	}

	appendRec(Record{Kind: RecordTerminal, Time: time.Now(), State: "done", Attempt: 2}, true)
	// Records after the first terminal are ignored — a stale fence cannot
	// rewrite history.
	appendRec(Record{Kind: RecordTerminal, Time: time.Now(), State: "failed", Error: "late duplicate"}, true)
	info, _, err = s.Job(testKey, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.State != "done" || info.Error != "" {
		t.Fatalf("after terminal: state=%q err=%q, want done with no error", info.State, info.Error)
	}
	if !info.Terminal() {
		t.Fatal("Terminal() = false for done")
	}
}

func TestJournalCorruptTailTruncated(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, testKey, "job-a-1")
	if err := s.Append(testKey, Record{Kind: RecordStarted, Time: time.Now(), Owner: "a", Fence: 1, Attempt: 1}, true); err != nil {
		t.Fatal(err)
	}
	p := s.path(testKey, journalSuffix)
	clean, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	// A torn append: half a frame of garbage at the tail.
	if err := os.WriteFile(p, append(append([]byte(nil), clean...), []byte("TMJ1\x00\x00\x00\xffgarbage")...), 0o644); err != nil {
		t.Fatal(err)
	}
	info, ok, err := s.Job(testKey, false)
	if err != nil || !ok {
		t.Fatalf("Job = %v, %v", ok, err)
	}
	if !info.Truncated {
		t.Fatal("corrupt tail not reported")
	}
	if info.State != "running" || info.Attempts != 1 {
		t.Fatalf("replay after truncation: state=%q attempts=%d", info.State, info.Attempts)
	}
	// The tail was cut off the file, so the journal is appendable again
	// and replays clean.
	if raw, _ := os.ReadFile(p); len(raw) != len(clean) {
		t.Fatalf("file length %d after truncation, want %d", len(raw), len(clean))
	}
	if err := s.Append(testKey, Record{Kind: RecordTerminal, Time: time.Now(), State: "done"}, true); err != nil {
		t.Fatal(err)
	}
	info, _, _ = s.Job(testKey, false)
	if info.State != "done" || info.Truncated {
		t.Fatalf("after repair: state=%q truncated=%v", info.State, info.Truncated)
	}
}

func TestJournalBitFlipDetected(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, testKey, "job-a-1")
	if err := s.Append(testKey, Record{Kind: RecordStarted, Time: time.Now(), Owner: "a", Fence: 1, Attempt: 1}, true); err != nil {
		t.Fatal(err)
	}
	p := s.path(testKey, journalSuffix)
	raw, _ := os.ReadFile(p)
	raw[len(raw)-3] ^= 0x40 // flip a bit inside the last record's payload
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	info, ok, err := s.Job(testKey, false)
	if err != nil || !ok {
		t.Fatalf("Job = %v, %v", ok, err)
	}
	// The CRC catches the flip; replay keeps the intact prefix only.
	if !info.Truncated || info.State != "queued" {
		t.Fatalf("truncated=%v state=%q, want truncated queued", info.Truncated, info.State)
	}
}

func TestJournalAllRecordsCorruptErrors(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, testKey, "job-a-1")
	p := s.path(testKey, journalSuffix)
	if err := os.WriteFile(p, []byte("not a journal at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Job(testKey, false); err == nil {
		t.Fatal("fully-corrupt journal replayed without error")
	}
}

func TestCreateReplacesTerminalJournal(t *testing.T) {
	s := newStore(t)
	mustCreate(t, s, testKey, "job-a-1")
	if err := s.Append(testKey, Record{Kind: RecordTerminal, Time: time.Now(), State: "failed", Error: "boom"}, true); err != nil {
		t.Fatal(err)
	}
	// A resubmission after terminal failure starts a fresh journal.
	mustCreate(t, s, testKey, "job-a-2")
	info, _, err := s.Job(testKey, false)
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "job-a-2" || info.State != "queued" || info.Error != "" {
		t.Fatalf("after recreate: %+v", info)
	}
}

func TestLeaseClaimRenewReleaseFencing(t *testing.T) {
	s := newStore(t)
	l1, prev, err := s.Claim(testKey, "alpha", time.Minute)
	if err != nil || prev != "" {
		t.Fatalf("fresh claim: prev=%q err=%v", prev, err)
	}
	if l1.Gen != 1 || l1.Owner != "alpha" {
		t.Fatalf("lease = %+v", l1)
	}
	// Held by alpha: beta is refused with the holder's identity.
	if _, _, err := s.Claim(testKey, "beta", time.Minute); err == nil {
		t.Fatal("claim of a live lease succeeded")
	} else {
		var held *HeldError
		if !errors.As(err, &held) || held.Owner != "alpha" {
			t.Fatalf("err = %v, want HeldError{alpha}", err)
		}
	}
	// Alpha re-claims its own live lease: allowed, generation advances.
	l1b, prev, err := s.Claim(testKey, "alpha", time.Minute)
	if err != nil || prev != "alpha" || l1b.Gen != 2 {
		t.Fatalf("re-claim: lease=%+v prev=%q err=%v", l1b, prev, err)
	}
	if !s.Check(l1b) || s.Check(l1) {
		t.Fatal("Check should accept the live generation and reject the stale one")
	}
	if err := s.Renew(&l1b, time.Minute); err != nil {
		t.Fatalf("renew live lease: %v", err)
	}
	// Renewing the superseded generation is a lost lease.
	if err := s.Renew(&l1, time.Minute); !errors.Is(err, ErrLost) {
		t.Fatalf("renew stale lease: %v, want ErrLost", err)
	}
	// Release of a stale lease is a no-op; the live one removes the file.
	if err := s.Release(l1); err != nil {
		t.Fatal(err)
	}
	if !s.Check(l1b) {
		t.Fatal("stale release removed the live lease")
	}
	if err := s.Release(l1b); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Holder(testKey); ok {
		t.Fatal("lease file survived release")
	}
}

func TestLeaseExpiryAllowsTakeover(t *testing.T) {
	s := newStore(t)
	l1, _, err := s.Claim(testKey, "alpha", 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if !l1.Expired() {
		t.Fatal("lease did not expire")
	}
	l2, prev, err := s.Claim(testKey, "beta", time.Minute)
	if err != nil {
		t.Fatalf("takeover of expired lease: %v", err)
	}
	if prev != "alpha" || l2.Gen != l1.Gen+1 {
		t.Fatalf("takeover: prev=%q gen=%d (was %d)", prev, l2.Gen, l1.Gen)
	}
	// The fencing gate: alpha revives, discovers it lost, must stand down.
	if s.Check(l1) {
		t.Fatal("stale owner still passes Check after takeover")
	}
	if err := s.Renew(&l1, time.Minute); !errors.Is(err, ErrLost) {
		t.Fatalf("stale renew: %v, want ErrLost", err)
	}
}

func TestConcurrentClaimsSingleWinner(t *testing.T) {
	s := newStore(t)
	const claimers = 8
	var wg sync.WaitGroup
	wins := make(chan Lease, claimers)
	for i := 0; i < claimers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if l, _, err := s.Claim(testKey, fmt.Sprintf("replica-%d", i), time.Minute); err == nil {
				wins <- l
			}
		}(i)
	}
	wg.Wait()
	close(wins)
	var winners []Lease
	for l := range wins {
		winners = append(winners, l)
	}
	if len(winners) != 1 {
		t.Fatalf("%d claimers won a fresh lease, want exactly 1: %+v", len(winners), winners)
	}
	holder, ok, err := s.Holder(testKey)
	if err != nil || !ok {
		t.Fatalf("Holder = %v, %v", ok, err)
	}
	if holder.Owner != winners[0].Owner || holder.Gen != winners[0].Gen {
		t.Fatalf("holder %+v != winner %+v", holder, winners[0])
	}
}

func TestStaleClaimLockBroken(t *testing.T) {
	s := newStore(t)
	lockPath := s.path(testKey, claimSuffix)
	if err := os.WriteFile(lockPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	old := time.Now().Add(-time.Minute)
	if err := os.Chtimes(lockPath, old, old); err != nil {
		t.Fatal(err)
	}
	// A crashed claimer's stale lock must not wedge the job forever.
	if _, _, err := s.Claim(testKey, "alpha", time.Minute); err != nil {
		t.Fatalf("claim behind stale lock: %v", err)
	}
}

func TestListAndByID(t *testing.T) {
	s := newStore(t)
	keys := []string{
		"aaaa567890abcdef1234567890abcdef1234567890abcdef1234567890abcdef",
		"bbbb567890abcdef1234567890abcdef1234567890abcdef1234567890abcdef",
	}
	base := time.Now()
	for i, k := range keys {
		rec := Record{Kind: RecordSubmitted, Time: base.Add(time.Duration(i) * time.Second), ID: fmt.Sprintf("job-a-%d", i+1), Spec: json.RawMessage(`{}`)}
		if err := s.Create(k, rec); err != nil {
			t.Fatal(err)
		}
	}
	// A stray torn journal must not break the listing.
	if err := os.WriteFile(s.path("cccc567890abcdef1234567890abcdef1234567890abcdef1234567890abcdef", journalSuffix), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err := s.List(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Key != keys[0] || infos[1].Key != keys[1] {
		t.Fatalf("List = %+v", infos)
	}
	info, ok, err := s.ByID("job-a-2")
	if err != nil || !ok || info.Key != keys[1] {
		t.Fatalf("ByID = %+v, %v, %v", info, ok, err)
	}
	if _, ok, _ := s.ByID("job-x-9"); ok {
		t.Fatal("ByID matched a nonexistent id")
	}
}

func TestKeyValidation(t *testing.T) {
	s := newStore(t)
	for _, bad := range []string{"", "../escape", "a/b", "x"} {
		if err := s.Create(bad, Record{Kind: RecordSubmitted}); err == nil {
			t.Fatalf("Create(%q) accepted a non-content-address key", bad)
		}
		if _, _, err := s.Claim(bad, "a", time.Minute); err == nil {
			t.Fatalf("Claim(%q) accepted a non-content-address key", bad)
		}
	}
}

// BenchmarkJournalAppend pins the per-point journal append — the write
// that rides the streaming hot path (no fsync; lifecycle records fsync,
// points do not). BENCH_baseline.json holds its absolute ceiling so
// durability cannot regress the submit/stream path by stealth.
func BenchmarkJournalAppend(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := s.Create(testKey, Record{Kind: RecordSubmitted, Time: time.Now(), ID: "job-b-1", Spec: json.RawMessage(`{"figures":["figure13"]}`)}); err != nil {
		b.Fatal(err)
	}
	point := json.RawMessage(`{"kind":"figure","figure":"figure13","algorithm":"xy","rate_index":0,"rate":0.01,"seed":42,"wall_ms":1.5,"done":1,"total":4}`)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Append(testKey, Record{Kind: RecordPoint, Time: time.Unix(0, int64(i)), Point: point}, false); err != nil {
			b.Fatal(err)
		}
	}
}
