// Package stats provides the small statistics toolkit the experiment
// harness uses: streaming accumulators for latency samples and helpers for
// summarizing simulation measurement windows.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Accumulator tracks count, mean, variance (Welford), minimum and maximum
// of a stream of samples. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (a *Accumulator) Add(v float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = v, v
	} else {
		if v < a.min {
			a.min = v
		}
		if v > a.max {
			a.max = v
		}
	}
	d := v - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (v - a.mean)
}

// Count reports the number of samples.
func (a *Accumulator) Count() int64 { return a.n }

// Mean reports the sample mean (0 with no samples).
func (a *Accumulator) Mean() float64 { return a.mean }

// Variance reports the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev reports the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Min reports the smallest sample (0 with no samples).
func (a *Accumulator) Min() float64 {
	return a.min
}

// Max reports the largest sample (0 with no samples).
func (a *Accumulator) Max() float64 {
	return a.max
}

// String summarizes the accumulator.
func (a *Accumulator) String() string {
	return fmt.Sprintf("n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f", a.n, a.Mean(), a.StdDev(), a.min, a.max)
}

// Sample is an Accumulator that also retains every value so that
// percentiles can be computed. Use it when the sample count is modest.
type Sample struct {
	Accumulator
	values []float64
	sorted bool
}

// Add records one sample.
func (s *Sample) Add(v float64) {
	s.Accumulator.Add(v)
	s.values = append(s.values, v)
	s.sorted = false
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest-rank,
// or 0 with no samples.
func (s *Sample) Percentile(p float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	if p <= 0 {
		return s.values[0]
	}
	if p >= 100 {
		return s.values[len(s.values)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.values))))
	if rank < 1 {
		rank = 1
	}
	return s.values[rank-1]
}
