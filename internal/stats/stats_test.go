package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	if a.Count() != 0 || a.Mean() != 0 || a.Variance() != 0 || a.Min() != 0 || a.Max() != 0 {
		t.Error("zero accumulator not zeroed")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(v)
	}
	if a.Count() != 8 {
		t.Errorf("Count = %d", a.Count())
	}
	if a.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", a.Mean())
	}
	// Population variance of this classic dataset is 4; sample variance
	// is 32/7.
	if math.Abs(a.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", a.Variance(), 32.0/7.0)
	}
	if math.Abs(a.StdDev()-math.Sqrt(32.0/7.0)) > 1e-12 {
		t.Errorf("StdDev = %v", a.StdDev())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", a.Min(), a.Max())
	}
	if a.String() == "" {
		t.Error("empty String()")
	}
}

func TestAccumulatorSingleSample(t *testing.T) {
	var a Accumulator
	a.Add(3)
	if a.Mean() != 3 || a.Variance() != 0 || a.Min() != 3 || a.Max() != 3 {
		t.Errorf("single sample stats wrong: %v", a.String())
	}
}

func TestAccumulatorMatchesNaiveMean(t *testing.T) {
	err := quick.Check(func(vals []float64) bool {
		var a Accumulator
		sum := 0.0
		n := 0
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
				continue
			}
			a.Add(v)
			sum += v
			n++
		}
		if n == 0 {
			return a.Count() == 0
		}
		naive := sum / float64(n)
		scale := math.Max(1, math.Abs(naive))
		return math.Abs(a.Mean()-naive)/scale < 1e-9
	}, nil)
	if err != nil {
		t.Error(err)
	}
}

func TestSamplePercentiles(t *testing.T) {
	var s Sample
	if s.Percentile(50) != 0 {
		t.Error("empty sample percentile not 0")
	}
	for i := 100; i >= 1; i-- { // reverse order: Percentile must sort
		s.Add(float64(i))
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 1}, {50, 50}, {95, 95}, {99, 99}, {100, 100}, {150, 100},
	}
	for _, c := range cases {
		if got := s.Percentile(c.p); got != c.want {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if s.Mean() != 50.5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	// Adding after a percentile query must keep working.
	s.Add(1000)
	if got := s.Percentile(100); got != 1000 {
		t.Errorf("Percentile(100) after Add = %v", got)
	}
}
