package turnmodel

import (
	"testing"
	"testing/quick"

	"turnmodel/internal/topology"
)

func TestTwelveOfSixteen(t *testing.T) {
	// Section 3: "Of the 16 different ways to prohibit these two turns,
	// 12 prevent deadlock".
	combos := Census2D(4, 4)
	if len(combos) != 16 {
		t.Fatalf("census has %d combinations, want 16", len(combos))
	}
	free := 0
	for _, c := range combos {
		if c.DeadlockFree {
			free++
		}
	}
	if free != 12 {
		t.Errorf("%d of 16 combinations deadlock free, want 12", free)
	}
}

func TestFigure4Combination(t *testing.T) {
	// Figure 4 prohibits a right turn and the left turn that reverses it;
	// the remaining six turns still complete both abstract cycles. The
	// four failing combinations are exactly those inverse pairs.
	combos := Census2D(4, 4)
	for _, c := range combos {
		inverse := c.FromCounter == (Turn{c.FromClockwise.To, c.FromClockwise.From})
		if inverse == c.DeadlockFree {
			t.Errorf("prohibiting {%v, %v}: deadlockFree=%v, inverse-pair=%v",
				c.FromClockwise, c.FromCounter, c.DeadlockFree, inverse)
		}
	}
}

func TestCensusSizeIndependent(t *testing.T) {
	// The verdicts must agree between a 3x3 and a 5x4 mesh.
	a := Census2D(3, 3)
	b := Census2D(5, 4)
	for i := range a {
		if a[i].DeadlockFree != b[i].DeadlockFree {
			t.Errorf("combination %d verdict differs between mesh sizes", i)
		}
	}
}

func TestThreeSymmetryClasses(t *testing.T) {
	// Section 3: "three are unique if symmetry is taken into account".
	classes := SymmetryClasses(Census2D(4, 4))
	if len(classes) != 3 {
		t.Fatalf("got %d symmetry classes, want 3", len(classes))
	}
	total := 0
	for _, cl := range classes {
		total += len(cl)
	}
	if total != 12 {
		t.Errorf("classes cover %d combinations, want 12", total)
	}
	// The three canonical algorithms must each appear in some class.
	find := func(cw, ccw Turn) bool {
		for _, cl := range classes {
			for _, c := range cl {
				if c.FromClockwise == cw && c.FromCounter == ccw {
					return true
				}
			}
		}
		return false
	}
	w, e, s, n := topology.West, topology.East, topology.South, topology.North
	// West-first: prohibit the two turns to the west: S->W (clockwise
	// cycle) and N->W (counterclockwise cycle).
	if !find(Turn{s, w}, Turn{n, w}) {
		t.Error("west-first combination not found among deadlock-free classes")
	}
	// North-last: prohibit the two turns out of north: N->E (clockwise)
	// and N->W (counterclockwise).
	if !find(Turn{n, e}, Turn{n, w}) {
		t.Error("north-last combination not found among deadlock-free classes")
	}
	// Negative-first: prohibit the two 90-degree positive-to-negative
	// turns: E->S (clockwise cycle) and N->W (counterclockwise cycle).
	if !find(Turn{e, s}, Turn{n, w}) {
		t.Error("negative-first combination not found among deadlock-free classes")
	}
	// The three must lie in three distinct classes.
	classOf := func(cw, ccw Turn) int {
		for i, cl := range classes {
			for _, c := range cl {
				if c.FromClockwise == cw && c.FromCounter == ccw {
					return i
				}
			}
		}
		return -1
	}
	wf := classOf(Turn{s, w}, Turn{n, w})
	nl := classOf(Turn{n, e}, Turn{n, w})
	nf := classOf(Turn{e, s}, Turn{n, w})
	if wf == nl || wf == nf || nl == nf {
		t.Errorf("canonical algorithms share a symmetry class: wf=%d nl=%d nf=%d", wf, nl, nf)
	}
}

func TestXYTurnsAreDeadlockFree(t *testing.T) {
	// Figure 3: the four turns the xy algorithm allows (turns out of x
	// travel into y travel) cannot form a cycle.
	topo := topology.NewMesh2D(4, 4)
	w, e, s, n := topology.West, topology.East, topology.South, topology.North
	allowed := NewSet(Turn{w, s}, Turn{w, n}, Turn{e, s}, Turn{e, n})
	g := FromTurns(topo, func(tr Turn) bool { return allowed.Contains(tr) })
	if cyc := g.FindCycle(); cyc != nil {
		t.Errorf("xy turn set has dependency cycle %v", cyc)
	}
}

func TestAllTurnsDeadlock(t *testing.T) {
	// With every turn allowed the dependency graph must be cyclic
	// (Figure 1's deadlock).
	topo := topology.NewMesh2D(3, 3)
	g := FromTurns(topo, func(tr Turn) bool { return tr.Kind() == Turn90 })
	cyc := g.FindCycle()
	if cyc == nil {
		t.Fatal("unrestricted turns produced an acyclic dependency graph")
	}
	// The cycle must chain: each channel ends where the next begins.
	for i, ch := range cyc {
		next := cyc[(i+1)%len(cyc)]
		if ch.To != next.From {
			t.Errorf("cycle does not chain: %v then %v", ch, next)
		}
	}
}

func TestProhibitionNecessityProperty(t *testing.T) {
	// Property (testing/quick): for any random subset of prohibited
	// turns in a 2D mesh, an acyclic dependency graph implies the subset
	// breaks both abstract cycles — breaking every abstract cycle is
	// necessary for deadlock freedom (Theorem 1's direction).
	topo := topology.NewMesh2D(4, 4)
	all := AllTurns90(2)
	err := quick.Check(func(mask uint8) bool {
		prohibited := NewSet()
		for i, turn := range all {
			if mask&(1<<uint(i)) != 0 {
				prohibited.Add(turn)
			}
		}
		g := FromTurns(topo, func(tr Turn) bool {
			return tr.Kind() == Turn90 && !prohibited.Contains(tr)
		})
		if g.DeadlockFree() && !BreaksAllAbstractCycles(2, prohibited) {
			return false
		}
		return true
	}, &quick.Config{MaxCount: 256})
	if err != nil {
		t.Error(err)
	}
}

func TestCDGStats(t *testing.T) {
	topo := topology.NewMesh2D(3, 3)
	g := FromTurns(topo, func(tr Turn) bool { return tr.Kind() == Turn90 })
	if g.Vertices() != len(topo.Channels()) {
		t.Errorf("Vertices() = %d, want %d", g.Vertices(), len(topo.Channels()))
	}
	if g.Edges() == 0 {
		t.Error("no edges in unrestricted CDG")
	}
	if got := g.Channel(0); got != topo.Channels()[0] {
		t.Errorf("Channel(0) = %v", got)
	}
}
