// Package turnmodel implements the paper's primary contribution: the turn
// model for designing deadlock-free, livelock-free, maximally adaptive
// wormhole routing algorithms without extra channels.
//
// The package provides the abstract machinery of Section 2 — directions,
// turns, abstract cycles, turn prohibition — together with the machinery
// used by the deadlock-freedom proofs: channel numbering schemes
// (Theorems 2, 3, 5) and channel dependency graph construction with cycle
// detection (the Dally–Seitz criterion the proofs reduce to).
package turnmodel

import (
	"fmt"

	"turnmodel/internal/topology"
)

// Turn is a transition from travelling in direction From to travelling in
// direction To at some intermediate router.
type Turn struct {
	From, To topology.Direction
}

func (t Turn) String() string { return fmt.Sprintf("%v->%v", t.From, t.To) }

// Kind classifies turns the way Step 2 of the model does.
type Kind int

const (
	// Turn90 is a turn between two different dimensions.
	Turn90 Kind = iota
	// Turn180 is a reversal within one dimension.
	Turn180
	// Turn0 is a transition between two virtual directions that share a
	// physical direction; it only exists with multiple channels per
	// physical direction, which the base model does not use.
	Turn0
)

// Kind reports the turn's class.
func (t Turn) Kind() Kind {
	switch {
	case t.From == t.To:
		return Turn0
	case t.From == t.To.Opposite():
		return Turn180
	default:
		return Turn90
	}
}

// Set is a set of turns, typically the turns a routing algorithm prohibits.
// The zero value is the empty set.
type Set struct {
	turns map[Turn]bool
}

// NewSet builds a set containing the given turns.
func NewSet(turns ...Turn) *Set {
	s := &Set{turns: make(map[Turn]bool, len(turns))}
	for _, t := range turns {
		s.turns[t] = true
	}
	return s
}

// Add inserts a turn.
func (s *Set) Add(t Turn) {
	if s.turns == nil {
		s.turns = make(map[Turn]bool)
	}
	s.turns[t] = true
}

// Contains reports membership.
func (s *Set) Contains(t Turn) bool { return s != nil && s.turns[t] }

// Len reports the number of turns in the set.
func (s *Set) Len() int {
	if s == nil {
		return 0
	}
	return len(s.turns)
}

// Turns lists the members in deterministic order (sorted by From, then To).
func (s *Set) Turns() []Turn {
	if s == nil {
		return nil
	}
	out := make([]Turn, 0, len(s.turns))
	for t := range s.turns {
		out = append(out, t)
	}
	sortTurns(out)
	return out
}

func sortTurns(ts []Turn) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && less(ts[j], ts[j-1]); j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

func less(a, b Turn) bool {
	if a.From != b.From {
		return a.From < b.From
	}
	return a.To < b.To
}

// AllTurns90 enumerates the 4n(n-1) 90-degree turns of an n-dimensional
// network: for each of the 2n directions there are 2n-2 turns to a
// different dimension.
func AllTurns90(n int) []Turn {
	var out []Turn
	for _, from := range topology.Directions(n) {
		for _, to := range topology.Directions(n) {
			if from.Dim() != to.Dim() {
				out = append(out, Turn{from, to})
			}
		}
	}
	return out
}
