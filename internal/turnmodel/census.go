package turnmodel

import "turnmodel/internal/topology"

// Combination is one way of prohibiting a single turn from each of the two
// abstract cycles of a 2D mesh (Section 3: "Of the 16 different ways to
// prohibit these two turns, 12 prevent deadlock and three are unique if
// symmetry is taken into account").
type Combination struct {
	// FromClockwise is the prohibited turn of the clockwise (right-turn)
	// cycle; FromCounter the one from the counterclockwise cycle.
	FromClockwise, FromCounter Turn
	// DeadlockFree records whether prohibiting exactly these two turns
	// leaves an acyclic channel dependency graph.
	DeadlockFree bool
}

// Census2D evaluates all 16 two-turn prohibitions on a concrete 2D mesh
// (the verdicts are mesh-size independent for meshes of at least 3x3; the
// extended cycles of Figure 4c need three rows and columns to form).
func Census2D(m, n int) []Combination {
	topo := topology.NewMesh2D(m, n)
	pc := PlaneCycles(0, 1)
	cw, ccw := pc[0], pc[1]
	var out []Combination
	for _, t1 := range cw.Turns {
		for _, t2 := range ccw.Turns {
			prohibited := NewSet(t1, t2)
			g := FromTurns(topo, func(t Turn) bool {
				return t.Kind() == Turn90 && !prohibited.Contains(t)
			})
			out = append(out, Combination{
				FromClockwise: t1,
				FromCounter:   t2,
				DeadlockFree:  g.DeadlockFree(),
			})
		}
	}
	return out
}

// dihedral4 enumerates the eight symmetries of the square as permutations
// of the four 2D directions. Each entry maps old direction -> new.
func dihedral4() [][4]topology.Direction {
	w, e, s, n := topology.West, topology.East, topology.South, topology.North
	identity := [4]topology.Direction{w, e, s, n}
	// rot90 counterclockwise: east->north, north->west, west->south, south->east.
	rot := func(p [4]topology.Direction) [4]topology.Direction {
		m := map[topology.Direction]topology.Direction{e: n, n: w, w: s, s: e}
		return [4]topology.Direction{m[p[0]], m[p[1]], m[p[2]], m[p[3]]}
	}
	// Mirror across the x axis: north<->south.
	mirror := func(p [4]topology.Direction) [4]topology.Direction {
		m := map[topology.Direction]topology.Direction{e: e, w: w, n: s, s: n}
		return [4]topology.Direction{m[p[0]], m[p[1]], m[p[2]], m[p[3]]}
	}
	var out [][4]topology.Direction
	p := identity
	for i := 0; i < 4; i++ {
		out = append(out, p, mirror(p))
		p = rot(p)
	}
	return out
}

func applySym(sym [4]topology.Direction, t Turn) Turn {
	return Turn{sym[int(t.From)], sym[int(t.To)]}
}

// SymmetryClasses groups the deadlock-free combinations of Census2D into
// equivalence classes under the eight symmetries of the square. The paper
// reports three classes; their canonical representatives are west-first,
// north-last and negative-first.
func SymmetryClasses(combos []Combination) [][]Combination {
	syms := dihedral4()
	type key struct{ a, b Turn }
	canon := func(c Combination) key {
		// Under a mirror symmetry the clockwise cycle maps onto the
		// counterclockwise one, so the pair must be treated as
		// unordered; normalize by sorting the two turns.
		best := key{}
		first := true
		for _, s := range syms {
			x, y := applySym(s, c.FromClockwise), applySym(s, c.FromCounter)
			if less(y, x) {
				x, y = y, x
			}
			k := key{x, y}
			if first || keyLess(k, best) {
				best, first = k, false
			}
		}
		return best
	}
	groups := make(map[key][]Combination)
	var order []key
	for _, c := range combos {
		if !c.DeadlockFree {
			continue
		}
		k := canon(c)
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], c)
	}
	out := make([][]Combination, 0, len(order))
	for _, k := range order {
		out = append(out, groups[k])
	}
	return out
}

func keyLess(a, b struct{ a, b Turn }) bool {
	if a.a != b.a {
		return less(a.a, b.a)
	}
	return less(a.b, b.b)
}
