package turnmodel

import "turnmodel/internal/topology"

// AbstractCycle is one of the two four-turn cycles in a plane of the
// network (Figure 2). Turns are listed in traversal order.
type AbstractCycle struct {
	// DimA and DimB identify the plane, DimA < DimB.
	DimA, DimB int
	// Clockwise distinguishes the two cycles of the plane. With DimA
	// drawn horizontally (east = +DimA) and DimB vertically
	// (north = +DimB), the clockwise cycle is the one of right turns.
	Clockwise bool
	// Turns are the four 90-degree turns forming the cycle.
	Turns [4]Turn
}

// PlaneCycles returns the two abstract cycles of the (dimA, dimB) plane.
func PlaneCycles(dimA, dimB int) [2]AbstractCycle {
	if dimA >= dimB {
		panic("turnmodel: PlaneCycles requires dimA < dimB")
	}
	east := topology.Dir(dimA, true)
	west := topology.Dir(dimA, false)
	north := topology.Dir(dimB, true)
	south := topology.Dir(dimB, false)
	cw := AbstractCycle{
		DimA: dimA, DimB: dimB, Clockwise: true,
		Turns: [4]Turn{{east, south}, {south, west}, {west, north}, {north, east}},
	}
	ccw := AbstractCycle{
		DimA: dimA, DimB: dimB, Clockwise: false,
		Turns: [4]Turn{{east, north}, {north, west}, {west, south}, {south, east}},
	}
	return [2]AbstractCycle{cw, ccw}
}

// AbstractCycles enumerates the n(n-1) abstract cycles of an n-dimensional
// mesh: two per plane across the n(n-1)/2 planes (Section 2).
func AbstractCycles(n int) []AbstractCycle {
	var out []AbstractCycle
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			pc := PlaneCycles(a, b)
			out = append(out, pc[0], pc[1])
		}
	}
	return out
}

// BreaksAllAbstractCycles reports whether the prohibited set contains at
// least one turn from every abstract cycle. By Theorem 1 this is necessary
// (but not sufficient — see Figure 4) for deadlock freedom.
func BreaksAllAbstractCycles(n int, prohibited *Set) bool {
	for _, c := range AbstractCycles(n) {
		broken := false
		for _, t := range c.Turns {
			if prohibited.Contains(t) {
				broken = true
				break
			}
		}
		if !broken {
			return false
		}
	}
	return true
}

// MinimumProhibited is the Theorem 1 lower bound: n(n-1) turns, a quarter
// of the 4n(n-1) possible 90-degree turns, must be prohibited to prevent
// deadlock in an n-dimensional mesh.
func MinimumProhibited(n int) int { return n * (n - 1) }
